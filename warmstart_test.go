// Warm-vs-cold equivalence suite: warm-started solves of perturbed
// golden-family instances must (a) answer the ε-decision identically to
// a cold solve of the same perturbed instance, (b) do so in strictly
// fewer iterations (the point of warm starting: Allen-Zhu–Lee–Orecchia
// and Jain–Yao both emphasize that iteration count dominates at small
// ε), (c) produce witnesses that pass the independent verifiers, and
// (d) stay bitwise deterministic across GOMAXPROCS — the warm path adds
// a certificate-grade λ_max evaluation and a rescale, both of which
// must be as reproducible as the solver itself.
package psdp_test

import (
	"math/rand/v2"
	"testing"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// perturbDense returns per-constraint scaled copies A'ᵢ = fᵢ·Aᵢ with
// deterministic fᵢ ∈ [1−drift, 1+drift] — the same per-constraint
// scale drift the serve delta workload applies.
func perturbDense(as []*psdp.Dense, drift float64, seed uint64) []*psdp.Dense {
	rng := rand.New(rand.NewPCG(seed, 0xd21f7))
	out := make([]*psdp.Dense, len(as))
	for i, a := range as {
		f := 1 + drift*(2*rng.Float64()-1)
		c := psdp.NewMatrix(a.R, a.C)
		for k := range a.Data {
			c.Data[k] = a.Data[k] * f
		}
		out[i] = c
	}
	return out
}

func perturbSparse(as []*psdp.CSC, drift float64, seed uint64) []*psdp.CSC {
	rng := rand.New(rand.NewPCG(seed, 0xd21f7))
	out := make([]*psdp.CSC, len(as))
	for i, a := range as {
		out[i] = a.Scale(1 + drift*(2*rng.Float64()-1))
	}
	return out
}

// warmVsCold runs the equivalence checks for one (base, perturbed)
// pair: cold solve of the perturbed set versus a warm start from the
// base solve's final state.
func warmVsCold(t *testing.T, name string, base, perturbed psdp.ConstraintSet, eps float64, opts psdp.Options) {
	t.Helper()
	opts.CaptureState = true
	cold, err := psdp.Decision(base, eps, opts)
	if err != nil {
		t.Fatalf("%s: base solve: %v", name, err)
	}
	if cold.Final == nil {
		t.Fatalf("%s: CaptureState did not fill Final", name)
	}
	coldP, err := psdp.Decision(perturbed, eps, opts)
	if err != nil {
		t.Fatalf("%s: cold perturbed solve: %v", name, err)
	}
	wopts := opts
	wopts.WarmStart = cold.Final
	warm, err := psdp.Decision(perturbed, eps, wopts)
	if err != nil {
		t.Fatalf("%s: warm solve: %v", name, err)
	}
	if !warm.WarmStarted {
		t.Fatalf("%s: feasibility guard rejected a ≤5%% perturbation", name)
	}
	if warm.Outcome != coldP.Outcome {
		t.Fatalf("%s: warm decided %v, cold decided %v", name, warm.Outcome, coldP.Outcome)
	}
	if warm.Iterations >= coldP.Iterations {
		t.Fatalf("%s: warm start used %d iterations, cold %d (want strictly fewer)",
			name, warm.Iterations, coldP.Iterations)
	}
	if !(warm.Lower <= warm.Upper) {
		t.Fatalf("%s: warm bracket inverted: [%v, %v]", name, warm.Lower, warm.Upper)
	}
	// The dual witness must survive independent verification on the
	// perturbed instance — warm starting may never ship a vector whose
	// feasibility was only ever established on the base instance.
	cert, err := psdp.VerifyDual(perturbed, warm.DualX, 1e-6)
	if err != nil {
		t.Fatalf("%s: VerifyDual: %v", name, err)
	}
	if !cert.Feasible {
		t.Fatalf("%s: warm dual witness infeasible: λ_max = %v", name, cert.LambdaMax)
	}

	// Bitwise determinism: the warm path (λ_max guard evaluation,
	// rescale, then the usual iteration) at GOMAXPROCS 1 vs 8.
	var w1, w8 *psdp.DecisionResult
	atGOMAXPROCS(1, func() { w1, err = psdp.Decision(perturbed, eps, wopts) })
	if err != nil {
		t.Fatalf("%s: warm solve at GOMAXPROCS 1: %v", name, err)
	}
	atGOMAXPROCS(8, func() { w8, err = psdp.Decision(perturbed, eps, wopts) })
	if err != nil {
		t.Fatalf("%s: warm solve at GOMAXPROCS 8: %v", name, err)
	}
	if w1.WarmStarted != w8.WarmStarted {
		t.Fatalf("%s: warm guard decision differs across GOMAXPROCS", name)
	}
	sameDecision(t, name+" warm", w1, w8)
}

func TestWarmVsColdDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	inst := gen.RandomDense(8, 10, 4, rng)
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	for _, drift := range []float64{0.02, 0.05} {
		pa, err := psdp.NewDenseSet(perturbDense(inst.A, drift, 7))
		if err != nil {
			t.Fatal(err)
		}
		warmVsCold(t, "dense-random", set.WithScale(0.3), pa.WithScale(0.3),
			0.25, psdp.Options{Seed: 9})
	}
}

func TestWarmVsColdSparseEdgePacking(t *testing.T) {
	g := graph.ErdosRenyi(16, 0.3, rand.New(rand.NewPCG(81, 82)))
	inst, err := gen.SparseEdgePacking(g)
	if err != nil {
		t.Fatal(err)
	}
	set, err := psdp.NewSparseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := psdp.NewSparseSet(perturbSparse(inst.A, 0.05, 11))
	if err != nil {
		t.Fatal(err)
	}
	warmVsCold(t, "sparse-er", set.WithScale(0.2), ps.WithScale(0.2),
		0.25, psdp.Options{Seed: 31, Oracle: psdp.OracleFactoredExact})
}

func TestWarmVsColdFactoredJL(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	inst, err := gen.RandomFactored(12, 24, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := psdp.NewFactoredSet(inst.Q)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := psdp.NewFactoredSet(perturbSparse(inst.Q, 0.05, 13))
	if err != nil {
		t.Fatal(err)
	}
	warmVsCold(t, "factored-jl", set.WithScale(0.15), ps.WithScale(0.15),
		0.25, psdp.Options{Seed: 7, SketchEps: 0.3})
}

// The warm primal witness must pass the independent primal verifier
// too: a dense warm run with the primal matrix tracked yields an
// averaged density matrix Y whose weak-duality bound VerifyPrimalDense
// recomputes from scratch.
func TestWarmPrimalWitnessVerifies(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	inst := gen.RandomDense(8, 10, 4, rng)
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	opts := psdp.Options{Seed: 9, CaptureState: true}
	cold, err := psdp.Decision(set.WithScale(0.3), 0.25, opts)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := psdp.NewDenseSet(perturbDense(inst.A, 0.05, 7))
	if err != nil {
		t.Fatal(err)
	}
	pset := pa.WithScale(0.3).(*psdp.DenseSet)
	wopts := opts
	wopts.WarmStart = cold.Final
	wopts.TrackPrimalMatrix = true
	warm, err := psdp.Decision(pset, 0.25, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != psdp.OutcomePrimal || warm.Y == nil {
		t.Fatalf("expected a primal outcome with Y tracked, got %v (Y nil: %v)", warm.Outcome, warm.Y == nil)
	}
	cert, err := psdp.VerifyPrimalDense(pset, warm.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.PSD || cert.MinDot <= 0 {
		t.Fatalf("warm primal witness failed verification: PSD=%v minDot=%v", cert.PSD, cert.MinDot)
	}
	if cert.UpperBound < warm.Lower {
		t.Fatalf("primal witness bound %v below certified lower %v", cert.UpperBound, warm.Lower)
	}
}

package psdp_test

import (
	"fmt"
	"math"
	"testing"

	psdp "repro"
)

// TestFacadeDecisionAndMaximize exercises the public API end to end on
// a hand-checkable instance: A₁ = diag(1/2, 1/4), A₂ = diag(1/4, 1/2).
// Optimal packing: x₁ = x₂ = 4/3 (sum saturates both coordinates at 1),
// so OPT = 8/3.
func TestFacadeDecisionAndMaximize(t *testing.T) {
	set, err := psdp.NewDenseSet([]*psdp.Dense{
		psdp.Diag([]float64{0.5, 0.25}),
		psdp.Diag([]float64{0.25, 0.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := 8.0 / 3

	dr, err := psdp.Decision(set, 0.2, psdp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Outcome != psdp.OutcomeDual {
		t.Fatalf("outcome = %v want dual (OPT = %v > 1)", dr.Outcome, opt)
	}

	sol, err := psdp.Maximize(set, 0.05, psdp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Lower > opt*(1+1e-9) || sol.Upper < opt*(1-1e-9) {
		t.Fatalf("bracket [%v, %v] misses OPT %v", sol.Lower, sol.Upper, opt)
	}
	cert, err := psdp.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("witness infeasible: λmax = %v", cert.LambdaMax)
	}
}

func TestFacadeFactored(t *testing.T) {
	// Two rank-1 factors on orthogonal coordinates: A₁ = 4·e₀e₀ᵀ,
	// A₂ = e₁e₁ᵀ. OPT = 1/4 + 1 = 1.25.
	q1, err := psdp.NewCSC(2, 1, []psdp.Triplet{{Row: 0, Col: 0, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := psdp.NewCSC(2, 1, []psdp.Triplet{{Row: 1, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	set, err := psdp.NewFactoredSet([]*psdp.CSC{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := psdp.Maximize(set, 0.1, psdp.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := 1.25
	if sol.Lower > opt*(1+1e-6) || sol.Upper < opt*(1-1e-6) {
		t.Fatalf("bracket [%v, %v] misses OPT %v", sol.Lower, sol.Upper, opt)
	}
}

func TestFacadeSolveProgram(t *testing.T) {
	// min Tr[Y] s.t. diag(2,1)•Y ≥ 1: put weight on the large entry:
	// OPT = 1/2.
	prog := &psdp.Program{
		C: psdp.Identity(2),
		A: []*psdp.Dense{psdp.Diag([]float64{2, 1})},
		B: []float64{1},
	}
	cs, err := psdp.Solve(prog, 0.05, psdp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Lower > 0.5*(1+1e-9) || cs.Upper < 0.5*(1-1e-9) {
		t.Fatalf("bracket [%v, %v] misses OPT 0.5", cs.Lower, cs.Upper)
	}
}

func TestFacadeParams(t *testing.T) {
	p, err := psdp.ParamsFor(10, 10, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if p.K <= 0 || p.Alpha <= 0 || p.R <= 0 {
		t.Fatalf("degenerate params: %+v", p)
	}
	if _, err := psdp.ParamsFor(10, 10, 2); err == nil {
		t.Fatal("eps=2 accepted")
	}
}

func TestFacadeMatrixHelpers(t *testing.T) {
	m := psdp.MatrixFromRows([][]float64{{1, 2}, {2, 1}})
	if m.At(0, 1) != 2 {
		t.Fatal("FromRows wrong")
	}
	if psdp.NewMatrix(2, 3).R != 2 {
		t.Fatal("NewMatrix wrong")
	}
	if psdp.Identity(3).Trace() != 3 {
		t.Fatal("Identity wrong")
	}
}

// ExampleMaximize demonstrates the quickstart flow: build a packing
// instance, solve, verify.
func ExampleMaximize() {
	set, err := psdp.NewDenseSet([]*psdp.Dense{
		psdp.Diag([]float64{0.5, 0.25}),
		psdp.Diag([]float64{0.25, 0.5}),
	})
	if err != nil {
		panic(err)
	}
	sol, err := psdp.Maximize(set, 0.05, psdp.Options{})
	if err != nil {
		panic(err)
	}
	opt := 8.0 / 3
	fmt.Printf("bracket contains OPT: %v\n", sol.Lower <= opt*(1+1e-9) && opt*(1-1e-9) <= sol.Upper)
	fmt.Printf("relative gap below 3*eps: %v\n", sol.Gap() < 0.15)
	cert, err := psdp.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("witness feasible: %v\n", cert.Feasible)
	// Output:
	// bracket contains OPT: true
	// relative gap below 3*eps: true
	// witness feasible: true
}

func TestOutcomeConstants(t *testing.T) {
	if psdp.OutcomeDual.String() != "dual" {
		t.Fatal("outcome alias broken")
	}
	if math.IsNaN(float64(psdp.OracleFactoredJL)) {
		t.Fatal("unreachable")
	}
}

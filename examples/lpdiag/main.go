// Lpdiag demonstrates the paper's §1.2 lineage claim: on diagonal
// instances, Algorithm 3.1 *is* Young's parallel positive LP algorithm.
// We solve the same packing problem three ways — the SDP solver on the
// diagonal matrices, Young's LP solver on the raw LP, and an exact
// simplex — and show all three agree.
//
//	go run ./examples/lpdiag
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/poslp"
)

func main() {
	const (
		vars        = 12
		constraints = 10
	)
	rng := rand.New(rand.NewPCG(2012, 5135))
	diag, p := gen.DiagonalLP(vars, constraints, 0.6, rng)

	// Exact reference: dense simplex.
	pk, err := poslp.NewPacking(p)
	if err != nil {
		log.Fatal(err)
	}
	opt, _, err := poslp.ExactPackingOPT(pk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simplex (exact):        OPT = %.6f\n", opt)

	// Young's width-independent parallel LP solver [You01].
	lp, err := poslp.Maximize(pk, 0.1, poslp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Young LP solver:        [%.6f, %.6f] (%d decision calls)\n",
		lp.Lower, lp.Upper, lp.DecisionCalls)

	// The SDP solver on diag(pᵢ) — the paper's generalization.
	set, err := psdp.NewDenseSet(diag.A)
	if err != nil {
		log.Fatal(err)
	}
	sdp, err := psdp.Maximize(set, 0.1, psdp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PSDP solver (diagonal): [%.6f, %.6f] (%d decision calls)\n",
		sdp.Lower, sdp.Upper, sdp.DecisionCalls)

	okLP := lp.Lower <= opt*(1+1e-9) && lp.Upper >= opt*(1-1e-9)
	okSDP := sdp.Lower <= opt*(1+1e-9) && sdp.Upper >= opt*(1-1e-9)
	fmt.Printf("\nboth width-independent solvers bracket the simplex optimum: LP=%v SDP=%v\n", okLP, okSDP)
}

// Mixedcover exercises the §5 future-work extension (mixed matrix
// packing + diagonal covering, the Jain–Yao 2012 class) on a network
// design story: pick fractional edge capacities xₑ on a grid so that
//
//	every vertex is served:   Σ_{e ∋ v} xₑ ≥ 1        (covering rows)
//	the graph stays "quiet":  Σ_e xₑ·bₑbₑᵀ ≼ (1+10ε)I (Laplacian packing)
//
// The Laplacian cap bounds the spectral load of the chosen capacities;
// the covering rows guarantee per-vertex service. Both sides of the
// returned point are verified numerically.
//
//	go run ./examples/mixedcover
package main

import (
	"fmt"
	"log"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
)

func main() {
	g := graph.Grid(4, 4)
	inst, err := gen.GraphEdgePacking(g)
	if err != nil {
		log.Fatal(err)
	}
	pack, err := psdp.NewFactoredSet(inst.Q)
	if err != nil {
		log.Fatal(err)
	}

	// Covering matrix: row v sums the incident-edge capacities, scaled
	// so that demanding (Cx)_v ≥ 1 asks each vertex for total incident
	// capacity ≥ 1/3 — comfortably inside the Laplacian packing cap.
	c := matrix.New(g.N, g.M())
	for e, uv := range g.Edges {
		c.Set(uv[0], e, 3)
		c.Set(uv[1], e, 3)
	}

	prob, err := psdp.NewMixedProblem(pack, c)
	if err != nil {
		log.Fatal(err)
	}
	res, err := psdp.SolveMixed(prob, 0.15, psdp.MixedOptions{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4x4 grid, %d vertices, %d edges\n", g.N, g.M())
	fmt.Printf("status:          %s after %d iterations\n", res.Status, res.Iterations)
	fmt.Printf("vertex coverage: min_v (Cx)_v = %.4f (target ≥ %.2f)\n", res.MinCoverage, 1-0.15)
	fmt.Printf("spectral load:   λ_max(Σ xₑLₑ) = %.4f (cap %.2f)\n", res.LambdaMax, 1+10*0.15)

	// Independent verification of the packing side.
	cert, err := psdp.VerifyDual(pack, res.X, res.LambdaMax*1.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lanczos recheck: λ_max = %.6f\n", cert.LambdaMax)
}

// Mixedcover exercises the §5 future-work extension (mixed matrix
// packing + diagonal covering, the Jain–Yao 2012 class) on a network
// design story: pick fractional edge capacities xₑ on a grid so that
//
//	every vertex is served:   Σ_{e ∋ v} xₑ ≥ 1        (covering rows)
//	the graph stays "quiet":  Σ_e xₑ·bₑbₑᵀ ≼ (1+10ε)I (Laplacian packing)
//
// The Laplacian cap bounds the spectral load of the chosen capacities;
// the covering rows guarantee per-vertex service. Both sides of the
// returned point are verified numerically.
//
// The same problem is a served workload: the final section round-trips
// it through the "mixed" wire format — the document psdpgen writes,
// psdpsolve reads, and psdpd's POST /v1/mixed accepts — and re-solves
// the rebuilt problem, demonstrating that the wire form preserves the
// instance exactly (identical status and witness length).
//
//	go run ./examples/mixedcover
package main

import (
	"encoding/json"
	"fmt"
	"log"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instio"
	"repro/internal/matrix"
)

func main() {
	g := graph.Grid(4, 4)
	inst, err := gen.GraphEdgePacking(g)
	if err != nil {
		log.Fatal(err)
	}
	pack, err := psdp.NewFactoredSet(inst.Q)
	if err != nil {
		log.Fatal(err)
	}

	// Covering matrix: row v sums the incident-edge capacities, scaled
	// so that demanding (Cx)_v ≥ 1 asks each vertex for total incident
	// capacity ≥ 1/3 — comfortably inside the Laplacian packing cap.
	c := matrix.New(g.N, g.M())
	for e, uv := range g.Edges {
		c.Set(uv[0], e, 3)
		c.Set(uv[1], e, 3)
	}

	prob, err := psdp.NewMixedProblem(pack, c)
	if err != nil {
		log.Fatal(err)
	}
	res, err := psdp.SolveMixed(prob, 0.15, psdp.MixedOptions{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4x4 grid, %d vertices, %d edges\n", g.N, g.M())
	fmt.Printf("status:          %s after %d iterations\n", res.Status, res.Iterations)
	fmt.Printf("vertex coverage: min_v (Cx)_v = %.4f (target ≥ %.2f)\n", res.MinCoverage, 1-0.15)
	fmt.Printf("spectral load:   λ_max(Σ xₑLₑ) = %.4f (cap %.2f)\n", res.LambdaMax, 1+10*0.15)

	// Independent verification of the packing side.
	cert, err := psdp.VerifyDual(pack, res.X, res.LambdaMax*1.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lanczos recheck: λ_max = %.6f\n", cert.LambdaMax)

	// Wire round-trip: encode as the "mixed" instio document (what
	// `psdpgen -family mixed-lp` writes and `POST /v1/mixed` accepts),
	// rebuild, and re-solve — the document must reproduce the run.
	doc, err := instio.FromMixedProblem(prob)
	if err != nil {
		log.Fatal(err)
	}
	body, err := json.Marshal(doc)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt, err := instio.BuildMixed(doc)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := psdp.SolveMixed(rebuilt, 0.15, psdp.MixedOptions{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	if res2.Status != res.Status || len(res2.X) != len(res.X) {
		log.Fatalf("wire round-trip drifted: %s/%d vs %s/%d",
			res2.Status, len(res2.X), res.Status, len(res.X))
	}
	fmt.Printf("wire round-trip: %d-byte mixed document re-solves to %s\n",
		len(body), res2.Status)
}

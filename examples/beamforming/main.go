// Beamforming solves a synthetic downlink-beamforming covering SDP —
// the application of Iyengar, Phillips & Stein (2010) that the paper
// singles out as fitting the positive packing framework completely.
//
// Physical story: a base station with m antennas serves n users; user i
// has channel vector hᵢ and SINR target γᵢ. The SDP relaxation's
// normalized dual is a packing problem over the rank-one constraints
// Aᵢ = hᵢhᵢᵀ/γᵢ, which is precisely the prefactored form (Qᵢ = hᵢ/√γᵢ,
// one column each) where the paper's Theorem 4.1 oracle runs in
// nearly-linear work.
//
//	go run ./examples/beamforming
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	psdp "repro"
	"repro/internal/gen"
)

func main() {
	const (
		users    = 24
		antennas = 64
	)
	rng := rand.New(rand.NewPCG(42, 1))
	inst, err := gen.Beamforming(users, antennas, rng)
	if err != nil {
		log.Fatal(err)
	}
	set, err := psdp.NewFactoredSet(inst.Q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("beamforming instance: %d users, %d antennas, q = %d factor nonzeros\n",
		users, antennas, set.NNZ())

	// The sketched factored oracle is selected automatically for
	// factored sets — this is the paper's bigDotExp fast path.
	sol, err := psdp.Maximize(set, 0.1, psdp.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified objective bracket: [%.4f, %.4f], gap %.3f\n",
		sol.Lower, sol.Upper, sol.Gap())
	fmt.Printf("decision calls: %d, total Algorithm 3.1 iterations: %d\n",
		sol.DecisionCalls, sol.TotalIterations)

	cert, err := psdp.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness verified by Lanczos: λ_max = %.6f ≤ 1: %v\n",
		cert.LambdaMax, cert.Feasible)

	// Per-user dual prices: the users with the largest xᵢ are the ones
	// whose SINR constraints bind the downlink power budget.
	top, topV := 0, 0.0
	for i, v := range sol.X {
		if v > topV {
			top, topV = i, v
		}
	}
	fmt.Printf("most binding user: #%d with dual weight %.4f\n", top, topV)
}

// Widthsweep demonstrates the paper's headline property live: as the
// width parameter max_i λ_max(Aᵢ) grows 64x, Algorithm 3.1's iteration
// count stays flat while an Arora–Kale-style width-dependent MMW solver
// scales linearly with the width.
//
//	go run ./examples/widthsweep
package main

import (
	"fmt"
	"log"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/widthdep"
)

func main() {
	fmt.Println("width sweep on the exact family (OPT = 1 + 1/w), decision at v = 0.9·OPT")
	fmt.Printf("%8s  %14s  %18s  %8s\n", "width", "ours (iters)", "baseline (iters)", "ratio")
	for _, w := range []float64{1, 4, 16, 64} {
		inst, err := gen.WidthFamilyExact(4, 6, w)
		if err != nil {
			log.Fatal(err)
		}
		v := 0.9 * inst.OPT

		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			log.Fatal(err)
		}
		dr, err := psdp.Decision(set.WithScale(v), 0.2, psdp.Options{})
		if err != nil {
			log.Fatal(err)
		}

		fr, err := widthdep.Feasible(inst.A, v, 0.2, 0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%8g  %14d  %18d  %8.1f\n",
			w, dr.Iterations, fr.Iterations, float64(fr.Iterations)/float64(dr.Iterations))
	}
	fmt.Println("\nAlgorithm 3.1's count never sees the width; the baseline pays Θ(width).")
}

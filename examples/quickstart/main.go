// Quickstart: build a small packing SDP, solve it to 5% accuracy, and
// verify the certificates — the 60-second tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	psdp "repro"
)

func main() {
	// Two overlapping diagonal constraints:
	//   A1 = diag(1/2, 1/4), A2 = diag(1/4, 1/2).
	// The packing optimum max{x1+x2 : x1·A1 + x2·A2 ≼ I} is 8/3
	// (x1 = x2 = 4/3 saturates both coordinates).
	set, err := psdp.NewDenseSet([]*psdp.Dense{
		psdp.Diag([]float64{0.5, 0.25}),
		psdp.Diag([]float64{0.25, 0.5}),
	})
	if err != nil {
		log.Fatal(err)
	}

	sol, err := psdp.Maximize(set, 0.05, psdp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified bracket: [%.6f, %.6f]  (true OPT = %.6f)\n",
		sol.Lower, sol.Upper, 8.0/3)
	fmt.Printf("relative gap:      %.4f\n", sol.Gap())
	fmt.Printf("witness x:         %.4f\n", sol.X)
	fmt.Printf("decision calls:    %d (Lemma 2.2 binary search)\n", sol.DecisionCalls)

	// Certificates never have to be taken on faith: re-verify with an
	// independent eigendecomposition.
	cert, err := psdp.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification:      λ_max(Σ xᵢAᵢ) = %.9f ≤ 1: %v\n",
		cert.LambdaMax, cert.Feasible)

	// A single ε-decision call (the paper's Algorithm 3.1) answers
	// "is the optimum ≥ 1?" directly.
	dr, err := psdp.Decision(set, 0.2, psdp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision(OPT≥1?):  outcome=%s after %d iterations (cap R=%d)\n",
		dr.Outcome, dr.Iterations, dr.Params.R)
}

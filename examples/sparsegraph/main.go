// Sparsegraph is the general-sparse representation walkthrough: the
// same edge-Laplacian packing SDP as examples/graphpacking, but with
// each constraint held as an explicit symmetric sparse matrix
//
//	Aₑ = bₑbₑᵀ,  bₑ = e_u − e_v  (four stored nonzeros),
//
// instead of a factor. This is the natural encoding when constraints
// arrive as matrices — graph Laplacians, stiffness matrices, local
// Hamiltonians — and no QᵢQᵢᵀ factorization is on hand: a SparseSet
// runs through exactly the same operator-oracle pipeline as a
// FactoredSet (Theorem 4.1's sketched bigDotExp, or the deterministic
// exact oracle), at cost proportional to the stored nonzeros rather
// than the O(n·m²) a densified instance would pay.
//
//	go run ./examples/sparsegraph
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// An Erdős–Rényi graph with expected degree 4: |E| constraints of
	// dimension |V|, total nnz = 4·|E| ≪ |V|².
	rng := rand.New(rand.NewPCG(2012, 1201))
	g := graph.ErdosRenyi(128, 4.0/128, rng)
	inst, err := gen.SparseEdgePacking(g)
	if err != nil {
		log.Fatal(err)
	}
	set, err := psdp.NewSparseSet(inst.A)
	if err != nil {
		log.Fatal(err)
	}
	dense := set.Dim() * set.Dim() * set.N()
	fmt.Printf("G(%d, 4/%d): %d edges, nnz = %d (densified: %d entries, %.0fx more)\n",
		g.N, g.N, g.M(), set.NNZ(), dense, float64(dense)/float64(set.NNZ()))

	// The optimizer picks the sketched operator oracle automatically for
	// sparse sets, exactly as for factored ones.
	sol, err := psdp.Maximize(set, 0.2, psdp.Options{Seed: 7, SketchEps: 0.4, MaxIter: 600, Bucketed: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge packing value: certified in [%.4f, %.4f] (gap %.3f)\n",
		sol.Lower, sol.Upper, sol.Gap())
	fmt.Printf("decision calls %d, total iterations %d\n",
		sol.DecisionCalls, sol.TotalIterations)

	// Certificates never depend on the representation: the witness
	// re-verifies through an independent Lanczos on the sparse operator.
	cert, err := psdp.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lanczos verification: λ_max(Σ xₑAₑ) = %.6f ≤ 1: %v\n",
		cert.LambdaMax, cert.Feasible)

	// Cross-representation check on a small instance: the factored view
	// of the same graph solves to the same certified value.
	small := graph.Cycle(12)
	fInst, err := gen.GraphEdgePacking(small)
	if err != nil {
		log.Fatal(err)
	}
	fset, err := psdp.NewFactoredSet(fInst.Q)
	if err != nil {
		log.Fatal(err)
	}
	sInst, err := gen.SparseEdgePacking(small)
	if err != nil {
		log.Fatal(err)
	}
	sset, err := psdp.NewSparseSet(sInst.A)
	if err != nil {
		log.Fatal(err)
	}
	opts := psdp.Options{Seed: 3, Oracle: psdp.OracleFactoredExact, MaxIter: 200}
	fr, err := psdp.Decision(fset.WithScale(0.25), 0.2, opts)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := psdp.Decision(sset.WithScale(0.25), 0.2, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle-12 exact oracle, factored vs sparse: lower %.6f vs %.6f, outcome %v vs %v\n",
		fr.Lower, sr.Lower, fr.Outcome, sr.Outcome)
}

// Ellipses reproduces the geometry of the paper's Figure 1: packing
// fractional copies of three ellipses — two axis-aligned, one rotated —
// into the unit disk. The rotated ellipse A3 is exactly what forces the
// matrix (rather than scalar) multiplicative-weights machinery: A1+A2
// stays axis-aligned, but any mix including A3 does not.
//
//	go run ./examples/ellipses
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	psdp "repro"
	"repro/internal/gen"
)

func main() {
	inst := gen.Ellipse2D()
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range inst.A {
		fmt.Printf("A%d = [[%6.3f %6.3f], [%6.3f %6.3f]]\n",
			i+1, a.At(0, 0), a.At(0, 1), a.At(1, 0), a.At(1, 1))
	}

	sol, err := psdp.Maximize(set, 0.05, psdp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npacking value: %.4f (certified in [%.4f, %.4f])\n",
		sol.Value, sol.Lower, sol.Upper)
	for i, x := range sol.X {
		bar := strings.Repeat("#", int(math.Round(x*40)))
		fmt.Printf("  x%d = %.4f  %s\n", i+1, x, bar)
	}

	cert, err := psdp.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("λ_max(Σ xᵢAᵢ) = %.6f (the packed sum just fits the unit ball)\n", cert.LambdaMax)

	// The Figure-1 moral: drop the rotated ellipse and the problem
	// collapses to an axis-aligned (positive LP) instance.
	lpOnly, err := psdp.NewDenseSet(inst.A[:2])
	if err != nil {
		log.Fatal(err)
	}
	lpSol, err := psdp.Maximize(lpOnly, 0.05, psdp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout A3 (axis-aligned only): value %.4f — a plain positive LP\n", lpSol.Value)
}

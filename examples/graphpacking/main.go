// Graphpacking solves an edge-Laplacian packing SDP on a grid graph:
//
//	max Σₑ xₑ  s.t.  Σₑ xₑ·bₑbₑᵀ ≼ I,   bₑ = e_u − e_v,
//
// i.e. how much fractional weight the edges can carry before the
// weighted graph Laplacian exceeds the identity. Every constraint
// factor has exactly two nonzeros, so this is the sparsest possible
// workload for the paper's factored fast path (q = 2|E|), and the
// instance dimension is the number of vertices.
//
//	go run ./examples/graphpacking
package main

import (
	"fmt"
	"log"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	g := graph.Grid(6, 6)
	inst, err := gen.GraphEdgePacking(g)
	if err != nil {
		log.Fatal(err)
	}
	set, err := psdp.NewFactoredSet(inst.Q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6x6 grid: %d vertices, %d edges, q = %d factor nonzeros\n",
		g.N, g.M(), set.NNZ())

	sol, err := psdp.Maximize(set, 0.1, psdp.Options{Seed: 2012, Bucketed: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge packing value: certified in [%.4f, %.4f] (gap %.3f)\n",
		sol.Lower, sol.Upper, sol.Gap())
	fmt.Printf("decision calls %d, total iterations %d\n",
		sol.DecisionCalls, sol.TotalIterations)

	cert, err := psdp.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lanczos verification: λ_max(Σ xₑLₑ) = %.6f ≤ 1: %v\n",
		cert.LambdaMax, cert.Feasible)

	// Corner edges can carry more weight than central ones: print the
	// extremes of the optimal edge loading.
	minE, maxE := 0, 0
	for e := range sol.X {
		if sol.X[e] < sol.X[minE] {
			minE = e
		}
		if sol.X[e] > sol.X[maxE] {
			maxE = e
		}
	}
	fmt.Printf("lightest edge  %v: x = %.4f\n", g.Edges[minE], sol.X[minE])
	fmt.Printf("heaviest edge  %v: x = %.4f\n", g.Edges[maxE], sol.X[maxE])
}

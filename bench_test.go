// Benchmark harness: one testing.B target per experiment table of
// EXPERIMENTS.md (E1–E12). Each benchmark re-runs the corresponding
// experiment kernel and reports its headline quantities as custom
// metrics, so `go test -bench=. -benchmem` regenerates every number the
// reproduction reports. The full human-readable tables come from
// `go run ./cmd/psdpbench`.
package psdp_test

import (
	"math"
	"math/rand/v2"
	"strconv"
	"testing"

	psdp "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/parallel"
)

var benchCfg = experiments.Config{Quick: true, Seed: 2012}

// runExperiment executes a registered experiment once per benchmark
// iteration and reports the numeric cells of its last row as metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := experiments.ByID(id)
	if r == nil {
		b.Fatalf("experiment %s not registered", id)
	}
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = r.Run(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if tbl == nil || len(tbl.Rows) == 0 {
		return
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	for i, cell := range last {
		if v, err := strconv.ParseFloat(cell, 64); err == nil && !math.IsInf(v, 0) {
			b.ReportMetric(v, tbl.Columns[i])
		}
	}
}

func BenchmarkE1IterationsVsN(b *testing.B)   { runExperiment(b, "E1") }
func BenchmarkE2IterationsVsEps(b *testing.B) { runExperiment(b, "E2") }
func BenchmarkE3WidthSweep(b *testing.B)      { runExperiment(b, "E3") }
func BenchmarkE4Optimize(b *testing.B)        { runExperiment(b, "E4") }
func BenchmarkE5TaylorDegree(b *testing.B)    { runExperiment(b, "E5") }
func BenchmarkE6BigDotExp(b *testing.B)       { runExperiment(b, "E6") }
func BenchmarkE7WorkDepth(b *testing.B)       { runExperiment(b, "E7") }
func BenchmarkE8MMWRegret(b *testing.B)       { runExperiment(b, "E8") }
func BenchmarkE9Ellipse(b *testing.B)         { runExperiment(b, "E9") }
func BenchmarkE10DiagonalLP(b *testing.B)     { runExperiment(b, "E10") }
func BenchmarkE11IterFormulas(b *testing.B)   { runExperiment(b, "E11") }
func BenchmarkE12Parallel(b *testing.B)       { runExperiment(b, "E12") }
func BenchmarkE13Bucketing(b *testing.B)      { runExperiment(b, "E13") }
func BenchmarkE14SketchAblation(b *testing.B) { runExperiment(b, "E14") }
func BenchmarkE15Trajectory(b *testing.B)     { runExperiment(b, "E15") }
func BenchmarkE16Mixed(b *testing.B)          { runExperiment(b, "E16") }

// --- microbenchmarks of the solver kernels themselves ---

// BenchmarkDecisionDense measures one full Algorithm 3.1 run on the
// dense exact oracle at the decision point OPT = 1.
func BenchmarkDecisionDense(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	inst, err := gen.OrthogonalRankOne(12, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		b.Fatal(err)
	}
	scaled := set.WithScale(inst.OPT)
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		dr, err := core.DecisionPSDP(scaled, 0.2, core.Options{Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		iters = dr.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

// BenchmarkDecisionFactoredJL measures the Theorem 4.1 fast path on a
// sparse factored instance.
func BenchmarkDecisionFactoredJL(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	inst, err := gen.RandomFactored(24, 96, 2, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	fset, err := core.NewFactoredSet(inst.Q)
	if err != nil {
		b.Fatal(err)
	}
	minTr := math.Inf(1)
	for i := 0; i < fset.N(); i++ {
		if tr := fset.Trace(i); tr < minTr {
			minTr = tr
		}
	}
	scaled := fset.WithScale(2 / minTr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecisionPSDP(scaled, 0.25, core.Options{Seed: 9, SketchEps: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fset.NNZ()), "q")
}

// BenchmarkOracleDense isolates one dense exact oracle call
// (eigendecomposition + n dot products), the per-iteration cost of the
// reference path.
func BenchmarkOracleDense(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	inst := gen.RandomDense(16, 32, 8, rng)
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jl, exact, err := core.CompareOracles(set, mustFactor(b, set), 0.25, 7, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = jl, exact
	}
}

func mustFactor(b *testing.B, set *core.DenseSet) *core.FactoredSet {
	b.Helper()
	f, err := set.Factorize(1e-12)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkMaximizeEndToEnd measures the full public pipeline.
func BenchmarkMaximizeEndToEnd(b *testing.B) {
	set, err := psdp.NewDenseSet([]*psdp.Dense{
		psdp.Diag([]float64{0.5, 0.25, 0.1}),
		psdp.Diag([]float64{0.25, 0.5, 0.3}),
		psdp.Diag([]float64{0.1, 0.2, 0.5}),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		sol, err := psdp.Maximize(set, 0.1, psdp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		gap = sol.Gap()
	}
	b.ReportMetric(gap, "certified-gap")
}

// BenchmarkParallelFor sanity-checks the fork-join substrate's
// throughput (element updates per op).
func BenchmarkParallelFor(b *testing.B) {
	buf := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.ForBlock(len(buf), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				buf[j] += 1
			}
		})
	}
}

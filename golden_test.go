// Golden-corpus regression harness: a fixed set of small seeded
// instances (dense, factored, mixed) whose certified bounds and
// outcomes are committed under testdata/golden as exact float64 bit
// patterns. Any change to the solver that perturbs a single bit of any
// certified quantity — an accidental reordering of a reduction, a
// kernel rewrite that changes accumulation order, a seed-derivation
// slip — fails these tests immediately. Combined with the
// cross-GOMAXPROCS determinism harness this pins the solver's output
// across both axes: parallelism and history.
//
// To refresh after an INTENTIONAL numerical change:
//
//	go test -run TestGoldenCorpus -update-golden
//
// and commit the regenerated files with an explanation of why the
// numbers moved.
package psdp_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden files from current outputs")

// goldenRecord is one committed result. Float64s are stored as exact
// bit patterns (uint64) next to a human-readable rendering; only the
// bits are compared.
type goldenRecord struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"` // decision | maximize | mixed
	Outcome    string   `json:"outcome"`
	Iterations int      `json:"iterations"`
	LowerBits  uint64   `json:"lower_bits"`
	UpperBits  uint64   `json:"upper_bits"`
	Lower      string   `json:"lower"`
	Upper      string   `json:"upper"`
	XBits      []uint64 `json:"x_bits,omitempty"`
	// Extra holds kind-specific scalars (λ_max, coverage, call counts),
	// keyed by name, as bit patterns.
	Extra map[string]uint64 `json:"extra,omitempty"`
}

type goldenCase struct {
	name string
	run  func(t *testing.T) goldenRecord
}

func bitsOf(v float64) uint64 { return math.Float64bits(v) }

func vecBits(v []float64) []uint64 {
	out := make([]uint64, len(v))
	for i, x := range v {
		out[i] = bitsOf(x)
	}
	return out
}

func decisionRecord(name string, dr *psdp.DecisionResult) goldenRecord {
	return goldenRecord{
		Name:       name,
		Kind:       "decision",
		Outcome:    dr.Outcome.String(),
		Iterations: dr.Iterations,
		LowerBits:  bitsOf(dr.Lower),
		UpperBits:  bitsOf(dr.Upper),
		Lower:      fmt.Sprintf("%g", dr.Lower),
		Upper:      fmt.Sprintf("%g", dr.Upper),
		XBits:      vecBits(dr.X),
		Extra: map[string]uint64{
			"lambda_max_psi": bitsOf(dr.LambdaMaxPsi),
			"max_psi_norm":   bitsOf(dr.MaxPsiNorm),
		},
	}
}

func maximizeRecord(name string, sol *psdp.Solution) goldenRecord {
	return goldenRecord{
		Name:       name,
		Kind:       "maximize",
		Outcome:    "bracket",
		Iterations: sol.TotalIterations,
		LowerBits:  bitsOf(sol.Lower),
		UpperBits:  bitsOf(sol.Upper),
		Lower:      fmt.Sprintf("%g", sol.Lower),
		Upper:      fmt.Sprintf("%g", sol.Upper),
		XBits:      vecBits(sol.X),
		Extra: map[string]uint64{
			"decision_calls": uint64(sol.DecisionCalls),
			"value":          bitsOf(sol.Value),
		},
	}
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{name: "dense-orth-rank1-decision", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(11, 12))
			inst, err := gen.OrthogonalRankOne(10, 12, rng)
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewDenseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			dr, err := psdp.Decision(set.WithScale(inst.OPT), 0.2, psdp.Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("dense-orth-rank1-decision", dr)
		}},
		{name: "dense-random-bucketed-decision", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(31, 32))
			inst := gen.RandomDense(8, 10, 4, rng)
			set, err := psdp.NewDenseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			dr, err := psdp.Decision(set.WithScale(0.3), 0.25, psdp.Options{Seed: 9, Bucketed: true})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("dense-random-bucketed-decision", dr)
		}},
		{name: "dense-diag-lp-decision", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(41, 42))
			inst, _ := gen.DiagonalLP(12, 6, 0.4, rng)
			set, err := psdp.NewDenseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			dr, err := psdp.Decision(set.WithScale(0.5), 0.2, psdp.Options{Seed: 13})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("dense-diag-lp-decision", dr)
		}},
		{name: "dense-identical-theory-exact", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(51, 52))
			a := gen.RandomPSD(8, 3, rng)
			set, err := psdp.NewDenseSet([]*psdp.Dense{a, a, a, a})
			if err != nil {
				t.Fatal(err)
			}
			dr, err := psdp.Decision(set.WithScale(0.25), 0.3, psdp.Options{Seed: 17, TheoryExact: true, MaxIter: 200})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("dense-identical-theory-exact", dr)
		}},
		{name: "dense-width-maximize", run: func(t *testing.T) goldenRecord {
			inst, err := gen.WidthFamilyExact(6, 8, 32)
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewDenseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := psdp.Maximize(set, 0.15, psdp.Options{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			return maximizeRecord("dense-width-maximize", sol)
		}},
		{name: "factored-random-jl-decision", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(21, 22))
			inst, err := gen.RandomFactored(12, 24, 2, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewFactoredSet(inst.Q)
			if err != nil {
				t.Fatal(err)
			}
			minTr := math.Inf(1)
			for i := 0; i < set.N(); i++ {
				if tr := set.Trace(i); tr < minTr {
					minTr = tr
				}
			}
			dr, err := psdp.Decision(set.WithScale(2/minTr), 0.25, psdp.Options{Seed: 7, SketchEps: 0.3})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("factored-random-jl-decision", dr)
		}},
		{name: "factored-beamforming-exact-decision", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(61, 62))
			inst, err := gen.Beamforming(10, 6, rng)
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewFactoredSet(inst.Q)
			if err != nil {
				t.Fatal(err)
			}
			dr, err := psdp.Decision(set.WithScale(0.1), 0.25, psdp.Options{Seed: 19, Oracle: psdp.OracleFactoredExact, MaxIter: 120})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("factored-beamforming-exact-decision", dr)
		}},
		{name: "factored-cycle-maximize", run: func(t *testing.T) goldenRecord {
			inst, err := gen.GraphEdgePacking(graph.Cycle(8))
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewFactoredSet(inst.Q)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := psdp.Maximize(set, 0.25, psdp.Options{Seed: 23, SketchEps: 0.4})
			if err != nil {
				t.Fatal(err)
			}
			return maximizeRecord("factored-cycle-maximize", sol)
		}},
		{name: "sparse-grid-jl-decision", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(71, 72))
			inst, err := gen.SparseGroupedLaplacians(graph.Grid(4, 4), 6, rng)
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewSparseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			dr, err := psdp.Decision(set.WithScale(0.15), 0.25, psdp.Options{Seed: 27, SketchEps: 0.4, MaxIter: 80})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("sparse-grid-jl-decision", dr)
		}},
		{name: "sparse-er-exact-decision", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(81, 82))
			g := graph.ErdosRenyi(14, 0.35, rng)
			inst, err := gen.SparseEdgePacking(g)
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewSparseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			dr, err := psdp.Decision(set.WithScale(0.2), 0.25, psdp.Options{Seed: 31, Oracle: psdp.OracleFactoredExact, MaxIter: 100})
			if err != nil {
				t.Fatal(err)
			}
			return decisionRecord("sparse-er-exact-decision", dr)
		}},
		{name: "sparse-cycle-maximize", run: func(t *testing.T) goldenRecord {
			inst, err := gen.SparseEdgePacking(graph.Cycle(9))
			if err != nil {
				t.Fatal(err)
			}
			set, err := psdp.NewSparseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := psdp.Maximize(set, 0.25, psdp.Options{Seed: 37, SketchEps: 0.4})
			if err != nil {
				t.Fatal(err)
			}
			return maximizeRecord("sparse-cycle-maximize", sol)
		}},
		{name: "mixed-diag-solve", run: func(t *testing.T) goldenRecord {
			pack, err := psdp.NewDenseSet([]*psdp.Dense{
				psdp.Diag([]float64{0.5, 0.2, 0.1}),
				psdp.Diag([]float64{0.1, 0.4, 0.2}),
				psdp.Diag([]float64{0.3, 0.1, 0.5}),
			})
			if err != nil {
				t.Fatal(err)
			}
			cover := psdp.MatrixFromRows([][]float64{{1, 0.5, 0}, {0, 1, 1}})
			mp, err := psdp.NewMixedProblem(pack, cover)
			if err != nil {
				t.Fatal(err)
			}
			mr, err := psdp.SolveMixed(mp, 0.2, psdp.MixedOptions{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			return mixedRecord("mixed-diag-solve", mr)
		}},
		{name: "mixed-lp-gen-solve", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(91, 92))
			inst, err := gen.MixedCoveringLP(8, 10, 4, 0.5, rng)
			if err != nil {
				t.Fatal(err)
			}
			pack, err := psdp.NewDenseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			mp, err := psdp.NewMixedProblem(pack, inst.C)
			if err != nil {
				t.Fatal(err)
			}
			mr, err := psdp.SolveMixed(mp, 0.15, psdp.MixedOptions{Seed: 41})
			if err != nil {
				t.Fatal(err)
			}
			return mixedRecord("mixed-lp-gen-solve", mr)
		}},
		{name: "mixed-graph-alo-solve", run: func(t *testing.T) goldenRecord {
			rng := rand.New(rand.NewPCG(95, 96))
			g := graph.ErdosRenyi(16, 6.0/16, rng)
			inst, err := gen.MixedGraphCovering(g, 6, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			pack, err := psdp.NewSparseSet(inst.A)
			if err != nil {
				t.Fatal(err)
			}
			mp, err := psdp.NewMixedProblem(pack, inst.C)
			if err != nil {
				t.Fatal(err)
			}
			mr, err := psdp.SolveMixed(mp, 0.2, psdp.MixedOptions{Seed: 43, Engine: psdp.EngineALO})
			if err != nil {
				t.Fatal(err)
			}
			return mixedRecord("mixed-graph-alo-solve", mr)
		}},
	}
}

func mixedRecord(name string, mr *psdp.MixedResult) goldenRecord {
	return goldenRecord{
		Name:       name,
		Kind:       "mixed",
		Outcome:    mr.Status.String(),
		Iterations: mr.Iterations,
		LowerBits:  bitsOf(mr.MinCoverage),
		UpperBits:  bitsOf(mr.LambdaMax),
		Lower:      fmt.Sprintf("%g", mr.MinCoverage),
		Upper:      fmt.Sprintf("%g", mr.LambdaMax),
		XBits:      vecBits(mr.X),
		Extra: map[string]uint64{
			"capped": uint64(mr.Capped),
		},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenCorpusGuard is the explicit byte-for-byte corpus gate (its
// own CI step, separate from the tier-1 sweep). It fails if the
// committed file set and the case list drift apart — a case silently
// dropped from goldenCases would otherwise make TestGoldenCorpus pass
// vacuously — and then re-runs every case at GOMAXPROCS=8 against the
// committed bit patterns, pinning the parallel axis at whole-solver
// level rather than only in the kernel unit tests.
func TestGoldenCorpusGuard(t *testing.T) {
	if *updateGolden {
		t.Skip("corpus is being rewritten")
	}
	cases := goldenCases()
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	committed := make(map[string]bool, len(entries))
	for _, e := range entries {
		committed[e.Name()] = true
	}
	if len(entries) != len(cases) {
		t.Errorf("corpus drift: %d committed golden files, %d cases", len(entries), len(cases))
	}
	for _, gc := range cases {
		if !committed[gc.name+".json"] {
			t.Errorf("case %q has no committed golden file", gc.name)
		}
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	runtime.GOMAXPROCS(8)
	for _, gc := range cases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			got := gc.run(t)
			data, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			var want goldenRecord
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("parsing %s: %v", goldenPath(gc.name), err)
			}
			compareGolden(t, &want, &got)
		})
	}
}

func TestGoldenCorpus(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			got := gc.run(t)
			path := goldenPath(gc.name)
			if *updateGolden {
				data, err := json.MarshalIndent(&got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			var want goldenRecord
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			compareGolden(t, &want, &got)
		})
	}
}

func compareGolden(t *testing.T, want, got *goldenRecord) {
	t.Helper()
	if got.Kind != want.Kind || got.Outcome != want.Outcome || got.Iterations != want.Iterations {
		t.Fatalf("outcome drift: got %s/%s/%d iterations, want %s/%s/%d",
			got.Kind, got.Outcome, got.Iterations, want.Kind, want.Outcome, want.Iterations)
	}
	if got.LowerBits != want.LowerBits || got.UpperBits != want.UpperBits {
		t.Fatalf("certified bounds drift: got [%s, %s] (%016x, %016x), want [%s, %s] (%016x, %016x)",
			got.Lower, got.Upper, got.LowerBits, got.UpperBits,
			want.Lower, want.Upper, want.LowerBits, want.UpperBits)
	}
	if len(got.XBits) != len(want.XBits) {
		t.Fatalf("witness length drift: %d vs %d", len(got.XBits), len(want.XBits))
	}
	for i := range got.XBits {
		if got.XBits[i] != want.XBits[i] {
			t.Fatalf("witness X[%d] drift: %016x vs %016x", i, got.XBits[i], want.XBits[i])
		}
	}
	for k, wv := range want.Extra {
		if gv, ok := got.Extra[k]; !ok || gv != wv {
			t.Fatalf("extra %q drift: %016x vs %016x", k, got.Extra[k], wv)
		}
	}
}

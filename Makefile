# Build/test/bench entry points. Plain go-tool wrappers: no code
# generation, no external dependencies.

GO ?= go

.PHONY: build test race bench experiments

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 check — build plus the full test suite
test: build
	$(GO) test ./...

## race: tier-2 check — full suite under the race detector
race:
	$(GO) test -race ./...

## bench: refresh the committed kernel perf baseline BENCH_psdp.json
bench:
	$(GO) run ./cmd/psdpbench -kernels -bench-out BENCH_psdp.json

## experiments: regenerate the paper experiment tables (E1–E16)
experiments:
	$(GO) run ./cmd/psdpbench

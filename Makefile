# Build/test/bench entry points. Plain go-tool wrappers: no code
# generation, no external dependencies.

GO ?= go

.PHONY: build test race race-smoke vet lint ci fuzz bench bench-kernels bench-delta bench-engines bench-mixed bench-obs bench-cluster examples experiments serve load smoke-serve smoke-cluster

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 check — build plus the full test suite
test: build
	$(GO) test ./...

## race: tier-2 check — full suite under the race detector
race:
	$(GO) test -race ./...

## race-smoke: the fast race subset CI runs
race-smoke:
	$(GO) test -race -run 'TestRaceSmoke' .

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: formatting gate (gofmt -l must be empty) plus staticcheck when
## installed (CI installs it; locally `go install
## honnef.co/go/tools/cmd/staticcheck@latest` to match)
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

## ci: what .github/workflows/ci.yml runs — vet, lint, tier-1, race smoke
ci: vet lint test race-smoke

## fuzz: explore each fuzz target briefly (seeds replay in `make test`)
fuzz:
	$(GO) test ./internal/instio -fuzz=FuzzBuild -fuzztime=30s
	$(GO) test ./internal/sparse -fuzz=FuzzNewCSC -fuzztime=30s
	$(GO) test . -fuzz=FuzzEngineAgreement -fuzztime=30s

## bench: refresh the committed kernel perf baseline BENCH_psdp.json
bench:
	$(GO) run ./cmd/psdpbench -kernels -bench-out BENCH_psdp.json

## bench-kernels: regression gate — re-measure the kernels into a
## scratch report and fail if any kernel is >1.05x slower than the
## committed BENCH_psdp.json at n>=256, or allocates per op. The
## committed baseline is left untouched; refresh it with `make bench`
## after an intentional change.
BENCH_CANDIDATE ?= /tmp/bench_psdp_candidate.json
bench-kernels:
	cp BENCH_psdp.json $(BENCH_CANDIDATE)
	$(GO) run ./cmd/psdpbench -kernels -bench-out $(BENCH_CANDIDATE)
	$(GO) run ./scripts/benchgate -baseline BENCH_psdp.json -candidate $(BENCH_CANDIDATE)

## bench-delta: regenerate the incremental-serving baseline — boot
## psdpd, run the drifting-instance workload, record warm-vs-cold
## iterations and latency percentiles under "serve.delta" in
## BENCH_psdp.json (fails unless warm uses strictly fewer iterations)
bench-delta:
	sh scripts/bench_delta.sh

## bench-engines: regenerate the MMW-vs-ALO head-to-head baseline
## under "engines" in BENCH_psdp.json (fails unless ALO uses strictly
## fewer iterations than MMW at the tight-eps point on every case)
bench-engines:
	sh scripts/bench_engines.sh

## bench-mixed: regenerate the mixed packing/covering baseline under
## "mixed" in BENCH_psdp.json (fails unless both engines reach a
## verified feasible point on every witness-feasible instance)
bench-mixed:
	sh scripts/bench_mixed.sh

## bench-obs: regenerate the observability-overhead baseline under
## "obs" in BENCH_psdp.json (fails if telemetry adds allocations on the
## solver hot path or pushes the on/off cost ratio past the gates)
bench-obs:
	$(GO) run ./cmd/psdpbench -obs -bench-out BENCH_psdp.json

## bench-cluster: regenerate the horizontal-scaling baseline under
## "cluster" in BENCH_psdp.json — boot 1-, 2-, and 3-replica fleets
## behind psdpfront, drive each with the unique-digest cold workload,
## and fail unless req/s scales >=1.7x at two replicas and >=2.3x at
## three versus one
bench-cluster:
	sh scripts/bench_cluster.sh

## examples: compile every example program and run the mixedcover
## walkthrough end to end (CI runs this; mixedcover exits nonzero if
## its verified result goes wrong, the rest are build-gated — some run
## full experiment sweeps far too slow for a CI lap)
examples:
	@set -e; for d in examples/*/; do \
		echo "== build $$d"; \
		$(GO) build -o /dev/null ./$$d; \
	done
	$(GO) run ./examples/mixedcover

## serve: run the solve daemon on :8723 (see README "Serving")
serve:
	$(GO) run ./cmd/psdpd

## load: drive a running daemon with the closed-loop load generator and
## record sustained req/s, latency percentiles, and cache-hit rate into
## BENCH_psdp.json under the "serve" key
load:
	$(GO) run ./cmd/psdpload -url http://127.0.0.1:8723 -concurrency 64 -duration 5s

## smoke-serve: the CI serving gate — boot psdpd, run a short 64-way
## psdpload, fail on any non-2xx/non-429 response
smoke-serve:
	sh scripts/serve_smoke.sh

## smoke-cluster: the CI clustering gate — boot 3 replicas + psdpfront,
## solve through the front, kill the digest's owner, and require the
## re-routed answer to be byte-identical with zero non-2xx/429
smoke-cluster:
	sh scripts/cluster_smoke.sh

## experiments: regenerate the paper experiment tables (E1–E16)
experiments:
	$(GO) run ./cmd/psdpbench

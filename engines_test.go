// Cross-engine equivalence suite: the MMW engine (the paper's
// Algorithm 3.1) and the ALO engine (arXiv:1507.02259) must agree on
// accept/reject for every golden-corpus instance, back every decision
// with an independently re-verified certificate, and stay bitwise
// deterministic across GOMAXPROCS. The suite runs the decision cases
// uncapped (no MaxIter) so each engine reaches its own certificate
// rather than an arbitrary budget — the committed golden bit patterns
// are pinned separately by golden_test.go, which this suite never
// touches.
package psdp_test

import (
	"math"
	"math/rand/v2"
	"runtime"
	"strings"
	"testing"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// crossEngineCase is one golden-corpus decision instance, uncapped.
type crossEngineCase struct {
	name string
	set  psdp.ConstraintSet
	eps  float64
	opts psdp.Options
}

// crossEngineCases rebuilds the decision instances of the golden corpus
// (same generators, same seeds, same scales as golden_test.go) without
// the MaxIter caps, so both engines run to a decision. The TheoryExact
// case keeps its budget: there the budget IS the experiment, and both
// engines must still label the capped run identically.
func crossEngineCases(t *testing.T) []crossEngineCase {
	t.Helper()
	var cs []crossEngineCase
	{
		rng := rand.New(rand.NewPCG(11, 12))
		inst, err := gen.OrthogonalRankOne(10, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, crossEngineCase{"dense-orth-rank1", set.WithScale(inst.OPT), 0.2, psdp.Options{Seed: 5}})
	}
	{
		rng := rand.New(rand.NewPCG(31, 32))
		inst := gen.RandomDense(8, 10, 4, rng)
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, crossEngineCase{"dense-random-bucketed", set.WithScale(0.3), 0.25, psdp.Options{Seed: 9, Bucketed: true}})
	}
	{
		rng := rand.New(rand.NewPCG(41, 42))
		inst, _ := gen.DiagonalLP(12, 6, 0.4, rng)
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, crossEngineCase{"dense-diag-lp", set.WithScale(0.5), 0.2, psdp.Options{Seed: 13}})
	}
	{
		rng := rand.New(rand.NewPCG(51, 52))
		a := gen.RandomPSD(8, 3, rng)
		set, err := psdp.NewDenseSet([]*psdp.Dense{a, a, a, a})
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, crossEngineCase{"dense-identical-theory-exact", set.WithScale(0.25), 0.3, psdp.Options{Seed: 17, TheoryExact: true, MaxIter: 200}})
	}
	{
		rng := rand.New(rand.NewPCG(21, 22))
		inst, err := gen.RandomFactored(12, 24, 2, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		set, err := psdp.NewFactoredSet(inst.Q)
		if err != nil {
			t.Fatal(err)
		}
		minTr := math.Inf(1)
		for i := 0; i < set.N(); i++ {
			if tr := set.Trace(i); tr < minTr {
				minTr = tr
			}
		}
		cs = append(cs, crossEngineCase{"factored-random-jl", set.WithScale(2 / minTr), 0.25, psdp.Options{Seed: 7, SketchEps: 0.3}})
	}
	{
		rng := rand.New(rand.NewPCG(61, 62))
		inst, err := gen.Beamforming(10, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		set, err := psdp.NewFactoredSet(inst.Q)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, crossEngineCase{"factored-beamforming-exact", set.WithScale(0.1), 0.25, psdp.Options{Seed: 19, Oracle: psdp.OracleFactoredExact}})
	}
	{
		rng := rand.New(rand.NewPCG(71, 72))
		inst, err := gen.SparseGroupedLaplacians(graph.Grid(4, 4), 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		set, err := psdp.NewSparseSet(inst.A)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, crossEngineCase{"sparse-grid-jl", set.WithScale(0.15), 0.25, psdp.Options{Seed: 27, SketchEps: 0.4}})
	}
	{
		rng := rand.New(rand.NewPCG(81, 82))
		g := graph.ErdosRenyi(14, 0.35, rng)
		inst, err := gen.SparseEdgePacking(g)
		if err != nil {
			t.Fatal(err)
		}
		set, err := psdp.NewSparseSet(inst.A)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, crossEngineCase{"sparse-er-exact", set.WithScale(0.2), 0.25, psdp.Options{Seed: 31, Oracle: psdp.OracleFactoredExact}})
	}
	return cs
}

// verifyDecision re-verifies a decision's witness at certificate grade:
// an accept must carry a feasible packing vector whose independently
// recomputed value matches the committed Lower (and clears the weakest
// accept band either engine certifies, MMW's 1/(1+10ε)); a reject must
// carry a weak-duality Upper < 1, re-derived from the averaged covering
// matrix when the dense oracle tracked one.
func verifyDecision(t *testing.T, name string, set psdp.ConstraintSet, eps float64, dr *psdp.DecisionResult) {
	t.Helper()
	switch dr.Outcome {
	case psdp.OutcomeDual:
		cert, err := psdp.VerifyDual(set, dr.DualX, 1e-6)
		if err != nil {
			t.Fatalf("%s: VerifyDual: %v", name, err)
		}
		if !cert.Feasible {
			t.Errorf("%s: dual witness infeasible: λ_max = %v", name, cert.LambdaMax)
		}
		if math.Abs(cert.Value-dr.Lower) > 1e-9*(1+math.Abs(dr.Lower)) {
			t.Errorf("%s: recomputed dual value %v != committed Lower %v", name, cert.Value, dr.Lower)
		}
		if band := 1 / (1 + 10*eps); dr.Lower < band-1e-9 {
			t.Errorf("%s: accept with Lower %v below the certified band %v", name, dr.Lower, band)
		}
	case psdp.OutcomePrimal:
		if !(dr.Upper < 1) {
			t.Errorf("%s: reject with Upper %v, want < 1", name, dr.Upper)
		}
		if dr.Y != nil {
			ds, ok := set.(*psdp.DenseSet)
			if !ok {
				t.Fatalf("%s: tracked Y on a non-dense set", name)
			}
			cert, err := psdp.VerifyPrimalDense(ds, dr.Y)
			if err != nil {
				t.Fatalf("%s: VerifyPrimalDense: %v", name, err)
			}
			if !cert.PSD {
				t.Errorf("%s: primal witness not PSD", name)
			}
			if math.Abs(cert.Trace-1) > 1e-6 {
				t.Errorf("%s: primal witness trace %v, want 1", name, cert.Trace)
			}
			// Y̅'s own weak-duality bound can be looser than the committed
			// Upper (which may come from the best single-iteration density
			// matrix), but it must still be a valid bound on the optimum.
			if cert.UpperBound < dr.Lower*(1-1e-9) {
				t.Errorf("%s: primal witness bound %v below certified Lower %v", name, cert.UpperBound, dr.Lower)
			}
		}
	default:
		t.Errorf("%s: inconclusive outcome in the uncapped cross-engine run", name)
	}
}

// TestCrossEngineGoldenAgreement runs every golden decision instance
// through both engines and demands the same accept/reject, each backed
// by an independently verified certificate.
func TestCrossEngineGoldenAgreement(t *testing.T) {
	for _, c := range crossEngineCases(t) {
		t.Run(c.name, func(t *testing.T) {
			results := make(map[psdp.EngineKind]*psdp.DecisionResult)
			for _, eng := range []psdp.EngineKind{psdp.EngineMMW, psdp.EngineALO} {
				opts := c.opts
				opts.Engine = eng
				if _, dense := c.set.(*psdp.DenseSet); dense {
					opts.TrackPrimalMatrix = true
				}
				dr, err := psdp.Decision(c.set, c.eps, opts)
				if err != nil {
					t.Fatalf("%s: %v", eng, err)
				}
				verifyDecision(t, c.name+"/"+eng.String(), c.set, c.eps, dr)
				results[eng] = dr
			}
			mmw, alo := results[psdp.EngineMMW], results[psdp.EngineALO]
			if mmw.Outcome != alo.Outcome {
				t.Errorf("engines disagree: mmw=%v (lower %v upper %v), alo=%v (lower %v upper %v)",
					mmw.Outcome, mmw.Lower, mmw.Upper, alo.Outcome, alo.Lower, alo.Upper)
			}
			// The two certified brackets describe the same optimum, so they
			// must overlap: one engine's floor can never exceed the other's
			// ceiling.
			if mmw.Lower > alo.Upper*(1+1e-9) || alo.Lower > mmw.Upper*(1+1e-9) {
				t.Errorf("certified brackets contradict: mmw [%v, %v] vs alo [%v, %v]",
					mmw.Lower, mmw.Upper, alo.Lower, alo.Upper)
			}
		})
	}
}

// TestCrossEngineDeterminism pins bitwise self-consistency across
// GOMAXPROCS 1 vs 8 for both engines on one case per representation:
// identical iterate bits, iteration counts, and certified bounds. The
// only concurrency inside a run is in the fixed-reduction-tree kernels,
// so the trajectories must not depend on the processor count.
func TestCrossEngineDeterminism(t *testing.T) {
	pick := map[string]bool{"dense-orth-rank1": true, "factored-random-jl": true, "sparse-grid-jl": true}
	for _, c := range crossEngineCases(t) {
		if !pick[c.name] {
			continue
		}
		for _, eng := range []psdp.EngineKind{psdp.EngineMMW, psdp.EngineALO} {
			t.Run(c.name+"/"+eng.String(), func(t *testing.T) {
				opts := c.opts
				opts.Engine = eng
				// Cap the run mid-flight: mid-run iterates are a stricter
				// determinism probe than post-certificate fixed points.
				opts.MaxIter = 40
				run := func(procs int) *psdp.DecisionResult {
					orig := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(orig)
					dr, err := psdp.Decision(c.set, c.eps, opts)
					if err != nil {
						t.Fatal(err)
					}
					return dr
				}
				a, b := run(1), run(8)
				if a.Iterations != b.Iterations || a.Outcome != b.Outcome {
					t.Fatalf("GOMAXPROCS 1 vs 8: iterations %d vs %d, outcome %v vs %v", a.Iterations, b.Iterations, a.Outcome, b.Outcome)
				}
				for i := range a.X {
					if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
						t.Fatalf("x[%d] differs bitwise across GOMAXPROCS: %x vs %x", i, math.Float64bits(a.X[i]), math.Float64bits(b.X[i]))
					}
				}
				if math.Float64bits(a.Lower) != math.Float64bits(b.Lower) || math.Float64bits(a.Upper) != math.Float64bits(b.Upper) {
					t.Fatalf("bounds differ bitwise across GOMAXPROCS: [%v,%v] vs [%v,%v]", a.Lower, a.Upper, b.Lower, b.Upper)
				}
			})
		}
	}
}

// TestCrossEngineResumeRejected pins the resume contract: a state
// captured by one engine must never silently continue under the other —
// it is an explicit error naming both engines.
func TestCrossEngineResumeRejected(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	inst := gen.RandomDense(8, 10, 4, rng)
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	cset := set.WithScale(0.3)
	for _, tc := range []struct{ capture, resume psdp.EngineKind }{
		{psdp.EngineMMW, psdp.EngineALO},
		{psdp.EngineALO, psdp.EngineMMW},
	} {
		dr, err := psdp.Decision(cset, 0.25, psdp.Options{Seed: 1, Engine: tc.capture, MaxIter: 10, CaptureState: true})
		if err != nil {
			t.Fatal(err)
		}
		if dr.Final == nil {
			t.Fatal("CaptureState produced no state")
		}
		if got, want := dr.Final.Engine, tc.capture.String(); got != want {
			t.Fatalf("captured state tagged %q, want %q", got, want)
		}
		if _, err := psdp.Resume(cset, 0.25, dr.Final, psdp.Options{Seed: 1, Engine: tc.resume}); err == nil {
			t.Fatalf("resume of a %v state under %v succeeded, want engine-mismatch error", tc.capture, tc.resume)
		} else if !strings.Contains(err.Error(), "engine") {
			t.Fatalf("engine-mismatch error does not mention the engine: %v", err)
		}
		// Same-engine resume of the very same state stays valid.
		if _, err := psdp.Resume(cset, 0.25, dr.Final, psdp.Options{Seed: 1, Engine: tc.capture, MaxIter: 20}); err != nil {
			t.Fatalf("same-engine resume: %v", err)
		}
	}
}

// TestCrossEngineWarmStartColdFallback pins the warm-start contract: a
// state captured by the other engine seeds nothing (cold start,
// WarmStarted=false), while a same-engine state does warm-start.
func TestCrossEngineWarmStartColdFallback(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 94))
	inst := gen.RandomDense(8, 10, 4, rng)
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	cset := set.WithScale(0.3)
	for _, capture := range []psdp.EngineKind{psdp.EngineMMW, psdp.EngineALO} {
		dr, err := psdp.Decision(cset, 0.25, psdp.Options{Seed: 2, Engine: capture, MaxIter: 30, CaptureState: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range []psdp.EngineKind{psdp.EngineMMW, psdp.EngineALO} {
			warm, err := psdp.Decision(cset, 0.25, psdp.Options{Seed: 2, Engine: run, MaxIter: 10, WarmStart: dr.Final})
			if err != nil {
				t.Fatalf("capture %v run %v: %v", capture, run, err)
			}
			if want := capture == run; warm.WarmStarted != want {
				t.Errorf("capture %v run %v: WarmStarted = %v, want %v", capture, run, warm.WarmStarted, want)
			}
		}
	}
}

// FuzzEngineAgreement generates decision instances with exactly known
// optima (orthogonal rank-one, identical-copy, and exact width
// families), scales them across the accept/reject/gray bands, and runs
// both engines. Any decision disagreement between engines, any
// certified bracket that misses the true optimum, and any infeasible
// accept witness is a failure.
func FuzzEngineAgreement(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(3), uint8(2), uint8(2), uint8(2))
	f.Add(uint64(4), uint8(0), uint8(3), uint8(1))
	f.Add(uint64(5), uint8(1), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, fam, scaleSel, epsSel uint8) {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		eps := []float64{0.3, 0.25, 0.2}[int(epsSel)%3]
		target := []float64{1.5, 0.45, 0.7, 1.0}[int(scaleSel)%4]
		var inst *gen.Dense
		var err error
		switch fam % 3 {
		case 0:
			inst, err = gen.OrthogonalRankOne(6+int(seed%5), 12, rng)
		case 1:
			inst = gen.Identical(6+int(seed%4), 8, rng, denseLambdaMax(t))
		default:
			inst, err = gen.WidthFamilyExact(5, 6, 2+float64(seed%7))
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(inst.OPT) || inst.OPT <= 0 {
			t.Fatalf("family %d produced unknown OPT", fam%3)
		}
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			t.Fatal(err)
		}
		// WithScale multiplies every Aᵢ by s, so the scaled optimum is
		// OPT/s; aim it at the chosen band.
		cset := set.WithScale(inst.OPT / target)
		var results [2]*psdp.DecisionResult
		for k, eng := range []psdp.EngineKind{psdp.EngineMMW, psdp.EngineALO} {
			dr, err := psdp.Decision(cset, eps, psdp.Options{Seed: seed, Engine: eng, MaxIter: 20000})
			if err != nil {
				t.Fatalf("%v: %v", eng, err)
			}
			results[k] = dr
			// The certified bracket must contain the true optimum (small
			// slack for the λ_max estimator). This is what pins wrong
			// decisions at the decisively separated targets: a reject at
			// OPT 1.5 would commit an Upper ≤ ~1.2, an accept at OPT 0.2
			// a Lower above the accept band — both caught here.
			if dr.Lower > target*(1+1e-6) {
				t.Errorf("%v: certified Lower %v exceeds true OPT %v", eng, dr.Lower, target)
			}
			if dr.Outcome != psdp.OutcomeInconclusive && dr.Upper < target*(1-1e-6) {
				t.Errorf("%v: certified Upper %v below true OPT %v", eng, dr.Upper, target)
			}
			if dr.Outcome == psdp.OutcomeDual {
				if band := 1 / (1 + 10*eps); dr.Lower < band-1e-9 {
					t.Errorf("%v: accept with Lower %v below the certified band %v", eng, dr.Lower, band)
				}
				cert, err := psdp.VerifyDual(cset, dr.DualX, 1e-6)
				if err != nil {
					t.Fatalf("%v: VerifyDual: %v", eng, err)
				}
				if !cert.Feasible {
					t.Errorf("%v: accept witness infeasible: λ_max = %v", eng, cert.LambdaMax)
				}
			}
		}
		// Cross-engine check: the decision problem at accuracy ε is a
		// promise problem, and instances scaled into the gray band (OPT
		// near 1) may legitimately be accepted by one engine and rejected
		// by the other — each with a valid certificate. A genuine
		// disagreement is a certificate CONTRADICTION: one engine's
		// certified floor above the other's certified ceiling.
		mmw, alo := results[0], results[1]
		if mmw.Lower > alo.Upper*(1+1e-6) || alo.Lower > mmw.Upper*(1+1e-6) {
			t.Errorf("certified brackets contradict: mmw=%v [%v, %v] vs alo=%v [%v, %v] (true OPT %v, eps %v)",
				mmw.Outcome, mmw.Lower, mmw.Upper, alo.Outcome, alo.Lower, alo.Upper, target, eps)
		}
	})
}

// denseLambdaMax adapts the exact dense λ_max primitive for gen.Identical.
func denseLambdaMax(t *testing.T) func(*psdp.Dense) float64 {
	return func(a *psdp.Dense) float64 {
		set, err := psdp.NewDenseSet([]*psdp.Dense{a})
		if err != nil {
			t.Fatal(err)
		}
		cert, err := psdp.VerifyDual(set, []float64{1}, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		return cert.LambdaMax
	}
}

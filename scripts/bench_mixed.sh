#!/bin/sh
# bench_mixed.sh — regenerate the mixed packing/covering baseline: run
# both generator families (dense covering-LP, sparse graph covering)
# under both engines and merge the iteration counts and wall times into
# BENCH_psdp.json under the "mixed" key. Fails unless every run ends
# verified feasible — the generators construct instances with a known
# interior witness, so an inconclusive result is a solver regression
# (psdpbench exits nonzero on a gate violation).
set -eu
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_psdp.json}"

go run ./cmd/psdpbench -mixed -bench-out "$OUT" ${BENCH_MIXED_FLAGS:-}

echo "bench-mixed: OK (baseline written to $OUT)"

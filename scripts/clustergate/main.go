// Command clustergate gates the recorded horizontal-scaling baseline:
// it reads the "cluster" section of the bench file (written by
// `psdpload -mode cluster` via scripts/bench_cluster.sh) and fails
// unless all three fleet sizes are present and error-free and the
// measured req/s scales by at least the required factors over the
// single-replica run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type scale struct {
	RPS    float64 `json:"rps"`
	Solved int64   `json:"solved"`
	Errors int64   `json:"errors"`
}

type clusterSection struct {
	Mode     string           `json:"mode"`
	Scales   map[string]scale `json:"scales"`
	Speedup2 float64          `json:"speedup_2_vs_1"`
	Speedup3 float64          `json:"speedup_3_vs_1"`
}

func main() {
	bench := flag.String("bench", "BENCH_psdp.json", "bench baseline to gate")
	min2 := flag.Float64("min2", 1.7, "required 2-replica req/s speedup over 1")
	min3 := flag.Float64("min3", 2.3, "required 3-replica req/s speedup over 1")
	flag.Parse()

	data, err := os.ReadFile(*bench)
	if err != nil {
		fail("reading %s: %v", *bench, err)
	}
	var doc struct {
		Cluster *clusterSection `json:"cluster"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("parsing %s: %v", *bench, err)
	}
	if doc.Cluster == nil {
		fail("%s has no \"cluster\" section; run scripts/bench_cluster.sh", *bench)
	}
	c := doc.Cluster
	for _, k := range []string{"1", "2", "3"} {
		s, ok := c.Scales[k]
		if !ok {
			fail("cluster section is missing the %s-replica scale", k)
		}
		if s.Errors > 0 {
			fail("%s-replica run recorded %d non-2xx/429 responses", k, s.Errors)
		}
		if s.Solved == 0 || s.RPS <= 0 {
			fail("%s-replica run solved nothing (rps=%v)", k, s.RPS)
		}
	}
	if c.Speedup2 < *min2 {
		fail("2-replica speedup %.2fx < required %.2fx", c.Speedup2, *min2)
	}
	if c.Speedup3 < *min3 {
		fail("3-replica speedup %.2fx < required %.2fx", c.Speedup3, *min3)
	}
	fmt.Printf("clustergate: OK (2 replicas %.2fx, 3 replicas %.2fx)\n", c.Speedup2, c.Speedup3)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clustergate: "+format+"\n", args...)
	os.Exit(1)
}

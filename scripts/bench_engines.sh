#!/bin/sh
# bench_engines.sh — regenerate the MMW-vs-ALO head-to-head baseline:
# run both engines over the dense-accept / dense-reject / sparse-exact
# sweep and merge the iteration counts and wall times into
# BENCH_psdp.json under the "engines" key. Fails unless ALO uses
# strictly fewer iterations than MMW at the tight-eps point on every
# case and both engines reach the same decision (psdpbench exits
# nonzero on a gate violation).
set -eu
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_psdp.json}"

go run ./cmd/psdpbench -engines -bench-out "$OUT" ${BENCH_ENGINES_FLAGS:-}

echo "bench-engines: OK (baseline written to $OUT)"

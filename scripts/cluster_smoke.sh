#!/bin/sh
# cluster_smoke.sh — the CI gate for the cluster tier: boot three psdpd
# replicas in -cluster mode plus a psdpfront router, solve through the
# front, re-POST for a relayed cache hit, SIGKILL the replica that owns
# the digest, and require the same request to answer 200 with
# byte-identical content from a survivor (re-route, not error). A
# fresh-seed burst after the kill must see nothing but 2xx/429, and the
# front's /metrics must expose well-formed routing series. Does not
# touch the committed BENCH_psdp.json.
set -eu
cd "$(dirname "$0")/.."

BASE="${PSDP_CLUSTER_PORT:-18731}"
BIN="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/psdpd" ./cmd/psdpd
go build -o "$BIN/psdpfront" ./cmd/psdpfront
go build -o "$BIN/psdpgen" ./cmd/psdpgen

P1=$BASE; P2=$((BASE + 1)); P3=$((BASE + 2)); PF=$((BASE + 3))
U1="http://127.0.0.1:$P1"; U2="http://127.0.0.1:$P2"; U3="http://127.0.0.1:$P3"
MEMBERS="$U1,$U2,$U3"
FRONT="http://127.0.0.1:$PF"

"$BIN/psdpd" -addr "127.0.0.1:$P1" -cluster "$MEMBERS" -self "$U1" -probe-interval 200ms &
PID1=$!; PIDS="$PIDS $PID1"
"$BIN/psdpd" -addr "127.0.0.1:$P2" -cluster "$MEMBERS" -self "$U2" -probe-interval 200ms &
PID2=$!; PIDS="$PIDS $PID2"
"$BIN/psdpd" -addr "127.0.0.1:$P3" -cluster "$MEMBERS" -self "$U3" -probe-interval 200ms &
PID3=$!; PIDS="$PIDS $PID3"
"$BIN/psdpfront" -addr "127.0.0.1:$PF" -members "$MEMBERS" -probe-interval 200ms &
PIDS="$PIDS $!"

for u in "$U1" "$U2" "$U3" "$FRONT"; do
    i=0
    until curl -fs "$u/healthz" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster smoke: $u never became healthy"
            exit 1
        fi
        sleep 0.1
    done
done
i=0
until curl -fs "$FRONT/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "cluster smoke: front never became ready with three healthy members"
        exit 1
    fi
    sleep 0.1
done

# One solve through the front; its digest has exactly one owner.
"$BIN/psdpgen" -family sparse -m 24 -seed 7 -out "$BIN/inst.json"
printf '{"instance":%s,"eps":0.3,"seed":5,"scale":0.2,"maxIter":60}' \
    "$(cat "$BIN/inst.json")" > "$BIN/req.json"

solve() {
    curl -s -D "$BIN/$1.hdrs" -o "$BIN/$1.json" -w '%{http_code}' \
        -H 'Content-Type: application/json' \
        --data-binary @"$BIN/req.json" \
        "$FRONT/v1/decision"
}

code="$(solve first)"
if [ "$code" != "200" ]; then
    echo "cluster smoke: solve via front failed: HTTP $code"
    cat "$BIN/first.json"
    exit 1
fi
grep -q '"outcome"' "$BIN/first.json"
if ! tr -d '\r' < "$BIN/first.hdrs" | grep -qi '^x-psdpd-cache: miss'; then
    echo "cluster smoke: first solve was not a miss (headers below)"
    cat "$BIN/first.hdrs"
    exit 1
fi

# The repeat is a cache hit relayed through the front, bytes unchanged.
code="$(solve repeat)"
if [ "$code" != "200" ]; then
    echo "cluster smoke: repeat via front failed: HTTP $code"
    exit 1
fi
if ! tr -d '\r' < "$BIN/repeat.hdrs" | grep -qi '^x-psdpd-cache: hit'; then
    echo "cluster smoke: repeat was not a relayed cache hit (headers below)"
    cat "$BIN/repeat.hdrs"
    exit 1
fi
cmp -s "$BIN/first.json" "$BIN/repeat.json" || {
    echo "cluster smoke: cache hit returned different bytes"
    exit 1
}
echo "cluster smoke: routed solve + relayed cache hit OK"

# Find the owning replica (the one that solved) and kill it hard.
OWNER_PID=""
OWNER_URL=""
for pair in "$PID1 $U1" "$PID2 $U2" "$PID3 $U3"; do
    pid="${pair% *}"
    url="${pair#* }"
    if curl -s "$url/statsz" | grep -q '"solves":1'; then
        OWNER_PID="$pid"
        OWNER_URL="$url"
    fi
done
if [ -z "$OWNER_PID" ]; then
    echo "cluster smoke: no replica reports the solve"
    exit 1
fi
kill -9 "$OWNER_PID"
echo "cluster smoke: killed owner $OWNER_URL"

# The same request must re-route inside the front — one request, no
# error — and a survivor's deterministic re-solve returns the exact
# bytes the dead owner served.
code="$(solve rerouted)"
if [ "$code" != "200" ]; then
    echo "cluster smoke: post-kill solve failed: HTTP $code (must re-route)"
    cat "$BIN/rerouted.json"
    exit 1
fi
cmp -s "$BIN/first.json" "$BIN/rerouted.json" || {
    echo "cluster smoke: re-routed answer differs from the original bytes"
    exit 1
}
echo "cluster smoke: kill re-route byte-identical OK"

# Fresh work keeps flowing: a burst of new digests over the two
# survivors sees nothing but 2xx (or documented 429 backpressure).
for seed in $(seq 101 110); do
    printf '{"instance":%s,"eps":0.3,"seed":%d,"scale":0.2,"maxIter":60}' \
        "$(cat "$BIN/inst.json")" "$seed" > "$BIN/burst_req.json"
    code="$(curl -s -o "$BIN/burst.json" -w '%{http_code}' \
        -H 'Content-Type: application/json' \
        --data-binary @"$BIN/burst_req.json" \
        "$FRONT/v1/decision")"
    case "$code" in
    2??|429) ;;
    *)
        echo "cluster smoke: burst seed $seed got HTTP $code"
        cat "$BIN/burst.json"
        exit 1
        ;;
    esac
done
echo "cluster smoke: post-kill burst OK"

# The front's routing telemetry must be well-formed Prometheus text.
go run ./scripts/metricscheck "$FRONT/metrics" \
    psdpfront_requests_total \
    psdpfront_routed_total \
    psdpfront_members_healthy

echo "cluster smoke: OK"

#!/bin/sh
# bench_delta.sh — regenerate the incremental-serving baseline: boot
# psdpd, run the drifting-instance workload (psdpload -mode drift),
# and merge the warm-vs-cold report into BENCH_psdp.json under the
# "serve.delta" key. Fails if warm-started solves do not use strictly
# fewer iterations than cold starts (psdpload exits nonzero).
set -eu
cd "$(dirname "$0")/.."

PORT="${PSDPD_PORT:-18727}"
OUT="${BENCH_OUT:-BENCH_psdp.json}"
BIN="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/psdpd" ./cmd/psdpd
go build -o "$BIN/psdpload" ./cmd/psdpload

"$BIN/psdpd" -addr "127.0.0.1:$PORT" &
PID=$!

"$BIN/psdpload" \
    -url "http://127.0.0.1:$PORT" \
    -mode drift -wait 15s \
    -n 6 -m 14 -revisions 16 -drift 0.05 -drift-frac 0.5 -eps 0.25 \
    -bench-out "$OUT"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "bench-delta: OK (baseline written to $OUT)"

#!/bin/sh
# serve_smoke.sh — boot psdpd, drive it with a short 64-way psdpload
# run, and fail on any response that is neither 2xx nor 429 (psdpload
# exits nonzero in that case). A generated general-sparse instance is
# then solved through both the psdpsolve CLI and a direct POST to
# /v1/decision, gating the sparse wire format end to end. This is the
# CI gate for the serving layer; it does not touch the committed
# BENCH_psdp.json.
set -eu
cd "$(dirname "$0")/.."

PORT="${PSDPD_PORT:-18723}"
BIN="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/psdpd" ./cmd/psdpd
go build -o "$BIN/psdpload" ./cmd/psdpload
go build -o "$BIN/psdpgen" ./cmd/psdpgen
go build -o "$BIN/psdpsolve" ./cmd/psdpsolve

"$BIN/psdpd" -addr "127.0.0.1:$PORT" -queue 128 &
PID=$!

# psdpload polls /healthz itself (-wait) before opening the floodgates;
# 64 closed-loop clients over 8 distinct requests exercises admission,
# dedup, and the cache in every combination.
"$BIN/psdpload" \
    -url "http://127.0.0.1:$PORT" \
    -concurrency 64 -duration 3s -wait 15s \
    -n 6 -m 8 -instances 4 -seeds 2 -eps 0.25 \
    -bench-out ""

# Observability gate: after real traffic, /metrics must serve
# well-formed Prometheus text (validated with the same checker the unit
# tests use) carrying the core serving series, and the daemon must
# report ready.
go run ./scripts/metricscheck "http://127.0.0.1:$PORT/metrics" \
    psdpd_requests_total \
    psdpd_solves_total \
    psdpd_admitted_total \
    psdpd_request_seconds_bucket \
    psdpd_solve_seconds_count \
    psdpd_queue_wait_seconds_count \
    psdpd_solver_iterations_total \
    psdpd_solver_phase_seconds_total
curl -fs "http://127.0.0.1:$PORT/readyz" > /dev/null || {
    echo "/readyz not OK on an idle daemon"
    exit 1
}
echo "serve smoke: metrics exposition OK"

# Sparse representation gate: generate an edge-Laplacian sparse
# instance, solve it with the CLI, then POST the same document through
# /v1/decision and require a 200 with a decision body.
"$BIN/psdpgen" -family sparse -m 24 -seed 7 -out "$BIN/sparse.json"
"$BIN/psdpsolve" -in "$BIN/sparse.json" -eps 0.3 -decision > "$BIN/sparse_cli.json"
grep -q '"outcome"' "$BIN/sparse_cli.json"

printf '{"instance":%s,"eps":0.3,"seed":5,"scale":0.2,"maxIter":60}' \
    "$(cat "$BIN/sparse.json")" > "$BIN/sparse_req.json"
code="$(curl -s -o "$BIN/sparse_resp.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' \
    --data-binary @"$BIN/sparse_req.json" \
    "http://127.0.0.1:$PORT/v1/decision")"
if [ "$code" != "200" ]; then
    echo "sparse /v1/decision POST failed: HTTP $code"
    cat "$BIN/sparse_resp.json"
    exit 1
fi
grep -q '"outcome"' "$BIN/sparse_resp.json"
echo "serve smoke: sparse decision OK"

# Incremental-solving gate: POST a base sparse instance through
# /v1/decision, capture its revision digest, POST a drifted delta
# through /v1/delta, and require /statsz to show the warm start took.
printf '{"instance":%s,"eps":0.3,"seed":9,"scale":0.2}' \
    "$(cat "$BIN/sparse.json")" > "$BIN/delta_base_req.json"
curl -s -D "$BIN/delta_base_hdrs" -o "$BIN/delta_base_resp.json" \
    -H 'Content-Type: application/json' \
    --data-binary @"$BIN/delta_base_req.json" \
    "http://127.0.0.1:$PORT/v1/decision" > /dev/null
DIGEST="$(tr -d '\r' < "$BIN/delta_base_hdrs" | awk -F': ' 'tolower($1)=="x-psdpd-digest" {print $2}')"
if [ -z "$DIGEST" ]; then
    echo "base solve returned no X-Psdpd-Digest header"
    cat "$BIN/delta_base_hdrs"
    exit 1
fi

printf '{"instance":{"delta":{"base":"%s","scale":[{"i":0,"by":1.03},{"i":1,"by":0.98}]}},"eps":0.3,"seed":9,"scale":0.2}' \
    "$DIGEST" > "$BIN/delta_req.json"
code="$(curl -s -o "$BIN/delta_resp.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' \
    --data-binary @"$BIN/delta_req.json" \
    "http://127.0.0.1:$PORT/v1/delta")"
if [ "$code" != "200" ]; then
    echo "delta POST failed: HTTP $code"
    cat "$BIN/delta_resp.json"
    exit 1
fi
grep -q '"outcome"' "$BIN/delta_resp.json"

curl -s "http://127.0.0.1:$PORT/statsz" > "$BIN/statsz.json"
if ! grep -q '"warmStarts":[1-9]' "$BIN/statsz.json"; then
    echo "delta solve did not warm-start (statsz below)"
    cat "$BIN/statsz.json"
    exit 1
fi
echo "serve smoke: delta warm-start OK"

# Mixed packing/covering gate: generate a mixed covering-LP instance,
# solve it with the CLI, POST the same document through /v1/mixed, and
# re-POST to require a content-cache hit — the full workload path
# (generator, CLI, endpoint, cache identity) in one pass.
"$BIN/psdpgen" -family mixed-lp -n 8 -m 12 -seed 11 -out "$BIN/mixed.json"
"$BIN/psdpsolve" -in "$BIN/mixed.json" -eps 0.2 > "$BIN/mixed_cli.json"
grep -q '"kind": "mixed"' "$BIN/mixed_cli.json"
grep -q '"status"' "$BIN/mixed_cli.json"

printf '{"instance":%s,"eps":0.2,"seed":5}' \
    "$(cat "$BIN/mixed.json")" > "$BIN/mixed_req.json"
code="$(curl -s -D "$BIN/mixed_hdrs1" -o "$BIN/mixed_resp.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' \
    --data-binary @"$BIN/mixed_req.json" \
    "http://127.0.0.1:$PORT/v1/mixed")"
if [ "$code" != "200" ]; then
    echo "mixed /v1/mixed POST failed: HTTP $code"
    cat "$BIN/mixed_resp.json"
    exit 1
fi
grep -q '"status"' "$BIN/mixed_resp.json"

curl -s -D "$BIN/mixed_hdrs2" -o "$BIN/mixed_resp2.json" \
    -H 'Content-Type: application/json' \
    --data-binary @"$BIN/mixed_req.json" \
    "http://127.0.0.1:$PORT/v1/mixed" > /dev/null
if ! tr -d '\r' < "$BIN/mixed_hdrs2" | grep -qi '^x-psdpd-cache: hit'; then
    echo "identical mixed re-POST was not a cache hit (headers below)"
    cat "$BIN/mixed_hdrs2"
    exit 1
fi
if ! cmp -s "$BIN/mixed_resp.json" "$BIN/mixed_resp2.json"; then
    echo "mixed cache hit returned different bytes"
    exit 1
fi
echo "serve smoke: mixed endpoint + cache hit OK"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "serve smoke: OK"

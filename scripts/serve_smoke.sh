#!/bin/sh
# serve_smoke.sh — boot psdpd, drive it with a short 64-way psdpload
# run, and fail on any response that is neither 2xx nor 429 (psdpload
# exits nonzero in that case). This is the CI gate for the serving
# layer; it does not touch the committed BENCH_psdp.json.
set -eu
cd "$(dirname "$0")/.."

PORT="${PSDPD_PORT:-18723}"
BIN="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/psdpd" ./cmd/psdpd
go build -o "$BIN/psdpload" ./cmd/psdpload

"$BIN/psdpd" -addr "127.0.0.1:$PORT" -queue 128 &
PID=$!

# psdpload polls /healthz itself (-wait) before opening the floodgates;
# 64 closed-loop clients over 8 distinct requests exercises admission,
# dedup, and the cache in every combination.
"$BIN/psdpload" \
    -url "http://127.0.0.1:$PORT" \
    -concurrency 64 -duration 3s -wait 15s \
    -n 6 -m 8 -instances 4 -seeds 2 -eps 0.25 \
    -bench-out ""

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "serve smoke: OK"

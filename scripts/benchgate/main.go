// Command benchgate compares a freshly measured kernel report against
// the committed BENCH_psdp.json baseline and fails when a kernel has
// regressed. It is the enforcement half of `make bench-kernels`: the
// committed file stays the reference, the fresh run is a candidate, and
// the gate holds two rules:
//
//  1. Speed: at sizes n >= -min-n (default 256, where the cache-blocked
//     tiles are load-bearing), the candidate's GOMAXPROCS=1 ns/op must
//     not exceed -max-ratio (default 1.05) times the committed ns/op for
//     the same (kernel, n).
//  2. Allocations: no candidate kernel may allocate per op at
//     GOMAXPROCS=1 unless the committed baseline already records an
//     allocation for the same (kernel, n) — VecDot's one multi-block
//     reduction closure is the lone grandfathered case. MemStats deltas
//     occasionally smear a background allocation across the measured
//     window, so fractional values below 1 alloc/op are treated as
//     zero; values >= 1 mean the kernel itself allocates.
//
// Kernels present in only one of the two files are reported but do not
// fail the gate, so adding or renaming a kernel does not require
// regenerating the baseline in the same change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type kernelResult struct {
	Kernel      string  `json:"kernel"`
	N           int     `json:"n"`
	NsPar1      float64 `json:"ns_par_p1"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type report struct {
	Kernels []kernelResult `json:"kernels"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Kernels) == 0 {
		return nil, fmt.Errorf("%s: no kernels section", path)
	}
	return &r, nil
}

type key struct {
	kernel string
	n      int
}

func main() {
	baseline := flag.String("baseline", "BENCH_psdp.json", "committed baseline report")
	candidate := flag.String("candidate", "", "freshly measured report to gate (required)")
	maxRatio := flag.Float64("max-ratio", 1.05, "maximum candidate/baseline ns ratio at n >= min-n")
	minN := flag.Int("min-n", 256, "smallest size the speed gate applies to")
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	ref := make(map[key]kernelResult, len(base.Kernels))
	for _, k := range base.Kernels {
		ref[key{k.Kernel, k.N}] = k
	}

	failures := 0
	for _, k := range cand.Kernels {
		b, ok := ref[key{k.Kernel, k.N}]
		if k.AllocsPerOp >= 1 && !(ok && b.AllocsPerOp >= 1) {
			failures++
			fmt.Printf("FAIL %-18s n=%-5d %.1f allocs/op, want 0\n", k.Kernel, k.N, k.AllocsPerOp)
		}
		if k.N < *minN {
			continue
		}
		if !ok {
			fmt.Printf("note %-18s n=%-5d has no committed baseline (new kernel or size)\n", k.Kernel, k.N)
			continue
		}
		ratio := k.NsPar1 / b.NsPar1
		status := "ok  "
		if b.NsPar1 > 0 && ratio > *maxRatio {
			failures++
			status = "FAIL"
		}
		fmt.Printf("%s %-18s n=%-5d %12.0f ns vs %12.0f ns committed (%.2fx)\n",
			status, k.Kernel, k.N, k.NsPar1, b.NsPar1, ratio)
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d failure(s) against %s\n", failures, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all kernels within %.2fx of %s at n >= %d, zero allocs/op\n",
		*maxRatio, *baseline, *minN)
}

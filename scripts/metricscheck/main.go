// Command metricscheck fetches a Prometheus text endpoint, validates
// the exposition format (HELP/TYPE ordering, known types, line
// grammar), and requires every series name given as an extra argument
// to appear in the scrape. It exists so shell gates like
// serve_smoke.sh can reuse the same checker the unit tests run
// (internal/obs.CheckExposition) instead of approximating it with grep.
//
// Usage:
//
//	metricscheck http://127.0.0.1:8723/metrics psdpd_requests_total ...
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck <metrics-url> [required-series ...]")
		os.Exit(2)
	}
	url := os.Args[1]
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s: HTTP %d", url, resp.StatusCode))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		fatal(fmt.Errorf("%s: content type %q, want text/plain exposition", url, ct))
	}
	text := string(body)
	if err := obs.CheckExposition(text); err != nil {
		fatal(fmt.Errorf("malformed exposition: %w", err))
	}
	var missing []string
	for _, name := range os.Args[2:] {
		if !strings.Contains(text, name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fatal(fmt.Errorf("scrape is missing required series: %s", strings.Join(missing, ", ")))
	}
	fmt.Printf("metricscheck: %s OK (%d required series present)\n", url, len(os.Args)-2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
	os.Exit(1)
}

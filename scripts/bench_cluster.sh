#!/bin/sh
# bench_cluster.sh — regenerate the horizontal-scaling baseline under
# the "cluster" key of BENCH_psdp.json. Boots 1-, 2-, and 3-replica
# fleets (each behind a psdpfront) in turn and drives each with the
# unique-digest cold workload of `psdpload -mode cluster`, so every
# request is an executed solve somewhere in the fleet and req/s
# measures how well routing spreads capacity.
#
# The benchmark box does not grow cores with replicas, so the replicas
# run with -solve-floor: each executed solve holds a worker at least
# that long, pinning per-replica capacity to workers/floor (the
# capacity model recorded in the bench section). The gate then requires
# near-linear scaling: >= MIN2 x req/s at two replicas and >= MIN3 x at
# three, versus the single-replica run.
set -eu
cd "$(dirname "$0")/.."

BASE="${PSDP_CLUSTER_PORT:-18741}"
OUT="${BENCH_OUT:-BENCH_psdp.json}"
FLOOR="${PSDP_FLOOR:-80ms}"
WORKERS="${PSDP_WORKERS:-2}"
CONCURRENCY="${PSDP_CONCURRENCY:-48}"
DURATION="${PSDP_DURATION:-8s}"
MIN2="${PSDP_MIN2:-1.7}"
MIN3="${PSDP_MIN3:-2.3}"

BIN="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$BIN"
}
trap cleanup EXIT INT TERM

go build -o "$BIN/psdpd" ./cmd/psdpd
go build -o "$BIN/psdpfront" ./cmd/psdpfront
go build -o "$BIN/psdpload" ./cmd/psdpload

FRONT_PORT=$((BASE + 9))
FRONT="http://127.0.0.1:$FRONT_PORT"

run_scale() {
    k="$1"
    members=""
    i=0
    while [ "$i" -lt "$k" ]; do
        members="$members${members:+,}http://127.0.0.1:$((BASE + i))"
        i=$((i + 1))
    done

    pids=""
    i=0
    while [ "$i" -lt "$k" ]; do
        "$BIN/psdpd" -addr "127.0.0.1:$((BASE + i))" \
            -cluster "$members" -self "http://127.0.0.1:$((BASE + i))" \
            -workers "$WORKERS" -solve-floor "$FLOOR" -probe-interval 200ms &
        pids="$pids $!"
        i=$((i + 1))
    done
    "$BIN/psdpfront" -addr "127.0.0.1:$FRONT_PORT" -members "$members" -probe-interval 200ms &
    pids="$pids $!"
    PIDS="$PIDS $pids"

    j=0
    until curl -fs "$FRONT/readyz" > /dev/null 2>&1; do
        j=$((j + 1))
        if [ "$j" -gt 100 ]; then
            echo "bench-cluster: $k-replica front never became ready"
            exit 1
        fi
        sleep 0.1
    done

    "$BIN/psdpload" -mode cluster -url "$FRONT" \
        -replicas "$k" -concurrency "$CONCURRENCY" -duration "$DURATION" \
        -n 6 -m 8 -eps 0.25 \
        -floor "$FLOOR" -workers-per-replica "$WORKERS" \
        -bench-out "$OUT"

    for p in $pids; do kill "$p" 2>/dev/null || true; done
    for p in $pids; do wait "$p" 2>/dev/null || true; done
    PIDS=""
}

for k in 1 2 3; do
    echo "== bench-cluster: $k replica(s)"
    run_scale "$k"
done

go run ./scripts/clustergate -bench "$OUT" -min2 "$MIN2" -min3 "$MIN3"
echo "bench-cluster: OK"

// Race smoke harness: a short, -race-friendly pass that drives every
// fork-join consumer (blocked matrix kernels, both oracles, Lanczos,
// Cholesky, the full decision loop) at a GOMAXPROCS high enough to
// force real goroutine forking. The tier-2 check `go test -race ./...`
// (or `make race`) runs the whole suite under the race detector; this
// file guarantees the hot paths are exercised with concurrency even on
// single-core CI boxes.
package psdp_test

import (
	"math/rand/v2"
	"runtime"
	"testing"

	psdp "repro"
	"repro/internal/chol"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

func TestRaceSmokeKernels(t *testing.T) {
	orig := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(orig)

	rng := rand.New(rand.NewPCG(5, 6))
	n := 64
	a := matrix.New(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	a.Symmetrize()
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}

	// Force forked execution: tiny grains on every primitive.
	parallel.ForBlock(len(a.Data), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = a.Data[i]
		}
	})
	_ = parallel.SumBlocks(len(a.Data), 1, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += a.Data[i]
		}
		return s
	})
	_ = parallel.MaxFloat(len(a.Data), func(i int) float64 { return a.Data[i] })

	// Blocked kernels and their consumers.
	_ = matrix.MulAB(a, a, nil)
	_ = matrix.SymMulAB(a, a, nil)
	_ = matrix.Gram(a, nil)
	_ = matrix.CongruenceDiag(a, v, nil)
	out := make([]float64, 4)
	matrix.DotMany(out, []*matrix.Dense{a, a, a, a}, 1, a)
	dst := matrix.New(n, n)
	matrix.LinComb(dst, []float64{0.5, -0.25}, []*matrix.Dense{a, a})
	_ = a.MulVec(v)
	_ = matrix.VecDot(v, v)

	spd := matrix.Gram(a, nil) // PSD by construction
	if _, _, err := chol.PivotedCholesky(spd, 1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestRaceSmokeDecision(t *testing.T) {
	orig := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(orig)

	rng := rand.New(rand.NewPCG(7, 8))
	inst, err := gen.OrthogonalRankOne(8, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := psdp.Decision(set.WithScale(inst.OPT), 0.25, psdp.Options{Seed: 1, MaxIter: 40}); err != nil {
		t.Fatal(err)
	}

	finst, err := gen.RandomFactored(8, 16, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	fset, err := psdp.NewFactoredSet(finst.Q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := psdp.Decision(fset.WithScale(4), 0.3, psdp.Options{Seed: 2, MaxIter: 25, SketchEps: 0.4}); err != nil {
		t.Fatal(err)
	}

	// Sparse representation: the stacked Ψ·v accumulation, per-row ExpMV
	// fan-out, and batched quadratic forms all under forced forking.
	sinst, err := gen.SparseEdgePacking(graph.Cycle(16))
	if err != nil {
		t.Fatal(err)
	}
	sset, err := psdp.NewSparseSet(sinst.A)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := psdp.Decision(sset.WithScale(0.2), 0.3, psdp.Options{Seed: 3, MaxIter: 25, SketchEps: 0.4}); err != nil {
		t.Fatal(err)
	}
	if _, err := psdp.Decision(sset.WithScale(0.2), 0.3, psdp.Options{Seed: 3, MaxIter: 25, Oracle: psdp.OracleFactoredExact}); err != nil {
		t.Fatal(err)
	}
}

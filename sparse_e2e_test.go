// End-to-end acceptance harness for the general-sparse representation:
// an Erdős–Rényi edge-Laplacian packing instance at production-shaped
// size (m ≥ 512 vertices, nnz ≪ m²) must solve through Decision,
// Maximize, and the psdpd HTTP service with results bitwise identical
// at GOMAXPROCS 1 and 8. The CLI path (psdpgen -family sparse |
// psdpsolve) is exercised by scripts/serve_smoke.sh on the same wire
// format.
package psdp_test

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instio"
	"repro/internal/serve"
)

// sparseERSet builds the m≥512 Erdős–Rényi edge-Laplacian instance
// shared by the e2e tests: ~2.5 expected edges per vertex keeps
// nnz = 4·|E| ≈ 5·m, vanishing next to the m² a densified constraint
// would cost.
func sparseERSet(t *testing.T) (*psdp.SparseSet, *instio.Instance) {
	t.Helper()
	const m = 512
	rng := rand.New(rand.NewPCG(2012, 1201))
	g := graph.ErdosRenyi(m, 2.5/float64(m), rng)
	inst, err := gen.SparseEdgePacking(g)
	if err != nil {
		t.Fatal(err)
	}
	set, err := psdp.NewSparseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	if set.Dim() < 512 {
		t.Fatalf("dimension %d < 512", set.Dim())
	}
	if set.NNZ()*64 > set.Dim()*set.Dim() {
		t.Fatalf("instance not sparse enough: nnz=%d vs m²=%d", set.NNZ(), set.Dim()*set.Dim())
	}
	return set, instio.FromSparseSet(set)
}

func sparseE2EOpts() psdp.Options {
	return psdp.Options{Seed: 42, SketchEps: 0.5, MaxIter: 8}
}

func TestSparseLargeDecisionBitwiseAcrossGOMAXPROCS(t *testing.T) {
	set, _ := sparseERSet(t)
	scaled := set.WithScale(0.05)
	run := func() *psdp.DecisionResult {
		dr, err := psdp.Decision(scaled, 0.3, sparseE2EOpts())
		if err != nil {
			t.Fatal(err)
		}
		return dr
	}
	var dr1, dr8 *psdp.DecisionResult
	atGOMAXPROCS(1, func() { dr1 = run() })
	atGOMAXPROCS(8, func() { dr8 = run() })
	sameDecision(t, "sparse-er-512 decision", dr1, dr8)
	if !(dr1.Lower > 0) || dr1.Upper < dr1.Lower {
		t.Fatalf("invalid certified bracket [%v, %v]", dr1.Lower, dr1.Upper)
	}
	// The witness must verify independently against the sparse operator.
	cert, err := psdp.VerifyDual(scaled, dr1.DualX, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("witness infeasible: λ_max = %v", cert.LambdaMax)
	}
}

func TestSparseLargeMaximizeBitwiseAcrossGOMAXPROCS(t *testing.T) {
	set, _ := sparseERSet(t)
	run := func() *psdp.Solution {
		sol, err := psdp.Maximize(set, 0.3, sparseE2EOpts())
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	var s1, s8 *psdp.Solution
	atGOMAXPROCS(1, func() { s1 = run() })
	atGOMAXPROCS(8, func() { s8 = run() })
	if !sameBits(s1.Lower, s8.Lower) || !sameBits(s1.Upper, s8.Upper) || !sameBits(s1.Value, s8.Value) {
		t.Fatalf("Maximize differs across GOMAXPROCS: [%v, %v] vs [%v, %v]",
			s1.Lower, s1.Upper, s8.Lower, s8.Upper)
	}
	sameVec(t, "sparse-er-512 Maximize.X", s1.X, s8.X)
	cert, err := psdp.VerifyDual(set, s1.X, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("Maximize witness infeasible: λ_max = %v", cert.LambdaMax)
	}
}

func TestSparseLargeDecisionThroughServer(t *testing.T) {
	set, doc := sparseERSet(t)
	want, err := psdp.Decision(set.WithScale(0.05), 0.3, sparseE2EOpts())
	if err != nil {
		t.Fatal(err)
	}

	s := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	req := map[string]any{
		"instance": doc, "eps": 0.3, "seed": 42,
		"scale": 0.05, "sketchEps": 0.5, "maxIter": 8,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/decision", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got serve.DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Outcome != want.Outcome.String() || got.Iterations != want.Iterations {
		t.Fatalf("outcome drift: %s/%d vs %v/%d", got.Outcome, got.Iterations, want.Outcome, want.Iterations)
	}
	if !sameBits(float64(got.Lower), want.Lower) || !sameBits(float64(got.Upper), want.Upper) {
		t.Fatalf("bounds drift: [%v, %v] vs [%v, %v]", got.Lower, got.Upper, want.Lower, want.Upper)
	}
	sameVec(t, "server x", got.X, want.DualX)
}

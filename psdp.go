// Package psdp is a width-independent parallel solver for positive
// semidefinite programs, reproducing Peng, Tangwongsan & Zhang,
// "Faster and Simpler Width-Independent Parallel Algorithms for
// Positive Semidefinite Programming" (SPAA 2012, arXiv:1201.5135).
//
// # Problem
//
// A positive SDP in the paper's primal form (1.1) is
//
//	minimize    C • Y
//	subject to  Aᵢ • Y ≥ bᵢ,   i = 1..n,    Y ≽ 0,
//
// with C, Aᵢ symmetric positive semidefinite and bᵢ ≥ 0. Its normalized
// dual is the packing SDP
//
//	maximize 1ᵀx  subject to  Σᵢ xᵢ Aᵢ ≼ I,  x ≥ 0,
//
// and by strong duality the two optima coincide. The solver produces a
// (1+ε)-approximation with explicitly verified certificates on both
// sides, in O(ε⁻³ log² n) iterations per decision call and O(log n)
// decision calls, independent of the instance's width parameter.
//
// # Entry points
//
//   - NewDenseSet / NewFactoredSet / NewSparseSet wrap packing
//     constraints; factored sets (Aᵢ = QᵢQᵢᵀ with sparse Qᵢ) and
//     general sparse sets (symmetric sparse Aᵢ, e.g. graph Laplacians)
//     enable the nearly-linear-work sketched oracle of the paper's
//     Theorem 4.1 through one shared operator pipeline (PsiOperator).
//   - Decision runs one ε-decision call (Algorithm 3.1).
//   - Maximize runs the full optimizer (binary search of Lemma 2.2).
//   - Solve handles a general positive SDP end to end (Appendix A
//     normalization + optimizer).
//   - VerifyDual / VerifyPrimalDense re-check any witness independently.
//
// All randomness (sketches, Lanczos starts) derives from Options.Seed,
// and all parallel reductions use fixed block trees, so results are
// reproducible at any GOMAXPROCS.
package psdp

import (
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/mixed"
	"repro/internal/sparse"
	"repro/internal/work"
)

// Re-exported types. The implementation lives in internal/core; these
// aliases are the supported public surface.
type (
	// Dense is a dense row-major matrix (entry (i,j) at Data[i*C+j]).
	Dense = matrix.Dense
	// Triplet is an explicit sparse entry.
	Triplet = sparse.Triplet
	// CSC is a compressed sparse column matrix, the factor format.
	CSC = sparse.CSC
	// ConstraintSet is a packing constraint collection (dense, factored,
	// or sparse).
	ConstraintSet = core.ConstraintSet
	// PsiOperator is the representation-agnostic operator view a
	// constraint set exposes to the oracle pipeline: an O(nnz) Ψ(x)·v
	// and batched quadratic forms. FactoredSet and SparseSet implement
	// it and share one oracle code path.
	PsiOperator = core.PsiOperator
	// DenseSet holds constraints as dense PSD matrices.
	DenseSet = core.DenseSet
	// FactoredSet holds constraints as Aᵢ = QᵢQᵢᵀ.
	FactoredSet = core.FactoredSet
	// SparseSet holds constraints as general symmetric sparse matrices
	// (the natural form for graph/Laplacian SDPs).
	SparseSet = core.SparseSet
	// Options configure the solver (oracle choice, seeds, limits).
	Options = core.Options
	// SolveStats accumulates the per-phase wall-time breakdown of a
	// solve when set as Options.Phases: iterations, oracle application,
	// the expm/Lanczos primitives inside it, coordinate updates, and
	// certificate bookkeeping.
	SolveStats = core.SolveStats
	// Params are Algorithm 3.1's constants (K, α, R).
	Params = core.Params
	// DecisionResult reports one ε-decision call with certified bounds.
	DecisionResult = core.DecisionResult
	// DecisionState is a resumable snapshot of a decision run
	// (Options.CaptureState fills DecisionResult.Final): pass it to
	// Resume to continue on the same instance, or to Options.WarmStart
	// to warm-start a solve of a perturbed instance.
	DecisionState = core.DecisionState
	// Solution is the optimizer result with a certified bracket.
	Solution = core.Solution
	// Outcome labels the decision branch (dual/primal/inconclusive).
	Outcome = core.Outcome
	// Program is a general positive SDP in primal form (1.1).
	Program = core.Program
	// CoveringSolution is the end-to-end result for a Program.
	CoveringSolution = core.CoveringSolution
	// DualCertificate reports independent verification of a packing vector.
	DualCertificate = core.DualCertificate
	// PrimalCertificate reports verification of a covering matrix.
	PrimalCertificate = core.PrimalCertificate
	// OracleKind selects the per-iteration exponential primitive.
	OracleKind = core.OracleKind
	// EngineKind selects the iteration dynamics (MMW, ALO, or auto).
	EngineKind = core.EngineKind
	// Workspace is the solver's scratch-buffer arena. Set
	// Options.Workspace to reuse one across sequential solver calls so
	// every call after the first runs allocation-free in steady state;
	// leave it nil and each call manages a private workspace. A
	// Workspace is not safe for concurrent use.
	Workspace = work.Workspace
)

// NewWorkspace returns an empty solver workspace (see Workspace).
func NewWorkspace() *Workspace { return work.New() }

// Outcome and oracle constants.
const (
	OutcomeDual         = core.OutcomeDual
	OutcomePrimal       = core.OutcomePrimal
	OutcomeInconclusive = core.OutcomeInconclusive

	OracleAuto          = core.OracleAuto
	OracleDenseExact    = core.OracleDenseExact
	OracleFactoredJL    = core.OracleFactoredJL
	OracleFactoredExact = core.OracleFactoredExact

	// Engine selection for Options.Engine. EngineMMW (the default) is the
	// paper's Algorithm 3.1; EngineALO is the arXiv:1507.02259 truncated-
	// gradient engine with an O(ε⁻² log² N) iteration budget; EngineAuto
	// picks per instance (see core.ResolveEngine).
	EngineMMW  = core.EngineMMW
	EngineALO  = core.EngineALO
	EngineAuto = core.EngineAuto
)

// NewMatrix returns a zero r-by-c dense matrix.
func NewMatrix(r, c int) *Dense { return matrix.New(r, c) }

// MatrixFromRows builds a dense matrix from rows.
func MatrixFromRows(rows [][]float64) *Dense { return matrix.FromRows(rows) }

// Identity returns the n-by-n identity.
func Identity(n int) *Dense { return matrix.Identity(n) }

// Diag returns a diagonal matrix.
func Diag(d []float64) *Dense { return matrix.Diag(d) }

// NewCSC builds a sparse factor from triplets.
func NewCSC(rows, cols int, trips []Triplet) (*CSC, error) {
	return sparse.NewCSC(rows, cols, trips)
}

// NewDenseSet wraps dense symmetric PSD packing constraints.
func NewDenseSet(a []*Dense) (*DenseSet, error) { return core.NewDenseSet(a) }

// NewFactoredSet wraps factored constraints Aᵢ = QᵢQᵢᵀ.
func NewFactoredSet(q []*CSC) (*FactoredSet, error) { return core.NewFactoredSet(q) }

// NewSparseSet wraps general symmetric sparse constraints. Symmetry is
// validated; the set runs through the same operator oracles as
// factored constraints (Theorem 4.1's sketched bigDotExp and the
// deterministic exact oracle) at O(nnz)-proportional cost.
func NewSparseSet(a []*CSC) (*SparseSet, error) { return core.NewSparseSet(a) }

// ParamsFor computes Algorithm 3.1's constants for an instance shape.
func ParamsFor(n, m int, eps float64) (Params, error) { return core.ParamsFor(n, m, eps) }

// ParseEngine maps an engine name ("mmw", "alo", "auto", or "" for the
// default) to its EngineKind.
func ParseEngine(s string) (EngineKind, error) { return core.ParseEngine(s) }

// ResolveEngine resolves EngineAuto to the concrete engine the solver
// would run for an instance at accuracy eps; concrete kinds pass
// through unchanged.
func ResolveEngine(kind EngineKind, set ConstraintSet, eps float64) EngineKind {
	return core.ResolveEngine(kind, set, eps)
}

// Decision runs one ε-decision call (the paper's Algorithm 3.1,
// decisionPSDP) on the packing constraints: it returns either a
// near-feasible dual solution or a primal covering certificate, plus
// always-valid certified bounds on the packing optimum.
func Decision(set ConstraintSet, eps float64, opts Options) (*DecisionResult, error) {
	return core.DecisionPSDP(set, eps, opts)
}

// Resume continues a decision run from a snapshot taken on the SAME
// instance: the iterate, step index, and certificate bookkeeping all
// carry over, so an interrupted or iteration-capped run picks up where
// it stopped. For a perturbed instance, set Options.WarmStart instead —
// it transfers only the iterate, behind a feasibility guard that falls
// back to a cold start when the drift is too large.
func Resume(set ConstraintSet, eps float64, st *DecisionState, opts Options) (*DecisionResult, error) {
	return core.ResumeDecisionPSDP(set, eps, st, opts)
}

// Maximize approximates max{1ᵀx : Σ xᵢAᵢ ≼ I, x ≥ 0} to relative
// accuracy ε with certified bounds (the paper's Theorem 1.1 pipeline).
func Maximize(set ConstraintSet, eps float64, opts Options) (*Solution, error) {
	return core.MaximizePacking(set, eps, opts)
}

// Solve approximates a general positive SDP (normalization of
// Appendix A followed by the optimizer).
func Solve(p *Program, eps float64, opts Options) (*CoveringSolution, error) {
	return core.SolveCovering(p, eps, opts)
}

// VerifyDual independently certifies a packing vector.
func VerifyDual(set ConstraintSet, x []float64, tol float64) (*DualCertificate, error) {
	return core.VerifyDual(set, x, tol)
}

// VerifyPrimalDense independently certifies a covering matrix against a
// dense constraint set.
func VerifyPrimalDense(set *DenseSet, y *Dense) (*PrimalCertificate, error) {
	return core.VerifyPrimalDense(set, y)
}

// Mixed packing/covering extension (the paper's §5 future-work class:
// matrix packing plus diagonal covering constraints).
type (
	// MixedProblem couples packing constraints with a nonnegative
	// covering matrix C (find x ≥ 0: Σ xᵢAᵢ ≼ I and Cx ≥ 1).
	MixedProblem = mixed.Problem
	// MixedOptions configure SolveMixed.
	MixedOptions = mixed.Options
	// MixedResult reports a verified bicriteria point or inconclusive.
	MixedResult = mixed.Result
	// MixedStatus labels the mixed outcome.
	MixedStatus = mixed.Status
)

// Mixed status constants.
const (
	MixedFeasible     = mixed.StatusFeasible
	MixedInconclusive = mixed.StatusInconclusive
)

// NewMixedProblem validates and wraps a mixed packing/covering system.
func NewMixedProblem(pack ConstraintSet, cover *Dense) (*MixedProblem, error) {
	return mixed.NewProblem(pack, cover)
}

// SolveMixed searches for a verified bicriteria-feasible point of the
// mixed system: coverage ≥ 1−ε and λ_max(Σ xᵢAᵢ) ≤ 1+10ε.
func SolveMixed(p *MixedProblem, eps float64, opts MixedOptions) (*MixedResult, error) {
	return mixed.Solve(p, eps, opts)
}

// IterationInfo is the telemetry passed to Options.OnIteration.
type IterationInfo = core.IterationInfo

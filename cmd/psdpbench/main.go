// Command psdpbench regenerates the experiment tables of EXPERIMENTS.md
// and the dense-kernel performance baseline BENCH_psdp.json.
//
// Usage:
//
//	psdpbench                 # run every experiment at full size
//	psdpbench -table E3       # run one experiment
//	psdpbench -quick          # small sizes (what the test suite runs)
//	psdpbench -seed 7         # change the deterministic seed
//	psdpbench -list           # list experiment ids
//	psdpbench -kernels        # time the dense hot-path kernels at
//	                          # GOMAXPROCS 1 vs N and write BENCH_psdp.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	table := flag.String("table", "", "run only this experiment id (e.g. E3); empty = all")
	quick := flag.Bool("quick", false, "use reduced instance sizes")
	seed := flag.Uint64("seed", 2012, "deterministic seed for all randomness")
	list := flag.Bool("list", false, "list experiments and exit")
	kernels := flag.Bool("kernels", false, "benchmark the dense hot-path kernels and write -bench-out")
	engines := flag.Bool("engines", false, "head-to-head MMW vs ALO engine benchmark; gates the tight-eps crossover and writes -bench-out")
	mixedBench := flag.Bool("mixed", false, "mixed packing/covering benchmark; gates feasibility on witness-feasible instances and writes -bench-out")
	obsBench := flag.Bool("obs", false, "observability overhead benchmark; gates zero telemetry allocs on the solver hot path and writes -bench-out")
	benchOut := flag.String("bench-out", "BENCH_psdp.json", "output path for -kernels/-engines/-mixed JSON report")
	flag.Parse()

	if *obsBench {
		if err := runObsBench(*benchOut, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "psdpbench: observability benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *engines {
		if err := runEngineBench(*benchOut, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "psdpbench: engine benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *mixedBench {
		if err := runMixedBench(*benchOut, *quick, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "psdpbench: mixed benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *kernels {
		// 127 and 257 are non-multiples of every tile, panel, and k-chunk
		// dimension, so the edge/remainder paths are timed, not just the
		// full-tile fast paths.
		sizes := []int{127, 256, 257, 512, 1024}
		if *quick {
			sizes = []int{64, 128}
		}
		if err := runKernelBench(*benchOut, sizes, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "psdpbench: kernel benchmark failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
		return
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	runners := experiments.All()
	if *table != "" {
		r := experiments.ByID(*table)
		if r == nil {
			fmt.Fprintf(os.Stderr, "psdpbench: unknown experiment %q (try -list)\n", *table)
			os.Exit(2)
		}
		runners = []experiments.Runner{*r}
	}

	failed := 0
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Print(tbl.Render())
		fmt.Printf("(%s in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// Command psdpbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	psdpbench                 # run every experiment at full size
//	psdpbench -table E3       # run one experiment
//	psdpbench -quick          # small sizes (what the test suite runs)
//	psdpbench -seed 7         # change the deterministic seed
//	psdpbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	table := flag.String("table", "", "run only this experiment id (e.g. E3); empty = all")
	quick := flag.Bool("quick", false, "use reduced instance sizes")
	seed := flag.Uint64("seed", 2012, "deterministic seed for all randomness")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	runners := experiments.All()
	if *table != "" {
		r := experiments.ByID(*table)
		if r == nil {
			fmt.Fprintf(os.Stderr, "psdpbench: unknown experiment %q (try -list)\n", *table)
			os.Exit(2)
		}
		runners = []experiments.Runner{*r}
	}

	failed := 0
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Print(tbl.Render())
		fmt.Printf("(%s in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

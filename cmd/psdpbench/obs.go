package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instio"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Observability overhead mode (-obs): proves the "zero-overhead" claim
// of the metrics layer with numbers, and gates the parts that must be
// exactly zero.
//
// Two measurements, each telemetry-on vs telemetry-off, interleaved
// (timeOps minima) so drift hits both variants equally:
//
//   - Solver: end-to-end Decision calls with Options.Phases plus an
//     OnIteration callback writing one obs counter, gauge, and
//     histogram per iteration — the full per-iteration telemetry a
//     served solve pays — against the identical solve with neither.
//     GATE: the telemetry variant adds zero heap allocations per call
//     on the dense and sparse-exact paths (the steady-state zero-alloc
//     contract survives with metrics enabled).
//   - Serve: requests through Server.ServeHTTP on the cache-hit path
//     (middleware, request IDs, e2e histograms, admission counters all
//     firing) with metrics enabled vs Config.DisableMetrics.
//
// Wall-clock ratios are recorded in the report and gated only loosely
// (atomics on a hot path cost nanoseconds, but CI machines are noisy;
// a tight timing gate would flake where the alloc gate cannot).

// obsSolverCase is one solver overhead measurement.
type obsSolverCase struct {
	Case      string  `json:"case"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Iters     int     `json:"iterations"`
	NsOff     float64 `json:"ns_per_call_off"`
	NsOn      float64 `json:"ns_per_call_on"`
	Ratio     float64 `json:"ratio_on_off"`
	AllocsOff float64 `json:"allocs_per_call_off"`
	AllocsOn  float64 `json:"allocs_per_call_on"`
	// ExtraAllocs = AllocsOn − AllocsOff: the whole point. Zero means
	// phase capture + per-iteration metric writes allocate nothing.
	ExtraAllocs float64 `json:"extra_allocs_per_call"`
}

// obsServeResult is the serving-path overhead measurement.
type obsServeResult struct {
	NsOff  float64 `json:"ns_per_request_off"`
	NsOn   float64 `json:"ns_per_request_on"`
	RpsOff float64 `json:"requests_per_sec_off"`
	RpsOn  float64 `json:"requests_per_sec_on"`
	Ratio  float64 `json:"ratio_on_off"`
}

// obsReport is the "obs" section of BENCH_psdp.json.
type obsReport struct {
	GoVersion string          `json:"go_version"`
	Procs     int             `json:"gomaxprocs"`
	Solver    []obsSolverCase `json:"solver"`
	Serve     obsServeResult  `json:"serve"`
}

// solverRatioGate and serveRatioGate bound the on/off wall-clock ratio.
// Deliberately loose — the hard guarantee is the alloc gate; these only
// catch a metrics layer that somehow grew a lock or a syscall into the
// hot path.
const (
	solverRatioGate = 1.25
	serveRatioGate  = 1.35
)

func runObsBench(path string, quick bool, seed uint64) error {
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	rep := obsReport{GoVersion: runtime.Version(), Procs: origProcs}
	var gateErrs []string

	for _, c := range obsSolverCases(quick, seed) {
		res := measureObsSolver(c)
		rep.Solver = append(rep.Solver, res)
		fmt.Printf("obs solver %-13s off %11.0f ns/call  on %11.0f ns/call  ratio %.3f  extra allocs %+.1f\n",
			res.Case, res.NsOff, res.NsOn, res.Ratio, res.ExtraAllocs)
		// Allow a fraction of an alloc of MemStats jitter; the real
		// signal of a broken contract is ≥ 1 alloc per call (and a
		// per-iteration alloc shows up as Iters per call).
		if res.ExtraAllocs > 0.5 {
			gateErrs = append(gateErrs, fmt.Sprintf(
				"%s: telemetry adds %.1f allocs/call, want 0", res.Case, res.ExtraAllocs))
		}
		if res.Ratio > solverRatioGate {
			gateErrs = append(gateErrs, fmt.Sprintf(
				"%s: telemetry-on solve is %.2fx the off cost (gate %.2fx)", res.Case, res.Ratio, solverRatioGate))
		}
	}

	runtime.GOMAXPROCS(origProcs) // solver cases pin to 1; serve runs at full width
	sres, err := measureObsServe(seed)
	if err != nil {
		return err
	}
	rep.Serve = sres
	fmt.Printf("obs serve  off %8.0f req/s  on %8.0f req/s  ratio %.3f\n",
		sres.RpsOff, sres.RpsOn, sres.Ratio)
	if sres.Ratio > serveRatioGate {
		gateErrs = append(gateErrs, fmt.Sprintf(
			"serve: metrics-on request path is %.2fx the off cost (gate %.2fx)", sres.Ratio, serveRatioGate))
	}

	if err := mergeObsSection(path, &rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s (obs section)\n", path)
	for _, g := range gateErrs {
		fmt.Fprintf(os.Stderr, "psdpbench: GATE: %s\n", g)
	}
	if len(gateErrs) > 0 {
		return fmt.Errorf("%d observability overhead gate violations", len(gateErrs))
	}
	return nil
}

// obsBenchCase bundles a constraint set with the fixed-budget options
// its overhead run uses.
type obsBenchCase struct {
	name  string
	set   psdp.ConstraintSet
	iters int
	opts  psdp.Options
}

func obsSolverCases(quick bool, seed uint64) []obsBenchCase {
	denseIters, sparseIters := 120, 40
	if quick {
		denseIters, sparseIters = 40, 20
	}
	var cases []obsBenchCase
	{
		rng := rand.New(rand.NewPCG(seed, seed+1))
		inst := gen.RandomDense(32, 48, 8, rng)
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			panic(err)
		}
		cases = append(cases, obsBenchCase{
			name: "dense-exact", set: set.WithScale(0.25), iters: denseIters,
			opts: psdp.Options{Seed: 1, TheoryExact: true, MaxIter: denseIters},
		})
	}
	{
		rng := rand.New(rand.NewPCG(seed+2, seed+3))
		g := graph.ErdosRenyi(64, 4.0/64, rng)
		inst, err := gen.SparseEdgePacking(g)
		if err != nil {
			panic(err)
		}
		set, err := psdp.NewSparseSet(inst.A)
		if err != nil {
			panic(err)
		}
		cases = append(cases, obsBenchCase{
			name: "sparse-exact", set: set.WithScale(0.1), iters: sparseIters,
			opts: psdp.Options{Seed: 3, Oracle: psdp.OracleFactoredExact, TheoryExact: true, MaxIter: sparseIters},
		})
	}
	return cases
}

func measureObsSolver(c obsBenchCase) obsSolverCase {
	// Two pinned workspaces, so the variants never trade warm buffers.
	wsOff, wsOn := psdp.NewWorkspace(), psdp.NewWorkspace()

	offOpts := c.opts
	offOpts.Workspace = wsOff
	off := func() {
		if _, err := psdp.Decision(c.set, 0.25, offOpts); err != nil {
			panic(err)
		}
	}

	// Telemetry on: phase capture plus per-iteration obs writes — the
	// registry, stats struct, and callback all preallocated, exactly as
	// the serve layer holds them.
	reg := obs.NewRegistry()
	iterC := reg.Counter("bench_iterations_total", "x")
	lamG := reg.Gauge("bench_lambda_max", "x")
	normH := reg.Histogram("bench_xnorm", "x", obs.ExpBuckets(0.001, 4, 12))
	var st psdp.SolveStats
	onOpts := c.opts
	onOpts.Workspace = wsOn
	onOpts.Phases = &st
	onOpts.OnIteration = func(info psdp.IterationInfo) bool {
		iterC.Inc()
		lamG.Set(info.LambdaMax)
		normH.Observe(info.XNorm1)
		return true
	}
	on := func() {
		if _, err := psdp.Decision(c.set, 0.25, onOpts); err != nil {
			panic(err)
		}
	}

	setProcs(1)
	ts := timeOps([]timedOp{{op: off, procs: 1}, {op: on, procs: 1}})
	const calls = 8
	aOff, _ := allocsPerOp(off, calls)
	aOn, _ := allocsPerOp(on, calls)
	res := obsSolverCase{
		Case: c.name, N: c.set.N(), M: c.set.Dim(), Iters: c.iters,
		NsOff: ts[0], NsOn: ts[1],
		AllocsOff: aOff, AllocsOn: aOn, ExtraAllocs: aOn - aOff,
	}
	if res.NsOff > 0 {
		res.Ratio = res.NsOn / res.NsOff
	}
	return res
}

func measureObsServe(seed uint64) (obsServeResult, error) {
	rng := rand.New(rand.NewPCG(seed+4, seed+5))
	inst := gen.RandomDense(8, 10, 3, rng)
	set, err := psdp.NewDenseSet(inst.A)
	if err != nil {
		return obsServeResult{}, err
	}
	doc := instio.FromDenseSet(set)
	body, err := json.Marshal(map[string]any{"instance": doc, "eps": 0.25, "seed": 1})
	if err != nil {
		return obsServeResult{}, err
	}

	mk := func(disable bool) (*serve.Server, func(), error) {
		s := serve.New(serve.Config{Workers: 2, DisableMetrics: disable})
		op := func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/decision", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				panic(fmt.Sprintf("serve bench: status %d: %s", rec.Code, rec.Body.String()))
			}
		}
		op() // cold solve; every timed request below is the cache-hit hot path
		return s, op, nil
	}
	sOn, opOn, err := mk(false)
	if err != nil {
		return obsServeResult{}, err
	}
	defer sOn.Close()
	sOff, opOff, err := mk(true)
	if err != nil {
		return obsServeResult{}, err
	}
	defer sOff.Close()

	ts := timeOps([]timedOp{{op: opOff}, {op: opOn}})
	res := obsServeResult{NsOff: ts[0], NsOn: ts[1]}
	if res.NsOff > 0 {
		res.RpsOff = 1e9 / res.NsOff
		res.Ratio = res.NsOn / res.NsOff
	}
	if res.NsOn > 0 {
		res.RpsOn = 1e9 / res.NsOn
	}
	return res, nil
}

// mergeObsSection rewrites only the "obs" key of the bench baseline,
// leaving every other section byte-for-byte as its owning command wrote
// it (same discipline as mergeEnginesSection).
func mergeObsSection(path string, rep *obsReport) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["obs"] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Engine head-to-head mode (-engines): run the MMW (Algorithm 3.1) and
// ALO (arXiv:1507.02259) engines on the same instances across an ε
// sweep and write the iteration counts and wall times under the
// "engines" key of BENCH_psdp.json. The mode GATES the committed
// crossover claim: at the tight-ε point ALO must use strictly fewer
// iterations than MMW on every case and both engines must reach the
// same decision — a regression in either fails the run (exit 1), so
// the baseline in the repo is always one a fresh run can reproduce.

// engineRunResult is one (case, eps, engine) measurement.
type engineRunResult struct {
	Engine     string  `json:"engine"`
	Outcome    string  `json:"outcome"`
	Iterations int     `json:"iterations"`
	NsPerCall  float64 `json:"ns_per_call"`
	Lower      float64 `json:"lower"`
	Upper      float64 `json:"upper"`
}

// enginePointResult is one head-to-head point: both engines on one
// instance at one ε.
type enginePointResult struct {
	Case           string          `json:"case"`
	Representation string          `json:"representation"`
	N              int             `json:"n"`
	M              int             `json:"m"`
	Eps            float64         `json:"eps"`
	MMW            engineRunResult `json:"mmw"`
	ALO            engineRunResult `json:"alo"`
	// IterRatio = alo/mmw iterations: < 1 means ALO won the point.
	IterRatio float64 `json:"iter_ratio"`
}

// enginesReport is the "engines" section of BENCH_psdp.json.
type enginesReport struct {
	// TightEps is the ε at which the crossover gate is enforced.
	TightEps float64             `json:"tight_eps"`
	Points   []enginePointResult `json:"points"`
}

// engineBenchCase is one benchmark instance; opts carries everything
// but the engine.
type engineBenchCase struct {
	name string
	rep  string
	set  psdp.ConstraintSet
	opts psdp.Options
}

// engineBenchCases builds the head-to-head instances: a dense accept
// (dual-exit) family, a dense reject (primal-exit) family with known
// OPT, and a sparse exact-oracle accept — every representation and both
// exit sides, so neither engine can win by specializing to one regime.
func engineBenchCases(seed uint64) ([]engineBenchCase, error) {
	var cases []engineBenchCase
	{
		rng := rand.New(rand.NewPCG(seed, 0))
		inst, err := gen.OrthogonalRankOne(16, 24, rng)
		if err != nil {
			return nil, err
		}
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			return nil, err
		}
		cases = append(cases, engineBenchCase{
			name: "dense-orth-accept", rep: "dense",
			set: set.WithScale(0.5), opts: psdp.Options{Seed: seed},
		})
	}
	{
		inst, err := gen.WidthFamilyExact(8, 10, 4)
		if err != nil {
			return nil, err
		}
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			return nil, err
		}
		// Scale the exactly-known optimum to 0.7: firmly on the reject
		// side at every ε in the sweep.
		cases = append(cases, engineBenchCase{
			name: "dense-width-reject", rep: "dense",
			set: set.WithScale(inst.OPT / 0.7), opts: psdp.Options{Seed: seed},
		})
	}
	{
		rng := rand.New(rand.NewPCG(seed, 1))
		g := graph.ErdosRenyi(14, 0.35, rng)
		inst, err := gen.SparseEdgePacking(g)
		if err != nil {
			return nil, err
		}
		set, err := psdp.NewSparseSet(inst.A)
		if err != nil {
			return nil, err
		}
		cases = append(cases, engineBenchCase{
			name: "sparse-er-exact", rep: "sparse",
			set: set.WithScale(0.2), opts: psdp.Options{Seed: seed, Oracle: psdp.OracleFactoredExact},
		})
	}
	return cases, nil
}

// runEngineOnce times one decision call under one engine.
func runEngineOnce(c engineBenchCase, eps float64, engine psdp.EngineKind) (engineRunResult, error) {
	opts := c.opts
	opts.Engine = engine
	start := time.Now()
	dr, err := psdp.Decision(c.set, eps, opts)
	if err != nil {
		return engineRunResult{}, fmt.Errorf("%s eps=%g engine=%v: %w", c.name, eps, engine, err)
	}
	return engineRunResult{
		Engine:     engine.String(),
		Outcome:    dr.Outcome.String(),
		Iterations: dr.Iterations,
		NsPerCall:  float64(time.Since(start).Nanoseconds()),
		Lower:      dr.Lower,
		Upper:      dr.Upper,
	}, nil
}

// runEngineBench measures the sweep, enforces the tight-ε crossover
// gate, and merges the report under the "engines" key of path,
// preserving every other section.
func runEngineBench(path string, quick bool, seed uint64) error {
	epsSweep := []float64{0.25, 0.1, 0.05}
	if quick {
		epsSweep = []float64{0.25, 0.1}
	}
	tight := epsSweep[len(epsSweep)-1]

	cases, err := engineBenchCases(seed)
	if err != nil {
		return err
	}
	rep := enginesReport{TightEps: tight}
	var gateErrs []string
	for _, c := range cases {
		for _, eps := range epsSweep {
			mmw, err := runEngineOnce(c, eps, psdp.EngineMMW)
			if err != nil {
				return err
			}
			alo, err := runEngineOnce(c, eps, psdp.EngineALO)
			if err != nil {
				return err
			}
			pt := enginePointResult{
				Case: c.name, Representation: c.rep,
				N: c.set.N(), M: c.set.Dim(), Eps: eps,
				MMW: mmw, ALO: alo,
			}
			if mmw.Iterations > 0 {
				pt.IterRatio = float64(alo.Iterations) / float64(mmw.Iterations)
			}
			rep.Points = append(rep.Points, pt)
			fmt.Printf("%-20s eps=%.2f  mmw %6d iters (%8.1fms, %s)  alo %6d iters (%8.1fms, %s)  ratio %.3f\n",
				c.name, eps, mmw.Iterations, mmw.NsPerCall/1e6, mmw.Outcome,
				alo.Iterations, alo.NsPerCall/1e6, alo.Outcome, pt.IterRatio)
			if mmw.Outcome != alo.Outcome {
				gateErrs = append(gateErrs, fmt.Sprintf(
					"%s eps=%g: engines disagree (mmw=%s, alo=%s)", c.name, eps, mmw.Outcome, alo.Outcome))
			}
			if eps == tight && alo.Iterations >= mmw.Iterations {
				gateErrs = append(gateErrs, fmt.Sprintf(
					"%s eps=%g: alo used %d iterations, mmw %d — crossover claim violated",
					c.name, eps, alo.Iterations, mmw.Iterations))
			}
		}
	}
	if err := mergeEnginesSection(path, &rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s (engines section, tight eps %.2f)\n", path, tight)
	for _, msg := range gateErrs {
		fmt.Fprintf(os.Stderr, "psdpbench: GATE: %s\n", msg)
	}
	if len(gateErrs) > 0 {
		return fmt.Errorf("%d engine-crossover gate violations", len(gateErrs))
	}
	return nil
}

// mergeEnginesSection rewrites only the "engines" key of the bench
// baseline, leaving every other section (kernels, decision, serve,
// serve.delta) byte-for-byte as the command that owns it wrote it.
func mergeEnginesSection(path string, rep *enginesReport) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["engines"] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

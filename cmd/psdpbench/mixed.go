package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Mixed packing/covering mode (-mixed): solve witness-feasible mixed
// instances from both generator families under both engines and write
// the iteration counts and wall times under the "mixed" key of
// BENCH_psdp.json. The mode GATES solver health: every run must end
// verified feasible (the generators construct instances with a known
// interior witness, so an inconclusive run is a solver regression, not
// a hard instance) and the two engines must agree on the status.

// mixedRunResult is one (case, engine) measurement.
type mixedRunResult struct {
	Engine      string  `json:"engine"`
	Status      string  `json:"status"`
	Iterations  int     `json:"iterations"`
	Capped      int     `json:"capped"`
	NsPerCall   float64 `json:"ns_per_call"`
	MinCoverage float64 `json:"min_coverage"`
	LambdaMax   float64 `json:"lambda_max"`
}

// mixedPointResult is one head-to-head point: both engines on one
// generated mixed instance.
type mixedPointResult struct {
	Case           string         `json:"case"`
	Representation string         `json:"representation"`
	N              int            `json:"n"`
	M              int            `json:"m"`
	CoverRows      int            `json:"cover_rows"`
	Eps            float64        `json:"eps"`
	MMW            mixedRunResult `json:"mmw"`
	ALO            mixedRunResult `json:"alo"`
}

// mixedReport is the "mixed" section of BENCH_psdp.json.
type mixedReport struct {
	Eps    float64            `json:"eps"`
	Points []mixedPointResult `json:"points"`
}

// mixedBenchCase is one benchmark instance.
type mixedBenchCase struct {
	name string
	rep  string
	prob *psdp.MixedProblem
}

// mixedBenchCases builds one instance per generator family: the dense
// covering-LP construction and the sparse grouped-Laplacian graph
// construction — both representations of the packing side the serving
// layer distinguishes.
func mixedBenchCases(quick bool, seed uint64) ([]mixedBenchCase, error) {
	nLP, mLP, nG, mG := 24, 32, 16, 64
	if quick {
		nLP, mLP, nG, mG = 8, 10, 6, 20
	}
	var cases []mixedBenchCase
	{
		rng := rand.New(rand.NewPCG(seed, 10))
		inst, err := gen.MixedCoveringLP(nLP, mLP, max(2, nLP/2), 0.5, rng)
		if err != nil {
			return nil, err
		}
		pack, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			return nil, err
		}
		prob, err := psdp.NewMixedProblem(pack, inst.C)
		if err != nil {
			return nil, err
		}
		cases = append(cases, mixedBenchCase{name: "mixed-lp", rep: "dense", prob: prob})
	}
	{
		rng := rand.New(rand.NewPCG(seed, 11))
		g := graph.ErdosRenyi(mG, 6.0/float64(mG), rng)
		inst, err := gen.MixedGraphCovering(g, nG, max(2, nG/2), rng)
		if err != nil {
			return nil, err
		}
		pack, err := psdp.NewSparseSet(inst.A)
		if err != nil {
			return nil, err
		}
		prob, err := psdp.NewMixedProblem(pack, inst.C)
		if err != nil {
			return nil, err
		}
		cases = append(cases, mixedBenchCase{name: "mixed-graph", rep: "sparse", prob: prob})
	}
	return cases, nil
}

// runMixedOnce times one mixed solve under one engine.
func runMixedOnce(c mixedBenchCase, eps float64, seed uint64, engine psdp.EngineKind) (mixedRunResult, error) {
	start := time.Now()
	mr, err := psdp.SolveMixed(c.prob, eps, psdp.MixedOptions{Seed: seed, Engine: engine})
	if err != nil {
		return mixedRunResult{}, fmt.Errorf("%s engine=%v: %w", c.name, engine, err)
	}
	return mixedRunResult{
		Engine:      mr.Engine,
		Status:      mr.Status.String(),
		Iterations:  mr.Iterations,
		Capped:      mr.Capped,
		NsPerCall:   float64(time.Since(start).Nanoseconds()),
		MinCoverage: mr.MinCoverage,
		LambdaMax:   mr.LambdaMax,
	}, nil
}

// runMixedBench measures both cases, enforces the feasibility and
// engine-agreement gates, and merges the report under the "mixed" key
// of path, preserving every other section.
func runMixedBench(path string, quick bool, seed uint64) error {
	const eps = 0.1
	cases, err := mixedBenchCases(quick, seed)
	if err != nil {
		return err
	}
	rep := mixedReport{Eps: eps}
	var gateErrs []string
	for _, c := range cases {
		mmw, err := runMixedOnce(c, eps, seed, psdp.EngineMMW)
		if err != nil {
			return err
		}
		alo, err := runMixedOnce(c, eps, seed, psdp.EngineALO)
		if err != nil {
			return err
		}
		pt := mixedPointResult{
			Case: c.name, Representation: c.rep,
			N: c.prob.Pack.N(), M: c.prob.Pack.Dim(), CoverRows: c.prob.Cover.R,
			Eps: eps, MMW: mmw, ALO: alo,
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("%-14s mmw %6d iters (%8.1fms, %s)  alo %6d iters (%8.1fms, %s)\n",
			c.name, mmw.Iterations, mmw.NsPerCall/1e6, mmw.Status,
			alo.Iterations, alo.NsPerCall/1e6, alo.Status)
		for _, r := range []mixedRunResult{mmw, alo} {
			if r.Status != psdp.MixedFeasible.String() {
				gateErrs = append(gateErrs, fmt.Sprintf(
					"%s engine=%s: %s on a witness-feasible instance (coverage %g, λ %g)",
					c.name, r.Engine, r.Status, r.MinCoverage, r.LambdaMax))
			}
		}
		if mmw.Status != alo.Status {
			gateErrs = append(gateErrs, fmt.Sprintf(
				"%s: engines disagree (mmw=%s, alo=%s)", c.name, mmw.Status, alo.Status))
		}
	}
	if err := mergeMixedSection(path, &rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s (mixed section, eps %.2f)\n", path, eps)
	for _, msg := range gateErrs {
		fmt.Fprintf(os.Stderr, "psdpbench: GATE: %s\n", msg)
	}
	if len(gateErrs) > 0 {
		return fmt.Errorf("%d mixed-feasibility gate violations", len(gateErrs))
	}
	return nil
}

// mergeMixedSection rewrites only the "mixed" key of the bench
// baseline, leaving every other section byte-for-byte as the command
// that owns it wrote it.
func mergeMixedSection(path string, rep *mixedReport) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["mixed"] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"time"

	psdp "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Kernel benchmark mode (-kernels): times each dense hot-path kernel at
// GOMAXPROCS=1 and GOMAXPROCS=N against a pure sequential reference and
// writes the results as machine-readable JSON (BENCH_psdp.json). This
// file is the perf baseline every later scaling PR is measured against.

// kernelResult is one (kernel, size) measurement.
type kernelResult struct {
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	// NsSeq is ns/op of the straightforward sequential reference.
	NsSeq float64 `json:"ns_seq"`
	// NsPar1 is ns/op of the blocked kernel at GOMAXPROCS=1.
	NsPar1 float64 `json:"ns_par_p1"`
	// NsParN is ns/op of the blocked kernel at GOMAXPROCS=Procs.
	NsParN float64 `json:"ns_par_pN"`
	// Speedup is NsSeq / NsParN.
	Speedup float64 `json:"speedup"`
	// AllocsPerOp and BytesPerOp are heap allocations of the blocked
	// kernel at GOMAXPROCS=1 (the regime the workspace refactor pins:
	// serial fast paths fire, fork closures are never built).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// decisionResult is one end-to-end Decision-call measurement: the
// steady-state cost of a full Algorithm 3.1 run with a warm shared
// workspace, plus its per-iteration allocation rate — the headline
// number of the zero-allocation workspace refactor.
type decisionResult struct {
	Case        string  `json:"case"`
	N           int     `json:"n"`
	M           int     `json:"m"`
	Iterations  int     `json:"iterations"`
	NsPerCall   float64 `json:"ns_per_call"`
	AllocsPerOp float64 `json:"allocs_per_call"`
	BytesPerOp  float64 `json:"bytes_per_call"`
	// AllocsPerIter is AllocsPerOp spread over the run's iterations:
	// ~0 on the dense path (all per-call setup), small on the JL path.
	AllocsPerIter float64 `json:"allocs_per_iter"`
}

// benchMeta records the environment a kernel report was measured in, so
// numbers in a committed BENCH_psdp.json are interpretable on another
// machine: the parallel regime (GOMAXPROCS/NumCPU), the toolchain, and
// which inner-kernel implementation was active behind the dispatch seam
// ("go-tiled" unless a build-tagged SIMD backend installed itself).
type benchMeta struct {
	GoVersion    string `json:"go_version"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	DispatchPath string `json:"dispatch_path"`
}

// benchReport is the top-level BENCH_psdp.json document.
type benchReport struct {
	Meta      benchMeta        `json:"meta"`
	GoVersion string           `json:"go_version"`
	Procs     int              `json:"gomaxprocs"`
	NumCPU    int              `json:"num_cpu"`
	Sizes     []int            `json:"sizes"`
	Kernels   []kernelResult   `json:"kernels"`
	Decision  []decisionResult `json:"decision"`
	// Serve is the serving-layer baseline owned by cmd/psdpload; a
	// kernel rerun carries the existing section over untouched.
	Serve json.RawMessage `json:"serve,omitempty"`
	// ServeDelta is the incremental-solving (warm vs cold) baseline
	// owned by cmd/psdpload -mode drift; preserved the same way.
	ServeDelta json.RawMessage `json:"serve.delta,omitempty"`
	// Engines is the MMW-vs-ALO head-to-head baseline owned by
	// psdpbench -engines; preserved the same way.
	Engines json.RawMessage `json:"engines,omitempty"`
	// Mixed is the mixed packing/covering baseline owned by
	// psdpbench -mixed; preserved the same way.
	Mixed json.RawMessage `json:"mixed,omitempty"`
	// Obs is the observability-overhead baseline owned by
	// psdpbench -obs; preserved the same way.
	Obs json.RawMessage `json:"obs,omitempty"`
	// Cluster is the multi-replica scaling baseline owned by
	// cmd/psdpload -mode cluster; preserved the same way.
	Cluster json.RawMessage `json:"cluster,omitempty"`
}

// allocsPerOp measures heap allocations and bytes per invocation of op,
// at the current GOMAXPROCS, via MemStats deltas (the same counters
// testing.AllocsPerRun reads).
func allocsPerOp(op func(), iters int) (allocs, bytes float64) {
	if iters < 1 {
		iters = 1
	}
	op() // warm-up: pools fill, lazy state builds
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		op()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
}

// benchKernel describes one kernel: a setup returning (parallel op,
// sequential reference op) closures for size n.
type benchKernel struct {
	name  string
	build func(n int, rng *rand.Rand) (par, seq func())
}

// Benchmark sinks: every op stores its result here so the compiler
// cannot dead-code-eliminate any part of either variant (reductions
// with discarded results otherwise measure as faster than they are).
var (
	sinkF float64
	sinkM *matrix.Dense
	sinkV []float64
)

func kernelTable() []benchKernel {
	return []benchKernel{
		{name: "Gram", build: func(n int, rng *rand.Rand) (func(), func()) {
			q := randMat(n, n/4+1, rng)
			dst := matrix.New(n, n)
			ref := matrix.New(n, n)
			return func() { matrix.GramInto(dst, q, nil); sinkM = dst },
				func() { seqGramInto(ref, q); sinkM = ref }
		}},
		{name: "SymMulAB", build: func(n int, rng *rand.Rand) (func(), func()) {
			// B·B is symmetric, the shape of every Horner step in
			// TaylorExpPSD (a polynomial in B times B).
			b := randSym(n, rng)
			dst := matrix.New(n, n)
			ref := matrix.New(n, n)
			return func() { matrix.SymMulABInto(dst, b, b, nil); sinkM = dst },
				func() { seqMulABInto(ref, b, b); sinkM = ref }
		}},
		{name: "MulAB", build: func(n int, rng *rand.Rand) (func(), func()) {
			a := randMat(n, n, rng)
			b := randMat(n, n, rng)
			dst := matrix.New(n, n)
			ref := matrix.New(n, n)
			return func() { matrix.MulABInto(dst, a, b, nil); sinkM = dst },
				func() { seqMulABInto(ref, a, b); sinkM = ref }
		}},
		{name: "CongruenceDiag", build: func(n int, rng *rand.Rand) (func(), func()) {
			v := randMat(n, n, rng)
			d := randVec(n, rng)
			dst := matrix.New(n, n)
			ref := matrix.New(n, n)
			return func() { matrix.CongruenceDiagInto(dst, v, d, nil); sinkM = dst },
				func() { seqCongruenceDiagInto(ref, v, d); sinkM = ref }
		}},
		{name: "DotMany", build: func(n int, rng *rand.Rand) (func(), func()) {
			// n constraints of dimension ~sqrt-scaled so the batch is the
			// hot axis, as in the dense oracle's ratio sweep.
			m := 64
			as := make([]*matrix.Dense, n)
			for i := range as {
				as[i] = randMat(m, m, rng)
			}
			p := randMat(m, m, rng)
			out := make([]float64, n)
			return func() { matrix.DotMany(out, as, 1.25, p); sinkV = out },
				func() { seqDotMany(out, as, 1.25, p); sinkV = out }
		}},
		{name: "LinComb", build: func(n int, rng *rand.Rand) (func(), func()) {
			m := 64
			k := n / 8
			if k < 1 {
				k = 1
			}
			mats := make([]*matrix.Dense, k)
			for i := range mats {
				mats[i] = randMat(m, m, rng)
			}
			coeffs := randVec(k, rng)
			dst := matrix.New(m, m)
			return func() { matrix.LinComb(dst, coeffs, mats); sinkM = dst },
				func() { seqLinComb(dst, coeffs, mats); sinkM = dst }
		}},
		{name: "MulVec", build: func(n int, rng *rand.Rand) (func(), func()) {
			m := randMat(n, n, rng)
			v := randVec(n, rng)
			dst := make([]float64, n)
			return func() { m.MulVecTo(dst, v); sinkV = dst },
				func() { seqMulVec(dst, m, v); sinkV = dst }
		}},
		{name: "VecDot", build: func(n int, rng *rand.Rand) (func(), func()) {
			// Reduction over n² entries to give the block tree real work.
			a := randVec(n*n, rng)
			b := randVec(n*n, rng)
			return func() { sinkF = matrix.VecDot(a, b) }, func() { sinkF = seqDot(a, b) }
		}},
	}
}

// sparseKernelTable times the general-sparse symmetric kernels at two
// nnz densities (~4 and ~16 stored entries per row): the n-vertex
// symmetric matvec (SymMV), the stacked multi-matrix accumulation
// Ψ(x)·v (AccumulateScaled, 8 constraints), and the batched
// per-constraint quadratic forms (QuadForms). Sequential references are
// plain loops over the same canonical entry order.
func sparseKernelTable() []benchKernel {
	var ks []benchKernel
	for _, deg := range []int{4, 16} {
		deg := deg
		ks = append(ks,
			benchKernel{name: fmt.Sprintf("SymMV-d%d", deg), build: func(n int, rng *rand.Rand) (func(), func()) {
				a := randSymCSC(n, deg, rng)
				v := randVec(n, rng)
				dst := make([]float64, n)
				ref := make([]float64, n)
				return func() { a.SymMulVecInto(dst, v); sinkV = dst },
					func() { seqSymMV(ref, a, v); sinkV = ref }
			}},
			benchKernel{name: fmt.Sprintf("AccumulateScaled-d%d", deg), build: func(n int, rng *rand.Rand) (func(), func()) {
				const nc = 8
				as := make([]*sparse.CSC, nc)
				for i := range as {
					as[i] = randSymCSC(n, deg/2+1, rng)
				}
				st, err := sparse.NewStack(as)
				if err != nil {
					panic(err)
				}
				x := randVec(nc, rng)
				v := randVec(n, rng)
				dst := make([]float64, n)
				ref := make([]float64, n)
				return func() { st.AccumulateScaled(dst, x, v); sinkV = dst },
					func() { seqAccumulateScaled(ref, st, x, v); sinkV = ref }
			}},
			benchKernel{name: fmt.Sprintf("QuadForms-d%d", deg), build: func(n int, rng *rand.Rand) (func(), func()) {
				const nc = 16
				as := make([]*sparse.CSC, nc)
				for i := range as {
					as[i] = randSymCSC(n, deg/2+1, rng)
				}
				v := randVec(n, rng)
				out := make([]float64, nc)
				return func() { sparse.QuadForms(out, as, 1.5, v); sinkV = out },
					func() { seqQuadForms(out, as, 1.5, v); sinkV = out }
			}})
	}
	return ks
}

// runKernelBench measures every kernel at every size and writes the
// JSON report to path.
func runKernelBench(path string, sizes []int, seed uint64) error {
	// Fail fast on an unwritable output path rather than after minutes
	// of measurement.
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)
	procs := runtime.NumCPU()
	if procs < origProcs {
		procs = origProcs
	}

	rep := benchReport{
		Meta: benchMeta{
			GoVersion:    runtime.Version(),
			GOMAXPROCS:   procs,
			NumCPU:       runtime.NumCPU(),
			DispatchPath: matrix.DispatchPath(),
		},
		GoVersion: runtime.Version(),
		Procs:     procs,
		NumCPU:    runtime.NumCPU(),
		Sizes:     sizes,
	}
	for _, k := range append(kernelTable(), sparseKernelTable()...) {
		for _, n := range sizes {
			rng := rand.New(rand.NewPCG(seed, uint64(n)))
			par, seq := k.build(n, rng)
			res := kernelResult{Kernel: k.name, N: n}
			// Interleave the three variants round-robin and keep per-variant
			// minima, so slow drift (GC, noisy neighbours, frequency
			// scaling) hits all variants equally instead of whichever ran
			// last.
			ts := timeOps([]timedOp{
				{op: seq},
				{op: par, procs: 1},
				{op: par, procs: procs},
			})
			runtime.GOMAXPROCS(origProcs)
			res.NsSeq, res.NsPar1, res.NsParN = ts[0], ts[1], ts[2]
			if res.NsParN > 0 {
				res.Speedup = res.NsSeq / res.NsParN
			}
			setProcs(1)
			res.AllocsPerOp, res.BytesPerOp = allocsPerOp(par, 16)
			runtime.GOMAXPROCS(origProcs)
			rep.Kernels = append(rep.Kernels, res)
			fmt.Printf("%-16s n=%-5d seq %12.0f ns  par@1 %12.0f ns  par@%d %12.0f ns  speedup %.2fx  %6.1f allocs/op %9.0f B/op\n",
				k.name, n, res.NsSeq, res.NsPar1, procs, res.NsParN, res.Speedup, res.AllocsPerOp, res.BytesPerOp)
		}
	}
	rep.Decision = runDecisionBench()
	// Preserve the psdpload sections across kernel reruns.
	if data, err := os.ReadFile(path); err == nil {
		var old benchReport
		if json.Unmarshal(data, &old) == nil {
			rep.Serve = old.Serve
			rep.ServeDelta = old.ServeDelta
			rep.Engines = old.Engines
			rep.Mixed = old.Mixed
			rep.Obs = old.Obs
			rep.Cluster = old.Cluster
		}
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// runDecisionBench measures end-to-end Decision calls — dense and
// factored-JL — with a shared workspace, at GOMAXPROCS=1: wall time per
// call, heap allocations per call, and allocations amortized per MMW
// iteration. The dense per-iteration rate is ~0 by the workspace
// contract (all remaining allocations are per-call result assembly).
func runDecisionBench() []decisionResult {
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)
	setProcs(1)

	var out []decisionResult

	// Dense: random PSD constraints, fixed iteration budget so every
	// call costs the same.
	{
		rng := rand.New(rand.NewPCG(77, 78))
		inst := gen.RandomDense(32, 48, 8, rng)
		set, err := psdp.NewDenseSet(inst.A)
		if err != nil {
			panic(err)
		}
		scaled := set.WithScale(0.25)
		ws := psdp.NewWorkspace()
		const iters = 120
		opts := psdp.Options{Seed: 1, TheoryExact: true, MaxIter: iters, Workspace: ws}
		op := func() {
			if _, err := psdp.Decision(scaled, 0.25, opts); err != nil {
				panic(err)
			}
		}
		out = append(out, measureDecision("dense-exact", set.N(), set.Dim(), iters, op))
	}

	// Factored JL: sparse rank-2 factors through the sketched oracle.
	{
		rng := rand.New(rand.NewPCG(79, 80))
		inst, err := gen.RandomFactored(48, 96, 2, 4, rng)
		if err != nil {
			panic(err)
		}
		set, err := psdp.NewFactoredSet(inst.Q)
		if err != nil {
			panic(err)
		}
		scaled := set.WithScale(0.02)
		ws := psdp.NewWorkspace()
		const iters = 40
		opts := psdp.Options{Seed: 2, TheoryExact: true, MaxIter: iters, SketchEps: 0.4, Workspace: ws}
		op := func() {
			if _, err := psdp.Decision(scaled, 0.25, opts); err != nil {
				panic(err)
			}
		}
		out = append(out, measureDecision("factored-jl", set.N(), set.Dim(), iters, op))
	}

	// General sparse through the deterministic exact operator oracle:
	// an Erdős–Rényi edge-Laplacian packing workload. Steady-state
	// iterations allocate nothing (the sparse zero-alloc contract); the
	// reported allocs/call are per-call setup and result assembly.
	{
		rng := rand.New(rand.NewPCG(83, 84))
		g := graph.ErdosRenyi(64, 4.0/64, rng)
		inst, err := gen.SparseEdgePacking(g)
		if err != nil {
			panic(err)
		}
		set, err := psdp.NewSparseSet(inst.A)
		if err != nil {
			panic(err)
		}
		scaled := set.WithScale(0.1)
		ws := psdp.NewWorkspace()
		const iters = 40
		opts := psdp.Options{Seed: 3, Oracle: psdp.OracleFactoredExact, TheoryExact: true, MaxIter: iters, Workspace: ws}
		op := func() {
			if _, err := psdp.Decision(scaled, 0.25, opts); err != nil {
				panic(err)
			}
		}
		out = append(out, measureDecision("sparse-exact", set.N(), set.Dim(), iters, op))
	}
	return out
}

func measureDecision(name string, n, m, iters int, op func()) decisionResult {
	op() // warm the workspace
	const calls = 6
	start := time.Now()
	for i := 0; i < calls; i++ {
		op()
	}
	ns := float64(time.Since(start).Nanoseconds()) / calls
	allocs, bytes := allocsPerOp(op, calls)
	res := decisionResult{
		Case:          name,
		N:             n,
		M:             m,
		Iterations:    iters,
		NsPerCall:     ns,
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		AllocsPerIter: allocs / float64(iters),
	}
	fmt.Printf("decision %-12s n=%-3d m=%-3d iters=%-4d %12.0f ns/call %8.1f allocs/call %9.0f B/call %6.2f allocs/iter\n",
		name, n, m, iters, res.NsPerCall, allocs, bytes, res.AllocsPerIter)
	return res
}

// timedOp is one benchmark variant: op runs under GOMAXPROCS=procs
// (0 keeps the current setting).
type timedOp struct {
	op    func()
	procs int
}

// timeOps measures ns/op for each variant with interleaved rounds:
// iteration counts are calibrated per variant for a ~20ms round, then
// several rounds run round-robin across variants and the per-variant
// minimum is reported.
func timeOps(ops []timedOp) []float64 {
	const (
		roundBudget = 20 * time.Millisecond
		rounds      = 9
	)
	iters := make([]int, len(ops))
	for i, t := range ops {
		setProcs(t.procs)
		t.op() // warm up
		it := 1
		for {
			start := time.Now()
			for k := 0; k < it; k++ {
				t.op()
			}
			el := time.Since(start)
			if el >= roundBudget || it >= 1<<20 {
				break
			}
			next := int(float64(it) * float64(roundBudget) / float64(el+1) * 1.2)
			if next <= it {
				next = it * 2
			}
			it = next
		}
		iters[i] = it
	}
	best := make([]float64, len(ops))
	for r := 0; r < rounds; r++ {
		for k := 0; k < len(ops); k++ {
			// Alternate the visiting order between rounds so slow drift
			// does not systematically tax the later variants.
			i := k
			if r%2 == 1 {
				i = len(ops) - 1 - k
			}
			t := ops[i]
			setProcs(t.procs)
			start := time.Now()
			for it := 0; it < iters[i]; it++ {
				t.op()
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(iters[i])
			if r == 0 || ns < best[i] {
				best[i] = ns
			}
		}
	}
	return best
}

func setProcs(p int) {
	if p > 0 {
		runtime.GOMAXPROCS(p)
	}
}

// --- sequential reference implementations (no fork-join, no blocks) ---

func seqGramInto(out, q *matrix.Dense) {
	n, k := q.R, q.C
	for i := 0; i < n; i++ {
		qi := q.Data[i*k : (i+1)*k]
		for j := i; j < n; j++ {
			qj := q.Data[j*k : (j+1)*k]
			var s float64
			for l, v := range qi {
				s += v * qj[l]
			}
			out.Data[i*n+j] = s
			out.Data[j*n+i] = s
		}
	}
}

func seqMulABInto(out, a, b *matrix.Dense) {
	k, c := a.C, b.C
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*c : (i+1)*c]
		for l, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[l*c : (l+1)*c]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

func seqCongruenceDiagInto(out, v *matrix.Dense, d []float64) {
	n, k := v.R, v.C
	for i := 0; i < n; i++ {
		vi := v.Data[i*k : (i+1)*k]
		for j := i; j < n; j++ {
			vj := v.Data[j*k : (j+1)*k]
			var s float64
			for l, vv := range vi {
				s += vv * d[l] * vj[l]
			}
			out.Data[i*n+j] = s
			out.Data[j*n+i] = s
		}
	}
}

func seqDotMany(out []float64, as []*matrix.Dense, scale float64, p *matrix.Dense) {
	for i, a := range as {
		var s float64
		for k, v := range a.Data {
			s += v * p.Data[k]
		}
		out[i] = scale * s
	}
}

func seqLinComb(dst *matrix.Dense, coeffs []float64, mats []*matrix.Dense) {
	for k := range dst.Data {
		dst.Data[k] = 0
	}
	for i, m := range mats {
		c := coeffs[i]
		if c == 0 {
			continue
		}
		for k, v := range m.Data {
			dst.Data[k] += c * v
		}
	}
}

func seqMulVec(dst []float64, m *matrix.Dense, v []float64) {
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
}

func seqDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func seqSymMV(out []float64, a *sparse.CSC, v []float64) {
	for j := 0; j < a.C; j++ {
		var s float64
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			s += a.Val[k] * v[a.Row[k]]
		}
		out[j] = s
	}
}

func seqAccumulateScaled(out []float64, st *sparse.Stack, x, v []float64) {
	for r := 0; r < st.M; r++ {
		var s float64
		for p := st.RowPtr[r]; p < st.RowPtr[r+1]; p++ {
			s += st.Val[p] * x[st.Con[p]] * v[st.Col[p]]
		}
		out[r] = s
	}
}

func seqQuadForms(out []float64, as []*sparse.CSC, scale float64, v []float64) {
	for i, a := range as {
		var total float64
		for j := 0; j < a.C; j++ {
			var dot float64
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				dot += a.Val[k] * v[a.Row[k]]
			}
			total += dot * v[j]
		}
		out[i] = scale * total
	}
}

// randSymCSC builds a random symmetric n×n CSC with ~2·deg off-diagonal
// entries per row plus a positive diagonal.
func randSymCSC(n, deg int, rng *rand.Rand) *sparse.CSC {
	var trips []sparse.Triplet
	for i := 0; i < n; i++ {
		trips = append(trips, sparse.Triplet{Row: i, Col: i, Val: 1 + rng.Float64()})
		for d := 0; d < deg; d++ {
			j := rng.IntN(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			trips = append(trips,
				sparse.Triplet{Row: i, Col: j, Val: v},
				sparse.Triplet{Row: j, Col: i, Val: v})
		}
	}
	a, err := sparse.NewCSC(n, n, trips)
	if err != nil {
		panic(err)
	}
	return a
}

func randMat(r, c int, rng *rand.Rand) *matrix.Dense {
	m := matrix.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randSym(n int, rng *rand.Rand) *matrix.Dense {
	m := randMat(n, n, rng)
	m.Symmetrize()
	return m
}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

package main

import (
	"encoding/json"
	"testing"
)

// A kernel rerun must carry the externally-owned sections ("serve",
// "serve.delta", "engines", "mixed",
// "obs", "cluster") over untouched: they are separate
// baselines refreshed by separate commands.
func TestBenchReportPreservesServeSections(t *testing.T) {
	src := []byte(`{"go_version":"x","serve":{"rps":42},"serve.delta":{"iter_ratio":0.45},"engines":{"tight_eps":0.05},"mixed":{"eps":0.1},"obs":{"ratio":1.01},"cluster":{"speedup_2_vs_1":1.9}}`)
	var old benchReport
	if err := json.Unmarshal(src, &old); err != nil {
		t.Fatal(err)
	}
	if string(old.Serve) != `{"rps":42}` {
		t.Fatalf("serve section not carried: %q", old.Serve)
	}
	if string(old.ServeDelta) != `{"iter_ratio":0.45}` {
		t.Fatalf("serve.delta section not carried: %q", old.ServeDelta)
	}
	if string(old.Engines) != `{"tight_eps":0.05}` {
		t.Fatalf("engines section not carried: %q", old.Engines)
	}
	if string(old.Mixed) != `{"eps":0.1}` {
		t.Fatalf("mixed section not carried: %q", old.Mixed)
	}
	if string(old.Obs) != `{"ratio":1.01}` {
		t.Fatalf("obs section not carried: %q", old.Obs)
	}
	if string(old.Cluster) != `{"speedup_2_vs_1":1.9}` {
		t.Fatalf("cluster section not carried: %q", old.Cluster)
	}
	rep := benchReport{GoVersion: "y", Serve: old.Serve, ServeDelta: old.ServeDelta, Engines: old.Engines, Mixed: old.Mixed, Obs: old.Obs, Cluster: old.Cluster}
	out, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]json.RawMessage
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatal(err)
	}
	if string(round["serve"]) != `{"rps":42}` || string(round["serve.delta"]) != `{"iter_ratio":0.45}` || string(round["engines"]) != `{"tight_eps":0.05}` || string(round["mixed"]) != `{"eps":0.1}` || string(round["obs"]) != `{"ratio":1.01}` || string(round["cluster"]) != `{"speedup_2_vs_1":1.9}` {
		t.Fatalf("round-trip lost a section: %s", out)
	}
}

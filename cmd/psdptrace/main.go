// Command psdptrace runs one solve on a JSON instance and streams
// per-iteration telemetry — the run-time view of Lemma 3.2 (λ_max(Ψ)
// tracking ‖x‖₁ under their caps) on the user's own instance.
//
// Usage:
//
//	psdptrace -in instance.json [-eps 0.2] [-every 50] [-max 0]
//	          [-engine mmw|alo|auto] [-json]
//
// The instance document may be dense, factored, or sparse (traced
// per-iteration through the decision solver), or a mixed
// packing/covering document (solved with the §5 extension; the mixed
// engine reports a summary, not per-iteration rows).
//
// Default output is aligned columns: iteration, ‖x‖₁, λ_max(Ψ),
// min/max ratio, |B|. With -json, each traced iteration is one NDJSON
// record and the run ends with a summary record carrying the certified
// bounds and the solver's phase breakdown (oracle/expm/update/
// bookkeeping wall time), machine-readable for plotting pipelines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	psdp "repro"
	"repro/internal/instio"
)

func main() {
	in := flag.String("in", "", "instance JSON file (required)")
	eps := flag.Float64("eps", 0.2, "accuracy parameter in (0,1)")
	every := flag.Int("every", 50, "print every k-th iteration")
	maxIter := flag.Int("max", 0, "iteration cap (0 = theory bound R)")
	seed := flag.Uint64("seed", 1, "seed")
	engine := flag.String("engine", "", "iteration dynamics: mmw, alo, or auto (default mmw)")
	asJSON := flag.Bool("json", false, "emit NDJSON records instead of columns")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "psdptrace: -in is required")
		os.Exit(2)
	}
	eng, err := psdp.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	inst, err := instio.DecodeDocument(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	if inst.Mixed != nil {
		traceMixed(inst, *eps, *maxIter, *seed, eng, *asJSON)
		return
	}
	traceDecision(inst, *eps, *every, *maxIter, *seed, eng, *asJSON)
}

// summary is the final NDJSON record of a -json run.
type summary struct {
	Record     string           `json:"record"` // "summary"
	Kind       string           `json:"kind"`   // "decision" or "mixed"
	Engine     string           `json:"engine"`
	Eps        float64          `json:"eps"`
	Outcome    string           `json:"outcome,omitempty"`
	Status     string           `json:"status,omitempty"`
	Iterations int              `json:"iterations"`
	Lower      float64          `json:"lower,omitempty"`
	Upper      float64          `json:"upper,omitempty"`
	Phases     *psdp.SolveStats `json:"phases,omitempty"`
}

// iterRecord wraps IterationInfo with a record discriminator so a
// stream consumer can split iterations from the summary.
type iterRecord struct {
	Record string `json:"record"` // "iteration"
	psdp.IterationInfo
}

func traceDecision(inst *instio.Instance, eps float64, every, maxIter int, seed uint64, eng psdp.EngineKind, asJSON bool) {
	set, err := instio.Build(inst)
	if err != nil {
		fatal(err)
	}
	resolved := psdp.ResolveEngine(eng, set, eps)
	prm, err := psdp.ParamsFor(set.N(), set.Dim(), eps)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	if !asJSON {
		fmt.Printf("# n=%d m=%d eps=%g engine=%s K=%.4g alpha=%.4g R=%d\n",
			set.N(), set.Dim(), eps, resolved, prm.K, prm.Alpha, prm.R)
		fmt.Printf("# caps: ||x||1 exit at K=%.4g, Lemma 3.2 spectrum cap (1+10e)K=%.4g\n",
			prm.K, (1+10*eps)*prm.K)
		fmt.Printf("%10s  %12s  %12s  %10s  %10s  %6s\n",
			"iter", "||x||_1", "lmax(Psi)", "min r", "max r", "|B|")
	}

	var st psdp.SolveStats
	dr, err := psdp.Decision(set, eps, psdp.Options{
		Seed:    seed,
		MaxIter: maxIter,
		Engine:  eng,
		Phases:  &st,
		OnIteration: func(info psdp.IterationInfo) bool {
			if info.T%max(every, 1) != 0 && info.T != 1 {
				return true
			}
			if asJSON {
				enc.Encode(iterRecord{Record: "iteration", IterationInfo: info})
			} else {
				fmt.Printf("%10d  %12.5g  %12.5g  %10.4g  %10.4g  %6d\n",
					info.T, info.XNorm1, info.LambdaMax, info.MinRatio, info.MaxRatio, info.Updated)
			}
			return true
		},
	})
	if err != nil {
		fatal(err)
	}
	if asJSON {
		enc.Encode(summary{
			Record: "summary", Kind: "decision", Engine: resolved.String(), Eps: eps,
			Outcome: dr.Outcome.String(), Iterations: dr.Iterations,
			Lower: dr.Lower, Upper: dr.Upper, Phases: &st,
		})
		return
	}
	fmt.Printf("# outcome=%s iterations=%d certified: %.6g <= OPT <= %.6g\n",
		dr.Outcome, dr.Iterations, dr.Lower, dr.Upper)
	fmt.Printf("# phases: oracle=%.3fms (expm=%.3fms) update=%.3fms bookkeep=%.3fms\n",
		ms(st.OracleNS), ms(st.ExpmNS), ms(st.UpdateNS), ms(st.BookkeepNS))
}

func traceMixed(inst *instio.Instance, eps float64, maxIter int, seed uint64, eng psdp.EngineKind, asJSON bool) {
	prob, err := instio.BuildMixed(inst)
	if err != nil {
		fatal(err)
	}
	if !asJSON {
		fmt.Printf("# mixed: n=%d m=%d cover=%d eps=%g\n",
			prob.Pack.N(), prob.Pack.Dim(), prob.Cover.R, eps)
	}
	mr, err := psdp.SolveMixed(prob, eps, psdp.MixedOptions{
		MaxIter: maxIter,
		Seed:    seed,
		Engine:  eng,
	})
	if err != nil {
		fatal(err)
	}
	if asJSON {
		json.NewEncoder(os.Stdout).Encode(summary{
			Record: "summary", Kind: "mixed", Engine: mr.Engine, Eps: eps,
			Status: mr.Status.String(), Iterations: mr.Iterations,
		})
		return
	}
	fmt.Printf("# status=%s engine=%s iterations=%d capped=%d minCoverage=%.6g lambdaMax=%.6g\n",
		mr.Status, mr.Engine, mr.Iterations, mr.Capped, mr.MinCoverage, mr.LambdaMax)
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psdptrace: %v\n", err)
	os.Exit(1)
}

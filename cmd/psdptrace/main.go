// Command psdptrace runs one ε-decision call on a JSON instance and
// streams per-iteration telemetry — the run-time view of Lemma 3.2
// (λ_max(Ψ) tracking ‖x‖₁ under their caps) on the user's own instance.
//
// Usage:
//
//	psdptrace -in instance.json [-eps 0.2] [-every 50] [-max 0]
//
// Output columns: iteration, ‖x‖₁, λ_max(Ψ), min/max ratio, |B|.
package main

import (
	"flag"
	"fmt"
	"os"

	psdp "repro"
	"repro/internal/instio"
)

func main() {
	in := flag.String("in", "", "instance JSON file (required)")
	eps := flag.Float64("eps", 0.2, "accuracy parameter in (0,1)")
	every := flag.Int("every", 50, "print every k-th iteration")
	maxIter := flag.Int("max", 0, "iteration cap (0 = theory bound R)")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "psdptrace: -in is required")
		os.Exit(2)
	}
	set, err := instio.Load(*in)
	if err != nil {
		fatal(err)
	}
	prm, err := psdp.ParamsFor(set.N(), set.Dim(), *eps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# n=%d m=%d eps=%g K=%.4g alpha=%.4g R=%d\n",
		set.N(), set.Dim(), *eps, prm.K, prm.Alpha, prm.R)
	fmt.Printf("# caps: ||x||1 exit at K=%.4g, Lemma 3.2 spectrum cap (1+10e)K=%.4g\n",
		prm.K, (1+10**eps)*prm.K)
	fmt.Printf("%10s  %12s  %12s  %10s  %10s  %6s\n",
		"iter", "||x||_1", "lmax(Psi)", "min r", "max r", "|B|")

	dr, err := psdp.Decision(set, *eps, psdp.Options{
		Seed:    *seed,
		MaxIter: *maxIter,
		OnIteration: func(info psdp.IterationInfo) bool {
			if info.T%max(*every, 1) == 0 || info.T == 1 {
				fmt.Printf("%10d  %12.5g  %12.5g  %10.4g  %10.4g  %6d\n",
					info.T, info.XNorm1, info.LambdaMax, info.MinRatio, info.MaxRatio, info.Updated)
			}
			return true
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# outcome=%s iterations=%d certified: %.6g <= OPT <= %.6g\n",
		dr.Outcome, dr.Iterations, dr.Lower, dr.Upper)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psdptrace: %v\n", err)
	os.Exit(1)
}

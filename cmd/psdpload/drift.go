// Drifting-instance workload (-mode drift): the incremental-serving
// benchmark. One sparse base instance is solved through /v1/decision,
// then a chain of revisions — each a small per-constraint scale drift
// of the previous one — is solved twice per step: once through
// /v1/delta (warm-started from the previous revision's stored solver
// state) and once through /v1/decision with the locally materialized
// document (cold start, distinct content address). The report compares
// warm vs cold iteration counts and latency percentiles and lands in
// BENCH_psdp.json under the "serve.delta" key.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instio"
	"repro/internal/serve"
)

type deltaReport struct {
	Revisions      int     `json:"revisions"`
	Drift          float64 `json:"drift"`
	DriftFrac      float64 `json:"drift_frac"`
	N              int     `json:"n"`
	M              int     `json:"m"`
	Eps            float64 `json:"eps"`
	BaseIterations int     `json:"base_iterations"`
	WarmIterTotal  int64   `json:"warm_iter_total"`
	ColdIterTotal  int64   `json:"cold_iter_total"`
	WarmIterAvg    float64 `json:"warm_iter_avg"`
	ColdIterAvg    float64 `json:"cold_iter_avg"`
	// IterRatio = warm/cold: the fraction of cold-start iterations a
	// warm-started solve of a drifted revision actually needs.
	IterRatio     float64 `json:"iter_ratio"`
	WarmP50Ms     float64 `json:"warm_p50_ms"`
	WarmP99Ms     float64 `json:"warm_p99_ms"`
	ColdP50Ms     float64 `json:"cold_p50_ms"`
	ColdP99Ms     float64 `json:"cold_p99_ms"`
	WarmStarts    int64   `json:"warm_starts"`
	ColdFallbacks int64   `json:"cold_fallbacks"`
}

// runDrift executes the drifting workload and returns the process exit
// code.
func runDrift(url string, n, m, revisions int, drift, frac, eps float64, genSeed uint64, scale float64, engine, benchOut string) int {
	rng := rand.New(rand.NewPCG(genSeed, 0xd21f))
	g := graph.ErdosRenyi(m, 6.0/float64(m), rng)
	if g.M() < n {
		fmt.Fprintf(os.Stderr, "psdpload: graph too sparse: %d edges < %d groups\n", g.M(), n)
		return 1
	}
	inst, err := gen.SparseGroupedLaplacians(g, n, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpload: generating base: %v\n", err)
		return 1
	}
	set, err := core.NewSparseSet(inst.A)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpload: %v\n", err)
		return 1
	}
	doc := instio.FromSparseSet(set)
	client := &http.Client{Timeout: 2 * time.Minute}

	baseReq := serve.Request{Instance: doc, Eps: eps, Seed: 1, Scale: scale, Engine: engine}
	baseResp, hdr, _, err := postParsed(client, url+"/v1/decision", &baseReq)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpload: base solve: %v\n", err)
		return 1
	}
	baseDigest := hdr.Get("X-Psdpd-Digest")
	if baseDigest == "" {
		fmt.Fprintln(os.Stderr, "psdpload: base solve returned no X-Psdpd-Digest")
		return 1
	}

	rep := deltaReport{
		Revisions: revisions, Drift: drift, DriftFrac: frac,
		N: n, M: set.Dim(), Eps: eps, BaseIterations: baseResp.Iterations,
	}
	// Snapshot the daemon counters so the report covers THIS run's
	// warm-vs-cold split, not the server's lifetime totals (the target
	// daemon may have served other delta traffic already).
	before, err := fetchStats(client, url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpload: /statsz before run: %v\n", err)
		return 1
	}
	var warmLats, coldLats []time.Duration
	cur := doc
	base := baseDigest
	for r := 0; r < revisions; r++ {
		idx, by := gen.DriftScales(n, frac, drift, rng)
		scales := make([]instio.DeltaScale, len(idx))
		for i := range idx {
			scales[i] = instio.DeltaScale{I: idx[i], By: by[i]}
		}
		deltaDoc := &instio.Instance{Delta: &instio.Delta{Base: base, Scale: scales}}
		dreq := serve.Request{Instance: deltaDoc, Eps: eps, Seed: 1, Scale: scale, Engine: engine}
		t0 := time.Now()
		warm, whdr, _, err := postParsed(client, url+"/v1/delta", &dreq)
		warmLats = append(warmLats, time.Since(t0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpload: revision %d delta: %v\n", r, err)
			return 1
		}
		rep.WarmIterTotal += int64(warm.Iterations)
		base = whdr.Get("X-Psdpd-Digest")

		mat, err := instio.ApplyDelta(cur, deltaDoc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpload: revision %d materialize: %v\n", r, err)
			return 1
		}
		cur = mat
		creq := serve.Request{Instance: mat, Eps: eps, Seed: 1, Scale: scale, Engine: engine}
		t0 = time.Now()
		cold, _, _, err := postParsed(client, url+"/v1/decision", &creq)
		coldLats = append(coldLats, time.Since(t0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpload: revision %d cold solve: %v\n", r, err)
			return 1
		}
		rep.ColdIterTotal += int64(cold.Iterations)
		if warm.Outcome != cold.Outcome {
			fmt.Fprintf(os.Stderr, "psdpload: revision %d: warm decided %q, cold %q\n", r, warm.Outcome, cold.Outcome)
			return 1
		}
	}
	if revisions > 0 {
		rep.WarmIterAvg = float64(rep.WarmIterTotal) / float64(revisions)
		rep.ColdIterAvg = float64(rep.ColdIterTotal) / float64(revisions)
	}
	if rep.ColdIterTotal > 0 {
		rep.IterRatio = float64(rep.WarmIterTotal) / float64(rep.ColdIterTotal)
	}
	rep.WarmP50Ms, rep.WarmP99Ms = latPercentiles(warmLats)
	rep.ColdP50Ms, rep.ColdP99Ms = latPercentiles(coldLats)

	after, err := fetchStats(client, url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpload: /statsz after run: %v\n", err)
		return 1
	}
	rep.WarmStarts = after.WarmStarts - before.WarmStarts
	rep.ColdFallbacks = after.ColdFallbacks - before.ColdFallbacks

	out, _ := json.MarshalIndent(&rep, "", "  ")
	fmt.Println(string(out))
	if benchOut != "" {
		if err := mergeBench(benchOut, "serve.delta", &rep); err != nil {
			fmt.Fprintf(os.Stderr, "psdpload: writing %s: %v\n", benchOut, err)
			return 1
		}
	}
	// The incremental-serving guarantee this benchmark exists to gate:
	// warm-started solves of drifted revisions use strictly fewer
	// iterations than cold starts.
	if rep.WarmIterTotal >= rep.ColdIterTotal {
		fmt.Fprintf(os.Stderr, "psdpload: warm starts used %d iterations vs %d cold — no savings\n",
			rep.WarmIterTotal, rep.ColdIterTotal)
		return 1
	}
	return 0
}

// postParsed POSTs a request and decodes the DecisionResponse,
// requiring a 200.
func postParsed(client *http.Client, target string, req *serve.Request) (*serve.DecisionResponse, http.Header, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, nil, err
	}
	status, hdr, respBody, err := postRaw(client, target, body)
	if err != nil {
		return nil, nil, nil, err
	}
	if status != http.StatusOK {
		return nil, nil, nil, fmt.Errorf("%s: HTTP %d: %s", target, status, respBody)
	}
	var dr serve.DecisionResponse
	if err := json.Unmarshal(respBody, &dr); err != nil {
		return nil, nil, nil, err
	}
	return &dr, hdr, respBody, nil
}

func fetchStats(client *http.Client, url string) (*serve.StatsResponse, error) {
	resp, err := client.Get(url + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// latPercentiles returns (p50, p99) in milliseconds via the shared
// percentile helper (same indexing as the steady-mode report).
func latPercentiles(lats []time.Duration) (p50, p99 float64) {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return pctMs(sorted, 0.50), pctMs(sorted, 0.99)
}

package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/instio"
	"repro/internal/serve"
)

// Cluster mode measures horizontal scaling: a unique-digest cold
// workload (every request carries a fresh seed, so no request is ever
// a cache hit or a singleflight share anywhere in the fleet) is driven
// through the front, and sustained req/s is recorded per fleet size.
// Because the benchmark box may have fewer cores than replicas, the
// replicas run with -solve-floor: each executed solve holds a worker
// for at least the floor, pinning per-replica capacity to
// workers/floor. What the benchmark then measures is the cluster
// tier's ability to spread that capacity — routing, placement, and
// admission overhead — which is exactly the quantity that must scale.
//
// Each invocation measures ONE fleet size (-replicas k) and merges it
// into the "cluster" section of the bench baseline; speedups versus
// the 1-replica run are recomputed whenever both sides exist.

// clusterScale is one fleet size's measurement.
type clusterScale struct {
	Replicas    int     `json:"replicas"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Solved      int64   `json:"solved"`
	RPS         float64 `json:"rps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	Rejected429 int64   `json:"rejected_429"`
	Errors      int64   `json:"errors"`
}

// clusterReport is the whole "cluster" bench section.
type clusterReport struct {
	// Mode documents that these numbers measure routing/spread of
	// floor-pinned capacity, not raw solver parallelism (the benchmark
	// box does not grow cores with replicas).
	Mode         string                  `json:"mode"`
	SolveFloorMs float64                 `json:"solve_floor_ms"`
	Workers      int                     `json:"workers_per_replica"`
	Scales       map[string]clusterScale `json:"scales"`
	Speedup2     float64                 `json:"speedup_2_vs_1,omitempty"`
	Speedup3     float64                 `json:"speedup_3_vs_1,omitempty"`
}

// runCluster drives the unique-digest workload against url and merges
// the result under benchOut's "cluster" key. Returns the process exit
// code.
func runCluster(url string, replicas, concurrency int, duration time.Duration,
	n, m int, eps float64, genSeed uint64, engine string,
	floor time.Duration, workers int, benchOut string) int {

	// A small pool of tiny instances; uniqueness comes from the seed,
	// which is part of the content digest.
	docs := make([]*instio.Instance, 4)
	for i := range docs {
		rng := rand.New(rand.NewPCG(genSeed, uint64(i)))
		inst := gen.RandomDense(n, m, max(2, m/4), rng)
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpload: generating instance %d: %v\n", i, err)
			return 1
		}
		docs[i] = instio.FromDenseSet(set)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	target := url + "/v1/decision"
	// Fresh digests across reruns too: the seed base folds in wall time
	// so a second benchmark run never hits the fleet's cache.
	seedBase := uint64(time.Now().UnixNano())
	var nextSeed atomic.Uint64

	var (
		mu        sync.Mutex
		latencies []time.Duration
		requests  atomic.Int64
		rejected  atomic.Int64
		errCount  atomic.Int64
	)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				seed := seedBase + nextSeed.Add(1)
				req := serve.Request{Instance: docs[int(seed)%len(docs)], Eps: eps, Seed: seed, Engine: engine}
				body, err := json.Marshal(&req)
				if err != nil {
					errCount.Add(1)
					return
				}
				start := time.Now()
				status, _, err := post(client, target, body)
				lat := time.Since(start)
				requests.Add(1)
				switch {
				case err != nil:
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "psdpload: %v\n", err)
				case status == http.StatusTooManyRequests:
					rejected.Add(1)
					time.Sleep(10 * time.Millisecond)
				case status >= 200 && status < 300:
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
				default:
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "psdpload: unexpected status %d\n", status)
				}
			}
		}(c)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	scale := clusterScale{
		Replicas:    replicas,
		Concurrency: concurrency,
		DurationSec: duration.Seconds(),
		Requests:    requests.Load(),
		Solved:      int64(len(latencies)),
		RPS:         float64(len(latencies)) / duration.Seconds(),
		P50Ms:       pctMs(latencies, 0.50),
		P95Ms:       pctMs(latencies, 0.95),
		Rejected429: rejected.Load(),
		Errors:      errCount.Load(),
	}

	rep, err := mergeClusterScale(benchOut, scale, floor, workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpload: writing %s: %v\n", benchOut, err)
		return 1
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if scale.Errors > 0 {
		fmt.Fprintf(os.Stderr, "psdpload: %d responses were neither 2xx nor 429\n", scale.Errors)
		return 1
	}
	return 0
}

// mergeClusterScale folds one fleet size's measurement into the
// "cluster" section, preserving the other sizes and recomputing
// speedups against the 1-replica baseline.
func mergeClusterScale(path string, scale clusterScale, floor time.Duration, workers int) (*clusterReport, error) {
	rep := &clusterReport{
		Mode:         "capacity-model",
		SolveFloorMs: float64(floor.Nanoseconds()) / 1e6,
		Workers:      workers,
		Scales:       map[string]clusterScale{},
	}
	doc := map[string]json.RawMessage{}
	if path != "" {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				return nil, fmt.Errorf("existing file is not a JSON object: %w", err)
			}
			if raw, ok := doc["cluster"]; ok {
				// Best-effort: an unreadable section is replaced wholesale.
				var prev clusterReport
				if json.Unmarshal(raw, &prev) == nil && prev.Scales != nil {
					rep.Scales = prev.Scales
				}
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	rep.Scales[strconv.Itoa(scale.Replicas)] = scale
	if base, ok := rep.Scales["1"]; ok && base.RPS > 0 {
		if s2, ok := rep.Scales["2"]; ok {
			rep.Speedup2 = s2.RPS / base.RPS
		}
		if s3, ok := rep.Scales["3"]; ok {
			rep.Speedup3 = s3.RPS / base.RPS
		}
	}
	if path == "" {
		return rep, nil
	}
	if err := mergeBenchInto(doc, path, "cluster", rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// mergeBenchInto writes doc back with key replaced by rep.
func mergeBenchInto(doc map[string]json.RawMessage, path, key string, rep any) error {
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc[key] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

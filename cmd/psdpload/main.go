// Command psdpload is a closed-loop load generator for psdpd: a fixed
// set of concurrent clients each keeps exactly one request in flight
// against the daemon for the test duration, then the run reports
// sustained req/s, latency percentiles, and the cache-hit rate, and
// merges them into BENCH_psdp.json under the "serve" key.
//
// Usage:
//
//	psdpload -url http://127.0.0.1:8723 [-concurrency 64] [-duration 5s]
//	         [-endpoint decision] [-n 8] [-m 12] [-instances 4] [-seeds 2]
//	         [-eps 0.25] [-wait 10s] [-bench-out BENCH_psdp.json]
//
// The workload is instances×seeds distinct requests cycled round-robin,
// so after one cold pass every request is a cache hit (or a
// singleflight share) — the steady state a result cache is for. Any
// response other than 2xx or 429 fails the run (exit 1): 429 is
// documented backpressure, everything else is a bug.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/instio"
	"repro/internal/matrix"
	"repro/internal/mixed"
	"repro/internal/serve"
)

type loadReport struct {
	Endpoint     string  `json:"endpoint"`
	Concurrency  int     `json:"concurrency"`
	DurationSec  float64 `json:"duration_s"`
	Requests     int64   `json:"requests"`
	RPS          float64 `json:"rps"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	CacheHits    int64   `json:"cache_hits"`
	CacheShared  int64   `json:"cache_shared"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Rejected429  int64   `json:"rejected_429"`
	Errors       int64   `json:"errors"`
	Instances    int     `json:"instances"`
	Seeds        int     `json:"seeds"`
	N            int     `json:"n"`
	M            int     `json:"m"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8723", "psdpd base URL")
	mode := flag.String("mode", "steady", "steady (closed-loop load) | drift (incremental warm-vs-cold benchmark) | cluster (unique-digest scaling run)")
	endpoint := flag.String("endpoint", "decision", "decision | maximize | mixed (steady mode)")
	revisions := flag.Int("revisions", 16, "drift mode: number of chained revisions")
	drift := flag.Float64("drift", 0.05, "drift mode: per-constraint scale drift bound")
	driftFrac := flag.Float64("drift-frac", 0.5, "drift mode: fraction of constraints drifted per revision")
	scale := flag.Float64("scale", 0.2, "drift mode: request scale")
	concurrency := flag.Int("concurrency", 64, "concurrent in-flight requests")
	duration := flag.Duration("duration", 5*time.Second, "test duration")
	n := flag.Int("n", 8, "constraints per generated instance")
	m := flag.Int("m", 12, "instance dimension")
	instances := flag.Int("instances", 4, "distinct generated instances")
	seeds := flag.Int("seeds", 2, "distinct solver seeds per instance")
	eps := flag.Float64("eps", 0.25, "target accuracy")
	engine := flag.String("engine", "", "decision engine on every request: mmw, alo, auto, or \"\" for the server default")
	genSeed := flag.Uint64("gen-seed", 7, "instance generator seed")
	replicas := flag.Int("replicas", 1, "cluster mode: fleet size this run measures (merged under that key)")
	floor := flag.Duration("floor", 0, "cluster mode: the replicas' -solve-floor, recorded in the bench section")
	workersPer := flag.Int("workers-per-replica", 0, "cluster mode: the replicas' -workers, recorded in the bench section")
	wait := flag.Duration("wait", 10*time.Second, "max time to wait for /healthz before starting")
	benchOut := flag.String("bench-out", "BENCH_psdp.json", "merge the report under the \"serve\" key of this file (empty disables)")
	flag.Parse()

	if *endpoint != "decision" && *endpoint != "maximize" && *endpoint != "mixed" {
		fmt.Fprintf(os.Stderr, "psdpload: unknown endpoint %q\n", *endpoint)
		os.Exit(2)
	}
	switch *engine {
	case "", "mmw", "alo", "auto":
	default:
		fmt.Fprintf(os.Stderr, "psdpload: unknown engine %q (want mmw, alo, auto, or empty)\n", *engine)
		os.Exit(2)
	}
	if *mode != "steady" && *mode != "drift" && *mode != "cluster" {
		fmt.Fprintf(os.Stderr, "psdpload: unknown mode %q (want steady, drift, or cluster)\n", *mode)
		os.Exit(2)
	}
	if err := waitHealthy(*url, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "psdpload: %v\n", err)
		os.Exit(1)
	}
	if *mode == "drift" {
		os.Exit(runDrift(*url, *n, *m, *revisions, *drift, *driftFrac, *eps, *genSeed, *scale, *engine, *benchOut))
	}
	if *mode == "cluster" {
		os.Exit(runCluster(*url, *replicas, *concurrency, *duration,
			*n, *m, *eps, *genSeed, *engine, *floor, *workersPer, *benchOut))
	}

	bodies := buildBodies(*endpoint, *n, *m, *instances, *seeds, *eps, *genSeed, *engine)
	client := &http.Client{Timeout: 2 * time.Minute}
	target := *url + "/v1/" + *endpoint

	var (
		mu        sync.Mutex
		latencies []time.Duration
		requests  atomic.Int64
		hits      atomic.Int64
		shared    atomic.Int64
		rejected  atomic.Int64
		errCount  atomic.Int64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Stagger starting offsets so clients don't march through the
			// request mix in lockstep.
			for i := c; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				start := time.Now()
				status, cacheState, err := post(client, target, body)
				lat := time.Since(start)
				requests.Add(1)
				switch {
				case err != nil:
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "psdpload: %v\n", err)
				case status == http.StatusTooManyRequests:
					rejected.Add(1)
					time.Sleep(10 * time.Millisecond) // honor backpressure
				case status >= 200 && status < 300:
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
					switch cacheState {
					case "hit":
						hits.Add(1)
					case "shared":
						shared.Add(1)
					}
				default:
					errCount.Add(1)
					fmt.Fprintf(os.Stderr, "psdpload: unexpected status %d\n", status)
				}
			}
		}(c)
	}
	wg.Wait()

	rep := summarize(*endpoint, *concurrency, *duration, latencies,
		requests.Load(), hits.Load(), shared.Load(), rejected.Load(), errCount.Load())
	rep.Instances, rep.Seeds, rep.N, rep.M = *instances, *seeds, *n, *m

	out, _ := json.MarshalIndent(&rep, "", "  ")
	fmt.Println(string(out))
	if *benchOut != "" {
		if err := mergeBench(*benchOut, "serve", &rep); err != nil {
			fmt.Fprintf(os.Stderr, "psdpload: writing %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "psdpload: %d responses were neither 2xx nor 429\n", rep.Errors)
		os.Exit(1)
	}
}

// buildBodies pre-marshals the request mix: instances × seeds distinct
// (instance, seed) pairs, so the digest space — and with it the cache
// hit rate — is controlled exactly.
func buildBodies(endpoint string, n, m, instances, seeds int, eps float64, genSeed uint64, engine string) [][]byte {
	if instances < 1 {
		instances = 1
	}
	if seeds < 1 {
		seeds = 1
	}
	var bodies [][]byte
	for i := 0; i < instances; i++ {
		rng := rand.New(rand.NewPCG(genSeed, uint64(i)))
		inst := gen.RandomDense(n, m, max(2, m/4), rng)
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpload: generating instance %d: %v\n", i, err)
			os.Exit(1)
		}
		var doc *instio.Instance
		if endpoint == "mixed" {
			prob, err := mixed.NewProblem(set, coverFor(n, rng))
			if err != nil {
				fmt.Fprintf(os.Stderr, "psdpload: wrapping instance %d: %v\n", i, err)
				os.Exit(1)
			}
			doc, err = instio.FromMixedProblem(prob)
			if err != nil {
				fmt.Fprintf(os.Stderr, "psdpload: encoding instance %d: %v\n", i, err)
				os.Exit(1)
			}
		} else {
			doc = instio.FromDenseSet(set)
		}
		for s := 0; s < seeds; s++ {
			req := serve.Request{Instance: doc, Eps: eps, Seed: uint64(s + 1), Engine: engine}
			if endpoint != "mixed" {
				// /v1/mixed rejects scale (it would not survive BuildMixed);
				// the plain kinds keep it so the workload matches PR 5 runs.
				req.Scale = 0.5
			}
			body, err := json.Marshal(&req)
			if err != nil {
				fmt.Fprintf(os.Stderr, "psdpload: %v\n", err)
				os.Exit(1)
			}
			bodies = append(bodies, body)
		}
	}
	return bodies
}

// coverFor builds a dense covering matrix whose rows demand a mix of
// the packing variables — entries deterministic in rng so distinct
// instances stay distinct digests and repeats stay cache hits.
func coverFor(n int, rng *rand.Rand) *matrix.Dense {
	rows := max(2, n/2)
	cov := matrix.New(rows, n)
	for r := 0; r < rows; r++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				cov.Set(r, j, 0.1+rng.Float64())
			}
		}
		cov.Set(r, rng.IntN(n), 0.5+rng.Float64())
	}
	return cov
}

func post(client *http.Client, target string, body []byte) (int, string, error) {
	resp, err := client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, resp.Header.Get("X-Psdpd-Cache"), nil
}

// postRaw POSTs and returns the status, response headers, and body —
// the drift mode needs the X-Psdpd-Digest header and the decision body.
func postRaw(client *http.Client, target string, body []byte) (int, http.Header, []byte, error) {
	resp, err := client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, nil, err
	}
	return resp.StatusCode, resp.Header, bytes.TrimRight(out, "\n"), nil
}

func waitHealthy(url string, wait time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %s", url, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// pctMs returns the p-quantile of the ascending-sorted latencies in
// milliseconds — the single percentile definition both the steady and
// drift reports use.
func pctMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[int(p*float64(len(sorted)-1))]) / float64(time.Millisecond)
}

func summarize(endpoint string, concurrency int, duration time.Duration, lats []time.Duration,
	requests, hits, shared, rejected, errs int64) loadReport {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 { return pctMs(lats, p) }
	rep := loadReport{
		Endpoint:    endpoint,
		Concurrency: concurrency,
		DurationSec: duration.Seconds(),
		Requests:    requests,
		RPS:         float64(len(lats)) / duration.Seconds(),
		P50Ms:       pct(0.50),
		P95Ms:       pct(0.95),
		P99Ms:       pct(0.99),
		MaxMs:       pct(1.0),
		CacheHits:   hits,
		CacheShared: shared,
		Rejected429: rejected,
		Errors:      errs,
	}
	if len(lats) > 0 {
		rep.CacheHitRate = float64(hits) / float64(len(lats))
	}
	return rep
}

// mergeBench inserts the report under key ("serve" for the steady
// load, "serve.delta" for the drift benchmark) of the bench baseline,
// preserving every other key (the kernel and decision tables psdpbench
// owns).
func mergeBench(path, key string, rep any) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing file is not a JSON object: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc[key] = enc
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// Command psdpfront is the psdpd cluster front: a thin router that
// sends each solve request to the replica owning its content digest
// (consistent hashing over a health-gated member list), so cache
// entries, warm-start revision lineages, and warm worker workspaces
// stay shard-local across the fleet. Responses are relayed verbatim —
// status, X-Psdpd-* headers, Retry-After, body bytes — so a client
// cannot tell the front from a single replica.
//
// Usage:
//
//	psdpfront -members url1,url2,... [-addr :8722] [-engine mmw]
//	          [-probe-interval 500ms] [-max-in-flight 1024]
//
// -engine must match the replicas' default engine so the front
// computes the same content digests they do.
//
// Endpoints: the replica solve surface (POST /v1/decision, /v1/maximize,
// /v1/solve, /v1/mixed, /v1/delta, /v1/batch), plus GET /healthz,
// /readyz (503 with no healthy members), /statsz (membership view and
// per-peer route counters), /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	addr := flag.String("addr", ":8722", "listen address (host:port; port 0 picks a free port)")
	members := flag.String("members", "", "comma-separated base URLs of the psdpd replicas (required)")
	engine := flag.String("engine", "mmw", "replicas' default decision engine (must match their -engine)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "health-probe period")
	maxInFlight := flag.Int("max-in-flight", 1024, "front admission cap (beyond it: 429 with a live Retry-After)")
	flag.Parse()

	list := splitMembers(*members)
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "psdpfront: -members is required")
		os.Exit(1)
	}
	defEngine, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpfront: %v\n", err)
		os.Exit(1)
	}

	front := cluster.NewFront(cluster.FrontConfig{
		Members:       list,
		ProbeInterval: *probeInterval,
		DefaultEngine: defEngine,
		MaxInFlight:   *maxInFlight,
	})
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	front.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpfront: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: front}
	log.Printf("psdpfront: listening on http://%s, routing over %d members", ln.Addr(), len(list))

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "psdpfront: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Printf("psdpfront: %v, shutting down", s)
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("psdpfront: shutdown: %v", err)
		}
	}
}

func splitMembers(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		m = strings.TrimSuffix(strings.TrimSpace(m), "/")
		if m != "" {
			out = append(out, m)
		}
	}
	return out
}

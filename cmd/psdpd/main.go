// Command psdpd is the solve daemon: it serves the packing-SDP solver
// over HTTP/JSON (see internal/serve for the API) with a sharded worker
// pool of pinned workspaces, a bounded admission queue with 429
// backpressure, and a content-addressed result cache.
//
// Usage:
//
//	psdpd [-addr :8723] [-workers N] [-shards S] [-queue 64]
//	      [-cache 1024] [-revisions 128] [-timeout 30s] [-max-timeout 5m]
//	      [-log json|text|off] [-slow 1s] [-no-metrics] [-ops-addr host:port]
//	      [-cluster url1,url2,...] [-self url] [-probe-interval 500ms]
//	      [-drain-grace 10s] [-solve-floor 0]
//
// Cluster mode: -cluster takes the full static member list (base URLs)
// and -self names this replica's own entry. Placement is consistent
// hashing over the health-gated member list — each content digest has
// one owning replica, requests landing off-owner ask the owner for
// cached results/revisions before solving locally, and SIGTERM drains
// gracefully (admission 307-redirects to peers, in-flight work
// finishes, /readyz goes 503 so the fleet drops this member).
//
// Endpoints: POST /v1/decision, /v1/maximize, /v1/solve, /v1/batch,
// /v1/delta (incremental solving over the revision store); GET
// /healthz (liveness), /readyz (readiness), /statsz, /metrics
// (Prometheus text), /debugz/slow (recent slow/failed solves).
// SIGINT/SIGTERM drain in-flight solves before exit.
//
// -ops-addr starts a second listener for the operations surface only:
// net/http/pprof under /debug/pprof/, plus the same /metrics, /statsz,
// and /debugz/slow. Keeping pprof off the serving address means the
// profiling endpoints can stay firewalled without a proxy in front of
// the solve API.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "solver workers, each with a pinned workspace")
	shards := flag.Int("shards", 0, "worker-pool shards (0 = min(workers, 8))")
	queue := flag.Int("queue", 64, "admission queue depth per shard")
	cacheEntries := flag.Int("cache", 1024, "result cache entries (negative disables)")
	revisions := flag.Int("revisions", 128, "warm-start revision store entries (negative disables /v1/delta)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on request-supplied deadlines")
	maxBody := flag.Int64("max-body", 32<<20, "request body size limit in bytes")
	engine := flag.String("engine", "mmw", "default decision engine for requests with no engine field: mmw, alo, or auto")
	logMode := flag.String("log", "off", "structured request logging to stderr: json, text, or off")
	slow := flag.Duration("slow", time.Second, "record successful solves at/over this duration in /debugz/slow")
	noMetrics := flag.Bool("no-metrics", false, "disable the /metrics registry (the endpoint answers 404)")
	opsAddr := flag.String("ops-addr", "", "optional second listener for pprof + /metrics + /statsz + /debugz/slow")
	clusterList := flag.String("cluster", "", "comma-separated base URLs of every replica (enables cluster mode)")
	self := flag.String("self", "", "this replica's own base URL as it appears in -cluster")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "cluster health-probe period")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "max wait for in-flight solves on SIGTERM")
	solveFloor := flag.Duration("solve-floor", 0, "hold a worker at least this long per executed solve (capacity modeling for scaling benchmarks; 0 = off)")
	flag.Parse()

	defEngine, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpd: %v\n", err)
		os.Exit(1)
	}

	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off", "":
	default:
		fmt.Fprintf(os.Stderr, "psdpd: unknown -log mode %q (want json, text, or off)\n", *logMode)
		os.Exit(1)
	}

	cfg := serve.Config{
		Workers:         *workers,
		Shards:          *shards,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		RevisionEntries: *revisions,
		MaxBodyBytes:    *maxBody,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		DefaultEngine:   defEngine,
		DisableMetrics:  *noMetrics,
		Logger:          logger,
		SlowSolve:       *slow,
		SolveFloor:      *solveFloor,
	}

	ctx, stopCluster := context.WithCancel(context.Background())
	defer stopCluster()
	if *clusterList != "" {
		members := splitMembers(*clusterList)
		if *self == "" {
			fmt.Fprintln(os.Stderr, "psdpd: -cluster requires -self (this replica's URL in the member list)")
			os.Exit(1)
		}
		found := false
		for _, m := range members {
			found = found || m == *self
		}
		if !found {
			fmt.Fprintf(os.Stderr, "psdpd: -self %q is not in -cluster %q\n", *self, *clusterList)
			os.Exit(1)
		}
		rep := cluster.NewReplica(cluster.ReplicaConfig{
			Self:           *self,
			Members:        members,
			ProbeInterval:  *probeInterval,
			LocalResults:   store.NewResultLRU(*cacheEntries),
			LocalRevisions: store.NewRevisionLRU(*revisions),
		})
		rep.Start(ctx)
		cfg.Results = rep.Results
		cfg.Revisions = rep.Revisions
		cfg.Placement = rep.Ring
		cfg.SelfURL = *self
		cfg.ClusterInfo = rep.Info
		cfg.RegisterMetrics = rep.RegisterMetrics
		log.Printf("psdpd: cluster mode, self=%s members=%d", *self, len(members))
	}

	srv := serve.New(cfg)
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv}
	log.Printf("psdpd: listening on http://%s (workers=%d queue=%d cache=%d timeout=%s)",
		ln.Addr(), *workers, *queue, *cacheEntries, *timeout)

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psdpd: ops listener: %v\n", err)
			os.Exit(1)
		}
		opsSrv = &http.Server{Handler: opsMux(srv)}
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("psdpd: ops listener: %v", err)
			}
		}()
		log.Printf("psdpd: ops surface on http://%s (pprof, metrics, statsz, debugz)", opsLn.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "psdpd: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Printf("psdpd: %v, draining", s)
		dctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		// Graceful drain first: admission stops (new solves 307-redirect
		// to peers in cluster mode), in-flight work finishes, /readyz
		// goes 503 so the fleet drops this member — all while the
		// listener stays up for redirects and peer fetches. Only then
		// does the listener close.
		if err := srv.Drain(dctx); err != nil {
			log.Printf("psdpd: drain: %v", err)
		}
		stopCluster()
		if opsSrv != nil {
			opsSrv.Shutdown(dctx)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			log.Printf("psdpd: shutdown: %v", err)
		}
	}
}

// splitMembers parses the -cluster list (comma-separated base URLs,
// trailing slashes trimmed so member names compare equal everywhere).
func splitMembers(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		m = strings.TrimSuffix(strings.TrimSpace(m), "/")
		if m != "" {
			out = append(out, m)
		}
	}
	return out
}

// opsMux builds the operations-surface handler: pprof (registered
// explicitly — the daemon never touches http.DefaultServeMux) plus the
// observability endpoints that make sense next to a profile.
func opsMux(srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if h := srv.Metrics(); h != nil {
		mux.Handle("GET /metrics", h)
	}
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, srv.Stats())
	})
	mux.HandleFunc("GET /debugz/slow", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{"entries": srv.SlowSnapshot()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Command psdpd is the solve daemon: it serves the packing-SDP solver
// over HTTP/JSON (see internal/serve for the API) with a sharded worker
// pool of pinned workspaces, a bounded admission queue with 429
// backpressure, and a content-addressed result cache.
//
// Usage:
//
//	psdpd [-addr :8723] [-workers N] [-shards S] [-queue 64]
//	      [-cache 1024] [-revisions 128] [-timeout 30s] [-max-timeout 5m]
//
// Endpoints: POST /v1/decision, /v1/maximize, /v1/solve, /v1/batch,
// /v1/delta (incremental solving over the revision store); GET
// /healthz, /statsz. SIGINT/SIGTERM drain in-flight solves before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "solver workers, each with a pinned workspace")
	shards := flag.Int("shards", 0, "worker-pool shards (0 = min(workers, 8))")
	queue := flag.Int("queue", 64, "admission queue depth per shard")
	cacheEntries := flag.Int("cache", 1024, "result cache entries (negative disables)")
	revisions := flag.Int("revisions", 128, "warm-start revision store entries (negative disables /v1/delta)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on request-supplied deadlines")
	maxBody := flag.Int64("max-body", 32<<20, "request body size limit in bytes")
	engine := flag.String("engine", "mmw", "default decision engine for requests with no engine field: mmw, alo, or auto")
	flag.Parse()

	defEngine, err := core.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpd: %v\n", err)
		os.Exit(1)
	}

	srv := serve.New(serve.Config{
		Workers:         *workers,
		Shards:          *shards,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		RevisionEntries: *revisions,
		MaxBodyBytes:    *maxBody,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		DefaultEngine:   defEngine,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv}
	log.Printf("psdpd: listening on http://%s (workers=%d queue=%d cache=%d timeout=%s)",
		ln.Addr(), *workers, *queue, *cacheEntries, *timeout)

	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "psdpd: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Printf("psdpd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("psdpd: shutdown: %v", err)
		}
	}
}

// Command psdpsolve solves a positive packing SDP read from a JSON
// instance file (see cmd/psdpgen for the format) and prints a JSON
// result with the certified bracket, witness, and verification report.
//
// Usage:
//
//	psdpsolve -in instance.json [-eps 0.1] [-seed 1] [-decision]
//	psdpgen ... | psdpsolve -in -        # "-" reads the instance from stdin
//
// With -decision, a single ε-decision call (Algorithm 3.1) is run
// instead of the full optimizer.
//
// Documents carrying a "mixed" section (see psdpgen -family mixed-lp)
// are detected automatically and routed through the mixed
// packing/covering solver; the result reports the verified bicriteria
// status instead of an objective bracket.
//
// Exit codes distinguish failure stages for scripting: 0 success,
// 2 usage error, 3 instance parse/validation failure, 4 solve or
// verification failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	psdp "repro"
	"repro/internal/instio"
)

const (
	exitUsage = 2
	exitParse = 3
	exitSolve = 4
)

type output struct {
	Kind          string    `json:"kind"`
	Eps           float64   `json:"eps"`
	Lower         float64   `json:"lower,omitempty"`
	Upper         float64   `json:"upper,omitempty"`
	RelativeGap   float64   `json:"relativeGap,omitempty"`
	X             []float64 `json:"x,omitempty"`
	Outcome       string    `json:"outcome,omitempty"`
	Status        string    `json:"status,omitempty"`
	Engine        string    `json:"engine,omitempty"`
	MinCoverage   float64   `json:"minCoverage,omitempty"`
	Capped        int       `json:"capped,omitempty"`
	Iterations    int       `json:"iterations,omitempty"`
	DecisionCalls int       `json:"decisionCalls,omitempty"`
	LambdaMax     float64   `json:"lambdaMax"`
	Feasible      bool      `json:"feasible"`
}

func main() {
	in := flag.String("in", "", "instance JSON file, or - for stdin (required)")
	eps := flag.Float64("eps", 0.1, "target relative accuracy in (0,1)")
	seed := flag.Uint64("seed", 1, "seed for sketches/Lanczos")
	engine := flag.String("engine", "mmw", "decision engine: mmw (Algorithm 3.1), alo (arXiv:1507.02259), or auto")
	decision := flag.Bool("decision", false, "run a single decision call instead of optimizing")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "psdpsolve: -in is required (path or - for stdin)")
		os.Exit(exitUsage)
	}
	eng, err := psdp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpsolve: %v\n", err)
		os.Exit(exitUsage)
	}
	doc, err := loadDoc(*in)
	if err != nil {
		fatal(exitParse, err)
	}

	var out output
	out.Eps = *eps
	if doc.Mixed != nil {
		if *decision {
			fmt.Fprintln(os.Stderr, "psdpsolve: -decision does not apply to mixed instances (the mixed solver is already a feasibility search)")
			os.Exit(exitUsage)
		}
		prob, err := instio.BuildMixed(doc)
		if err != nil {
			fatal(exitParse, err)
		}
		mr, err := psdp.SolveMixed(prob, *eps, psdp.MixedOptions{Seed: *seed, Engine: eng})
		if err != nil {
			fatal(exitSolve, err)
		}
		out.Kind = "mixed"
		out.Status = mr.Status.String()
		out.Engine = mr.Engine
		out.X = mr.X
		out.MinCoverage = mr.MinCoverage
		out.LambdaMax = mr.LambdaMax
		out.Iterations = mr.Iterations
		out.Capped = mr.Capped
		out.Feasible = mr.Status == psdp.MixedFeasible
		emit(&out)
		return
	}
	set, err := instio.Build(doc)
	if err != nil {
		fatal(exitParse, err)
	}
	opts := psdp.Options{Seed: *seed, Engine: eng}
	if *decision {
		dr, err := psdp.Decision(set, *eps, opts)
		if err != nil {
			fatal(exitSolve, err)
		}
		out.Kind = "decision"
		out.Lower, out.Upper = dr.Lower, dr.Upper
		out.X = dr.DualX
		out.Outcome = dr.Outcome.String()
		out.Iterations = dr.Iterations
		out.RelativeGap = dr.Upper/dr.Lower - 1
	} else {
		sol, err := psdp.Maximize(set, *eps, opts)
		if err != nil {
			fatal(exitSolve, err)
		}
		out.Kind = "maximize"
		out.Lower, out.Upper = sol.Lower, sol.Upper
		out.X = sol.X
		out.DecisionCalls = sol.DecisionCalls
		out.RelativeGap = sol.Gap()
	}
	cert, err := psdp.VerifyDual(set, out.X, 1e-8)
	if err != nil {
		fatal(exitSolve, err)
	}
	out.LambdaMax = cert.LambdaMax
	out.Feasible = cert.Feasible
	emit(&out)
}

func emit(out *output) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(exitSolve, err)
	}
}

// loadDoc reads the instance document from a file, or from stdin when
// path is "-" — the document form so mixed sections survive for kind
// detection; plain documents build into a ConstraintSet afterwards.
func loadDoc(path string) (*instio.Instance, error) {
	if path == "-" {
		return instio.DecodeDocument(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return instio.DecodeDocument(f)
}

func fatal(code int, err error) {
	fmt.Fprintf(os.Stderr, "psdpsolve: %v\n", err)
	os.Exit(code)
}

// Command psdpsolve solves a positive packing SDP read from a JSON
// instance file (see cmd/psdpgen for the format) and prints a JSON
// result with the certified bracket, witness, and verification report.
//
// Usage:
//
//	psdpsolve -in instance.json [-eps 0.1] [-seed 1] [-decision]
//	psdpgen ... | psdpsolve -in -        # "-" reads the instance from stdin
//
// With -decision, a single ε-decision call (Algorithm 3.1) is run
// instead of the full optimizer.
//
// Exit codes distinguish failure stages for scripting: 0 success,
// 2 usage error, 3 instance parse/validation failure, 4 solve or
// verification failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	psdp "repro"
	"repro/internal/core"
	"repro/internal/instio"
)

const (
	exitUsage = 2
	exitParse = 3
	exitSolve = 4
)

type output struct {
	Kind          string    `json:"kind"`
	Eps           float64   `json:"eps"`
	Lower         float64   `json:"lower"`
	Upper         float64   `json:"upper"`
	RelativeGap   float64   `json:"relativeGap"`
	X             []float64 `json:"x,omitempty"`
	Outcome       string    `json:"outcome,omitempty"`
	Iterations    int       `json:"iterations,omitempty"`
	DecisionCalls int       `json:"decisionCalls,omitempty"`
	LambdaMax     float64   `json:"lambdaMax"`
	Feasible      bool      `json:"feasible"`
}

func main() {
	in := flag.String("in", "", "instance JSON file, or - for stdin (required)")
	eps := flag.Float64("eps", 0.1, "target relative accuracy in (0,1)")
	seed := flag.Uint64("seed", 1, "seed for sketches/Lanczos")
	engine := flag.String("engine", "mmw", "decision engine: mmw (Algorithm 3.1), alo (arXiv:1507.02259), or auto")
	decision := flag.Bool("decision", false, "run a single decision call instead of optimizing")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "psdpsolve: -in is required (path or - for stdin)")
		os.Exit(exitUsage)
	}
	eng, err := psdp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psdpsolve: %v\n", err)
		os.Exit(exitUsage)
	}
	set, err := loadSet(*in)
	if err != nil {
		fatal(exitParse, err)
	}

	var out output
	out.Eps = *eps
	opts := psdp.Options{Seed: *seed, Engine: eng}
	if *decision {
		dr, err := psdp.Decision(set, *eps, opts)
		if err != nil {
			fatal(exitSolve, err)
		}
		out.Kind = "decision"
		out.Lower, out.Upper = dr.Lower, dr.Upper
		out.X = dr.DualX
		out.Outcome = dr.Outcome.String()
		out.Iterations = dr.Iterations
		out.RelativeGap = dr.Upper/dr.Lower - 1
	} else {
		sol, err := psdp.Maximize(set, *eps, opts)
		if err != nil {
			fatal(exitSolve, err)
		}
		out.Kind = "maximize"
		out.Lower, out.Upper = sol.Lower, sol.Upper
		out.X = sol.X
		out.DecisionCalls = sol.DecisionCalls
		out.RelativeGap = sol.Gap()
	}
	cert, err := psdp.VerifyDual(set, out.X, 1e-8)
	if err != nil {
		fatal(exitSolve, err)
	}
	out.LambdaMax = cert.LambdaMax
	out.Feasible = cert.Feasible

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(exitSolve, err)
	}
}

// loadSet reads the instance from a file, or from stdin when path is
// "-" (the streaming instio.Decode path — no temp files needed in
// pipelines).
func loadSet(path string) (core.ConstraintSet, error) {
	if path == "-" {
		return instio.Decode(os.Stdin)
	}
	return instio.Load(path)
}

func fatal(code int, err error) {
	fmt.Fprintf(os.Stderr, "psdpsolve: %v\n", err)
	os.Exit(code)
}

// Command psdpgen writes sample packing SDP instances in the JSON
// format consumed by psdpsolve.
//
// Usage:
//
//	psdpgen -family random -n 8 -m 16 -out inst.json
//	psdpgen -family graph  -m 32 -out inst.json        # edge-Laplacian packing (factored)
//	psdpgen -family sparse -m 32 -out inst.json        # edge-Laplacian packing (general sparse)
//	psdpgen -family sparse-grouped -n 8 -m 32 -out inst.json  # n grouped-Laplacian sparse constraints
//	psdpgen -family beamforming -n 12 -m 16 -out inst.json
//	psdpgen -family ellipse -out inst.json             # the Figure 1 instance
//	psdpgen -family mixed-lp -n 8 -m 16 -out inst.json    # packing + covering LP rows (dense)
//	psdpgen -family mixed-graph -n 8 -m 32 -out inst.json # grouped-Laplacian packing + covering (sparse)
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instio"
	"repro/internal/mixed"
)

func main() {
	family := flag.String("family", "random", "random | graph | sparse | sparse-grouped | beamforming | ellipse | diagonal | mixed-lp | mixed-graph")
	n := flag.Int("n", 8, "number of constraints (users/edges where applicable)")
	m := flag.Int("m", 16, "matrix dimension (vertices/antennas where applicable)")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "psdpgen: -out is required")
		os.Exit(2)
	}
	rng := rand.New(rand.NewPCG(*seed, 0x9e3779b9))

	var doc *instio.Instance
	switch *family {
	case "random":
		inst := gen.RandomDense(*n, *m, max(2, *m/4), rng)
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			fatal(err)
		}
		doc = instio.FromDenseSet(set)
	case "diagonal":
		inst, _ := gen.DiagonalLP(*n, *m, 0.6, rng)
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			fatal(err)
		}
		doc = instio.FromDenseSet(set)
	case "graph":
		g := graph.ErdosRenyi(*m, 4.0/float64(*m), rng)
		inst, err := gen.GraphEdgePacking(g)
		if err != nil {
			fatal(err)
		}
		set, err := core.NewFactoredSet(inst.Q)
		if err != nil {
			fatal(err)
		}
		doc = instio.FromFactoredSet(set)
	case "sparse":
		g := graph.ErdosRenyi(*m, 4.0/float64(*m), rng)
		inst, err := gen.SparseEdgePacking(g)
		if err != nil {
			fatal(err)
		}
		set, err := core.NewSparseSet(inst.A)
		if err != nil {
			fatal(err)
		}
		doc = instio.FromSparseSet(set)
	case "sparse-grouped":
		g := graph.ErdosRenyi(*m, 6.0/float64(*m), rng)
		groups := *n
		if groups > g.M() {
			groups = g.M()
		}
		inst, err := gen.SparseGroupedLaplacians(g, groups, rng)
		if err != nil {
			fatal(err)
		}
		set, err := core.NewSparseSet(inst.A)
		if err != nil {
			fatal(err)
		}
		doc = instio.FromSparseSet(set)
	case "beamforming":
		inst, err := gen.Beamforming(*n, *m, rng)
		if err != nil {
			fatal(err)
		}
		set, err := core.NewFactoredSet(inst.Q)
		if err != nil {
			fatal(err)
		}
		doc = instio.FromFactoredSet(set)
	case "ellipse":
		set, err := core.NewDenseSet(gen.Ellipse2D().A)
		if err != nil {
			fatal(err)
		}
		doc = instio.FromDenseSet(set)
	case "mixed", "mixed-lp":
		inst, err := gen.MixedCoveringLP(*n, *m, max(2, *n/2), 0.5, rng)
		if err != nil {
			fatal(err)
		}
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			fatal(err)
		}
		prob, err := mixed.NewProblem(set, inst.C)
		if err != nil {
			fatal(err)
		}
		doc, err = instio.FromMixedProblem(prob)
		if err != nil {
			fatal(err)
		}
	case "mixed-graph":
		g := graph.ErdosRenyi(*m, 6.0/float64(*m), rng)
		groups := *n
		if groups > g.M() {
			groups = g.M()
		}
		inst, err := gen.MixedGraphCovering(g, groups, max(2, groups/2), rng)
		if err != nil {
			fatal(err)
		}
		set, err := core.NewSparseSet(inst.A)
		if err != nil {
			fatal(err)
		}
		prob, err := mixed.NewProblem(set, inst.C)
		if err != nil {
			fatal(err)
		}
		doc, err = instio.FromMixedProblem(prob)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "psdpgen: unknown family %q\n", *family)
		os.Exit(2)
	}

	if err := instio.Save(*out, doc); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s, m=%d)\n", *out, *family, doc.M)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psdpgen: %v\n", err)
	os.Exit(1)
}

package mmw

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// randGain produces a random PSD gain with 0 ≼ M ≼ I: a random
// projector-like matrix V diag(u) Vᵀ with u ∈ [0,1] would need an
// eigenbasis; instead scale a random Gram matrix to norm <= 1 via its
// trace (λmax <= Tr for PSD).
func randGain(n int, rng *rand.Rand) *matrix.Dense {
	g := matrix.New(n, 2)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	m := matrix.MulABT(g, g, nil)
	tr := m.Trace()
	if tr > 0 {
		matrix.Scale(m, rng.Float64()/tr, m)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Fatal("eps0=0 accepted")
	}
	if _, err := New(3, 0.7); err == nil {
		t.Fatal("eps0>1/2 accepted")
	}
}

func TestInitialProbabilityIsUniform(t *testing.T) {
	g, err := New(4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Probability()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(p, matrix.Diag([]float64{0.25, 0.25, 0.25, 0.25}), 1e-12) {
		t.Fatalf("initial P = %v want I/4", p)
	}
}

func TestPlayAccumulates(t *testing.T) {
	g, err := New(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.Diag([]float64{1, 0, 0})
	gain, err := g.Play(m)
	if err != nil {
		t.Fatal(err)
	}
	// First round P = I/3, gain = 1/3.
	if math.Abs(gain-1.0/3) > 1e-12 {
		t.Fatalf("first gain = %v want 1/3", gain)
	}
	if g.Rounds() != 1 || math.Abs(g.TotalGain()-1.0/3) > 1e-12 {
		t.Fatal("accounting wrong")
	}
	// After playing e₁e₁ᵀ, the density must tilt toward coordinate 1.
	p, err := g.Probability()
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) <= p.At(1, 1) {
		t.Fatal("weights did not tilt toward the played direction")
	}
}

func TestPlayRejectsWrongShape(t *testing.T) {
	g, _ := New(3, 0.25)
	if _, err := g.Play(matrix.New(2, 2)); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

func TestGainCheckingRejectsBadGains(t *testing.T) {
	g, _ := New(2, 0.25)
	g.SetGainChecking(true)
	if _, err := g.Play(matrix.Diag([]float64{2, 0})); err == nil {
		t.Fatal("M with λmax > 1 accepted")
	}
	if _, err := g.Play(matrix.Diag([]float64{-0.5, 0})); err == nil {
		t.Fatal("indefinite M accepted")
	}
	if _, err := g.Play(matrix.Diag([]float64{1, 0.5})); err != nil {
		t.Fatalf("valid gain rejected: %v", err)
	}
}

// Theorem 2.1 must hold for adversarial single-direction play.
func TestRegretBoundSingleDirection(t *testing.T) {
	n := 5
	g, err := New(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.Diag([]float64{1, 0, 0, 0, 0})
	for trounds := 0; trounds < 40; trounds++ {
		if _, err := g.Play(m); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := g.BoundHolds()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		lhs, rhs, _ := g.Regret()
		t.Fatalf("regret bound violated: lhs=%v rhs=%v", lhs, rhs)
	}
	// The bound should also be reasonably tight for this adversary:
	// total gain must lag λmax=T by roughly ln(n)/ε₀.
	lhs, rhs, _ := g.Regret()
	if lhs < rhs || lhs > rhs+3*(1+math.Log(float64(n))/0.5+0.5*g.TotalGain()) {
		t.Fatalf("bound unexpectedly loose: lhs=%v rhs=%v", lhs, rhs)
	}
}

// Theorem 2.1 for random gain sequences, multiple dimensions and eps0.
func TestQuickRegretBoundRandomPlay(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1234))
		n := 2 + int(seed%4)
		eps0 := 0.1 + 0.4*rng.Float64()
		g, err := New(n, eps0)
		if err != nil {
			return false
		}
		rounds := 5 + int(seed%15)
		for r := 0; r < rounds; r++ {
			if _, err := g.Play(randGain(n, rng)); err != nil {
				return false
			}
		}
		ok, err := g.BoundHolds()
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Alternating adversary that always rewards the currently *least*
// weighted direction — the classic worst case for multiplicative
// weights; the bound must still hold.
func TestRegretBoundAdaptiveAdversary(t *testing.T) {
	n := 4
	g, err := New(n, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 60; r++ {
		p, err := g.Probability()
		if err != nil {
			t.Fatal(err)
		}
		// Find the min diagonal direction and reward it fully.
		best, arg := math.Inf(1), 0
		for i := 0; i < n; i++ {
			if p.At(i, i) < best {
				best = p.At(i, i)
				arg = i
			}
		}
		m := matrix.New(n, n)
		m.Set(arg, arg, 1)
		if _, err := g.Play(m); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := g.BoundHolds()
	if err != nil || !ok {
		lhs, rhs, _ := g.Regret()
		t.Fatalf("adaptive adversary broke the bound: lhs=%v rhs=%v err=%v", lhs, rhs, err)
	}
}

func TestGainSumIsCopy(t *testing.T) {
	g, _ := New(2, 0.25)
	_, _ = g.Play(matrix.Diag([]float64{0.5, 0}))
	s := g.GainSum()
	s.Set(0, 0, 99)
	s2 := g.GainSum()
	if s2.At(0, 0) == 99 {
		t.Fatal("GainSum leaked internal state")
	}
}

// Package mmw implements the matrix multiplicative weights (MMW) game
// of Arora–Kale as restated in Theorem 2.1 of the paper:
//
// For ε₀ ≤ 1/2 and W⁽¹⁾ = I, at each round t:
//  1. P⁽ᵗ⁾ = W⁽ᵗ⁾ / Tr[W⁽ᵗ⁾];
//  2. an adversary supplies a PSD gain matrix M⁽ᵗ⁾ ≼ I;
//  3. W⁽ᵗ⁺¹⁾ = exp(ε₀ Σ_{t'≤t} M⁽ᵗ'⁾).
//
// After T rounds (eq. 2.1):
//
//	(1+ε₀) Σₜ M⁽ᵗ⁾ • P⁽ᵗ⁾ ≥ λ_max(Σₜ M⁽ᵗ⁾) − ln(n)/ε₀ .
//
// Algorithm 3.1 inlines this game for performance; this standalone
// implementation exists to validate the regret bound directly
// (experiment E8) and as a reusable substrate for the width-dependent
// baseline solver.
package mmw

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/expm"
	"repro/internal/matrix"
)

// Game is one run of the MMW game over n-by-n symmetric matrices.
type Game struct {
	n       int
	eps0    float64
	rounds  int
	sumGain float64       // Σₜ M⁽ᵗ⁾ • P⁽ᵗ⁾
	sumM    *matrix.Dense // Σₜ M⁽ᵗ⁾
	// checkGains enables the (expensive) PSD and M ≼ I validation of
	// every played gain matrix.
	checkGains bool
}

// New creates a game over n-by-n matrices with parameter eps0 ∈ (0, 1/2].
func New(n int, eps0 float64) (*Game, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mmw: dimension %d must be positive", n)
	}
	if eps0 <= 0 || eps0 > 0.5 {
		return nil, fmt.Errorf("mmw: eps0 = %v out of (0, 1/2]", eps0)
	}
	return &Game{n: n, eps0: eps0, sumM: matrix.New(n, n)}, nil
}

// SetGainChecking enables or disables eigenvalue validation of played
// gain matrices (0 ≼ M ≼ I). Expensive: one eigendecomposition per Play.
func (g *Game) SetGainChecking(on bool) { g.checkGains = on }

// Probability returns the current density matrix
// P⁽ᵗ⁾ = exp(ε₀ Σ M)/Tr[exp(ε₀ Σ M)], computed shift-invariantly.
func (g *Game) Probability() (*matrix.Dense, error) {
	s := g.sumM.Clone()
	matrix.Scale(s, g.eps0, s)
	p, _, _, err := expm.NormalizedExpSym(s)
	return p, err
}

// Play performs one round: computes P from the current weights, charges
// the gain M • P, and folds M into the weight sum. Returns M • P.
func (g *Game) Play(m *matrix.Dense) (float64, error) {
	if m.R != g.n || m.C != g.n {
		return 0, fmt.Errorf("mmw: gain matrix is %dx%d, want %dx%d", m.R, m.C, g.n, g.n)
	}
	if g.checkGains {
		vals, err := eigen.SymEigenvalues(m)
		if err != nil {
			return 0, err
		}
		if vals[len(vals)-1] < -1e-9 || vals[0] > 1+1e-9 {
			return 0, errors.New("mmw: gain matrix violates 0 ≼ M ≼ I")
		}
	}
	p, err := g.Probability()
	if err != nil {
		return 0, err
	}
	gain := matrix.Dot(m, p)
	g.sumGain += gain
	matrix.AXPY(g.sumM, 1, m)
	g.rounds++
	return gain, nil
}

// Rounds returns the number of rounds played.
func (g *Game) Rounds() int { return g.rounds }

// TotalGain returns Σₜ M⁽ᵗ⁾ • P⁽ᵗ⁾.
func (g *Game) TotalGain() float64 { return g.sumGain }

// GainSum returns a copy of Σₜ M⁽ᵗ⁾.
func (g *Game) GainSum() *matrix.Dense { return g.sumM.Clone() }

// Regret reports the two sides of Theorem 2.1 after the rounds played
// so far: lhs = (1+ε₀)·Σ M•P + ln(n)/ε₀ and rhs = λ_max(Σ M).
// The theorem asserts lhs ≥ rhs.
func (g *Game) Regret() (lhs, rhs float64, err error) {
	lam, err := eigen.LambdaMax(g.sumM)
	if err != nil {
		return 0, 0, err
	}
	lhs = (1+g.eps0)*g.sumGain + logOf(g.n)/g.eps0
	return lhs, lam, nil
}

// BoundHolds reports whether the Theorem 2.1 inequality holds (with a
// tiny numerical slack).
func (g *Game) BoundHolds() (bool, error) {
	lhs, rhs, err := g.Regret()
	if err != nil {
		return false, err
	}
	return lhs >= rhs-1e-9*(1+rhs), nil
}

func logOf(n int) float64 {
	// ln n with the n=1 edge treated as ln 2 to keep the additive term
	// meaningful for trivial dimensions.
	if n < 2 {
		n = 2
	}
	return math.Log(float64(n))
}

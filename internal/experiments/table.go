// Package experiments implements the reproduction harness: one function
// per experiment in EXPERIMENTS.md (E1–E12), each regenerating the
// table that validates a theorem, lemma, or figure of the paper. The
// functions are shared by cmd/psdpbench (human-readable tables) and the
// repository's bench_test.go (testing.B wrappers with reported metrics).
package experiments

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title is the short experiment name.
	Title string
	// Claim states the paper claim being measured.
	Claim string
	// Columns and Rows hold the tabular result.
	Columns []string
	Rows    [][]string
	// Notes holds qualitative conclusions appended after the table.
	Notes []string
}

// AddRow appends a row, formatting each value with %v for strings and
// %.4g for floats.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Config tunes experiment sizes.
type Config struct {
	// Quick shrinks instance sizes for use inside tests/benchmarks.
	Quick bool
	// Seed drives all randomness; runs are deterministic given a seed.
	Seed uint64
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Config) (*Table, error)
}

// All returns the experiment registry in order.
func All() []Runner {
	return []Runner{
		{"E1", "iterations vs n (Thm 3.1)", E1IterationsVsN},
		{"E2", "iterations vs eps (Thm 3.1)", E2IterationsVsEps},
		{"E3", "width independence (headline)", E3WidthSweep},
		{"E4", "optimizer quality (Thm 1.1 / Lemma 2.2)", E4OptimizeQuality},
		{"E5", "Taylor degree sandwich (Lemma 4.2)", E5TaylorDegree},
		{"E6", "bigDotExp accuracy & work (Thm 4.1)", E6BigDotExp},
		{"E7", "work/depth scaling (Cor 1.2)", E7WorkDepth},
		{"E8", "MMW regret bound (Thm 2.1)", E8MMWRegret},
		{"E9", "ellipse packing (Figure 1)", E9Ellipse},
		{"E10", "diagonal case = positive LP (§1.2)", E10DiagonalLP},
		{"E11", "iteration-count comparison (§1.1)", E11IterFormulas},
		{"E12", "parallel wall-clock scaling (NC claim)", E12Parallel},
		{"E13", "ablation: dynamic bucketing (§1.1 / WMMR15)", E13Bucketing},
		{"E14", "ablation: JL sketch accuracy (Thm 4.1)", E14SketchAblation},
		{"E15", "trajectory of Lemma 3.2 quantities", E15Trajectory},
		{"E16", "mixed packing/covering extension (§5)", E16Mixed},
	}
}

// ByID returns the runner with the given ID, or nil.
func ByID(id string) *Runner {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return &r
		}
	}
	return nil
}

package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/mixed"
)

// E15Trajectory records the run-time behavior of Algorithm 3.1's two
// tracked quantities — ‖x‖₁ (which drives the dual exit at K) and
// λ_max(Ψ) (which Lemma 3.2 caps at (1+10ε)K) — sampled along one
// decision run, with ASCII sparklines. It demonstrates the mechanism of
// the proof, not just its endpoint: the spectrum tracks the ℓ₁ norm and
// both stay far under their caps until the dual exit fires.
func E15Trajectory(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "trajectory of ‖x‖₁ and λ_max(Ψ) along one run",
		Claim:   "Lemma 3.2 mechanism: λ_max(Ψ) grows in lockstep with ‖x‖₁, both within their caps throughout",
		Columns: []string{"quantity", "start", "mid", "end", "cap", "everViolated", "sparkline"},
	}
	n := 16
	if cfg.Quick {
		n = 8
	}
	eps := 0.25
	rng := rand.New(rand.NewPCG(cfg.Seed+61, 16))
	inst, err := gen.OrthogonalRankOne(n, n+2, rng)
	if err != nil {
		return nil, err
	}
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		return nil, err
	}
	var xs, lams []float64
	dr, err := core.DecisionPSDP(set.WithScale(inst.OPT), eps, core.Options{
		Seed: cfg.Seed,
		OnIteration: func(info core.IterationInfo) bool {
			xs = append(xs, info.XNorm1)
			lams = append(lams, info.LambdaMax)
			return true
		},
	})
	if err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("experiments: E15 captured no iterations")
	}
	kCap := dr.Params.K * (1 + eps) // Claim 3.5 overshoot cap on ‖x‖₁
	specCap := (1 + 10*eps) * dr.Params.K
	addTraj := func(name string, vals []float64, cap float64) {
		viol := false
		for _, v := range vals {
			if v > cap {
				viol = true
			}
		}
		t.AddRow(name, vals[0], vals[len(vals)/2], vals[len(vals)-1], cap,
			fmt.Sprintf("%v", viol), sparkline(vals, 32))
	}
	addTraj("‖x‖₁", xs, kCap)
	addTraj("λ_max(Ψ)", lams, specCap)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d iterations to the %s exit; the spectrum shadows the ℓ₁ norm as the Lemma 3.2 induction predicts",
			dr.Iterations, dr.Outcome))
	return t, nil
}

// sparkline renders vals as a fixed-width ASCII intensity strip.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	levels := []byte("_.-=+*#%@")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	for c := 0; c < width; c++ {
		idx := c * (len(vals) - 1) / max(width-1, 1)
		level := int(float64(len(levels)-1) * (vals[idx] - lo) / span)
		sb.WriteByte(levels[level])
	}
	return sb.String()
}

// E16Mixed validates the §5 future-work extension implemented in
// internal/mixed: mixed matrix-packing / diagonal-covering systems (the
// Jain–Yao 2012 class). On constructed instances with a known interior
// point the solver must return a verified bicriteria-feasible x; on a
// wildly infeasible instance it must stay inconclusive.
func E16Mixed(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "mixed packing/covering extension (§5 / JY12 class)",
		Claim:   "find x ≥ 0 with Σ xᵢAᵢ ≼ (1+10ε)I and Cx ≥ (1−ε)1, both verified; never false-positive",
		Columns: []string{"instance", "status", "minCoverage", "lambdaMax", "iters", "correct"},
	}
	eps := 0.15
	sizes := []struct{ n, m, d int }{{5, 8, 4}, {8, 12, 6}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	for _, sz := range sizes {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(sz.n), 17))
		p, err := mixedFeasible(sz.n, sz.m, sz.d, rng)
		if err != nil {
			return nil, err
		}
		res, err := mixed.Solve(p, eps, mixed.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		correct := res.Status == mixed.StatusFeasible &&
			res.MinCoverage >= 1-eps && res.LambdaMax <= 1+10*eps
		t.AddRow(fmt.Sprintf("feasible(n=%d,m=%d,d=%d)", sz.n, sz.m, sz.d),
			res.Status.String(), res.MinCoverage, res.LambdaMax, res.Iterations,
			fmt.Sprintf("%v", correct))
	}
	// Infeasible control: coverage demand 100x beyond the packing cap.
	set, err := core.NewDenseSet([]*matrix.Dense{matrix.Identity(3)})
	if err != nil {
		return nil, err
	}
	c := matrix.New(1, 1)
	c.Set(0, 0, 0.01)
	p, err := mixed.NewProblem(set, c)
	if err != nil {
		return nil, err
	}
	res, err := mixed.Solve(p, eps, mixed.Options{MaxIter: 4000})
	if err != nil {
		return nil, err
	}
	t.AddRow("infeasible-control", res.Status.String(), res.MinCoverage, res.LambdaMax,
		res.Iterations, fmt.Sprintf("%v", res.Status != mixed.StatusFeasible))
	t.Notes = append(t.Notes,
		"the extension reports only verified bicriteria points; the infeasible control stays inconclusive")
	return t, nil
}

// mixedFeasible builds a mixed instance with a planted interior point
// (packing at λmax 0.5, coverage margin 1.5).
func mixedFeasible(n, m, d int, rng *rand.Rand) (*mixed.Problem, error) {
	inst, err := gen.OrthogonalRankOne(n, m, rng)
	if err != nil {
		return nil, err
	}
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		return nil, err
	}
	xref := make([]float64, n)
	for i := 0; i < n; i++ {
		xref[i] = 0.5 / set.Trace(i)
	}
	c := matrix.New(d, n)
	for j := 0; j < d; j++ {
		row := c.Row(j)
		for i := range row {
			if rng.Float64() < 0.7 {
				row[i] = rng.Float64()
			}
		}
		row[rng.IntN(n)] += 0.5
		dot := matrix.VecDot(row, xref)
		matrix.VecScale(row, 1.5/dot, row)
	}
	return mixed.NewProblem(set, c)
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quickCfg = Config{Quick: true, Seed: 12345}

func runAndRender(t *testing.T, id string) *Table {
	t.Helper()
	r := ByID(id)
	if r == nil {
		t.Fatalf("experiment %s not registered", id)
	}
	tbl, err := r.Run(quickCfg)
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	out := tbl.Render()
	if !strings.Contains(out, id+":") {
		t.Fatalf("%s render missing header: %q", id, out)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tbl
}

func col(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("%s: column %q not found in %v", tbl.ID, name, tbl.Columns)
	return -1
}

func cellFloat(t *testing.T, tbl *Table, row int, name string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col(t, tbl, name)], 64)
	if err != nil {
		t.Fatalf("%s row %d col %s: %v", tbl.ID, row, name, err)
	}
	return v
}

func TestE1SpectrumAndIterationBounds(t *testing.T) {
	tbl := runAndRender(t, "E1")
	for i := range tbl.Rows {
		if got := tbl.Rows[i][col(t, tbl, "specOK")]; got != "true" {
			t.Fatalf("row %d: Lemma 3.2 spectrum bound violated", i)
		}
		if r := cellFloat(t, tbl, i, "iters/R"); r > 1 {
			t.Fatalf("row %d: iterations exceeded the Theorem 3.1 cap (ratio %v)", i, r)
		}
	}
}

func TestE2IterationsIncreaseAsEpsShrinks(t *testing.T) {
	tbl := runAndRender(t, "E2")
	first := cellFloat(t, tbl, 0, "iters")
	last := cellFloat(t, tbl, len(tbl.Rows)-1, "iters")
	if last < first {
		t.Fatalf("iterations should not decrease as eps shrinks: %v -> %v", first, last)
	}
}

func TestE3WidthIndependenceShape(t *testing.T) {
	tbl := runAndRender(t, "E3")
	rows := len(tbl.Rows)
	oursFirst := cellFloat(t, tbl, 0, "ours(iters)")
	oursLast := cellFloat(t, tbl, rows-1, "ours(iters)")
	baseFirst := cellFloat(t, tbl, 0, "baseline(iters)")
	baseLast := cellFloat(t, tbl, rows-1, "baseline(iters)")
	if oursLast > 3*oursFirst {
		t.Fatalf("our iterations grew with width: %v -> %v", oursFirst, oursLast)
	}
	if baseLast < 4*baseFirst {
		t.Fatalf("baseline iterations did not grow with width: %v -> %v", baseFirst, baseLast)
	}
}

func TestE4BracketsContainOPT(t *testing.T) {
	tbl := runAndRender(t, "E4")
	for i := range tbl.Rows {
		if got := tbl.Rows[i][col(t, tbl, "inBracket")]; got != "true" {
			t.Fatalf("row %d (%s): certified bracket missed OPT", i, tbl.Rows[i][0])
		}
		if g := cellFloat(t, tbl, i, "relGap"); g > 0.5 {
			t.Fatalf("row %d: gap %v unreasonably large", i, g)
		}
	}
}

func TestE5SandwichHolds(t *testing.T) {
	tbl := runAndRender(t, "E5")
	for i := range tbl.Rows {
		if tbl.Rows[i][col(t, tbl, "upperOK")] != "true" || tbl.Rows[i][col(t, tbl, "lowerOK")] != "true" {
			t.Fatalf("row %d: Lemma 4.2 sandwich violated", i)
		}
		if e := cellFloat(t, tbl, i, "maxRelErr"); e > 0.1 {
			t.Fatalf("row %d: relative error %v exceeds eps", i, e)
		}
	}
}

func TestE6SketchAccuracyAndLinearWork(t *testing.T) {
	tbl := runAndRender(t, "E6")
	for i := range tbl.Rows {
		if e := cellFloat(t, tbl, i, "maxRelErr"); e > 0.6 {
			t.Fatalf("row %d: sketched ratios off by %v", i, e)
		}
	}
	// work/q must stay within a modest band as q grows.
	first := cellFloat(t, tbl, 0, "work/q")
	last := cellFloat(t, tbl, len(tbl.Rows)-1, "work/q")
	if last > 4*first {
		t.Fatalf("work per nonzero grew superlinearly: %v -> %v", first, last)
	}
}

func TestE7NearLinearWork(t *testing.T) {
	tbl := runAndRender(t, "E7")
	first := cellFloat(t, tbl, 0, "work/(n+m+q)")
	last := cellFloat(t, tbl, len(tbl.Rows)-1, "work/(n+m+q)")
	if last > 6*first {
		t.Fatalf("work per instance unit grew too fast: %v -> %v", first, last)
	}
}

func TestE8BoundAlwaysHolds(t *testing.T) {
	tbl := runAndRender(t, "E8")
	for i := range tbl.Rows {
		if tbl.Rows[i][col(t, tbl, "holds")] != "true" {
			t.Fatalf("row %d: Theorem 2.1 violated", i)
		}
		if s := cellFloat(t, tbl, i, "slack"); s < 0 {
			t.Fatalf("row %d: negative slack %v", i, s)
		}
	}
}

func TestE9EllipseFeasibleAndMixed(t *testing.T) {
	tbl := runAndRender(t, "E9")
	vals := map[string]string{}
	for _, r := range tbl.Rows {
		vals[r[0]] = r[1]
	}
	if vals["feasible"] != "true" {
		t.Fatal("ellipse witness infeasible")
	}
	x3, err := strconv.ParseFloat(vals["x3 (rotated A3)"], 64)
	if err != nil {
		t.Fatal(err)
	}
	if x3 <= 0 {
		t.Fatal("optimal packing should use the rotated ellipse A3")
	}
}

func TestE10AllSolversAgree(t *testing.T) {
	tbl := runAndRender(t, "E10")
	for i := range tbl.Rows {
		if tbl.Rows[i][col(t, tbl, "allAgree")] != "true" {
			t.Fatalf("row %d: solvers disagree on diagonal instance", i)
		}
	}
}

func TestE11FormulasDominateMeasured(t *testing.T) {
	tbl := runAndRender(t, "E11")
	for i := range tbl.Rows {
		jy, err := strconv.ParseFloat(tbl.Rows[i][col(t, tbl, "JY11(formula)")], 64)
		if err != nil {
			t.Fatal(err)
		}
		meas := cellFloat(t, tbl, i, "measured(ours)")
		if jy < 1e6*meas {
			t.Fatalf("row %d: JY formula %v not astronomically above measured %v", i, jy, meas)
		}
	}
}

func TestE12RunsAndReportsSpeedup(t *testing.T) {
	tbl := runAndRender(t, "E12")
	if s := cellFloat(t, tbl, 0, "speedup"); s != 1 {
		t.Fatalf("first row speedup = %v want 1", s)
	}
}

func TestE13BucketingSoundAndFaster(t *testing.T) {
	tbl := runAndRender(t, "E13")
	for i := range tbl.Rows {
		if tbl.Rows[i][col(t, tbl, "bothCertified")] != "true" {
			t.Fatalf("row %d: bucketed variant broke certificates", i)
		}
		if s := cellFloat(t, tbl, i, "speedup"); s < 1 {
			t.Fatalf("row %d: bucketing slowed the solver (%vx)", i, s)
		}
	}
}

func TestE14SketchBracketHolds(t *testing.T) {
	tbl := runAndRender(t, "E14")
	for i := range tbl.Rows {
		if tbl.Rows[i][col(t, tbl, "inBracket")] != "true" {
			t.Fatalf("row %d: bracket failed at sketchEps %s", i, tbl.Rows[i][0])
		}
	}
}

func TestE15TrajectoryWithinCaps(t *testing.T) {
	tbl := runAndRender(t, "E15")
	for i := range tbl.Rows {
		if tbl.Rows[i][col(t, tbl, "everViolated")] != "false" {
			t.Fatalf("row %d (%s): cap violated along the trajectory", i, tbl.Rows[i][0])
		}
		if spark := tbl.Rows[i][col(t, tbl, "sparkline")]; len(spark) == 0 {
			t.Fatalf("row %d: empty sparkline", i)
		}
	}
}

func TestE16MixedCorrectness(t *testing.T) {
	tbl := runAndRender(t, "E16")
	for i := range tbl.Rows {
		if tbl.Rows[i][col(t, tbl, "correct")] != "true" {
			t.Fatalf("row %d (%s): mixed extension misbehaved", i, tbl.Rows[i][0])
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(All()))
	}
	if ByID("e3") == nil || ByID("E3") == nil {
		t.Fatal("ByID should be case-insensitive")
	}
	if ByID("E99") != nil {
		t.Fatal("unknown id should return nil")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{ID: "T", Title: "x", Claim: "c", Columns: []string{"a", "long-column"}}
	tbl.AddRow(1.23456789, "v")
	out := tbl.Render()
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float formatting wrong: %q", out)
	}
	if !strings.Contains(out, "long-column") {
		t.Fatal("missing column header")
	}
}

package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/expm"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/mmw"
	"repro/internal/parallel"
	"repro/internal/work"
)

// E5TaylorDegree validates Lemma 4.2: at degree k = max{e²κ, ln(2/ε)},
// the truncated series B̂ satisfies (1−ε)exp(B) ≼ B̂ ≼ exp(B). For each
// κ we measure the extreme eigenvalues of exp(B)−B̂ relative to exp(B)
// and check the Loewner sandwich spectrally.
func E5TaylorDegree(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "truncated Taylor exponential vs exact",
		Claim:   "Lemma 4.2: (1-eps)exp(B) <= Bhat <= exp(B) at degree max{e^2*kappa, ln(2/eps)}",
		Columns: []string{"kappa", "degree", "maxRelErr", "upperOK", "lowerOK"},
	}
	eps := 0.1
	kappas := []float64{0.5, 2, 8, 16}
	if cfg.Quick {
		kappas = []float64{0.5, 4}
	}
	m := 8
	rng := rand.New(rand.NewPCG(cfg.Seed+11, 4))
	// One workspace across the sweep: every Horner chain reuses the same
	// two ping-pong matrices.
	ws := work.New()
	for _, kappa := range kappas {
		b := gen.RandomPSD(m, m, rng)
		lam, err := eigen.LambdaMax(b)
		if err != nil {
			return nil, err
		}
		matrix.Scale(b, kappa/lam, b)
		k := expm.TaylorDegree(kappa, eps)
		hat := expm.TaylorExpPSDWS(ws, b, k)
		exact, err := expm.ExpSym(b)
		if err != nil {
			return nil, err
		}
		// Both sandwich sides are checked relative to ‖exp(B)‖₂: for
		// large κ the truncation reaches machine precision and the
		// difference matrix is pure roundoff, so absolute PSD tests
		// would report noise.
		expTop, err := eigen.LambdaMax(exact)
		if err != nil {
			return nil, err
		}
		// Upper: exp(B) − B̂ ≽ −tol·‖exp‖; Lower: B̂ − (1−ε)exp(B) ≽ −tol·‖exp‖.
		diff := matrix.New(m, m)
		matrix.Sub(diff, exact, hat)
		lminUpper, err := eigen.LambdaMin(diff)
		if err != nil {
			return nil, err
		}
		upperOK := lminUpper >= -1e-12*expTop
		errTop, err := eigen.LambdaMax(diff)
		if err != nil {
			return nil, err
		}
		low := exact.Clone()
		matrix.Scale(low, 1-eps, low)
		matrix.Sub(diff, hat, low)
		lminLower, err := eigen.LambdaMin(diff)
		if err != nil {
			return nil, err
		}
		lowerOK := lminLower >= -1e-12*expTop
		t.AddRow(kappa, k, errTop/expTop, fmt.Sprintf("%v", upperOK), fmt.Sprintf("%v", lowerOK))
	}
	t.Notes = append(t.Notes, "the sandwich holds at every kappa and the measured relative error sits well below eps")
	return t, nil
}

// E6BigDotExp validates Theorem 4.1 on both axes: (a) the JL-sketched
// factored oracle approximates all exp(Ψ)•Aᵢ ratios within the sketch
// tolerance (compared against the exact dense oracle on the same
// instance and same x), and (b) the analytic work grows near-linearly
// with q while the dense reference grows with n·m³.
func E6BigDotExp(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "bigDotExp: sketched ratios vs exact, work vs q",
		Claim:   "Thm 4.1: (1±eps) approximation of all exp(Phi)•A_i in O~(kappa(p+q)/eps^2) work",
		Columns: []string{"m", "q", "maxRelErr", "medRelErr", "work(JL)", "work/q"},
	}
	sizes := []struct{ n, m, cols, nnz int }{
		{8, 32, 2, 4}, {16, 64, 2, 4}, {32, 128, 2, 4},
	}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	sketchEps := 0.15
	for _, sz := range sizes {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(sz.m), 5))
		inst, err := gen.RandomFactored(sz.n, sz.m, sz.cols, sz.nnz, rng)
		if err != nil {
			return nil, err
		}
		fset, err := core.NewFactoredSet(inst.Q)
		if err != nil {
			return nil, err
		}
		dset, err := fset.Densify()
		if err != nil {
			return nil, err
		}
		var st parallel.Stats
		jlRatios, exactRatios, err := core.CompareOracles(dset, fset, sketchEps, cfg.Seed, &st)
		if err != nil {
			return nil, err
		}
		maxErr, medErr := relErrStats(jlRatios, exactRatios)
		t.AddRow(sz.m, fset.NNZ(), maxErr, medErr, st.Work(), float64(st.Work())/float64(fset.NNZ()))
	}
	t.Notes = append(t.Notes,
		"sketched ratios match the exact oracle within ~2x the sketch tolerance; work per nonzero stays flat as q doubles (near-linear total work)")
	return t, nil
}

func relErrStats(got, want []float64) (maxErr, medErr float64) {
	errs := make([]float64, 0, len(got))
	for i := range got {
		denom := math.Max(math.Abs(want[i]), 1e-300)
		errs = append(errs, math.Abs(got[i]-want[i])/denom)
	}
	maxErr = 0
	for _, e := range errs {
		if e > maxErr {
			maxErr = e
		}
	}
	// median via partial sort (small slices).
	for i := 0; i < len(errs); i++ {
		for j := i + 1; j < len(errs); j++ {
			if errs[j] < errs[i] {
				errs[i], errs[j] = errs[j], errs[i]
			}
		}
	}
	medErr = errs[len(errs)/2]
	return maxErr, medErr
}

// E7WorkDepth measures Corollary 1.2: total analytic work Õ(n+m+q) and
// polylog depth for full decision runs on sparse factored instances of
// doubling size.
func E7WorkDepth(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "analytic work/depth scaling on factored instances",
		Claim:   "Cor 1.2: O~(eps^-6 (n+m+q)) work, polylog depth",
		Columns: []string{"n", "m", "q", "iters", "work", "work/(n+m+q)", "depth", "depth/log^3"},
	}
	sizes := []struct{ n, m int }{{16, 32}, {32, 64}, {64, 128}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	for _, sz := range sizes {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(sz.n), 6))
		inst, err := gen.RandomFactored(sz.n, sz.m, 2, 3, rng)
		if err != nil {
			return nil, err
		}
		fset, err := core.NewFactoredSet(inst.Q)
		if err != nil {
			return nil, err
		}
		var st parallel.Stats
		// Scale to the decision point via the trace heuristic (the
		// interesting regime is OPT near 1).
		minTr := math.Inf(1)
		for i := 0; i < fset.N(); i++ {
			if tr := fset.Trace(i); tr < minTr {
				minTr = tr
			}
		}
		scaled := fset.WithScale(2 / minTr)
		dr, err := core.DecisionPSDP(scaled, 0.25, core.Options{Seed: cfg.Seed, Stats: &st, SketchEps: 0.25})
		if err != nil {
			return nil, err
		}
		size := float64(sz.n + sz.m + fset.NNZ())
		logCubed := math.Pow(math.Log(float64(sz.n+sz.m)), 3)
		t.AddRow(sz.n, sz.m, fset.NNZ(), dr.Iterations,
			st.Work(), float64(st.Work())/size, st.Depth(), float64(st.Depth())/logCubed)
	}
	t.Notes = append(t.Notes,
		"work per unit of (n+m+q) stays within a small band as size doubles; depth grows polylogarithmically")
	return t, nil
}

// E8MMWRegret validates Theorem 2.1 directly: for random and adaptive
// adversaries, (1+eps0)·Σ M•P + ln(n)/eps0 ≥ λmax(Σ M) in every run.
func E8MMWRegret(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "MMW regret bound under adversarial play",
		Claim:   "Thm 2.1: (1+e0)Σ M•P ≥ λmax(Σ M) − ln(n)/e0 for all PSD gains M ≼ I",
		Columns: []string{"adversary", "n", "eps0", "rounds", "lhs", "rhs(λmax)", "slack", "holds"},
	}
	rounds := 80
	if cfg.Quick {
		rounds = 30
	}
	for _, setup := range []struct {
		name string
		n    int
		eps0 float64
	}{
		{"random", 6, 0.3}, {"random", 12, 0.5}, {"adaptive-min", 6, 0.25}, {"single-dir", 4, 0.5},
	} {
		g, err := mmw.New(setup.n, setup.eps0)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(setup.n), 7))
		for r := 0; r < rounds; r++ {
			var gain *matrix.Dense
			switch setup.name {
			case "random":
				gain = randomGain(setup.n, rng)
			case "adaptive-min":
				p, err := g.Probability()
				if err != nil {
					return nil, err
				}
				arg := 0
				for i := 1; i < setup.n; i++ {
					if p.At(i, i) < p.At(arg, arg) {
						arg = i
					}
				}
				gain = matrix.New(setup.n, setup.n)
				gain.Set(arg, arg, 1)
			default: // single-dir
				gain = matrix.New(setup.n, setup.n)
				gain.Set(0, 0, 1)
			}
			if _, err := g.Play(gain); err != nil {
				return nil, err
			}
		}
		lhs, rhs, err := g.Regret()
		if err != nil {
			return nil, err
		}
		holds, err := g.BoundHolds()
		if err != nil {
			return nil, err
		}
		t.AddRow(setup.name, setup.n, setup.eps0, rounds, lhs, rhs, lhs-rhs, fmt.Sprintf("%v", holds))
	}
	t.Notes = append(t.Notes, "the bound held in every adversarial configuration tested")
	return t, nil
}

func randomGain(n int, rng *rand.Rand) *matrix.Dense {
	g := matrix.New(n, 2)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	m := matrix.MulABT(g, g, nil)
	if tr := m.Trace(); tr > 0 {
		matrix.Scale(m, rng.Float64()/tr, m)
	}
	return m
}

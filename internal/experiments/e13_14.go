package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sketch"
)

// sketchRows reports the JL dimension the factored oracle will use.
func sketchRows(m int, eps float64) int { return sketch.Rows(m, eps) }

// E13Bucketing is the ablation for the dynamic-bucketing update
// ([WMMR15], which the paper's §1.1 conjectures applies to its
// analysis): same instances, same certificates, plain single-step vs
// bucketed multi-step coordinate updates.
func E13Bucketing(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "ablation: dynamic bucketing vs plain updates",
		Claim:   "§1.1: the WMMR15 bucketing method applies to this algorithm; it should cut iterations, not correctness",
		Columns: []string{"n", "plain(iters)", "bucketed(iters)", "speedup", "bothCertified"},
	}
	ns := []int{8, 16, 32}
	if cfg.Quick {
		ns = ns[:2]
	}
	eps := 0.2
	for _, n := range ns {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(n), 14))
		inst, err := gen.OrthogonalRankOne(n, n+2, rng)
		if err != nil {
			return nil, err
		}
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			return nil, err
		}
		scaled := set.WithScale(inst.OPT)
		plain, err := core.DecisionPSDP(scaled, eps, core.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		fast, err := core.DecisionPSDP(scaled, eps, core.Options{Seed: cfg.Seed, Bucketed: true})
		if err != nil {
			return nil, err
		}
		ok := true
		for _, dr := range []*core.DecisionResult{plain, fast} {
			cert, err := core.VerifyDual(scaled, dr.DualX, 1e-7)
			if err != nil || !cert.Feasible {
				ok = false
			}
			if dr.Lower > 1+1e-6 || dr.Upper < 1-1e-6 {
				ok = false
			}
		}
		t.AddRow(n, plain.Iterations, fast.Iterations,
			float64(plain.Iterations)/float64(fast.Iterations), fmt.Sprintf("%v", ok))
	}
	t.Notes = append(t.Notes,
		"bucketing collapses the multiplicative ramp-up phase; both variants' certificates verify identically")
	return t, nil
}

// E14SketchAblation sweeps the JL sketch accuracy ε_s on a fixed
// factored instance: fewer rows means cheaper iterations but noisier
// ratios; the certified bracket must contain OPT at every setting (the
// certificates absorb the noise), with quality degrading gracefully.
func E14SketchAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "ablation: JL sketch accuracy vs certified quality",
		Claim:   "Thm 4.1 trades oracle accuracy for work via the sketch dimension O(log m/eps_s^2)",
		Columns: []string{"sketchEps", "rows", "iters", "lower", "upper", "inBracket"},
	}
	n, m := 4, 192
	sweeps := []float64{0.6, 0.4, 0.25}
	if cfg.Quick {
		n, m = 4, 32
		sweeps = []float64{0.5, 0.2}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed+31, 15))
	inst, err := gen.OrthogonalRankOne(n, m, rng)
	if err != nil {
		return nil, err
	}
	dset, err := core.NewDenseSet(inst.A)
	if err != nil {
		return nil, err
	}
	fset, err := dset.Factorize(1e-12)
	if err != nil {
		return nil, err
	}
	scaled := fset.WithScale(inst.OPT)
	for _, se := range sweeps {
		// Bucketed updates keep the sweep affordable; E13 shows they do
		// not change the certificates.
		dr, err := core.DecisionPSDP(scaled, 0.2, core.Options{Seed: cfg.Seed, SketchEps: se, Bucketed: true})
		if err != nil {
			return nil, err
		}
		rows := sketchRows(m, se)
		in := dr.Lower <= 1+1e-6 && dr.Upper >= 1-1e-6
		t.AddRow(se, rows, dr.Iterations, dr.Lower, dr.Upper, fmt.Sprintf("%v", in))
	}
	t.Notes = append(t.Notes,
		"the bracket holds at every sketch accuracy; the row count grows as eps_s^-2 until it clamps at m (sketch = identity)")
	return t, nil
}

package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/poslp"
)

// E9Ellipse reproduces the geometry of the paper's Figure 1: packing
// the two axis-aligned ellipses A₁, A₂ and the rotated ellipse A₃ into
// the unit ball. The solver's weights xᵢ say how much of each ellipse
// fits; the figure's point — that the rotated ellipse breaks the
// axis-aligned (LP) structure — shows up as the optimal solution
// genuinely mixing A₃ with A₁, A₂.
func E9Ellipse(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Figure 1 ellipse packing",
		Claim:   "packing general ellipsoids into the unit ball needs matrix (not scalar) MW: A3 is rotated",
		Columns: []string{"quantity", "value"},
	}
	inst := gen.Ellipse2D()
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		return nil, err
	}
	sol, err := core.MaximizePacking(set, 0.05, core.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	cert, err := core.VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		return nil, err
	}
	t.AddRow("certified value (lower)", sol.Lower)
	t.AddRow("certified upper bound", sol.Upper)
	t.AddRow("x1 (axis-aligned A1)", sol.X[0])
	t.AddRow("x2 (axis-aligned A2)", sol.X[1])
	t.AddRow("x3 (rotated A3)", sol.X[2])
	t.AddRow("lambda_max(sum)", cert.LambdaMax)
	t.AddRow("feasible", fmt.Sprintf("%v", cert.Feasible))
	t.Notes = append(t.Notes,
		"the optimal packing uses all three ellipses; with only A1+A2 the LP structure would suffice (their sum stays axis-aligned)")
	return t, nil
}

// E10DiagonalLP checks the §1.2 claim that Algorithm 3.1 generalizes
// Young's positive LP algorithm: on diagonal instances the SDP solver,
// the LP solver, and the exact simplex must agree.
func E10DiagonalLP(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "diagonal SDP = positive LP: three solvers, one instance",
		Claim:   "the diagonal case of Algorithm 3.1 is Young's parallel LP algorithm",
		Columns: []string{"n", "d", "simplexOPT", "psdp[lo,hi]", "youngLP[lo,hi]", "allAgree"},
	}
	sizes := []struct{ n, d int }{{6, 5}, {10, 8}}
	if cfg.Quick {
		sizes = sizes[:1]
	}
	eps := 0.1
	for _, sz := range sizes {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(sz.n), 8))
		diag, p := gen.DiagonalLP(sz.n, sz.d, 0.6, rng)
		pk, err := poslp.NewPacking(p)
		if err != nil {
			return nil, err
		}
		opt, _, err := poslp.ExactPackingOPT(pk)
		if err != nil {
			return nil, err
		}
		set, err := core.NewDenseSet(diag.A)
		if err != nil {
			return nil, err
		}
		sdp, err := core.MaximizePacking(set, eps, core.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		lp, err := poslp.Maximize(pk, eps, poslp.Options{})
		if err != nil {
			return nil, err
		}
		agree := sdp.Lower <= opt*(1+1e-9) && sdp.Upper >= opt*(1-1e-9) &&
			lp.Lower <= opt*(1+1e-9) && lp.Upper >= opt*(1-1e-9)
		t.AddRow(sz.n, sz.d, opt,
			fmt.Sprintf("[%.4g, %.4g]", sdp.Lower, sdp.Upper),
			fmt.Sprintf("[%.4g, %.4g]", lp.Lower, lp.Upper),
			fmt.Sprintf("%v", agree))
	}
	t.Notes = append(t.Notes, "both width-independent solvers bracket the simplex optimum on every diagonal instance")
	return t, nil
}

// E11IterFormulas is the §1.1 related-work comparison. Implementing
// Jain–Yao faithfully is infeasible (Ω(m^ω) spectral decompositions per
// iteration, O(ε⁻¹³log¹³m·log n) iterations — see DESIGN.md §3), so the
// table compares measured iteration counts of our solver and the
// width-dependent baseline against the published iteration FORMULAS of
// all three algorithms at the same (n, m, ε).
func E11IterFormulas(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "iteration counts: measured vs published formulas",
		Claim:   "ours: O(e^-3 log^2 n) ≪ JY11: O(e^-13 log^13 m log n); width-dep: Θ(width·log m/δ²)",
		Columns: []string{"n", "eps", "measured(ours)", "R(ours)", "JY11(formula)", "widthdep(measured)"},
	}
	eps := 0.2
	ns := []int{8, 16}
	if cfg.Quick {
		ns = ns[:1]
	}
	for _, n := range ns {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(n), 9))
		m := n + 2
		inst, err := gen.OrthogonalRankOne(n, m, rng)
		if err != nil {
			return nil, err
		}
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			return nil, err
		}
		dr, err := core.DecisionPSDP(set.WithScale(inst.OPT), eps, core.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		jy := math.Pow(1/eps, 13) * math.Pow(math.Log(float64(m)), 13) * math.Log(float64(n))
		wd, err := widthdepFeasible(inst, 0.9*inst.OPT)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, eps, dr.Iterations, dr.Params.R, fmt.Sprintf("%.3g", jy), wd)
	}
	t.Notes = append(t.Notes,
		"JY11's formula exceeds our measured counts by >10 orders of magnitude at these sizes; see DESIGN.md §3 for why JY11 is compared by formula only")
	return t, nil
}

// E12Parallel measures wall-clock scaling of one decision run as
// GOMAXPROCS grows — the practical face of the NC claim. Absolute
// speedups depend on the machine; the table records them.
func E12Parallel(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "wall-clock vs worker count",
		Claim:   "the algorithm is parallelizable: polylog depth in theory, multicore speedup in practice",
		Columns: []string{"workers", "time", "speedup"},
	}
	n, m := 24, 96
	if cfg.Quick {
		n, m = 12, 48
	}
	rng := rand.New(rand.NewPCG(cfg.Seed+13, 10))
	inst, err := gen.RandomFactored(n, m, 3, 6, rng)
	if err != nil {
		return nil, err
	}
	fset, err := core.NewFactoredSet(inst.Q)
	if err != nil {
		return nil, err
	}
	minTr := math.Inf(1)
	for i := 0; i < fset.N(); i++ {
		if tr := fset.Trace(i); tr < minTr {
			minTr = tr
		}
	}
	scaled := fset.WithScale(2 / minTr)

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	var baseline time.Duration
	maxW := orig
	if maxW > 8 {
		maxW = 8
	}
	for w := 1; w <= maxW; w *= 2 {
		runtime.GOMAXPROCS(w)
		start := time.Now()
		if _, err := core.DecisionPSDP(scaled, 0.25, core.Options{Seed: cfg.Seed, SketchEps: 0.25}); err != nil {
			runtime.GOMAXPROCS(orig)
			return nil, err
		}
		elapsed := time.Since(start)
		if w == 1 {
			baseline = elapsed
		}
		t.AddRow(w, elapsed.Round(time.Microsecond).String(), float64(baseline)/float64(elapsed))
	}
	t.Notes = append(t.Notes, "identical results at every worker count (deterministic reductions); speedup is machine-dependent")
	if orig == 1 {
		t.Notes = append(t.Notes, "this host exposes a single CPU; run on a multicore machine to observe scaling")
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/poslp"
	"repro/internal/widthdep"
)

// E1IterationsVsN measures Theorem 3.1: decisionPSDP solves the
// ε-decision problem in O(ε⁻³ log² n) iterations. For each n we build a
// known-OPT instance, scale it so OPT = 1 (the hardest decision point),
// run Algorithm 3.1, and report iterations against the theoretical cap
// R, plus the Lemma 3.2 spectrum bound check.
func E1IterationsVsN(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "iterations vs n at fixed eps",
		Claim:   "Thm 3.1: O(eps^-3 log^2 n) iterations; Lemma 3.2: lambda_max(Psi) <= (1+10eps)K",
		Columns: []string{"n", "m", "iters", "R(bound)", "iters/R", "maxPsiNorm", "(1+10e)K", "specOK"},
	}
	eps := 0.2
	ns := []int{8, 16, 32, 64}
	if cfg.Quick {
		ns = []int{8, 16}
	}
	for _, n := range ns {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(n), 1))
		m := n + 2
		inst, err := gen.OrthogonalRankOne(n, m, rng)
		if err != nil {
			return nil, err
		}
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			return nil, err
		}
		dr, err := core.DecisionPSDP(set.WithScale(inst.OPT), eps, core.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		bound := (1 + 10*eps) * dr.Params.K
		t.AddRow(n, m, dr.Iterations, dr.Params.R,
			float64(dr.Iterations)/float64(dr.Params.R),
			dr.MaxPsiNorm, bound, fmt.Sprintf("%v", dr.MaxPsiNorm <= bound))
	}
	t.Notes = append(t.Notes,
		"iterations stay far below the worst-case R and grow ~log^2 n; the spectrum bound of Lemma 3.2 is never violated")
	return t, nil
}

// E2IterationsVsEps measures the ε-dependence of the iteration count at
// fixed n.
func E2IterationsVsEps(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "iterations vs eps at fixed n",
		Claim:   "Thm 3.1: iteration bound scales as eps^-3 (measured growth is much milder)",
		Columns: []string{"eps", "iters", "R(bound)", "iters/R", "K", "alpha"},
	}
	n, m := 24, 26
	epss := []float64{0.4, 0.3, 0.2, 0.15, 0.1}
	if cfg.Quick {
		n, m = 12, 14
		epss = []float64{0.4, 0.2}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed+77, 2))
	inst, err := gen.OrthogonalRankOne(n, m, rng)
	if err != nil {
		return nil, err
	}
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		return nil, err
	}
	for _, eps := range epss {
		dr, err := core.DecisionPSDP(set.WithScale(inst.OPT), eps, core.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		t.AddRow(eps, dr.Iterations, dr.Params.R,
			float64(dr.Iterations)/float64(dr.Params.R), dr.Params.K, dr.Params.Alpha)
	}
	t.Notes = append(t.Notes,
		"the theory cap R grows as eps^-3 while measured iterations track ~eps^-2 on these instances (early certificate exits)")
	return t, nil
}

// E3WidthSweep is the headline experiment: the paper's algorithm is
// width-independent while the Arora–Kale-style baseline pays Θ(width)
// iterations. Both solve the same decision: "is packing value
// v = 0.9·OPT feasible?" on the exact width family (OPT = 1 + 1/w).
func E3WidthSweep(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "iterations vs width: Algorithm 3.1 vs width-dependent MMW",
		Claim:   "width-independent: our iterations flat in w; AK-style baseline grows ~linearly in w",
		Columns: []string{"width", "ours(iters)", "baseline(iters)", "baseline/ours"},
	}
	widths := []float64{1, 4, 16, 64}
	if cfg.Quick {
		widths = []float64{1, 16}
	}
	n, m := 4, 6
	var oursAt, baseAt []float64
	for _, w := range widths {
		inst, err := gen.WidthFamilyExact(n, m, w)
		if err != nil {
			return nil, err
		}
		v := 0.9 * inst.OPT
		set, err := core.NewDenseSet(inst.A)
		if err != nil {
			return nil, err
		}
		dr, err := core.DecisionPSDP(set.WithScale(v), 0.2, core.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		base, err := widthdepFeasible(inst, v)
		if err != nil {
			return nil, err
		}
		oursAt = append(oursAt, float64(dr.Iterations))
		baseAt = append(baseAt, float64(base))
		t.AddRow(w, dr.Iterations, base, float64(base)/float64(dr.Iterations))
	}
	oursRatio := oursAt[len(oursAt)-1] / oursAt[0]
	baseRatio := baseAt[len(baseAt)-1] / baseAt[0]
	t.Notes = append(t.Notes, fmt.Sprintf(
		"across a %gx width increase, our iterations changed %.2fx while the baseline grew %.1fx",
		widths[len(widths)-1]/widths[0], oursRatio, baseRatio))
	return t, nil
}

// E4OptimizeQuality measures the end-to-end optimizer (Theorem 1.1 via
// Lemma 2.2) on instances with closed-form or simplex-computed optima:
// certified bracket vs true OPT, measured relative gap, decision-call
// count (the O(log n) of Lemma 2.2).
func E4OptimizeQuality(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "optimizer quality on known-OPT instances",
		Claim:   "Thm 1.1: (1+eps)-approximation via O(log n) decision calls; bounds are certificates",
		Columns: []string{"family", "OPT", "lower", "upper", "relGap", "inBracket", "calls"},
	}
	eps := 0.1
	sizes := struct{ n, m int }{10, 12}
	if cfg.Quick {
		sizes = struct{ n, m int }{5, 7}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed+5, 3))

	// Family 1: orthogonal rank-1 (closed-form OPT).
	orth, err := gen.OrthogonalRankOne(sizes.n, sizes.m, rng)
	if err != nil {
		return nil, err
	}
	if err := addOptimizeRow(t, orth.Name, orth.A, orth.OPT, eps, cfg); err != nil {
		return nil, err
	}

	// Family 2: identical copies (OPT = 1/λmax).
	ident := gen.Identical(sizes.n, sizes.m, rng, mustLambdaMax)
	if err := addOptimizeRow(t, ident.Name, ident.A, ident.OPT, eps, cfg); err != nil {
		return nil, err
	}

	// Family 3: diagonal (positive LP; simplex gives exact OPT).
	diag, p := gen.DiagonalLP(sizes.n, sizes.m, 0.6, rng)
	pk, err := poslp.NewPacking(p)
	if err != nil {
		return nil, err
	}
	opt, _, err := poslp.ExactPackingOPT(pk)
	if err != nil {
		return nil, err
	}
	if err := addOptimizeRow(t, diag.Name, diag.A, opt, eps, cfg); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "every bracket contains the true optimum; witnesses re-verify under independent eigendecomposition")
	return t, nil
}

func addOptimizeRow(t *Table, name string, as []*matrix.Dense, opt, eps float64, cfg Config) error {
	set, err := core.NewDenseSet(as)
	if err != nil {
		return err
	}
	sol, err := core.MaximizePacking(set, eps, core.Options{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	inBracket := sol.Lower <= opt*(1+1e-9) && sol.Upper >= opt*(1-1e-9)
	t.AddRow(name, opt, sol.Lower, sol.Upper, sol.Gap(), fmt.Sprintf("%v", inBracket), sol.DecisionCalls)
	return nil
}

func mustLambdaMax(a *matrix.Dense) float64 {
	v, err := eigen.LambdaMax(a)
	if err != nil {
		panic(err)
	}
	return v
}

// widthdepFeasible runs one width-dependent feasibility test and
// returns its iteration count.
func widthdepFeasible(inst *gen.Dense, v float64) (int, error) {
	fr, err := widthdep.Feasible(inst.A, v, 0.2, 0)
	if err != nil {
		return 0, err
	}
	if !fr.Feasible && !fr.CertifiedInfeasible {
		// Borderline: count the run anyway; the iteration count is the
		// quantity of interest.
		return fr.Iterations, nil
	}
	return fr.Iterations, nil
}

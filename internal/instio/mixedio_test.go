package instio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/mixed"
)

func mixedDenseDoc() *Instance {
	return &Instance{
		M: 2,
		Mixed: &MixedDoc{
			Dense: [][][]float64{
				{{0.5, 0}, {0, 0}},
				{{0, 0}, {0, 0.5}},
			},
			Rows:  1,
			Cover: [][3]float64{{0, 0, 0.5}, {0, 1, 0.5}},
		},
	}
}

func TestBuildMixedRepresentations(t *testing.T) {
	cases := map[string]*Instance{
		"dense": mixedDenseDoc(),
		"factored": {
			M: 3,
			Mixed: &MixedDoc{
				Factored: []Factor{
					{Cols: 1, Entries: [][3]float64{{0, 0, 1}}},
					{Cols: 2, Entries: [][3]float64{{1, 0, 0.5}, {2, 1, 0.5}}},
				},
				Rows:  2,
				Cover: [][3]float64{{0, 0, 1}, {0, 1, 0.25}, {1, 1, 2}},
			},
		},
		"sparse": {
			M: 3,
			Mixed: &MixedDoc{
				Sparse: []SparseMatrix{
					{Entries: [][3]float64{{0, 0, 2}, {0, 1, -1}, {1, 0, -1}, {1, 1, 2}}},
					{Entries: [][3]float64{{2, 2, 1}}},
				},
				Rows:  1,
				Cover: [][3]float64{{0, 0, 1}, {0, 1, 1}},
			},
		},
	}
	for name, inst := range cases {
		t.Run(name, func(t *testing.T) {
			p, err := BuildMixed(inst)
			if err != nil {
				t.Fatal(err)
			}
			if p.Pack.Dim() != inst.M || p.Cover.R != inst.Mixed.Rows {
				t.Fatalf("shape drift: dim %d rows %d", p.Pack.Dim(), p.Cover.R)
			}
			// Round-trip: problem -> document -> encode -> decode ->
			// problem preserves traces and cover bits exactly.
			doc, err := FromMixedProblem(p)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Encode(&buf, doc); err != nil {
				t.Fatal(err)
			}
			doc2, err := DecodeDocument(&buf)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := BuildMixed(doc2)
			if err != nil {
				t.Fatal(err)
			}
			if p2.Pack.N() != p.Pack.N() || p2.Pack.Dim() != p.Pack.Dim() {
				t.Fatal("round-trip pack shape drift")
			}
			for i := 0; i < p.Pack.N(); i++ {
				if math.Float64bits(p.Pack.Trace(i)) != math.Float64bits(p2.Pack.Trace(i)) {
					t.Fatalf("round-trip trace drift at %d", i)
				}
			}
			if len(p.Cover.Data) != len(p2.Cover.Data) {
				t.Fatal("round-trip cover shape drift")
			}
			for k := range p.Cover.Data {
				if math.Float64bits(p.Cover.Data[k]) != math.Float64bits(p2.Cover.Data[k]) {
					t.Fatalf("round-trip cover drift at %d", k)
				}
			}
		})
	}
}

// TestBuildMixedCoverCanonical pins the order-independence contract:
// any two listings of the same covering multiset (including duplicate
// entries) assemble bitwise-identical matrices.
func TestBuildMixedCoverCanonical(t *testing.T) {
	base := mixedDenseDoc()
	base.Mixed.Cover = [][3]float64{{0, 0, 0.3}, {0, 0, 0.2}, {0, 1, 0.5}}
	shuffled := mixedDenseDoc()
	shuffled.Mixed.Cover = [][3]float64{{0, 1, 0.5}, {0, 0, 0.2}, {0, 0, 0.3}}
	a, err := BuildMixed(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMixed(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Cover.Data {
		if math.Float64bits(a.Cover.Data[k]) != math.Float64bits(b.Cover.Data[k]) {
			t.Fatalf("cover canonicalization order-dependent at %d: %v vs %v", k, a.Cover.Data[k], b.Cover.Data[k])
		}
	}
}

func TestBuildMixedValidation(t *testing.T) {
	mutate := func(f func(*Instance)) *Instance {
		inst := mixedDenseDoc()
		f(inst)
		return inst
	}
	cases := map[string]struct {
		inst *Instance
		want string
	}{
		"negative cover":   {mutate(func(i *Instance) { i.Mixed.Cover[0][2] = -1 }), "invalid value"},
		"nan cover":        {mutate(func(i *Instance) { i.Mixed.Cover[0][2] = math.NaN() }), "invalid value"},
		"inf cover":        {mutate(func(i *Instance) { i.Mixed.Cover[0][2] = math.Inf(1) }), "invalid value"},
		"all-zero row":     {mutate(func(i *Instance) { i.Mixed.Rows = 2 }), "all zero"},
		"zero rows":        {mutate(func(i *Instance) { i.Mixed.Rows = 0 }), "rows must be positive"},
		"row out of range": {mutate(func(i *Instance) { i.Mixed.Cover[0][0] = 5 }), "out of range"},
		"col out of range": {mutate(func(i *Instance) { i.Mixed.Cover[0][1] = 7 }), "out of range"},
		"fractional row":   {mutate(func(i *Instance) { i.Mixed.Cover[0][0] = 0.5 }), "not a valid integer"},
		"fractional col":   {mutate(func(i *Instance) { i.Mixed.Cover[1][1] = 0.9 }), "not a valid integer"},
		"no pack":          {mutate(func(i *Instance) { i.Mixed.Dense = nil }), "no constraints"},
		"two pack kinds": {mutate(func(i *Instance) {
			i.Mixed.Sparse = []SparseMatrix{{Entries: [][3]float64{{0, 0, 1}}}}
		}), "exactly one"},
		"top-level pack too": {mutate(func(i *Instance) {
			i.Dense = [][][]float64{{{1, 0}, {0, 1}}}
		}), "top level"},
		"not mixed": {&Instance{M: 2, Dense: [][][]float64{{{1, 0}, {0, 1}}}}, "no mixed section"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := BuildMixed(tc.inst)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// And the plain Build must hand mixed documents to BuildMixed.
	if _, err := Build(mixedDenseDoc()); err == nil || !strings.Contains(err.Error(), "BuildMixed") {
		t.Fatalf("Build on mixed document: %v", err)
	}
}

// TestBuildMixedSolves runs a built document end to end through the
// solver — the document layer and solver agree on conventions.
func TestBuildMixedSolves(t *testing.T) {
	p, err := BuildMixed(mixedDenseDoc())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mixed.Solve(p, 0.1, mixed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mixed.StatusFeasible {
		t.Fatalf("status %v (coverage %v λmax %v)", res.Status, res.MinCoverage, res.LambdaMax)
	}
}

func TestFromMixedProblemRejectsUnknownRep(t *testing.T) {
	p := &mixed.Problem{Pack: nil, Cover: matrix.New(1, 1)}
	if _, err := FromMixedProblem(p); err == nil {
		t.Fatal("nil pack accepted")
	}
}

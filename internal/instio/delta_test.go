package instio

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// deltaBase is a 3-constraint symmetric sparse document the delta
// tests revise.
func deltaBase() *Instance {
	return &Instance{M: 3, Sparse: []SparseMatrix{
		{Entries: [][3]float64{{0, 0, 1}, {1, 1, 2}}},
		{Entries: [][3]float64{{0, 1, 0.5}, {1, 0, 0.5}, {2, 2, 1}}},
		{Entries: [][3]float64{{2, 2, 4}}},
	}}
}

func buildSparse(t *testing.T, inst *Instance) *core.SparseSet {
	t.Helper()
	set, err := Build(inst)
	if err != nil {
		t.Fatal(err)
	}
	return set.(*core.SparseSet)
}

func TestBuildRejectsUnmaterializedDelta(t *testing.T) {
	_, err := Build(&Instance{M: 3, Delta: &Delta{Base: "abc"}})
	if err == nil || !strings.Contains(err.Error(), "ApplyDelta") {
		t.Fatalf("Build accepted a raw delta document: %v", err)
	}
}

func TestApplyDeltaIdentityIsCanonicalBase(t *testing.T) {
	// The base lists triplets in a non-canonical order; the identity
	// delta must materialize to the canonical form that builds the
	// identical constraint set.
	base := &Instance{M: 2, Sparse: []SparseMatrix{
		{Entries: [][3]float64{{1, 1, 2}, {0, 0, 1}, {1, 0, 0.25}, {0, 1, 0.25}}},
	}}
	mat, err := ApplyDelta(base, &Instance{Delta: &Delta{Base: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := buildSparse(t, base), buildSparse(t, mat)
	if len(a.A) != len(b.A) {
		t.Fatal("identity delta changed the constraint count")
	}
	for i := range a.A {
		if a.A[i].NNZ() != b.A[i].NNZ() {
			t.Fatalf("constraint %d nnz changed", i)
		}
		for k := range a.A[i].Val {
			if a.A[i].Val[k] != b.A[i].Val[k] || a.A[i].Row[k] != b.A[i].Row[k] {
				t.Fatalf("constraint %d entry %d changed", i, k)
			}
		}
	}
	// Materialized form is canonical: re-materializing is a fixed point.
	again, err := ApplyDelta(mat, &Instance{Delta: &Delta{Base: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Sparse[0].Entries) != len(mat.Sparse[0].Entries) {
		t.Fatal("materialization is not idempotent")
	}
}

func TestApplyDeltaEditScaleRemoveAdd(t *testing.T) {
	base := deltaBase()
	doc := &Instance{Delta: &Delta{
		Base: "x",
		// Cancel constraint 1's off-diagonal pair exactly, and bump its
		// diagonal.
		Edit: []DeltaEdit{{I: 1, Entries: [][3]float64{
			{0, 1, -0.5}, {1, 0, -0.5}, {2, 2, 1},
		}}},
		Scale:  []DeltaScale{{I: 0, By: 2}},
		Remove: []int{2, 2}, // duplicate removes dedupe
		Add:    []SparseMatrix{{Entries: [][3]float64{{0, 0, 3}}}},
	}}
	mat, err := ApplyDelta(base, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.Sparse) != 3 { // 0 (scaled), 1 (edited), added
		t.Fatalf("got %d constraints, want 3", len(mat.Sparse))
	}
	set := buildSparse(t, mat)
	// Constraint 0 scaled by 2: trace 2·(1+2) = 6.
	if got := set.Trace(0); got != 6 {
		t.Errorf("scaled trace = %v, want 6", got)
	}
	// Constraint 1: off-diagonals cancelled to exact zero (must be
	// dropped, not stored), diagonal 1+1 = 2.
	if nnz := set.A[1].NNZ(); nnz != 1 {
		t.Errorf("cancelled entries survived: nnz = %d, want 1 (vals %v)", nnz, set.A[1].Val)
	}
	if got := set.Trace(1); got != 2 {
		t.Errorf("edited trace = %v, want 2", got)
	}
	// Added constraint appended last.
	if got := set.Trace(2); got != 3 {
		t.Errorf("added trace = %v, want 3", got)
	}
}

func TestApplyDeltaValidation(t *testing.T) {
	base := deltaBase()
	cases := []struct {
		name string
		base *Instance
		doc  *Instance
		want string
	}{
		{"nil-delta", base, &Instance{}, "ApplyDelta needs"},
		{"delta-base", &Instance{M: 3, Delta: &Delta{}}, &Instance{Delta: &Delta{}}, "materialized instance"},
		{"dense-base", &Instance{M: 2, Dense: [][][]float64{{{1, 0}, {0, 1}}}}, &Instance{Delta: &Delta{}}, "sparse base"},
		{"m-mismatch", base, &Instance{M: 4, Delta: &Delta{}}, "does not match base"},
		{"carries-constraints", base, &Instance{Delta: &Delta{}, Sparse: []SparseMatrix{{}}}, "cannot also carry"},
		{"remove-oob", base, &Instance{Delta: &Delta{Remove: []int{3}}}, "out of range"},
		{"edit-oob", base, &Instance{Delta: &Delta{Edit: []DeltaEdit{{I: -1}}}}, "out of range"},
		{"edit-removed", base, &Instance{Delta: &Delta{Remove: []int{1}, Edit: []DeltaEdit{{I: 1}}}}, "removed constraint"},
		{"scale-removed", base, &Instance{Delta: &Delta{Remove: []int{0}, Scale: []DeltaScale{{I: 0, By: 2}}}}, "removed constraint"},
		{"scale-zero", base, &Instance{Delta: &Delta{Scale: []DeltaScale{{I: 0, By: 0}}}}, "finite and nonzero"},
		{"scale-nan", base, &Instance{Delta: &Delta{Scale: []DeltaScale{{I: 0, By: nan()}}}}, "finite and nonzero"},
		{"edit-nonfinite", base, &Instance{Delta: &Delta{Edit: []DeltaEdit{{I: 0, Entries: [][3]float64{{0, 0, inf()}}}}}}, "non-finite"},
		{"edit-frac-index", base, &Instance{Delta: &Delta{Edit: []DeltaEdit{{I: 0, Entries: [][3]float64{{0.5, 0, 1}}}}}}, "not a valid integer"},
		{"add-oob-entry", base, &Instance{Delta: &Delta{Add: []SparseMatrix{{Entries: [][3]float64{{9, 9, 1}}}}}}, "out of range"},
		{"remove-all", base, &Instance{Delta: &Delta{Remove: []int{0, 1, 2}}}, "removes every"},
	}
	for _, tc := range cases {
		_, err := ApplyDelta(tc.base, tc.doc)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func nan() float64 { var z float64; return z / z }

func inf() float64 { var z float64; return 1 / z }

// Package instio reads and writes packing SDP instances as JSON, the
// interchange format of cmd/psdpsolve and cmd/psdpgen.
//
// Format (exactly one of "dense", "factored", or "sparse" must be
// present):
//
//	{
//	  "m": 3,
//	  "dense":    [ [[1,0,0],[0,1,0],[0,0,1]], ... ],
//	  "factored": [ {"cols": 2, "entries": [[row, col, value], ...]}, ... ],
//	  "sparse":   [ {"entries": [[row, col, value], ...]}, ... ]
//	}
//
// A sparse constraint lists the triplets of one symmetric m-by-m
// matrix Aᵢ directly (both mirror entries, or either half — NewCSC
// sums duplicates and Build rejects any document whose assembled
// matrix is not symmetric). Triplet order never matters: NewCSC
// canonicalizes, so two documents listing the same entries in any
// order build identical sets (and identical serve digests).
//
// Two further document kinds ride on the same envelope: "delta" (a
// revision of a sparse base, see Delta/ApplyDelta) and "mixed" (a
// packing side in any representation plus covering triplets, see
// MixedDoc/BuildMixed).
package instio

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Instance is the JSON document shape.
type Instance struct {
	M        int            `json:"m"`
	Dense    [][][]float64  `json:"dense,omitempty"`
	Factored []Factor       `json:"factored,omitempty"`
	Sparse   []SparseMatrix `json:"sparse,omitempty"`
	Delta    *Delta         `json:"delta,omitempty"`
	Mixed    *MixedDoc      `json:"mixed,omitempty"`
}

// Delta is the incremental document kind: a revision of a sparse base
// instance, identified by the base's content digest, expressed as
// constraint-level edits. It cannot be built directly — ApplyDelta
// materializes base+delta into an ordinary sparse Instance, with every
// resulting constraint canonicalized exactly like the sparse kind
// (NewCSC: sorted, duplicates summed in value order, exact zeros
// dropped), so an edit that cancels an entry leaves no trace in the
// materialized document or its digest.
//
// Edits apply in a fixed order: Edit (triplets summed into existing
// constraints), then Scale, then Remove, then Add appended. Edit and
// Scale indices refer to base constraint positions and may not name a
// removed constraint twice or at all, respectively; Remove indices are
// deduplicated. The delta's M, when nonzero, must match the base.
type Delta struct {
	// Base is the hex content digest of the revision this delta applies
	// to (as returned by the serving layer for the base solve).
	Base string `json:"base"`
	// Edit sums extra triplets into existing constraints — additions,
	// in-place value changes (list the difference), or removals of
	// single entries (list the negation; the exact-zero sum is dropped
	// by canonicalization).
	Edit []DeltaEdit `json:"edit,omitempty"`
	// Scale multiplies every entry of existing constraints.
	Scale []DeltaScale `json:"scale,omitempty"`
	// Remove drops base constraints by index.
	Remove []int `json:"remove,omitempty"`
	// Add appends new sparse constraints after the edits.
	Add []SparseMatrix `json:"add,omitempty"`
}

// DeltaEdit sums Entries into base constraint I.
type DeltaEdit struct {
	I       int          `json:"i"`
	Entries [][3]float64 `json:"entries"`
}

// DeltaScale multiplies every entry of base constraint I by By.
type DeltaScale struct {
	I  int     `json:"i"`
	By float64 `json:"by"`
}

// Factor is one factored constraint Q (m rows, Cols columns).
type Factor struct {
	Cols    int          `json:"cols"`
	Entries [][3]float64 `json:"entries"`
}

// SparseMatrix is one general sparse symmetric constraint Aᵢ (m-by-m,
// dimensions implied by the document's m field).
type SparseMatrix struct {
	Entries [][3]float64 `json:"entries"`
}

// Load reads an instance file and builds the constraint set.
func Load(path string) (core.ConstraintSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	inst, err := decodeDocument(f)
	if err != nil {
		return nil, fmt.Errorf("instio: parsing %s: %w", path, err)
	}
	return Build(inst)
}

// Decode reads one instance document from r and builds the constraint
// set. It is the streaming form of Load: servers and pipes hand their
// request bodies straight to the parser without touching the
// filesystem.
func Decode(r io.Reader) (core.ConstraintSet, error) {
	inst, err := DecodeDocument(r)
	if err != nil {
		return nil, err
	}
	return Build(inst)
}

// DecodeDocument parses an instance document from r without building
// the constraint set.
func DecodeDocument(r io.Reader) (*Instance, error) {
	inst, err := decodeDocument(r)
	if err != nil {
		return nil, fmt.Errorf("instio: parsing instance: %w", err)
	}
	return inst, nil
}

func decodeDocument(r io.Reader) (*Instance, error) {
	dec := json.NewDecoder(r)
	var inst Instance
	if err := dec.Decode(&inst); err != nil {
		return nil, err
	}
	// One document per stream: trailing bytes mean a truncated or
	// concatenated file, and solving the wrong instance silently is the
	// worst possible outcome for a parser.
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("trailing data after instance document")
	}
	return &inst, nil
}

// Build converts a parsed document into a constraint set. Delta
// documents cannot be built directly — they reference a base revision
// only the holder of the base document can resolve; materialize with
// ApplyDelta first.
func Build(inst *Instance) (core.ConstraintSet, error) {
	if inst.Delta != nil {
		return nil, errors.New("instio: delta documents must be materialized against their base with ApplyDelta before building")
	}
	if inst.Mixed != nil {
		return nil, errors.New("instio: mixed documents build with BuildMixed, not Build")
	}
	if inst.M <= 0 {
		return nil, errors.New("instio: field m must be positive")
	}
	kinds := 0
	for _, present := range []bool{len(inst.Dense) > 0, len(inst.Factored) > 0, len(inst.Sparse) > 0} {
		if present {
			kinds++
		}
	}
	switch {
	case kinds > 1:
		return nil, errors.New("instio: specify exactly one of dense, factored, or sparse")
	case len(inst.Dense) > 0:
		as := make([]*matrix.Dense, len(inst.Dense))
		for i, rows := range inst.Dense {
			if len(rows) != inst.M {
				return nil, fmt.Errorf("instio: dense[%d] has %d rows, want %d", i, len(rows), inst.M)
			}
			// Validate every row length up front: FromRows panics on
			// ragged input, and a parser must reject, not crash (found
			// by FuzzBuild).
			for j, row := range rows {
				if len(row) != inst.M {
					return nil, fmt.Errorf("instio: dense[%d] row %d has %d entries, want %d", i, j, len(row), inst.M)
				}
			}
			as[i] = matrix.FromRows(rows)
		}
		set, err := core.NewDenseSet(as)
		if err != nil {
			return nil, err
		}
		if err := checkFiniteTraces(set); err != nil {
			return nil, err
		}
		return set, nil
	case len(inst.Factored) > 0:
		qs := make([]*sparse.CSC, len(inst.Factored))
		for i, f := range inst.Factored {
			if f.Cols <= 0 {
				return nil, fmt.Errorf("instio: factored[%d].cols must be positive", i)
			}
			trips := make([]sparse.Triplet, len(f.Entries))
			for k, e := range f.Entries {
				// A single NaN/Inf factor entry poisons every ratio the
				// solver computes without tripping any later validation
				// (NewFactoredSet only shapes-checks); a parser must
				// reject it here with a pointed error.
				if !isFinite(e[2]) {
					return nil, fmt.Errorf("instio: factored[%d] entry %d has non-finite value %v", i, k, e[2])
				}
				row, err := tripIndex(e[0])
				if err != nil {
					return nil, fmt.Errorf("instio: factored[%d] entry %d: row %w", i, k, err)
				}
				col, err := tripIndex(e[1])
				if err != nil {
					return nil, fmt.Errorf("instio: factored[%d] entry %d: col %w", i, k, err)
				}
				trips[k] = sparse.Triplet{Row: row, Col: col, Val: e[2]}
			}
			q, err := sparse.NewCSC(inst.M, f.Cols, trips)
			if err != nil {
				return nil, fmt.Errorf("instio: factored[%d]: %w", i, err)
			}
			qs[i] = q
		}
		set, err := core.NewFactoredSet(qs)
		if err != nil {
			return nil, err
		}
		if err := checkFiniteTraces(set); err != nil {
			return nil, err
		}
		return set, nil
	case len(inst.Sparse) > 0:
		cs := make([]*sparse.CSC, len(inst.Sparse))
		for i, sm := range inst.Sparse {
			trips := make([]sparse.Triplet, len(sm.Entries))
			for k, e := range sm.Entries {
				// Same rule as the factored kind: one NaN/Inf entry
				// poisons every ratio downstream, so the parser rejects
				// it with a pointed error.
				if !isFinite(e[2]) {
					return nil, fmt.Errorf("instio: sparse[%d] entry %d has non-finite value %v", i, k, e[2])
				}
				row, err := tripIndex(e[0])
				if err != nil {
					return nil, fmt.Errorf("instio: sparse[%d] entry %d: row %w", i, k, err)
				}
				col, err := tripIndex(e[1])
				if err != nil {
					return nil, fmt.Errorf("instio: sparse[%d] entry %d: col %w", i, k, err)
				}
				trips[k] = sparse.Triplet{Row: row, Col: col, Val: e[2]}
			}
			a, err := sparse.NewCSC(inst.M, inst.M, trips)
			if err != nil {
				return nil, fmt.Errorf("instio: sparse[%d]: %w", i, err)
			}
			cs[i] = a
		}
		// NewSparseSet rejects asymmetric input, so a document listing
		// only one triangle (or mismatched mirror values) fails here.
		set, err := core.NewSparseSet(cs)
		if err != nil {
			return nil, err
		}
		if err := checkFiniteTraces(set); err != nil {
			return nil, err
		}
		return set, nil
	default:
		return nil, errors.New("instio: instance has no constraints")
	}
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// tripIndex converts a JSON-carried index to int, rejecting fractional
// values instead of silently truncating them: [0.9, 0, 1] would
// otherwise collapse onto entry (0, 0) and the solver would certify an
// answer for a matrix the document never described. The 1<<31 cap
// keeps the float→int conversion well-defined; anything that large is
// out of range for every real document and NewCSC would reject the
// converted index anyway.
func tripIndex(v float64) (int, error) {
	if v != math.Trunc(v) || math.Abs(v) > 1<<31 {
		return 0, fmt.Errorf("index %v is not a valid integer", v)
	}
	return int(v), nil
}

// checkFiniteTraces rejects instances whose per-constraint traces
// overflow to Inf even though every individual entry is finite (e.g. a
// factor column of 1e308s whose Gram trace squares past MaxFloat64):
// the solver's initial point 1/(n·Tr[Aᵢ]) and trace caps both divide by
// these, so an infinite trace silently zeroes a coordinate.
func checkFiniteTraces(set core.ConstraintSet) error {
	for i := 0; i < set.N(); i++ {
		if tr := set.Trace(i); !isFinite(tr) {
			return fmt.Errorf("instio: constraint %d has non-finite trace %v", i, tr)
		}
	}
	return nil
}

// FromDenseSet converts a dense set to the document form.
func FromDenseSet(set *core.DenseSet) *Instance {
	inst := &Instance{M: set.Dim()}
	for _, a := range set.A {
		rows := make([][]float64, a.R)
		for i := range rows {
			rows[i] = append([]float64(nil), a.Row(i)...)
		}
		inst.Dense = append(inst.Dense, rows)
	}
	return inst
}

// FromFactoredSet converts a factored set to the document form.
func FromFactoredSet(set *core.FactoredSet) *Instance {
	inst := &Instance{M: set.Dim()}
	for _, q := range set.Q {
		f := Factor{Cols: q.C}
		for j := 0; j < q.C; j++ {
			for k := q.ColPtr[j]; k < q.ColPtr[j+1]; k++ {
				f.Entries = append(f.Entries, [3]float64{float64(q.Row[k]), float64(j), q.Val[k]})
			}
		}
		inst.Factored = append(inst.Factored, f)
	}
	return inst
}

// FromSparseSet converts a sparse set to the document form. Entries
// are emitted in the canonical CSC order (column-major, rows sorted),
// so encoding is deterministic.
func FromSparseSet(set *core.SparseSet) *Instance {
	inst := &Instance{M: set.Dim()}
	for _, a := range set.A {
		sm := SparseMatrix{}
		for j := 0; j < a.C; j++ {
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				sm.Entries = append(sm.Entries, [3]float64{float64(a.Row[k]), float64(j), a.Val[k]})
			}
		}
		inst.Sparse = append(inst.Sparse, sm)
	}
	return inst
}

// Encode writes the document to w as indented JSON with a trailing
// newline (the exact bytes Save puts in a file).
func Encode(w io.Writer, inst *Instance) error {
	data, err := json.MarshalIndent(inst, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// Save writes an instance document to path.
func Save(path string, inst *Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, inst); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

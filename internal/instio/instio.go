// Package instio reads and writes packing SDP instances as JSON, the
// interchange format of cmd/psdpsolve and cmd/psdpgen.
//
// Format (one of "dense" or "factored" must be present):
//
//	{
//	  "m": 3,
//	  "dense":    [ [[1,0,0],[0,1,0],[0,0,1]], ... ],
//	  "factored": [ {"cols": 2, "entries": [[row, col, value], ...]}, ... ]
//	}
package instio

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Instance is the JSON document shape.
type Instance struct {
	M        int           `json:"m"`
	Dense    [][][]float64 `json:"dense,omitempty"`
	Factored []Factor      `json:"factored,omitempty"`
}

// Factor is one factored constraint Q (m rows, Cols columns).
type Factor struct {
	Cols    int          `json:"cols"`
	Entries [][3]float64 `json:"entries"`
}

// Load reads an instance file and builds the constraint set.
func Load(path string) (core.ConstraintSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var inst Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		return nil, fmt.Errorf("instio: parsing %s: %w", path, err)
	}
	return Build(&inst)
}

// Build converts a parsed document into a constraint set.
func Build(inst *Instance) (core.ConstraintSet, error) {
	if inst.M <= 0 {
		return nil, errors.New("instio: field m must be positive")
	}
	switch {
	case len(inst.Dense) > 0 && len(inst.Factored) > 0:
		return nil, errors.New("instio: specify dense or factored, not both")
	case len(inst.Dense) > 0:
		as := make([]*matrix.Dense, len(inst.Dense))
		for i, rows := range inst.Dense {
			if len(rows) != inst.M {
				return nil, fmt.Errorf("instio: dense[%d] has %d rows, want %d", i, len(rows), inst.M)
			}
			// Validate every row length up front: FromRows panics on
			// ragged input, and a parser must reject, not crash (found
			// by FuzzBuild).
			for j, row := range rows {
				if len(row) != inst.M {
					return nil, fmt.Errorf("instio: dense[%d] row %d has %d entries, want %d", i, j, len(row), inst.M)
				}
			}
			as[i] = matrix.FromRows(rows)
		}
		return core.NewDenseSet(as)
	case len(inst.Factored) > 0:
		qs := make([]*sparse.CSC, len(inst.Factored))
		for i, f := range inst.Factored {
			if f.Cols <= 0 {
				return nil, fmt.Errorf("instio: factored[%d].cols must be positive", i)
			}
			trips := make([]sparse.Triplet, len(f.Entries))
			for k, e := range f.Entries {
				trips[k] = sparse.Triplet{Row: int(e[0]), Col: int(e[1]), Val: e[2]}
			}
			q, err := sparse.NewCSC(inst.M, f.Cols, trips)
			if err != nil {
				return nil, fmt.Errorf("instio: factored[%d]: %w", i, err)
			}
			qs[i] = q
		}
		return core.NewFactoredSet(qs)
	default:
		return nil, errors.New("instio: instance has no constraints")
	}
}

// FromDenseSet converts a dense set to the document form.
func FromDenseSet(set *core.DenseSet) *Instance {
	inst := &Instance{M: set.Dim()}
	for _, a := range set.A {
		rows := make([][]float64, a.R)
		for i := range rows {
			rows[i] = append([]float64(nil), a.Row(i)...)
		}
		inst.Dense = append(inst.Dense, rows)
	}
	return inst
}

// FromFactoredSet converts a factored set to the document form.
func FromFactoredSet(set *core.FactoredSet) *Instance {
	inst := &Instance{M: set.Dim()}
	for _, q := range set.Q {
		f := Factor{Cols: q.C}
		for j := 0; j < q.C; j++ {
			for k := q.ColPtr[j]; k < q.ColPtr[j+1]; k++ {
				f.Entries = append(f.Entries, [3]float64{float64(q.Row[k]), float64(j), q.Val[k]})
			}
		}
		inst.Factored = append(inst.Factored, f)
	}
	return inst
}

// Save writes an instance document to path.
func Save(path string, inst *Instance) error {
	data, err := json.MarshalIndent(inst, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package instio

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
)

// FuzzBuild drives the JSON instance parser with arbitrary documents.
// Two properties are enforced: Build never panics (it must reject every
// malformed document with an error), and every ACCEPTED document
// round-trips — serializing the built set and rebuilding it yields a
// set with identical shape and bitwise-identical traces. Seed corpus
// lives in testdata/fuzz/FuzzBuild; `go test` replays it as part of
// tier-1, `go test -fuzz=FuzzBuild ./internal/instio` explores.
func FuzzBuild(f *testing.F) {
	seeds := []string{
		`{"m":2,"dense":[[[1,0],[0,1]]]}`,
		`{"m":2,"dense":[[[1,0],[0,1]],[[0.5,0.25],[0.25,2]]]}`,
		`{"m":3,"factored":[{"cols":2,"entries":[[0,0,1],[1,1,0.5],[2,0,-1]]}]}`,
		`{"m":3,"factored":[{"cols":1,"entries":[]}]}`,
		`{"m":0}`,
		`{"m":2}`,
		`{"m":2,"dense":[[[1,0],[0,1]]],"factored":[{"cols":1,"entries":[[0,0,1]]}]}`,
		`{"m":2,"dense":[[[1,0]]]}`,
		`{"m":2,"factored":[{"cols":0,"entries":[]}]}`,
		`{"m":2,"factored":[{"cols":1,"entries":[[5,0,1]]}]}`,
		`{"m":-3,"dense":[[[1]]]}`,
		`not json at all`,
		`{"m":1,"dense":[[[1e308]]]}`,
		// Finite entries whose trace overflows to +Inf: must be rejected
		// at Build time, not passed on to poison the solver's initial
		// point 1/(n·Tr[Aᵢ]).
		`{"m":2,"dense":[[[1e308,0],[0,1e308]]]}`,
		`{"m":1,"factored":[{"cols":1,"entries":[[0,0,1e308],[0,0,1e308]]}]}`,
		`{"m":2,"factored":[{"cols":2,"entries":[[0,0,1e200],[1,1,1e200]]}]}`,
		// Sparse kind: a valid symmetric constraint…
		`{"m":3,"sparse":[{"entries":[[0,0,2],[0,1,-1],[1,0,-1],[1,1,2]]}]}`,
		// …duplicates summing into a symmetric matrix (must be accepted:
		// NewCSC canonicalizes before the symmetry check)…
		`{"m":2,"sparse":[{"entries":[[0,1,0.5],[0,1,0.5],[1,0,1],[0,0,1],[1,1,1]]}]}`,
		// …and the rejection cases: one-sided (asymmetric) input,
		// mismatched mirrors, out-of-range indices, non-finite values,
		// negative trace, mixing kinds, and trace overflow.
		`{"m":2,"sparse":[{"entries":[[0,1,1]]}]}`,
		`{"m":2,"sparse":[{"entries":[[0,1,1],[1,0,2]]}]}`,
		`{"m":2,"sparse":[{"entries":[[5,0,1]]}]}`,
		`{"m":2,"sparse":[{"entries":[[-1,0,1]]}]}`,
		`{"m":2,"sparse":[{"entries":[[0,0,1e999]]}]}`,
		`{"m":1,"sparse":[{"entries":[[0,0,-2]]}]}`,
		`{"m":2,"sparse":[{"entries":[]}]}`,
		`{"m":2,"dense":[[[1,0],[0,1]]],"sparse":[{"entries":[[0,0,1]]}]}`,
		`{"m":2,"factored":[{"cols":1,"entries":[[0,0,1]]}],"sparse":[{"entries":[[0,0,1]]}]}`,
		`{"m":2,"sparse":[{"entries":[[0,0,1e308],[1,1,1e308]]}]}`,
		// Fractional indices must be rejected, not truncated onto a
		// different entry (0.9 → 0 would silently change the matrix).
		`{"m":2,"sparse":[{"entries":[[0.9,0,1],[0,0.9,1]]}]}`,
		`{"m":2,"factored":[{"cols":1,"entries":[[0.5,0,1]]}]}`,
		`{"m":2,"sparse":[{"entries":[[1e40,0,1]]}]}`,
		// Mixed kind: a valid packing+covering document per
		// representation…
		`{"m":2,"mixed":{"dense":[[[0.5,0],[0,0]],[[0,0],[0,0.5]]],"rows":1,"cover":[[0,0,0.5],[0,1,0.5]]}}`,
		`{"m":3,"mixed":{"factored":[{"cols":1,"entries":[[0,0,1]]}],"rows":1,"cover":[[0,0,1]]}}`,
		`{"m":2,"mixed":{"sparse":[{"entries":[[0,0,1],[1,1,1]]}],"rows":1,"cover":[[0,0,2]]}}`,
		// …and the rejection cases: an asymmetric (one-sided) sparse
		// packing side, a negative covering value, an all-zero covering
		// row, fractional/out-of-range covering indices, mixing kinds.
		`{"m":2,"mixed":{"sparse":[{"entries":[[0,1,1]]}],"rows":1,"cover":[[0,0,1]]}}`,
		`{"m":2,"mixed":{"dense":[[[1,0],[0,1]]],"rows":1,"cover":[[0,0,-1]]}}`,
		`{"m":2,"mixed":{"dense":[[[1,0],[0,1]]],"rows":2,"cover":[[0,0,1]]}}`,
		`{"m":2,"mixed":{"dense":[[[1,0],[0,1]]],"rows":1,"cover":[[0.5,0,1]]}}`,
		`{"m":2,"mixed":{"dense":[[[1,0],[0,1]]],"rows":1,"cover":[[0,9,1]]}}`,
		`{"m":2,"mixed":{"dense":[[[1,0],[0,1]]],"rows":1,"cover":[[0,0,1e999]]}}`,
		`{"m":2,"dense":[[[1,0],[0,1]]],"mixed":{"dense":[[[1,0],[0,1]]],"rows":1,"cover":[[0,0,1]]}}`,
		`{"m":2,"mixed":{"rows":1,"cover":[[0,0,1]]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap document size: giant m values would make Build allocate
		// m-proportional structures for no additional coverage.
		if len(data) > 1<<16 {
			return
		}
		var inst Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			return
		}
		if inst.M > 1<<10 || len(inst.Dense) > 64 || len(inst.Factored) > 64 || len(inst.Sparse) > 64 {
			return
		}
		for _, fac := range inst.Factored {
			if fac.Cols > 1<<10 {
				return
			}
		}
		for _, sm := range inst.Sparse {
			if len(sm.Entries) > 1<<12 {
				return
			}
		}
		if md := inst.Mixed; md != nil {
			if md.Rows > 1<<10 || len(md.Cover) > 1<<12 ||
				len(md.Dense) > 64 || len(md.Factored) > 64 || len(md.Sparse) > 64 {
				return
			}
			for _, fac := range md.Factored {
				if fac.Cols > 1<<10 {
					return
				}
			}
			for _, sm := range md.Sparse {
				if len(sm.Entries) > 1<<12 {
					return
				}
			}
			fuzzMixed(t, &inst)
			return
		}
		set, err := Build(&inst)
		if err != nil {
			return // rejected cleanly: fine
		}
		if set.N() <= 0 {
			t.Fatalf("accepted set has %d constraints", set.N())
		}
		if set.Dim() != inst.M {
			t.Fatalf("accepted set has dim %d, document says %d", set.Dim(), inst.M)
		}
		for i := 0; i < set.N(); i++ {
			if tr := set.Trace(i); math.IsNaN(tr) || math.IsInf(tr, 0) || tr < 0 {
				t.Fatalf("constraint %d has invalid trace %v", i, tr)
			}
		}
		// Round-trip: document -> set -> document -> set must preserve
		// shape and traces exactly.
		var doc *Instance
		switch s := set.(type) {
		case *core.DenseSet:
			doc = FromDenseSet(s)
		case *core.FactoredSet:
			doc = FromFactoredSet(s)
		case *core.SparseSet:
			doc = FromSparseSet(s)
		default:
			t.Fatalf("unknown set type %T", set)
		}
		set2, err := Build(doc)
		if err != nil {
			t.Fatalf("round-trip rebuild failed: %v", err)
		}
		if set2.N() != set.N() || set2.Dim() != set.Dim() {
			t.Fatalf("round-trip shape drift: %dx%d vs %dx%d", set2.N(), set2.Dim(), set.N(), set.Dim())
		}
		for i := 0; i < set.N(); i++ {
			if a, b := set.Trace(i), set2.Trace(i); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("round-trip trace drift at %d: %v vs %v", i, a, b)
			}
		}
	})
}

// fuzzMixed enforces the same two properties for the mixed kind:
// BuildMixed never panics, and every accepted document round-trips
// through FromMixedProblem with bitwise-identical packing traces and
// covering entries.
func fuzzMixed(t *testing.T, inst *Instance) {
	p, err := BuildMixed(inst)
	if err != nil {
		return // rejected cleanly: fine
	}
	if p.Pack.N() <= 0 || p.Pack.Dim() != inst.M || p.Cover.R != inst.Mixed.Rows {
		t.Fatalf("accepted mixed problem has wrong shape: n=%d dim=%d rows=%d", p.Pack.N(), p.Pack.Dim(), p.Cover.R)
	}
	for _, v := range p.Cover.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("accepted cover has invalid entry %v", v)
		}
	}
	doc, err := FromMixedProblem(p)
	if err != nil {
		t.Fatalf("accepted problem does not encode: %v", err)
	}
	p2, err := BuildMixed(doc)
	if err != nil {
		t.Fatalf("round-trip rebuild failed: %v", err)
	}
	if p2.Pack.N() != p.Pack.N() || p2.Pack.Dim() != p.Pack.Dim() {
		t.Fatal("round-trip pack shape drift")
	}
	for i := 0; i < p.Pack.N(); i++ {
		if a, b := p.Pack.Trace(i), p2.Pack.Trace(i); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("round-trip trace drift at %d: %v vs %v", i, a, b)
		}
	}
	if len(p2.Cover.Data) != len(p.Cover.Data) {
		t.Fatal("round-trip cover shape drift")
	}
	for k := range p.Cover.Data {
		if a, b := p.Cover.Data[k], p2.Cover.Data[k]; math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("round-trip cover drift at %d: %v vs %v", k, a, b)
		}
	}
}

package instio

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/mixed"
)

// MixedDoc is the mixed packing/covering document kind: a packing side
// in exactly one representation (same shapes as the top-level kinds)
// plus a nonnegative covering matrix C (Rows-by-n) as [row, col, value]
// triplets. Covering triplets are canonicalized at Build — sorted by
// (row, col, value) with duplicates summed in that fixed order — so two
// documents listing the same covering multiset in any order build
// bitwise-identical problems (and identical serve digests). Build
// rejects negative or non-finite covering values, out-of-range indices,
// and all-zero covering rows (unsatisfiable).
type MixedDoc struct {
	Dense    [][][]float64  `json:"dense,omitempty"`
	Factored []Factor       `json:"factored,omitempty"`
	Sparse   []SparseMatrix `json:"sparse,omitempty"`
	// Rows is the number of covering constraints d.
	Rows int `json:"rows"`
	// Cover lists the positive entries of C as [row, col, value].
	Cover [][3]float64 `json:"cover"`
}

// BuildMixed converts a parsed mixed document into a problem. The
// packing side reuses the top-level Build (so every representation and
// every validation rule of the plain kinds applies verbatim); the
// covering side is canonicalized and validated here.
func BuildMixed(inst *Instance) (*mixed.Problem, error) {
	md := inst.Mixed
	if md == nil {
		return nil, errors.New("instio: document has no mixed section")
	}
	if inst.Delta != nil {
		return nil, errors.New("instio: delta documents must be materialized against their base with ApplyDelta before building")
	}
	if len(inst.Dense) > 0 || len(inst.Factored) > 0 || len(inst.Sparse) > 0 {
		return nil, errors.New("instio: mixed documents carry their packing side inside the mixed section, not at top level")
	}
	pack, err := Build(&Instance{M: inst.M, Dense: md.Dense, Factored: md.Factored, Sparse: md.Sparse})
	if err != nil {
		return nil, err
	}
	cover, err := buildCover(md, pack.N())
	if err != nil {
		return nil, err
	}
	return mixed.NewProblem(pack, cover)
}

// buildCover assembles the covering matrix from triplets in canonical
// order. All values are nonnegative, so the fixed (row, col, value)
// summation order makes the assembled matrix independent of the
// document's listing order, bit for bit.
func buildCover(md *MixedDoc, n int) (*matrix.Dense, error) {
	d := md.Rows
	if d <= 0 {
		return nil, errors.New("instio: mixed.rows must be positive")
	}
	type trip struct {
		r, c int
		v    float64
	}
	trips := make([]trip, 0, len(md.Cover))
	for k, e := range md.Cover {
		if !isFinite(e[2]) || e[2] < 0 {
			return nil, fmt.Errorf("instio: mixed cover entry %d has invalid value %v (want finite, ≥ 0)", k, e[2])
		}
		r, err := tripIndex(e[0])
		if err != nil {
			return nil, fmt.Errorf("instio: mixed cover entry %d: row %w", k, err)
		}
		c, err := tripIndex(e[1])
		if err != nil {
			return nil, fmt.Errorf("instio: mixed cover entry %d: col %w", k, err)
		}
		if r < 0 || r >= d {
			return nil, fmt.Errorf("instio: mixed cover entry %d: row %d out of range [0, %d)", k, r, d)
		}
		if c < 0 || c >= n {
			return nil, fmt.Errorf("instio: mixed cover entry %d: col %d out of range [0, %d)", k, c, n)
		}
		trips = append(trips, trip{r: r, c: c, v: e[2]})
	}
	sort.Slice(trips, func(i, j int) bool {
		if trips[i].r != trips[j].r {
			return trips[i].r < trips[j].r
		}
		if trips[i].c != trips[j].c {
			return trips[i].c < trips[j].c
		}
		return trips[i].v < trips[j].v
	})
	cov := matrix.New(d, n)
	for _, t := range trips {
		cov.Data[t.r*n+t.c] += t.v
	}
	for k := range cov.Data {
		if !isFinite(cov.Data[k]) {
			return nil, errors.New("instio: mixed cover entry sums overflow to non-finite")
		}
	}
	return cov, nil
}

// FromMixedProblem converts a mixed problem to the document form.
// Covering entries are emitted in row-major order, packing entries in
// each representation's canonical order, so encoding is deterministic.
func FromMixedProblem(p *mixed.Problem) (*Instance, error) {
	var base *Instance
	switch s := p.Pack.(type) {
	case *core.DenseSet:
		base = FromDenseSet(s)
	case *core.FactoredSet:
		base = FromFactoredSet(s)
	case *core.SparseSet:
		base = FromSparseSet(s)
	default:
		return nil, fmt.Errorf("instio: unsupported packing representation %T", p.Pack)
	}
	md := &MixedDoc{
		Dense:    base.Dense,
		Factored: base.Factored,
		Sparse:   base.Sparse,
		Rows:     p.Cover.R,
	}
	for j := 0; j < p.Cover.R; j++ {
		row := p.Cover.Row(j)
		for i, v := range row {
			if v != 0 {
				md.Cover = append(md.Cover, [3]float64{float64(j), float64(i), v})
			}
		}
	}
	return &Instance{M: p.Pack.Dim(), Mixed: md}, nil
}

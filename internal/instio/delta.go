package instio

import (
	"errors"
	"fmt"

	"repro/internal/sparse"
)

// ApplyDelta materializes a delta document against its base instance,
// returning an ordinary sparse Instance (or, for a mixed base, a mixed
// Instance whose sparse packing side absorbed the edits). base is the
// materialized (non-delta) document the delta's Base digest names — the
// caller (typically a serving layer's revision store) is responsible
// for having resolved the digest to the right document. doc is the
// incoming delta document: an Instance whose Delta field is set and
// which carries no constraints of its own.
//
// Every resulting constraint is canonicalized exactly like the sparse
// wire kind — triplets sorted, duplicates summed in value order, exact
// zeros dropped — so the materialized document's content digest depends
// only on the mathematical result, never on how the delta spelled it:
// an Edit that cancels an entry produces a document identical to one
// that never contained it, and an identity delta (no edits) reproduces
// the base's canonical form.
//
// The result is not otherwise validated (symmetry, finite traces):
// callers build it with Build, which applies the same checks as for a
// directly-posted sparse document.
func ApplyDelta(base, doc *Instance) (*Instance, error) {
	if base == nil || doc == nil || doc.Delta == nil {
		return nil, errors.New("instio: ApplyDelta needs a base instance and a delta document")
	}
	if base.Delta != nil {
		return nil, errors.New("instio: delta base must be a materialized instance, not another delta")
	}
	if base.M <= 0 {
		return nil, errors.New("instio: delta base field m must be positive")
	}
	// A mixed base drifts on its packing side: the delta's edits apply
	// to the sparse packing constraints inside the mixed section and the
	// covering side carries over unchanged, so the materialized document
	// is again a mixed instance (and re-solves as one).
	baseSparse := base.Sparse
	if base.Mixed != nil {
		if len(base.Sparse)+len(base.Dense)+len(base.Factored) > 0 {
			return nil, errors.New("instio: mixed delta base cannot also carry top-level constraints")
		}
		if len(base.Mixed.Sparse) == 0 {
			return nil, errors.New("instio: delta requires a sparse-packed mixed base instance")
		}
		baseSparse = base.Mixed.Sparse
	} else if len(base.Sparse) == 0 {
		return nil, errors.New("instio: delta requires a sparse base instance")
	}
	if doc.M != 0 && doc.M != base.M {
		return nil, fmt.Errorf("instio: delta m = %d does not match base m = %d", doc.M, base.M)
	}
	if len(doc.Dense)+len(doc.Factored)+len(doc.Sparse) > 0 {
		return nil, errors.New("instio: a delta document cannot also carry dense/factored/sparse constraints")
	}
	if doc.Mixed != nil {
		return nil, errors.New("instio: a delta document cannot carry a mixed section (the base decides the kind)")
	}
	d := doc.Delta

	n := len(baseSparse)
	if base.Mixed != nil && len(d.Remove)+len(d.Add) > 0 {
		// The covering matrix's columns index the packing constraints, so
		// changing their count would silently rewire C against different
		// variables. Mixed bases drift by edit and scale only.
		return nil, errors.New("instio: mixed deltas support edit and scale only (the covering columns pin the variable count)")
	}
	removed := make([]bool, n)
	for _, i := range d.Remove {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("instio: delta remove index %d out of range [0, %d)", i, n)
		}
		removed[i] = true // duplicates dedupe
	}

	// Edits append difference triplets; copy-on-write so the base
	// document is never mutated.
	ents := make([][][3]float64, n)
	for i := range ents {
		ents[i] = baseSparse[i].Entries
	}
	for ei, e := range d.Edit {
		if e.I < 0 || e.I >= n {
			return nil, fmt.Errorf("instio: delta edit[%d] index %d out of range [0, %d)", ei, e.I, n)
		}
		if removed[e.I] {
			return nil, fmt.Errorf("instio: delta edit[%d] targets removed constraint %d", ei, e.I)
		}
		merged := make([][3]float64, 0, len(ents[e.I])+len(e.Entries))
		merged = append(append(merged, ents[e.I]...), e.Entries...)
		ents[e.I] = merged
	}

	mult := make([]float64, n)
	for i := range mult {
		mult[i] = 1
	}
	for si, sc := range d.Scale {
		if sc.I < 0 || sc.I >= n {
			return nil, fmt.Errorf("instio: delta scale[%d] index %d out of range [0, %d)", si, sc.I, n)
		}
		if removed[sc.I] {
			return nil, fmt.Errorf("instio: delta scale[%d] targets removed constraint %d", si, sc.I)
		}
		if !isFinite(sc.By) || sc.By == 0 {
			return nil, fmt.Errorf("instio: delta scale[%d] by %v must be finite and nonzero (use remove to drop a constraint)", si, sc.By)
		}
		mult[sc.I] *= sc.By // repeated scales of one index compose
	}

	out := &Instance{M: base.M}
	for i := range ents {
		if removed[i] {
			continue
		}
		sm, err := canonicalSparse(base.M, ents[i], mult[i], fmt.Sprintf("delta constraint %d", i))
		if err != nil {
			return nil, err
		}
		out.Sparse = append(out.Sparse, sm)
	}
	for j, add := range d.Add {
		sm, err := canonicalSparse(base.M, add.Entries, 1, fmt.Sprintf("delta add[%d]", j))
		if err != nil {
			return nil, err
		}
		out.Sparse = append(out.Sparse, sm)
	}
	if len(out.Sparse) == 0 {
		return nil, errors.New("instio: delta removes every constraint")
	}
	if base.Mixed != nil {
		// Re-wrap: the canonicalized packing side goes back inside the
		// mixed section, covering triplets copied verbatim (they were
		// canonicalized when the base was built, and stay so).
		out.Mixed = &MixedDoc{
			Sparse: out.Sparse,
			Rows:   base.Mixed.Rows,
			Cover:  base.Mixed.Cover,
		}
		out.Sparse = nil
	}
	return out, nil
}

// canonicalSparse converts raw wire entries (scaled by mult) into the
// canonical sparse document form: through NewCSC and back, so the
// emitted triplets are column-major, row-sorted, duplicate-free, and
// free of exact zeros — byte-identical output for mathematically
// identical input.
func canonicalSparse(m int, entries [][3]float64, mult float64, what string) (SparseMatrix, error) {
	trips := make([]sparse.Triplet, len(entries))
	for k, e := range entries {
		v := e[2] * mult
		if !isFinite(v) {
			return SparseMatrix{}, fmt.Errorf("instio: %s entry %d has non-finite value %v", what, k, v)
		}
		row, err := tripIndex(e[0])
		if err != nil {
			return SparseMatrix{}, fmt.Errorf("instio: %s entry %d: row %w", what, k, err)
		}
		col, err := tripIndex(e[1])
		if err != nil {
			return SparseMatrix{}, fmt.Errorf("instio: %s entry %d: col %w", what, k, err)
		}
		trips[k] = sparse.Triplet{Row: row, Col: col, Val: v}
	}
	a, err := sparse.NewCSC(m, m, trips)
	if err != nil {
		return SparseMatrix{}, fmt.Errorf("instio: %s: %w", what, err)
	}
	sm := SparseMatrix{}
	for j := 0; j < a.C; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			sm.Entries = append(sm.Entries, [3]float64{float64(a.Row[k]), float64(j), a.Val[k]})
		}
	}
	return sm, nil
}

package instio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

func TestDenseRoundTrip(t *testing.T) {
	set, err := core.NewDenseSet([]*matrix.Dense{
		matrix.Diag([]float64{1, 2}),
		matrix.FromRows([][]float64{{1, 0.5}, {0.5, 1}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := FromDenseSet(set)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := loaded.(*core.DenseSet)
	if !ok {
		t.Fatalf("loaded type %T, want *core.DenseSet", loaded)
	}
	if ds.N() != 2 || ds.Dim() != 2 {
		t.Fatalf("shape wrong: n=%d m=%d", ds.N(), ds.Dim())
	}
	for i := range set.A {
		if !matrix.ApproxEqual(ds.A[i], set.A[i], 0) {
			t.Fatalf("constraint %d altered in round trip", i)
		}
	}
}

func TestFactoredRoundTrip(t *testing.T) {
	q1, err := sparse.NewCSC(3, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: -2}})
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewFactoredSet([]*sparse.CSC{q1})
	if err != nil {
		t.Fatal(err)
	}
	doc := FromFactoredSet(set)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := loaded.(*core.FactoredSet)
	if !ok {
		t.Fatalf("loaded type %T, want *core.FactoredSet", loaded)
	}
	if fs.N() != 1 || fs.Dim() != 3 || fs.NNZ() != 2 {
		t.Fatalf("shape wrong: n=%d m=%d nnz=%d", fs.N(), fs.Dim(), fs.NNZ())
	}
	if !matrix.ApproxEqual(fs.Q[0].ToDense(), q1.ToDense(), 0) {
		t.Fatal("factor altered in round trip")
	}
}

func TestSparseRoundTrip(t *testing.T) {
	a1, err := sparse.NewCSC(3, 3, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 1, Val: -1},
		{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sparse.NewCSC(3, 3, []sparse.Triplet{{Row: 2, Col: 2, Val: 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewSparseSet([]*sparse.CSC{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	doc := FromSparseSet(set)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := loaded.(*core.SparseSet)
	if !ok {
		t.Fatalf("loaded type %T, want *core.SparseSet", loaded)
	}
	if ss.N() != 2 || ss.Dim() != 3 || ss.NNZ() != set.NNZ() {
		t.Fatalf("shape wrong: n=%d m=%d nnz=%d", ss.N(), ss.Dim(), ss.NNZ())
	}
	for i := range set.A {
		if !matrix.ApproxEqual(ss.A[i].ToDense(), set.A[i].ToDense(), 0) {
			t.Fatalf("sparse constraint %d altered in round trip", i)
		}
	}
	// Encode/Decode over a stream must restore the exact bit patterns.
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ss2 := decoded.(*core.SparseSet)
	for i := 0; i < set.N(); i++ {
		if math.Float64bits(ss2.Trace(i)) != math.Float64bits(set.Trace(i)) {
			t.Fatalf("trace %d drifted through Encode/Decode", i)
		}
	}
}

// Triplet order in a sparse document must be irrelevant: NewCSC
// canonicalizes, so shuffled and duplicate-split entry lists build
// bitwise-identical sets.
func TestSparseTripletOrderIrrelevant(t *testing.T) {
	orig := &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{
		{0, 0, 1}, {0, 1, 0.5}, {1, 0, 0.5}, {1, 1, 2},
	}}}}
	shuffled := &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{
		{1, 1, 2}, {1, 0, 0.5}, {0, 1, 0.25}, {0, 0, 1}, {0, 1, 0.25},
	}}}}
	s1, err := Build(orig)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	a1 := s1.(*core.SparseSet).A[0]
	a2 := s2.(*core.SparseSet).A[0]
	if len(a1.Val) != len(a2.Val) {
		t.Fatalf("nnz differ: %d vs %d", len(a1.Val), len(a2.Val))
	}
	for k := range a1.Val {
		if a1.Row[k] != a2.Row[k] || math.Float64bits(a1.Val[k]) != math.Float64bits(a2.Val[k]) {
			t.Fatalf("canonical entry %d differs", k)
		}
	}
}

func TestSparseBuildRejections(t *testing.T) {
	cases := []struct {
		name string
		inst *Instance
	}{
		{"asymmetric-one-sided", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 1, 1}}}}}},
		{"asymmetric-mismatch", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 1, 1}, {1, 0, 2}}}}}},
		{"row-out-of-range", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{5, 0, 1}}}}}},
		{"col-out-of-range", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, -1, 1}}}}}},
		{"fractional-row", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0.9, 0, 1}, {0, 0.9, 1}}}}}},
		{"fractional-col", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 0.5, 1}}}}}},
		{"huge-index", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{1e40, 0, 1}}}}}},
		{"nan-value", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 0, math.NaN()}}}}}},
		{"inf-value", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 0, math.Inf(1)}}}}}},
		{"negative-trace", &Instance{M: 1, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 0, -1}}}}}},
		{"mixed-with-dense", &Instance{M: 2,
			Dense:  [][][]float64{{{1, 0}, {0, 1}}},
			Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 0, 1}}}}}},
		{"mixed-with-factored", &Instance{M: 2,
			Factored: []Factor{{Cols: 1, Entries: [][3]float64{{0, 0, 1}}}},
			Sparse:   []SparseMatrix{{Entries: [][3]float64{{0, 0, 1}}}}}},
		{"trace-overflow", &Instance{M: 2, Sparse: []SparseMatrix{{Entries: [][3]float64{{0, 0, 1e308}, {1, 1, 1e308}}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Build(tc.inst); err == nil {
				t.Fatal("invalid sparse instance accepted")
			}
		})
	}
	// An empty-entry constraint is the zero matrix: shape-valid, and the
	// solver freezes it at trace 0 — Build accepts it.
	zero := &Instance{M: 2, Sparse: []SparseMatrix{{Entries: nil}}}
	if _, err := Build(zero); err != nil {
		t.Fatalf("zero sparse constraint rejected: %v", err)
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []*Instance{
		{M: 0},
		{M: 2},
		{M: 2, Dense: [][][]float64{{{1, 0}, {0, 1}}}, Factored: []Factor{{Cols: 1}}},
		{M: 2, Dense: [][][]float64{{{1, 0}}}},                                  // wrong row count
		{M: 2, Dense: [][][]float64{{{1, 0, 0}, {0, 1, 0}}}},                    // wrong col count
		{M: 2, Factored: []Factor{{Cols: 0}}},                                   // bad cols
		{M: 2, Factored: []Factor{{Cols: 1, Entries: [][3]float64{{5, 0, 1}}}}}, // row out of range
	}
	for i, inst := range cases {
		if _, err := Build(inst); err == nil {
			t.Fatalf("case %d: invalid instance accepted", i)
		}
	}
}

func TestLoadMissingAndMalformed(t *testing.T) {
	if _, err := Load("/nonexistent/inst.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestDecodeEncodeStream(t *testing.T) {
	set, err := core.NewDenseSet([]*matrix.Dense{
		matrix.Diag([]float64{1, 0.25}),
		matrix.FromRows([][]float64{{2, 1}, {1, 2}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := FromDenseSet(set)
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	// Encode must produce the exact bytes Save writes, so wire payloads
	// and on-disk instances are interchangeable.
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), onDisk) {
		t.Fatal("Encode and Save produced different bytes")
	}
	decoded, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := decoded.(*core.DenseSet)
	if !ok {
		t.Fatalf("decoded type %T, want *core.DenseSet", decoded)
	}
	for i := range set.A {
		if !matrix.ApproxEqual(ds.A[i], set.A[i], 0) {
			t.Fatalf("constraint %d altered through Encode/Decode", i)
		}
	}
	if _, err := Decode(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("malformed stream accepted")
	}
	// Trailing data means a truncated or concatenated document; solving
	// the first instance silently would be wrong.
	concat := append(append([]byte(nil), buf.Bytes()...), []byte(`{"m":1,"dense":[[[1]]]}`)...)
	if _, err := Decode(bytes.NewReader(concat)); err == nil {
		t.Fatal("concatenated documents accepted")
	}
	if _, err := Decode(bytes.NewReader(append(append([]byte(nil), buf.Bytes()...), "garbage"...))); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestBuildRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		inst *Instance
	}{
		{"factored-nan", &Instance{M: 2, Factored: []Factor{{Cols: 1, Entries: [][3]float64{{0, 0, nan}}}}}},
		{"factored-posinf", &Instance{M: 2, Factored: []Factor{{Cols: 1, Entries: [][3]float64{{0, 0, inf}}}}}},
		{"factored-neginf", &Instance{M: 2, Factored: []Factor{{Cols: 1, Entries: [][3]float64{{1, 0, -inf}}}}}},
		// Finite entries, infinite Gram trace (1e308² overflows).
		{"factored-trace-overflow", &Instance{M: 1, Factored: []Factor{{Cols: 1, Entries: [][3]float64{{0, 0, 1e308}}}}}},
		// Finite dense entries, infinite trace.
		{"dense-trace-overflow", &Instance{M: 2, Dense: [][][]float64{{{1e308, 0}, {0, 1e308}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Build(tc.inst); err == nil {
				t.Fatal("non-finite instance accepted")
			}
		})
	}
	// Large but representable values must still be accepted.
	ok := &Instance{M: 1, Dense: [][][]float64{{{1e300}}}}
	if _, err := Build(ok); err != nil {
		t.Fatalf("finite instance rejected: %v", err)
	}
}

package instio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

func TestDenseRoundTrip(t *testing.T) {
	set, err := core.NewDenseSet([]*matrix.Dense{
		matrix.Diag([]float64{1, 2}),
		matrix.FromRows([][]float64{{1, 0.5}, {0.5, 1}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := FromDenseSet(set)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := loaded.(*core.DenseSet)
	if !ok {
		t.Fatalf("loaded type %T, want *core.DenseSet", loaded)
	}
	if ds.N() != 2 || ds.Dim() != 2 {
		t.Fatalf("shape wrong: n=%d m=%d", ds.N(), ds.Dim())
	}
	for i := range set.A {
		if !matrix.ApproxEqual(ds.A[i], set.A[i], 0) {
			t.Fatalf("constraint %d altered in round trip", i)
		}
	}
}

func TestFactoredRoundTrip(t *testing.T) {
	q1, err := sparse.NewCSC(3, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: -2}})
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewFactoredSet([]*sparse.CSC{q1})
	if err != nil {
		t.Fatal(err)
	}
	doc := FromFactoredSet(set)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := loaded.(*core.FactoredSet)
	if !ok {
		t.Fatalf("loaded type %T, want *core.FactoredSet", loaded)
	}
	if fs.N() != 1 || fs.Dim() != 3 || fs.NNZ() != 2 {
		t.Fatalf("shape wrong: n=%d m=%d nnz=%d", fs.N(), fs.Dim(), fs.NNZ())
	}
	if !matrix.ApproxEqual(fs.Q[0].ToDense(), q1.ToDense(), 0) {
		t.Fatal("factor altered in round trip")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []*Instance{
		{M: 0},
		{M: 2},
		{M: 2, Dense: [][][]float64{{{1, 0}, {0, 1}}}, Factored: []Factor{{Cols: 1}}},
		{M: 2, Dense: [][][]float64{{{1, 0}}}},                                  // wrong row count
		{M: 2, Dense: [][][]float64{{{1, 0, 0}, {0, 1, 0}}}},                    // wrong col count
		{M: 2, Factored: []Factor{{Cols: 0}}},                                   // bad cols
		{M: 2, Factored: []Factor{{Cols: 1, Entries: [][3]float64{{5, 0, 1}}}}}, // row out of range
	}
	for i, inst := range cases {
		if _, err := Build(inst); err == nil {
			t.Fatalf("case %d: invalid instance accepted", i)
		}
	}
}

func TestLoadMissingAndMalformed(t *testing.T) {
	if _, err := Load("/nonexistent/inst.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

package graph

import (
	"math/rand/v2"
	"testing"

	"repro/internal/matrix"
)

func TestCyclePathCompleteGrid(t *testing.T) {
	if got := Cycle(5).M(); got != 5 {
		t.Fatalf("C5 edges = %d", got)
	}
	if got := Path(5).M(); got != 4 {
		t.Fatalf("P5 edges = %d", got)
	}
	if got := Complete(5).M(); got != 10 {
		t.Fatalf("K5 edges = %d", got)
	}
	if got := Grid(2, 3).M(); got != 7 {
		t.Fatalf("2x3 grid edges = %d", got)
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	if ErdosRenyi(6, 0, rng).M() != 0 {
		t.Fatal("G(n,0) must have no edges")
	}
	if ErdosRenyi(6, 1, rng).M() != 15 {
		t.Fatal("G(n,1) must be complete")
	}
}

func TestDegreesSumTwiceEdges(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := ErdosRenyi(12, 0.4, rng)
	sum := 0
	for _, d := range g.Degrees() {
		sum += d
	}
	if sum != 2*g.M() {
		t.Fatalf("Σdeg = %d want %d", sum, 2*g.M())
	}
}

func TestLaplacianProperties(t *testing.T) {
	g := Cycle(6)
	l := g.Laplacian()
	// Row sums zero, diagonal = degree 2.
	for i := 0; i < 6; i++ {
		if l.At(i, i) != 2 {
			t.Fatalf("diag %d = %v", i, l.At(i, i))
		}
		s := 0.0
		for j := 0; j < 6; j++ {
			s += l.At(i, j)
		}
		if s != 0 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	if !l.IsSymmetric(0) {
		t.Fatal("Laplacian not symmetric")
	}
}

func TestEdgeFactorsSumToLaplacian(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := ErdosRenyi(8, 0.5, rng)
	qs, err := g.EdgeFactors()
	if err != nil {
		t.Fatal(err)
	}
	sum := matrix.New(g.N, g.N)
	for _, q := range qs {
		matrix.AXPY(sum, 1, q.GramDense())
	}
	if !matrix.ApproxEqual(sum, g.Laplacian(), 1e-12) {
		t.Fatal("Σ bₑbₑᵀ != L")
	}
}

func TestEdgeFactorWeighted(t *testing.T) {
	g := Path(2)
	q, err := g.EdgeFactor(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	l := q.GramDense()
	if l.At(0, 0) != 4 || l.At(0, 1) != -4 {
		t.Fatalf("weighted edge Laplacian wrong: %v", l)
	}
}

func TestEdgeFactorValidation(t *testing.T) {
	g := Path(3)
	if _, err := g.EdgeFactor(5, 1); err == nil {
		t.Fatal("bad index accepted")
	}
	if _, err := g.EdgeFactor(0, -1); err == nil {
		t.Fatal("bad weight accepted")
	}
}

// Package graph provides the small graph substrate feeding the
// solver's workload generators: edge-Laplacian packing SDPs are the
// natural sparse rank-one factored instances for the Theorem 4.1 cost
// model (each constraint factor is one ±1 column with two nonzeros).
package graph

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// ErdosRenyi samples G(n, p). Isolated vertices are allowed; duplicate
// edges are not.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, [2]int{u, v})
			}
		}
	}
	return g
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph {
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		g.Edges = append(g.Edges, [2]int{u, (u + 1) % n})
	}
	return g
}

// Path returns the n-vertex path.
func Path(n int) *Graph {
	g := &Graph{N: n}
	for u := 0; u+1 < n; u++ {
		g.Edges = append(g.Edges, [2]int{u, u + 1})
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := &Graph{N: n}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.Edges = append(g.Edges, [2]int{u, v})
		}
	}
	return g
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	g := &Graph{N: rows * cols}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				g.Edges = append(g.Edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return g
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Degrees returns the vertex degree vector.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for _, e := range g.Edges {
		d[e[0]]++
		d[e[1]]++
	}
	return d
}

// Laplacian returns the dense graph Laplacian L = D − A.
func (g *Graph) Laplacian() *matrix.Dense {
	l := matrix.New(g.N, g.N)
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		l.Data[u*g.N+u]++
		l.Data[v*g.N+v]++
		l.Data[u*g.N+v]--
		l.Data[v*g.N+u]--
	}
	return l
}

// EdgeFactor returns the sparse single-column factor b_e = e_u − e_v of
// the edge Laplacian L_e = b_e·b_eᵀ for edge index k, optionally scaled
// by weight w (the factor is scaled by √w so L_e is scaled by w).
func (g *Graph) EdgeFactor(k int, w float64) (*sparse.CSC, error) {
	if k < 0 || k >= len(g.Edges) {
		return nil, fmt.Errorf("graph: edge index %d out of range", k)
	}
	if w <= 0 {
		return nil, fmt.Errorf("graph: edge weight %v must be positive", w)
	}
	e := g.Edges[k]
	s := math.Sqrt(w)
	return sparse.NewCSC(g.N, 1, []sparse.Triplet{
		{Row: e[0], Col: 0, Val: s},
		{Row: e[1], Col: 0, Val: -s},
	})
}

// EdgeLaplacian returns the sparse symmetric edge Laplacian
// L_e = w·b_e·b_eᵀ for edge index k: four stored entries
// (w at (u,u) and (v,v), −w at (u,v) and (v,u)) — the general-sparse
// counterpart of EdgeFactor for solvers consuming symmetric matrices
// directly instead of factors.
func (g *Graph) EdgeLaplacian(k int, w float64) (*sparse.CSC, error) {
	if k < 0 || k >= len(g.Edges) {
		return nil, fmt.Errorf("graph: edge index %d out of range", k)
	}
	if w <= 0 {
		return nil, fmt.Errorf("graph: edge weight %v must be positive", w)
	}
	e := g.Edges[k]
	return sparse.NewCSC(g.N, g.N, []sparse.Triplet{
		{Row: e[0], Col: e[0], Val: w},
		{Row: e[1], Col: e[1], Val: w},
		{Row: e[0], Col: e[1], Val: -w},
		{Row: e[1], Col: e[0], Val: -w},
	})
}

// SubgraphLaplacian returns the sparse Laplacian of the subgraph formed
// by the given edge indices (unit weights): Σ_k L_{e_k} assembled in
// one triplet pass, duplicates summed by NewCSC.
func (g *Graph) SubgraphLaplacian(edgeIdx []int) (*sparse.CSC, error) {
	trips := make([]sparse.Triplet, 0, 4*len(edgeIdx))
	for _, k := range edgeIdx {
		if k < 0 || k >= len(g.Edges) {
			return nil, fmt.Errorf("graph: edge index %d out of range", k)
		}
		e := g.Edges[k]
		trips = append(trips,
			sparse.Triplet{Row: e[0], Col: e[0], Val: 1},
			sparse.Triplet{Row: e[1], Col: e[1], Val: 1},
			sparse.Triplet{Row: e[0], Col: e[1], Val: -1},
			sparse.Triplet{Row: e[1], Col: e[0], Val: -1})
	}
	return sparse.NewCSC(g.N, g.N, trips)
}

// EdgeFactors returns all edge factors with unit weights.
func (g *Graph) EdgeFactors() ([]*sparse.CSC, error) {
	qs := make([]*sparse.CSC, len(g.Edges))
	for k := range g.Edges {
		q, err := g.EdgeFactor(k, 1)
		if err != nil {
			return nil, err
		}
		qs[k] = q
	}
	return qs, nil
}

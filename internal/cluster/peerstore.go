package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/placement"
	"repro/internal/store"
)

// maxPeerBody bounds a fetched peer response (same order as the serve
// tier's request-body bound; responses are smaller than requests).
const maxPeerBody = 64 << 20

// fetchCounters is one store's peer-fetch telemetry: aggregate atomics
// on the hot path plus a per-peer map (fetches are the miss path, so a
// mutex-guarded map is fine there).
type fetchCounters struct {
	attempts atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	errors   atomic.Int64

	mu      sync.Mutex
	perPeer map[string]*peerCount
}

type peerCount struct {
	Fetches int64 `json:"fetches"`
	Hits    int64 `json:"hits"`
	Errors  int64 `json:"errors"`
}

func (c *fetchCounters) record(peer string, hit bool, errd bool) {
	c.attempts.Add(1)
	switch {
	case errd:
		c.errors.Add(1)
	case hit:
		c.hits.Add(1)
	default:
		c.misses.Add(1)
	}
	c.mu.Lock()
	if c.perPeer == nil {
		c.perPeer = make(map[string]*peerCount)
	}
	pc := c.perPeer[peer]
	if pc == nil {
		pc = &peerCount{}
		c.perPeer[peer] = pc
	}
	pc.Fetches++
	if hit {
		pc.Hits++
	}
	if errd {
		pc.Errors++
	}
	c.mu.Unlock()
}

func (c *fetchCounters) snapshot() map[string]peerCount {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]peerCount, len(c.perPeer))
	for k, v := range c.perPeer {
		out[k] = *v
	}
	return out
}

// resultFlight is one in-progress peer fetch shared by every
// concurrent local miss of the same digest (singleflight across the
// fetch: the owner is asked once, not once per waiter).
type resultFlight struct {
	done  chan struct{}
	body  []byte
	iters int
}

// PeerResultStore implements store.ResultStore over a local layer plus
// the ring: Get serves local hits outright; a local miss whose digest
// is owned by a remote peer asks that owner (GET /v1/peer/result/
// {digest}) before reporting a miss, caching a fetched hit locally so
// the fleet converges. Put writes the local layer only — results
// propagate by demand, never by broadcast.
type PeerResultStore struct {
	local  store.ResultStore
	ring   *placement.Ring
	client *http.Client
	// onPeerError, when non-nil, is told about transport failures so
	// the prober can demote the peer immediately.
	onPeerError func(peer string)
	counters    fetchCounters

	fmu     sync.Mutex
	flights map[store.Key]*resultFlight
}

// NewPeerResultStore wraps local with peer-aware miss handling. client
// nil defaults to a 5s-timeout client.
func NewPeerResultStore(local store.ResultStore, ring *placement.Ring, client *http.Client, onPeerError func(string)) *PeerResultStore {
	if client == nil {
		client = defaultClient(5 * time.Second)
	}
	return &PeerResultStore{
		local:       local,
		ring:        ring,
		client:      client,
		onPeerError: onPeerError,
		flights:     make(map[store.Key]*resultFlight),
	}
}

// Local returns the in-process layer. The serve tier's peer endpoints
// unwrap through this so peer fetches terminate at ground truth
// instead of chasing each other's miss paths.
func (p *PeerResultStore) Local() store.ResultStore { return p.local }

// Get implements store.ResultStore.
func (p *PeerResultStore) Get(key store.Key) ([]byte, int) {
	if b, it := p.local.Get(key); b != nil {
		return b, it
	}
	owner, remote := p.ring.Owner(key)
	if !remote {
		// This replica owns the digest (or the ring is empty): a local
		// miss is final and the caller solves here.
		return nil, 0
	}

	p.fmu.Lock()
	if f, ok := p.flights[key]; ok {
		p.fmu.Unlock()
		<-f.done
		return f.body, f.iters
	}
	f := &resultFlight{done: make(chan struct{})}
	p.flights[key] = f
	p.fmu.Unlock()

	f.body, f.iters = p.fetch(owner, key)
	p.fmu.Lock()
	delete(p.flights, key)
	p.fmu.Unlock()
	close(f.done)
	return f.body, f.iters
}

// fetch asks owner for key and, on a hit, fills the local layer with
// the exact bytes so the next request is a local hit.
func (p *PeerResultStore) fetch(owner string, key store.Key) ([]byte, int) {
	resp, err := p.client.Get(owner + "/v1/peer/result/" + key.String())
	if err != nil {
		p.counters.record(owner, false, true)
		if p.onPeerError != nil {
			p.onPeerError(owner)
		}
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		p.counters.record(owner, false, false)
		return nil, 0
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		p.counters.record(owner, false, true)
		return nil, 0
	}
	// writeResult appends one newline after the cached bytes; strip it
	// so the stored body is byte-identical to a locally-solved one.
	body := bytes.TrimSuffix(raw, []byte("\n"))
	iters, _ := strconv.Atoi(resp.Header.Get("X-Psdpd-Iterations"))
	p.counters.record(owner, true, false)
	p.local.Put(key, body, iters)
	return body, iters
}

// Put implements store.ResultStore (local layer only).
func (p *PeerResultStore) Put(key store.Key, body []byte, iters int) { p.local.Put(key, body, iters) }

// Len implements store.ResultStore.
func (p *PeerResultStore) Len() int { return p.local.Len() }

// Counters implements store.ResultStore (the local layer's hit/miss
// view; peer-fetch telemetry is separate via FetchCounters).
func (p *PeerResultStore) Counters() (hits, misses int64) { return p.local.Counters() }

// FetchCounters reports (attempts, hits, misses, errors) of the peer
// fetch path.
func (p *PeerResultStore) FetchCounters() (attempts, hits, misses, errors int64) {
	return p.counters.attempts.Load(), p.counters.hits.Load(),
		p.counters.misses.Load(), p.counters.errors.Load()
}

// PerPeer snapshots the per-peer fetch counters.
func (p *PeerResultStore) PerPeer() map[string]peerCount { return p.counters.snapshot() }

// revisionFlight mirrors resultFlight for revision fetches.
type revisionFlight struct {
	done chan struct{}
	rev  *store.Revision
}

// PeerRevisionStore implements store.RevisionStore with the same
// peer-aware miss handling: a delta request landing off-owner fetches
// the base's materialized instance and final solver state from the
// owner (GET /v1/peer/revision/{digest}) instead of answering 404.
type PeerRevisionStore struct {
	local       store.RevisionStore
	ring        *placement.Ring
	client      *http.Client
	onPeerError func(peer string)
	counters    fetchCounters

	fmu     sync.Mutex
	flights map[store.Key]*revisionFlight
}

// NewPeerRevisionStore wraps local with peer-aware miss handling.
func NewPeerRevisionStore(local store.RevisionStore, ring *placement.Ring, client *http.Client, onPeerError func(string)) *PeerRevisionStore {
	if client == nil {
		client = defaultClient(5 * time.Second)
	}
	return &PeerRevisionStore{
		local:       local,
		ring:        ring,
		client:      client,
		onPeerError: onPeerError,
		flights:     make(map[store.Key]*revisionFlight),
	}
}

// Local returns the in-process layer (see PeerResultStore.Local).
func (p *PeerRevisionStore) Local() store.RevisionStore { return p.local }

// Get implements store.RevisionStore.
func (p *PeerRevisionStore) Get(key store.Key) *store.Revision {
	if rev := p.local.Get(key); rev != nil {
		return rev
	}
	owner, remote := p.ring.Owner(key)
	if !remote {
		return nil
	}

	p.fmu.Lock()
	if f, ok := p.flights[key]; ok {
		p.fmu.Unlock()
		<-f.done
		return f.rev
	}
	f := &revisionFlight{done: make(chan struct{})}
	p.flights[key] = f
	p.fmu.Unlock()

	f.rev = p.fetch(owner, key)
	p.fmu.Lock()
	delete(p.flights, key)
	p.fmu.Unlock()
	close(f.done)
	return f.rev
}

func (p *PeerRevisionStore) fetch(owner string, key store.Key) *store.Revision {
	resp, err := p.client.Get(owner + "/v1/peer/revision/" + key.String())
	if err != nil {
		p.counters.record(owner, false, true)
		if p.onPeerError != nil {
			p.onPeerError(owner)
		}
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		p.counters.record(owner, false, false)
		return nil
	}
	var rev store.Revision
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(&rev); err != nil {
		p.counters.record(owner, false, true)
		return nil
	}
	p.counters.record(owner, true, false)
	// Adopt locally so the warm-start chain grows here (the pinning
	// policy then protects this base for the lifetime of its deriveds).
	p.local.Put(key, &rev)
	return &rev
}

// Put implements store.RevisionStore (local layer only).
func (p *PeerRevisionStore) Put(key store.Key, rev *store.Revision) { p.local.Put(key, rev) }

// Len implements store.RevisionStore.
func (p *PeerRevisionStore) Len() int { return p.local.Len() }

// FetchCounters reports (attempts, hits, misses, errors) of the peer
// fetch path.
func (p *PeerRevisionStore) FetchCounters() (attempts, hits, misses, errors int64) {
	return p.counters.attempts.Load(), p.counters.hits.Load(),
		p.counters.misses.Load(), p.counters.errors.Load()
}

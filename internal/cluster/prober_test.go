package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Membership is health-gated, not static: dead or not-ready members
// are demoted (by probe or by transport-error fast path) and rejoin at
// the next successful probe, with onChange firing on every transition.
func TestProberHealthGating(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" && ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	var mu sync.Mutex
	var last []string
	changes := 0
	p := NewProber([]string{live.URL, deadURL}, time.Hour, nil, func(h []string) {
		mu.Lock()
		last = append([]string(nil), h...)
		changes++
		mu.Unlock()
	})

	// Boot state: the full static list is healthy, announced once.
	if got := p.Healthy(); len(got) != 2 {
		t.Fatalf("boot healthy = %v, want both members", got)
	}
	mu.Lock()
	if changes != 1 || len(last) != 2 {
		t.Fatalf("boot onChange fired %d times with %v", changes, last)
	}
	mu.Unlock()

	// First probe drops the dead member.
	p.ProbeNow(context.Background())
	if got := p.Healthy(); len(got) != 1 || got[0] != live.URL {
		t.Fatalf("after probe: healthy = %v, want [%s]", got, live.URL)
	}
	mu.Lock()
	if len(last) != 1 || last[0] != live.URL {
		t.Fatalf("onChange saw %v, want [%s]", last, live.URL)
	}
	mu.Unlock()

	// Transport-error fast path demotes without waiting for a probe.
	p.MarkUnhealthy(live.URL)
	if got := p.Healthy(); len(got) != 0 {
		t.Fatalf("after MarkUnhealthy: healthy = %v, want none", got)
	}

	// The next successful probe re-promotes.
	p.ProbeNow(context.Background())
	if got := p.Healthy(); len(got) != 1 || got[0] != live.URL {
		t.Fatalf("after recovery probe: healthy = %v, want [%s]", got, live.URL)
	}

	// A 503 /readyz (e.g. a draining replica) demotes exactly like a
	// dead one.
	ready.Store(false)
	p.ProbeNow(context.Background())
	if got := p.Healthy(); len(got) != 0 {
		t.Fatalf("after readyz 503: healthy = %v, want none", got)
	}

	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d members, want 2", len(snap))
	}
	for _, m := range snap {
		if m.Healthy {
			t.Fatalf("snapshot member %s healthy, want all demoted", m.URL)
		}
		if m.LastError == "" || m.LastProbe == "" {
			t.Fatalf("snapshot member %s missing probe detail: %+v", m.URL, m)
		}
	}

	// MarkUnhealthy on an already-unhealthy or unknown member must not
	// re-fire onChange.
	mu.Lock()
	before := changes
	mu.Unlock()
	p.MarkUnhealthy(live.URL)
	p.MarkUnhealthy("http://nobody.invalid")
	mu.Lock()
	if changes != before {
		t.Fatalf("redundant MarkUnhealthy fired onChange (%d -> %d)", before, changes)
	}
	mu.Unlock()
}

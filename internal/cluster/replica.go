package cluster

import (
	"context"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/store"
)

// Replica bundles the cluster wiring one psdpd replica needs: the ring
// (self-aware), the health prober feeding it, and the peer-backed
// stores to hand serve.Config. cmd/psdpd builds one in -cluster mode.
type Replica struct {
	Self      string
	Ring      *placement.Ring
	Prober    *Prober
	Results   *PeerResultStore
	Revisions *PeerRevisionStore
}

// ReplicaConfig configures NewReplica. Zero values get defaults.
type ReplicaConfig struct {
	// Self is this replica's base URL as it appears in Members.
	Self string
	// Members is the full static member list (including Self).
	Members []string
	// ProbeInterval is the /readyz polling period (default 500ms).
	ProbeInterval time.Duration
	// ProbeClient / FetchClient override the HTTP clients (defaults:
	// 2s- and 5s-timeout clients).
	ProbeClient, FetchClient *http.Client
	// LocalResults / LocalRevisions are the in-process layers the peer
	// stores wrap (required).
	LocalResults   store.ResultStore
	LocalRevisions store.RevisionStore
}

// NewReplica wires a replica's cluster tier. Start must be called to
// begin health probing; until then the full member list is assumed
// healthy.
func NewReplica(cfg ReplicaConfig) *Replica {
	ring := placement.NewRing(cfg.Self, cfg.Members)
	prober := NewProber(cfg.Members, cfg.ProbeInterval, cfg.ProbeClient, ring.Update)
	r := &Replica{Self: cfg.Self, Ring: ring, Prober: prober}
	r.Results = NewPeerResultStore(cfg.LocalResults, ring, cfg.FetchClient, prober.MarkUnhealthy)
	r.Revisions = NewPeerRevisionStore(cfg.LocalRevisions, ring, cfg.FetchClient, prober.MarkUnhealthy)
	return r
}

// Start begins health probing until ctx is cancelled.
func (r *Replica) Start(ctx context.Context) { r.Prober.Start(ctx) }

// ReplicaStats is the /statsz "cluster" section for a replica.
type ReplicaStats struct {
	Self    string         `json:"self"`
	Members []MemberStatus `json:"members"`
	// Result/revision peer-fetch telemetry: how often a local miss
	// asked the digest's owner, and how that went, per peer.
	ResultFetches       int64                `json:"resultFetches"`
	ResultFetchHits     int64                `json:"resultFetchHits"`
	ResultFetchMisses   int64                `json:"resultFetchMisses"`
	ResultFetchErrors   int64                `json:"resultFetchErrors"`
	RevisionFetches     int64                `json:"revisionFetches"`
	RevisionFetchHits   int64                `json:"revisionFetchHits"`
	RevisionFetchErrors int64                `json:"revisionFetchErrors"`
	PerPeer             map[string]peerCount `json:"perPeer,omitempty"`
}

// Info snapshots the replica's cluster view (serve.Config.ClusterInfo).
func (r *Replica) Info() any {
	ra, rh, rm, re := r.Results.FetchCounters()
	va, vh, _, ve := r.Revisions.FetchCounters()
	return ReplicaStats{
		Self:                r.Self,
		Members:             r.Prober.Snapshot(),
		ResultFetches:       ra,
		ResultFetchHits:     rh,
		ResultFetchMisses:   rm,
		ResultFetchErrors:   re,
		RevisionFetches:     va,
		RevisionFetchHits:   vh,
		RevisionFetchErrors: ve,
		PerPeer:             r.Results.PerPeer(),
	}
}

// RegisterMetrics exports the replica's cluster series into the serve
// /metrics registry (serve.Config.RegisterMetrics).
func (r *Replica) RegisterMetrics(reg *obs.Registry) {
	fc := func(name, help string, fn func() int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(fn()) })
	}
	fc("psdpd_peer_result_fetches_total", "Local result misses that asked the digest's owner.",
		func() int64 { a, _, _, _ := r.Results.FetchCounters(); return a })
	fc("psdpd_peer_result_fetch_hits_total", "Peer result fetches answered with cached bytes.",
		func() int64 { _, h, _, _ := r.Results.FetchCounters(); return h })
	fc("psdpd_peer_result_fetch_errors_total", "Peer result fetches that failed transport.",
		func() int64 { _, _, _, e := r.Results.FetchCounters(); return e })
	fc("psdpd_peer_revision_fetches_total", "Local revision misses that asked the digest's owner.",
		func() int64 { a, _, _, _ := r.Revisions.FetchCounters(); return a })
	fc("psdpd_peer_revision_fetch_hits_total", "Peer revision fetches answered with a revision.",
		func() int64 { _, h, _, _ := r.Revisions.FetchCounters(); return h })
	reg.GaugeFunc("psdpd_cluster_members_healthy", "Members the prober currently considers healthy.",
		func() float64 { return float64(len(r.Prober.Healthy())) })
	reg.GaugeFunc("psdpd_cluster_members", "Configured cluster members.",
		func() float64 { return float64(len(r.Prober.Snapshot())) })
}

package cluster

import (
	"testing"

	"repro/internal/placement"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// The peer-backed stores must satisfy the same contract as the
// in-process LRUs they wrap: the serving tier cannot tell them apart.
// The fleet is live, so Gets whose digest lands on the remote replica
// exercise the real HTTP fetch path (answering 404 -> miss, since
// nothing was solved there).
func TestPeerBackedStoresSatisfyContract(t *testing.T) {
	fl := bootFleet(t, 2, nil)
	self := fl.urls[0]

	t.Run("PeerResultStore", func(t *testing.T) {
		storetest.ResultStore(t, func(t *testing.T) store.ResultStore {
			return NewPeerResultStore(store.NewResultLRU(64), placement.NewRing(self, fl.urls), nil, nil)
		})
	})
	t.Run("PeerRevisionStore", func(t *testing.T) {
		storetest.RevisionStore(t, func(t *testing.T) store.RevisionStore {
			return NewPeerRevisionStore(store.NewRevisionLRU(16), placement.NewRing(self, fl.urls), nil, nil)
		})
	})
}

// Package cluster is the multi-node tier of psdpd: digest-sharded
// placement over a health-gated member list, peer-backed result and
// revision stores, and a front router.
//
// The design leans entirely on the serving tier's content-address
// discipline. Every solve request has one deterministic SHA-256 digest
// (serve.ContentDigest), solves are bitwise deterministic, and all
// server state — the result cache, the warm-start revision lineages,
// the warm worker workspaces — is keyed by that digest. So "cluster"
// reduces to one function: digest → owning replica (consistent hashing
// in internal/placement). The front routes each request to its
// digest's owner; a replica that receives a digest it does not own
// asks the owner for the cached bytes before solving locally; and
// because solves are deterministic, every fallback path (owner down,
// fetch raced, membership mid-change) still produces byte-identical
// responses — the cluster can only lose locality, never correctness.
package cluster

import (
	"net/http"
	"time"
)

// MemberStatus is one replica's health as the prober sees it.
type MemberStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// LastProbe is the RFC3339 time of the most recent probe ("" before
	// the first).
	LastProbe string `json:"lastProbe,omitempty"`
	// LastError is the most recent probe failure ("" when healthy).
	LastError string `json:"lastError,omitempty"`
}

// defaultClient builds an HTTP client with a total-request timeout —
// used for probes and peer fetches, which must fail fast rather than
// hang a solve path on a dead peer.
func defaultClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

func nowRFC3339() string { return time.Now().UTC().Format(time.RFC3339) }

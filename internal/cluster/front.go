package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/serve"
	"repro/internal/store"
)

// FrontConfig sizes the front router.
type FrontConfig struct {
	// Members is the replica list the front routes over.
	Members []string
	// ProbeInterval is the /readyz polling period (default 500ms).
	ProbeInterval time.Duration
	// ProxyClient performs the routed requests. Nil means a client with
	// no total timeout: the inbound request's context already bounds the
	// proxied call, and solves legitimately run for minutes.
	ProxyClient *http.Client
	// ProbeClient overrides the health-probe client (default 2s timeout).
	ProbeClient *http.Client
	// DefaultEngine must match the replicas' default engine so the
	// front computes the same content digests they do.
	DefaultEngine core.EngineKind
	// MaxBodyBytes bounds inbound request bodies (default 32 MiB).
	MaxBodyBytes int64
	// MaxInFlight caps concurrently proxied solve requests; beyond it
	// the front answers 429 itself, with Retry-After derived from the
	// slowest healthy replica's observed latency (default 1024).
	MaxInFlight int
}

func (c FrontConfig) withDefaults() FrontConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProxyClient == nil {
		c.ProxyClient = &http.Client{
			// Redirects from a draining replica must reach the client,
			// not be chased by the front: the client re-POSTs itself.
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	return c
}

// peerState is the front's per-replica telemetry: routed/error counts
// and an EWMA of proxied request latency (float64 bits; weight 1/8).
type peerState struct {
	routed    atomic.Int64
	errors    atomic.Int64
	ewmaBits  atomic.Uint64
	redirects atomic.Int64
}

func (p *peerState) observe(sec float64) {
	for {
		old := p.ewmaBits.Load()
		ewma := sec
		if old != 0 {
			ewma = math.Float64frombits(old)
			ewma += (sec - ewma) / 8
		}
		if p.ewmaBits.CompareAndSwap(old, math.Float64bits(ewma)) {
			return
		}
	}
}

func (p *peerState) ewma() float64 { return math.Float64frombits(p.ewmaBits.Load()) }

// Front is the psdpd cluster router: each solve request is sent to the
// replica owning its content digest, so cache entries, warm-start
// lineages, and warm worker workspaces stay shard-local across the
// fleet. Responses are relayed verbatim — status, X-Psdpd-* headers,
// Retry-After, body bytes — so a client cannot tell the front from a
// single replica.
type Front struct {
	cfg    FrontConfig
	ring   *placement.Ring
	prober *Prober
	mux    *http.ServeMux
	reg    *obs.Registry
	peers  map[string]*peerState
	start  time.Time

	requests    atomic.Int64
	inFlight    atomic.Int64
	rejected    atomic.Int64
	noMembers   atomic.Int64
	digestFails atomic.Int64
	rr          atomic.Uint64
}

// NewFront builds the router. Start must be called to begin health
// probing.
func NewFront(cfg FrontConfig) *Front {
	cfg = cfg.withDefaults()
	f := &Front{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		reg:   obs.NewRegistry(),
		peers: make(map[string]*peerState, len(cfg.Members)),
		start: time.Now(),
	}
	f.ring = placement.NewRing("", cfg.Members)
	f.prober = NewProber(cfg.Members, cfg.ProbeInterval, cfg.ProbeClient, f.ring.Update)
	for _, m := range cfg.Members {
		f.peers[m] = &peerState{}
	}

	for _, kind := range []string{"decision", "maximize", "solve", "mixed"} {
		kind := kind
		f.mux.HandleFunc("POST /v1/"+kind, func(w http.ResponseWriter, r *http.Request) {
			f.handleSolve(w, r, kind)
		})
	}
	f.mux.HandleFunc("POST /v1/delta", f.handleDelta)
	f.mux.HandleFunc("POST /v1/batch", f.handleRoundRobin)
	f.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	f.mux.HandleFunc("GET /readyz", f.handleReadyz)
	f.mux.HandleFunc("GET /statsz", f.handleStatsz)
	f.mux.Handle("GET /metrics", f.reg.Handler())
	f.registerMetrics()
	return f
}

// Start begins health probing until ctx is cancelled.
func (f *Front) Start(ctx context.Context) { f.prober.Start(ctx) }

// ServeHTTP implements http.Handler.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.mux.ServeHTTP(w, r) }

func (f *Front) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if len(f.prober.Healthy()) == 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "no healthy members"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// FrontStats is the front's /statsz document.
type FrontStats struct {
	Requests      int64          `json:"requests"`
	InFlight      int64          `json:"inFlight"`
	Rejected      int64          `json:"rejected"`
	NoMembers     int64          `json:"noMembers"`
	DigestFails   int64          `json:"digestFallbacks"`
	Members       []MemberStatus `json:"members"`
	PerPeer       map[string]any `json:"perPeer"`
	UptimeSeconds int64          `json:"uptimeSeconds"`
}

func (f *Front) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	per := make(map[string]any, len(f.peers))
	for m, p := range f.peers {
		per[m] = map[string]any{
			"routed":      p.routed.Load(),
			"errors":      p.errors.Load(),
			"redirects":   p.redirects.Load(),
			"ewmaSeconds": p.ewma(),
		}
	}
	writeJSON(w, http.StatusOK, FrontStats{
		Requests:      f.requests.Load(),
		InFlight:      f.inFlight.Load(),
		Rejected:      f.rejected.Load(),
		NoMembers:     f.noMembers.Load(),
		DigestFails:   f.digestFails.Load(),
		Members:       f.prober.Snapshot(),
		PerPeer:       per,
		UptimeSeconds: int64(time.Since(f.start).Seconds()),
	})
}

// handleSolve routes one solve request by its content digest.
func (f *Front) handleSolve(w http.ResponseWriter, r *http.Request, kind string) {
	body, ok := f.admit(w, r)
	if !ok {
		return
	}
	defer f.inFlight.Add(-1)
	target := f.ownerFor(kind, body)
	f.proxy(w, r, body, target)
}

// handleDelta routes by the delta's BASE digest: the revision lineage
// lives on the base's owner, so that is where the warm start is.
func (f *Front) handleDelta(w http.ResponseWriter, r *http.Request) {
	body, ok := f.admit(w, r)
	if !ok {
		return
	}
	defer f.inFlight.Add(-1)
	var probe struct {
		Instance *struct {
			Delta *struct {
				Base string `json:"base"`
			} `json:"delta"`
		} `json:"instance"`
	}
	target := ""
	if json.Unmarshal(body, &probe) == nil && probe.Instance != nil && probe.Instance.Delta != nil {
		if key, err := store.ParseKey(probe.Instance.Delta.Base); err == nil {
			if owner, ok := f.ring.OwnerName(key); ok {
				target = owner
			}
		}
	}
	if target == "" {
		// Malformed delta: any replica produces the canonical 4xx.
		f.digestFails.Add(1)
		target = f.nextRR()
	}
	f.proxy(w, r, body, target)
}

// handleRoundRobin routes requests with no single digest (/v1/batch).
func (f *Front) handleRoundRobin(w http.ResponseWriter, r *http.Request) {
	body, ok := f.admit(w, r)
	if !ok {
		return
	}
	defer f.inFlight.Add(-1)
	f.proxy(w, r, body, f.nextRR())
}

// admit reads the body and applies the front's own admission gate.
// On acceptance inFlight has been incremented; the caller must
// decrement it.
func (f *Front) admit(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	f.requests.Add(1)
	if f.inFlight.Add(1) > int64(f.cfg.MaxInFlight) {
		f.inFlight.Add(-1)
		f.rejected.Add(1)
		w.Header().Set("Content-Type", "application/json")
		// The hint is live capacity, not a constant: one round on the
		// slowest healthy replica is the pessimistic wait for a slot.
		w.Header().Set("Retry-After", strconv.Itoa(f.retryAfterSeconds()))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"front: too many requests in flight"}`)
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		f.inFlight.Add(-1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "front: reading request: " + err.Error()})
		return nil, false
	}
	return body, true
}

// retryAfterSeconds derives the front's own 429 hint from the slowest
// healthy replica's latency EWMA, clamped to [1, 30] like the
// replicas' own Retry-After.
func (f *Front) retryAfterSeconds() int {
	slowest := 0.0
	for _, m := range f.prober.Healthy() {
		if p := f.peers[m]; p != nil {
			if e := p.ewma(); e > slowest {
				slowest = e
			}
		}
	}
	secs := int(math.Ceil(slowest))
	return min(max(secs, 1), 30)
}

// ownerFor computes the request's content digest and returns its
// owner; digest failures (malformed requests) fall back to round-robin
// so the owning replica produces the canonical error response.
func (f *Front) ownerFor(kind string, body []byte) string {
	var req serve.Request
	if err := json.Unmarshal(body, &req); err == nil {
		if key, derr := serve.ContentDigest(kind, &req, f.cfg.DefaultEngine); derr == nil {
			if owner, ok := f.ring.OwnerName(key); ok {
				return owner
			}
		}
	}
	f.digestFails.Add(1)
	return f.nextRR()
}

// nextRR returns the next healthy member round-robin ("" when none).
func (f *Front) nextRR() string {
	healthy := f.prober.Healthy()
	if len(healthy) == 0 {
		return ""
	}
	return healthy[int(f.rr.Add(1)-1)%len(healthy)]
}

// proxy sends body to target and relays the response verbatim. A
// transport error demotes the target and retries on the next choice,
// up to the member count, so one dead replica costs a re-route rather
// than an error.
func (f *Front) proxy(w http.ResponseWriter, r *http.Request, body []byte, target string) {
	attempts := len(f.cfg.Members)
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if target == "" {
			f.noMembers.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "front: no healthy members"})
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, target+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "front: " + err.Error()})
			return
		}
		req.Header.Set("Content-Type", "application/json")
		start := time.Now()
		resp, err := f.cfg.ProxyClient.Do(req)
		ps := f.peers[target]
		if err != nil {
			if r.Context().Err() != nil {
				// The client went away; nothing to relay and no verdict
				// on the replica's health.
				return
			}
			if ps != nil {
				ps.errors.Add(1)
			}
			f.prober.MarkUnhealthy(target)
			// Re-resolve: the ring no longer contains the dead member,
			// so the digest's new owner (or the next RR choice) differs.
			target = f.nextRR()
			continue
		}
		if ps != nil {
			ps.routed.Add(1)
			ps.observe(time.Since(start).Seconds())
			if resp.StatusCode == http.StatusTemporaryRedirect {
				ps.redirects.Add(1)
			}
		}
		f.relay(w, resp)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "front: all members unreachable"})
}

// relay copies the replica's response to the client verbatim: status,
// body bytes, Content-Type, Location (drain redirects), Retry-After,
// and every X-Psdpd-* header — a 429's backpressure hints and a 200's
// digest/iteration headers survive the hop unchanged.
func (f *Front) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for name, vals := range resp.Header {
		if name == "Content-Type" || name == "Retry-After" || name == "Location" ||
			strings.HasPrefix(name, "X-Psdpd-") {
			h[name] = vals
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (f *Front) registerMetrics() {
	fc := func(name, help string, fn func() int64, labels ...obs.Label) {
		f.reg.CounterFunc(name, help, func() float64 { return float64(fn()) }, labels...)
	}
	fc("psdpfront_requests_total", "Requests received by the front.", f.requests.Load)
	fc("psdpfront_rejected_total", "Requests 429d by the front's own admission gate.", f.rejected.Load)
	fc("psdpfront_no_members_total", "Requests failed for lack of a healthy member.", f.noMembers.Load)
	fc("psdpfront_digest_fallbacks_total", "Requests routed round-robin because no digest could be computed.", f.digestFails.Load)
	f.reg.GaugeFunc("psdpfront_in_flight", "Requests currently proxied.",
		func() float64 { return float64(f.inFlight.Load()) })
	f.reg.GaugeFunc("psdpfront_members_healthy", "Members currently healthy.",
		func() float64 { return float64(len(f.prober.Healthy())) })
	for _, m := range f.cfg.Members {
		p := f.peers[m]
		lbl := obs.L("peer", m)
		fc("psdpfront_routed_total", "Requests routed to each replica.", p.routed.Load, lbl)
		fc("psdpfront_route_errors_total", "Transport errors per replica.", p.errors.Load, lbl)
		fc("psdpfront_peer_redirects_total", "Drain redirects (307) observed per replica.", p.redirects.Load, lbl)
		f.reg.GaugeFunc("psdpfront_peer_ewma_seconds", "EWMA of proxied request latency per replica.",
			p.ewma, lbl)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

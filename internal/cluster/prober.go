package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Prober health-gates a static member list: every member starts
// healthy (static membership is the boot state), a periodic GET
// /readyz demotes members that answer non-200 or fail transport, and
// MarkUnhealthy demotes immediately when a peer fetch or proxied
// request hits a transport error — the prober's next round re-promotes
// the member once /readyz answers 200 again.
//
// Whenever the healthy set changes, onChange receives the new sorted
// list. Callers feed it to placement.Ring.Update, which is the whole
// membership protocol: placement is a pure function of the healthy
// list, so every node that observes the same list agrees on ownership.
type Prober struct {
	members  []string
	interval time.Duration
	client   *http.Client
	onChange func(healthy []string)

	mu        sync.Mutex
	healthy   map[string]bool
	lastProbe map[string]string
	lastErr   map[string]string
}

// NewProber builds a prober over members (all initially healthy).
// interval <= 0 defaults to 500ms; client nil defaults to a 2s-timeout
// client. onChange, if non-nil, fires once immediately with the full
// list and then on every healthy-set transition.
func NewProber(members []string, interval time.Duration, client *http.Client, onChange func([]string)) *Prober {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if client == nil {
		client = defaultClient(2 * time.Second)
	}
	p := &Prober{
		members:   append([]string(nil), members...),
		interval:  interval,
		client:    client,
		onChange:  onChange,
		healthy:   make(map[string]bool, len(members)),
		lastProbe: make(map[string]string, len(members)),
		lastErr:   make(map[string]string, len(members)),
	}
	for _, m := range p.members {
		p.healthy[m] = true
	}
	if onChange != nil {
		onChange(p.Healthy())
	}
	return p
}

// Start runs the probe loop until ctx is cancelled. It probes once
// immediately so a replica that was down at boot is dropped before the
// first interval elapses.
func (p *Prober) Start(ctx context.Context) {
	go func() {
		p.ProbeNow(ctx)
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeNow(ctx)
			}
		}
	}()
}

// ProbeNow probes every member once, concurrently, and applies the
// results as one transition.
func (p *Prober) ProbeNow(ctx context.Context) {
	type outcome struct {
		member string
		ok     bool
		errMsg string
	}
	results := make(chan outcome, len(p.members))
	for _, m := range p.members {
		go func(m string) {
			ok, errMsg := p.probeOne(ctx, m)
			results <- outcome{member: m, ok: ok, errMsg: errMsg}
		}(m)
	}
	now := nowRFC3339()
	changed := false
	p.mu.Lock()
	for range p.members {
		o := <-results
		p.lastProbe[o.member] = now
		p.lastErr[o.member] = o.errMsg
		if p.healthy[o.member] != o.ok {
			p.healthy[o.member] = o.ok
			changed = true
		}
	}
	p.mu.Unlock()
	if changed {
		p.fireChange()
	}
}

func (p *Prober) probeOne(ctx context.Context, member string) (bool, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, member+"/readyz", nil)
	if err != nil {
		return false, err.Error()
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false, err.Error()
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, resp.Status
	}
	return true, ""
}

// MarkUnhealthy demotes member immediately (transport-error fast
// path). The member rejoins at the next successful probe.
func (p *Prober) MarkUnhealthy(member string) {
	p.mu.Lock()
	was, known := p.healthy[member]
	if known {
		p.healthy[member] = false
		p.lastErr[member] = "marked unhealthy after transport error"
	}
	p.mu.Unlock()
	if known && was {
		p.fireChange()
	}
}

func (p *Prober) fireChange() {
	if p.onChange != nil {
		p.onChange(p.Healthy())
	}
}

// Healthy returns the sorted healthy member list.
func (p *Prober) Healthy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.members))
	for _, m := range p.members {
		if p.healthy[m] {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every member's status in member-list order.
func (p *Prober) Snapshot() []MemberStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MemberStatus, len(p.members))
	for i, m := range p.members {
		out[i] = MemberStatus{
			URL:       m,
			Healthy:   p.healthy[m],
			LastProbe: p.lastProbe[m],
			LastError: p.lastErr[m],
		}
	}
	return out
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instio"
	"repro/internal/serve"
	"repro/internal/store"
)

// handlerSwap lets a listener exist before its handler does: replica
// URLs must be known (they are the member list) before the serve
// servers that depend on that list can be built.
type handlerSwap struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *handlerSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "booting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testReplica struct {
	url string
	ts  *httptest.Server
	srv *serve.Server
	rep *Replica
}

type testFleet struct {
	urls     []string
	replicas []*testReplica
}

// bootFleet starts n psdpd replicas in cluster mode over real HTTP
// listeners, exactly as cmd/psdpd -cluster wires them. mut, if non-nil,
// adjusts each replica's serve.Config before boot.
func bootFleet(t *testing.T, n int, mut func(i int, cfg *serve.Config)) *testFleet {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	fl := &testFleet{}
	swaps := make([]*handlerSwap, n)
	for i := 0; i < n; i++ {
		swaps[i] = &handlerSwap{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		fl.replicas = append(fl.replicas, &testReplica{url: ts.URL, ts: ts})
		fl.urls = append(fl.urls, ts.URL)
	}
	for i, r := range fl.replicas {
		rep := NewReplica(ReplicaConfig{
			Self:           r.url,
			Members:        fl.urls,
			ProbeInterval:  100 * time.Millisecond,
			LocalResults:   store.NewResultLRU(256),
			LocalRevisions: store.NewRevisionLRU(64),
		})
		cfg := serve.Config{
			Workers:         2,
			Results:         rep.Results,
			Revisions:       rep.Revisions,
			Placement:       rep.Ring,
			SelfURL:         r.url,
			ClusterInfo:     rep.Info,
			RegisterMetrics: rep.RegisterMetrics,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		srv := serve.New(cfg)
		t.Cleanup(srv.Close)
		swaps[i].set(srv)
		rep.Start(ctx)
		r.srv, r.rep = srv, rep
	}
	return fl
}

// bootFront starts a Front over the fleet on its own listener.
func bootFront(t *testing.T, fl *testFleet, cfg FrontConfig) (*Front, *httptest.Server) {
	t.Helper()
	if cfg.Members == nil {
		cfg.Members = fl.urls
	}
	f := NewFront(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	f.Start(ctx)
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return f, ts
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	resp, body, err := tryPostJSON(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func tryPostJSON(url string, req any) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, nil, err
	}
	return resp, bytes.TrimRight(buf.Bytes(), "\n"), nil
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

func denseInstance(t *testing.T, n, m int, seed uint64) *instio.Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	inst := gen.RandomDense(n, m, max(2, m/4), rng)
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	return instio.FromDenseSet(set)
}

func factoredInstance(t *testing.T, n, m int, seed uint64) *instio.Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	inst, err := gen.RandomFactored(n, m, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewFactoredSet(inst.Q)
	if err != nil {
		t.Fatal(err)
	}
	return instio.FromFactoredSet(set)
}

func sparseInstance(t *testing.T, n, m int, seed uint64) *instio.Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	g := graph.ErdosRenyi(m, 6.0/float64(m), rng)
	if g.M() < n {
		t.Fatalf("graph too sparse: %d edges < %d groups", g.M(), n)
	}
	inst, err := gen.SparseGroupedLaplacians(g, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewSparseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	return instio.FromSparseSet(set)
}

// requestOwnedBy returns a decision request (varying the seed) whose
// content digest is owned by fl.replicas[idx].
func requestOwnedBy(t *testing.T, fl *testFleet, idx int, doc *instio.Instance, base serve.Request) serve.Request {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		req := base
		req.Instance = doc
		req.Seed = seed
		key, err := serve.ContentDigest("decision", &req, core.EngineMMW)
		if err != nil {
			t.Fatal(err)
		}
		if owner, ok := fl.replicas[idx].rep.Ring.OwnerName(key); ok && owner == fl.urls[idx] {
			return req
		}
	}
	t.Fatal("no seed under 10000 lands on the wanted replica")
	return serve.Request{}
}

// The clustering contract: a response served through the front is
// byte-identical to the same request served by a lone single-node
// psdpd — across all three instance representations and both engines,
// with the digest headers agreeing too.
func TestFrontByteIdenticalToSingleNode(t *testing.T) {
	single := serve.New(serve.Config{Workers: 2})
	t.Cleanup(single.Close)
	ss := httptest.NewServer(single)
	t.Cleanup(ss.Close)

	fl := bootFleet(t, 3, nil)
	_, fts := bootFront(t, fl, FrontConfig{})

	dense := denseInstance(t, 8, 10, 11)
	fac := factoredInstance(t, 10, 16, 21)
	sp := sparseInstance(t, 6, 18, 41)
	cases := []struct {
		name, path string
		req        serve.Request
	}{
		{"dense-mmw", "/v1/decision", serve.Request{Instance: dense, Eps: 0.25, Seed: 5, Scale: 0.5, Engine: "mmw"}},
		{"dense-alo", "/v1/decision", serve.Request{Instance: dense, Eps: 0.25, Seed: 5, Scale: 0.5, Engine: "alo"}},
		{"dense-default-engine", "/v1/decision", serve.Request{Instance: dense, Eps: 0.25, Seed: 6, Scale: 0.5}},
		{"factored-mmw", "/v1/decision", serve.Request{Instance: fac, Eps: 0.3, Seed: 7, Scale: 0.1, SketchEps: 0.4, Engine: "mmw"}},
		{"factored-alo", "/v1/decision", serve.Request{Instance: fac, Eps: 0.3, Seed: 7, Scale: 0.1, SketchEps: 0.4, Engine: "alo"}},
		{"sparse-mmw", "/v1/decision", serve.Request{Instance: sp, Eps: 0.3, Seed: 13, Scale: 0.05, Oracle: "exact", MaxIter: 40, Engine: "mmw"}},
		{"sparse-alo", "/v1/decision", serve.Request{Instance: sp, Eps: 0.3, Seed: 13, Scale: 0.05, Oracle: "exact", MaxIter: 40, Engine: "alo"}},
		{"maximize", "/v1/maximize", serve.Request{Instance: dense, Eps: 0.25, Seed: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantResp, wantBody := postJSON(t, ss.URL+tc.path, &tc.req)
			if wantResp.StatusCode != http.StatusOK {
				t.Fatalf("single node: status %d: %s", wantResp.StatusCode, wantBody)
			}
			gotResp, gotBody := postJSON(t, fts.URL+tc.path, &tc.req)
			if gotResp.StatusCode != http.StatusOK {
				t.Fatalf("front: status %d: %s", gotResp.StatusCode, gotBody)
			}
			if !bytes.Equal(gotBody, wantBody) {
				t.Fatalf("front bytes differ from single node:\n%s\nvs\n%s", gotBody, wantBody)
			}
			wantDigest := wantResp.Header.Get("X-Psdpd-Digest")
			if wantDigest == "" {
				t.Fatal("single node returned no digest header")
			}
			if got := gotResp.Header.Get("X-Psdpd-Digest"); got != wantDigest {
				t.Fatalf("digest through front %q, want %q", got, wantDigest)
			}
			if got := gotResp.Header.Get("X-Psdpd-Cache"); got != "miss" {
				t.Fatalf("cache state through front %q, want miss", got)
			}
		})
	}
}

// Routing is digest-stable: each distinct request is solved exactly
// once fleet-wide, and a repeat lands on the same replica as a cache
// hit relayed through the front.
func TestFrontRoutesByDigestStably(t *testing.T) {
	fl := bootFleet(t, 3, nil)
	front, fts := bootFront(t, fl, FrontConfig{})
	doc := denseInstance(t, 6, 8, 41)

	const n = 12
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		req := serve.Request{Instance: doc, Eps: 0.25, Seed: uint64(100 + i)}
		resp, body := postJSON(t, fts.URL+"/v1/decision", &req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Psdpd-Cache"); got != "miss" {
			t.Fatalf("request %d cache state %q, want miss", i, got)
		}
		bodies[i] = body
	}
	var total int64
	solvers := 0
	for _, r := range fl.replicas {
		if s := r.srv.Stats().Solves; s > 0 {
			total += s
			solvers++
		}
	}
	if total != n {
		t.Fatalf("fleet solved %d times for %d distinct requests, want exactly %d", total, n, n)
	}
	if solvers < 2 {
		t.Fatalf("all %d digests landed on one replica; placement is not spreading", n)
	}

	for i := 0; i < n; i++ {
		req := serve.Request{Instance: doc, Eps: 0.25, Seed: uint64(100 + i)}
		resp, body := postJSON(t, fts.URL+"/v1/decision", &req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Psdpd-Cache"); got != "hit" {
			t.Fatalf("repeat %d cache state %q, want hit (stable routing)", i, got)
		}
		if !bytes.Equal(body, bodies[i]) {
			t.Fatalf("repeat %d returned different bytes", i)
		}
	}
	total = 0
	for _, r := range fl.replicas {
		total += r.srv.Stats().Solves
	}
	if total != n {
		t.Fatalf("repeats re-solved: %d total solves, want %d", total, n)
	}
	if got := front.requests.Load(); got != 2*n {
		t.Fatalf("front counted %d requests, want %d", got, 2*n)
	}
}

// A request landing off-owner asks the digest's owner before solving:
// the off-owner replica returns the owner's exact bytes without running
// its own solver, then serves later repeats from its own cache.
func TestOffOwnerRequestFetchesFromOwner(t *testing.T) {
	fl := bootFleet(t, 2, nil)
	doc := denseInstance(t, 6, 8, 51)
	req := requestOwnedBy(t, fl, 0, doc, serve.Request{Eps: 0.25})

	resp0, body0 := postJSON(t, fl.urls[0]+"/v1/decision", &req)
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("owner solve: status %d: %s", resp0.StatusCode, body0)
	}

	resp1, body1 := postJSON(t, fl.urls[1]+"/v1/decision", &req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("off-owner request: status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Psdpd-Cache"); got != "hit" {
		t.Fatalf("off-owner cache state %q, want hit via peer fetch", got)
	}
	if !bytes.Equal(body1, body0) {
		t.Fatalf("peer-fetched bytes differ from the owner's:\n%s\nvs\n%s", body1, body0)
	}
	if got := fl.replicas[1].srv.Stats().Solves; got != 0 {
		t.Fatalf("off-owner replica solved %d times, want 0 (peer fetch must answer)", got)
	}
	attempts, hits, _, errs := fl.replicas[1].rep.Results.FetchCounters()
	if attempts != 1 || hits != 1 || errs != 0 {
		t.Fatalf("fetch counters (attempts=%d hits=%d errors=%d), want (1, 1, 0)", attempts, hits, errs)
	}

	// The fetched bytes were adopted locally: a repeat is a local hit,
	// no second peer round-trip.
	resp2, body2 := postJSON(t, fl.urls[1]+"/v1/decision", &req)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body2, body0) {
		t.Fatalf("repeat after adoption: status %d, bytes match %v", resp2.StatusCode, bytes.Equal(body2, body0))
	}
	if a, _, _, _ := fl.replicas[1].rep.Results.FetchCounters(); a != 1 {
		t.Fatalf("repeat re-fetched from the peer (%d attempts), want local hit", a)
	}
}

// A delta landing off-owner fetches the base's revision from the
// owner and warm-starts from it, producing bytes identical to a
// single-node delta of the same lineage.
func TestDeltaOffOwnerFetchesRevisionFromOwner(t *testing.T) {
	single := serve.New(serve.Config{Workers: 2})
	t.Cleanup(single.Close)
	ss := httptest.NewServer(single)
	t.Cleanup(ss.Close)

	fl := bootFleet(t, 2, nil)
	doc := sparseInstance(t, 6, 14, 91)
	base := requestOwnedBy(t, fl, 0, doc, serve.Request{Eps: 0.25, Scale: 0.2})

	resp, baseBody := postJSON(t, fl.urls[0]+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve: status %d: %s", resp.StatusCode, baseBody)
	}
	d0 := resp.Header.Get("X-Psdpd-Digest")
	if d0 == "" {
		t.Fatal("base solve returned no digest header")
	}

	delta := serve.Request{
		Instance: &instio.Instance{Delta: &instio.Delta{Base: d0, Scale: []instio.DeltaScale{{I: 1, By: 1.03}}}},
		Eps:      base.Eps, Seed: base.Seed, Scale: base.Scale,
	}
	dresp, dbody := postJSON(t, fl.urls[1]+"/v1/delta", &delta)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("off-owner delta: status %d: %s", dresp.StatusCode, dbody)
	}
	if _, hits, _, _ := fl.replicas[1].rep.Revisions.FetchCounters(); hits != 1 {
		t.Fatalf("revision fetch hits = %d, want 1 (warm state must come from the owner)", hits)
	}

	// Same lineage on a single node: base, then the identical delta.
	sresp, sbody := postJSON(t, ss.URL+"/v1/decision", &base)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("single-node base: status %d: %s", sresp.StatusCode, sbody)
	}
	sdresp, sdbody := postJSON(t, ss.URL+"/v1/delta", &delta)
	if sdresp.StatusCode != http.StatusOK {
		t.Fatalf("single-node delta: status %d: %s", sdresp.StatusCode, sdbody)
	}
	if !bytes.Equal(dbody, sdbody) {
		t.Fatalf("off-owner delta bytes differ from single node:\n%s\nvs\n%s", dbody, sdbody)
	}
}

// The front routes a delta to the BASE digest's owner: that is where
// the revision lineage lives.
func TestFrontRoutesDeltaToBaseOwner(t *testing.T) {
	fl := bootFleet(t, 3, nil)
	_, fts := bootFront(t, fl, FrontConfig{})
	doc := sparseInstance(t, 6, 14, 93)
	base := serve.Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.2}

	resp, body := postJSON(t, fts.URL+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: status %d: %s", resp.StatusCode, body)
	}
	d0 := resp.Header.Get("X-Psdpd-Digest")
	owner := -1
	for i, r := range fl.replicas {
		if r.srv.Stats().Solves == 1 {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatal("no replica solved the base")
	}

	delta := serve.Request{
		Instance: &instio.Instance{Delta: &instio.Delta{Base: d0, Scale: []instio.DeltaScale{{I: 1, By: 1.03}}}},
		Eps:      0.25, Seed: 5, Scale: 0.2,
	}
	dresp, dbody := postJSON(t, fts.URL+"/v1/delta", &delta)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d: %s", dresp.StatusCode, dbody)
	}
	for i, r := range fl.replicas {
		want := int64(0)
		if i == owner {
			want = 1
		}
		if got := r.srv.Stats().DeltaRequests; got != want {
			t.Fatalf("replica %d saw %d delta requests, want %d (delta must follow its base)", i, got, want)
		}
	}
}

// Killing a replica costs a re-route, not an error: the same request
// answers 200 with byte-identical content from a survivor, both during
// the transport-error window and after the prober drops the member.
func TestFrontReroutesAfterReplicaDeath(t *testing.T) {
	fl := bootFleet(t, 3, nil)
	front, fts := bootFront(t, fl, FrontConfig{ProbeInterval: 50 * time.Millisecond})
	doc := denseInstance(t, 6, 8, 61)
	req := serve.Request{Instance: doc, Eps: 0.25, Seed: 9}

	resp, body := postJSON(t, fts.URL+"/v1/decision", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	victim := -1
	for i, r := range fl.replicas {
		if r.srv.Stats().Solves == 1 {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatal("no replica solved the request")
	}
	fl.replicas[victim].ts.Close()

	// Immediately after the kill the front still believes the victim is
	// healthy; the transport error must demote it and retry in-request.
	resp2, body2 := postJSON(t, fts.URL+"/v1/decision", &req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-kill request: status %d: %s (must re-route, not error)", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body2, body) {
		t.Fatal("re-routed response differs from the original bytes")
	}
	if got := front.peers[fl.urls[victim]].errors.Load(); got < 1 {
		t.Fatalf("victim's route-error count = %d, want >= 1", got)
	}

	// Once the prober notices, the ring re-owns the digest and requests
	// flow without the failed first hop.
	waitFor(t, func() bool { return len(front.prober.Healthy()) == 2 })
	resp3, body3 := postJSON(t, fts.URL+"/v1/decision", &req)
	if resp3.StatusCode != http.StatusOK || !bytes.Equal(body3, body) {
		t.Fatalf("post-reconverge request: status %d, bytes match %v", resp3.StatusCode, bytes.Equal(body3, body))
	}
}

// Drain loses nothing: requests admitted before SIGTERM finish 200,
// later arrivals are 307-redirected to a peer (which a standard client
// follows, re-POSTing the body), and /readyz flips to 503 so the fleet
// drops the member.
func TestDrainRedirectsAndLosesNothing(t *testing.T) {
	fl := bootFleet(t, 2, func(i int, cfg *serve.Config) {
		cfg.SolveFloor = 300 * time.Millisecond
	})
	a, b := fl.replicas[0], fl.replicas[1]
	doc := denseInstance(t, 6, 8, 71)

	type res struct {
		status int
		err    error
	}
	inflight := make(chan res, 3)
	for i := 0; i < 3; i++ {
		go func(seed uint64) {
			req := serve.Request{Instance: doc, Eps: 0.25, Seed: seed}
			resp, _, err := tryPostJSON(a.url+"/v1/decision", &req)
			if err != nil {
				inflight <- res{err: err}
				return
			}
			inflight <- res{status: resp.StatusCode}
		}(uint64(100 + i))
	}
	waitFor(t, func() bool { return a.srv.Stats().InFlight == 3 })

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- a.srv.Drain(ctx)
	}()
	waitFor(t, a.srv.Draining)

	// A late request sees the 307 pointing at the peer...
	late := serve.Request{Instance: doc, Eps: 0.25, Seed: 999}
	lateBody, _ := json.Marshal(&late)
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := noRedirect.Post(a.url+"/v1/decision", "application/json", bytes.NewReader(lateBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("late request: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != b.url+"/v1/decision" {
		t.Fatalf("redirect Location %q, want %q", loc, b.url+"/v1/decision")
	}

	// ...and a standard client follows it end to end: the peer solves.
	resp2, body2 := postJSON(t, a.url+"/v1/decision", &late)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("followed redirect: status %d: %s", resp2.StatusCode, body2)
	}
	if got := b.srv.Stats().Solves; got < 1 {
		t.Fatalf("peer solves = %d, want >= 1 (redirected work must land there)", got)
	}

	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < 3; i++ {
		r := <-inflight
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request finished %d during drain, want 200 (zero loss)", r.status)
		}
	}

	rz, err := http.Get(a.url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status %d, want 503", rz.StatusCode)
	}
	st := a.srv.Stats()
	if !st.Draining || st.DrainRedirects < 2 {
		t.Fatalf("stats draining=%v redirects=%d, want true and >= 2", st.Draining, st.DrainRedirects)
	}
}

// A replica's 429 crosses the front verbatim: same status, the
// replica's own Retry-After, and the replica's error body — the client
// cannot tell the front from the replica.
func TestFrontPropagatesReplica429(t *testing.T) {
	fl := bootFleet(t, 1, func(i int, cfg *serve.Config) {
		cfg.Workers = 1
		cfg.Shards = 1
		cfg.QueueDepth = 1
		cfg.SolveFloor = 500 * time.Millisecond
	})
	_, fts := bootFront(t, fl, FrontConfig{})
	doc := denseInstance(t, 6, 8, 81)

	// One request on the worker, one in the depth-1 queue.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(seed uint64) {
			req := serve.Request{Instance: doc, Eps: 0.25, Seed: seed}
			tryPostJSON(fts.URL+"/v1/decision", &req)
			done <- struct{}{}
		}(uint64(10 + i))
	}
	waitFor(t, func() bool {
		st := fl.replicas[0].srv.Stats()
		return st.InFlight >= 2 && st.QueueDepth >= 1
	})

	req := serve.Request{Instance: doc, Eps: 0.25, Seed: 99}
	resp, body := postJSON(t, fts.URL+"/v1/decision", &req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want the replica's 429 relayed", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q did not survive the front", resp.Header.Get("Retry-After"))
	}
	if bytes.Contains(body, []byte("front:")) {
		t.Fatalf("429 body is the front's own, want the replica's relayed verbatim: %s", body)
	}
	<-done
	<-done
}

package cluster

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// The front's own admission 429 derives Retry-After from the slowest
// healthy peer's latency EWMA — live capacity, not a constant — with
// the same [1, 30] clamp the replicas use.
func TestFrontAdmissionRetryAfterFromEWMA(t *testing.T) {
	f := NewFront(FrontConfig{Members: []string{"http://peer-a", "http://peer-b"}, MaxInFlight: 1})

	// Cold front (no proxied request observed yet): floor of 1s, never
	// 0, which clients would read as "retry immediately".
	if got := f.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold Retry-After = %d, want 1", got)
	}

	f.peers["http://peer-a"].observe(2.2)
	f.peers["http://peer-b"].observe(7.2)
	if got := f.retryAfterSeconds(); got != 8 {
		t.Fatalf("Retry-After = %d, want ceil(7.2) = 8 (slowest healthy peer)", got)
	}

	// An unhealthy peer's latency no longer counts: the hint tracks the
	// peers a retry could actually land on.
	f.prober.MarkUnhealthy("http://peer-b")
	if got := f.retryAfterSeconds(); got != 3 {
		t.Fatalf("Retry-After = %d, want ceil(2.2) = 3 after the slow peer left", got)
	}

	// Pathological latency clamps at 30s.
	f.peers["http://peer-a"].ewmaBits.Store(math.Float64bits(99.0))
	if got := f.retryAfterSeconds(); got != 30 {
		t.Fatalf("Retry-After = %d, want clamp 30", got)
	}

	// End to end through the handler: with the single slot taken, the
	// next request is the front's own 429 carrying that live hint.
	f.inFlight.Add(1)
	defer f.inFlight.Add(-1)
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/decision", strings.NewReader("{}"))
	f.ServeHTTP(rr, req)
	if rr.Code != 429 {
		t.Fatalf("status %d, want 429 from the admission gate", rr.Code)
	}
	if got := rr.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After %q, want \"30\"", got)
	}
	if !bytes.Contains(rr.Body.Bytes(), []byte("front:")) {
		t.Fatalf("admission 429 body %q should identify the front", rr.Body.String())
	}
}

// The EWMA warms on the first observation and then moves with weight
// 1/8 — slow enough to ride out one outlier, fast enough to track a
// real slowdown.
func TestPeerStateEWMA(t *testing.T) {
	var p peerState
	if got := p.ewma(); got != 0 {
		t.Fatalf("unobserved ewma = %v, want 0", got)
	}
	p.observe(4.0)
	if got := p.ewma(); got != 4.0 {
		t.Fatalf("first observation ewma = %v, want 4.0 (no zero bias)", got)
	}
	p.observe(8.0)
	if got := p.ewma(); got != 4.5 {
		t.Fatalf("ewma after (4, 8) = %v, want 4.5", got)
	}
}

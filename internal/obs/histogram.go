package obs

import (
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency/size histogram. Everything is
// preallocated at registration — per-bucket atomic counts and the
// fully rendered per-bucket label strings — so Observe is lock-free
// and allocation-free: one linear scan over the (small, fixed) bucket
// bounds, one atomic add, one CAS loop for the sum.
type Histogram struct {
	upper  []float64 // finite upper bounds, strictly increasing
	counts []atomic.Uint64
	// counts[len(upper)] is the +Inf overflow bucket; the total count
	// is the sum over all buckets, maintained separately for O(1) reads.
	count   atomic.Uint64
	sumBits atomic.Uint64

	labels string
	// leLabels[i] is the pre-rendered label string of bucket i with the
	// le="..." pair merged in ({a="b",le="0.01"}); the last entry is the
	// +Inf bucket.
	leLabels []string
}

func newHistogram(buckets []float64, labels []Label) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one finite bucket bound")
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bucket bound %v must be finite", b))
		}
		if i > 0 && b <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram bucket bounds not strictly increasing at %v", b))
		}
	}
	h := &Histogram{
		upper:    append([]float64(nil), buckets...),
		counts:   make([]atomic.Uint64, len(buckets)+1),
		labels:   renderLabels(labels),
		leLabels: make([]string, len(buckets)+1),
	}
	for i := range h.leLabels {
		le := "+Inf"
		if i < len(buckets) {
			le = strconv.FormatFloat(buckets[i], 'g', -1, 64)
		}
		h.leLabels[i] = renderLabels(append(append([]Label(nil), labels...), Label{Key: "le", Value: le}))
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) labelKey() string { return h.labels }

func (h *Histogram) expose(w *writer, name string) {
	// A scrape races concurrent Observe calls by design; cumulative
	// bucket counts are each read once, so the exposed snapshot is
	// monotone even if slightly torn (Prometheus tolerates this — the
	// next scrape converges).
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		w.str(name)
		w.str("_bucket")
		w.str(h.leLabels[i])
		w.str(" ")
		w.u64(cum)
		w.str("\n")
	}
	w.str(name)
	w.str("_sum")
	w.str(h.labels)
	w.str(" ")
	w.f64(h.Sum())
	w.str("\n")
	w.str(name)
	w.str("_count")
	w.str(h.labels)
	w.str(" ")
	w.u64(cum)
	w.str("\n")
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and growing by factor — the standard shape for latency
// histograms (e.g. ExpBuckets(0.0001, 2, 16) spans 100µs to ~3.3s).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

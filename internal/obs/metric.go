package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer counter. The zero
// value is usable but unregistered; obtain one from Registry.Counter.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) labelKey() string { return c.labels }

func (c *Counter) expose(w *writer, name string) {
	w.str(name)
	w.str(c.labels)
	w.str(" ")
	w.u64(c.v.Load())
	w.str("\n")
}

// Gauge is a settable float gauge (stored as IEEE bits in one atomic
// word, so Set/Add/Value are lock-free).
type Gauge struct {
	bits   atomic.Uint64
	labels string
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds v (CAS loop).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) labelKey() string { return g.labels }

func (g *Gauge) expose(w *writer, name string) {
	w.str(name)
	w.str(g.labels)
	w.str(" ")
	w.f64(g.Value())
	w.str("\n")
}

// funcMetric samples fn at scrape time (CounterFunc / GaugeFunc): the
// bridge to counters that already live elsewhere as atomics.
type funcMetric struct {
	labels string
	fn     func() float64
}

func (f *funcMetric) labelKey() string { return f.labels }

func (f *funcMetric) expose(w *writer, name string) {
	w.str(name)
	w.str(f.labels)
	w.str(" ")
	w.f64(f.fn())
	w.str("\n")
}

package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// checkExposition is the test-side adapter over CheckExposition (the
// exported, error-returning line-format checker in check.go).
func checkExposition(t *testing.T, text string) {
	t.Helper()
	if err := CheckExposition(text); err != nil {
		t.Fatal(err)
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.", L("endpoint", "decision"))
	c.Add(3)
	g := r.Gauge("test_queue_depth", "Queue depth.")
	g.Set(2.5)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 12 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, L("kind", "solve"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{kind="solve",le="0.01"} 1
test_latency_seconds_bucket{kind="solve",le="0.1"} 2
test_latency_seconds_bucket{kind="solve",le="1"} 2
test_latency_seconds_bucket{kind="solve",le="+Inf"} 3
test_latency_seconds_sum{kind="solve"} 5.055
test_latency_seconds_count{kind="solve"} 3
# HELP test_queue_depth Queue depth.
# TYPE test_queue_depth gauge
test_queue_depth 2.5
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{endpoint="decision"} 3
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 12
`
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	checkExposition(t, got)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", "x", L("path", "a\"b\\c\nd"))
	c.Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped line %q not found in:\n%s", want, b.String())
	}
	checkExposition(t, b.String())
}

func TestHistogramSemantics(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	// Boundary values land in their bucket inclusively (le semantics).
	wantPerBucket := []uint64{2, 2, 1, 1}
	for i, want := range wantPerBucket {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 108 {
		t.Errorf("sum = %v, want 108", h.Sum())
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2)
	g.Add(-0.5)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 4, 4)
	want := []float64{0.001, 0.004, 0.016, 0.064}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x", L("a", "b"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "x", L("a", "b"))
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mix_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("mix_total", "x")
}

// The hot-path write operations must be allocation-free: this is the
// contract that lets the serve and solver layers observe every request
// and iteration without breaking their zero-alloc steady state.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "x", L("k", "v"))
	g := r.Gauge("alloc_gauge", "x")
	h := r.Histogram("alloc_seconds", "x", ExpBuckets(0.0001, 2, 16))
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.25)
		g.Add(0.5)
		h.Observe(0.01)
		h.Observe(123)
	}); allocs != 0 {
		t.Errorf("hot-path metric writes allocate %.2f per run, want 0", allocs)
	}
}

// Concurrent histogram writes from many goroutines must neither race
// (run under -race) nor lose observations.
func TestHistogramConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "x", []float64{0.001, 0.01, 0.1, 1})
	c := r.Counter("conc_total", "x")
	g := r.Gauge("conc_gauge", "x")
	const (
		workers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%7) * 0.005)
				c.Inc()
				g.Add(1)
			}
		}(w)
	}
	// Scrape concurrently with the writers: the exposition must stay
	// well-formed mid-flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			checkExposition(t, b.String())
		}
	}()
	wg.Wait()
	<-done

	if got := h.Count(); got != workers*perG {
		t.Errorf("histogram count = %d, want %d", got, workers*perG)
	}
	if got := c.Value(); got != workers*perG {
		t.Errorf("counter = %d, want %d", got, workers*perG)
	}
	if got := g.Value(); got != workers*perG {
		t.Errorf("gauge = %v, want %d", got, workers*perG)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, b.String())
}

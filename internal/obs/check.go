package obs

import (
	"fmt"
	"regexp"
	"strings"
)

// expositionLine matches one valid Prometheus text-format sample line:
// name{labels} value. The value accepts decimals, scientific notation,
// and the IEEE specials.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$`)

// CheckExposition validates every line of a rendered exposition: HELP
// and TYPE comments for each family in order, and well-formed sample
// lines. It is the minimal line-format checker shared by this package's
// golden tests, the serve-layer exposition test, and psdpbench's obs
// gate — deliberately not a full openmetrics parser, just enough to
// catch a malformed line before a real scraper does.
func CheckExposition(text string) error {
	sawType := map[string]string{}
	var current string
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			continue
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment %q", i+1, line)
			}
			name, typ := parts[2], parts[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				return fmt.Errorf("line %d: unknown metric type %q", i+1, typ)
			}
			if prev, ok := sawType[name]; ok && prev != typ {
				return fmt.Errorf("line %d: metric %q re-typed %s -> %s", i+1, name, prev, typ)
			}
			sawType[name] = typ
			current = name
		case strings.HasPrefix(line, "#"):
			return fmt.Errorf("line %d: unknown comment %q", i+1, line)
		default:
			if !expositionLine.MatchString(line) {
				return fmt.Errorf("line %d: malformed sample line %q", i+1, line)
			}
			name := line
			if j := strings.IndexAny(line, "{ "); j >= 0 {
				name = line[:j]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if current == "" || (!strings.HasPrefix(name, current) && !strings.HasPrefix(base, current)) {
				// Sample lines must follow their family's TYPE comment.
				if _, ok := sawType[name]; !ok && sawType[base] == "" {
					return fmt.Errorf("line %d: sample %q before its TYPE comment", i+1, name)
				}
			}
		}
	}
	return nil
}

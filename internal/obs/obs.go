// Package obs is a dependency-free, allocation-free metrics layer for
// the solve daemon: atomic counters and gauges, fixed-bucket latency
// histograms, and func-backed metrics that sample existing state at
// scrape time, exposed in the Prometheus text format (version 0.0.4).
//
// The design contract mirrors the solver's workspace discipline: every
// series is fully preallocated at registration (label strings rendered
// once, histogram bucket rows rendered once), so the hot-path write
// operations — Counter.Inc, Gauge.Set, Histogram.Observe — perform
// zero heap allocations and take no locks beyond their own atomics.
// The steady-state zero-allocation guarantee of the solve pipeline
// therefore survives with metrics enabled, and the regression tests
// pin it with testing.AllocsPerRun.
//
// Registration is not free (it allocates and takes the registry lock)
// and is meant to happen once at startup; registering the same
// (name, labels) series twice panics, as does a name reused with a
// different metric type — both are programmer errors that would
// silently corrupt the exposition.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key="value" pair attached to a series. Keys must match
// [a-zA-Z_][a-zA-Z0-9_]*; values are escaped at registration.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is anything that can write its exposition lines.
type series interface {
	expose(w *writer, name string)
	labelKey() string
}

// family groups every series registered under one metric name: the
// Prometheus format allows exactly one HELP/TYPE pair per name, with
// all label variants listed beneath it.
type family struct {
	name, help, typ string
	series          []series
	seen            map[string]bool
}

// Registry holds registered metrics and renders the exposition.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds s under name, enforcing the one-type-per-name and
// unique-labels invariants.
func (r *Registry) register(name, help, typ string, s series) {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, seen: make(map[string]bool)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	lk := s.labelKey()
	if f.seen[lk] {
		panic(fmt.Sprintf("obs: duplicate series %s%s", name, lk))
	}
	f.seen[lk] = true
	f.series = append(f.series, s)
}

// Counter registers a monotonically increasing integer counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{labels: renderLabels(labels)}
	r.register(name, help, "counter", c)
	return c
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the bridge for counters that already exist as atomics
// elsewhere (no double counting, no extra hot-path work).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "counter", &funcMetric{labels: renderLabels(labels), fn: fn})
}

// Gauge registers a settable float gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{labels: renderLabels(labels)}
	r.register(name, help, "gauge", g)
	return g
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", &funcMetric{labels: renderLabels(labels), fn: fn})
}

// Histogram registers a fixed-bucket histogram. buckets are the finite
// upper bounds in strictly increasing order (an +Inf bucket is always
// added); they are shared read-only, so one slice can serve many
// series. Observe is lock-free and allocation-free.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	h := newHistogram(buckets, labels)
	r.register(name, help, "histogram", h)
	return h
}

// WritePrometheus renders every registered metric in the text
// exposition format, families sorted by name for a stable scrape.
func (r *Registry) WritePrometheus(out io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	sort.Strings(names)
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.Unlock()

	w := &writer{buf: make([]byte, 0, 4096)}
	for _, f := range fams {
		w.str("# HELP ")
		w.str(f.name)
		w.str(" ")
		w.str(escapeHelp(f.help))
		w.str("\n# TYPE ")
		w.str(f.name)
		w.str(" ")
		w.str(f.typ)
		w.str("\n")
		for _, s := range f.series {
			s.expose(w, f.name)
		}
	}
	_, err := out.Write(w.buf)
	return err
}

// Handler returns an http.Handler serving the exposition (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// writer is a tiny append-only buffer with the numeric formatting the
// exposition needs.
type writer struct {
	buf []byte
}

func (w *writer) str(s string) { w.buf = append(w.buf, s...) }

func (w *writer) f64(v float64) { w.buf = appendFloat(w.buf, v) }

func (w *writer) u64(v uint64) { w.buf = strconv.AppendUint(w.buf, v, 10) }

// appendFloat formats a float the way Prometheus expects: shortest
// round-trip decimal, with the IEEE specials spelled +Inf/-Inf/NaN.
func appendFloat(buf []byte, v float64) []byte {
	switch {
	case v != v: // NaN
		return append(buf, "NaN"...)
	case v > maxFloat:
		return append(buf, "+Inf"...)
	case v < -maxFloat:
		return append(buf, "-Inf"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

const maxFloat = 1.7976931348623157e308

// renderLabels pre-renders a label set as the literal `{k="v",...}`
// byte string every exposition line reuses; empty label sets render as
// the empty string. Keys are validated, values escaped, order preserved
// as given (callers pass a fixed order, so the exposition is stable).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		mustValidLabelKey(l.Key)
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string (backslash and newline only; quotes
// are legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabelKey(key string) {
	if !validName(key) || strings.Contains(key, ":") {
		panic(fmt.Sprintf("obs: invalid label key %q", key))
	}
	if strings.HasPrefix(key, "__") {
		panic(fmt.Sprintf("obs: label key %q is reserved", key))
	}
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

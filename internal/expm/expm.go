// Package expm computes matrix exponentials, the primitive at the heart
// of Algorithm 3.1: every iteration needs exp(Ψ)•Aᵢ for all i, where
// Ψ = Σ xᵢAᵢ is PSD with ‖Ψ‖₂ ≤ (1+10ε)K (paper Lemma 3.2).
//
// Three evaluation strategies are provided, mirroring the paper:
//
//   - ExpSym / NormalizedExpSym: exact eigendecomposition-based
//     exponentials for the dense reference path. NormalizedExpSym works
//     with the shifted matrix exp(Ψ−λ_max I), which never overflows, and
//     returns the probability matrix P = exp(Ψ)/Tr[exp(Ψ)] directly —
//     all of Algorithm 3.1's tests are scale-free ratios.
//   - TaylorExpPSD: the truncated Taylor series of Lemma 4.2 (Arora–
//     Kale Lemma 6): degree k = max{e²κ, ln(2ε⁻¹)} gives the Loewner
//     sandwich (1−ε)exp(B) ≼ B̂ ≼ exp(B).
//   - ExpMV: applies exp(A) to a vector using segmented Taylor
//     evaluation with running log-scale normalization, the workhorse of
//     the factored bigDotExp path (Theorem 4.1). Cost: O(‖A‖·log(1/tol))
//     operator applications, each O(nnz) work.
package expm

import (
	"errors"
	"math"

	"repro/internal/eigen"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/work"
)

// ExpSym returns exp(a) for symmetric a via full eigendecomposition.
// It overflows for ‖a‖₂ ≳ 709; use NormalizedExpSym in solver loops.
func ExpSym(a *matrix.Dense) (*matrix.Dense, error) {
	dec, err := eigen.SymEigen(a)
	if err != nil {
		return nil, err
	}
	return dec.Apply(math.Exp), nil
}

// NormalizedExpSym returns the "probability matrix" of the MMW framework,
//
//	P = exp(a) / Tr[exp(a)],
//
// computed shift-invariantly as exp(a−λ_max I)/Tr[exp(a−λ_max I)], along
// with λ_max(a) and logTr = log Tr[exp(a)] = λ_max + log Tr[exp(a−λ_max I)].
// This never overflows regardless of ‖a‖₂.
func NormalizedExpSym(a *matrix.Dense) (p *matrix.Dense, lambdaMax, logTr float64, err error) {
	dst := matrix.New(a.R, a.C)
	lambdaMax, logTr, err = NormalizedExpSymInto(nil, a, &eigen.Decomposition{}, dst)
	if err != nil {
		return nil, 0, 0, err
	}
	return dst, lambdaMax, logTr, nil
}

// NormalizedExpSymInto is NormalizedExpSym with caller-managed storage:
// the probability matrix is written into dst and the eigendecomposition
// reuses dec across calls, so the dense oracle's per-iteration
// exponential allocates nothing once dec, dst, and the workspace are
// warm. dst must not alias a.
func NormalizedExpSymInto(ws *work.Workspace, a *matrix.Dense, dec *eigen.Decomposition, dst *matrix.Dense) (lambdaMax, logTr float64, err error) {
	if err := eigen.SymEigenInto(ws, a, dec); err != nil {
		return 0, 0, err
	}
	lambdaMax = dec.Values[0]
	// exp(Λ − λ_max I) computed inline rather than via Apply's function-
	// valued parameter: a closure capturing lambdaMax would heap-allocate
	// on every iteration.
	n := len(dec.Values)
	fl := ws.Vec(n)
	for j, lam := range dec.Values {
		fl[j] = math.Exp(lam - lambdaMax)
	}
	matrix.CongruenceDiagInto(dst, dec.Vectors, fl, nil)
	ws.PutVec(fl)
	tr := dst.Trace()
	if tr <= 0 || math.IsNaN(tr) {
		return 0, 0, errors.New("expm: degenerate trace in NormalizedExpSym")
	}
	matrix.Scale(dst, 1/tr, dst)
	return lambdaMax, lambdaMax + math.Log(tr), nil
}

// TaylorDegree returns the truncation degree of Lemma 4.2:
// k = max{⌈e²·κ⌉, ⌈ln(2/ε)⌉}, valid whenever ‖B‖₂ ≤ κ.
func TaylorDegree(kappa, eps float64) int {
	if kappa < 0 {
		kappa = 0
	}
	k1 := int(math.Ceil(math.E * math.E * kappa))
	k2 := 1
	if eps > 0 && eps < 2 {
		k2 = int(math.Ceil(math.Log(2 / eps)))
	}
	k := k1
	if k2 > k {
		k = k2
	}
	if k < 1 {
		k = 1
	}
	return k
}

// TaylorExpPSD evaluates B̂ = Σ_{0≤i<k} Bⁱ/i! for symmetric PSD B by
// Horner's scheme. Per Lemma 4.2, with k = TaylorDegree(κ, ε) and
// ‖B‖₂ ≤ κ this satisfies (1−ε)exp(B) ≼ B̂ ≼ exp(B).
// Cost: k dense multiplies (work O(k·m³)); the factored path avoids this
// via ExpMV, but the dense form is what Lemma 4.2 is stated for and is
// validated directly in experiment E5.
func TaylorExpPSD(b *matrix.Dense, k int) *matrix.Dense {
	return TaylorExpPSDWS(nil, b, k)
}

// TaylorExpPSDWS is TaylorExpPSD drawing its two Horner ping-pong
// matrices from ws: each multiply writes into the retired iterate
// instead of a fresh matrix, so a warm workspace makes the whole Horner
// chain allocation-free apart from the returned matrix.
func TaylorExpPSDWS(ws *work.Workspace, b *matrix.Dense, k int) *matrix.Dense {
	if !b.IsSquare() {
		panic("expm: TaylorExpPSD of non-square matrix")
	}
	if k < 1 {
		k = 1
	}
	n := b.R
	// Horner: p = I + B/(k-1)·(I + B/(k-2)·(...)). Every Horner iterate
	// is a polynomial in B, so each product B·p is symmetric and the
	// blocked symmetric kernel (half the multiply work, exact symmetry)
	// applies. p and q ping-pong: the product lands in the buffer the
	// previous iterate vacates.
	p := ws.Mat(n, n)
	q := ws.Mat(n, n)
	p.Zero()
	matrix.AddScaledIdentity(p, 1)
	for i := k - 1; i >= 1; i-- {
		matrix.SymMulABInto(q, b, p, nil)
		p, q = q, p
		matrix.Scale(p, 1/float64(i), p)
		matrix.AddScaledIdentity(p, 1)
	}
	ws.PutMat(q)
	return p
}

// expMVSegNorm is the per-segment norm budget for ExpMV's segmented
// Taylor evaluation: segments apply exp(A/s) with ‖A/s‖₂ ≤ expMVSegNorm,
// keeping the series short and the intermediate values well-scaled.
const expMVSegNorm = 8.0

// ExpMV computes w ≈ exp(A)·v for a symmetric operator A available as
// apply (out = A·in), with ‖A‖₂ ≤ normUB. The result is returned as a
// pair (w, logScale) with exp(A)·v ≈ e^{logScale}·w and ‖w‖₂ = O(1),
// so no overflow occurs even when ‖A‖₂·‖v‖ is astronomically large.
// tol is the relative truncation tolerance per segment (default 1e-12
// when tol <= 0).
//
// The evaluation splits exp(A) = (exp(A/s))^s with s = ⌈normUB/8⌉ and
// runs an adaptively truncated Taylor series per segment — the vector
// form of Lemma 4.2 with scaling, using O(normUB·log(1/tol)) applies.
func ExpMV(apply func(in, out []float64), v []float64, normUB, tol float64) (w []float64, logScale float64) {
	dst := make([]float64, len(v))
	logScale = ExpMVInto(dst, apply, v, normUB, tol, nil)
	return dst, logScale
}

// MVScratch is the reusable scratch of one ExpMV evaluation (three
// vectors: the running Taylor term, its successor, and the segment
// accumulator). The factored oracles keep one per sketch row so the
// concurrent per-row exponentials never share or allocate scratch.
type MVScratch struct {
	term, next, sum []float64
}

// ensure sizes the scratch for dimension m.
func (s *MVScratch) ensure(m int) {
	if len(s.term) != m {
		s.term = make([]float64, m)
		s.next = make([]float64, m)
		s.sum = make([]float64, m)
	}
}

// ExpMVInto is ExpMV writing the result vector into dst (which must
// have the length of v and may not alias it) and drawing scratch from
// sc; a nil sc allocates fresh scratch. It returns the log-scale.
func ExpMVInto(dst []float64, apply func(in, out []float64), v []float64, normUB, tol float64, sc *MVScratch) (logScale float64) {
	if tol <= 0 {
		tol = 1e-12
	}
	if normUB < 0 {
		normUB = 0
	}
	m := len(v)
	if len(dst) != m {
		panic("expm: ExpMVInto length mismatch")
	}
	if sc == nil {
		sc = &MVScratch{}
	}
	sc.ensure(m)
	segments := int(math.Ceil(normUB / expMVSegNorm))
	if segments < 1 {
		segments = 1
	}
	invS := 1.0 / float64(segments)

	cur := dst
	copy(cur, v)
	logScale = 0
	if n := matrix.Normalize(cur); n > 0 {
		logScale = math.Log(n)
	} else {
		return 0 // exp(A)·0 = 0
	}

	term, next, sum := sc.term, sc.next, sc.sum
	// Terms needed per segment: the series for e^θ with θ=8 needs ~35
	// terms to reach 1e-16 relative; cap generously.
	maxTerms := 64

	for seg := 0; seg < segments; seg++ {
		copy(sum, cur)
		copy(term, cur)
		for j := 1; j <= maxTerms; j++ {
			apply(term, next)
			f := invS / float64(j)
			for i := range next {
				next[i] *= f
			}
			term, next = next, term
			matrix.VecAXPY(sum, 1, term)
			if matrix.VecNorm2(term) <= tol*matrix.VecNorm2(sum) {
				break
			}
		}
		copy(cur, sum)
		if n := matrix.Normalize(cur); n > 0 {
			logScale += math.Log(n)
		} else {
			return logScale
		}
	}
	return logScale
}

// ExpMVStats estimates the analytic work/depth of one ExpMV call with
// the given operator nnz and norm bound: segments·terms applies in
// sequence, each O(nnz) work and O(log m) depth.
func ExpMVStats(st *parallel.Stats, nnz int, normUB, tol float64, m int) {
	if tol <= 0 {
		tol = 1e-12
	}
	segments := int(math.Ceil(normUB / expMVSegNorm))
	if segments < 1 {
		segments = 1
	}
	terms := int(math.Ceil(math.Log(1/tol))) + int(expMVSegNorm)
	st.Add(int64(segments)*int64(terms)*int64(2*nnz+2*m), int64(segments)*int64(terms)*parallel.Log2(m))
}

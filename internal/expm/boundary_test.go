package expm

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/eigen"
	"repro/internal/matrix"
)

// Norm exactly at the segment boundary: ‖A‖ = 8 must still converge in
// a single segment, and ‖A‖ = 8+δ must split into two without a
// discontinuity in the result.
func TestExpMVSegmentBoundary(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	a := randPSD(5, 5, rng)
	lam, err := eigen.LambdaMax(a)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 5)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for _, target := range []float64{7.999, 8.0, 8.001} {
		b := a.Clone()
		matrix.Scale(b, target/lam, b)
		exact, err := ExpSym(b)
		if err != nil {
			t.Fatal(err)
		}
		w, logScale := ExpMV(applyDense(b), v, target, 1e-13)
		want := exact.MulVec(v)
		scale := math.Exp(logScale)
		for i := range want {
			if math.Abs(scale*w[i]-want[i]) > 1e-7*matrix.VecNorm2(want) {
				t.Fatalf("norm %v: mismatch at %d", target, i)
			}
		}
	}
}

// Underestimated norm bound: ExpMV must still converge (the series just
// needs more terms per segment), it must not silently truncate.
func TestExpMVUnderestimatedNorm(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 74))
	a := randPSD(4, 4, rng)
	lam, err := eigen.LambdaMax(a)
	if err != nil {
		t.Fatal(err)
	}
	matrix.Scale(a, 12/lam, a) // true norm 12
	exact, err := ExpSym(a)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, -1, 0.5, 2}
	// Claim the norm is only 6: one segment of nominal budget 8 now
	// carries effective norm 12 — the adaptive term loop must absorb it.
	w, logScale := ExpMV(applyDense(a), v, 6, 1e-13)
	want := exact.MulVec(v)
	scale := math.Exp(logScale)
	for i := range want {
		if math.Abs(scale*w[i]-want[i]) > 1e-6*matrix.VecNorm2(want) {
			t.Fatalf("underestimated norm broke ExpMV at %d: %v vs %v", i, scale*w[i], want[i])
		}
	}
}

func TestTaylorExpPSDDegreeOne(t *testing.T) {
	// Degree 1 means just the identity term.
	b := matrix.Diag([]float64{3, 1})
	got := TaylorExpPSD(b, 1)
	if !matrix.ApproxEqual(got, matrix.Identity(2), 0) {
		t.Fatalf("degree-1 Taylor = %v want I", got)
	}
	// Degree <= 0 clamps to 1.
	got0 := TaylorExpPSD(b, 0)
	if !matrix.ApproxEqual(got0, matrix.Identity(2), 0) {
		t.Fatal("degree-0 Taylor should clamp to identity")
	}
}

func TestNormalizedExpDegenerate(t *testing.T) {
	// A matrix of NaNs must error, not panic or return garbage.
	bad := matrix.Identity(2)
	bad.Set(0, 0, math.NaN())
	if _, _, _, err := NormalizedExpSym(bad); err == nil {
		t.Fatal("NaN input accepted")
	}
}

package expm

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/eigen"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

func randPSD(n, r int, rng *rand.Rand) *matrix.Dense {
	g := matrix.New(n, r)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return matrix.MulABT(g, g, nil)
}

func randSym(n int, rng *rand.Rand) *matrix.Dense {
	m := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestExpSymDiagonal(t *testing.T) {
	a := matrix.Diag([]float64{0, 1, 2})
	e, err := ExpSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Diag([]float64{1, math.E, math.E * math.E})
	if !matrix.ApproxEqual(e, want, 1e-12) {
		t.Fatalf("exp(diag) = %v", e)
	}
}

func TestExpSymZero(t *testing.T) {
	e, err := ExpSym(matrix.New(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.ApproxEqual(e, matrix.Identity(4), 1e-14) {
		t.Fatal("exp(0) != I")
	}
}

func TestExpSymAdditivityCommuting(t *testing.T) {
	// exp(A+B) = exp(A)exp(B) when A, B commute (both polynomials in same S).
	rng := rand.New(rand.NewPCG(1, 2))
	s := randSym(5, rng)
	a := matrix.MulAB(s, s, nil) // s²
	b := s.Clone()
	sum := matrix.New(5, 5)
	matrix.Add(sum, a, b)
	lhs, err := ExpSym(sum)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := ExpSym(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := ExpSym(b)
	if err != nil {
		t.Fatal(err)
	}
	rhs := matrix.MulAB(ea, eb, nil)
	if !matrix.ApproxEqual(lhs, rhs, 1e-7*lhs.MaxAbs()) {
		t.Fatal("exp(A+B) != exp(A)exp(B) for commuting A, B")
	}
}

func TestNormalizedExpSymNoOverflow(t *testing.T) {
	// ‖a‖ = 5000 would make exp(a) overflow; the normalized version must not.
	a := matrix.Diag([]float64{5000, 4999, 0})
	p, lmax, logTr, err := NormalizedExpSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if lmax != 5000 {
		t.Fatalf("λmax = %v", lmax)
	}
	if math.Abs(p.Trace()-1) > 1e-12 {
		t.Fatalf("Tr[P] = %v want 1", p.Trace())
	}
	// exact: Tr[exp] = e^5000 + e^4999 + 1, logTr = 5000 + log(1+1/e+e^-5000)
	wantLogTr := 5000 + math.Log(1+math.Exp(-1)+math.Exp(-5000))
	if math.Abs(logTr-wantLogTr) > 1e-9 {
		t.Fatalf("logTr = %v want %v", logTr, wantLogTr)
	}
	// P entries: p11 = 1/(1+1/e), p22 = (1/e)/(1+1/e), p33 ≈ 0.
	den := 1 + math.Exp(-1)
	if math.Abs(p.At(0, 0)-1/den) > 1e-12 || math.Abs(p.At(1, 1)-math.Exp(-1)/den) > 1e-12 {
		t.Fatalf("P diag = %v %v", p.At(0, 0), p.At(1, 1))
	}
}

func TestNormalizedExpMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randPSD(7, 7, rng)
	p, _, logTr, err := NormalizedExpSym(a)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ExpSym(a)
	if err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	direct := e.Clone()
	matrix.Scale(direct, 1/tr, direct)
	if !matrix.ApproxEqual(p, direct, 1e-10) {
		t.Fatal("normalized exp disagrees with direct computation")
	}
	if math.Abs(logTr-math.Log(tr)) > 1e-9 {
		t.Fatalf("logTr = %v want %v", logTr, math.Log(tr))
	}
}

func TestTaylorDegree(t *testing.T) {
	if TaylorDegree(0, 0.5) < 1 {
		t.Fatal("degree must be >= 1")
	}
	// For large κ the e²κ term dominates.
	k := TaylorDegree(10, 0.1)
	if float64(k) < math.E*math.E*10 {
		t.Fatalf("degree %d below e²κ", k)
	}
	// For tiny ε with small κ the log term dominates.
	k2 := TaylorDegree(0.01, 1e-9)
	if float64(k2) < math.Log(2e9) {
		t.Fatalf("degree %d below ln(2/ε)", k2)
	}
}

// Lemma 4.2: (1−ε)·exp(B) ≼ B̂ ≼ exp(B) at the prescribed degree.
func TestTaylorLoewnerSandwich(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, kappa := range []float64{0.5, 2, 8} {
		eps := 0.1
		b := randPSD(6, 6, rng)
		// Rescale to ‖b‖₂ = kappa.
		lmax, err := eigen.LambdaMax(b)
		if err != nil {
			t.Fatal(err)
		}
		matrix.Scale(b, kappa/lmax, b)
		k := TaylorDegree(kappa, eps)
		hat := TaylorExpPSD(b, k)
		exact, err := ExpSym(b)
		if err != nil {
			t.Fatal(err)
		}
		// upper: exp(B) − B̂ ≽ 0
		diff := matrix.New(6, 6)
		matrix.Sub(diff, exact, hat)
		if ok, err := eigen.IsPSD(diff, 1e-9); err != nil || !ok {
			t.Fatalf("κ=%v: B̂ ≼ exp(B) violated (err=%v)", kappa, err)
		}
		// lower: B̂ − (1−ε)exp(B) ≽ 0
		lower := exact.Clone()
		matrix.Scale(lower, 1-eps, lower)
		matrix.Sub(diff, hat, lower)
		if ok, err := eigen.IsPSD(diff, 1e-9); err != nil || !ok {
			t.Fatalf("κ=%v: (1−ε)exp(B) ≼ B̂ violated (err=%v)", kappa, err)
		}
	}
}

func TestTaylorConvergesToExp(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	b := randPSD(5, 5, rng)
	exact, err := ExpSym(b)
	if err != nil {
		t.Fatal(err)
	}
	hat := TaylorExpPSD(b, 60)
	if !matrix.ApproxEqual(hat, exact, 1e-10*exact.MaxAbs()) {
		t.Fatal("high-degree Taylor does not match exact exponential")
	}
}

func applyDense(a *matrix.Dense) func(in, out []float64) {
	return func(in, out []float64) { a.MulVecTo(out, in) }
}

func TestExpMVMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, n := range []int{1, 4, 12} {
		a := randPSD(n, n, rng)
		lmax, err := eigen.LambdaMax(a)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExpSym(a)
		if err != nil {
			t.Fatal(err)
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		w, logScale := ExpMV(applyDense(a), v, lmax, 1e-13)
		want := exact.MulVec(v)
		scale := math.Exp(logScale)
		for i := range want {
			if math.Abs(scale*w[i]-want[i]) > 1e-8*math.Max(1, matrix.VecNorm2(want)) {
				t.Fatalf("n=%d: ExpMV mismatch at %d: %v vs %v", n, i, scale*w[i], want[i])
			}
		}
	}
}

func TestExpMVLargeNormLogScale(t *testing.T) {
	// exp(A)v for A = diag(800, 0): overflows float64 if computed naively
	// (e^800 ≈ 2.7e347), but the log-scale form must survive.
	a := matrix.Diag([]float64{800, 0})
	v := []float64{1, 1}
	w, logScale := ExpMV(applyDense(a), v, 800, 1e-12)
	// True result: (e^800, 1); normalized direction ≈ (1, e^-800);
	// logScale ≈ 800.
	if math.Abs(logScale-800) > 1e-6 {
		t.Fatalf("logScale = %v want ≈ 800", logScale)
	}
	if math.Abs(w[0]-1) > 1e-9 || math.Abs(w[1]) > 1e-100 {
		t.Fatalf("direction = %v want ≈ (1, 0)", w)
	}
}

func TestExpMVZeroVector(t *testing.T) {
	a := matrix.Identity(3)
	w, logScale := ExpMV(applyDense(a), []float64{0, 0, 0}, 1, 0)
	if matrix.VecNorm2(w) != 0 || logScale != 0 {
		t.Fatal("exp(A)·0 should be 0")
	}
}

func TestExpMVZeroOperator(t *testing.T) {
	z := matrix.New(3, 3)
	v := []float64{1, 2, 2}
	w, logScale := ExpMV(applyDense(z), v, 0, 0)
	// exp(0)v = v: direction v/|v|, logScale = log 3.
	if math.Abs(logScale-math.Log(3)) > 1e-12 {
		t.Fatalf("logScale = %v want log 3", logScale)
	}
	if math.Abs(w[0]-1.0/3) > 1e-12 {
		t.Fatalf("direction = %v", w)
	}
}

// Property: for random PSD A and v, |exp(A)v| from ExpMV matches the
// dense computation in log-space.
func TestQuickExpMVNorm(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 2 + int(seed%5)
		a := randPSD(n, n, rng)
		lmax, err := eigen.LambdaMax(a)
		if err != nil {
			return false
		}
		exact, err := ExpSym(a)
		if err != nil {
			return false
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if matrix.VecNorm2(v) == 0 {
			return true
		}
		w, logScale := ExpMV(applyDense(a), v, lmax, 1e-12)
		gotLog := logScale + math.Log(matrix.VecNorm2(w))
		wantLog := math.Log(matrix.VecNorm2(exact.MulVec(v)))
		return math.Abs(gotLog-wantLog) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMVStatsAccumulates(t *testing.T) {
	var st parallel.Stats
	ExpMVStats(&st, 100, 16, 1e-12, 32)
	if st.Work() <= 0 || st.Depth() <= 0 {
		t.Fatalf("stats not accumulated: work=%d depth=%d", st.Work(), st.Depth())
	}
	w1 := st.Work()
	st.Reset()
	ExpMVStats(&st, 100, 32, 1e-12, 32)
	if st.Work() <= w1 {
		t.Fatal("doubling the norm bound should increase analytic work")
	}
}

// Package placement maps content digests to owning replicas. The
// digest discipline built up by the serving tier — canonicalized
// instances, digest-keyed caching and warm-start lineages — is what
// makes cross-node routing cheap: the digest IS the placement key, so
// "which node owns this request's cache entry, its revision lineage,
// and the warm worker workspaces for its shape" is one deterministic
// function of the request content.
//
// Two implementations: Local (the single-process daemon: every digest
// is owned here) and Ring (consistent hashing over a member list, for
// the cluster tier). Ring is deliberately minimal — static membership
// updated wholesale by a health prober — because the correctness story
// leans entirely on determinism: every node computing owners from the
// same member list agrees, and when the list changes only the digests
// whose successor changed move (never between two surviving members).
package placement

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"

	"repro/internal/store"
)

// Placement maps a content digest to the member that owns it. Owner
// returns ("", false) when the digest is owned locally — either there
// are no remote members (the single-node Local placement) or the ring
// resolved to the caller itself.
type Placement interface {
	// Owner returns the base URL of the member owning key, or
	// ("", false) when the caller should handle it locally.
	Owner(key store.Key) (string, bool)
	// Members returns the current member list (empty for Local).
	Members() []string
}

// Local is the always-me placement: the single-process daemon owns
// every digest. The zero value is ready to use.
type Local struct{}

// Owner implements Placement: everything is local.
func (Local) Owner(store.Key) (string, bool) { return "", false }

// Members implements Placement.
func (Local) Members() []string { return nil }

// vnodes is the number of virtual points each member contributes to
// the ring. 128 points per member keeps the ownership split within a
// few percent of uniform and the add/remove churn within a few percent
// of the ideal 1/N.
const vnodes = 128

// Ring is a consistent-hash placement over a mutable member list.
// Safe for concurrent Owner/Members/Update: lookups take a read lock
// on an immutable snapshot that Update swaps wholesale.
type Ring struct {
	// self, when non-empty, names the member the caller itself is:
	// Owner returns ("", false) for digests this member owns, so
	// callers can distinguish "mine" from "fetch from that peer".
	self string

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	member []string    // current member list, sorted
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing builds a ring over members. self may be "" (a pure router,
// like the front tier, owns nothing) or one of the members (a replica
// that serves its own share locally).
func NewRing(self string, members []string) *Ring {
	r := &Ring{self: self}
	r.Update(members)
	return r
}

// Update replaces the member list wholesale. The prober calls this on
// every health transition; Owner lookups in flight keep the previous
// snapshot.
func (r *Ring) Update(members []string) {
	pts := make([]ringPoint, 0, len(members)*vnodes)
	for _, m := range members {
		var buf [8]byte
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h := sha256.Sum256(append([]byte(m+"#"), buf[:]...))
			pts = append(pts, ringPoint{hash: binary.LittleEndian.Uint64(h[:8]), owner: m})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Ties (astronomically unlikely) break deterministically by
		// member name so every node agrees.
		return pts[i].owner < pts[j].owner
	})
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	r.mu.Lock()
	r.points, r.member = pts, sorted
	r.mu.Unlock()
}

// Owner implements Placement: the member whose point is the successor
// of the digest's position on the circle. A digest is keyed by its
// leading 8 bytes — it is already a SHA-256, so the distribution is
// uniform without rehashing.
func (r *Ring) Owner(key store.Key) (string, bool) {
	h := binary.LittleEndian.Uint64(key[:8])
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: successor of the largest hash is the first point
	}
	owner := r.points[i].owner
	if owner == r.self {
		return "", false
	}
	return owner, true
}

// Members implements Placement.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.member...)
}

// OwnerName is Owner without the self short-circuit: the member name
// that owns key even when that member is self. The front tier's
// routing and debugging endpoints want the name, not the "mine"
// disposition.
func (r *Ring) OwnerName(key store.Key) (string, bool) {
	h := binary.LittleEndian.Uint64(key[:8])
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner, true
}

package placement

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/store"
)

// corpus builds n deterministic pseudo-digests (hashes of a counter,
// so they are uniform like real content digests).
func corpus(n int) []store.Key {
	out := make([]store.Key, n)
	for i := range out {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(i)*2654435761)
		out[i] = store.Key(sha256.Sum256(buf[:]))
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8723", i)
	}
	return out
}

func ownersOf(r *Ring, keys []store.Key) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		o, ok := r.OwnerName(k)
		if !ok {
			panic("no owner")
		}
		out[i] = o
	}
	return out
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	keys := corpus(512)
	a := NewRing("", members(3))
	b := NewRing("", members(3))
	oa, ob := ownersOf(a, keys), ownersOf(b, keys)
	for i := range keys {
		if oa[i] != ob[i] {
			t.Fatalf("digest %d: ring instances disagree (%s vs %s) — placement must be a pure function of the member list", i, oa[i], ob[i])
		}
	}
}

func TestRingSpreadsRoughlyUniformly(t *testing.T) {
	keys := corpus(4096)
	r := NewRing("", members(3))
	counts := map[string]int{}
	for _, o := range ownersOf(r, keys) {
		counts[o]++
	}
	want := float64(len(keys)) / 3
	for m, c := range counts {
		if frac := float64(c) / want; frac < 0.7 || frac > 1.3 {
			t.Fatalf("member %s owns %d of %d digests (%.2fx the fair share) — vnode count too low", m, c, len(keys), frac)
		}
	}
}

// The consistent-hashing contract, stated as the satellite task pins
// it: adding a member moves at most ~1/N of a digest corpus onto the
// new member, and never moves a digest between two surviving members.
func TestRingAddMovesBoundedAndOnlyToNewMember(t *testing.T) {
	keys := corpus(4096)
	before := NewRing("", members(3))
	ob := ownersOf(before, keys)

	grown := append(members(3), "http://replica-new:8723")
	after := NewRing("", grown)
	oa := ownersOf(after, keys)

	moved := 0
	for i := range keys {
		if ob[i] == oa[i] {
			continue
		}
		moved++
		if oa[i] != "http://replica-new:8723" {
			t.Fatalf("digest %d moved between surviving members (%s -> %s)", i, ob[i], oa[i])
		}
	}
	// Ideal is 1/4 of the corpus; 128 vnodes keeps the realized share
	// close. 0.35 is the "≤ ~1/N" bound with sampling slack.
	if frac := float64(moved) / float64(len(keys)); frac > 0.35 {
		t.Fatalf("adding 1 member to 3 moved %.1f%% of digests, want ≲ 25%%", frac*100)
	}
	if moved == 0 {
		t.Fatal("adding a member moved nothing — the new member owns no share")
	}
}

func TestRingRemoveMovesOnlyTheDeadMembersShare(t *testing.T) {
	keys := corpus(4096)
	full := members(3)
	before := NewRing("", full)
	ob := ownersOf(before, keys)

	dead := full[1]
	after := NewRing("", []string{full[0], full[2]})
	oa := ownersOf(after, keys)

	moved := 0
	for i := range keys {
		if ob[i] == oa[i] {
			continue
		}
		if ob[i] != dead {
			t.Fatalf("digest %d owned by surviving %s moved to %s when %s died", i, ob[i], oa[i], dead)
		}
		moved++
	}
	if frac := float64(moved) / float64(len(keys)); frac < 0.20 || frac > 0.45 {
		t.Fatalf("removing 1 of 3 members moved %.1f%% of digests, want ≈ 33%%", frac*100)
	}
}

// Update in place must agree with a freshly built ring: the health
// prober shrinks and regrows the member list through Update, and
// placement must stay a pure function of the list.
func TestRingUpdateMatchesFreshBuild(t *testing.T) {
	keys := corpus(1024)
	r := NewRing("", members(3))
	r.Update(members(2))
	fresh := NewRing("", members(2))
	or, of := ownersOf(r, keys), ownersOf(fresh, keys)
	for i := range keys {
		if or[i] != of[i] {
			t.Fatalf("digest %d: updated ring disagrees with fresh ring", i)
		}
	}
	// Regrow: back to the 3-member placement exactly.
	r.Update(members(3))
	o3 := ownersOf(NewRing("", members(3)), keys)
	for i, o := range ownersOf(r, keys) {
		if o != o3[i] {
			t.Fatalf("digest %d: regrown ring disagrees with original", i)
		}
	}
}

func TestRingSelfShortCircuit(t *testing.T) {
	keys := corpus(256)
	ms := members(3)
	r := NewRing(ms[0], ms)
	sawMine, sawPeer := false, false
	for _, k := range keys {
		name, _ := r.OwnerName(k)
		peer, remote := r.Owner(k)
		if name == ms[0] {
			sawMine = true
			if remote {
				t.Fatalf("digest owned by self reported as remote peer %s", peer)
			}
		} else {
			sawPeer = true
			if !remote || peer != name {
				t.Fatalf("digest owned by %s reported as (%q, %v)", name, peer, remote)
			}
		}
	}
	if !sawMine || !sawPeer {
		t.Fatal("corpus did not exercise both self and peer ownership")
	}
}

func TestLocalOwnsEverything(t *testing.T) {
	var l Local
	for _, k := range corpus(16) {
		if _, remote := l.Owner(k); remote {
			t.Fatal("Local placement must own every digest")
		}
	}
	if len(l.Members()) != 0 {
		t.Fatal("Local placement has no members")
	}
}

package poslp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// SimplexMax solves  max cᵀx  s.t.  A·x ≤ b, x ≥ 0  exactly (to
// floating-point accuracy) with the standard primal simplex method on
// the slack-augmented tableau, using Bland's anti-cycling rule. It
// requires b ≥ 0 (a feasible all-slack basis), which every packing LP
// satisfies. Intended as the exact reference oracle for small
// instances; cost is O((n+d)·d) per pivot.
func SimplexMax(a *matrix.Dense, b, c []float64) (x []float64, value float64, err error) {
	d, n := a.R, a.C
	if len(b) != d || len(c) != n {
		return nil, 0, fmt.Errorf("poslp: simplex dimensions: A %dx%d, b %d, c %d", d, n, len(b), len(c))
	}
	for j, v := range b {
		if v < 0 {
			return nil, 0, fmt.Errorf("poslp: simplex requires b ≥ 0, got b[%d] = %v", j, v)
		}
	}

	// Tableau: rows 0..d-1 constraints over columns [x | slack | rhs],
	// row d is the objective (negated c, maximization).
	cols := n + d + 1
	tab := matrix.New(d+1, cols)
	for i := 0; i < d; i++ {
		copy(tab.Row(i)[:n], a.Row(i))
		tab.Set(i, n+i, 1)
		tab.Set(i, cols-1, b[i])
	}
	for j := 0; j < n; j++ {
		tab.Set(d, j, -c[j])
	}
	basis := make([]int, d)
	for i := range basis {
		basis[i] = n + i
	}

	const maxPivots = 100000
	for pivots := 0; ; pivots++ {
		if pivots > maxPivots {
			return nil, 0, errors.New("poslp: simplex exceeded pivot budget")
		}
		// Bland: entering column = lowest index with negative reduced cost.
		enter := -1
		objRow := tab.Row(d)
		for j := 0; j < n+d; j++ {
			if objRow[j] < -1e-12 {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test; Bland tie-break on lowest basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < d; i++ {
			aij := tab.At(i, enter)
			if aij > 1e-12 {
				ratio := tab.At(i, cols-1) / aij
				if ratio < bestRatio-1e-15 || (math.Abs(ratio-bestRatio) <= 1e-15 && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return nil, 0, errors.New("poslp: LP is unbounded")
		}
		pivot(tab, leave, enter)
		basis[leave] = enter
	}

	x = make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = tab.At(i, cols-1)
		}
	}
	return x, tab.At(d, cols-1), nil
}

func pivot(tab *matrix.Dense, pr, pc int) {
	cols := tab.C
	p := tab.At(pr, pc)
	prow := tab.Row(pr)
	inv := 1 / p
	for j := 0; j < cols; j++ {
		prow[j] *= inv
	}
	for i := 0; i < tab.R; i++ {
		if i == pr {
			continue
		}
		f := tab.At(i, pc)
		if f == 0 {
			continue
		}
		row := tab.Row(i)
		for j := 0; j < cols; j++ {
			row[j] -= f * prow[j]
		}
	}
}

// ExactPackingOPT solves the packing LP max 1ᵀx, Px ≤ 1, x ≥ 0 exactly
// via simplex — the ground-truth oracle for experiment E10 and for the
// diagonal-instance tests of the SDP solver.
func ExactPackingOPT(pk *Packing) (float64, []float64, error) {
	ones := matrix.Ones(pk.N())
	rhs := matrix.Ones(pk.D())
	x, v, err := SimplexMax(pk.P, rhs, ones)
	return v, x, err
}

package poslp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randPacking(d, n int, rng *rand.Rand) *Packing {
	p := matrix.New(d, n)
	for i := range p.Data {
		if rng.Float64() < 0.7 {
			p.Data[i] = rng.Float64()
		}
	}
	// Make sure each column touches at least one constraint.
	for i := 0; i < n; i++ {
		p.Set(rng.IntN(d), i, 0.3+rng.Float64())
	}
	pk, err := NewPacking(p)
	if err != nil {
		panic(err)
	}
	return pk
}

func TestNewPackingValidation(t *testing.T) {
	if _, err := NewPacking(nil); err == nil {
		t.Fatal("nil accepted")
	}
	neg := matrix.FromRows([][]float64{{1, -1}})
	if _, err := NewPacking(neg); err == nil {
		t.Fatal("negative entry accepted")
	}
	nan := matrix.FromRows([][]float64{{math.NaN()}})
	if _, err := NewPacking(nan); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestColSums(t *testing.T) {
	pk, err := NewPacking(matrix.FromRows([][]float64{{1, 2}, {3, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	s := pk.ColSums()
	if s[0] != 4 || s[1] != 2 {
		t.Fatalf("ColSums = %v", s)
	}
}

func TestSimplexKnownLP(t *testing.T) {
	// max x1 + x2 s.t. x1 ≤ 2, x2 ≤ 3, x1 + x2 ≤ 4: OPT = 4.
	a := matrix.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	x, v, err := SimplexMax(a, []float64{2, 3, 4}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4) > 1e-10 {
		t.Fatalf("OPT = %v want 4", v)
	}
	if math.Abs(x[0]+x[1]-4) > 1e-10 {
		t.Fatalf("x = %v infeasible-sum", x)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex (redundant constraint) must not cycle.
	a := matrix.FromRows([][]float64{{1, 1}, {1, 1}, {1, 0}})
	_, v, err := SimplexMax(a, []float64{1, 1, 1}, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-10 {
		t.Fatalf("OPT = %v want 2", v)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// max x with no binding constraint on x: unbounded.
	a := matrix.FromRows([][]float64{{0}})
	if _, _, err := SimplexMax(a, []float64{1}, []float64{1}); err == nil {
		t.Fatal("unbounded LP not detected")
	}
}

func TestSimplexRejectsNegativeRHS(t *testing.T) {
	a := matrix.FromRows([][]float64{{1}})
	if _, _, err := SimplexMax(a, []float64{-1}, []float64{1}); err == nil {
		t.Fatal("negative rhs accepted")
	}
}

func TestDecisionLPBracketsKnownOPT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	pk := randPacking(6, 5, rng)
	opt, _, err := ExactPackingOPT(pk)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{opt / 2, opt, 2 * opt} {
		scaled := &Packing{P: pk.P.Clone()}
		matrix.Scale(scaled.P, theta, scaled.P)
		dr, err := DecisionLP(scaled, 0.2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		optS := opt / theta
		if dr.Lower > optS*(1+1e-9) || dr.Upper < optS*(1-1e-9) {
			t.Fatalf("θ=%v: bracket [%v, %v] misses OPT %v", theta, dr.Lower, dr.Upper, optS)
		}
	}
}

func TestDecisionLPDualFeasibility(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	pk := randPacking(5, 7, rng)
	dr, err := DecisionLP(pk, 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// DualX must satisfy P·x ≤ 1 exactly.
	px := pk.P.MulVec(dr.DualX)
	if matrix.VecMax(px) > 1+1e-9 {
		t.Fatalf("certified dual violates packing: max (Px) = %v", matrix.VecMax(px))
	}
	if math.Abs(matrix.VecSum(dr.DualX)-dr.Lower) > 1e-12 {
		t.Fatal("Lower != value of DualX")
	}
}

func TestMaximizeMatchesSimplex(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 5; trial++ {
		pk := randPacking(4+trial, 3+trial, rng)
		opt, _, err := ExactPackingOPT(pk)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Maximize(pk, 0.1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Lower > opt*(1+1e-9) || sol.Upper < opt*(1-1e-9) {
			t.Fatalf("trial %d: bracket [%v, %v] misses simplex OPT %v", trial, sol.Lower, sol.Upper, opt)
		}
		if sol.Gap() > 0.35 {
			t.Fatalf("trial %d: gap %v too large", trial, sol.Gap())
		}
	}
}

func (s *Solution) Gap() float64 {
	if s.Lower <= 0 {
		return math.Inf(1)
	}
	return s.Upper/s.Lower - 1
}

func TestMaximizeRejectsZeroColumn(t *testing.T) {
	pk, err := NewPacking(matrix.FromRows([][]float64{{1, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Maximize(pk, 0.2, Options{}); err == nil {
		t.Fatal("zero column (unbounded) accepted")
	}
}

func TestDecisionLPValidation(t *testing.T) {
	pk := randPacking(2, 2, rand.New(rand.NewPCG(9, 9)))
	if _, err := DecisionLP(pk, 0, Options{}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := DecisionLP(pk, 1.5, Options{}); err == nil {
		t.Fatal("eps>1 accepted")
	}
}

// Property: Young's solver bracket always contains the simplex optimum.
func TestQuickYoungVsSimplex(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		d := 2 + int(seed%4)
		n := 2 + int((seed/4)%4)
		pk := randPacking(d, n, rng)
		opt, _, err := ExactPackingOPT(pk)
		if err != nil || opt <= 0 {
			return true // skip degenerate cases
		}
		sol, err := Maximize(pk, 0.15, Options{})
		if err != nil {
			return false
		}
		return sol.Lower <= opt*(1+1e-9) && sol.Upper >= opt*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTheoryExactLPDualBranch(t *testing.T) {
	// Single constraint x/2 ≤ 1: OPT = 2 > 1 → dual branch in pure
	// theory mode.
	pk, err := NewPacking(matrix.FromRows([][]float64{{0.5}}))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionLP(pk, 0.3, Options{TheoryExact: true, MaxIter: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Outcome != OutcomeDual {
		t.Fatalf("outcome = %v want dual", dr.Outcome)
	}
}

package poslp

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

func TestTheoryExactLPPrimalBranch(t *testing.T) {
	// Single constraint 2x ≤ 1: OPT = 1/2 < 1 → the while loop runs out
	// and the paper's primal branch fires.
	pk, err := NewPacking(matrix.FromRows([][]float64{{2}}))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionLP(pk, 0.3, Options{TheoryExact: true, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Outcome == OutcomeDual {
		t.Fatal("OPT=0.5 instance exited dual")
	}
	// The certified bounds still bracket 0.5.
	if dr.Lower > 0.5+1e-9 || dr.Upper < 0.5-1e-9 {
		t.Fatalf("bracket [%v, %v] misses 0.5", dr.Lower, dr.Upper)
	}
}

func TestDecisionLPFrozenZeroColumn(t *testing.T) {
	// One zero column (unbounded direction) frozen, the other active.
	pk, err := NewPacking(matrix.FromRows([][]float64{{0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionLP(pk, 0.2, Options{MaxIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if dr.X[0] != 0 {
		t.Fatalf("frozen column moved: %v", dr.X[0])
	}
}

func TestDecisionLPUpperIsWeakDualityBound(t *testing.T) {
	// For P = [[1]], OPT = 1; Upper must never dip below 1.
	pk, err := NewPacking(matrix.FromRows([][]float64{{1}}))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionLP(pk, 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Upper < 1-1e-9 {
		t.Fatalf("upper %v below OPT 1", dr.Upper)
	}
	if dr.Lower > 1+1e-9 {
		t.Fatalf("lower %v above OPT 1", dr.Lower)
	}
}

func TestSimplexZeroObjective(t *testing.T) {
	a := matrix.FromRows([][]float64{{1}})
	x, v, err := SimplexMax(a, []float64{1}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 || x[0] != 0 {
		t.Fatalf("zero objective: v=%v x=%v", v, x)
	}
}

func TestSimplexTightDegenerateRatio(t *testing.T) {
	// Multiple rows tie in the ratio test (all rhs zero on the entering
	// column's positive rows): Bland must still terminate.
	a := matrix.FromRows([][]float64{{1, 0}, {1, 0}, {0, 1}})
	x, v, err := SimplexMax(a, []float64{0, 0, 2}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-10 {
		t.Fatalf("v = %v want 2 (x1 pinned to 0)", v)
	}
	if x[0] != 0 {
		t.Fatalf("x1 = %v want 0", x[0])
	}
}

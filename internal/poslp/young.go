// Package poslp implements positive linear programming substrates from
// the lineage the paper builds on: Young's width-independent parallel
// packing LP solver [You01] — of which Algorithm 3.1 is the SDP
// generalization (the diagonal-matrix special case of the SDP solver
// IS this algorithm) — and a dense simplex solver used as an exact
// reference on small instances.
package poslp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Packing is a positive packing LP:
//
//	maximize 1ᵀx  subject to  P·x ≤ 1,  x ≥ 0,
//
// with P a d-by-n entrywise-nonnegative matrix (d constraints, n vars).
type Packing struct {
	P *matrix.Dense
}

// NewPacking validates the constraint matrix.
func NewPacking(p *matrix.Dense) (*Packing, error) {
	if p == nil || p.R == 0 || p.C == 0 {
		return nil, errors.New("poslp: empty constraint matrix")
	}
	for i, v := range p.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("poslp: entry %d = %v is not a valid packing coefficient", i, v)
		}
	}
	return &Packing{P: p}, nil
}

// N returns the number of variables.
func (pk *Packing) N() int { return pk.P.C }

// D returns the number of constraints.
func (pk *Packing) D() int { return pk.P.R }

// ColSums returns the per-variable column sums Σⱼ P[j][i] — the
// "traces" of the diagonal-SDP view.
func (pk *Packing) ColSums() []float64 {
	n := pk.N()
	s := make([]float64, n)
	for j := 0; j < pk.P.R; j++ {
		row := pk.P.Row(j)
		for i := 0; i < n; i++ {
			s[i] += row[i]
		}
	}
	return s
}

// Outcome mirrors core.Outcome for the LP decision problem.
type Outcome int

const (
	// OutcomeDual indicates ‖x‖₁ exceeded K (packing value ≥ 1−O(ε)).
	OutcomeDual Outcome = iota
	// OutcomePrimal indicates a covering certificate was produced
	// (packing value ≤ 1+O(ε)).
	OutcomePrimal
	// OutcomeInconclusive indicates the iteration cap was reached.
	OutcomeInconclusive
)

// DecisionResult reports a run of the Young-style decision procedure
// with certified bounds, exactly parallel to core.DecisionResult.
type DecisionResult struct {
	Outcome    Outcome
	X          []float64
	DualX      []float64 // X scaled to certified feasibility
	Lower      float64   // certified: OPT ≥ Lower
	Upper      float64   // certified: OPT ≤ Upper
	Iterations int
	AvgWeights []float64 // averaged normalized weight vector (covering witness)
}

// Options configure DecisionLP.
type Options struct {
	// MaxIter caps iterations; 0 means the theory bound R.
	MaxIter int
	// EarlySlack for the primal exit; 0 means eps/2.
	EarlySlack float64
	// TheoryExact disables early certificate exits.
	TheoryExact bool
}

// DecisionLP runs the diagonal specialization of Algorithm 3.1 — which
// is Young's parallel packing algorithm with the soft-max penalty
// wⱼ = exp((Px)ⱼ): coordinates whose penalty-weighted column sum is
// below (1+ε)·Σw are multiplied by 1+α. Certified bounds come from the
// same weak-duality pairing as the SDP solver: any normalized weight
// vector y = w/‖w‖₁ satisfies 1ᵀx' ≤ 1/minᵢ(Pᵀy)ᵢ for all feasible x'.
func DecisionLP(pk *Packing, eps float64, opts Options) (*DecisionResult, error) {
	if eps <= 0 || eps >= 1 || math.IsNaN(eps) {
		return nil, fmt.Errorf("poslp: eps = %v out of (0, 1)", eps)
	}
	n, d := pk.N(), pk.D()
	logN := math.Log(float64(max(n, d, 2)))
	bigK := (1 + logN) / eps
	alpha := eps / (bigK * (1 + 10*eps))
	bigR := int(math.Ceil(32 * logN / (eps * alpha)))
	maxIter := opts.MaxIter
	if maxIter <= 0 || maxIter > bigR {
		maxIter = bigR
	}
	slack := opts.EarlySlack
	if slack <= 0 {
		slack = eps / 2
	}

	cols := pk.ColSums()
	x := make([]float64, n)
	frozen := make([]bool, n)
	for i := range x {
		if cols[i] <= 0 {
			frozen[i] = true // zero column: unbounded direction, freeze
			continue
		}
		x[i] = 1 / (float64(n) * cols[i])
	}

	psi := make([]float64, d)
	w := make([]float64, d)
	r := make([]float64, n)
	avg := make([]float64, n)
	bestMinR := 0.0
	bestDualRatio := 0.0
	var bestDualX []float64
	res := &DecisionResult{Outcome: OutcomeInconclusive}

	t := 0
	for t < maxIter {
		t++
		pk.P.MulVecTo(psi, x)
		// Soft-max weights, shifted for overflow safety.
		shift := matrix.VecMax(psi)
		for j := range w {
			w[j] = math.Exp(psi[j] - shift)
		}
		trW := matrix.VecSum(w)
		// rᵢ = Σⱼ wⱼ P[j][i] / Σⱼ wⱼ — the diagonal exp(Ψ)•Aᵢ/Tr ratio.
		for i := range r {
			r[i] = 0
		}
		for j := 0; j < d; j++ {
			row := pk.P.Row(j)
			wj := w[j] / trW
			if wj == 0 {
				continue
			}
			for i := 0; i < n; i++ {
				r[i] += wj * row[i]
			}
		}
		matrix.VecAXPY(avg, 1, r)
		if mr := matrix.VecMin(r); mr > bestMinR {
			bestMinR = mr
		}
		if lam := math.Max(matrix.VecMax(psi), 1); lam > 0 {
			if ratio := matrix.VecSum(x) / lam; ratio > bestDualRatio {
				bestDualRatio = ratio
				bestDualX = append(bestDualX[:0], x...)
			}
		}

		grew := false
		for i := 0; i < n; i++ {
			if !frozen[i] && r[i] <= 1+eps {
				x[i] *= 1 + alpha
				grew = true
			}
		}
		if matrix.VecSum(x) > bigK {
			res.Outcome = OutcomeDual
			break
		}
		if !opts.TheoryExact {
			minAvg := matrix.VecMin(avg) / float64(t)
			if minAvg >= 1-slack {
				res.Outcome = OutcomePrimal
				break
			}
			if !grew && bestMinR >= 1 {
				res.Outcome = OutcomePrimal
				break
			}
		}
	}

	res.Iterations = t
	res.X = matrix.VecClone(x)
	res.AvgWeights = make([]float64, n)
	matrix.VecScale(res.AvgWeights, 1/float64(t), avg)

	// Certified dual: x / max((Px)_max, 1) is feasible.
	pk.P.MulVecTo(psi, x)
	lam := math.Max(matrix.VecMax(psi), 1)
	res.DualX = make([]float64, n)
	matrix.VecScale(res.DualX, 1/lam, x)
	res.Lower = matrix.VecSum(res.DualX)
	if bestDualX != nil {
		pk.P.MulVecTo(psi, bestDualX)
		if l2 := math.Max(matrix.VecMax(psi), 1); matrix.VecSum(bestDualX)/l2 > res.Lower {
			matrix.VecScale(res.DualX, 1/l2, bestDualX)
			res.Lower = matrix.VecSum(res.DualX)
		}
	}
	minAvg := math.Max(matrix.VecMin(res.AvgWeights), bestMinR)
	if minAvg > 0 {
		res.Upper = 1 / minAvg
	} else {
		res.Upper = math.Inf(1)
	}
	return res, nil
}

// Solution is the optimization result with a certified bracket.
type Solution struct {
	Value         float64
	X             []float64
	Lower, Upper  float64
	DecisionCalls int
	TotalIters    int
}

// Maximize approximates the packing LP optimum by the same Lemma 2.2
// binary search as the SDP optimizer.
func Maximize(pk *Packing, eps float64, opts Options) (*Solution, error) {
	if eps <= 0 || eps >= 1 || math.IsNaN(eps) {
		return nil, fmt.Errorf("poslp: eps = %v out of (0, 1)", eps)
	}
	cols := pk.ColSums()
	lo, hi := 0.0, 0.0
	minCol := math.Inf(1)
	for i, c := range cols {
		if c <= 0 {
			return nil, fmt.Errorf("poslp: variable %d has a zero column; optimum unbounded", i)
		}
		if c < minCol {
			minCol = c
		}
		hi += float64(pk.D()) / c
	}
	lo = 1 / minCol
	sol := &Solution{Lower: lo, Upper: hi}
	sol.X = make([]float64, pk.N())
	for i, c := range cols {
		if c == minCol {
			sol.X[i] = 1 / minCol
			break
		}
	}
	sol.Value = lo

	maxCalls := 64
	for call := 0; call < maxCalls && hi > (1+eps)*lo; call++ {
		theta := math.Sqrt(lo * hi)
		scaled := &Packing{P: pk.P.Clone()}
		matrix.Scale(scaled.P, theta, scaled.P)
		dr, err := DecisionLP(scaled, eps/4, opts)
		if err != nil {
			return nil, err
		}
		sol.DecisionCalls++
		sol.TotalIters += dr.Iterations
		improved := false
		if v := theta * dr.Lower; v > lo {
			lo = v
			improved = true
			for i := range sol.X {
				sol.X[i] = theta * dr.DualX[i]
			}
			sol.Value = lo
		}
		if v := theta * dr.Upper; v < hi {
			hi = v
			improved = true
		}
		if !improved {
			break
		}
	}
	sol.Lower, sol.Upper = lo, hi
	return sol, nil
}

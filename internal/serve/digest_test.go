package serve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/sparse"
)

func digestOf(t *testing.T, kind string, req *Request) digest {
	t.Helper()
	set, err := instio.Build(req.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if sc := req.scaleOrOne(); sc != 1 {
		set = set.WithScale(sc)
	}
	d, err := requestDigest(kind, req, set, nil, nil, core.EngineMMW)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDigestIdentity(t *testing.T) {
	inst := &instio.Instance{M: 2, Dense: [][][]float64{{{1, 0.5}, {0.5, 2}}}}
	base := Request{Instance: inst, Eps: 0.25, Seed: 5}
	d0 := digestOf(t, "decision", &base)

	if d1 := digestOf(t, "decision", &base); d1 != d0 {
		t.Fatal("identical requests produced different digests")
	}

	perturbations := []struct {
		name string
		req  Request
		kind string
	}{
		{"eps", Request{Instance: inst, Eps: 0.26, Seed: 5}, "decision"},
		{"seed", Request{Instance: inst, Eps: 0.25, Seed: 6}, "decision"},
		{"scale", Request{Instance: inst, Eps: 0.25, Seed: 5, Scale: 0.5}, "decision"},
		{"bucketed", Request{Instance: inst, Eps: 0.25, Seed: 5, Bucketed: true}, "decision"},
		{"maxIter", Request{Instance: inst, Eps: 0.25, Seed: 5, MaxIter: 7}, "decision"},
		{"kind", Request{Instance: inst, Eps: 0.25, Seed: 5}, "maximize"},
		{"entry", Request{Instance: &instio.Instance{M: 2, Dense: [][][]float64{{{1, 0.5}, {0.5, 2.0000000000000004}}}}, Eps: 0.25, Seed: 5}, "decision"},
	}
	for _, p := range perturbations {
		if d := digestOf(t, p.kind, &p.req); d == d0 {
			t.Errorf("%s perturbation did not change the digest", p.name)
		}
	}
}

// Spellings of the same solver configuration must share one content
// address: "", "auto", and the explicit name of the auto choice all
// resolve to the same oracle — while genuinely different oracles split.
func TestDigestCanonicalizesOracle(t *testing.T) {
	dense := &instio.Instance{M: 2, Dense: [][][]float64{{{1, 0.5}, {0.5, 2}}}}
	dDefault := digestOf(t, "decision", &Request{Instance: dense, Eps: 0.25, Seed: 5})
	dAuto := digestOf(t, "decision", &Request{Instance: dense, Eps: 0.25, Seed: 5, Oracle: "auto"})
	dExplicit := digestOf(t, "decision", &Request{Instance: dense, Eps: 0.25, Seed: 5, Oracle: "dense"})
	if dDefault != dAuto || dDefault != dExplicit {
		t.Fatal("equivalent oracle spellings split the cache identity")
	}

	fact := &instio.Instance{M: 3, Factored: []instio.Factor{{Cols: 2, Entries: [][3]float64{{0, 0, 1}, {1, 1, 0.5}}}}}
	fAuto := digestOf(t, "decision", &Request{Instance: fact, Eps: 0.3, Seed: 1})
	fJL := digestOf(t, "decision", &Request{Instance: fact, Eps: 0.3, Seed: 1, Oracle: "jl"})
	fExact := digestOf(t, "decision", &Request{Instance: fact, Eps: 0.3, Seed: 1, Oracle: "exact"})
	if fAuto != fJL {
		t.Fatal("auto on a factored set must hash as the JL oracle")
	}
	if fExact == fJL {
		t.Fatal("distinct factored oracles collided")
	}
}

// TimeoutMs changes when a result arrives, never what it is, so it must
// NOT split the cache identity.
func TestDigestIgnoresTimeout(t *testing.T) {
	inst := &instio.Instance{M: 2, Dense: [][][]float64{{{1, 0}, {0, 1}}}}
	a := Request{Instance: inst, Eps: 0.25, Seed: 5}
	b := Request{Instance: inst, Eps: 0.25, Seed: 5, TimeoutMs: 1234}
	if digestOf(t, "decision", &a) != digestOf(t, "decision", &b) {
		t.Fatal("timeout leaked into the digest")
	}
}

// Triplet order in a factored wire document is presentation, not
// content: NewCSC canonicalizes (sorts, sums duplicates, drops zeros),
// so shuffled entries must hash identically.
func TestDigestCanonicalizesTripletOrder(t *testing.T) {
	entries := [][3]float64{{0, 0, 1}, {1, 1, 0.5}, {2, 0, -1}, {1, 0, 0.25}}
	shuffled := [][3]float64{{1, 0, 0.25}, {2, 0, -1}, {0, 0, 1}, {1, 1, 0.5}}
	a := Request{Instance: &instio.Instance{M: 3, Factored: []instio.Factor{{Cols: 2, Entries: entries}}}, Eps: 0.3, Seed: 1}
	b := Request{Instance: &instio.Instance{M: 3, Factored: []instio.Factor{{Cols: 2, Entries: shuffled}}}, Eps: 0.3, Seed: 1}
	if digestOf(t, "decision", &a) != digestOf(t, "decision", &b) {
		t.Fatal("triplet order perturbed the digest")
	}
}

// Explicit-zero triplets must not survive canonicalization: two
// mathematically identical sparse instances — one listing zeros, one
// not — must produce the same digest, or every cache and
// revision-store lookup between them misses. Covers standalone zero
// entries and duplicate pairs cancelling to exact zero, on both the
// sparse and (audit) factored kinds.
func TestDigestDropsExplicitZeroTriplets(t *testing.T) {
	withZeros := [][3]float64{
		{0, 0, 1}, {0, 1, 0}, {1, 0, 0}, // explicit zero mirror pair
		{1, 1, 2}, {1, 1, 3}, {1, 1, -3}, // duplicates cancelling to zero
	}
	plain := [][3]float64{{0, 0, 1}, {1, 1, 2}}
	a := Request{Instance: &instio.Instance{M: 2, Sparse: []instio.SparseMatrix{{Entries: withZeros}}}, Eps: 0.25, Seed: 5}
	b := Request{Instance: &instio.Instance{M: 2, Sparse: []instio.SparseMatrix{{Entries: plain}}}, Eps: 0.25, Seed: 5}
	if digestOf(t, "decision", &a) != digestOf(t, "decision", &b) {
		t.Fatal("explicit zeros split the digests of identical sparse instances")
	}

	fz := [][3]float64{{0, 0, 1}, {1, 0, 0}, {1, 1, 0.5}}
	fp := [][3]float64{{0, 0, 1}, {1, 1, 0.5}}
	fa := Request{Instance: &instio.Instance{M: 2, Factored: []instio.Factor{{Cols: 2, Entries: fz}}}, Eps: 0.25, Seed: 5}
	fb := Request{Instance: &instio.Instance{M: 2, Factored: []instio.Factor{{Cols: 2, Entries: fp}}}, Eps: 0.25, Seed: 5}
	if digestOf(t, "decision", &fa) != digestOf(t, "decision", &fb) {
		t.Fatal("explicit zeros split the digests of identical factored instances")
	}
}

// Duplicate triplets are summed in canonical value order, so two
// listings of the same entry multiset digest identically even under
// catastrophic cancellation, where left-to-right document-order sums
// disagree ({1e17, 1, -1e17}: one order keeps a spurious 1, the other
// cancels to an exact zero that canonicalization then drops).
func TestDigestCanonicalizesDuplicateSummationOrder(t *testing.T) {
	const big = 1e17
	orderA := [][3]float64{{0, 0, 4}, {0, 1, big}, {0, 1, 1}, {0, 1, -big}, {1, 0, big}, {1, 0, 1}, {1, 0, -big}, {1, 1, 3}}
	orderB := [][3]float64{{0, 0, 4}, {0, 1, big}, {0, 1, -big}, {0, 1, 1}, {1, 0, big}, {1, 0, -big}, {1, 0, 1}, {1, 1, 3}}
	a := Request{Instance: &instio.Instance{M: 2, Sparse: []instio.SparseMatrix{{Entries: orderA}}}, Eps: 0.25, Seed: 5}
	b := Request{Instance: &instio.Instance{M: 2, Sparse: []instio.SparseMatrix{{Entries: orderB}}}, Eps: 0.25, Seed: 5}
	if digestOf(t, "decision", &a) != digestOf(t, "decision", &b) {
		t.Fatal("duplicate listing order split the digests of identical sparse instances")
	}
}

// Structurally different encodings that the solver distinguishes must
// not collide: a dense identity and its factored form are different
// instances to the oracle layer.
func TestDigestSeparatesRepresentations(t *testing.T) {
	dense := Request{Instance: &instio.Instance{M: 2, Dense: [][][]float64{{{1, 0}, {0, 1}}}}, Eps: 0.25, Seed: 5}
	factored := Request{Instance: &instio.Instance{M: 2, Factored: []instio.Factor{
		{Cols: 2, Entries: [][3]float64{{0, 0, 1}, {1, 1, 1}}},
	}}, Eps: 0.25, Seed: 5}
	if digestOf(t, "decision", &dense) == digestOf(t, "decision", &factored) {
		t.Fatal("dense and factored representations collided")
	}
}

// The raw CSC hasher must distinguish matrices that differ only in
// shape metadata (trailing empty columns have equal Row/Val but
// different ColPtr).
func TestDigestCSCShape(t *testing.T) {
	trips := []sparse.Triplet{{Row: 0, Col: 0, Val: 1}}
	q1, err := sparse.NewCSC(2, 1, trips)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := sparse.NewCSC(2, 2, trips)
	if err != nil {
		t.Fatal(err)
	}
	z1, z2 := newHasher(), newHasher()
	hashCSC(z1, q1)
	hashCSC(z2, q2)
	if z1.sum() == z2.sum() {
		t.Fatal("CSCs of different column counts collided")
	}
}

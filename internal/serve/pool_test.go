package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/work"
)

// A worker's pinned workspace must serve repeated same-shape jobs
// without pool misses: the first job warms it, every later job draws
// the same buffer sizes from the free lists.
func TestWorkerWorkspacePinned(t *testing.T) {
	p := NewPool(1, 1, 8)
	defer p.Close()
	job := func(ctx context.Context, ws *work.Workspace) (any, error) {
		v := ws.Vec(512)
		m := ws.Mat(32, 32)
		ws.PutMat(m)
		ws.PutVec(v)
		return nil, nil
	}
	if _, err := p.Do(context.Background(), 0, job); err != nil {
		t.Fatal(err)
	}
	warm := p.Misses()
	if warm == 0 {
		t.Fatal("first job should warm the workspace")
	}
	for i := 0; i < 20; i++ {
		if _, err := p.Do(context.Background(), 0, job); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Misses(); got != warm {
		t.Fatalf("workspace missed %d more times across repeat jobs, want 0", got-warm)
	}
}

// Same shard key, same worker, same workspace: digest routing is what
// lets repeated instances find their warm buffers.
func TestShardRoutingIsSticky(t *testing.T) {
	p := NewPool(4, 4, 8)
	defer p.Close()
	seen := make(map[*work.Workspace]bool)
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		if _, err := p.Do(context.Background(), 42, func(ctx context.Context, ws *work.Workspace) (any, error) {
			mu.Lock()
			seen[ws] = true
			mu.Unlock()
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One worker per shard here, so a single key must always land on
	// the same workspace.
	if len(seen) != 1 {
		t.Fatalf("key routed to %d workspaces, want 1", len(seen))
	}
}

// Admission is non-blocking: a full queue answers ErrQueueFull, never
// waits.
func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1, 1)
	defer p.Close()
	gate := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	blocker := func(ctx context.Context, ws *work.Workspace) (any, error) {
		started.Done()
		<-gate
		return nil, nil
	}
	res := make(chan error, 2)
	go func() {
		_, err := p.Do(context.Background(), 0, blocker)
		res <- err
	}()
	started.Wait() // worker now blocked inside job 1
	go func() {
		_, err := p.Do(context.Background(), 0, func(ctx context.Context, ws *work.Workspace) (any, error) {
			return nil, nil
		})
		res <- err
	}()
	waitFor(t, func() bool { return p.QueueDepth() == 1 })
	if _, err := p.Do(context.Background(), 0, func(ctx context.Context, ws *work.Workspace) (any, error) {
		return nil, nil
	}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-res; err != nil {
			t.Fatal(err)
		}
	}
}

// The pool machinery itself must stay cheap: a handful of allocations
// per job (job struct, result channel, closure), nothing proportional
// to instance size — AllocsPerRun-style guard on the worker path.
func TestPoolDoAllocBudget(t *testing.T) {
	p := NewPool(1, 1, 8)
	defer p.Close()
	fn := func(ctx context.Context, ws *work.Workspace) (any, error) { return nil, nil }
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Do(ctx, 0, fn); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 8
	if allocs > budget {
		t.Errorf("pool.Do allocates %.1f per job, want <= %d", allocs, budget)
	}
}

func TestPoolClosed(t *testing.T) {
	p := NewPool(1, 1, 1)
	p.Close()
	if _, err := p.Do(context.Background(), 0, func(ctx context.Context, ws *work.Workspace) (any, error) {
		return nil, nil
	}); err != ErrPoolClosed {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

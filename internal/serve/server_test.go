package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/instio"
	"repro/internal/work"
)

// newTestServer boots a Server plus an httptest listener and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	resp, body, err := tryPostJSON(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// tryPostJSON is the non-fatal form, safe to call off the test
// goroutine.
func tryPostJSON(url string, req any) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, nil, err
	}
	return resp, bytes.TrimRight(buf.Bytes(), "\n"), nil
}

func denseInstance(t *testing.T, n, m int, seed uint64) *instio.Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	inst := gen.RandomDense(n, m, max(2, m/4), rng)
	set, err := core.NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	return instio.FromDenseSet(set)
}

func factoredInstance(t *testing.T, n, m int, seed uint64) *instio.Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	inst, err := gen.RandomFactored(n, m, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewFactoredSet(inst.Q)
	if err != nil {
		t.Fatal(err)
	}
	return instio.FromFactoredSet(set)
}

// sparseInstance builds a grouped-Laplacian general-sparse instance
// document (n constraints over an m-vertex random graph).
func sparseInstance(t *testing.T, n, m int, seed uint64) *instio.Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	g := graph.ErdosRenyi(m, 6.0/float64(m), rng)
	if g.M() < n {
		t.Fatalf("graph too sparse: %d edges < %d groups", g.M(), n)
	}
	inst, err := gen.SparseGroupedLaplacians(g, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.NewSparseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	return instio.FromSparseSet(set)
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func sameVecBits(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if !sameBits(a[i], b[i]) {
			t.Fatalf("%s[%d]: %v vs %v (bitwise mismatch)", name, i, a[i], b[i])
		}
	}
}

// The service contract: a response served through psdpd is bitwise
// identical — exact float64 bit patterns, as in the golden corpus — to
// the direct library call, at any GOMAXPROCS. This is what makes the
// content-addressed cache sound.
func TestDecisionMatchesLibraryBitwise(t *testing.T) {
	doc := denseInstance(t, 8, 10, 11)
	fdoc := factoredInstance(t, 10, 16, 21)
	cases := []struct {
		name string
		req  Request
	}{
		{"dense", Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.5}},
		{"dense-bucketed", Request{Instance: doc, Eps: 0.25, Seed: 9, Scale: 0.4, Bucketed: true}},
		{"factored-jl", Request{Instance: fdoc, Eps: 0.3, Seed: 7, Scale: 0.1, SketchEps: 0.4}},
		{"factored-exact", Request{Instance: fdoc, Eps: 0.3, Seed: 7, Scale: 0.1, Oracle: "exact", MaxIter: 60}},
		{"sparse-jl", Request{Instance: sparseInstance(t, 6, 18, 41), Eps: 0.3, Seed: 13, Scale: 0.05, SketchEps: 0.4, MaxIter: 40}},
		{"sparse-exact", Request{Instance: sparseInstance(t, 6, 18, 41), Eps: 0.3, Seed: 13, Scale: 0.05, Oracle: "exact", MaxIter: 40}},
	}
	for _, procs := range []int{1, 8} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s-procs%d", tc.name, procs), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

				set, err := instio.Build(tc.req.Instance)
				if err != nil {
					t.Fatal(err)
				}
				opts, err := tc.req.coreOptions()
				if err != nil {
					t.Fatal(err)
				}
				want, err := core.DecisionPSDP(set.WithScale(tc.req.scaleOrOne()), tc.req.Eps, opts)
				if err != nil {
					t.Fatal(err)
				}

				_, ts := newTestServer(t, Config{Workers: 2})
				resp, body := postJSON(t, ts.URL+"/v1/decision", &tc.req)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d: %s", resp.StatusCode, body)
				}
				var got DecisionResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatal(err)
				}
				if got.Outcome != want.Outcome.String() || got.Iterations != want.Iterations {
					t.Fatalf("outcome drift: %s/%d vs %s/%d", got.Outcome, got.Iterations, want.Outcome, want.Iterations)
				}
				if !sameBits(float64(got.Lower), want.Lower) || !sameBits(float64(got.Upper), want.Upper) {
					t.Fatalf("bounds drift: [%v, %v] vs [%v, %v]", got.Lower, got.Upper, want.Lower, want.Upper)
				}
				if !sameBits(float64(got.LambdaMaxPsi), want.LambdaMaxPsi) || !sameBits(float64(got.MaxPsiNorm), want.MaxPsiNorm) {
					t.Fatal("λ_max drift")
				}
				sameVecBits(t, "x", got.X, want.DualX)
			})
		}
	}
}

func TestMaximizeMatchesLibraryBitwise(t *testing.T) {
	doc := denseInstance(t, 6, 8, 31)
	req := Request{Instance: doc, Eps: 0.2, Seed: 3}
	for _, procs := range []int{1, 8} {
		t.Run(fmt.Sprintf("procs%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

			set, err := instio.Build(doc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.MaximizePacking(set, req.Eps, core.Options{Seed: req.Seed})
			if err != nil {
				t.Fatal(err)
			}

			_, ts := newTestServer(t, Config{Workers: 2})
			resp, body := postJSON(t, ts.URL+"/v1/maximize", &req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var got MaximizeResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if got.DecisionCalls != want.DecisionCalls || got.TotalIterations != want.TotalIterations {
				t.Fatalf("call-count drift: %d/%d vs %d/%d",
					got.DecisionCalls, got.TotalIterations, want.DecisionCalls, want.TotalIterations)
			}
			if !sameBits(float64(got.Lower), want.Lower) || !sameBits(float64(got.Upper), want.Upper) ||
				!sameBits(float64(got.Value), want.Value) {
				t.Fatal("bracket drift")
			}
			sameVecBits(t, "x", got.X, want.X)
		})
	}
}

func TestSolveMatchesLibraryBitwise(t *testing.T) {
	prog := &ProgramDoc{
		C: [][]float64{{2, 0, 0}, {0, 1, 0}, {0, 0, 3}},
		A: [][][]float64{
			{{1, 0, 0}, {0, 0.5, 0}, {0, 0, 0}},
			{{0, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		},
		B: []float64{1, 0.5},
	}
	req := Request{Program: prog, Eps: 0.2, Seed: 2}

	cp, err := prog.build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SolveCovering(cp, req.Eps, core.Options{Seed: req.Seed})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/solve", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SolveResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !sameBits(float64(got.Lower), want.Lower) || !sameBits(float64(got.Upper), want.Upper) {
		t.Fatal("bracket drift")
	}
	sameVecBits(t, "dualX", got.DualX, want.DualX)
}

// Cache hits must bypass the solver entirely: the second identical
// request returns the exact bytes of the first without a solve.
func TestCacheHitBypassesSolver(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := Request{Instance: denseInstance(t, 6, 8, 41), Eps: 0.25, Seed: 5, Scale: 0.5}

	resp1, body1 := postJSON(t, ts.URL+"/v1/decision", &req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	if state := resp1.Header.Get("X-Psdpd-Cache"); state != "miss" {
		t.Fatalf("first request cache state %q, want miss", state)
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("solves after first request: %d, want 1", got)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/decision", &req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if state := resp2.Header.Get("X-Psdpd-Cache"); state != "hit" {
		t.Fatalf("second request cache state %q, want hit", state)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit returned different bytes than the original solve")
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("solves after cached request: %d, want 1 (cache must bypass the solver)", got)
	}

	// A different seed is a different content address: solver runs again.
	req.Seed = 6
	resp3, _ := postJSON(t, ts.URL+"/v1/decision", &req)
	if state := resp3.Header.Get("X-Psdpd-Cache"); state != "miss" {
		t.Fatalf("new-seed request cache state %q, want miss", state)
	}
	if got := s.Stats().Solves; got != 2 {
		t.Fatalf("solves after new seed: %d, want 2", got)
	}
}

// Identical in-flight requests share one solve (singleflight): N
// concurrent copies of a request produce exactly one solver run and N
// identical bodies.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	s.testHookBeforeSolve = func() { <-gate }

	req := Request{Instance: denseInstance(t, 6, 8, 51), Eps: 0.25, Seed: 8}
	const followers = 7

	type result struct {
		status int
		body   []byte
		err    error
	}
	results := make(chan result, followers+1)
	var wg sync.WaitGroup
	for i := 0; i < followers+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body, err := tryPostJSON(ts.URL+"/v1/decision", &req)
			if err != nil {
				results <- result{err: err}
				return
			}
			results <- result{status: resp.StatusCode, body: body}
		}()
	}
	// Wait until every follower has joined the leader's flight, then
	// release the solve.
	waitFor(t, func() bool { return s.Stats().DedupShared >= followers })
	close(gate)
	wg.Wait()
	close(results)

	var first []byte
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatal("deduplicated responses differ")
		}
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("solves: %d, want 1 (identical in-flight requests must share)", got)
	}
}

// A full admission queue answers 429 with Retry-After immediately —
// backpressure, not an error or a hang.
func TestQueueOverflowReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 1})
	var started atomic.Int32
	gate := make(chan struct{})
	s.testHookBeforeSolve = func() {
		started.Add(1)
		<-gate
	}

	doc := denseInstance(t, 6, 8, 61)
	mkReq := func(seed uint64) Request {
		// Distinct seeds keep the digests distinct, so no singleflight
		// sharing hides the queue.
		return Request{Instance: doc, Eps: 0.25, Seed: seed}
	}

	type result struct {
		status int
		body   []byte
		err    error
	}
	ch := make(chan result, 2)
	send := func(seed uint64) {
		req := mkReq(seed)
		resp, body, err := tryPostJSON(ts.URL+"/v1/decision", &req)
		if err != nil {
			ch <- result{err: err}
			return
		}
		ch <- result{status: resp.StatusCode, body: body}
	}

	// Request 1 occupies the single worker (blocked in the hook)...
	go send(1)
	waitFor(t, func() bool { return started.Load() == 1 })
	// ...request 2 fills the depth-1 queue...
	go send(2)
	waitFor(t, func() bool { return s.pool.QueueDepth() == 1 })

	// ...and request 3 must bounce with 429 + Retry-After.
	req3 := mkReq(3)
	resp, body := postJSON(t, ts.URL+"/v1/decision", &req3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("queued request finished with %d: %s", r.status, r.body)
		}
	}
}

// Deadline cancellation mid-solve must answer 504 and hand every drawn
// buffer back to the worker's pinned workspace: after a cancellation
// storm, a fresh solve of the same shape misses the pools zero times.
func TestCancellationFreesWorkspace(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 64})
	// TheoryExact with no iteration cap runs R = O(ε⁻³ log² n)
	// iterations — minutes if never cancelled, so a 15ms deadline is
	// guaranteed to cut every storm request mid-run.
	doc := denseInstance(t, 24, 16, 71)

	// Warm: one complete solve of the shape.
	warmReq := Request{Instance: doc, Eps: 0.25, Seed: 1, Scale: 0.5, TheoryExact: true, MaxIter: 40}
	resp, body := postJSON(t, ts.URL+"/v1/decision", &warmReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", resp.StatusCode, body)
	}
	warmMisses := s.pool.Misses()
	if warmMisses == 0 {
		t.Fatal("warm solve should populate the workspace")
	}
	jobs := s.pool.Executed() + s.pool.Skipped()

	// Storm: repeated solves of the same shape cut down by a tiny
	// deadline. Each must abort at an iteration checkpoint and release
	// its oracle buffers. Distinct seeds defeat cache and dedup.
	const stormSize = 15
	timeouts := 0
	for seed := uint64(100); seed < 100+stormSize; seed++ {
		req := Request{Instance: doc, Eps: 0.25, Seed: seed, Scale: 0.5, TheoryExact: true, TimeoutMs: 15}
		resp, body := postJSON(t, ts.URL+"/v1/decision", &req)
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			timeouts++
		case http.StatusOK:
			// A machine fast enough to finish inside the deadline still
			// exercises the release path; the storm only needs most
			// requests to die mid-run.
		default:
			t.Fatalf("storm request: status %d: %s", resp.StatusCode, body)
		}
	}
	if timeouts == 0 {
		t.Fatal("no storm request hit its deadline; shrink TimeoutMs")
	}
	// The 504 returns at the deadline, possibly before the worker hits
	// its next checkpoint; wait for the pool to drain before counting.
	waitFor(t, func() bool { return s.pool.Executed()+s.pool.Skipped() == jobs+stormSize })
	if got := s.pool.Misses(); got != warmMisses {
		t.Fatalf("workspace missed %d more times across the cancellation storm, want 0 (buffers must be released)", got-warmMisses)
	}
	if got := s.Stats().Cancelled; got != int64(timeouts) {
		t.Fatalf("cancelled counter %d, want %d", got, timeouts)
	}

	// And a fresh full solve still runs entirely from the warm pools.
	warmReq.Seed = 2
	resp, body = postJSON(t, ts.URL+"/v1/decision", &warmReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm solve: status %d: %s", resp.StatusCode, body)
	}
	if got := s.pool.Misses(); got != warmMisses {
		t.Fatalf("post-storm solve missed %d times, want 0", got-warmMisses)
	}
}

// Followers must not inherit a leader-specific failure: when a flight
// fails because of the leader's own tight deadline, a follower with a
// roomier deadline retries and solves under its own terms.
func TestFollowerRetriesAfterLeaderFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int32
	gate := make(chan struct{})
	s.testHookBeforeSolve = func() {
		// Only the leader's solve is held hostage; the follower's retry
		// must run free.
		if calls.Add(1) == 1 {
			<-gate
		}
	}

	doc := denseInstance(t, 6, 8, 97)
	// Identical digests: TimeoutMs is deliberately excluded from the
	// content address.
	leaderReq := Request{Instance: doc, Eps: 0.25, Seed: 77, MaxIter: 40, TimeoutMs: 400}
	followerReq := Request{Instance: doc, Eps: 0.25, Seed: 77, MaxIter: 40}

	type result struct {
		status int
		state  string
		body   []byte
		err    error
	}
	respA := make(chan result, 1)
	respB := make(chan result, 1)
	post := func(req Request, ch chan result) {
		resp, body, err := tryPostJSON(ts.URL+"/v1/decision", &req)
		if err != nil {
			ch <- result{err: err}
			return
		}
		ch <- result{status: resp.StatusCode, state: resp.Header.Get("X-Psdpd-Cache"), body: body}
	}
	go post(leaderReq, respA)
	waitFor(t, func() bool { return calls.Load() == 1 }) // leader's solve blocked in the hook
	go post(followerReq, respB)
	waitFor(t, func() bool { return s.Stats().DedupShared >= 1 }) // follower joined the flight

	ra := <-respA
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	if ra.status != http.StatusGatewayTimeout {
		t.Fatalf("leader status %d (%s), want 504", ra.status, ra.body)
	}
	close(gate) // free the worker so the follower's own solve can run

	rb := <-respB
	if rb.err != nil {
		t.Fatal(rb.err)
	}
	if rb.status != http.StatusOK {
		t.Fatalf("follower status %d (%s), want 200 via retry", rb.status, rb.body)
	}
	if rb.state != "miss" {
		t.Fatalf("follower cache state %q, want miss (led its own solve)", rb.state)
	}
}

// Requests cancelled while still queued must be skipped without
// touching any workspace.
func TestQueuedCancellationSkips(t *testing.T) {
	p := NewPool(1, 1, 4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Do(ctx, 0, func(context.Context, *work.Workspace) (any, error) {
		return nil, fmt.Errorf("fn ran with a dead context")
	}); err == nil {
		t.Fatal("expected context error")
	}
	waitFor(t, func() bool { return p.Skipped() == 1 })
	if p.Executed() != 0 {
		t.Fatal("cancelled job executed")
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	doc := denseInstance(t, 6, 8, 81)
	batch := BatchRequest{Requests: []Request{
		{Kind: "decision", Instance: doc, Eps: 0.25, Seed: 1},
		{Kind: "maximize", Instance: doc, Eps: 0.25, Seed: 1},
		{Kind: "decision", Instance: doc, Eps: 0.25, Seed: 1}, // duplicate of item 0
		{Kind: "decision", Eps: 0.25, Seed: 1},                // missing instance: per-item 400
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 4 {
		t.Fatalf("%d responses, want 4", len(out.Responses))
	}
	if out.Responses[0].Status != http.StatusOK || out.Responses[1].Status != http.StatusOK ||
		out.Responses[2].Status != http.StatusOK {
		t.Fatalf("solve items failed: %+v", out.Responses[:3])
	}
	if !bytes.Equal(out.Responses[0].Response, out.Responses[2].Response) {
		t.Fatal("identical batch items returned different bytes")
	}
	if out.Responses[3].Status != http.StatusBadRequest || out.Responses[3].Error == "" {
		t.Fatalf("invalid item not rejected: %+v", out.Responses[3])
	}
	// Items 0 and 2 share a digest; cache or singleflight folds them
	// into one solve in almost every interleaving (a narrow window —
	// leader deleted its flight, follower missed the cache just before
	// the fill — can legitimately run it twice; determinism makes the
	// bytes identical either way).
	if got := s.Stats().Solves; got < 2 || got > 3 {
		t.Fatalf("solves: %d, want 2 (or 3 in the narrow re-lead window)", got)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	doc := denseInstance(t, 4, 6, 91)
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"bad-eps", &Request{Instance: doc, Eps: 1.5}, http.StatusBadRequest},
		{"no-instance", &Request{Eps: 0.2}, http.StatusBadRequest},
		{"bad-oracle", &Request{Instance: doc, Eps: 0.2, Oracle: "quantum"}, http.StatusBadRequest},
		{"oracle-mismatch", &Request{Instance: doc, Eps: 0.2, Oracle: "jl"}, http.StatusBadRequest},
		{"bad-scale", &Request{Instance: doc, Eps: 0.2, Scale: -1}, http.StatusBadRequest},
		{"unknown-field", map[string]any{"instance": doc, "eps": 0.2, "bogus": 1}, http.StatusBadRequest},
		{"program-on-decision", &Request{Instance: doc, Program: &ProgramDoc{C: [][]float64{{1}}}, Eps: 0.2}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/decision", tc.req)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, body, tc.want)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body missing: %s", body)
			}
		})
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// Per-shard workspace pools must stay warm across repeated sparse
// requests of the same SHAPE: with one worker on one shard, the first
// solve grows the pinned workspace and every later same-shape request
// (different values, so the cache never answers) draws every buffer
// from warm pools — the per-shard miss counter in /statsz stays flat.
// The per-representation counters must account every prepared request.
func TestStatszSparseShardMissesFlat(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1})

	solveOne := func(seed uint64) {
		doc := sparseInstance(t, 5, 16, seed)
		req := Request{Instance: doc, Eps: 0.3, Seed: 1, Scale: 0.05, MaxIter: 8, SketchEps: 0.5}
		resp, body := postJSON(t, ts.URL+"/v1/decision", &req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if h := resp.Header.Get("X-Psdpd-Cache"); h != "miss" {
			t.Fatalf("cache disposition %q, want miss (distinct instances must not collide)", h)
		}
	}

	solveOne(101) // warm-up: pools grow here
	st := s.Stats()
	if len(st.ShardPoolMisses) != 1 {
		t.Fatalf("ShardPoolMisses has %d entries, want 1", len(st.ShardPoolMisses))
	}
	warm := st.ShardPoolMisses[0]
	if warm == 0 {
		t.Fatal("first sparse solve should populate the worker's workspace")
	}

	const repeats = 4
	for i := uint64(0); i < repeats; i++ {
		solveOne(201 + i) // same shape (5 groups over the same graph family), fresh values
	}
	st = s.Stats()
	if got := st.ShardPoolMisses[0]; got != warm {
		t.Errorf("shard 0 missed %d more times across %d same-shape sparse requests, want 0", got-warm, repeats)
	}
	if st.PoolMisses != warm {
		t.Errorf("total pool misses %d, want %d", st.PoolMisses, warm)
	}
	if st.RequestsSparse != repeats+1 {
		t.Errorf("RequestsSparse = %d, want %d", st.RequestsSparse, repeats+1)
	}
	if st.RequestsDense != 0 || st.RequestsFactored != 0 || st.RequestsProgram != 0 {
		t.Errorf("unexpected non-sparse representation counts: dense=%d factored=%d program=%d",
			st.RequestsDense, st.RequestsFactored, st.RequestsProgram)
	}
}

// The dense oracle must reject a sparse instance at the door (400, no
// queue slot), and the operator oracles must accept it.
func TestSparseOracleValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	doc := sparseInstance(t, 4, 12, 61)
	resp, body := postJSON(t, ts.URL+"/v1/decision",
		&Request{Instance: doc, Eps: 0.3, Seed: 1, Oracle: "dense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dense oracle on sparse instance: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/decision",
		&Request{Instance: doc, Eps: 0.3, Seed: 1, Oracle: "exact", Scale: 0.1, MaxIter: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact oracle on sparse instance: status %d: %s", resp.StatusCode, body)
	}
}

// Sparse digests canonicalize triplet order: the same constraint
// listed in different entry orders (with duplicate splits) is ONE cache
// entry — the second request is a hit returning the first's bytes.
func TestSparseDigestTripletOrderIrrelevant(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	a := Request{Eps: 0.3, Seed: 2, MaxIter: 6, Instance: &instio.Instance{M: 2, Sparse: []instio.SparseMatrix{
		{Entries: [][3]float64{{0, 0, 1}, {0, 1, 0.5}, {1, 0, 0.5}, {1, 1, 2}}},
	}}}
	b := Request{Eps: 0.3, Seed: 2, MaxIter: 6, Instance: &instio.Instance{M: 2, Sparse: []instio.SparseMatrix{
		{Entries: [][3]float64{{1, 1, 2}, {1, 0, 0.25}, {0, 1, 0.5}, {0, 0, 1}, {1, 0, 0.25}}},
	}}}
	resp1, body1 := postJSON(t, ts.URL+"/v1/decision", &a)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/decision", &b)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-Psdpd-Cache"); h != "hit" {
		t.Fatalf("reordered triplets missed the cache (disposition %q)", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit returned different bytes")
	}
}

// Retry-After on a 429 is derived from live backpressure — queue depth
// over worker count times the observed solve-latency EWMA — not a
// hardcoded constant. With the EWMA preset to 2s, one blocked worker,
// and two queued jobs, the rejected client is ~3 rounds out: header 6.
func TestRetryAfterDerivedFromBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 2})
	var started atomic.Int32
	gate := make(chan struct{})
	defer close(gate)
	s.testHookBeforeSolve = func() {
		started.Add(1)
		<-gate
	}
	s.solveSeconds.Store(math.Float64bits(2.0))

	doc := denseInstance(t, 6, 8, 67)
	mkReq := func(seed uint64) Request {
		return Request{Instance: doc, Eps: 0.25, Seed: seed}
	}
	done := make(chan struct{}, 3)
	send := func(seed uint64) {
		req := mkReq(seed)
		tryPostJSON(ts.URL+"/v1/decision", &req)
		done <- struct{}{}
	}

	// One request on the worker, two in the depth-2 queue.
	go send(1)
	waitFor(t, func() bool { return started.Load() == 1 })
	go send(2)
	go send(3)
	waitFor(t, func() bool { return s.pool.QueueDepth() == 2 })

	// Rejected client: ceil((2 queued + 1 worker)/1 worker) = 3 rounds
	// at 2s each.
	req := mkReq(4)
	resp, body := postJSON(t, ts.URL+"/v1/decision", &req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Errorf("Retry-After %q, want \"6\" (3 rounds x 2s EWMA)", got)
	}

	// A pathological EWMA is clamped to 30s, never parking the client
	// for minutes.
	s.solveSeconds.Store(math.Float64bits(100.0))
	resp, _ = postJSON(t, ts.URL+"/v1/decision", &req)
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Errorf("Retry-After %q, want clamp \"30\"", got)
	}

	// A cold server (no solve observed yet) still advertises at least
	// 1s — never 0, which clients would treat as "immediately".
	s.solveSeconds.Store(0)
	resp, _ = postJSON(t, ts.URL+"/v1/decision", &req)
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After %q, want floor \"1\"", got)
	}
}

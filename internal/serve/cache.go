package serve

import (
	"container/list"
	"sync"
)

// cache is the content-addressed result cache: marshaled 2xx response
// bodies keyed by the request digest, with LRU eviction at a fixed
// entry cap. Hits return the exact bytes of the original response, so a
// cached answer is bitwise identical to the solve that produced it —
// the serving-layer analogue of the golden-corpus guarantee.
type cache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[digest]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key  digest
	body []byte
	// iters is the solver iteration count of the cached solve — served
	// in the X-Psdpd-Iterations header. Solves are deterministic, so the
	// count is part of the content the digest addresses: hits repeat it
	// bitwise just like the body.
	iters int
}

// newCache returns a cache holding at most max entries; max <= 0
// disables caching (every Get misses, Put drops).
func newCache(max int) *cache {
	return &cache{max: max, ll: list.New(), m: make(map[digest]*list.Element)}
}

// Get returns the cached body and iteration count for key, or
// (nil, 0). Callers must not mutate the returned slice.
func (c *cache) Get(key digest) ([]byte, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheEntry)
		return e.body, e.iters
	}
	c.misses++
	return nil, 0
}

// Put stores body (and the solve's iteration count) under key, evicting
// the least recently used entry when over capacity. The cache takes
// ownership of body.
func (c *cache) Put(key digest, body []byte, iters int) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.body, e.iters = body, iters
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, iters: iters})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns (hits, misses) so far.
func (c *cache) Counters() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

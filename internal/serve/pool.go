package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/work"
)

// ErrQueueFull is returned by Pool.Do when the target shard's admission
// queue is at capacity. The HTTP layer maps it to 429 + Retry-After —
// backpressure, not failure.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrPoolClosed is returned by Pool.Do after Close.
var ErrPoolClosed = errors.New("serve: pool closed")

// poolFn is one unit of work executed on a worker: it receives the
// request context (checked between solver iterations) and the worker's
// pinned workspace, and returns the marshal-ready result.
type poolFn func(ctx context.Context, ws *work.Workspace) (any, error)

type jobResult struct {
	v   any
	err error
}

type job struct {
	ctx context.Context
	fn  poolFn
	res chan jobResult // buffered(1): the worker never blocks on delivery
	// at is the admission timestamp; the worker derives the queue-wait
	// observation from it when an observer is installed.
	at time.Time
}

// shard is one independent slice of the pool: a bounded queue feeding a
// fixed set of workers. Requests are routed to shards by content digest,
// so repeats of an instance shape land on workers whose workspace pools
// are already warm for exactly those buffer sizes.
type shard struct {
	jobs chan *job
}

// Pool is a sharded worker pool. Each worker goroutine owns one
// *work.Workspace for its entire lifetime — the steady-state-reuse
// discipline that makes the solver's inner loop allocation-free carries
// over to the server: after a worker has seen an instance shape once,
// every later solve of that shape draws all scratch from its pinned
// pools and misses nothing.
type Pool struct {
	shards []*shard
	wg     sync.WaitGroup
	// mu serializes admission against Close: senders hold it shared, so
	// no job can race onto a channel that Close is about to close.
	mu     sync.RWMutex
	closed atomic.Bool

	// executed counts jobs whose fn actually ran; skipped counts jobs
	// drained with an already-dead context (no workspace touched).
	executed atomic.Int64
	skipped  atomic.Int64
	// misses[w] mirrors worker w's workspace miss counter after each
	// job, so tests and /statsz can watch for pool-miss growth (e.g.
	// after a cancellation storm) without racing on the workspace.
	misses []atomic.Int64

	// onWait, when non-nil, observes the queue wait (admission → pickup)
	// of every job a worker picks up, executed or skipped. Install it
	// with SetQueueWaitObserver before the first Do.
	onWait func(time.Duration)
}

// NewPool starts a pool with the given number of shards and workers.
// Workers are distributed round-robin over shards (every shard gets at
// least one); each shard's admission queue holds queueDepth jobs beyond
// the ones being executed.
func NewPool(shards, workers, queueDepth int) *Pool {
	if shards < 1 {
		shards = 1
	}
	if workers < shards {
		workers = shards
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{
		shards: make([]*shard, shards),
		misses: make([]atomic.Int64, workers),
	}
	for i := range p.shards {
		p.shards[i] = &shard{jobs: make(chan *job, queueDepth)}
	}
	for w := 0; w < workers; w++ {
		sh := p.shards[w%shards]
		p.wg.Add(1)
		go p.worker(w, sh)
	}
	return p
}

func (p *Pool) worker(id int, sh *shard) {
	defer p.wg.Done()
	ws := work.New() // pinned: lives exactly as long as this worker
	for j := range sh.jobs {
		if p.onWait != nil {
			p.onWait(time.Since(j.at))
		}
		if err := j.ctx.Err(); err != nil {
			// Cancelled while queued: answer without touching the
			// workspace, so storms of dead requests cost nothing.
			p.skipped.Add(1)
			j.res <- jobResult{err: err}
			continue
		}
		v, err := j.fn(j.ctx, ws)
		p.executed.Add(1)
		p.misses[id].Store(int64(ws.Misses()))
		j.res <- jobResult{v: v, err: err}
	}
}

// Do routes fn to the shard selected by key, waits for the result, and
// returns it. It never blocks on admission: a full shard queue returns
// ErrQueueFull immediately. If ctx ends while the job is queued or
// running, Do returns the context error; the worker still observes the
// cancelled context, abandons the solve at the next iteration
// checkpoint, and releases every drawn buffer back to its pinned
// workspace before taking the next job.
func (p *Pool) Do(ctx context.Context, key uint64, fn poolFn) (any, error) {
	// A request that is already dead takes no queue slot: under an
	// expiry storm the queue must stay available for live work instead
	// of filling with corpses a worker then has to drain one by one.
	if err := ctx.Err(); err != nil {
		p.skipped.Add(1)
		return nil, err
	}
	j := &job{ctx: ctx, fn: fn, res: make(chan jobResult, 1), at: time.Now()}
	sh := p.shards[key%uint64(len(p.shards))]
	p.mu.RLock()
	if p.closed.Load() {
		p.mu.RUnlock()
		return nil, ErrPoolClosed
	}
	select {
	case sh.jobs <- j:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return nil, ErrQueueFull
	}
	select {
	case r := <-j.res:
		return r.v, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Misses sums the workspace miss counters across all workers as of each
// worker's last completed job.
func (p *Pool) Misses() int64 {
	var total int64
	for i := range p.misses {
		total += p.misses[i].Load()
	}
	return total
}

// ShardMisses reports the workspace miss counters aggregated per shard
// (workers are assigned to shards round-robin, worker w → shard
// w mod shards). Digest routing keeps repeats of an instance shape on
// one shard, so a healthy steady state shows every shard's counter
// flat across repeated same-shape requests — the signal /statsz
// exposes and the server tests assert.
func (p *Pool) ShardMisses() []int64 {
	out := make([]int64, len(p.shards))
	for w := range p.misses {
		out[w%len(p.shards)] += p.misses[w].Load()
	}
	return out
}

// Executed reports how many jobs ran (excluding queue-cancelled skips).
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Skipped reports jobs drained with an already-cancelled context.
func (p *Pool) Skipped() int64 { return p.skipped.Load() }

// QueueDepth reports the total number of queued (not yet picked up)
// jobs across shards.
func (p *Pool) QueueDepth() int {
	depth := 0
	for _, sh := range p.shards {
		depth += len(sh.jobs)
	}
	return depth
}

// SetQueueWaitObserver installs fn to observe every job's queue wait
// (admission → worker pickup). It must be called before the first Do;
// the channel handoff then publishes it to the workers.
func (p *Pool) SetQueueWaitObserver(fn func(time.Duration)) { p.onWait = fn }

// Shards reports the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// ShardDepth reports the number of queued jobs in shard i.
func (p *Pool) ShardDepth(i int) int { return len(p.shards[i].jobs) }

// QueueCap reports each shard's admission-queue capacity.
func (p *Pool) QueueCap() int { return cap(p.shards[0].jobs) }

// ShardMissCount reports the workspace miss counter aggregated over the
// workers of shard i (worker w → shard w mod shards).
func (p *Pool) ShardMissCount(i int) int64 {
	var total int64
	for w := i; w < len(p.misses); w += len(p.shards) {
		total += p.misses[w].Load()
	}
	return total
}

// Saturated reports whether every shard's admission queue is at
// capacity — the readiness signal a front tier health-gates on: a
// saturated pool answers 429 to any new solve, so routing fresh
// traffic elsewhere beats queuing it here.
func (p *Pool) Saturated() bool {
	for _, sh := range p.shards {
		if len(sh.jobs) < cap(sh.jobs) {
			return false
		}
	}
	return true
}

// Close stops admission, waits for queued jobs to drain, and stops the
// workers. Do after Close returns ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed.Swap(true) {
		p.mu.Unlock()
		return
	}
	for _, sh := range p.shards {
		close(sh.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

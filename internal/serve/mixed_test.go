package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"testing"

	"repro/internal/instio"
	"repro/internal/mixed"
)

// mixedFromPack wraps a plain instance document's packing side into a
// mixed document with a single all-ones covering row (every coordinate
// contributes to coverage, so the dynamics have something to do on both
// sides).
func mixedFromPack(t *testing.T, pack *instio.Instance) *instio.Instance {
	t.Helper()
	n := len(pack.Dense) + len(pack.Factored) + len(pack.Sparse)
	if n == 0 {
		t.Fatal("pack document has no constraints")
	}
	md := &instio.MixedDoc{
		Dense:    pack.Dense,
		Factored: pack.Factored,
		Sparse:   pack.Sparse,
		Rows:     1,
	}
	for i := 0; i < n; i++ {
		md.Cover = append(md.Cover, [3]float64{0, float64(i), 1})
	}
	return &instio.Instance{M: pack.M, Mixed: md}
}

// solveMixedDirect runs the exact library call the server's mixed
// closure runs, for bitwise comparison.
func solveMixedDirect(t *testing.T, req *Request) *mixed.Result {
	t.Helper()
	p, err := instio.BuildMixed(req.Instance)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.coreOptions()
	if err != nil {
		t.Fatal(err)
	}
	res, err := mixed.Solve(p, req.Eps, mixed.Options{
		MaxIter: req.MaxIter,
		Seed:    req.Seed,
		Oracle:  opts.Oracle,
		Engine:  opts.Engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The mixed service contract mirrors the decision one: /v1/mixed is
// bitwise identical to the direct psdp.SolveMixed call across every
// representation and engine, at any GOMAXPROCS.
func TestMixedMatchesLibraryBitwise(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"dense-mmw", Request{Instance: mixedFromPack(t, denseInstance(t, 6, 8, 111)), Eps: 0.2, Seed: 5}},
		{"dense-alo", Request{Instance: mixedFromPack(t, denseInstance(t, 6, 8, 111)), Eps: 0.2, Seed: 5, Engine: "alo"}},
		{"factored-mmw", Request{Instance: mixedFromPack(t, factoredInstance(t, 8, 12, 121)), Eps: 0.25, Seed: 7, MaxIter: 300}},
		{"sparse-mmw", Request{Instance: mixedFromPack(t, sparseInstance(t, 6, 18, 131)), Eps: 0.25, Seed: 13, MaxIter: 300}},
		{"sparse-alo", Request{Instance: mixedFromPack(t, sparseInstance(t, 6, 18, 131)), Eps: 0.25, Seed: 13, Engine: "alo", MaxIter: 300}},
	}
	for _, procs := range []int{1, 8} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s-procs%d", tc.name, procs), func(t *testing.T) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))

				want := solveMixedDirect(t, &tc.req)

				_, ts := newTestServer(t, Config{Workers: 2})
				resp, body := postJSON(t, ts.URL+"/v1/mixed", &tc.req)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status %d: %s", resp.StatusCode, body)
				}
				var got MixedResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatal(err)
				}
				if got.Kind != "mixed" || got.Status != want.Status.String() || got.Engine != want.Engine {
					t.Fatalf("outcome drift: %s/%s/%s vs mixed/%s/%s", got.Kind, got.Status, got.Engine, want.Status, want.Engine)
				}
				if got.Iterations != want.Iterations || got.Capped != want.Capped {
					t.Fatalf("trajectory drift: %d/%d vs %d/%d", got.Iterations, got.Capped, want.Iterations, want.Capped)
				}
				if !sameBits(float64(got.MinCoverage), want.MinCoverage) || !sameBits(float64(got.LambdaMax), want.LambdaMax) {
					t.Fatalf("certificate drift: %v/%v vs %v/%v", got.MinCoverage, got.LambdaMax, want.MinCoverage, want.LambdaMax)
				}
				sameVecBits(t, "x", got.X, want.X)
			})
		}
	}
}

// Identical re-POSTs to /v1/mixed hit the content-addressed cache and
// return byte-identical bodies; the mixed per-representation counters
// sum to exactly the admitted mixed requests.
func TestMixedCacheHitAndCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Shards: 1})
	reqs := []Request{
		{Instance: mixedFromPack(t, denseInstance(t, 6, 8, 141)), Eps: 0.2, Seed: 5},
		{Instance: mixedFromPack(t, factoredInstance(t, 8, 12, 151)), Eps: 0.25, Seed: 7, MaxIter: 200},
		{Instance: mixedFromPack(t, sparseInstance(t, 6, 18, 161)), Eps: 0.25, Seed: 13, MaxIter: 200},
	}
	var first [][]byte
	for i := range reqs {
		resp, body := postJSON(t, ts.URL+"/v1/mixed", &reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Psdpd-Cache"); got != "miss" {
			t.Fatalf("request %d: first POST cache state %q, want miss", i, got)
		}
		first = append(first, body)
	}
	for i := range reqs {
		resp, body := postJSON(t, ts.URL+"/v1/mixed", &reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("re-POST %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Psdpd-Cache"); got != "hit" {
			t.Fatalf("re-POST %d: cache state %q, want hit", i, got)
		}
		if !bytes.Equal(body, first[i]) {
			t.Fatalf("re-POST %d: bytes differ from first solve", i)
		}
	}
	st := s.Stats()
	if st.Admitted != 6 {
		t.Fatalf("admitted = %d, want 6", st.Admitted)
	}
	if st.Solves != 3 || st.CacheHits != 3 {
		t.Fatalf("solves/cacheHits = %d/%d, want 3/3", st.Solves, st.CacheHits)
	}
	mixedSum := st.RequestsMixedDense + st.RequestsMixedFactored + st.RequestsMixedSparse
	if mixedSum != st.Admitted {
		t.Fatalf("mixed representation counters sum to %d, admitted %d", mixedSum, st.Admitted)
	}
	if st.RequestsMixedDense != 2 || st.RequestsMixedFactored != 2 || st.RequestsMixedSparse != 2 {
		t.Fatalf("per-representation mixed counters %d/%d/%d, want 2/2/2",
			st.RequestsMixedDense, st.RequestsMixedFactored, st.RequestsMixedSparse)
	}
	// The plain representation counters must not have moved: mixed
	// workload is its own family.
	if st.RequestsDense+st.RequestsFactored+st.RequestsSparse+st.RequestsProgram != 0 {
		t.Fatal("mixed requests leaked into the plain representation counters")
	}
	// Engine counters follow the same admitted-sum discipline (default
	// engine is mmw here).
	if st.RequestsMMW != 6 || st.RequestsALO != 0 {
		t.Fatalf("engine counters mmw=%d alo=%d, want 6/0", st.RequestsMMW, st.RequestsALO)
	}
}

// Mixed requests resolve "auto" to a concrete engine (mixed.Solve does
// so per instance), so the auto spelling shares the explicit pick's
// content address and its admission counter.
func TestMixedAutoEngineMergesWithExplicit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Shards: 1})
	doc := mixedFromPack(t, sparseInstance(t, 6, 18, 171))
	// eps 0.05 on a sparse pack: ResolveEngine(auto) picks ALO.
	auto := Request{Instance: doc, Eps: 0.05, Seed: 3, Engine: "auto", MaxIter: 50}
	explicit := Request{Instance: doc, Eps: 0.05, Seed: 3, Engine: "alo", MaxIter: 50}
	_, abody, adig := postForDigest(t, ts.URL+"/v1/mixed", &auto)
	eresp, ebody, edig := postForDigest(t, ts.URL+"/v1/mixed", &explicit)
	if adig != edig {
		t.Fatalf("auto digest %s != explicit alo digest %s", adig, edig)
	}
	if eresp.Header.Get("X-Psdpd-Cache") != "hit" || !bytes.Equal(abody, ebody) {
		t.Fatal("explicit alo request did not reuse the auto result")
	}
	st := s.Stats()
	if st.RequestsALO != 2 || st.RequestsAuto != 0 {
		t.Fatalf("engine counters alo=%d auto=%d, want 2/0 (auto resolves for mixed)", st.RequestsALO, st.RequestsAuto)
	}
}

// A delta against a sparse-packed mixed base materializes a mixed
// instance and warm-starts the mixed solve from the base's final
// iterate, under a lineage address separate from the cold one.
func TestMixedDeltaWarmStart(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Shards: 1})
	doc := mixedFromPack(t, sparseInstance(t, 6, 14, 181))
	base := Request{Instance: doc, Eps: 0.25, Seed: 5}
	resp, baseBody, baseDigest := postForDigest(t, ts.URL+"/v1/mixed", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve: status %d: %s", resp.StatusCode, baseBody)
	}
	if baseDigest == "" {
		t.Fatal("base solve returned no X-Psdpd-Digest header")
	}

	// ≤5% drift on the packing side; the covering side carries over.
	deltaDoc := &instio.Instance{Delta: &instio.Delta{
		Base: baseDigest,
		Scale: []instio.DeltaScale{
			{I: 0, By: 1.04}, {I: 2, By: 0.97},
		},
	}}
	dreq := Request{Instance: deltaDoc, Eps: 0.25, Seed: 5}
	dresp, dbody, ddigest := postForDigest(t, ts.URL+"/v1/delta", &dreq)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta solve: status %d: %s", dresp.StatusCode, dbody)
	}
	if got := dresp.Header.Get("X-Psdpd-Cache"); got != "miss" {
		t.Fatalf("first delta solve cache state %q, want miss", got)
	}
	var warm MixedResponse
	if err := json.Unmarshal(dbody, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Kind != "mixed" {
		t.Fatalf("delta against mixed base answered kind %q, want mixed", warm.Kind)
	}
	if !warm.WarmStarted {
		t.Fatal("delta solve did not warm-start from the base iterate")
	}

	// A repeat of the same delta hits the warm lineage address.
	rresp, rbody := postJSON(t, ts.URL+"/v1/delta", &dreq)
	if rresp.StatusCode != http.StatusOK || rresp.Header.Get("X-Psdpd-Cache") != "hit" {
		t.Fatalf("repeat delta: status %d cache %q", rresp.StatusCode, rresp.Header.Get("X-Psdpd-Cache"))
	}
	if !bytes.Equal(rbody, dbody) {
		t.Fatal("repeat delta bytes differ")
	}

	// Cold-solving the same materialized content through /v1/mixed is a
	// separate content address: warm bytes never leak into it.
	mat, err := instio.ApplyDelta(doc, deltaDoc)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Mixed == nil {
		t.Fatal("materialized delta lost the mixed section")
	}
	creq := Request{Instance: mat, Eps: 0.25, Seed: 5}
	cresp, cbody, cdigest := postForDigest(t, ts.URL+"/v1/mixed", &creq)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: status %d: %s", cresp.StatusCode, cbody)
	}
	if got := cresp.Header.Get("X-Psdpd-Cache"); got != "miss" {
		t.Fatalf("cold solve of delta content was a cache %q: warm bytes leaked", got)
	}
	if cdigest == ddigest {
		t.Fatal("warm and cold mixed solves share a content address")
	}
	var cold MixedResponse
	if err := json.Unmarshal(cbody, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted {
		t.Fatal("cold solve reports a warm start")
	}
	if warm.Status != cold.Status {
		t.Fatalf("warm landed on %q, cold on %q", warm.Status, cold.Status)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm used %d iterations, cold %d (warm start made it worse)", warm.Iterations, cold.Iterations)
	}

	st := s.Stats()
	if st.DeltaRequests != 2 {
		t.Fatalf("deltaRequests = %d, want 2", st.DeltaRequests)
	}
	if st.WarmStarts != 1 || st.ColdFallbacks != 0 {
		t.Fatalf("warmStarts = %d coldFallbacks = %d, want 1/0", st.WarmStarts, st.ColdFallbacks)
	}
	if len(st.DeltaLineage) != 1 {
		t.Fatalf("lineage has %d entries, want 1", len(st.DeltaLineage))
	}
	lin := st.DeltaLineage[0]
	if lin.Base != baseDigest || lin.Derived != ddigest || !lin.WarmStarted || lin.Iterations != warm.Iterations {
		t.Fatalf("lineage record %+v inconsistent (base %s derived %s iters %d)", lin, baseDigest, ddigest, warm.Iterations)
	}
}

// Mixed deltas that change the variable count are rejected: the
// covering columns pin it.
func TestMixedDeltaRejectsReshape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Shards: 1})
	doc := mixedFromPack(t, sparseInstance(t, 6, 14, 191))
	base := Request{Instance: doc, Eps: 0.25, Seed: 5, MaxIter: 100}
	resp, body, baseDigest := postForDigest(t, ts.URL+"/v1/mixed", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve: status %d: %s", resp.StatusCode, body)
	}
	dreq := Request{Instance: &instio.Instance{Delta: &instio.Delta{
		Base:   baseDigest,
		Remove: []int{0},
	}}, Eps: 0.25, Seed: 5}
	dresp, dbody := postJSON(t, ts.URL+"/v1/delta", &dreq)
	if dresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reshaping mixed delta: status %d: %s", dresp.StatusCode, dbody)
	}
}

// Mixed-specific validation failures answer 400 and leave the
// admission counters flat.
func TestMixedValidationErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	valid := mixedFromPack(t, denseInstance(t, 4, 6, 201))
	badCover := mixedFromPack(t, denseInstance(t, 4, 6, 201))
	badCover.Mixed.Cover[0][2] = -1
	cases := []struct {
		name string
		req  Request
	}{
		{"no instance", Request{Eps: 0.2}},
		{"plain instance", Request{Instance: denseInstance(t, 4, 6, 201), Eps: 0.2}},
		{"negative cover", Request{Instance: badCover, Eps: 0.2}},
		{"scale", Request{Instance: valid, Eps: 0.2, Scale: 0.5}},
		{"bad engine", Request{Instance: valid, Eps: 0.2, Engine: "warp"}},
		{"bad eps", Request{Instance: valid, Eps: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/mixed", &tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
		})
	}
	st := s.Stats()
	if st.Admitted != 0 {
		t.Fatalf("admitted = %d after pure-rejection traffic, want 0", st.Admitted)
	}
	if st.RequestsMixedDense+st.RequestsMixedFactored+st.RequestsMixedSparse != 0 {
		t.Fatal("rejected requests moved the mixed representation counters")
	}
}

// kind "mixed" works inside /v1/batch like the other kinds.
func TestMixedInBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	mreq := Request{Kind: "mixed", Instance: mixedFromPack(t, denseInstance(t, 4, 6, 211)), Eps: 0.2, Seed: 5}
	dreq := Request{Kind: "decision", Instance: denseInstance(t, 4, 6, 211), Eps: 0.2, Seed: 5}
	resp, body := postJSON(t, ts.URL+"/v1/batch", &BatchRequest{Requests: []Request{mreq, dreq}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 2 {
		t.Fatalf("%d batch responses, want 2", len(out.Responses))
	}
	for i, item := range out.Responses {
		if item.Status != http.StatusOK {
			t.Fatalf("batch item %d: status %d error %q", i, item.Status, item.Error)
		}
	}
	var mr MixedResponse
	if err := json.Unmarshal(out.Responses[0].Response, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Kind != "mixed" {
		t.Fatalf("batch mixed item answered kind %q", mr.Kind)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// mustJSONRequest builds a POST with a marshaled JSON body, for tests
// that need to set headers before sending.
func mustJSONRequest(t *testing.T, url string, v any) *http.Request {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return req
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// The /metrics exposition must be well-formed Prometheus text and carry
// the core series after real traffic, and the iteration count served in
// X-Psdpd-Iterations must be identical between the cold solve and the
// cache hit (it is part of the deterministic content the digest
// addresses).
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	req := Request{Instance: denseInstance(t, 6, 8, 301), Eps: 0.25, Seed: 4}
	resp1, _ := postJSON(t, ts.URL+"/v1/decision", &req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("decision: status %d", resp1.StatusCode)
	}
	iters1 := resp1.Header.Get("X-Psdpd-Iterations")
	if iters1 == "" || iters1 == "0" {
		t.Fatalf("miss served X-Psdpd-Iterations %q, want positive count", iters1)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/decision", &req)
	if got := resp2.Header.Get("X-Psdpd-Cache"); got != "hit" {
		t.Fatalf("repeat request: cache %q, want hit", got)
	}
	if got := resp2.Header.Get("X-Psdpd-Iterations"); got != iters1 {
		t.Fatalf("hit served X-Psdpd-Iterations %q, miss served %q — must match", got, iters1)
	}

	mresp, text := getBody(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if err := obs.CheckExposition(text); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	for _, want := range []string{
		"psdpd_requests_total 2",
		"psdpd_solves_total 1",
		"psdpd_cache_hits_total 1",
		`psdpd_admitted_total{kind="decision",rep="dense",engine="mmw"} 2`,
		`psdpd_solver_phase_seconds_total{phase="oracle"}`,
		"psdpd_solver_iterations_total",
		`psdpd_request_seconds_bucket{endpoint="decision",le="+Inf"} 2`,
		`psdpd_solve_seconds_count{kind="decision"} 1`,
		"psdpd_queue_wait_seconds_count",
		`psdpd_queue_depth{shard="0"} 0`,
		"psdpd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Phase telemetry reached the registry: total iterations equal the
	// count the response advertised.
	if !strings.Contains(text, "psdpd_solver_iterations_total "+iters1) {
		t.Errorf("psdpd_solver_iterations_total does not match header %s:\n%s", iters1,
			grepLines(text, "psdpd_solver_iterations_total"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// /statsz must report the solver phase totals, and they must be
// consistent: expm time is a component of oracle time, and a real solve
// spends nonzero time in each instrumented phase.
func TestStatszPhaseTotals(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := Request{Instance: sparseInstance(t, 4, 40, 77), Eps: 0.3, Seed: 5}
	resp, _ := postJSON(t, ts.URL+"/v1/decision", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decision: status %d", resp.StatusCode)
	}
	st := s.Stats()
	if st.SolverIterations <= 0 {
		t.Fatalf("SolverIterations = %d, want > 0", st.SolverIterations)
	}
	if st.SolverOracleNS <= 0 || st.SolverExpmNS <= 0 {
		t.Fatalf("phase totals oracle=%d expm=%d, want both > 0", st.SolverOracleNS, st.SolverExpmNS)
	}
	if st.SolverExpmNS > st.SolverOracleNS {
		t.Fatalf("expm %dns exceeds oracle %dns (expm is a component of the oracle phase)",
			st.SolverExpmNS, st.SolverOracleNS)
	}
	if st.SolverUpdateNS < 0 || st.SolverBookkeepNS < 0 {
		t.Fatalf("negative phase totals: update=%d bookkeep=%d", st.SolverUpdateNS, st.SolverBookkeepNS)
	}
}

// DisableMetrics must remove the endpoint (404) without disturbing the
// solve path.
func TestMetricsDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DisableMetrics: true})
	if s.Metrics() != nil {
		t.Fatal("Metrics() should be nil when disabled")
	}
	resp, _ := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with metrics disabled: status %d, want 404", resp.StatusCode)
	}
	req := Request{Instance: denseInstance(t, 5, 6, 303), Eps: 0.25, Seed: 1}
	sresp, _ := postJSON(t, ts.URL+"/v1/decision", &req)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("decision with metrics disabled: status %d", sresp.StatusCode)
	}
}

// Request IDs: a client-supplied X-Request-Id is echoed back verbatim;
// requests without one get distinct generated IDs.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	hreq, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("X-Request-Id", "client-abc-123")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-abc-123" {
		t.Fatalf("echoed request ID %q, want client-abc-123", got)
	}

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		r, _ := getBody(t, ts.URL+"/healthz")
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("no generated X-Request-Id")
		}
		if ids[id] {
			t.Fatalf("generated request ID %q repeated", id)
		}
		ids[id] = true
	}
}

// Readiness splits from liveness under backpressure: with the one
// worker held and the one queue slot filled, every shard queue is
// saturated, so /readyz answers 503 while /healthz stays 200; draining
// the queue restores readiness.
func TestReadyzBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 1})
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release() // never leave the worker parked if an assert fails
	var started atomic.Int32
	s.testHookBeforeSolve = func() { started.Add(1); <-gate }

	doc := denseInstance(t, 5, 6, 305)
	var wg sync.WaitGroup
	send := func(seed uint64) {
		defer wg.Done()
		req := Request{Instance: doc, Eps: 0.25, Seed: seed}
		tryPostJSON(ts.URL+"/v1/decision", &req)
	}
	// Seed 1 occupies the worker; seed 2 occupies the queue slot.
	wg.Add(2)
	go send(1)
	waitFor(t, func() bool { return started.Load() >= 1 })
	go send(2)
	waitFor(t, func() bool { return s.pool.QueueDepth() == 1 })

	resp, _ := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while saturated: status %d, want 503", resp.StatusCode)
	}
	hresp, _ := getBody(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while saturated: status %d, want 200 (liveness is not readiness)", hresp.StatusCode)
	}

	release()
	wg.Wait()
	waitFor(t, func() bool { return s.pool.QueueDepth() == 0 })
	resp2, _ := getBody(t, ts.URL+"/readyz")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after drain: status %d, want 200", resp2.StatusCode)
	}
}

// The slow-solve ring records successful solves at/over the threshold
// with the request ID as the join key back to the logs, and serves them
// newest first at /debugz/slow.
func TestSlowSolveRing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SlowSolve: time.Nanosecond})

	req := Request{Instance: denseInstance(t, 5, 6, 307), Eps: 0.25, Seed: 2}
	hreq := mustJSONRequest(t, ts.URL+"/v1/decision", &req)
	hreq.Header.Set("X-Request-Id", "slow-test-1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decision: status %d", resp.StatusCode)
	}

	entries := s.SlowSnapshot()
	if len(entries) == 0 {
		t.Fatal("slow ring empty after a solve over the threshold")
	}
	e := entries[0]
	if e.Kind != "decision" || e.Status != http.StatusOK {
		t.Fatalf("ring entry = %+v, want kind decision status 200", e)
	}
	if e.RequestID != "slow-test-1" {
		t.Fatalf("ring entry request ID %q, want slow-test-1", e.RequestID)
	}
	if e.Iterations <= 0 || e.DurationMS <= 0 || e.Digest == "" {
		t.Fatalf("ring entry incomplete: %+v", e)
	}

	dresp, dbody := getBody(t, ts.URL+"/debugz/slow")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debugz/slow: status %d", dresp.StatusCode)
	}
	if !strings.Contains(dbody, `"requestId":"slow-test-1"`) {
		t.Fatalf("/debugz/slow body missing the recorded entry: %s", dbody)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/mixed"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/store"
	"repro/internal/work"
)

// Config sizes the server. The zero value is usable: every field has a
// production-lean default filled in by New.
type Config struct {
	// Workers is the total number of solver workers (default GOMAXPROCS).
	Workers int
	// Shards is the number of independent queue+worker groups requests
	// are routed over by content digest (default min(Workers, 8)).
	Shards int
	// QueueDepth bounds each shard's admission queue; a full queue
	// answers 429 + Retry-After (default 64).
	QueueDepth int
	// CacheEntries caps the content-addressed result cache; 0 means the
	// default (1024), negative disables caching.
	CacheEntries int
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request solve deadline when the request
	// carries none (default 30s); MaxTimeout caps request-supplied
	// deadlines (default 5m).
	DefaultTimeout, MaxTimeout time.Duration
	// MaxBatch caps /v1/batch items (default 256).
	MaxBatch int
	// RevisionEntries caps the warm-start revision store (final solver
	// states + materialized instances, keyed by response digest); 0
	// means the default (128), negative disables incremental solving
	// (/v1/delta answers 404 for every base).
	RevisionEntries int
	// DefaultEngine is what a request with no engine field gets: the
	// zero value is core.EngineMMW (the reference engine), matching the
	// library default. Requests naming an engine are unaffected.
	DefaultEngine core.EngineKind
	// DisableMetrics turns off the /metrics registry (the endpoint then
	// answers 404). The default — metrics on — is designed to be safe:
	// every hot-path series is preallocated atomics, so leaving it
	// enabled costs no allocations and no locks on the request path.
	DisableMetrics bool
	// Logger, when non-nil, receives one structured record per HTTP
	// request (request ID, method, path, status, duration, cache
	// disposition). Nil disables request logging.
	Logger *slog.Logger
	// SlowSolve is the duration at or above which a successful solve is
	// recorded in the /debugz/slow ring (default 1s). Failed solves
	// (5xx) are always recorded.
	SlowSolve time.Duration

	// Results, when non-nil, replaces the default in-process result LRU
	// (store.NewResultLRU(CacheEntries)). The cluster tier injects a
	// peer-backed store here so a miss asks the digest's owner before
	// solving locally.
	Results store.ResultStore
	// Revisions, when non-nil, replaces the default in-process revision
	// LRU (store.NewRevisionLRU(RevisionEntries)).
	Revisions store.RevisionStore
	// Placement maps content digests to owning replicas; nil means
	// placement.Local{} (single-node: every digest is owned here). The
	// server itself never proxies solves — routing is the front tier's
	// job — but drain redirects and /statsz membership read it.
	Placement placement.Placement
	// SelfURL is this replica's base URL as it appears in the member
	// list ("" for single-node). Drain redirects exclude it.
	SelfURL string
	// SolveFloor, when positive, holds the worker for at least this long
	// per EXECUTED solve (cache hits and singleflight shares are
	// unaffected). It exists for capacity modeling: on a machine with
	// fewer cores than replicas under test, per-replica throughput is
	// pinned to Workers/SolveFloor so cluster scaling measurements are
	// honest about what they measure. Production deployments leave it 0.
	SolveFloor time.Duration
	// ClusterInfo, when non-nil, is sampled by /statsz into the
	// "cluster" section (membership view, per-peer counters). The
	// cluster wiring in cmd/psdpd installs it; single-node leaves it nil.
	ClusterInfo func() any
	// RegisterMetrics, when non-nil, runs against the /metrics registry
	// at construction so outer layers (the cluster stores' per-peer
	// fetch counters) can export series without a second registry.
	RegisterMetrics func(*obs.Registry)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = min(c.Workers, 8)
	}
	if c.Shards > c.Workers {
		c.Shards = c.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.RevisionEntries == 0 {
		c.RevisionEntries = 128
	}
	if c.SlowSolve <= 0 {
		c.SlowSolve = time.Second
	}
	return c
}

// flight is one in-progress solve shared by every concurrent request
// with the same digest (singleflight): the first arrival leads and
// solves; followers wait on done and reuse the leader's bytes (and the
// leader's iteration count — deterministic, so shared answers carry the
// same X-Psdpd-Iterations a lone solve would).
type flight struct {
	done   chan struct{}
	status int
	cache  string
	body   []byte
	iters  int
}

type counters struct {
	requests    atomic.Int64
	admitted    atomic.Int64
	solves      atomic.Int64
	dedupShared atomic.Int64
	rejected    atomic.Int64
	cancelled   atomic.Int64
	errors      atomic.Int64
	inFlight    atomic.Int64
	// Per-representation counts of ADMITTED requests — bumped at the
	// single point where a request has passed every validation gate and
	// enters the solve pipeline, so operators can see which constraint
	// encodings a deployment actually serves (and correlate pool-miss
	// growth with representation mix). Malformed or rejected payloads
	// must never inflate these: a 400 is not workload.
	reqDense    atomic.Int64
	reqFactored atomic.Int64
	reqSparse   atomic.Int64
	reqProgram  atomic.Int64
	// Mixed requests count under their packing representation in a
	// separate family (a mixed-sparse solve exercises different code
	// than a plain sparse decision), so the three mixed counters sum to
	// exactly the admitted /v1/mixed requests.
	reqMixedDense    atomic.Int64
	reqMixedFactored atomic.Int64
	reqMixedSparse   atomic.Int64
	// Incremental-solving counters: delta requests that materialized
	// and entered the pipeline, 404s for unknown/evicted bases, and the
	// warm-vs-cold split of how delta solves actually started.
	deltaRequests     atomic.Int64
	deltaBaseMisses   atomic.Int64
	warmStarts        atomic.Int64
	warmColdFallbacks atomic.Int64
	// Per-engine counts of ADMITTED requests, keyed by the EFFECTIVE
	// engine — the server default substituted for "", and Auto resolved
	// to its concrete pick for decision requests (maximize/solve keep
	// "auto": their inner decisions re-resolve per call, so no single
	// concrete engine is honest). Same discipline as the representation
	// counters: bumped once per admitted request, never by a 400.
	reqEngineMMW  atomic.Int64
	reqEngineALO  atomic.Int64
	reqEngineAuto atomic.Int64
}

// countRepresentation bumps the per-representation admission counter.
// Call it exactly once per admitted request, never before validation
// has fully passed.
func (s *Server) countRepresentation(rep string) {
	switch rep {
	case repDense:
		s.stats.reqDense.Add(1)
	case repFactored:
		s.stats.reqFactored.Add(1)
	case repSparse:
		s.stats.reqSparse.Add(1)
	case repProgram:
		s.stats.reqProgram.Add(1)
	case repMixedDense:
		s.stats.reqMixedDense.Add(1)
	case repMixedFactored:
		s.stats.reqMixedFactored.Add(1)
	case repMixedSparse:
		s.stats.reqMixedSparse.Add(1)
	}
}

// countEngine bumps the per-engine admission counter for the effective
// engine label ("mmw", "alo", or "auto"). Same contract as
// countRepresentation: exactly once per admitted request.
func (s *Server) countEngine(engine string) {
	switch engine {
	case core.EngineNameMMW:
		s.stats.reqEngineMMW.Add(1)
	case core.EngineNameALO:
		s.stats.reqEngineALO.Add(1)
	case "auto":
		s.stats.reqEngineAuto.Add(1)
	}
}

const (
	repDense         = "dense"
	repFactored      = "factored"
	repSparse        = "sparse"
	repProgram       = "program"
	repMixedDense    = "mixed-dense"
	repMixedFactored = "mixed-factored"
	repMixedSparse   = "mixed-sparse"
)

// representationOf labels a built constraint set for the admission
// counters.
func representationOf(set core.ConstraintSet) string {
	switch set.(type) {
	case *core.DenseSet:
		return repDense
	case *core.FactoredSet:
		return repFactored
	case *core.SparseSet:
		return repSparse
	}
	return ""
}

// Server is the psdpd HTTP solve service: wire handlers in front of a
// sharded worker pool with pinned workspaces, a bounded admission queue
// with backpressure, and a content-addressed result cache with
// singleflight deduplication.
//
// Endpoints:
//
//	POST /v1/decision  — one ε-decision call (Algorithm 3.1)
//	POST /v1/maximize  — the full packing optimizer (Lemma 2.2)
//	POST /v1/solve     — a general positive SDP (Appendix A pipeline)
//	POST /v1/mixed     — a mixed packing/covering system (§5 extension)
//	POST /v1/batch     — many of the above in one request
//	GET  /healthz      — liveness (process up)
//	GET  /readyz       — readiness (503 while all admission queues are full)
//	GET  /statsz       — counters (requests, cache, queue, pool)
//	GET  /metrics      — Prometheus text exposition (unless disabled)
//	GET  /debugz/slow  — ring of the most recent slow/failed solves
type Server struct {
	cfg     Config
	pool    *Pool
	results store.ResultStore
	revs    store.RevisionStore
	// revsEnabled gates warm-start recording: true when a revision store
	// was injected or RevisionEntries is positive.
	revsEnabled bool
	place       placement.Placement
	lineage     *lineageLog
	mux         *http.ServeMux
	stats       counters
	start       time.Time

	// draining flips once on SIGTERM: admission stops (new solves are
	// 307-redirected to a healthy peer, or 503 with no peers), in-flight
	// work finishes, /readyz goes 503 so the front drops this member.
	draining       atomic.Bool
	drainRedirects atomic.Int64
	drainNext      atomic.Uint64

	// metrics is the /metrics registry wiring (nil when disabled); slow
	// is the /debugz/slow ring; phases aggregates SolveStats across
	// every solve; logger receives per-request records (nil = off).
	metrics *serveMetrics
	slow    *slowLog
	phases  phaseTotals
	logger  *slog.Logger

	fmu     sync.Mutex
	flights map[digest]*flight

	// solveSeconds is an EWMA of observed successful solve wall times
	// (float64 bits in seconds), fed by solveClosure and read by
	// retryAfterSeconds to turn a 429 into an actionable hint. Zero
	// means "no solve observed yet".
	solveSeconds atomic.Uint64

	// testHookBeforeSolve, when non-nil, runs on the worker goroutine
	// immediately before each solve. Tests use it to hold solves open
	// deterministically (dedup, queue-overflow).
	testHookBeforeSolve func()
}

// New starts a Server (its worker pool begins running immediately).
// Callers must Close it to stop the workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		pool:        NewPool(cfg.Shards, cfg.Workers, cfg.QueueDepth),
		results:     cfg.Results,
		revs:        cfg.Revisions,
		revsEnabled: cfg.Revisions != nil || cfg.RevisionEntries > 0,
		place:       cfg.Placement,
		lineage:     newLineageLog(32),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		flights:     make(map[digest]*flight),
		slow:        &slowLog{},
		logger:      cfg.Logger,
	}
	if s.results == nil {
		s.results = store.NewResultLRU(cfg.CacheEntries)
	}
	if s.revs == nil {
		s.revs = store.NewRevisionLRU(cfg.RevisionEntries)
	}
	if s.place == nil {
		s.place = placement.Local{}
	}
	if !cfg.DisableMetrics {
		s.metrics = newServeMetrics(s)
		if cfg.RegisterMetrics != nil {
			cfg.RegisterMetrics(s.metrics.reg)
		}
	}
	s.mux.HandleFunc("POST /v1/decision", s.handleKind("decision"))
	s.mux.HandleFunc("POST /v1/maximize", s.handleKind("maximize"))
	s.mux.HandleFunc("POST /v1/solve", s.handleKind("solve"))
	s.mux.HandleFunc("POST /v1/mixed", s.handleKind("mixed"))
	s.mux.HandleFunc("POST /v1/delta", s.handleDelta)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/peer/result/{digest}", s.handlePeerResult)
	s.mux.HandleFunc("GET /v1/peer/revision/{digest}", s.handlePeerRevision)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /debugz/slow", s.handleSlow)
	if s.metrics != nil {
		s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	}
	return s
}

// Metrics returns the Prometheus exposition handler backing GET
// /metrics (nil when metrics are disabled), so an ops listener can
// serve the same registry on a separate address.
func (s *Server) Metrics() http.Handler {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.reg.Handler()
}

// SlowSnapshot returns the retained slow/failed-solve records, newest
// first — the same data GET /debugz/slow serves.
func (s *Server) SlowSnapshot() []SlowEntry { return s.slow.Snapshot() }

// Close stops the worker pool after draining queued jobs. The caller is
// responsible for stopping the HTTP listener first.
func (s *Server) Close() { s.pool.Close() }

// Stats snapshots the service counters.
func (s *Server) Stats() StatsResponse {
	hits, _ := s.results.Counters()
	var cluster any
	if s.cfg.ClusterInfo != nil {
		cluster = s.cfg.ClusterInfo()
	}
	return StatsResponse{
		Requests:              s.stats.requests.Load(),
		Admitted:              s.stats.admitted.Load(),
		Solves:                s.stats.solves.Load(),
		CacheHits:             hits,
		CacheEntries:          s.results.Len(),
		DedupShared:           s.stats.dedupShared.Load(),
		Rejected:              s.stats.rejected.Load(),
		Cancelled:             s.stats.cancelled.Load(),
		Errors:                s.stats.errors.Load(),
		InFlight:              s.stats.inFlight.Load(),
		QueueDepth:            s.pool.QueueDepth(),
		PoolExecuted:          s.pool.Executed(),
		PoolSkipped:           s.pool.Skipped(),
		PoolMisses:            s.pool.Misses(),
		ShardPoolMisses:       s.pool.ShardMisses(),
		RequestsDense:         s.stats.reqDense.Load(),
		RequestsFactored:      s.stats.reqFactored.Load(),
		RequestsSparse:        s.stats.reqSparse.Load(),
		RequestsProgram:       s.stats.reqProgram.Load(),
		RequestsMixedDense:    s.stats.reqMixedDense.Load(),
		RequestsMixedFactored: s.stats.reqMixedFactored.Load(),
		RequestsMixedSparse:   s.stats.reqMixedSparse.Load(),
		RequestsMMW:           s.stats.reqEngineMMW.Load(),
		RequestsALO:           s.stats.reqEngineALO.Load(),
		RequestsAuto:          s.stats.reqEngineAuto.Load(),
		DeltaRequests:         s.stats.deltaRequests.Load(),
		DeltaBaseMisses:       s.stats.deltaBaseMisses.Load(),
		WarmStarts:            s.stats.warmStarts.Load(),
		ColdFallbacks:         s.stats.warmColdFallbacks.Load(),
		Revisions:             s.revs.Len(),
		DeltaLineage:          s.lineage.Snapshot(),
		SolverIterations:      s.phases.iterations.Load(),
		SolverOracleNS:        s.phases.oracleNS.Load(),
		SolverExpmNS:          s.phases.expmNS.Load(),
		SolverUpdateNS:        s.phases.updateNS.Load(),
		SolverBookkeepNS:      s.phases.bookkeepNS.Load(),
		UptimeSeconds:         int64(time.Since(s.start).Seconds()),
		Draining:              s.draining.Load(),
		DrainRedirects:        s.drainRedirects.Load(),
		Cluster:               cluster,
	}
}

// handleHealthz is liveness only: the process is up and serving HTTP.
// Load-balancer health gates belong on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz is readiness: 503 while every shard's admission queue is
// at capacity, because a saturated pool answers 429 to any new solve —
// a front tier should route fresh traffic elsewhere until the queues
// drain. Liveness (/healthz) stays 200 throughout: the process is
// healthy, just full.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "draining"})
		return
	}
	if s.pool.Saturated() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "all admission queues saturated"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleSlow serves the slow/failed-solve ring, newest first.
func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"entries": s.slow.Snapshot()})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleKind(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		if s.redirectIfDraining(w, r) {
			return
		}
		var req Request
		if err := s.decodeBody(w, r, &req); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		res := s.solveOne(r.Context(), kind, &req, nil)
		if res.haveDigest {
			w.Header().Set("X-Psdpd-Digest", res.digest.String())
		}
		if res.status == http.StatusOK {
			w.Header().Set("X-Psdpd-Iterations", strconv.Itoa(res.iters))
		}
		s.writeResult(w, res.status, res.cache, res.body)
	}
}

// handleDelta is the incremental-solving endpoint: it resolves the
// delta's base digest in the revision store, materializes base+delta
// (canonicalized like a directly-posted sparse document), and runs it
// through the ordinary decision pipeline with the base's final solver
// state as the warm start. Identity deltas land on the base's plain
// content address and return the base's exact bytes from the cache;
// genuine revisions solve under a warm lineage address so warm bytes
// never pollute the cold content address space.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	if s.redirectIfDraining(w, r) {
		return
	}
	var req Request
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Instance == nil || req.Instance.Delta == nil {
		s.writeError(w, http.StatusBadRequest, errors.New("serve: delta request needs an instance carrying a delta document"))
		return
	}
	if req.Program != nil {
		s.writeError(w, http.StatusBadRequest, errors.New("serve: delta request cannot carry a program"))
		return
	}
	dd := req.Instance.Delta
	baseKey, err := parseDigest(dd.Base)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rev := s.revs.Get(baseKey)
	if rev == nil {
		s.stats.deltaBaseMisses.Add(1)
		s.writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: unknown base revision %s (solve the base via /v1/decision first; it may have been evicted)", dd.Base))
		return
	}
	mat, err := instio.ApplyDelta(rev.Inst, req.Instance)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	dreq := req
	dreq.Instance = mat
	// The base revision decides the solve kind: a delta against a mixed
	// base materializes a mixed document and re-solves the mixed system
	// (warm-started from the base's final iterate), everything else is a
	// decision solve.
	kind := "decision"
	warm := &warmLink{baseKey: baseKey, baseHex: dd.Base}
	if mat.Mixed != nil {
		kind = "mixed"
		warm.mixedX = rev.MixedX
	} else {
		warm.state = rev.State
	}
	res := s.solveOne(r.Context(), kind, &dreq, warm)
	if res.haveDigest {
		w.Header().Set("X-Psdpd-Digest", res.digest.String())
	}
	if res.status == http.StatusOK {
		w.Header().Set("X-Psdpd-Iterations", strconv.Itoa(res.iters))
	}
	w.Header().Set("X-Psdpd-Base", dd.Base)
	s.writeResult(w, res.status, res.cache, res.body)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	if s.redirectIfDraining(w, r) {
		return
	}
	var batch BatchRequest
	if err := s.decodeBody(w, r, &batch); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(batch.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("serve: batch has no requests"))
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: batch has %d requests, max %d", len(batch.Requests), s.cfg.MaxBatch))
		return
	}
	out := BatchResponse{Responses: make([]BatchItemResult, len(batch.Requests))}
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &batch.Requests[i]
			kind := req.Kind
			if kind == "" {
				kind = "decision"
			}
			res := s.solveOne(r.Context(), kind, req, nil)
			item := BatchItemResult{Status: res.status, Cache: res.cache}
			if res.status == http.StatusOK {
				item.Response = res.body
			} else {
				var er ErrorResponse
				if json.Unmarshal(res.body, &er) == nil {
					item.Error = er.Error
				}
			}
			out.Responses[i] = item
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, &out)
}

// warmLink carries the incremental-solving context of a delta request
// into the solve pipeline: the revision key the client named, its hex
// form for lineage records, and the stored warm-start payload — the
// final decision state for decision bases, the final iterate for mixed
// bases (exactly one is non-nil).
type warmLink struct {
	baseKey digest
	baseHex string
	state   *core.DecisionState
	mixedX  []float64
}

// solveResult is solveOne's outcome: HTTP status, cache disposition
// ("hit", "miss", "shared", or "" for pre-digest failures), the
// marshaled body, the solver iteration count behind a 200 (served in
// X-Psdpd-Iterations; deterministic, so hits and shares repeat it
// exactly), and the content address the response lives under
// (haveDigest false for pre-digest failures).
type solveResult struct {
	status     int
	cache      string
	body       []byte
	iters      int
	digest     digest
	haveDigest bool
}

// solveOne times solveRun and feeds the slow/failed ring: every 5xx,
// and every 200 whose wall time reached Config.SlowSolve, leaves a
// record behind (with the request ID, when the context carries one, as
// the join key back to the access log).
func (s *Server) solveOne(clientCtx context.Context, kind string, req *Request, warm *warmLink) solveResult {
	start := time.Now()
	res := s.solveRun(clientCtx, kind, req, warm)
	elapsed := time.Since(start)
	slow := res.status == http.StatusOK && elapsed >= s.cfg.SlowSolve
	if slow || res.status >= http.StatusInternalServerError {
		e := SlowEntry{
			Time:       nowRFC3339(),
			RequestID:  requestIDFrom(clientCtx),
			Kind:       kind,
			Status:     res.status,
			Cache:      res.cache,
			DurationMS: float64(elapsed.Nanoseconds()) / 1e6,
			Iterations: res.iters,
		}
		if res.haveDigest {
			e.Digest = res.digest.String()
		}
		if res.status != http.StatusOK {
			e.Detail = slowDetail(res.body)
		}
		s.slow.add(e)
	}
	return res
}

// solveRun runs one request end to end: validate and build, digest,
// cache lookup, singleflight join-or-lead, pool admission, solve.
// warm is non-nil on the /v1/delta path only.
func (s *Server) solveRun(clientCtx context.Context, kind string, req *Request, warm *warmLink) solveResult {
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)

	p, err := s.prepare(kind, req, warm)
	if err != nil {
		return solveResult{status: http.StatusBadRequest, body: marshalError(err)}
	}
	// The request is now admitted: every validation gate has passed and
	// it enters the solve pipeline. This is the single point where the
	// admission, per-representation, and delta counters move —
	// rejections above never touch them.
	s.stats.admitted.Add(1)
	s.countRepresentation(p.rep)
	s.countEngine(p.engine)
	s.metrics.countAdmitted(kind, p.rep, p.engine)
	if p.isDelta {
		s.stats.deltaRequests.Add(1)
	}

	// Followers share only success. A leader's failure can be specific
	// to that leader — its tighter timeoutMs fired, its admission lost a
	// queue race — so a follower whose flight fails retries the loop:
	// it finds the cache filled, leads its own solve (under its own
	// deadline), or at worst inherits a second failure and reports it.
	const maxAttempts = 3
	out := solveResult{digest: p.d, haveDigest: true}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if cached, iters := s.results.Get(p.d); cached != nil {
			// A decision hit whose revision was evicted falls through to
			// a fresh (deterministic, byte-identical) solve purely to
			// repopulate the revision store; everything else returns the
			// cached bytes outright.
			if !p.wantRevision || s.revs.Get(p.d) != nil {
				out.status, out.cache, out.body, out.iters = http.StatusOK, "hit", cached, iters
				return out
			}
		}

		s.fmu.Lock()
		if f, ok := s.flights[p.d]; ok {
			s.fmu.Unlock()
			s.stats.dedupShared.Add(1)
			select {
			case <-f.done:
				out.status, out.cache, out.body, out.iters = f.status, "shared", f.body, f.iters
				if out.status == http.StatusOK {
					return out
				}
				continue // leader-specific failure: retry as our own leader
			case <-clientCtx.Done():
				s.stats.cancelled.Add(1)
				out.status, out.cache, out.body = http.StatusServiceUnavailable, "shared", marshalError(clientCtx.Err())
				return out
			}
		}
		f := &flight{done: make(chan struct{})}
		s.flights[p.d] = f
		s.fmu.Unlock()

		f.status, f.cache, f.body, f.iters = s.execute(req, p.d, p.fn)
		s.fmu.Lock()
		delete(s.flights, p.d)
		s.fmu.Unlock()
		close(f.done)
		out.status, out.cache, out.body, out.iters = f.status, f.cache, f.body, f.iters
		return out
	}
	return out
}

// execute is the singleflight leader's path: admission, solve, cache
// fill. The solve context is detached from any single client connection
// — followers and the cache outlive the leader's socket — and bounded
// by the per-request deadline, which is the cancellation mechanism:
// when it fires mid-solve, the decision stepper aborts at its next
// iteration checkpoint and the worker's workspace gets every buffer
// back before the next job.
func (s *Server) execute(req *Request, d digest, fn poolFn) (int, string, []byte, int) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = min(time.Duration(req.TimeoutMs)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	v, err := s.pool.Do(ctx, shardKey(d), fn)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.stats.rejected.Add(1)
		return http.StatusTooManyRequests, "miss", marshalError(err), 0
	case errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable, "miss", marshalError(err), 0
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.cancelled.Add(1)
		return http.StatusGatewayTimeout, "miss", marshalError(err), 0
	case errors.Is(err, context.Canceled):
		s.stats.cancelled.Add(1)
		return http.StatusServiceUnavailable, "miss", marshalError(err), 0
	case err != nil:
		s.stats.errors.Add(1)
		return http.StatusInternalServerError, "miss", marshalError(err), 0
	}
	body, merr := json.Marshal(v)
	if merr != nil {
		s.stats.errors.Add(1)
		return http.StatusInternalServerError, "miss", marshalError(merr), 0
	}
	// The iteration count rides with the cached body: it is a property
	// of the deterministic solve, so hits and shares must serve the same
	// X-Psdpd-Iterations a fresh solve would.
	iters := 0
	if ic, ok := v.(interface{ iterCount() int }); ok {
		iters = ic.iterCount()
	}
	s.results.Put(d, body, iters)
	return http.StatusOK, "miss", body, iters
}

// prepared is the outcome of request validation: the solve closure,
// the content address the result lives under (on the delta path this
// is the warm lineage address; plain holds the content-only address),
// and the representation label for the admission counters.
type prepared struct {
	fn    poolFn
	d     digest
	plain digest
	rep   string
	// engine is the effective engine label for the admission counters:
	// the canonical (digested) engine, so /statsz agrees with the cache
	// identity about what a request ran.
	engine string
	// wantRevision marks solves that should leave a warm-startable
	// revision behind (sparse decision solves with the store enabled —
	// only sparse instances can be delta bases, so recording dense or
	// factored solves would just pay snapshot copies to evict usable
	// bases): a cache hit whose revision was evicted re-solves instead
	// of short-circuiting, so the store is repopulated and /v1/delta's
	// "re-POST the base" instruction actually works.
	wantRevision bool
	// isDelta marks requests that arrived through /v1/delta (for the
	// admission counter), independent of whether they still carry a
	// warm link after identity-delta demotion.
	isDelta bool
}

// prepare validates the request, builds the instance, and returns the
// solve closure plus the content digest. Everything that can fail from
// bad client input fails here, before any queue slot is taken and
// before any admission counter moves.
func (s *Server) prepare(kind string, req *Request, warm *warmLink) (prepared, error) {
	if math.IsNaN(req.Eps) || req.Eps <= 0 || req.Eps >= 1 {
		return prepared{}, fmt.Errorf("serve: eps = %v out of (0, 1)", req.Eps)
	}
	opts, err := req.coreOptions()
	if err != nil {
		return prepared{}, err
	}
	if req.Engine == "" {
		opts.Engine = s.cfg.DefaultEngine
	}
	if err := opts.Validate(); err != nil {
		return prepared{}, err
	}
	if warm != nil && kind != "decision" && kind != "mixed" {
		return prepared{}, fmt.Errorf("serve: warm start applies to decision and mixed solves only, not %q", kind)
	}

	switch kind {
	case "decision", "maximize":
		if req.Instance == nil {
			return prepared{}, fmt.Errorf("serve: %s request needs an instance", kind)
		}
		if req.Program != nil {
			return prepared{}, fmt.Errorf("serve: %s request cannot carry a program", kind)
		}
		set, err := instio.Build(req.Instance)
		if err != nil {
			return prepared{}, err
		}
		if scale := req.scaleOrOne(); scale != 1 {
			if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
				return prepared{}, fmt.Errorf("serve: scale = %v must be positive and finite", req.Scale)
			}
			set = set.WithScale(scale)
			// Build checked traces before scaling; a huge scale can push
			// them to +Inf here, which would silently zero coordinates in
			// the solver's initial point — and then be cached as a 200.
			for i := 0; i < set.N(); i++ {
				if tr := set.Trace(i); math.IsNaN(tr) || math.IsInf(tr, 0) {
					return prepared{}, fmt.Errorf("serve: scale %v overflows constraint %d trace to %v", scale, i, tr)
				}
			}
		}
		if err := oracleMatchesSet(opts.Oracle, set); err != nil {
			return prepared{}, err
		}
		d, err := requestDigest(kind, req, set, nil, nil, opts.Engine)
		if err != nil {
			return prepared{}, err
		}
		p := prepared{d: d, plain: d, rep: representationOf(set), engine: canonicalEngine(kind, opts.Engine, set, req.Eps).String()}
		eps := req.Eps
		if kind == "decision" {
			p.wantRevision = s.revsEnabled && p.rep == repSparse
			if warm != nil {
				p.isDelta = true
				if d == warm.baseKey {
					// Identity delta: the materialized content IS the base
					// content, so the canonical answer is the base solve
					// itself. Demote to a plain re-solve of the base —
					// normally a cache hit returning the base bytes
					// bitwise; a cold regeneration of those exact bytes
					// (refreshing the revision) when the cache evicted
					// them. Either way the response lands on the base's
					// content address, never a warm lineage address.
					warm = nil
				} else {
					// Warm-started bytes are certified but not bitwise
					// what a cold solve would produce, so they live under
					// a lineage address, never the plain content address.
					p.d = warmDigest(d, warm.baseKey)
				}
			}
			key, inst, record := p.d, req.Instance, p.wantRevision
			p.fn = s.solveClosure("decision", func(ctx context.Context, ws *work.Workspace) (any, error) {
				o := opts
				o.Ctx, o.Workspace = ctx, ws
				var st core.SolveStats
				o.Phases = &st
				// The snapshot costs three O(n) copies at finish; skip it
				// when the revision store is disabled and would drop it.
				o.CaptureState = record
				if warm != nil {
					o.WarmStart = warm.state
				}
				dr, err := core.DecisionPSDP(set, eps, o)
				if err != nil {
					return nil, err
				}
				s.recordPhases(&st)
				if record {
					s.recordRevision(key, inst, dr, warm)
				}
				return decisionResponse(eps, dr), nil
			})
			return p, nil
		}
		p.fn = s.solveClosure("maximize", func(ctx context.Context, ws *work.Workspace) (any, error) {
			o := opts
			o.Ctx, o.Workspace = ctx, ws
			var st core.SolveStats
			o.Phases = &st
			sol, err := core.MaximizePacking(set, eps, o)
			if err != nil {
				return nil, err
			}
			s.recordPhases(&st)
			return maximizeResponse(eps, sol), nil
		})
		return p, nil

	case "mixed":
		if req.Instance == nil {
			return prepared{}, errors.New("serve: mixed request needs an instance")
		}
		if req.Program != nil {
			return prepared{}, errors.New("serve: mixed request cannot carry a program")
		}
		if req.scaleOrOne() != 1 {
			return prepared{}, errors.New("serve: mixed requests do not support scale")
		}
		prob, err := instio.BuildMixed(req.Instance)
		if err != nil {
			return prepared{}, err
		}
		if err := oracleMatchesSet(opts.Oracle, prob.Pack); err != nil {
			return prepared{}, err
		}
		d, err := requestDigest(kind, req, prob.Pack, nil, prob.Cover, opts.Engine)
		if err != nil {
			return prepared{}, err
		}
		p := prepared{d: d, plain: d, rep: "mixed-" + representationOf(prob.Pack),
			engine: canonicalEngine(kind, opts.Engine, prob.Pack, req.Eps).String()}
		// Only sparse-packed mixed instances can be delta bases (same
		// rule as decision: ApplyDelta edits sparse triplets), so only
		// those pay the revision snapshot.
		p.wantRevision = s.revsEnabled && p.rep == repMixedSparse
		if warm != nil {
			p.isDelta = true
			if d == warm.baseKey {
				// Identity delta: demote to a plain re-solve of the base,
				// exactly like the decision path.
				warm = nil
			} else {
				p.d = warmDigest(d, warm.baseKey)
			}
		}
		eps := req.Eps
		mo := mixed.Options{
			MaxIter: req.MaxIter,
			Seed:    req.Seed,
			Oracle:  opts.Oracle,
			Engine:  opts.Engine,
		}
		key, inst, record := p.d, req.Instance, p.wantRevision
		p.fn = s.solveClosure("mixed", func(_ context.Context, _ *work.Workspace) (any, error) {
			o := mo
			if warm != nil {
				// A reshaped delta (added/removed constraints) fails the
				// solver's warm-start shape guard and falls back cold;
				// Result.WarmStarted reports which happened.
				o.WarmStart = warm.mixedX
			}
			mr, err := mixed.Solve(prob, eps, o)
			if err != nil {
				return nil, err
			}
			// The mixed engine has no phase instrumentation (its inner
			// loop is a width-reduced first-order method, not the
			// oracle/expm pipeline); its iterations still count.
			s.phases.iterations.Add(int64(mr.Iterations))
			if record {
				s.recordMixedRevision(key, inst, mr, warm)
			}
			return mixedResponse(eps, mr), nil
		})
		return p, nil

	case "solve":
		if req.Program == nil {
			return prepared{}, errors.New("serve: solve request needs a program")
		}
		if req.Instance != nil {
			return prepared{}, errors.New("serve: solve request cannot carry an instance")
		}
		prog, err := req.Program.build()
		if err != nil {
			return prepared{}, err
		}
		d, err := requestDigest(kind, req, nil, prog, nil, opts.Engine)
		if err != nil {
			return prepared{}, err
		}
		eps := req.Eps
		p := prepared{d: d, plain: d, rep: repProgram, engine: opts.Engine.String()}
		p.fn = s.solveClosure("solve", func(ctx context.Context, ws *work.Workspace) (any, error) {
			o := opts
			o.Ctx, o.Workspace = ctx, ws
			var st core.SolveStats
			o.Phases = &st
			cs, err := core.SolveCovering(prog, eps, o)
			if err != nil {
				return nil, err
			}
			s.recordPhases(&st)
			return solveResponse(eps, cs), nil
		})
		return p, nil

	default:
		return prepared{}, fmt.Errorf("serve: unknown request kind %q", kind)
	}
}

// recordRevision stores the finished decision solve in the revision
// store (making it a warm-startable base for future deltas) and, on
// the delta path, records the lineage and the warm-vs-cold split.
func (s *Server) recordRevision(key digest, inst *instio.Instance, dr *core.DecisionResult, warm *warmLink) {
	rev := &store.Revision{Inst: inst, State: dr.Final}
	if warm != nil {
		// The parent link is what the revision store's pinning policy
		// walks: while this derived revision lives, its base cannot be
		// evicted out from under the warm-start chain.
		rev.Parent = &warm.baseKey
	}
	s.revs.Put(key, rev)
	if warm == nil {
		return
	}
	if dr.WarmStarted {
		s.stats.warmStarts.Add(1)
	} else {
		s.stats.warmColdFallbacks.Add(1)
	}
	s.lineage.Add(LineageEntry{
		Base:        warm.baseHex,
		Derived:     key.String(),
		WarmStarted: dr.WarmStarted,
		Iterations:  dr.Iterations,
	})
}

// recordMixedRevision is recordRevision's mixed counterpart: the
// stored warm-start payload is the final iterate X rather than a
// decision state, and the lineage/warm counters read the mixed result.
func (s *Server) recordMixedRevision(key digest, inst *instio.Instance, mr *mixed.Result, warm *warmLink) {
	rev := &store.Revision{Inst: inst, MixedX: mr.X}
	if warm != nil {
		rev.Parent = &warm.baseKey
	}
	s.revs.Put(key, rev)
	if warm == nil {
		return
	}
	if mr.WarmStarted {
		s.stats.warmStarts.Add(1)
	} else {
		s.stats.warmColdFallbacks.Add(1)
	}
	s.lineage.Add(LineageEntry{
		Base:        warm.baseHex,
		Derived:     key.String(),
		WarmStarted: mr.WarmStarted,
		Iterations:  mr.Iterations,
	})
}

// solveClosure wraps a solve with the counters, the latency EWMA, the
// per-kind solve-latency histogram, and the test hook.
func (s *Server) solveClosure(kind string, fn poolFn) poolFn {
	return func(ctx context.Context, ws *work.Workspace) (any, error) {
		if s.testHookBeforeSolve != nil {
			s.testHookBeforeSolve()
		}
		s.stats.solves.Add(1)
		start := time.Now()
		v, err := fn(ctx, ws)
		if floor := s.cfg.SolveFloor; floor > 0 {
			// Capacity modeling: the worker stays held until the floor
			// elapses, so per-replica throughput is exactly
			// Workers/SolveFloor regardless of how fast the solve ran.
			if rem := floor - time.Since(start); rem > 0 {
				time.Sleep(rem)
			}
		}
		if err == nil {
			sec := time.Since(start).Seconds()
			s.observeSolveSeconds(sec)
			s.metrics.observeSolve(kind, sec)
		}
		return v, err
	}
}

// observeSolveSeconds folds one successful solve's wall time into the
// latency EWMA (weight 1/8; the first observation seeds it). Failed or
// cancelled solves are excluded: a deadline-truncated sample says
// nothing about how long a queued job will actually hold a worker.
func (s *Server) observeSolveSeconds(sec float64) {
	for {
		old := s.solveSeconds.Load()
		ewma := sec
		if old != 0 {
			ewma = math.Float64frombits(old)
			ewma += (sec - ewma) / 8
		}
		if s.solveSeconds.CompareAndSwap(old, math.Float64bits(ewma)) {
			return
		}
	}
}

// retryAfterSeconds derives the Retry-After hint on a 429 from live
// backpressure instead of a constant: the rejected client is behind
// every queued job plus the round already on the workers, the pool
// drains Workers jobs per round, and one round lasts about one EWMA
// solve. Clamped to [1, 30] so a cold server never advertises 0 and a
// pathological queue never parks clients for minutes against a
// transient spike.
func (s *Server) retryAfterSeconds() int {
	ewma := math.Float64frombits(s.solveSeconds.Load())
	w := s.cfg.Workers
	rounds := (s.pool.QueueDepth() + 2*w - 1) / w // ceil((queued+workers)/workers)
	secs := int(math.Ceil(float64(rounds) * ewma))
	return min(max(secs, 1), 30)
}

// oracleMatchesSet front-loads the oracle/representation mismatch the
// solver would otherwise report from inside the pool, so it costs no
// queue slot and maps to 400 rather than 500.
func oracleMatchesSet(kind core.OracleKind, set core.ConstraintSet) error {
	_, isDense := set.(*core.DenseSet)
	switch kind {
	case core.OracleDenseExact:
		if !isDense {
			return errors.New("serve: oracle \"dense\" requires a dense instance")
		}
	case core.OracleFactoredJL, core.OracleFactoredExact:
		if isDense {
			return errors.New("serve: oracles \"jl\" and \"exact\" require a factored or sparse instance")
		}
	}
	return nil
}

func decisionResponse(eps float64, dr *core.DecisionResult) *DecisionResponse {
	gap := math.Inf(1)
	if dr.Lower > 0 {
		gap = dr.Upper/dr.Lower - 1
	}
	return &DecisionResponse{
		Kind:         "decision",
		Eps:          eps,
		Outcome:      dr.Outcome.String(),
		Iterations:   dr.Iterations,
		Lower:        Num(dr.Lower),
		Upper:        Num(dr.Upper),
		RelativeGap:  Num(gap),
		X:            dr.DualX,
		LambdaMaxPsi: Num(dr.LambdaMaxPsi),
		MaxPsiNorm:   Num(dr.MaxPsiNorm),
	}
}

func maximizeResponse(eps float64, sol *core.Solution) *MaximizeResponse {
	return &MaximizeResponse{
		Kind:            "maximize",
		Eps:             eps,
		Value:           Num(sol.Value),
		Lower:           Num(sol.Lower),
		Upper:           Num(sol.Upper),
		RelativeGap:     Num(sol.Gap()),
		X:               sol.X,
		DecisionCalls:   sol.DecisionCalls,
		TotalIterations: sol.TotalIterations,
	}
}

func mixedResponse(eps float64, mr *mixed.Result) *MixedResponse {
	return &MixedResponse{
		Kind:        "mixed",
		Eps:         eps,
		Status:      mr.Status.String(),
		Engine:      mr.Engine,
		Iterations:  mr.Iterations,
		Capped:      mr.Capped,
		WarmStarted: mr.WarmStarted,
		MinCoverage: Num(mr.MinCoverage),
		LambdaMax:   Num(mr.LambdaMax),
		X:           mr.X,
	}
}

func solveResponse(eps float64, cs *core.CoveringSolution) *SolveResponse {
	return &SolveResponse{
		Kind:            "solve",
		Eps:             eps,
		Lower:           Num(cs.Lower),
		Upper:           Num(cs.Upper),
		DualX:           cs.DualX,
		Objective:       Num(cs.Objective),
		DecisionCalls:   cs.DecisionCalls,
		TotalIterations: cs.TotalIterations,
	}
}

// decodeBody strictly parses a JSON request body into dst.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("serve: parsing request: %w", err)
	}
	return nil
}

func (s *Server) writeResult(w http.ResponseWriter, status int, cacheState string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if cacheState != "" {
		h.Set("X-Psdpd-Cache", cacheState)
	}
	if status == http.StatusTooManyRequests {
		h.Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeResult(w, status, "", marshalError(err))
}

func marshalError(err error) []byte {
	body, merr := json.Marshal(&ErrorResponse{Error: err.Error()})
	if merr != nil {
		return []byte(`{"error":"internal error"}`)
	}
	return body
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

package serve

import (
	"net/http"
	"testing"

	"repro/internal/core"
)

// The exported ContentDigest must agree byte-for-byte with the digest
// the serving path computes (the X-Psdpd-Digest header): it is the
// routing key the cluster front uses, and any divergence would scatter
// one digest's cache entries across replicas.
func TestContentDigestMatchesServedHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	doc := denseInstance(t, 6, 8, 23)
	cases := []struct {
		name, kind string
		req        Request
	}{
		{"decision", "decision", Request{Instance: doc, Eps: 0.25, Seed: 3, Scale: 0.5}},
		{"decision-alo", "decision", Request{Instance: doc, Eps: 0.25, Seed: 3, Scale: 0.5, Engine: "alo"}},
		{"decision-factored", "decision", Request{Instance: factoredInstance(t, 10, 16, 29), Eps: 0.3, Seed: 7, Scale: 0.1, SketchEps: 0.4}},
		{"maximize", "maximize", Request{Instance: doc, Eps: 0.25, Seed: 3}},
		{"solve", "solve", Request{Program: &ProgramDoc{
			C: [][]float64{{2, 0}, {0, 1}},
			A: [][][]float64{{{1, 0}, {0, 0.5}}},
			B: []float64{1},
		}, Eps: 0.2, Seed: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ContentDigest(tc.kind, &tc.req, core.EngineMMW)
			if err != nil {
				t.Fatal(err)
			}
			resp, body := postJSON(t, ts.URL+"/v1/"+tc.kind, &tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Psdpd-Digest"); got != want.String() {
				t.Fatalf("ContentDigest %s, served header %s", want, got)
			}
		})
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/core"
)

// The engine is part of the cache identity: the same instance solved
// under "mmw" and under "alo" produces different (both certified)
// bytes, so the second request must be a distinct cache entry — never
// the first engine's bytes replayed. This is the regression test for
// the engine/digest mismatch: before the engine was folded into
// serve.digest, the alo request below came back as a cache "hit"
// carrying the mmw response verbatim.
func TestEngineSplitsCacheIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	doc := denseInstance(t, 8, 10, 11)

	mmwReq := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.5, Engine: "mmw"}
	aloReq := mmwReq
	aloReq.Engine = "alo"

	resp1, body1 := postJSON(t, ts.URL+"/v1/decision", mmwReq)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("mmw solve: status %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/decision", aloReq)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("alo solve: status %d: %s", resp2.StatusCode, body2)
	}

	if got := resp2.Header.Get("X-Psdpd-Cache"); got != "miss" {
		t.Errorf("alo request after mmw solve: cache %q, want \"miss\" (an mmw result must never answer an alo request)", got)
	}
	if d1, d2 := resp1.Header.Get("X-Psdpd-Digest"), resp2.Header.Get("X-Psdpd-Digest"); d1 == d2 {
		t.Errorf("mmw and alo requests share content address %s", d1)
	}

	var dr1, dr2 DecisionResponse
	if err := json.Unmarshal(body1, &dr1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &dr2); err != nil {
		t.Fatal(err)
	}
	// The engines run genuinely different dynamics; identical iteration
	// counts AND identical iterates would mean the alo request was
	// answered by the mmw solver (or vice versa).
	if dr1.Iterations == dr2.Iterations && string(body1) == string(body2) {
		t.Errorf("mmw and alo responses are byte-identical (%d iterations): wrong engine served", dr1.Iterations)
	}

	// Repeats under each engine stay deterministic cache hits of their
	// OWN bytes.
	for _, tc := range []struct {
		req  Request
		want []byte
	}{{mmwReq, body1}, {aloReq, body2}} {
		resp, body := postJSON(t, ts.URL+"/v1/decision", tc.req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat: status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Psdpd-Cache"); got != "hit" {
			t.Errorf("repeat: cache %q, want \"hit\"", got)
		}
		if string(body) != string(tc.want) {
			t.Errorf("repeat under engine %q returned different bytes", tc.req.Engine)
		}
	}
}

// Explicit "mmw", the empty engine (server default on a default
// server), and the digests they produce must coincide: all three
// provably produce identical bytes, so they share one content address.
func TestEngineDefaultSharesMMWAddress(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	doc := denseInstance(t, 8, 10, 13)

	def := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.5}
	resp1, body1 := postJSON(t, ts.URL+"/v1/decision", def)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("default solve: status %d: %s", resp1.StatusCode, body1)
	}
	mmw := def
	mmw.Engine = "mmw"
	resp2, body2 := postJSON(t, ts.URL+"/v1/decision", mmw)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mmw solve: status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Psdpd-Cache"); got != "hit" {
		t.Errorf("explicit mmw after default: cache %q, want \"hit\"", got)
	}
	if string(body1) != string(body2) {
		t.Error("default and explicit mmw bytes differ")
	}
}

// An unknown engine string is a 400, never an admitted solve.
func TestEngineUnknownRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := Request{Instance: denseInstance(t, 4, 6, 17), Eps: 0.25, Seed: 1, Engine: "simplex"}
	resp, body := postJSON(t, ts.URL+"/v1/decision", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := s.Stats().Admitted; got != 0 {
		t.Errorf("rejected engine still admitted %d requests", got)
	}
}

// Config.DefaultEngine rewires what the empty engine string means; an
// alo-default server must digest (and solve) "" as alo, sharing bytes
// and address with an explicit alo request and splitting from mmw.
func TestEngineServerDefaultALO(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DefaultEngine: core.EngineALO})
	doc := denseInstance(t, 8, 10, 19)

	def := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.5}
	resp1, body1 := postJSON(t, ts.URL+"/v1/decision", def)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("default solve: status %d: %s", resp1.StatusCode, body1)
	}
	alo := def
	alo.Engine = "alo"
	resp2, body2 := postJSON(t, ts.URL+"/v1/decision", alo)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("alo solve: status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Psdpd-Cache"); got != "hit" {
		t.Errorf("explicit alo on an alo-default server: cache %q, want \"hit\"", got)
	}
	if string(body1) != string(body2) {
		t.Error("server-default alo and explicit alo bytes differ")
	}
	mmw := def
	mmw.Engine = "mmw"
	resp3, _ := postJSON(t, ts.URL+"/v1/decision", mmw)
	if got := resp3.Header.Get("X-Psdpd-Cache"); got != "miss" {
		t.Errorf("mmw on an alo-default server: cache %q, want \"miss\"", got)
	}
}

// /statsz breaks admissions out per effective engine: explicit names
// count under themselves, "" counts under the server default, and
// "auto" on a decision request counts under its concrete resolution
// (here eps 0.25 on a dense instance resolves to mmw) while
// maximize/solve keep the "auto" bucket. Rejections never count.
func TestEngineStatsCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	doc := denseInstance(t, 8, 10, 23)

	post := func(path string, req Request) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+path, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, body)
		}
	}
	post("/v1/decision", Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.5, Engine: "mmw"})
	post("/v1/decision", Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.5, Engine: "alo"})
	// Auto at eps 0.25 resolves to mmw for a dense instance, so this
	// admission lands in the mmw bucket — /statsz agrees with the cache
	// identity about what actually ran.
	post("/v1/decision", Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.5, Engine: "auto"})
	post("/v1/maximize", Request{Instance: doc, Eps: 0.3, Seed: 5, Scale: 0.5, Engine: "auto"})
	// Server default (mmw) for an empty engine field.
	post("/v1/decision", Request{Instance: doc, Eps: 0.25, Seed: 6, Scale: 0.5})
	// A rejected engine moves nothing.
	if resp, _ := postJSON(t, ts.URL+"/v1/decision", Request{Instance: doc, Eps: 0.25, Seed: 7, Engine: "simplex"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine status %d, want 400", resp.StatusCode)
	}

	st := s.Stats()
	if st.RequestsMMW != 3 {
		t.Errorf("RequestsMMW = %d, want 3 (explicit + resolved auto + server default)", st.RequestsMMW)
	}
	if st.RequestsALO != 1 {
		t.Errorf("RequestsALO = %d, want 1", st.RequestsALO)
	}
	if st.RequestsAuto != 1 {
		t.Errorf("RequestsAuto = %d, want 1 (the maximize request)", st.RequestsAuto)
	}
	if total := st.RequestsMMW + st.RequestsALO + st.RequestsAuto; total != st.Admitted {
		t.Errorf("per-engine counters sum to %d, admitted %d", total, st.Admitted)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"

	"repro/internal/instio"
)

// postForDigest POSTs a request and returns the response, body, and the
// X-Psdpd-Digest header.
func postForDigest(t *testing.T, url string, req any) (*http.Response, []byte, string) {
	t.Helper()
	resp, body := postJSON(t, url, req)
	return resp, body, resp.Header.Get("X-Psdpd-Digest")
}

// An identity delta must return the base solve's exact bytes: the
// materialized instance canonicalizes onto the base's plain content
// address, which the cache still holds.
func TestDeltaIdentityReturnsBaseBitwise(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Shards: 1})
	doc := sparseInstance(t, 6, 14, 91)
	base := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp, baseBody, baseDigest := postForDigest(t, ts.URL+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve: status %d: %s", resp.StatusCode, baseBody)
	}
	if baseDigest == "" {
		t.Fatal("base solve returned no X-Psdpd-Digest header")
	}

	idDelta := Request{
		Instance: &instio.Instance{Delta: &instio.Delta{Base: baseDigest}},
		Eps:      0.25, Seed: 5, Scale: 0.2,
	}
	dresp, dbody, ddigest := postForDigest(t, ts.URL+"/v1/delta", &idDelta)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("identity delta: status %d: %s", dresp.StatusCode, dbody)
	}
	if got := dresp.Header.Get("X-Psdpd-Cache"); got != "hit" {
		t.Fatalf("identity delta cache state %q, want hit", got)
	}
	if !bytes.Equal(dbody, baseBody) {
		t.Fatalf("identity delta bytes differ from base:\n%s\nvs\n%s", dbody, baseBody)
	}
	if ddigest != baseDigest {
		t.Fatalf("identity delta digest %s, want base %s", ddigest, baseDigest)
	}
	if got := dresp.Header.Get("X-Psdpd-Base"); got != baseDigest {
		t.Fatalf("X-Psdpd-Base %q, want %q", got, baseDigest)
	}
}

// A genuine delta warm-starts from the base revision's final state and
// must use strictly fewer iterations than a cold solve of the same
// materialized instance — while warm bytes live under their own
// lineage address and never pollute the cold content address.
func TestDeltaWarmStartFewerIterations(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Shards: 1})
	doc := sparseInstance(t, 6, 14, 92)
	base := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp, baseBody, baseDigest := postForDigest(t, ts.URL+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve: status %d: %s", resp.StatusCode, baseBody)
	}

	// ≤5% drift: scale three constraints.
	deltaDoc := &instio.Instance{Delta: &instio.Delta{
		Base: baseDigest,
		Scale: []instio.DeltaScale{
			{I: 0, By: 1.04}, {I: 2, By: 0.97}, {I: 4, By: 1.02},
		},
	}}
	dreq := Request{Instance: deltaDoc, Eps: 0.25, Seed: 5, Scale: 0.2}
	dresp, dbody, ddigest := postForDigest(t, ts.URL+"/v1/delta", &dreq)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta solve: status %d: %s", dresp.StatusCode, dbody)
	}
	if got := dresp.Header.Get("X-Psdpd-Cache"); got != "miss" {
		t.Fatalf("first delta solve cache state %q, want miss", got)
	}
	var warm DecisionResponse
	if err := json.Unmarshal(dbody, &warm); err != nil {
		t.Fatal(err)
	}

	// A repeat of the same delta hits the warm lineage address.
	rresp, rbody := postJSON(t, ts.URL+"/v1/delta", &dreq)
	if rresp.StatusCode != http.StatusOK || rresp.Header.Get("X-Psdpd-Cache") != "hit" {
		t.Fatalf("repeat delta: status %d cache %q", rresp.StatusCode, rresp.Header.Get("X-Psdpd-Cache"))
	}
	if !bytes.Equal(rbody, dbody) {
		t.Fatal("repeat delta bytes differ")
	}

	// Cold-solve the same materialized content through /v1/decision: a
	// separate content address, so this must MISS (warm bytes stayed in
	// their lineage address space) and solve from the cold start.
	mat, err := instio.ApplyDelta(doc, deltaDoc)
	if err != nil {
		t.Fatal(err)
	}
	creq := Request{Instance: mat, Eps: 0.25, Seed: 5, Scale: 0.2}
	cresp, cbody, cdigest := postForDigest(t, ts.URL+"/v1/decision", &creq)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: status %d: %s", cresp.StatusCode, cbody)
	}
	if got := cresp.Header.Get("X-Psdpd-Cache"); got != "miss" {
		t.Fatalf("cold solve of delta content was a cache %q: warm bytes leaked into the plain address", got)
	}
	if cdigest == ddigest {
		t.Fatal("warm and cold solves share a content address")
	}
	var cold DecisionResponse
	if err := json.Unmarshal(cbody, &cold); err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != cold.Outcome {
		t.Fatalf("warm decided %q, cold %q", warm.Outcome, cold.Outcome)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm used %d iterations, cold %d (want strictly fewer)", warm.Iterations, cold.Iterations)
	}

	st := s.Stats()
	if st.DeltaRequests != 2 {
		t.Fatalf("deltaRequests = %d, want 2", st.DeltaRequests)
	}
	if st.WarmStarts != 1 || st.ColdFallbacks != 0 {
		t.Fatalf("warmStarts = %d coldFallbacks = %d, want 1/0", st.WarmStarts, st.ColdFallbacks)
	}
	if st.Revisions < 2 {
		t.Fatalf("revisions = %d, want >= 2 (base + delta)", st.Revisions)
	}
	if len(st.DeltaLineage) != 1 {
		t.Fatalf("lineage has %d entries, want 1", len(st.DeltaLineage))
	}
	lin := st.DeltaLineage[0]
	if lin.Base != baseDigest || lin.Derived != ddigest || !lin.WarmStarted || lin.Iterations != warm.Iterations {
		t.Fatalf("lineage record %+v inconsistent (base %s derived %s iters %d)", lin, baseDigest, ddigest, warm.Iterations)
	}
}

// Deltas can chain: a second revision may name the first delta's
// response digest as its base.
func TestDeltaChainsAcrossRevisions(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Shards: 1})
	doc := sparseInstance(t, 6, 14, 93)
	base := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp, body, d0 := postForDigest(t, ts.URL+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: %d %s", resp.StatusCode, body)
	}
	r1 := Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: d0, Scale: []instio.DeltaScale{{I: 1, By: 1.03}}}}, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp1, body1, d1 := postForDigest(t, ts.URL+"/v1/delta", &r1)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("delta 1: %d %s", resp1.StatusCode, body1)
	}
	r2 := Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: d1, Scale: []instio.DeltaScale{{I: 3, By: 0.98}}}}, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp2, body2, d2 := postForDigest(t, ts.URL+"/v1/delta", &r2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("delta 2: %d %s", resp2.StatusCode, body2)
	}
	if d2 == d1 || d1 == d0 {
		t.Fatal("chained revisions share digests")
	}
	st := s.Stats()
	if st.WarmStarts != 2 {
		t.Fatalf("warmStarts = %d, want 2", st.WarmStarts)
	}
	if len(st.DeltaLineage) != 2 || st.DeltaLineage[0].Base != d1 || st.DeltaLineage[1].Base != d0 {
		t.Fatalf("lineage chain wrong: %+v", st.DeltaLineage)
	}
}

// A base evicted from the revision store but still cached must become
// warm-startable again by re-POSTing it, exactly as the 404 message
// instructs: the cache hit falls through to a fresh (byte-identical)
// solve that repopulates the revision store.
func TestCacheHitRepopulatesEvictedRevision(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RevisionEntries: 1})
	docA := sparseInstance(t, 4, 12, 97)
	docB := sparseInstance(t, 4, 12, 98)
	reqA := Request{Instance: docA, Eps: 0.25, Seed: 5, Scale: 0.2}
	respA, bodyA, digestA := postForDigest(t, ts.URL+"/v1/decision", &reqA)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("solve A: %d %s", respA.StatusCode, bodyA)
	}
	// Solve B evicts A's revision (store capacity 1); A stays cached.
	reqB := Request{Instance: docB, Eps: 0.25, Seed: 5, Scale: 0.2}
	if respB, bodyB := postJSON(t, ts.URL+"/v1/decision", &reqB); respB.StatusCode != http.StatusOK {
		t.Fatalf("solve B: %d %s", respB.StatusCode, bodyB)
	}
	delta := Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: digestA, Scale: []instio.DeltaScale{{I: 0, By: 1.02}}}}, Eps: 0.25, Seed: 5, Scale: 0.2}
	if resp, _ := postJSON(t, ts.URL+"/v1/delta", &delta); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delta against evicted base: status %d, want 404", resp.StatusCode)
	}
	// Re-POST the base: byte-identical response, re-solved (not a
	// short-circuit hit) so the revision exists again.
	resp2, body2, digest2 := postForDigest(t, ts.URL+"/v1/decision", &reqA)
	if resp2.StatusCode != http.StatusOK || digest2 != digestA {
		t.Fatalf("re-POST: %d digest %s (want %s)", resp2.StatusCode, digest2, digestA)
	}
	if !bytes.Equal(body2, bodyA) {
		t.Fatal("re-solve of cached content is not byte-identical")
	}
	// With the revision live again, an identical request is a plain
	// cache hit (no re-solve).
	resp3, _ := postJSON(t, ts.URL+"/v1/decision", &reqA)
	if got := resp3.Header.Get("X-Psdpd-Cache"); got != "hit" {
		t.Fatalf("request with live revision was a cache %q, want hit", got)
	}
	// And the delta that 404'd now warm-starts.
	if resp4, body4 := postJSON(t, ts.URL+"/v1/delta", &delta); resp4.StatusCode != http.StatusOK {
		t.Fatalf("delta after repopulation: %d %s", resp4.StatusCode, body4)
	}
	if got := s.Stats().WarmStarts; got != 1 {
		t.Fatalf("warmStarts = %d, want 1", got)
	}
}

// An identity delta whose base bytes were evicted from the result
// cache (while the revision survived) must regenerate the base
// response cold under the base's own content address — bitwise the
// original bytes, never a warm solve under a lineage digest.
func TestIdentityDeltaRegeneratesEvictedCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheEntries: 1, RevisionEntries: 8})
	docA := sparseInstance(t, 4, 12, 101)
	docB := sparseInstance(t, 4, 12, 102)
	reqA := Request{Instance: docA, Eps: 0.25, Seed: 5, Scale: 0.2}
	respA, bodyA, digestA := postForDigest(t, ts.URL+"/v1/decision", &reqA)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("solve A: %d %s", respA.StatusCode, bodyA)
	}
	// Solve B evicts A's bytes from the 1-entry cache; A's revision
	// survives in the 8-entry store.
	reqB := Request{Instance: docB, Eps: 0.25, Seed: 5, Scale: 0.2}
	if respB, bodyB := postJSON(t, ts.URL+"/v1/decision", &reqB); respB.StatusCode != http.StatusOK {
		t.Fatalf("solve B: %d %s", respB.StatusCode, bodyB)
	}
	id := Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: digestA}}, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp, body, digest := postForDigest(t, ts.URL+"/v1/delta", &id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identity delta: %d %s", resp.StatusCode, body)
	}
	if digest != digestA {
		t.Fatalf("identity delta answered under %s, want the base address %s", digest, digestA)
	}
	if got := resp.Header.Get("X-Psdpd-Cache"); got != "miss" {
		t.Fatalf("identity delta after eviction was a cache %q, want miss (cold regeneration)", got)
	}
	if !bytes.Equal(body, bodyA) {
		t.Fatal("regenerated identity-delta bytes differ from the original base solve")
	}
}

// deltaRequests counts admitted delta solves only: a delta that
// resolves its base but fails validation must leave it flat.
func TestDeltaRequestsCountsAdmittedOnly(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	doc := sparseInstance(t, 4, 12, 99)
	base := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp, body, digest := postForDigest(t, ts.URL+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: %d %s", resp.StatusCode, body)
	}
	badEps := Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: digest}}, Eps: 5, Seed: 5}
	if r, _ := postJSON(t, ts.URL+"/v1/delta", &badEps); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-eps delta: status %d, want 400", r.StatusCode)
	}
	if got := s.Stats().DeltaRequests; got != 0 {
		t.Fatalf("deltaRequests = %d after a rejected delta, want 0", got)
	}
	good := Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: digest, Scale: []instio.DeltaScale{{I: 0, By: 1.01}}}}, Eps: 0.25, Seed: 5, Scale: 0.2}
	if r, b := postJSON(t, ts.URL+"/v1/delta", &good); r.StatusCode != http.StatusOK {
		t.Fatalf("good delta: %d %s", r.StatusCode, b)
	}
	if got := s.Stats().DeltaRequests; got != 1 {
		t.Fatalf("deltaRequests = %d, want 1", got)
	}
}

func TestDeltaUnknownBase404(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := Request{Instance: &instio.Instance{Delta: &instio.Delta{
		Base: "0000000000000000000000000000000000000000000000000000000000000000",
	}}, Eps: 0.25, Seed: 1}
	resp, body := postJSON(t, ts.URL+"/v1/delta", &req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d (%s), want 404", resp.StatusCode, body)
	}
	if got := s.Stats().DeltaBaseMisses; got != 1 {
		t.Fatalf("deltaBaseMisses = %d, want 1", got)
	}
	if got := s.Stats().Admitted; got != 0 {
		t.Fatalf("a 404 delta counted as admitted (%d)", got)
	}
}

func TestDeltaValidationErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	doc := sparseInstance(t, 4, 12, 94)
	base := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp, body, baseDigest := postForDigest(t, ts.URL+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base: %d %s", resp.StatusCode, body)
	}
	admitted := s.Stats().Admitted

	cases := []struct {
		name string
		req  Request
	}{
		{"no-delta", Request{Instance: doc, Eps: 0.25, Seed: 1}},
		{"bad-digest", Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: "zz"}}, Eps: 0.25, Seed: 1}},
		{"bad-edit-index", Request{Instance: &instio.Instance{Delta: &instio.Delta{
			Base: baseDigest, Edit: []instio.DeltaEdit{{I: 99}},
		}}, Eps: 0.25, Seed: 1}},
		{"zero-scale", Request{Instance: &instio.Instance{Delta: &instio.Delta{
			Base: baseDigest, Scale: []instio.DeltaScale{{I: 0, By: 0}},
		}}, Eps: 0.25, Seed: 1}},
		{"bad-eps", Request{Instance: &instio.Instance{Delta: &instio.Delta{Base: baseDigest}}, Eps: 2, Seed: 1}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/delta", &tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}
	if got := s.Stats().Admitted; got != admitted {
		t.Fatalf("rejected deltas moved the admitted counter: %d -> %d", admitted, got)
	}
	if got := s.Stats().RequestsSparse; got != 1 {
		t.Fatalf("rejected deltas moved requestsSparse to %d, want 1 (base only)", got)
	}
}

// Satellite regression: per-representation counters count ADMITTED
// requests only. A storm of malformed and rejected payloads must leave
// every per-representation counter — and the admitted counter — flat.
func TestRejectedRequestsLeaveAdmissionCountersFlat(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	denseDoc := denseInstance(t, 4, 6, 95)

	bad := []struct {
		name     string
		endpoint string
		req      Request
	}{
		{"bad-eps", "/v1/decision", Request{Instance: denseDoc, Eps: 7, Seed: 1}},
		{"no-instance", "/v1/decision", Request{Eps: 0.25, Seed: 1}},
		{"unknown-oracle", "/v1/decision", Request{Instance: denseDoc, Eps: 0.25, Seed: 1, Oracle: "quantum"}},
		{"oracle-mismatch", "/v1/decision", Request{Instance: denseDoc, Eps: 0.25, Seed: 1, Oracle: "jl"}},
		{"bad-scale", "/v1/decision", Request{Instance: denseDoc, Eps: 0.25, Seed: 1, Scale: -1}},
		{"asymmetric-sparse", "/v1/decision", Request{Instance: &instio.Instance{M: 2, Sparse: []instio.SparseMatrix{
			{Entries: [][3]float64{{0, 1, 1}}}, // one triangle only
		}}, Eps: 0.25, Seed: 1}},
		{"ragged-dense", "/v1/decision", Request{Instance: &instio.Instance{M: 2, Dense: [][][]float64{{{1, 0}, {0}}}}, Eps: 0.25, Seed: 1}},
		{"maximize-no-instance", "/v1/maximize", Request{Eps: 0.25, Seed: 1}},
		{"solve-no-program", "/v1/solve", Request{Instance: denseDoc, Eps: 0.25, Seed: 1}},
	}
	for _, tc := range bad {
		resp, body := postJSON(t, ts.URL+tc.endpoint, &tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}
	// Malformed JSON never reaches prepare at all.
	resp, err := http.Post(ts.URL+"/v1/decision", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	st := s.Stats()
	if st.Requests != int64(len(bad))+1 {
		t.Fatalf("requests = %d, want %d", st.Requests, len(bad)+1)
	}
	if st.Admitted != 0 {
		t.Fatalf("admitted = %d after pure rejections, want 0", st.Admitted)
	}
	if st.RequestsDense != 0 || st.RequestsFactored != 0 || st.RequestsSparse != 0 || st.RequestsProgram != 0 {
		t.Fatalf("per-representation counters moved on rejected payloads: dense=%d factored=%d sparse=%d program=%d",
			st.RequestsDense, st.RequestsFactored, st.RequestsSparse, st.RequestsProgram)
	}

	// One valid request moves exactly its representation counter.
	good := Request{Instance: denseDoc, Eps: 0.25, Seed: 1}
	gresp, gbody := postJSON(t, ts.URL+"/v1/decision", &good)
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("valid request: status %d: %s", gresp.StatusCode, gbody)
	}
	st = s.Stats()
	if st.Admitted != 1 || st.RequestsDense != 1 {
		t.Fatalf("admitted=%d requestsDense=%d after one valid request, want 1/1", st.Admitted, st.RequestsDense)
	}
}

// Satellite regression: a request whose deadline expires while queued
// in the shard admission queue must be answered 504 and never handed a
// workspace — under an expiry storm the pool-miss counters stay flat
// and no solve begins.
func TestQueuedDeadlineExpiryStorm(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Shards: 1, QueueDepth: 32})
	var entered atomic.Int32
	gate := make(chan struct{})
	s.testHookBeforeSolve = func() {
		if entered.Add(1) == 1 {
			<-gate // only the first solve is held
		}
	}
	doc := denseInstance(t, 6, 8, 96)

	// Request 1 occupies the single worker, blocked in the hook.
	holdCh := make(chan int, 1)
	go func() {
		resp, _, err := tryPostJSON(ts.URL+"/v1/decision", &Request{Instance: doc, Eps: 0.25, Seed: 1})
		if err != nil {
			holdCh <- -1
			return
		}
		holdCh <- resp.StatusCode
	}()
	waitFor(t, func() bool { return entered.Load() == 1 })

	// Storm: distinct-digest requests with tiny deadlines queue behind
	// the held worker and expire in the queue.
	const storm = 8
	for seed := uint64(10); seed < 10+storm; seed++ {
		req := Request{Instance: doc, Eps: 0.25, Seed: seed, TimeoutMs: 25}
		resp, body := postJSON(t, ts.URL+"/v1/decision", &req)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("expired-in-queue request: status %d (%s), want 504", resp.StatusCode, body)
		}
	}
	if got := s.Stats().Cancelled; got != storm {
		t.Fatalf("cancelled = %d, want %d", got, storm)
	}

	// Release the worker; it finishes solve 1 and drains the corpses
	// without touching its workspace.
	close(gate)
	if status := <-holdCh; status != http.StatusOK {
		t.Fatalf("held request finished with %d", status)
	}
	waitFor(t, func() bool { return s.pool.Executed()+s.pool.Skipped() >= 1+storm })
	if got := s.pool.Executed(); got != 1 {
		t.Fatalf("executed = %d, want 1 (expired requests must not begin solving)", got)
	}
	if got := s.pool.Skipped(); got != storm {
		t.Fatalf("skipped = %d, want %d", got, storm)
	}
	missesAfterStorm := s.pool.Misses()

	// A fresh same-shape solve runs entirely from the warm pools: the
	// storm left the workspace untouched.
	req := Request{Instance: doc, Eps: 0.25, Seed: 99}
	resp, body := postJSON(t, ts.URL+"/v1/decision", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm solve: status %d: %s", resp.StatusCode, body)
	}
	if got := s.pool.Misses(); got != missesAfterStorm {
		t.Fatalf("post-storm solve missed the pools %d more times; the storm corrupted the workspace", got-missesAfterStorm)
	}
}

// Two delta requests solving concurrently from the SAME base revision
// must never mutate the stored state: the revision store hands both
// solvers one shared *DecisionState, so any aliasing between the
// stored vectors and a run's working buffers is a data race (caught
// under -race) and a silent corruption of every later warm start
// (caught here bitwise even without -race).
func TestConcurrentDeltasShareBaseWithoutAliasing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Shards: 2})
	doc := sparseInstance(t, 6, 14, 97)
	base := Request{Instance: doc, Eps: 0.25, Seed: 5, Scale: 0.2}
	resp, baseBody, baseDigest := postForDigest(t, ts.URL+"/v1/decision", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve: status %d: %s", resp.StatusCode, baseBody)
	}
	baseKey, err := parseDigest(baseDigest)
	if err != nil {
		t.Fatal(err)
	}
	rev := s.revs.Get(baseKey)
	if rev == nil {
		t.Fatal("base revision not recorded")
	}
	// Bitwise snapshot of the stored state before any delta touches it.
	before := rev.State.Clone()

	mkDelta := func(i int, by float64) Request {
		return Request{
			Instance: &instio.Instance{Delta: &instio.Delta{
				Base:  baseDigest,
				Scale: []instio.DeltaScale{{I: i, By: by}},
			}},
			Eps: 0.25, Seed: 5, Scale: 0.2,
		}
	}
	deltas := []Request{mkDelta(0, 1.04), mkDelta(2, 0.97)}
	errs := make(chan error, len(deltas))
	for i := range deltas {
		go func(req Request) {
			resp, body, err := tryPostJSON(ts.URL+"/v1/delta", &req)
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("delta solve: status %d: %s", resp.StatusCode, body)
			}
			errs <- err
		}(deltas[i])
	}
	for range deltas {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	after := s.revs.Get(baseKey)
	if after == nil {
		t.Fatal("base revision evicted during deltas")
	}
	if after.State != rev.State {
		// Same pointer is fine (immutable), but if it was replaced the
		// contents must still be the base's.
		t.Log("revision state pointer changed; comparing contents")
	}
	st := after.State
	if st.T != before.T || st.N != before.N || st.M != before.M {
		t.Errorf("stored revision scalars changed: T %d->%d N %d->%d M %d->%d",
			before.T, st.T, before.N, st.N, before.M, st.M)
	}
	if !sameBits(st.BestMinR, before.BestMinR) || !sameBits(st.BestDualRatio, before.BestDualRatio) || !sameBits(st.MaxPsiNorm, before.MaxPsiNorm) {
		t.Error("stored revision certificate scalars changed under concurrent deltas")
	}
	if st.Engine != before.Engine {
		t.Errorf("stored revision engine tag changed %q -> %q", before.Engine, st.Engine)
	}
	sameVecBits(t, "revision X", st.X, before.X)
	sameVecBits(t, "revision AvgSum", st.AvgSum, before.AvgSum)
	sameVecBits(t, "revision BestDualX", st.BestDualX, before.BestDualX)
}

package serve

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// This file threads the obs registry through the serving layer. The
// design splits metrics into two classes:
//
//   - Func-backed series sample the counters the server already keeps
//     (s.stats atomics, cache, pool, revision store) at scrape time —
//     no double counting and zero hot-path cost.
//   - Native series (the admitted counters and the latency histograms)
//     are preallocated here for every valid label combination, so the
//     request path touches only atomics: a map lookup with a struct
//     key plus Counter.Inc/Histogram.Observe allocates nothing.
//
// Solver phase telemetry stays out of response bodies on purpose: the
// wall times are nondeterministic, and response bytes are content-
// addressed (a cached answer must be bitwise identical to the solve
// that produced it). Phases therefore surface only here and in
// /statsz; the deterministic iteration count is what travels with the
// response (X-Psdpd-Iterations).

// admitKey identifies one admitted-request series: the endpoint kind,
// the representation label, and the effective engine label.
type admitKey struct{ kind, rep, engine string }

// serveMetrics owns the registry and the preallocated native series.
type serveMetrics struct {
	reg       *obs.Registry
	admitted  map[admitKey]*obs.Counter
	e2e       map[string]*obs.Histogram // by endpoint label
	solve     map[string]*obs.Histogram // by solve kind
	queueWait *obs.Histogram
}

// phaseTotals aggregates core.SolveStats across every solve the daemon
// has run, split by phase — the service-lifetime view of the paper's
// per-iteration cost anatomy.
type phaseTotals struct {
	iterations, oracleNS, expmNS, updateNS, bookkeepNS atomic.Int64
}

func (s *Server) recordPhases(st *core.SolveStats) {
	s.phases.iterations.Add(int64(st.Iterations))
	s.phases.oracleNS.Add(st.OracleNS)
	s.phases.expmNS.Add(st.ExpmNS)
	s.phases.updateNS.Add(st.UpdateNS)
	s.phases.bookkeepNS.Add(st.BookkeepNS)
}

// admitCombos enumerates every (kind, rep, engine) label combination a
// request can be admitted under. Decision and mixed requests digest a
// RESOLVED engine (canonicalEngine resolves "auto" per instance), so
// they never carry the auto label; maximize and solve keep it (their
// inner decisions re-resolve per call).
func admitCombos() []admitKey {
	resolved := []string{core.EngineNameMMW, core.EngineNameALO}
	unresolved := []string{core.EngineNameMMW, core.EngineNameALO, "auto"}
	var out []admitKey
	add := func(kind string, reps, engines []string) {
		for _, r := range reps {
			for _, e := range engines {
				out = append(out, admitKey{kind: kind, rep: r, engine: e})
			}
		}
	}
	plain := []string{repDense, repFactored, repSparse}
	add("decision", plain, resolved)
	add("maximize", plain, unresolved)
	add("solve", []string{repProgram}, unresolved)
	add("mixed", []string{repMixedDense, repMixedFactored, repMixedSparse}, resolved)
	return out
}

// endpointLabels is the fixed e2e-histogram label set; endpointLabel
// maps request paths onto it ("other" bounds the cardinality).
var endpointLabels = []string{
	"decision", "maximize", "solve", "mixed", "delta", "batch",
	"healthz", "readyz", "statsz", "metrics", "debugz", "other",
}

func endpointLabel(path string) string {
	switch path {
	case "/v1/decision":
		return "decision"
	case "/v1/maximize":
		return "maximize"
	case "/v1/solve":
		return "solve"
	case "/v1/mixed":
		return "mixed"
	case "/v1/delta":
		return "delta"
	case "/v1/batch":
		return "batch"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	case "/statsz":
		return "statsz"
	case "/metrics":
		return "metrics"
	case "/debugz/slow":
		return "debugz"
	}
	return "other"
}

// solveKinds is the solve-latency histogram label set.
var solveKinds = []string{"decision", "maximize", "solve", "mixed"}

func newServeMetrics(s *Server) *serveMetrics {
	r := obs.NewRegistry()
	m := &serveMetrics{
		reg:      r,
		admitted: make(map[admitKey]*obs.Counter),
		e2e:      make(map[string]*obs.Histogram),
		solve:    make(map[string]*obs.Histogram),
	}

	// Request/outcome counters: scrape-time samples of the live atomics.
	cf := func(name, help string, fn func() int64) {
		r.CounterFunc(name, help, func() float64 { return float64(fn()) })
	}
	cf("psdpd_requests_total", "HTTP requests received.", s.stats.requests.Load)
	cf("psdpd_solves_total", "Solver executions (cache misses that ran).", s.stats.solves.Load)
	cf("psdpd_dedup_shared_total", "Requests served by joining another request's in-flight solve.", s.stats.dedupShared.Load)
	cf("psdpd_rejected_total", "Requests answered 429 (admission queue full).", s.stats.rejected.Load)
	cf("psdpd_cancelled_total", "Requests cancelled or timed out.", s.stats.cancelled.Load)
	cf("psdpd_errors_total", "Requests failed with an internal error.", s.stats.errors.Load)
	cf("psdpd_pool_executed_total", "Pool jobs whose solve actually ran.", s.pool.Executed)
	cf("psdpd_pool_skipped_total", "Pool jobs drained with an already-dead context.", s.pool.Skipped)
	cf("psdpd_delta_requests_total", "Admitted /v1/delta requests.", s.stats.deltaRequests.Load)
	cf("psdpd_delta_base_misses_total", "Delta requests naming an unknown or evicted base.", s.stats.deltaBaseMisses.Load)
	r.CounterFunc("psdpd_delta_lineage_total", "Delta solves by how they actually started: warm from the base's final state, or cold fallback.",
		func() float64 { return float64(s.stats.warmStarts.Load()) }, obs.L("lineage", "warm"))
	r.CounterFunc("psdpd_delta_lineage_total", "Delta solves by how they actually started: warm from the base's final state, or cold fallback.",
		func() float64 { return float64(s.stats.warmColdFallbacks.Load()) }, obs.L("lineage", "cold-fallback"))

	// Cache.
	r.CounterFunc("psdpd_cache_hits_total", "Content-cache hits.", func() float64 {
		h, _ := s.results.Counters()
		return float64(h)
	})
	r.CounterFunc("psdpd_cache_misses_total", "Content-cache misses.", func() float64 {
		_, mi := s.results.Counters()
		return float64(mi)
	})
	r.GaugeFunc("psdpd_cache_entries", "Content-cache population.", func() float64 { return float64(s.results.Len()) })
	r.GaugeFunc("psdpd_revisions", "Warm-start revision store population.", func() float64 { return float64(s.revs.Len()) })

	// Cluster/drain surface. The per-peer route and fetch counters ride
	// in through Config.RegisterMetrics (the cluster stores own them).
	r.GaugeFunc("psdpd_draining", "1 while the replica is draining (admission stopped).", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	cf("psdpd_drain_redirects_total", "Solve requests 307-redirected to a peer during drain.", s.drainRedirects.Load)

	// Live state gauges.
	r.GaugeFunc("psdpd_in_flight", "Requests currently inside the solve pipeline.",
		func() float64 { return float64(s.stats.inFlight.Load()) })
	r.GaugeFunc("psdpd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("psdpd_solve_ewma_seconds", "EWMA of successful solve wall times (drives Retry-After).",
		func() float64 { return math.Float64frombits(s.solveSeconds.Load()) })
	r.GaugeFunc("psdpd_queue_capacity", "Per-shard admission queue capacity.",
		func() float64 { return float64(s.pool.QueueCap()) })
	for i := 0; i < s.pool.Shards(); i++ {
		i := i
		lbl := obs.L("shard", strconv.Itoa(i))
		r.GaugeFunc("psdpd_queue_depth", "Queued (not yet picked up) jobs per shard.",
			func() float64 { return float64(s.pool.ShardDepth(i)) }, lbl)
		r.GaugeFunc("psdpd_workspace_misses", "Workspace pool misses per shard (flat = warm buffers reused).",
			func() float64 { return float64(s.pool.ShardMissCount(i)) }, lbl)
	}

	// Solver phase totals: service-lifetime SolveStats aggregates.
	phase := func(label string, src *atomic.Int64) {
		r.CounterFunc("psdpd_solver_phase_seconds_total",
			"Solver wall time by phase (oracle apply, expm/Lanczos, updates, bookkeeping).",
			func() float64 { return float64(src.Load()) / 1e9 }, obs.L("phase", label))
	}
	phase("oracle", &s.phases.oracleNS)
	phase("expm", &s.phases.expmNS)
	phase("update", &s.phases.updateNS)
	phase("bookkeep", &s.phases.bookkeepNS)
	r.CounterFunc("psdpd_solver_iterations_total", "Solver iterations across all solves.",
		func() float64 { return float64(s.phases.iterations.Load()) })

	// Admitted requests: native counters, one per valid combination,
	// preallocated so admission is a struct-keyed map read + atomic add.
	for _, k := range admitCombos() {
		m.admitted[k] = r.Counter("psdpd_admitted_total",
			"Admitted solve requests by endpoint kind, representation, and effective engine.",
			obs.L("kind", k.kind), obs.L("rep", k.rep), obs.L("engine", k.engine))
	}

	// Latency histograms: end-to-end per endpoint, solve wall time per
	// kind, queue wait pool-wide.
	latency := obs.ExpBuckets(0.0005, 2, 18) // 0.5ms … ~65s
	for _, ep := range endpointLabels {
		m.e2e[ep] = r.Histogram("psdpd_request_seconds",
			"End-to-end request latency by endpoint.", latency, obs.L("endpoint", ep))
	}
	for _, k := range solveKinds {
		m.solve[k] = r.Histogram("psdpd_solve_seconds",
			"Solve wall time by kind (executed solves only — hits and shares excluded).",
			latency, obs.L("kind", k))
	}
	m.queueWait = r.Histogram("psdpd_queue_wait_seconds",
		"Admission-to-pickup queue wait.", obs.ExpBuckets(0.0001, 2, 18)) // 0.1ms … ~13s
	s.pool.SetQueueWaitObserver(func(d time.Duration) { m.queueWait.Observe(d.Seconds()) })
	return m
}

// countAdmitted bumps the admitted counter for the combination, if the
// metrics layer is enabled. Unknown combinations (impossible by
// construction) are dropped rather than registered lazily — lazy
// registration would allocate on the request path.
func (m *serveMetrics) countAdmitted(kind, rep, engine string) {
	if m == nil {
		return
	}
	if c := m.admitted[admitKey{kind: kind, rep: rep, engine: engine}]; c != nil {
		c.Inc()
	}
}

// observeRequest records one end-to-end request latency.
func (m *serveMetrics) observeRequest(endpoint string, sec float64) {
	if m == nil {
		return
	}
	if h := m.e2e[endpoint]; h != nil {
		h.Observe(sec)
	}
}

// observeSolve records one executed solve's wall time.
func (m *serveMetrics) observeSolve(kind string, sec float64) {
	if m == nil {
		return
	}
	if h := m.solve[kind]; h != nil {
		h.Observe(sec)
	}
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/store"
)

// This file is the replica side of the cluster tier: the peer fetch
// endpoints other replicas (and the front) read cached state from, and
// the graceful-drain machinery that lets a replica leave the fleet
// without dropping work.
//
// The peer endpoints deliberately read the LOCAL storage layer only.
// In cluster mode s.results/s.revs are peer-backed wrappers whose miss
// path fetches from the digest's owner; if the peer endpoints read
// through those wrappers, two replicas with a simultaneous miss would
// fetch from each other forever. Unwrapping via the Local() accessor
// makes every peer fetch terminate at ground truth.

// localResults returns the in-process layer behind s.results.
func (s *Server) localResults() store.ResultStore {
	if lb, ok := s.results.(interface{ Local() store.ResultStore }); ok {
		return lb.Local()
	}
	return s.results
}

// localRevs returns the in-process layer behind s.revs.
func (s *Server) localRevs() store.RevisionStore {
	if lb, ok := s.revs.(interface{ Local() store.RevisionStore }); ok {
		return lb.Local()
	}
	return s.revs
}

// handlePeerResult serves one locally-cached result body verbatim:
// GET /v1/peer/result/{digest} answers the exact bytes (and iteration
// count) a client would have received from this replica, or 404. It is
// how a request landing on a digest's new owner after a membership
// change can return the answer the old owner already computed.
func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	d, err := parseDigest(r.PathValue("digest"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	body, iters := s.localResults().Get(d)
	if body == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: no cached result for %s", d))
		return
	}
	w.Header().Set("X-Psdpd-Digest", d.String())
	w.Header().Set("X-Psdpd-Iterations", strconv.Itoa(iters))
	s.writeResult(w, http.StatusOK, "hit", body)
}

// handlePeerRevision serves one locally-stored warm-start revision as
// JSON (instance document plus final solver state), or 404. Peer-backed
// revision stores use it so a delta request landing off-owner can still
// warm-start from the base's final state.
func (s *Server) handlePeerRevision(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	d, err := parseDigest(r.PathValue("digest"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rev := s.localRevs().Get(d)
	if rev == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: no revision for %s", d))
		return
	}
	w.Header().Set("X-Psdpd-Digest", d.String())
	writeJSON(w, http.StatusOK, rev)
}

// Drain gracefully retires the replica: admission stops immediately
// (new solve requests are 307-redirected to a peer), /readyz flips to
// 503 so the health prober drops this member from every ring, and
// Drain blocks until in-flight work (including queued jobs) finishes
// or ctx expires. The HTTP listener must stay up while Drain runs —
// redirects and peer fetches of this replica's cache still need it.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.stats.inFlight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain timed out with %d requests in flight: %w",
				s.stats.inFlight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// redirectIfDraining answers a solve request arriving after Drain
// began: 307 to a peer (rotating through the membership, preserving
// method and body) when the placement knows one, 503 otherwise. Returns
// true when it wrote the response. In-flight requests admitted before
// the flip are unaffected.
func (s *Server) redirectIfDraining(w http.ResponseWriter, r *http.Request) bool {
	if !s.draining.Load() {
		return false
	}
	var peers []string
	for _, m := range s.place.Members() {
		if m != s.cfg.SelfURL {
			peers = append(peers, m)
		}
	}
	if len(peers) == 0 {
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: draining"))
		return true
	}
	s.drainRedirects.Add(1)
	target := peers[int(s.drainNext.Add(1)-1)%len(peers)]
	// 307 keeps the method and body: the client re-POSTs the identical
	// solve to the peer, which computes the identical bytes.
	http.Redirect(w, r, target+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	return true
}

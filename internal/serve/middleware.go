package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// Request-ID propagation: every request gets an ID — the client's
// X-Request-Id if it sent one, a generated one otherwise — echoed back
// in the response header, carried in the request context, and attached
// to every log line and slow-solve record. That one ID is the join key
// between a client trace, the daemon's structured log, and /debugz/slow.

type requestIDKey struct{}

// requestIDFrom returns the request ID carried by ctx, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ridPrefix distinguishes generated IDs across process restarts;
// ridCounter distinguishes them within one.
var (
	ridPrefix  = uint32(time.Now().UnixNano())
	ridCounter atomic.Uint64
)

func newRequestID() string {
	return fmt.Sprintf("%08x-%010x", ridPrefix, ridCounter.Add(1))
}

// maxRequestIDLen bounds client-supplied IDs (they are echoed into
// headers and logs; unbounded input is neither).
const maxRequestIDLen = 128

// statusWriter captures the response status for the access log and the
// e2e latency histogram.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler: the observability middleware
// (request ID in/out, e2e latency, structured access log) in front of
// the route mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > maxRequestIDLen {
		id = newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)

	elapsed := time.Since(start)
	s.metrics.observeRequest(endpointLabel(r.URL.Path), elapsed.Seconds())
	if s.logger != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("requestId", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Float64("durationMs", float64(elapsed.Nanoseconds())/1e6),
			slog.String("cache", sw.Header().Get("X-Psdpd-Cache")),
		)
	}
}

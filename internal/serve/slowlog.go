package serve

import (
	"sync"
	"time"
)

// slowLogSize is the fixed capacity of the slow/failed-solve ring.
const slowLogSize = 64

// SlowEntry is one record of the slow/failed-solve ring served at
// GET /debugz/slow: enough context to find the request in the logs
// (request ID), re-run it (digest), and judge it (status, duration,
// iterations).
type SlowEntry struct {
	Time       string  `json:"time"`
	RequestID  string  `json:"requestId,omitempty"`
	Kind       string  `json:"kind"`
	Digest     string  `json:"digest,omitempty"`
	Status     int     `json:"status"`
	Cache      string  `json:"cache,omitempty"`
	DurationMS float64 `json:"durationMs"`
	Iterations int     `json:"iterations,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// slowLog is a fixed-size ring of the most recent slow or failed
// solves. Writes take one short mutex hold (index bump + slot store) —
// cheap enough to sit on the request path unconditionally, since only
// slow or failed requests ever reach it.
type slowLog struct {
	mu   sync.Mutex
	ring [slowLogSize]SlowEntry
	n    int // total records ever added
}

func (l *slowLog) add(e SlowEntry) {
	l.mu.Lock()
	l.ring[l.n%slowLogSize] = e
	l.n++
	l.mu.Unlock()
}

// Snapshot returns the retained entries, newest first.
func (l *slowLog) Snapshot() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := min(l.n, slowLogSize)
	out := make([]SlowEntry, k)
	for i := 0; i < k; i++ {
		out[i] = l.ring[(l.n-1-i)%slowLogSize]
	}
	return out
}

// slowDetail truncates an error body for the ring (the full body is in
// the response; the ring is a debugging index, not a mirror).
func slowDetail(body []byte) string {
	const maxDetail = 256
	if len(body) > maxDetail {
		return string(body[:maxDetail]) + "…"
	}
	return string(body)
}

// nowRFC3339 stamps ring entries.
func nowRFC3339() string { return time.Now().UTC().Format(time.RFC3339Nano) }

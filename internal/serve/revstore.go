package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
	"repro/internal/instio"
)

// revision is one warm-startable solve the service remembers: the
// materialized instance document (what a delta's edits apply to) and
// the final solver state (what the next solve warm-starts from). The
// revision store is the solver-mathematics counterpart of the result
// cache — the cache shortcuts byte-identical requests, the revision
// store shortcuts *near*-identical ones by resuming the MMW dynamics
// near their fixed point instead of from the paper's cold start.
// Exactly one of state (decision bases) and mixedX (mixed bases — the
// final iterate, which is all the mixed dynamics need to resume) is
// non-nil.
type revision struct {
	inst   *instio.Instance
	state  *core.DecisionState
	mixedX []float64
}

// revStore is a bounded LRU of revisions keyed by the digest the
// client was handed for the generating solve (X-Psdpd-Digest). Both
// the documents and the states are treated as immutable after Put:
// concurrent delta requests read the same revision.
type revStore struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[digest]*list.Element
}

type revEntry struct {
	key digest
	rev *revision
}

// newRevStore returns a store holding at most max revisions; max <= 0
// disables it (every Get misses, Put drops).
func newRevStore(max int) *revStore {
	return &revStore{max: max, ll: list.New(), m: make(map[digest]*list.Element)}
}

// Get returns the revision for key, or nil. The returned revision is
// shared — callers must not mutate it.
func (r *revStore) Get(key digest) *revision {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[key]; ok {
		r.ll.MoveToFront(el)
		return el.Value.(*revEntry).rev
	}
	return nil
}

// Put stores rev under key, evicting the least recently used revision
// when over capacity.
func (r *revStore) Put(key digest, rev *revision) {
	if r.max <= 0 || rev == nil || (rev.state == nil && rev.mixedX == nil) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.m[key]; ok {
		el.Value.(*revEntry).rev = rev
		r.ll.MoveToFront(el)
		return
	}
	r.m[key] = r.ll.PushFront(&revEntry{key: key, rev: rev})
	for r.ll.Len() > r.max {
		el := r.ll.Back()
		r.ll.Remove(el)
		delete(r.m, el.Value.(*revEntry).key)
	}
}

// Len reports the number of stored revisions.
func (r *revStore) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len()
}

// LineageEntry records one delta solve for /statsz: which revision it
// derived from, the digest it produced, whether the warm start was
// actually taken (false = the feasibility guard fell back to a cold
// start), and how many iterations the solve used.
type LineageEntry struct {
	Base        string `json:"base"`
	Derived     string `json:"derived"`
	WarmStarted bool   `json:"warmStarted"`
	Iterations  int    `json:"iterations"`
}

// lineageLog keeps the most recent delta lineage records, newest
// first in snapshots.
type lineageLog struct {
	mu      sync.Mutex
	max     int
	entries []LineageEntry
}

func newLineageLog(max int) *lineageLog {
	if max < 1 {
		max = 1
	}
	return &lineageLog{max: max}
}

func (l *lineageLog) Add(e LineageEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.max {
		l.entries = append(l.entries[:0], l.entries[len(l.entries)-l.max:]...)
	}
}

// Snapshot returns the recorded entries newest first.
func (l *lineageLog) Snapshot() []LineageEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LineageEntry, len(l.entries))
	for i := range out {
		out[i] = l.entries[len(l.entries)-1-i]
	}
	return out
}

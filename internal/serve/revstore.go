package serve

import "sync"

// The revision store itself — the bounded LRU of warm-startable solves
// keyed by response digest — lives in internal/store (RevisionLRU, with
// lineage pinning) behind the store.RevisionStore interface, so the
// cluster tier can swap in a peer-backed implementation. What remains
// here is the lineage log: serving-layer telemetry about how delta
// solves actually started, which has no storage semantics.

// LineageEntry records one delta solve for /statsz: which revision it
// derived from, the digest it produced, whether the warm start was
// actually taken (false = the feasibility guard fell back to a cold
// start), and how many iterations the solve used.
type LineageEntry struct {
	Base        string `json:"base"`
	Derived     string `json:"derived"`
	WarmStarted bool   `json:"warmStarted"`
	Iterations  int    `json:"iterations"`
}

// lineageLog keeps the most recent delta lineage records, newest
// first in snapshots.
type lineageLog struct {
	mu      sync.Mutex
	max     int
	entries []LineageEntry
}

func newLineageLog(max int) *lineageLog {
	if max < 1 {
		max = 1
	}
	return &lineageLog{max: max}
}

func (l *lineageLog) Add(e LineageEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.max {
		l.entries = append(l.entries[:0], l.entries[len(l.entries)-l.max:]...)
	}
}

// Snapshot returns the recorded entries newest first.
func (l *lineageLog) Snapshot() []LineageEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LineageEntry, len(l.entries))
	for i := range out {
		out[i] = l.entries[len(l.entries)-1-i]
	}
	return out
}

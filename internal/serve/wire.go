package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/matrix"
)

// Num is a float64 that survives JSON for every value the solver can
// produce: finite values marshal as ordinary numbers (Go's shortest
// round-trip decimal, so decoding restores the exact bit pattern) and
// the IEEE specials marshal as the quoted strings "+Inf", "-Inf",
// "NaN" instead of failing the whole response.
type Num float64

// MarshalJSON implements json.Marshaler.
func (v Num) MarshalJSON() ([]byte, error) {
	f := float64(v)
	switch {
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Num) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf", "Infinity":
			*v = Num(math.Inf(1))
		case "-Inf", "-Infinity":
			*v = Num(math.Inf(-1))
		case "NaN":
			*v = Num(math.NaN())
		default:
			return fmt.Errorf("serve: invalid numeric string %q", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*v = Num(f)
	return nil
}

// Request is the body of every solve endpoint. /v1/decision and
// /v1/maximize require Instance; /v1/mixed requires an Instance whose
// mixed section is set; /v1/solve requires Program. Kind is only
// meaningful inside /v1/batch items, where it selects the endpoint
// ("decision", "maximize", "solve", or "mixed").
type Request struct {
	Kind     string           `json:"kind,omitempty"`
	Instance *instio.Instance `json:"instance,omitempty"`
	Program  *ProgramDoc      `json:"program,omitempty"`
	// Eps is the target relative accuracy in (0, 1).
	Eps float64 `json:"eps"`
	// Seed drives all solver randomness; together with the canonical
	// instance it is part of the cache identity, so the same (instance,
	// eps, seed) always returns bitwise-identical bytes.
	Seed uint64 `json:"seed"`
	// Scale multiplies every constraint (WithScale); 0 means 1.
	Scale float64 `json:"scale,omitempty"`
	// Oracle is "" or "auto", "dense", "jl", "exact".
	Oracle string `json:"oracle,omitempty"`
	// Engine selects the iteration dynamics: "mmw" (Algorithm 3.1),
	// "alo" (the arXiv:1507.02259 truncated-gradient engine), "auto"
	// (per-instance selection), or "" for the server's default. The
	// effective engine is part of the cache identity: the two engines
	// produce different (both certified) bytes for the same instance,
	// so an mmw result must never answer an alo request.
	Engine string `json:"engine,omitempty"`
	// MaxIter caps decision iterations; 0 means the paper's R.
	MaxIter int `json:"maxIter,omitempty"`
	// Bucketed enables the dynamic-bucketing update.
	Bucketed bool `json:"bucketed,omitempty"`
	// TheoryExact disables early certificate exits.
	TheoryExact bool `json:"theoryExact,omitempty"`
	// SketchEps is the JL sketch accuracy; 0 means the default.
	SketchEps float64 `json:"sketchEps,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline
	// (capped by its maximum). It is NOT part of the cache digest: a
	// deadline changes when a result arrives, never what it is.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// scaleOrOne returns the effective constraint scale.
func (r *Request) scaleOrOne() float64 {
	if r.Scale == 0 {
		return 1
	}
	return r.Scale
}

// coreOptions maps the wire fields to solver options (workspace and
// context are filled in by the worker).
func (r *Request) coreOptions() (core.Options, error) {
	opts := core.Options{
		Seed:        r.Seed,
		MaxIter:     r.MaxIter,
		Bucketed:    r.Bucketed,
		TheoryExact: r.TheoryExact,
		SketchEps:   r.SketchEps,
	}
	switch r.Oracle {
	case "", "auto":
		opts.Oracle = core.OracleAuto
	case "dense":
		opts.Oracle = core.OracleDenseExact
	case "jl":
		opts.Oracle = core.OracleFactoredJL
	case "exact":
		opts.Oracle = core.OracleFactoredExact
	default:
		return opts, fmt.Errorf("serve: unknown oracle %q (want auto, dense, jl, or exact)", r.Oracle)
	}
	switch r.Engine {
	case "":
		// Server default; prepare substitutes Config.DefaultEngine.
	case core.EngineNameMMW:
		opts.Engine = core.EngineMMW
	case core.EngineNameALO:
		opts.Engine = core.EngineALO
	case "auto":
		opts.Engine = core.EngineAuto
	default:
		return opts, fmt.Errorf("serve: unknown engine %q (want mmw, alo, or auto)", r.Engine)
	}
	return opts, nil
}

// ProgramDoc is the wire form of a general positive SDP (equation 1.1):
// minimize C•Y subject to Aᵢ•Y ≥ bᵢ, Y ≽ 0.
type ProgramDoc struct {
	C [][]float64   `json:"c"`
	A [][][]float64 `json:"a"`
	B []float64     `json:"b"`
}

// build validates shapes and converts to the core form. Entry-level
// validation (symmetry, NaN rejection) happens in core.
func (p *ProgramDoc) build() (*core.Program, error) {
	if len(p.C) == 0 {
		return nil, fmt.Errorf("serve: program needs a c matrix")
	}
	c, err := denseFromRows(p.C, "c")
	if err != nil {
		return nil, err
	}
	as := make([]*matrix.Dense, len(p.A))
	for i, rows := range p.A {
		if as[i], err = denseFromRows(rows, fmt.Sprintf("a[%d]", i)); err != nil {
			return nil, err
		}
	}
	return &core.Program{C: c, A: as, B: p.B}, nil
}

// denseFromRows is matrix.FromRows with rejection instead of panics on
// ragged input (wire data is untrusted).
func denseFromRows(rows [][]float64, what string) (*matrix.Dense, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("serve: %s has no rows", what)
	}
	cols := len(rows[0])
	for i, row := range rows {
		if len(row) != cols {
			return nil, fmt.Errorf("serve: %s row %d has %d entries, want %d", what, i, len(row), cols)
		}
	}
	return matrix.FromRows(rows), nil
}

// DecisionResponse is the /v1/decision result: one ε-decision call with
// its certified bracket and witness.
type DecisionResponse struct {
	Kind         string    `json:"kind"`
	Eps          float64   `json:"eps"`
	Outcome      string    `json:"outcome"`
	Iterations   int       `json:"iterations"`
	Lower        Num       `json:"lower"`
	Upper        Num       `json:"upper"`
	RelativeGap  Num       `json:"relativeGap"`
	X            []float64 `json:"x"`
	LambdaMaxPsi Num       `json:"lambdaMaxPsi"`
	MaxPsiNorm   Num       `json:"maxPsiNorm"`
}

// MaximizeResponse is the /v1/maximize result: the certified bracket
// around the packing optimum and the best feasible witness.
type MaximizeResponse struct {
	Kind            string    `json:"kind"`
	Eps             float64   `json:"eps"`
	Value           Num       `json:"value"`
	Lower           Num       `json:"lower"`
	Upper           Num       `json:"upper"`
	RelativeGap     Num       `json:"relativeGap"`
	X               []float64 `json:"x"`
	DecisionCalls   int       `json:"decisionCalls"`
	TotalIterations int       `json:"totalIterations"`
}

// SolveResponse is the /v1/solve result for a general positive SDP.
type SolveResponse struct {
	Kind            string    `json:"kind"`
	Eps             float64   `json:"eps"`
	Lower           Num       `json:"lower"`
	Upper           Num       `json:"upper"`
	DualX           []float64 `json:"dualX"`
	Objective       Num       `json:"objective,omitempty"`
	DecisionCalls   int       `json:"decisionCalls"`
	TotalIterations int       `json:"totalIterations"`
}

// MixedResponse is the /v1/mixed result: a VERIFIED bicriteria point of
// the mixed packing/covering system (status "feasible" means coverage
// ≥ 1−ε and λ_max ≤ 1+10ε were both checked numerically) or the best
// iterate with its measured violations (status "inconclusive").
type MixedResponse struct {
	Kind        string    `json:"kind"`
	Eps         float64   `json:"eps"`
	Status      string    `json:"status"`
	Engine      string    `json:"engine"`
	Iterations  int       `json:"iterations"`
	Capped      int       `json:"capped"`
	WarmStarted bool      `json:"warmStarted,omitempty"`
	MinCoverage Num       `json:"minCoverage"`
	LambdaMax   Num       `json:"lambdaMax"`
	X           []float64 `json:"x"`
}

// iterCount reports the solver iterations behind a response — the
// deterministic quantity the X-Psdpd-Iterations header carries (and the
// cache stores, so hits repeat it exactly).
func (r *DecisionResponse) iterCount() int { return r.Iterations }
func (r *MaximizeResponse) iterCount() int { return r.TotalIterations }
func (r *SolveResponse) iterCount() int    { return r.TotalIterations }
func (r *MixedResponse) iterCount() int    { return r.Iterations }

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// BatchRequest is the /v1/batch body: independent solve requests
// admitted concurrently through the same queue, cache, and dedup path
// as the single-shot endpoints.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItemResult is one batch item's outcome. Status mirrors the HTTP
// code the item would have received standalone (200, 400, 429, 504, …);
// Response carries the marshaled success body; Cache is "hit", "miss",
// or "shared" (singleflight follower).
type BatchItemResult struct {
	Status   int             `json:"status"`
	Cache    string          `json:"cache,omitempty"`
	Error    string          `json:"error,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// BatchResponse is the /v1/batch result, one entry per request in
// order.
type BatchResponse struct {
	Responses []BatchItemResult `json:"responses"`
}

// StatsResponse is the /statsz document.
type StatsResponse struct {
	Requests int64 `json:"requests"`
	// Admitted counts solve attempts that passed every validation gate
	// and entered the pipeline — one per single-shot request, one per
	// /v1/batch item (a batch bumps Requests once but Admitted once per
	// valid item). Malformed/rejected payloads never move it, nor the
	// per-representation counters below.
	Admitted     int64 `json:"admitted"`
	Solves       int64 `json:"solves"`
	CacheHits    int64 `json:"cacheHits"`
	CacheEntries int   `json:"cacheEntries"`
	DedupShared  int64 `json:"dedupShared"`
	Rejected     int64 `json:"rejected"`
	Cancelled    int64 `json:"cancelled"`
	Errors       int64 `json:"errors"`
	InFlight     int64 `json:"inFlight"`
	QueueDepth   int   `json:"queueDepth"`
	PoolExecuted int64 `json:"poolExecuted"`
	PoolSkipped  int64 `json:"poolSkipped"`
	PoolMisses   int64 `json:"poolMisses"`
	// ShardPoolMisses is PoolMisses broken out per shard (digest routing
	// pins instance shapes to shards, so a flat per-shard counter means
	// warm workspaces are being reused, never re-grown).
	ShardPoolMisses []int64 `json:"shardPoolMisses"`
	// Per-representation counts of admitted solve requests.
	RequestsDense    int64 `json:"requestsDense"`
	RequestsFactored int64 `json:"requestsFactored"`
	RequestsSparse   int64 `json:"requestsSparse"`
	RequestsProgram  int64 `json:"requestsProgram"`
	// Mixed requests count under their packing representation in their
	// own family: the three sum to the admitted /v1/mixed requests.
	RequestsMixedDense    int64 `json:"requestsMixedDense"`
	RequestsMixedFactored int64 `json:"requestsMixedFactored"`
	RequestsMixedSparse   int64 `json:"requestsMixedSparse"`
	// Per-engine counts of admitted solve requests, keyed by the
	// effective engine: the server default substituted for an empty
	// engine field, and "auto" resolved to its concrete pick for
	// decision requests (maximize/solve count under "auto" because
	// their inner decision calls re-resolve per call).
	RequestsMMW  int64 `json:"requestsEngineMMW"`
	RequestsALO  int64 `json:"requestsEngineALO"`
	RequestsAuto int64 `json:"requestsEngineAuto"`
	// Incremental solving (/v1/delta): admitted delta requests, 404s on
	// unknown/evicted bases, how many delta solves actually warm-started
	// versus fell back to a cold start, the revision-store population,
	// and the most recent lineage records (newest first).
	DeltaRequests   int64          `json:"deltaRequests"`
	DeltaBaseMisses int64          `json:"deltaBaseMisses"`
	WarmStarts      int64          `json:"warmStarts"`
	ColdFallbacks   int64          `json:"coldFallbacks"`
	Revisions       int            `json:"revisions"`
	DeltaLineage    []LineageEntry `json:"deltaLineage,omitempty"`
	// Solver phase telemetry aggregated across every solve this process
	// has run (core.SolveStats): total iterations and wall nanoseconds
	// split into oracle application, the expm/Lanczos primitives inside
	// it, coordinate updates, and certificate/B-set bookkeeping.
	SolverIterations int64 `json:"solverIterations"`
	SolverOracleNS   int64 `json:"solverOracleNs"`
	SolverExpmNS     int64 `json:"solverExpmNs"`
	SolverUpdateNS   int64 `json:"solverUpdateNs"`
	SolverBookkeepNS int64 `json:"solverBookkeepNs"`
	UptimeSeconds    int64 `json:"uptimeSeconds"`
	// Cluster tier: whether this replica is draining, how many solve
	// requests it has 307-redirected to peers since drain began, and —
	// when the daemon runs in cluster mode — the membership view and
	// per-peer counters sampled from the cluster wiring.
	Draining       bool  `json:"draining,omitempty"`
	DrainRedirects int64 `json:"drainRedirects,omitempty"`
	Cluster        any   `json:"cluster,omitempty"`
}

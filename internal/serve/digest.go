package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/matrix"
	"repro/internal/sparse"
	"repro/internal/store"
)

// digest is the content address of a request: SHA-256 over the
// canonicalized instance plus every solve-relevant option. Two requests
// share a digest exactly when the solver is guaranteed to produce
// bitwise-identical results for them, which is what makes the digest
// safe as the cache key, the singleflight key, and — aliased to
// store.Key — the placement key the whole cluster tier routes by.
type digest = store.Key

// shardKey folds a digest to the uint64 used for shard routing.
func shardKey(d digest) uint64 { return binary.LittleEndian.Uint64(d[:8]) }

// hasher wraps a hash.Hash with fixed-width little-endian writers. All
// floats are hashed as their IEEE 754 bit patterns: the canonical form
// distinguishes exactly the inputs the solver distinguishes (including
// -0 vs +0 and every NaN payload the parser lets through, i.e. none).
type hasher struct {
	h   hash.Hash
	buf [1 << 10]byte
	n   int
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (z *hasher) flush() {
	if z.n > 0 {
		z.h.Write(z.buf[:z.n])
		z.n = 0
	}
}

func (z *hasher) u64(v uint64) {
	if z.n+8 > len(z.buf) {
		z.flush()
	}
	binary.LittleEndian.PutUint64(z.buf[z.n:], v)
	z.n += 8
}

func (z *hasher) i64(v int) { z.u64(uint64(int64(v))) }

func (z *hasher) f64(v float64) { z.u64(math.Float64bits(v)) }

func (z *hasher) f64s(v []float64) {
	z.i64(len(v))
	for _, x := range v {
		z.f64(x)
	}
}

func (z *hasher) ints(v []int) {
	z.i64(len(v))
	for _, x := range v {
		z.i64(x)
	}
}

func (z *hasher) bool(b bool) {
	if b {
		z.u64(1)
	} else {
		z.u64(0)
	}
}

func (z *hasher) str(s string) {
	z.i64(len(s))
	z.flush()
	z.h.Write([]byte(s))
}

func (z *hasher) sum() digest {
	z.flush()
	var d digest
	copy(d[:], z.h.Sum(nil))
	return d
}

// digestVersion is bumped whenever the canonical encoding or the
// solver's numerics change incompatibly, so stale cache entries from an
// older build can never be mistaken for current results. v2 folded the
// engine into the canonical form: before that, an mmw result could
// answer an alo request from the cache. v3 added the mixed kind (the
// covering matrix joins the canonical form after the packing set).
const digestVersion = "psdpd-v3"

// requestDigest canonicalizes one solve request. kind is the endpoint
// ("decision", "maximize", "solve", "mixed"); exactly one of set or
// prog is non-nil, and cover is non-nil exactly for the mixed kind.
// engine is the EFFECTIVE engine — the request's engine with the
// server default already substituted for "" — because the wire field
// alone underdetermines what the solver runs.
func requestDigest(kind string, req *Request, set core.ConstraintSet, prog *core.Program, cover *matrix.Dense, engine core.EngineKind) (digest, error) {
	opts, err := req.coreOptions()
	if err != nil {
		return digest{}, err
	}
	z := newHasher()
	z.str(digestVersion)
	z.str(kind)
	z.f64(req.Eps)
	z.u64(req.Seed)
	z.i64(int(canonicalOracle(opts.Oracle, set)))
	z.i64(int(canonicalEngine(kind, engine, set, req.Eps)))
	z.i64(req.MaxIter)
	z.bool(req.Bucketed)
	z.bool(req.TheoryExact)
	z.f64(req.SketchEps)
	z.f64(req.scaleOrOne())
	switch {
	case set != nil:
		if err := hashSet(z, set); err != nil {
			return digest{}, err
		}
	case prog != nil:
		hashProgram(z, prog)
	default:
		return digest{}, fmt.Errorf("serve: nothing to digest")
	}
	if cover != nil {
		// BuildMixed canonicalized the covering triplets (sorted, summed
		// in fixed order), so hashing the assembled matrix keeps the
		// digest independent of the document's listing order.
		z.str("cover")
		hashDense(z, cover)
	}
	return z.sum(), nil
}

// warmDigest derives the content address of a warm-started delta
// solve: the plain digest of the materialized request combined with
// the base revision key the warm state came from. Warm-started results
// are certified but NOT bitwise identical to what a cold solve of the
// same request would produce, so they must live in their own address
// space — a later cold request for the plain digest must never be
// served warm bytes from the cache, and vice versa. The base key pins
// the whole warm lineage: solves are deterministic, so one (plain
// content, base lineage) pair names exactly one byte sequence.
func warmDigest(plain, base digest) digest {
	z := newHasher()
	z.str("psdpd-warm-v1")
	z.str(string(plain[:]))
	z.str(string(base[:]))
	return z.sum()
}

// parseDigest decodes the hex digest form clients echo back (the
// X-Psdpd-Digest response header / delta base field).
func parseDigest(s string) (digest, error) {
	d, err := store.ParseKey(s)
	if err != nil {
		return digest{}, fmt.Errorf("serve: %q is not a %d-byte hex digest", s, len(d))
	}
	return d, nil
}

// ContentDigest computes the content address psdpd assigns to a solve
// request — the exact digest the X-Psdpd-Digest response header
// carries for a 200, and therefore the placement key the cluster tier
// routes by. kind is the endpoint ("decision", "maximize", "solve",
// "mixed"); defaultEngine substitutes for an empty engine field, so a
// front tier configured with the replicas' default computes the same
// address the replicas do. Exported for internal/cluster: routing by
// the true content address is what keeps cache entries, revision
// lineages, and warm worker workspaces shard-local across the fleet.
func ContentDigest(kind string, req *Request, defaultEngine core.EngineKind) (store.Key, error) {
	if math.IsNaN(req.Eps) || req.Eps <= 0 || req.Eps >= 1 {
		return store.Key{}, fmt.Errorf("serve: eps = %v out of (0, 1)", req.Eps)
	}
	opts, err := req.coreOptions()
	if err != nil {
		return store.Key{}, err
	}
	if req.Engine == "" {
		opts.Engine = defaultEngine
	}
	switch kind {
	case "decision", "maximize":
		if req.Instance == nil {
			return store.Key{}, fmt.Errorf("serve: %s request needs an instance", kind)
		}
		set, err := instio.Build(req.Instance)
		if err != nil {
			return store.Key{}, err
		}
		if scale := req.scaleOrOne(); scale != 1 {
			if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 {
				return store.Key{}, fmt.Errorf("serve: scale = %v must be positive and finite", req.Scale)
			}
			set = set.WithScale(scale)
		}
		return requestDigest(kind, req, set, nil, nil, opts.Engine)
	case "mixed":
		if req.Instance == nil {
			return store.Key{}, fmt.Errorf("serve: mixed request needs an instance")
		}
		prob, err := instio.BuildMixed(req.Instance)
		if err != nil {
			return store.Key{}, err
		}
		return requestDigest(kind, req, prob.Pack, nil, prob.Cover, opts.Engine)
	case "solve":
		if req.Program == nil {
			return store.Key{}, fmt.Errorf("serve: solve request needs a program")
		}
		prog, err := req.Program.build()
		if err != nil {
			return store.Key{}, err
		}
		return requestDigest(kind, req, nil, prog, nil, opts.Engine)
	}
	return store.Key{}, fmt.Errorf("serve: unknown request kind %q", kind)
}

// canonicalOracle resolves OracleAuto to the concrete oracle the
// solver would pick for the set, so "oracle omitted", "auto", and the
// explicit name of the auto choice all share one content address
// (they provably produce identical bytes). A nil set is the program
// path, whose normalization always yields a dense instance.
func canonicalOracle(kind core.OracleKind, set core.ConstraintSet) core.OracleKind {
	if kind != core.OracleAuto {
		return kind
	}
	switch set.(type) {
	case *core.FactoredSet, *core.SparseSet:
		return core.OracleFactoredJL
	}
	return core.OracleDenseExact
}

// canonicalEngine maps the effective engine to the value the digest
// hashes. For decision and mixed requests EngineAuto is resolved
// exactly the way the solver entrypoint resolves it (same set, same
// eps — mixed.Solve calls core.ResolveEngine on its packing set), so
// "auto" and the explicit name of the auto choice provably produce
// identical bytes and share one content address. For maximize/solve
// requests the raw kind is hashed unresolved: those pipelines
// re-resolve Auto per inner decision call at TIGHTER accuracies (eps/4
// and below), so a top-level resolution would not match what the
// solver actually runs — merging the addresses there could serve one
// engine's bytes for the other. Auto is still deterministic in the
// digested inputs, so the address stays sound, just unmerged.
func canonicalEngine(kind string, engine core.EngineKind, set core.ConstraintSet, eps float64) core.EngineKind {
	if kind == "decision" || kind == "mixed" {
		return core.ResolveEngine(engine, set, eps)
	}
	return engine
}

// hashSet canonicalizes a constraint set. Dense sets hash their entries
// row-major; factored and sparse sets hash the CSC arrays, which NewCSC
// already canonicalizes (column-sorted, duplicates summed, explicit
// zeros dropped), so triplet order in the wire document does not
// perturb the digest.
func hashSet(z *hasher, set core.ConstraintSet) error {
	switch s := set.(type) {
	case *core.DenseSet:
		z.str("dense")
		z.i64(s.N())
		z.i64(s.Dim())
		z.f64(s.Scale())
		for _, a := range s.A {
			hashDense(z, a)
		}
	case *core.FactoredSet:
		z.str("factored")
		z.i64(s.N())
		z.i64(s.Dim())
		z.f64(s.Scale())
		for _, q := range s.Q {
			hashCSC(z, q)
		}
	case *core.SparseSet:
		z.str("sparse")
		z.i64(s.N())
		z.i64(s.Dim())
		z.f64(s.Scale())
		for _, a := range s.A {
			hashCSC(z, a)
		}
	default:
		return fmt.Errorf("serve: cannot digest constraint set type %T", set)
	}
	return nil
}

func hashDense(z *hasher, a *matrix.Dense) {
	z.i64(a.R)
	z.i64(a.C)
	z.f64s(a.Data)
}

func hashCSC(z *hasher, q *sparse.CSC) {
	z.i64(q.R)
	z.i64(q.C)
	z.ints(q.ColPtr)
	z.ints(q.Row)
	z.f64s(q.Val)
}

func hashProgram(z *hasher, p *core.Program) {
	z.str("program")
	hashDense(z, p.C)
	z.i64(len(p.A))
	for _, a := range p.A {
		hashDense(z, a)
	}
	z.f64s(p.B)
}

// Package serve turns the library solver into a long-lived concurrent
// solve service (the cmd/psdpd daemon): an HTTP/JSON API over the
// instio wire format, backed by three cooperating layers.
//
// Admission: every request is routed by content digest to one shard of
// a worker pool, through a bounded queue. A full queue answers 429 +
// Retry-After immediately — the service sheds load at the door instead
// of stacking latency. Per-request deadlines (server default, request
// override, server cap) cancel queued and mid-solve work alike via
// context checkpoints between solver iterations.
//
// Workers: each worker goroutine owns one work.Workspace for its whole
// lifetime. The zero-allocation steady state the solver guarantees for
// sequential reuse (see internal/work) therefore holds across requests:
// once a worker has solved one instance of a given shape, subsequent
// solves of that shape draw every buffer from warm pools. Digest-based
// shard routing makes such repeats land on the same workers on purpose.
//
// Reuse: results are cached content-addressed — SHA-256 of the
// canonicalized instance plus every solve-relevant option (eps, seed,
// oracle, scale, …). Determinism makes this sound: the solver is
// bitwise reproducible at any GOMAXPROCS, so equal digests mean equal
// bytes, and a cache hit is indistinguishable from a fresh solve.
// Identical requests already in flight are deduplicated (singleflight):
// followers wait for the leader's solve and share its response.
package serve

// Package gen generates the workload families used across the
// experiment suite (EXPERIMENTS.md):
//
//   - random dense/factored packing instances (E1, E2, E6, E7),
//   - instances with closed-form optima — identical, orthogonal rank-1,
//     diagonal/LP (E4, E10),
//   - width-controlled families where maxᵢ λ_max(Aᵢ) is a free dial (E3),
//   - the Figure 1 ellipse-packing instance (E9),
//   - synthetic beamforming covering SDPs after [IPS10] (the application
//     the paper cites as fitting the packing framework), and
//   - graph edge-Laplacian packing (sparse rank-one factored workloads).
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Dense is a generated dense instance; OPT is NaN when unknown.
type Dense struct {
	A   []*matrix.Dense
	OPT float64
	// Name labels the family for experiment tables.
	Name string
}

// Factored is a generated factored instance; OPT is NaN when unknown.
type Factored struct {
	Q    []*sparse.CSC
	OPT  float64
	Name string
}

// RandomPSD returns one m-by-m PSD matrix G·Gᵀ with G m-by-rank
// standard Gaussian.
func RandomPSD(m, rank int, rng *rand.Rand) *matrix.Dense {
	if rank <= 0 {
		rank = m
	}
	g := matrix.New(m, rank)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return matrix.MulABT(g, g, nil)
}

// RandomDense generates n random PSD constraints of dimension m and
// rank ≤ rank. OPT unknown.
func RandomDense(n, m, rank int, rng *rand.Rand) *Dense {
	as := make([]*matrix.Dense, n)
	for i := range as {
		as[i] = RandomPSD(m, rank, rng)
	}
	return &Dense{A: as, OPT: math.NaN(), Name: fmt.Sprintf("random-dense(n=%d,m=%d,r=%d)", n, m, rank)}
}

// Identical generates n copies of one random PSD matrix; the packing
// optimum is exactly 1/λ_max(A) (only Σxᵢ matters). lambdaMax is
// computed by the caller's eigensolver to keep this package dependency-
// light, so OPT here is returned via the provided lambdaMax.
func Identical(n, m int, rng *rand.Rand, lambdaMax func(*matrix.Dense) float64) *Dense {
	a := RandomPSD(m, m, rng)
	as := make([]*matrix.Dense, n)
	for i := range as {
		as[i] = a
	}
	return &Dense{A: as, OPT: 1 / lambdaMax(a), Name: fmt.Sprintf("identical(n=%d,m=%d)", n, m)}
}

// OrthogonalRankOne generates Aᵢ = vᵢvᵢᵀ with mutually orthogonal vᵢ
// (n ≤ m required): the constraints decouple and
// OPT = Σᵢ 1/‖vᵢ‖² exactly.
func OrthogonalRankOne(n, m int, rng *rand.Rand) (*Dense, error) {
	if n > m {
		return nil, fmt.Errorf("gen: OrthogonalRankOne needs n ≤ m, got n=%d m=%d", n, m)
	}
	vs := make([][]float64, n)
	for i := range vs {
		v := make([]float64, m)
		for {
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			for k := 0; k < i; k++ {
				matrix.VecAXPY(v, -matrix.VecDot(v, vs[k])/matrix.VecDot(vs[k], vs[k]), vs[k])
			}
			if matrix.VecNorm2(v) > 1e-6 {
				break
			}
		}
		matrix.VecScale(v, 0.5+2*rng.Float64(), v)
		vs[i] = v
	}
	opt := 0.0
	as := make([]*matrix.Dense, n)
	for i, v := range vs {
		as[i] = matrix.OuterProduct(1, v)
		opt += 1 / matrix.VecDot(v, v)
	}
	return &Dense{A: as, OPT: opt, Name: fmt.Sprintf("orth-rank1(n=%d,m=%d)", n, m)}, nil
}

// DiagonalLP generates diagonal constraints Aᵢ = diag(pᵢ) from a random
// nonnegative d-by-n LP matrix (density controls sparsity). It returns
// both the SDP view and the raw LP matrix so LP solvers can cross-check
// (experiment E10). OPT is left NaN — the simplex reference computes it.
func DiagonalLP(n, d int, density float64, rng *rand.Rand) (*Dense, *matrix.Dense) {
	p := matrix.New(d, n)
	for i := range p.Data {
		if rng.Float64() < density {
			p.Data[i] = rng.Float64()
		}
	}
	for i := 0; i < n; i++ {
		p.Set(rng.IntN(d), i, 0.3+rng.Float64())
	}
	as := make([]*matrix.Dense, n)
	for i := 0; i < n; i++ {
		as[i] = matrix.Diag(p.Col(i))
	}
	return &Dense{A: as, OPT: math.NaN(), Name: fmt.Sprintf("diag-lp(n=%d,d=%d)", n, d)}, p
}

// WidthFamily generates an instance whose width parameter
// maxᵢ λ_max(Aᵢ) is exactly `width` while the optimum stays Θ(1):
// constraint 0 is width·e₀e₀ᵀ and the remaining n−1 constraints are
// I/(n−1)-ish plates on the complementary block. The optimum is
// dominated by the well-conditioned constraints; the spike forces
// width-dependent methods to take Ω(width) iterations while
// Algorithm 3.1 is untouched (experiment E3).
func WidthFamily(n, m int, width float64, rng *rand.Rand) (*Dense, error) {
	if n < 2 || m < 2 {
		return nil, fmt.Errorf("gen: WidthFamily needs n, m ≥ 2")
	}
	if width <= 0 {
		return nil, fmt.Errorf("gen: width %v must be positive", width)
	}
	as := make([]*matrix.Dense, n)
	spike := matrix.New(m, m)
	spike.Set(0, 0, width)
	as[0] = spike
	// Remaining constraints: diagonal plates on coordinates 1..m-1 with
	// mild random variation, λ_max ≈ 1.
	for i := 1; i < n; i++ {
		d := make([]float64, m)
		for j := 1; j < m; j++ {
			d[j] = 0.5 + 0.5*rng.Float64()
		}
		as[i] = matrix.Diag(d)
	}
	return &Dense{A: as, OPT: math.NaN(), Name: fmt.Sprintf("width(n=%d,m=%d,w=%g)", n, m, width)}, nil
}

// WidthFamilyExact is the deterministic width family used by the E3
// sweep: constraint 0 is width·e₀e₀ᵀ and constraints 1..n-1 are the
// all-ones diagonal plate on coordinates 1..m-1. The packing optimum is
// exactly 1/width + 1 (coordinate 0 contributes x₀ = 1/width; the
// plates share a unit budget), while the width parameter
// maxᵢ λ_max(Aᵢ) = width is a free dial.
func WidthFamilyExact(n, m int, width float64) (*Dense, error) {
	if n < 2 || m < 2 {
		return nil, fmt.Errorf("gen: WidthFamilyExact needs n, m ≥ 2")
	}
	if width <= 0 {
		return nil, fmt.Errorf("gen: width %v must be positive", width)
	}
	as := make([]*matrix.Dense, n)
	spike := matrix.New(m, m)
	spike.Set(0, 0, width)
	as[0] = spike
	d := make([]float64, m)
	for j := 1; j < m; j++ {
		d[j] = 1
	}
	plate := matrix.Diag(d)
	for i := 1; i < n; i++ {
		as[i] = plate
	}
	return &Dense{A: as, OPT: 1 + 1/width, Name: fmt.Sprintf("width-exact(n=%d,m=%d,w=%g)", n, m, width)}, nil
}

// Ellipse2D builds the 3-ellipse instance of the paper's Figure 1: two
// axis-aligned ellipses A₁, A₂ and one rotated ellipse A₃ in 2
// dimensions. The figure illustrates why general (non-axis-aligned)
// ellipsoids force the matrix MW machinery: A₁+A₂ stays axis-aligned
// but adding A₃ does not.
func Ellipse2D() *Dense {
	a1 := matrix.Diag([]float64{1, 0.25})
	a2 := matrix.Diag([]float64{0.25, 1})
	// A₃: a smaller ellipse rotated 45°: R·diag(0.4, 0.1)·Rᵀ. Small
	// enough that the optimal packing genuinely mixes it with A₁, A₂.
	c := math.Cos(math.Pi / 4)
	s := math.Sin(math.Pi / 4)
	r := matrix.FromRows([][]float64{{c, -s}, {s, c}})
	a3 := matrix.MulAB(matrix.MulAB(r, matrix.Diag([]float64{0.4, 0.1}), nil), r.T(), nil)
	a3.Symmetrize()
	return &Dense{A: []*matrix.Dense{a1, a2, a3}, OPT: math.NaN(), Name: "figure1-ellipses"}
}

// Beamforming builds a synthetic downlink-beamforming covering SDP in
// the style the paper attributes to [IPS10]: n users with Gaussian
// channel vectors hᵢ ∈ R^m (m antennas) and SINR-style thresholds γᵢ.
// In normalized packing form the constraints are the rank-one factors
// Qᵢ = hᵢ/√γᵢ (so Aᵢ = hᵢhᵢᵀ/γᵢ), exercising exactly the factored
// rank-one fast path. OPT unknown in general.
func Beamforming(nUsers, mAntennas int, rng *rand.Rand) (*Factored, error) {
	if nUsers <= 0 || mAntennas <= 0 {
		return nil, fmt.Errorf("gen: Beamforming(%d, %d): sizes must be positive", nUsers, mAntennas)
	}
	qs := make([]*sparse.CSC, nUsers)
	for i := range qs {
		gamma := 0.5 + 1.5*rng.Float64() // SINR target spread
		col := make([]float64, mAntennas)
		for j := range col {
			col[j] = rng.NormFloat64() / math.Sqrt(gamma)
		}
		q, err := sparse.CSCFromColumns(mAntennas, [][]float64{col}, 0)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return &Factored{Q: qs, OPT: math.NaN(), Name: fmt.Sprintf("beamforming(n=%d,m=%d)", nUsers, mAntennas)}, nil
}

// GraphEdgePacking builds the edge-Laplacian packing instance of a
// graph: Aₑ = bₑbₑᵀ with bₑ = e_u − e_v. Each factor has exactly two
// nonzeros, so q = 2·|E| — the sparsest interesting workload for the
// Theorem 4.1 cost model. OPT unknown in general (vertex-transitive
// graphs have symmetric optima; tests use explicit certificates).
func GraphEdgePacking(g *graph.Graph) (*Factored, error) {
	qs, err := g.EdgeFactors()
	if err != nil {
		return nil, err
	}
	return &Factored{Q: qs, OPT: math.NaN(), Name: fmt.Sprintf("edge-packing(n=%d,m=%d)", g.N, g.M())}, nil
}

// Sparse is a generated general-sparse instance (each constraint a
// symmetric sparse matrix); OPT is NaN when unknown.
type Sparse struct {
	A    []*sparse.CSC
	OPT  float64
	Name string
}

// SparseEdgePacking builds the edge-Laplacian packing instance of a
// graph in the general-sparse representation: Aₑ = bₑbₑᵀ stored as an
// explicit symmetric matrix with four nonzeros. Identical mathematics
// to GraphEdgePacking (the factored form), so the two make a natural
// cross-representation equivalence pair; total nnz is 4·|E| versus the
// factored 2·|E|.
func SparseEdgePacking(g *graph.Graph) (*Sparse, error) {
	if g.M() == 0 {
		return nil, fmt.Errorf("gen: SparseEdgePacking: graph has no edges")
	}
	as := make([]*sparse.CSC, g.M())
	for k := range g.Edges {
		a, err := g.EdgeLaplacian(k, 1)
		if err != nil {
			return nil, err
		}
		as[k] = a
	}
	return &Sparse{A: as, OPT: math.NaN(), Name: fmt.Sprintf("sparse-edge-packing(n=%d,m=%d)", g.N, g.M())}, nil
}

// SparseGroupedLaplacians partitions the edges of a graph into `groups`
// random groups and makes each group's subgraph Laplacian one sparse
// constraint: n = groups constraints of ~4|E|/groups nonzeros each —
// the knob workload for nnz-density scaling of the sparse kernels.
func SparseGroupedLaplacians(g *graph.Graph, groups int, rng *rand.Rand) (*Sparse, error) {
	if groups <= 0 || groups > g.M() {
		return nil, fmt.Errorf("gen: SparseGroupedLaplacians: groups=%d out of [1, %d]", groups, g.M())
	}
	perm := rng.Perm(g.M())
	buckets := make([][]int, groups)
	for i, k := range perm {
		buckets[i%groups] = append(buckets[i%groups], k)
	}
	as := make([]*sparse.CSC, groups)
	for i, idx := range buckets {
		a, err := g.SubgraphLaplacian(idx)
		if err != nil {
			return nil, err
		}
		as[i] = a
	}
	return &Sparse{A: as, OPT: math.NaN(), Name: fmt.Sprintf("sparse-grouped-laplacian(n=%d,m=%d,groups=%d)", g.N, g.M(), groups)}, nil
}

// RandomFactored generates n factored constraints, each with cols
// columns of nnzPerCol random nonzeros — the knob workload for the
// work-vs-q scaling experiments (E6, E7).
func RandomFactored(n, m, cols, nnzPerCol int, rng *rand.Rand) (*Factored, error) {
	if cols <= 0 || nnzPerCol <= 0 || nnzPerCol > m {
		return nil, fmt.Errorf("gen: RandomFactored: bad cols=%d nnzPerCol=%d", cols, nnzPerCol)
	}
	qs := make([]*sparse.CSC, n)
	for i := range qs {
		var trips []sparse.Triplet
		for c := 0; c < cols; c++ {
			seen := map[int]bool{}
			for len(seen) < nnzPerCol {
				r := rng.IntN(m)
				if !seen[r] {
					seen[r] = true
					trips = append(trips, sparse.Triplet{Row: r, Col: c, Val: rng.NormFloat64()})
				}
			}
		}
		q, err := sparse.NewCSC(m, cols, trips)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return &Factored{Q: qs, OPT: math.NaN(), Name: fmt.Sprintf("random-factored(n=%d,m=%d,c=%d,z=%d)", n, m, cols, nnzPerCol)}, nil
}

// MixedLP is a generated mixed packing/covering instance with DIAGONAL
// packing constraints — the "positive covering LP + one matrix packing
// constraint" class the paper's §5 describes. Witness is the point the
// construction was scaled around: C·Witness ≥ 1.5·1 entrywise and
// λ_max(Σ WitnessᵢAᵢ) < 1 exactly (diagonal sums), so the instance is
// bicriteria-feasible with margin at every ε.
type MixedLP struct {
	A       []*matrix.Dense
	C       *matrix.Dense
	Witness []float64
	Name    string
}

// MixedCoveringLP generates n diagonal packing constraints of dimension
// m and d covering rows, scaled around a random interior witness: draw
// x* and random nonnegative diagonals, normalize x* so the packed
// diagonal sum stays strictly inside the unit ball, then scale each
// covering row to demand 1.5 at x*. density controls the fill of both
// the diagonals and the covering rows.
func MixedCoveringLP(n, m, d int, density float64, rng *rand.Rand) (*MixedLP, error) {
	if n <= 0 || m <= 0 || d <= 0 {
		return nil, fmt.Errorf("gen: MixedCoveringLP(%d, %d, %d): sizes must be positive", n, m, d)
	}
	p := matrix.New(m, n) // column i = diag of Aᵢ
	for i := range p.Data {
		if rng.Float64() < density {
			p.Data[i] = rng.Float64()
		}
	}
	for i := 0; i < n; i++ {
		p.Set(rng.IntN(m), i, 0.3+rng.Float64()) // no zero-trace constraints
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 0.5 + rng.Float64()
	}
	// λ_max(Σ xᵢAᵢ) is exactly the max packed diagonal entry; scale the
	// witness to park it at 1/1.05.
	lam := 0.0
	for j := 0; j < m; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += xs[i] * p.At(j, i)
		}
		lam = math.Max(lam, s)
	}
	matrix.VecScale(xs, 1/(1.05*lam), xs)
	cov, err := coverAround(n, d, density, xs, rng)
	if err != nil {
		return nil, err
	}
	as := make([]*matrix.Dense, n)
	for i := 0; i < n; i++ {
		as[i] = matrix.Diag(p.Col(i))
	}
	return &MixedLP{A: as, C: cov, Witness: xs,
		Name: fmt.Sprintf("mixed-covering-lp(n=%d,m=%d,d=%d)", n, m, d)}, nil
}

// MixedSparse is a generated mixed instance with general-sparse packing
// constraints. The witness satisfies Σ Witnessᵢ·Tr[Aᵢ] < 1 (trace
// dominates λ_max, so the packing side holds with margin) and
// C·Witness ≥ 1.5·1.
type MixedSparse struct {
	A       []*sparse.CSC
	C       *matrix.Dense
	Witness []float64
	Name    string
}

// MixedGraphCovering is graph packing with covering demands: the
// packing side is the grouped-Laplacian family (groups constraints over
// the graph's edges) and d covering rows demand weight across random
// subsets of the groups — "pack the subgraphs inside the unit ball
// while every demand row is served". The witness is scaled through the
// trace bound λ_max ≤ Tr, so feasibility survives any grouping.
func MixedGraphCovering(g *graph.Graph, groups, d int, rng *rand.Rand) (*MixedSparse, error) {
	if d <= 0 {
		return nil, fmt.Errorf("gen: MixedGraphCovering: d=%d covering rows must be positive", d)
	}
	pack, err := SparseGroupedLaplacians(g, groups, rng)
	if err != nil {
		return nil, err
	}
	n := len(pack.A)
	xs := make([]float64, n)
	for i, a := range pack.A {
		tr := 0.0
		for j := 0; j < a.C; j++ {
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				if a.Row[k] == j {
					tr += a.Val[k]
				}
			}
		}
		if tr <= 0 {
			return nil, fmt.Errorf("gen: MixedGraphCovering: group %d has non-positive trace %v", i, tr)
		}
		xs[i] = 1 / (1.05 * float64(n) * tr)
	}
	cov, err := coverAround(n, d, 0.6, xs, rng)
	if err != nil {
		return nil, err
	}
	return &MixedSparse{A: pack.A, C: cov, Witness: xs,
		Name: fmt.Sprintf("mixed-graph-covering(n=%d,m=%d,d=%d)", n, g.N, d)}, nil
}

// coverAround builds a d-by-n nonnegative covering matrix scaled so
// C·xs = 1.5·1 exactly: random nonnegative rows (each with at least one
// positive entry) normalized against the witness.
func coverAround(n, d int, density float64, xs []float64, rng *rand.Rand) (*matrix.Dense, error) {
	cov := matrix.New(d, n)
	for j := 0; j < d; j++ {
		row := cov.Row(j)
		for i := 0; i < n; i++ {
			if rng.Float64() < density {
				row[i] = 0.5 + rng.Float64()
			}
		}
		row[rng.IntN(n)] = 0.5 + rng.Float64() // no all-zero rows
		t := matrix.VecDot(row, xs)
		if t <= 0 || math.IsInf(t, 0) || math.IsNaN(t) {
			return nil, fmt.Errorf("gen: covering row %d has invalid demand %v at the witness", j, t)
		}
		matrix.VecScale(row, 1.5/t, row)
	}
	return cov, nil
}

// DriftScales is the drifting-instance workload driver: a deterministic
// per-constraint scale perturbation for incremental (warm-started)
// serving benchmarks. A fraction frac of the n constraints — at least
// one — is selected without replacement and each gets a multiplier
// drawn uniformly from [1−drift, 1+drift]; the rest are untouched.
// Positive multipliers preserve symmetry and positive semidefiniteness,
// so any drifted revision of a valid packing instance is again valid —
// which is why drift is clamped into [0, 0.99]: a bound ≥ 1 could draw
// zero or negative multipliers and silently flip a constraint off the
// PSD cone.
func DriftScales(n int, frac, drift float64, rng *rand.Rand) (idx []int, by []float64) {
	if n <= 0 {
		return nil, nil
	}
	if drift < 0 {
		drift = 0
	}
	if drift > 0.99 {
		drift = 0.99
	}
	k := int(math.Round(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	// Deterministic output order: ascending constraint index.
	sort.Ints(perm)
	by = make([]float64, k)
	for i := range by {
		by[i] = 1 + drift*(2*rng.Float64()-1)
	}
	return perm, by
}

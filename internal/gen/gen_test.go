package gen

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/matrix"
)

func TestRandomPSDIsPSD(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := RandomPSD(6, 3, rng)
	ok, err := eigen.IsPSD(a, 1e-9)
	if err != nil || !ok {
		t.Fatalf("RandomPSD not PSD: %v", err)
	}
	vals, err := eigen.SymEigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	// rank <= 3: eigenvalues 4..6 must be ~0.
	for _, v := range vals[3:] {
		if math.Abs(v) > 1e-9*vals[0] {
			t.Fatalf("rank exceeded: %v", vals)
		}
	}
}

func TestRandomDenseShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	inst := RandomDense(5, 7, 2, rng)
	if len(inst.A) != 5 || inst.A[0].R != 7 {
		t.Fatal("shape wrong")
	}
	if !math.IsNaN(inst.OPT) {
		t.Fatal("OPT should be NaN for random instances")
	}
}

func TestIdenticalOPT(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	lm := func(a *matrix.Dense) float64 {
		v, err := eigen.LambdaMax(a)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	inst := Identical(4, 5, rng, lm)
	want, err := eigen.LambdaMax(inst.A[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.OPT-1/want) > 1e-12 {
		t.Fatalf("OPT = %v want %v", inst.OPT, 1/want)
	}
}

func TestOrthogonalRankOneStructure(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	inst, err := OrthogonalRankOne(4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise products AᵢAⱼ = vᵢ(vᵢ·vⱼ)vⱼᵀ must vanish for i≠j.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			prod := matrix.MulAB(inst.A[i], inst.A[j], nil)
			if prod.MaxAbs() > 1e-8 {
				t.Fatalf("constraints %d,%d not orthogonal: %v", i, j, prod.MaxAbs())
			}
		}
	}
	// OPT = Σ 1/Tr (rank one: Tr = |v|² = λmax).
	want := 0.0
	for _, a := range inst.A {
		want += 1 / a.Trace()
	}
	if math.Abs(inst.OPT-want) > 1e-12 {
		t.Fatalf("OPT = %v want %v", inst.OPT, want)
	}
	if _, err := OrthogonalRankOne(7, 6, rng); err == nil {
		t.Fatal("n > m accepted")
	}
}

func TestDiagonalLPConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	inst, p := DiagonalLP(5, 4, 0.6, rng)
	if len(inst.A) != 5 || p.R != 4 || p.C != 5 {
		t.Fatal("shape wrong")
	}
	for i, a := range inst.A {
		col := p.Col(i)
		for j, v := range col {
			if a.At(j, j) != v {
				t.Fatalf("constraint %d diagonal mismatch", i)
			}
		}
	}
}

func TestWidthFamilyControlsWidth(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, w := range []float64{1, 8, 64} {
		inst, err := WidthFamily(5, 6, w, rng)
		if err != nil {
			t.Fatal(err)
		}
		lam, err := eigen.LambdaMax(inst.A[0])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lam-w) > 1e-12 {
			t.Fatalf("spike λmax = %v want %v", lam, w)
		}
		for i := 1; i < 5; i++ {
			lam, err := eigen.LambdaMax(inst.A[i])
			if err != nil {
				t.Fatal(err)
			}
			if lam > 1.01 {
				t.Fatalf("plate %d has λmax %v > 1", i, lam)
			}
		}
	}
	if _, err := WidthFamily(1, 2, 1, rng); err == nil {
		t.Fatal("n<2 accepted")
	}
	if _, err := WidthFamily(3, 3, -1, rng); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestEllipse2DMatchesFigure1(t *testing.T) {
	inst := Ellipse2D()
	if len(inst.A) != 3 {
		t.Fatal("Figure 1 has 3 ellipses")
	}
	// A1 and A2 axis-aligned (diagonal), A3 not.
	if inst.A[0].At(0, 1) != 0 || inst.A[1].At(0, 1) != 0 {
		t.Fatal("A1/A2 must be axis-aligned")
	}
	if math.Abs(inst.A[2].At(0, 1)) < 1e-9 {
		t.Fatal("A3 must be rotated (off-diagonal nonzero)")
	}
	for i, a := range inst.A {
		ok, err := eigen.IsPSD(a, 1e-12)
		if err != nil || !ok {
			t.Fatalf("ellipse %d not PSD", i)
		}
	}
}

func TestBeamformingRankOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	inst, err := Beamforming(6, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Q) != 6 {
		t.Fatal("wrong user count")
	}
	for i, q := range inst.Q {
		if q.C != 1 || q.R != 8 {
			t.Fatalf("user %d factor is %dx%d, want 8x1", i, q.R, q.C)
		}
	}
	if _, err := Beamforming(0, 4, rng); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestGraphEdgePackingFactors(t *testing.T) {
	g := graph.Cycle(5)
	inst, err := GraphEdgePacking(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Q) != 5 {
		t.Fatal("edge count wrong")
	}
	for _, q := range inst.Q {
		if q.NNZ() != 2 {
			t.Fatalf("edge factor nnz = %d want 2", q.NNZ())
		}
	}
}

func TestRandomFactoredShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	inst, err := RandomFactored(4, 10, 3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range inst.Q {
		if q.C != 3 || q.NNZ() != 6 {
			t.Fatalf("factor shape wrong: cols=%d nnz=%d", q.C, q.NNZ())
		}
	}
	if _, err := RandomFactored(2, 3, 1, 9, rng); err == nil {
		t.Fatal("nnzPerCol > m accepted")
	}
}

func TestSparseEdgePackingMatchesLaplacian(t *testing.T) {
	g := graph.Cycle(6)
	inst, err := SparseEdgePacking(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.A) != g.M() {
		t.Fatalf("got %d constraints, want %d", len(inst.A), g.M())
	}
	// Σₑ Aₑ must equal the full graph Laplacian.
	sum := matrix.New(g.N, g.N)
	for _, a := range inst.A {
		if a.NNZ() != 4 {
			t.Fatalf("edge Laplacian has %d nnz, want 4", a.NNZ())
		}
		d := a.ToDense()
		for k, v := range d.Data {
			sum.Data[k] += v
		}
	}
	if !matrix.ApproxEqual(sum, g.Laplacian(), 1e-12) {
		t.Fatal("edge Laplacians do not sum to the graph Laplacian")
	}
}

func TestSparseGroupedLaplacians(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	g := graph.Grid(4, 5)
	inst, err := SparseGroupedLaplacians(g, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.A) != 5 {
		t.Fatalf("got %d groups, want 5", len(inst.A))
	}
	// Every edge lands in exactly one group: the constraints sum to the
	// full Laplacian.
	sum := matrix.New(g.N, g.N)
	for _, a := range inst.A {
		if a.R != g.N || a.C != g.N {
			t.Fatalf("constraint is %dx%d, want %dx%d", a.R, a.C, g.N, g.N)
		}
		d := a.ToDense()
		for k, v := range d.Data {
			sum.Data[k] += v
		}
	}
	if !matrix.ApproxEqual(sum, g.Laplacian(), 1e-12) {
		t.Fatal("grouped Laplacians do not sum to the graph Laplacian")
	}
	if _, err := SparseGroupedLaplacians(g, 0, rng); err == nil {
		t.Fatal("groups=0 accepted")
	}
	if _, err := SparseGroupedLaplacians(g, g.M()+1, rng); err == nil {
		t.Fatal("groups > |E| accepted")
	}
}

func TestDriftScales(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	idx, by := DriftScales(10, 0.5, 0.05, rng)
	if len(idx) != 5 || len(by) != 5 {
		t.Fatalf("selected %d/%d, want 5/5", len(idx), len(by))
	}
	for i := range idx {
		if i > 0 && idx[i] <= idx[i-1] {
			t.Fatalf("indices not strictly ascending: %v", idx)
		}
		if idx[i] < 0 || idx[i] >= 10 {
			t.Fatalf("index %d out of range", idx[i])
		}
		if by[i] < 0.95 || by[i] > 1.05 {
			t.Fatalf("multiplier %v outside [0.95, 1.05]", by[i])
		}
	}
	// Deterministic under the same rng seed.
	idx2, by2 := DriftScales(10, 0.5, 0.05, rand.New(rand.NewPCG(1, 2)))
	for i := range idx {
		if idx[i] != idx2[i] || by[i] != by2[i] {
			t.Fatal("DriftScales is not deterministic")
		}
	}
	// At least one constraint always drifts, even at frac 0.
	idx3, _ := DriftScales(4, 0, 0.05, rng)
	if len(idx3) != 1 {
		t.Fatalf("frac 0 selected %d, want 1", len(idx3))
	}
	// Drift is clamped so multipliers stay strictly positive (PSD is
	// preserved) even for a nonsensical bound.
	for i := 0; i < 50; i++ {
		_, by4 := DriftScales(8, 1, 5.0, rng)
		for _, b := range by4 {
			if b <= 0 {
				t.Fatalf("drift clamp failed: multiplier %v", b)
			}
		}
	}
}

// The mixed families ship a witness the construction scaled around:
// covering demands hit exactly 1.5 at it and the packing side stays
// strictly inside the unit ball, so generated instances are always
// bicriteria-feasible with margin.
func TestMixedCoveringLPWitnessFeasible(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	inst, err := MixedCoveringLP(8, 6, 4, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.A) != 8 || inst.C.R != 4 || inst.C.C != 8 || len(inst.Witness) != 8 {
		t.Fatalf("shape drift: n=%d C=%dx%d w=%d", len(inst.A), inst.C.R, inst.C.C, len(inst.Witness))
	}
	sum := matrix.New(6, 6)
	for i, a := range inst.A {
		for k := range sum.Data {
			sum.Data[k] += inst.Witness[i] * a.Data[k]
		}
	}
	for j := 0; j < 6; j++ {
		if d := sum.At(j, j); d >= 1 {
			t.Fatalf("packed diagonal %d = %v at the witness, want < 1", j, d)
		}
	}
	for j := 0; j < inst.C.R; j++ {
		got := matrix.VecDot(inst.C.Row(j), inst.Witness)
		if math.Abs(got-1.5) > 1e-9 {
			t.Fatalf("covering row %d demands %v at the witness, want 1.5", j, got)
		}
	}
	for _, v := range inst.C.Data {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("covering entry %v invalid", v)
		}
	}
}

func TestMixedGraphCoveringWitnessFeasible(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := graph.ErdosRenyi(14, 6.0/14, rng)
	inst, err := MixedGraphCovering(g, 5, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.A) != 5 || inst.C.R != 3 || inst.C.C != 5 {
		t.Fatalf("shape drift: n=%d C=%dx%d", len(inst.A), inst.C.R, inst.C.C)
	}
	// Trace bound: Σ xᵢ·Tr[Aᵢ] < 1 implies λ_max(Σ xᵢAᵢ) < 1.
	trSum := 0.0
	for i, a := range inst.A {
		tr := 0.0
		for j := 0; j < a.C; j++ {
			for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
				if a.Row[k] == j {
					tr += a.Val[k]
				}
			}
		}
		trSum += inst.Witness[i] * tr
	}
	if trSum >= 1 {
		t.Fatalf("witness trace sum %v, want < 1", trSum)
	}
	for j := 0; j < inst.C.R; j++ {
		got := matrix.VecDot(inst.C.Row(j), inst.Witness)
		if math.Abs(got-1.5) > 1e-9 {
			t.Fatalf("covering row %d demands %v at the witness, want 1.5", j, got)
		}
	}
}

package chol

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randPSD(n, r int, rng *rand.Rand) *matrix.Dense {
	g := matrix.New(n, r)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return matrix.MulABT(g, g, nil)
}

func TestCholeskyKnown(t *testing.T) {
	a := matrix.FromRows([][]float64{{4, 2}, {2, 5}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.FromRows([][]float64{{2, 0}, {1, 2}})
	if !matrix.ApproxEqual(l, want, 1e-12) {
		t.Fatalf("L = %v want %v", l, want)
	}
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 3, 10, 25} {
		a := randPSD(n, n, rng)
		matrix.AddScaledIdentity(a, 0.5) // ensure PD
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		llt := matrix.MulABT(l, l, nil)
		if !matrix.ApproxEqual(llt, a, 1e-9*float64(n)) {
			t.Fatalf("n=%d: LLᵀ != A", n)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := matrix.Diag([]float64{1, -1})
	if _, err := Cholesky(a); err != ErrNotPD {
		t.Fatalf("err = %v want ErrNotPD", err)
	}
	if _, err := Cholesky(matrix.New(2, 3)); err == nil {
		t.Fatal("rectangular accepted")
	}
}

func TestPivotedCholeskyFullRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randPSD(8, 8, rng)
	matrix.AddScaledIdentity(a, 0.1)
	q, rank, err := PivotedCholesky(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 8 {
		t.Fatalf("rank = %d want 8", rank)
	}
	qqt := matrix.MulABT(q, q, nil)
	if !matrix.ApproxEqual(qqt, a, 1e-8) {
		t.Fatal("QQᵀ != A")
	}
}

func TestPivotedCholeskyLowRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, r := range []int{1, 2, 4} {
		a := randPSD(10, r, rng)
		q, rank, err := PivotedCholesky(a, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if rank != r {
			t.Fatalf("rank = %d want %d", rank, r)
		}
		qqt := matrix.MulABT(q, q, nil)
		if !matrix.ApproxEqual(qqt, a, 1e-7) {
			t.Fatalf("rank %d: QQᵀ != A (err %g)", r, maxDiff(qqt, a))
		}
	}
}

func TestPivotedCholeskyZeroMatrix(t *testing.T) {
	q, rank, err := PivotedCholesky(matrix.New(5, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 0 || q.FrobNorm() != 0 {
		t.Fatalf("zero matrix: rank=%d |Q|=%v", rank, q.FrobNorm())
	}
}

func TestPivotedCholeskyRejectsIndefinite(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, _, err := PivotedCholesky(a, 0); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestSqrtPSD(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := randPSD(6, 6, rng)
	s, err := SqrtPSD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := matrix.MulAB(s, s, nil)
	if !matrix.ApproxEqual(s2, a, 1e-9) {
		t.Fatal("sqrt² != A")
	}
}

func TestInvSqrtPSDFullRank(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	a := randPSD(6, 6, rng)
	matrix.AddScaledIdentity(a, 0.2)
	inv, rank, err := InvSqrtPSD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 6 {
		t.Fatalf("rank = %d want 6", rank)
	}
	// A^{-1/2} A A^{-1/2} = I.
	m := matrix.MulAB(matrix.MulAB(inv, a, nil), inv, nil)
	if !matrix.ApproxEqual(m, matrix.Identity(6), 1e-8) {
		t.Fatal("A^{-1/2} A A^{-1/2} != I")
	}
}

func TestInvSqrtPSDRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	a := randPSD(8, 3, rng)
	inv, rank, err := InvSqrtPSD(a, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 3 {
		t.Fatalf("rank = %d want 3", rank)
	}
	// On the support: A^{-1/2} A A^{-1/2} is the orthogonal projector
	// onto range(A); it must be idempotent with trace = rank.
	p := matrix.MulAB(matrix.MulAB(inv, a, nil), inv, nil)
	p2 := matrix.MulAB(p, p, nil)
	if !matrix.ApproxEqual(p2, p, 1e-8) {
		t.Fatal("projector not idempotent")
	}
	if math.Abs(p.Trace()-3) > 1e-8 {
		t.Fatalf("projector trace = %v want 3", p.Trace())
	}
}

func TestInvSqrtRejectsIndefinite(t *testing.T) {
	a := matrix.Diag([]float64{1, -2})
	if _, _, err := InvSqrtPSD(a, 0); err == nil {
		t.Fatal("indefinite accepted by InvSqrtPSD")
	}
	if _, err := SqrtPSD(a, 0); err == nil {
		t.Fatal("indefinite accepted by SqrtPSD")
	}
}

func TestQuickPivotedCholeskyAlwaysReconstructs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 1 + int(seed%8)
		r := 1 + int((seed/8)%uint64(n))
		a := randPSD(n, r, rng)
		q, _, err := PivotedCholesky(a, 0)
		if err != nil {
			return false
		}
		return matrix.ApproxEqual(matrix.MulABT(q, q, nil), a, 1e-7*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func maxDiff(a, b *matrix.Dense) float64 {
	d := matrix.New(a.R, a.C)
	matrix.Sub(d, a, b)
	return d.MaxAbs()
}

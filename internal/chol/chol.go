// Package chol provides Cholesky-style factorizations of (semi)definite
// matrices. The paper's fast path (Theorem 4.1) consumes constraints in
// factored form Aᵢ = QᵢQᵢᵀ; when the input is given as dense PSD
// matrices, the preprocessing step the paper describes ("we can add a
// preprocessing step that factors each Aᵢ") is the pivoted Cholesky
// here. The package also builds the C^{±1/2} matrices of the Appendix A
// normalization via eigendecompositions.
package chol

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/work"
)

// ErrNotPD is returned by Cholesky when the matrix is not (numerically)
// positive definite.
var ErrNotPD = errors.New("chol: matrix is not positive definite")

// Cholesky computes the lower-triangular L with A = L Lᵀ for a
// symmetric positive definite matrix. A is not modified.
func Cholesky(a *matrix.Dense) (*matrix.Dense, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("chol: matrix is %dx%d, want square", a.R, a.C)
	}
	n := a.R
	l := matrix.New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		// Rows below the pivot are independent given column j's prefix:
		// the classical right-looking update, blocked over rows.
		parallel.ForBlock(n-j-1, colGrain(j+1), func(lo, hi int) {
			for i := j + 1 + lo; i < j+1+hi; i++ {
				s := a.At(i, j)
				lrow := l.Data[i*n : i*n+j]
				jrow := l.Data[j*n : j*n+j]
				for k, v := range lrow {
					s -= v * jrow[k]
				}
				l.Set(i, j, s/ljj)
			}
		})
	}
	return l, nil
}

// colGrain picks a row-block grain so each forked block performs at
// least ~4096 scalar operations when every row costs flopsPerRow.
func colGrain(flopsPerRow int) int {
	g := 4096 / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// PivotedCholesky computes a rank-revealing factorization A ≈ Q Qᵀ of a
// symmetric PSD matrix, with Q of size n-by-rank. Pivots are chosen
// greedily on the largest remaining diagonal; the process stops when the
// remaining diagonal mass falls below tol·Tr(A) (tol <= 0 defaults to
// 1e-12). Returns an error if A has a significantly negative diagonal
// residual, which indicates the input was not PSD.
func PivotedCholesky(a *matrix.Dense, tol float64) (q *matrix.Dense, rank int, err error) {
	return PivotedCholeskyWS(nil, a, tol)
}

// PivotedCholeskyWS is PivotedCholesky drawing its per-pivot column
// scratch and residual diagonal from ws, so batch factorization (one
// pivoted Cholesky per constraint when densifying an instance) reuses
// one set of buffers instead of allocating O(n·rank) per matrix. Only
// the returned factor is freshly allocated.
func PivotedCholeskyWS(ws *work.Workspace, a *matrix.Dense, tol float64) (q *matrix.Dense, rank int, err error) {
	if !a.IsSquare() {
		return nil, 0, fmt.Errorf("chol: matrix is %dx%d, want square", a.R, a.C)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := a.R
	diag := ws.Vec(n)
	defer ws.PutVec(diag)
	trace := 0.0
	for i := 0; i < n; i++ {
		diag[i] = a.At(i, i)
		trace += diag[i]
	}
	if trace == 0 {
		// The zero matrix: factor with a single zero column so callers
		// can treat Q uniformly.
		return matrix.New(n, 1), 0, nil
	}
	// cols[k] is the k-th computed factor column (length n); all columns
	// go back to the workspace once the factor matrix is assembled.
	cols := make([][]float64, 0, n)
	defer func() {
		for _, c := range cols {
			ws.PutVec(c)
		}
	}()
	perm := make([]int, 0, n)
	for k := 0; k < n; k++ {
		// Select pivot.
		p, best := -1, tol*trace
		for i := 0; i < n; i++ {
			if diag[i] > best {
				best = diag[i]
				p = i
			}
		}
		if p < 0 {
			break
		}
		piv := math.Sqrt(diag[p])
		col := ws.Vec(n)
		// Each entry of the new factor column depends only on the already
		// computed columns, so the sweep blocks over rows.
		parallel.ForBlock(n, colGrain(len(cols)+1), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s := a.At(i, p)
				for _, c := range cols {
					s -= c[i] * c[p]
				}
				col[i] = s / piv
			}
		})
		col[p] = piv
		cols = append(cols, col)
		perm = append(perm, p)
		parallel.ForBlock(n, 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				diag[i] -= col[i] * col[i]
			}
		})
		diag[p] = 0
		// A meaningfully negative residual diagonal certifies the input
		// was not PSD: for true PSD matrices the Schur complement stays
		// (numerically) nonnegative.
		if matrix.VecMin(diag) < -1e-8*trace {
			return nil, 0, errors.New("chol: matrix is not positive semidefinite")
		}
	}
	rank = len(cols)
	if rank == 0 {
		return matrix.New(n, 1), 0, nil
	}
	q = matrix.New(n, rank)
	for k, col := range cols {
		for i := 0; i < n; i++ {
			q.Set(i, k, col[i])
		}
	}
	return q, rank, nil
}

// SqrtPSD returns the symmetric PSD square root A^{1/2} of a symmetric
// PSD matrix, clipping eigenvalues below tol·λ_max to zero
// (tol <= 0 defaults to 1e-12).
func SqrtPSD(a *matrix.Dense, tol float64) (*matrix.Dense, error) {
	dec, lmax, err := psdDecompose(a, &tol)
	if err != nil {
		return nil, err
	}
	cut := tol * lmax
	return dec.Apply(func(x float64) float64 {
		if x <= cut {
			return 0
		}
		return math.Sqrt(x)
	}), nil
}

// InvSqrtPSD returns the Moore–Penrose inverse square root A^{-1/2} of a
// symmetric PSD matrix: eigenvalues below tol·λ_max are treated as zero
// and inverted to zero. The returned rank counts the retained
// eigenvalues. This is the C^{-1/2} of the paper's Appendix A
// normalization, where C is assumed full rank on the relevant support.
func InvSqrtPSD(a *matrix.Dense, tol float64) (inv *matrix.Dense, rank int, err error) {
	dec, lmax, err := psdDecompose(a, &tol)
	if err != nil {
		return nil, 0, err
	}
	cut := tol * lmax
	rank = 0
	for _, v := range dec.Values {
		if v > cut {
			rank++
		}
	}
	inv = dec.Apply(func(x float64) float64 {
		if x <= cut {
			return 0
		}
		return 1 / math.Sqrt(x)
	})
	return inv, rank, nil
}

func psdDecompose(a *matrix.Dense, tol *float64) (*eigen.Decomposition, float64, error) {
	if *tol <= 0 {
		*tol = 1e-12
	}
	dec, err := eigen.SymEigen(a)
	if err != nil {
		return nil, 0, err
	}
	lmax := dec.Values[0]
	if lmax < 0 {
		return nil, 0, errors.New("chol: matrix is negative definite, not PSD")
	}
	if lmax == 0 {
		lmax = 1 // zero matrix: any cut works
	}
	lmin := dec.Values[len(dec.Values)-1]
	if lmin < -1e-8*lmax {
		return nil, 0, errors.New("chol: matrix is not positive semidefinite")
	}
	return dec, lmax, nil
}

package sparse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// CSC is a compressed sparse column matrix. It is the natural layout for
// the constraint factors Qᵢ (m rows, cᵢ columns): the solver needs
// Qᵀv (column dot products), Q·u (column-scaled accumulation), and
// S·Q for a dense sketch S, all of which stream over columns.
type CSC struct {
	R, C   int
	ColPtr []int // length C+1
	Row    []int
	Val    []float64
}

// NewCSC builds a CSC matrix from triplets; duplicates are summed and
// entries whose sum is exactly zero are dropped. The result is a
// canonical form: any two triplet lists describing the same multiset of
// (row, col, value) entries — in any order — build bitwise-identical
// matrices. Duplicates are therefore summed in a fixed value order
// (ascending IEEE 754 bit pattern), not document order: float addition
// is not associative, so summing {1e17, 1, -1e17} in two different
// document orders would otherwise yield different stored values — or
// leave a should-be-cancelled entry alive in one ordering and dropped
// as an exact zero in the other — and split the content digests of
// mathematically identical instances.
func NewCSC(r, c int, trips []Triplet) (*CSC, error) {
	if r <= 0 || c <= 0 {
		return nil, fmt.Errorf("sparse: NewCSC(%d, %d): dimensions must be positive", r, c)
	}
	sorted := make([]Triplet, len(trips))
	copy(sorted, trips)
	for _, t := range sorted {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			return nil, fmt.Errorf("sparse: entry (%d, %d) out of range for %dx%d", t.Row, t.Col, r, c)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Col != sorted[j].Col {
			return sorted[i].Col < sorted[j].Col
		}
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return math.Float64bits(sorted[i].Val) < math.Float64bits(sorted[j].Val)
	})
	m := &CSC{R: r, C: c, ColPtr: make([]int, c+1)}
	for k := 0; k < len(sorted); {
		t := sorted[k]
		v := t.Val
		k++
		for k < len(sorted) && sorted[k].Col == t.Col && sorted[k].Row == t.Row {
			v += sorted[k].Val
			k++
		}
		if v == 0 {
			continue
		}
		m.Row = append(m.Row, t.Row)
		m.Val = append(m.Val, v)
		m.ColPtr[t.Col+1]++
	}
	for j := 0; j < c; j++ {
		m.ColPtr[j+1] += m.ColPtr[j]
	}
	return m, nil
}

// CSCFromDense converts a dense matrix, dropping |v| <= dropTol.
func CSCFromDense(d *matrix.Dense, dropTol float64) *CSC {
	var trips []Triplet
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			v := d.At(i, j)
			if v > dropTol || v < -dropTol {
				trips = append(trips, Triplet{i, j, v})
			}
		}
	}
	m, err := NewCSC(d.R, d.C, trips)
	if err != nil {
		panic(err) // unreachable: indices come from d itself
	}
	return m
}

// CSCFromColumns builds an m-by-len(cols) CSC whose j-th column is the
// dense vector cols[j]; entries with |v| <= dropTol are dropped.
func CSCFromColumns(m int, cols [][]float64, dropTol float64) (*CSC, error) {
	var trips []Triplet
	for j, col := range cols {
		if len(col) != m {
			return nil, fmt.Errorf("sparse: column %d has length %d, want %d", j, len(col), m)
		}
		for i, v := range col {
			if v > dropTol || v < -dropTol {
				trips = append(trips, Triplet{i, j, v})
			}
		}
	}
	return NewCSC(m, len(cols), trips)
}

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int { return len(m.Val) }

// TMulVec returns Qᵀ·v (length C). Work O(nnz), depth O(log).
func (m *CSC) TMulVec(v []float64) []float64 {
	out := make([]float64, m.C)
	m.TMulVecInto(out, v)
	return out
}

// TMulVecInto computes out = Qᵀ·v into the caller's buffer (length C),
// the zero-allocation form used by the workspace-threaded Ψ·v paths.
func (m *CSC) TMulVecInto(out, v []float64) {
	if len(v) != m.R || len(out) != m.C {
		panic("sparse: CSC.TMulVec dimension mismatch")
	}
	avg := 1
	if m.C > 0 {
		avg = len(m.Val)/m.C + 1
	}
	grain := 4096/avg + 1
	if parallel.SerialBlock(m.C, grain) {
		tMulVecCols(m, out, v, 0, m.C)
		return
	}
	parallel.ForBlock(m.C, grain, func(lo, hi int) {
		tMulVecCols(m, out, v, lo, hi)
	})
}

// tMulVecCols computes out[j] = (column j)·v for j in [lo, hi), four
// columns at a time: while all four columns still have entries their
// accumulation chains run interleaved, putting four independent add
// chains in flight instead of one latency-bound chain, then each column
// drains its remaining entries alone. Every column's sum still visits
// its entries in ascending k order with a single accumulator, so out is
// bitwise identical to the one-column loop.
func tMulVecCols(m *CSC, out, v []float64, lo, hi int) {
	cp, val, row := m.ColPtr, m.Val, m.Row
	j := lo
	for ; j+3 < hi; j += 4 {
		k0, e0 := cp[j], cp[j+1]
		k1, e1 := cp[j+1], cp[j+2]
		k2, e2 := cp[j+2], cp[j+3]
		k3, e3 := cp[j+3], cp[j+4]
		var s0, s1, s2, s3 float64
		for k0 < e0 && k1 < e1 && k2 < e2 && k3 < e3 {
			s0 += val[k0] * v[row[k0]]
			s1 += val[k1] * v[row[k1]]
			s2 += val[k2] * v[row[k2]]
			s3 += val[k3] * v[row[k3]]
			k0++
			k1++
			k2++
			k3++
		}
		for ; k0 < e0; k0++ {
			s0 += val[k0] * v[row[k0]]
		}
		for ; k1 < e1; k1++ {
			s1 += val[k1] * v[row[k1]]
		}
		for ; k2 < e2; k2++ {
			s2 += val[k2] * v[row[k2]]
		}
		for ; k3 < e3; k3++ {
			s3 += val[k3] * v[row[k3]]
		}
		out[j], out[j+1], out[j+2], out[j+3] = s0, s1, s2, s3
	}
	for ; j < hi; j++ {
		var s float64
		for k := cp[j]; k < cp[j+1]; k++ {
			s += val[k] * v[row[k]]
		}
		out[j] = s
	}
}

// MulVecAdd accumulates dst += s·Q·u where u has length C.
// Sequential over columns (columns may share rows); callers parallelize
// at a higher level.
func (m *CSC) MulVecAdd(dst []float64, s float64, u []float64) {
	if len(u) != m.C || len(dst) != m.R {
		panic("sparse: CSC.MulVecAdd dimension mismatch")
	}
	for j := 0; j < m.C; j++ {
		su := s * u[j]
		if su == 0 {
			continue
		}
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			dst[m.Row[k]] += m.Val[k] * su
		}
	}
}

// GramDense returns the dense m-by-m matrix Q·Qᵀ. Used to materialize
// factored constraints on the dense/reference path.
func (m *CSC) GramDense() *matrix.Dense {
	out := matrix.New(m.R, m.R)
	for j := 0; j < m.C; j++ {
		for k1 := m.ColPtr[j]; k1 < m.ColPtr[j+1]; k1++ {
			r1, v1 := m.Row[k1], m.Val[k1]
			for k2 := m.ColPtr[j]; k2 < m.ColPtr[j+1]; k2++ {
				out.Data[r1*m.R+m.Row[k2]] += v1 * m.Val[k2]
			}
		}
	}
	return out
}

// GramTrace returns Tr[QQᵀ] = Σᵢⱼ Qᵢⱼ², i.e. the squared Frobenius norm
// of the factor — the constraint trace the reduction of Lemma 2.2 caps.
func (m *CSC) GramTrace() float64 {
	return parallel.SumBlocks(len(m.Val), 4096, func(lo, hi int) float64 {
		var s float64
		for k := lo; k < hi; k++ {
			s += m.Val[k] * m.Val[k]
		}
		return s
	})
}

// GramQuad returns vᵀ(QQᵀ)v = |Qᵀv|².
func (m *CSC) GramQuad(v []float64) float64 {
	qv := m.TMulVec(v)
	return matrix.VecDot(qv, qv)
}

// SketchDot returns |S·Q|_F² where S is a dense k-by-m sketch: this is
// the per-constraint estimate |Π exp(Φ/2) Qᵢ|² of Theorem 4.1.
// Work O(k·nnz(Q)), depth O(log).
func (m *CSC) SketchDot(s *matrix.Dense) float64 {
	if s.C != m.R {
		panic("sparse: CSC.SketchDot dimension mismatch")
	}
	if parallel.OneBlock(m.C, 4) {
		return sketchDotCols(m, s, 0, m.C)
	}
	return parallel.SumBlocks(m.C, 4, func(lo, hi int) float64 {
		return sketchDotCols(m, s, lo, hi)
	})
}

func sketchDotCols(m *CSC, s *matrix.Dense, lo, hi int) float64 {
	k := s.R
	var total float64
	for j := lo; j < hi; j++ {
		// |S·qⱼ|² for the sparse column qⱼ.
		for r := 0; r < k; r++ {
			row := s.Data[r*s.C : (r+1)*s.C]
			var dot float64
			for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
				dot += row[m.Row[p]] * m.Val[p]
			}
			total += dot * dot
		}
	}
	return total
}

// ToDense converts to dense.
func (m *CSC) ToDense() *matrix.Dense {
	d := matrix.New(m.R, m.C)
	for j := 0; j < m.C; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			d.Data[m.Row[k]*m.C+j] += m.Val[k]
		}
	}
	return d
}

// Scale returns a copy of m with every value multiplied by s.
func (m *CSC) Scale(s float64) *CSC {
	out := &CSC{R: m.R, C: m.C, ColPtr: append([]int(nil), m.ColPtr...), Row: append([]int(nil), m.Row...), Val: make([]float64, len(m.Val))}
	for i, v := range m.Val {
		out.Val[i] = s * v
	}
	return out
}

package sparse

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Symmetric-matrix kernels. A general sparse symmetric constraint Aᵢ is
// stored as a full (not triangular) CSC matrix with R == C; symmetry is
// what makes the kernels below both O(nnz) and race-free in parallel:
// row r of A equals column r, so every row-wise result can be computed
// from the column arrays without transposing, each output entry owned
// by exactly one block of the fixed reduction tree. All kernels follow
// the repository's determinism discipline (fixed block decompositions,
// sequential accumulation within a block) and its allocation discipline
// (a plain-loop branch before any fork closure is built).

// MaxAbs returns max |Aᵢⱼ| over stored entries (0 for an empty matrix).
func (m *CSC) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// HasNonFinite reports whether any stored entry is NaN or ±Inf.
func (m *CSC) HasNonFinite() bool {
	for _, v := range m.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// DiagSum returns Σᵢ Aᵢᵢ, the trace of a square sparse matrix.
func (m *CSC) DiagSum() float64 {
	if m.R != m.C {
		panic("sparse: CSC.DiagSum of non-square matrix")
	}
	var tr float64
	for j := 0; j < m.C; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			if m.Row[k] == j {
				tr += m.Val[k]
			}
		}
	}
	return tr
}

// IsSymmetric reports whether the square matrix satisfies
// |Aᵢⱼ − Aⱼᵢ| ≤ tol for every stored entry (entries absent on one side
// count as zero). Row indices within a column are sorted (NewCSC
// canonicalizes), so each mirror lookup is a binary search: O(nnz·log).
func (m *CSC) IsSymmetric(tol float64) bool {
	if m.R != m.C {
		return false
	}
	for j := 0; j < m.C; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			i := m.Row[k]
			if i == j {
				continue
			}
			if math.Abs(m.Val[k]-m.at(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// at returns the stored value at (row, col), 0 when absent, by binary
// search over the column's sorted row indices.
func (m *CSC) at(row, col int) float64 {
	lo, hi := m.ColPtr[col], m.ColPtr[col+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch r := m.Row[mid]; {
		case r == row:
			return m.Val[mid]
		case r < row:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// SymMulVecInto computes out = A·v for a symmetric square matrix. By
// symmetry A·v = Aᵀ·v, which streams over columns: out[j] is a single
// column dot product, so blocks of the fixed reduction tree never write
// to shared entries. Work O(nnz), depth O(log).
func (m *CSC) SymMulVecInto(out, v []float64) {
	if m.R != m.C {
		panic("sparse: CSC.SymMulVecInto of non-square matrix")
	}
	m.TMulVecInto(out, v)
}

// Quad returns the quadratic form vᵀAv for a square matrix in one
// O(nnz) pass, accumulating column contributions in the fixed block
// order: Σⱼ (Σₖ Aₖⱼ·vₖ)·vⱼ.
func (m *CSC) Quad(v []float64) float64 {
	if m.R != m.C || len(v) != m.R {
		panic("sparse: CSC.Quad dimension mismatch")
	}
	grain := quadGrain(m)
	n := m.C
	blocks := parallel.BlockCount(n, grain)
	if blocks == 1 {
		return quadCols(m, v, 0, n)
	}
	if parallel.Workers() == 1 {
		// Replay the block tree with a plain loop: same decomposition,
		// same combine order, no heap-escaping closure.
		var s float64
		for b := 0; b < blocks; b++ {
			s += quadCols(m, v, b*n/blocks, (b+1)*n/blocks)
		}
		return s
	}
	return parallel.SumBlocks(n, grain, func(lo, hi int) float64 {
		return quadCols(m, v, lo, hi)
	})
}

func quadCols(m *CSC, v []float64, lo, hi int) float64 {
	var total float64
	for j := lo; j < hi; j++ {
		var dot float64
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			dot += m.Val[k] * v[m.Row[k]]
		}
		total += dot * v[j]
	}
	return total
}

// quadGrain picks the column grain so each block holds ~4096 stored
// entries, matching the other sparse reductions.
func quadGrain(m *CSC) int {
	avg := 1
	if m.C > 0 {
		avg = len(m.Val)/m.C + 1
	}
	return 4096/avg + 1
}

// QuadRows returns Σ_r s_rᵀ·A·s_r over the rows of the dense matrix s
// (each row an m-vector): the batched quadratic form Tr[SASᵀ] = A•SᵀS
// at the heart of the sparse exp(Ψ)•Aᵢ oracles — the general-sparse
// analog of SketchDot. Work O(k·nnz), depth O(log).
func (m *CSC) QuadRows(s *matrix.Dense) float64 {
	if m.R != m.C || s.C != m.R {
		panic("sparse: CSC.QuadRows dimension mismatch")
	}
	grain := quadGrain(m)
	n := m.C
	blocks := parallel.BlockCount(n, grain)
	if blocks == 1 {
		return quadRowsCols(m, s, 0, n)
	}
	if parallel.Workers() == 1 {
		var total float64
		for b := 0; b < blocks; b++ {
			total += quadRowsCols(m, s, b*n/blocks, (b+1)*n/blocks)
		}
		return total
	}
	return parallel.SumBlocks(n, grain, func(lo, hi int) float64 {
		return quadRowsCols(m, s, lo, hi)
	})
}

func quadRowsCols(m *CSC, s *matrix.Dense, lo, hi int) float64 {
	k := s.R
	var total float64
	for j := lo; j < hi; j++ {
		for r := 0; r < k; r++ {
			row := s.Data[r*s.C : (r+1)*s.C]
			var dot float64
			for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
				dot += m.Val[p] * row[m.Row[p]]
			}
			total += dot * row[j]
		}
	}
	return total
}

// QuadForms computes out[i] = scale·vᵀAᵢv for every constraint in one
// parallel sweep over i. Each constraint's accumulation is sequential
// in canonical entry order, so the batch is deterministic at any
// GOMAXPROCS. Work O(Σ nnz(Aᵢ)), depth O(log).
func QuadForms(out []float64, as []*CSC, scale float64, v []float64) {
	if len(out) != len(as) {
		panic("sparse: QuadForms length mismatch")
	}
	if parallel.SerialBlock(len(as), 1) {
		for i, a := range as {
			out[i] = scale * a.Quad(v)
		}
		return
	}
	parallel.ForBlock(len(as), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = scale * as[i].Quad(v)
		}
	})
}

// Stack is the flattened/stacked form of n symmetric m-by-m sparse
// matrices: every stored entry of every Aᵢ regrouped by output row, so
// the multi-matrix matvec Ψ(x)·v = Σᵢ xᵢ·Aᵢ·v is a single O(q) pass
// (q = Σ nnz(Aᵢ)) with each output entry owned by one row — no write
// races, no transposes, fixed accumulation order. Within a row, entries
// appear in constraint order then column order, both canonical, so the
// stacked sum is deterministic at any GOMAXPROCS.
type Stack struct {
	// M is the matrix dimension, N the number of stacked matrices.
	M, N int
	// RowPtr[r]..RowPtr[r+1] delimit row r's entries (length M+1).
	RowPtr []int
	// Col, Con, Val hold each entry's column index, source-constraint
	// index, and value.
	Col []int
	Con []int
	Val []float64
}

// NewStack flattens the symmetric square matrices as (all m-by-m, at
// least one). Symmetry is assumed, not checked: row r of Aᵢ is read
// from column r of its CSC form.
func NewStack(as []*CSC) (*Stack, error) {
	if len(as) == 0 {
		return nil, fmt.Errorf("sparse: NewStack of empty set")
	}
	m := as[0].R
	total := 0
	for i, a := range as {
		if a.R != m || a.C != m {
			return nil, fmt.Errorf("sparse: NewStack: matrix %d is %dx%d, want %dx%d", i, a.R, a.C, m, m)
		}
		total += a.NNZ()
	}
	st := &Stack{
		M:      m,
		N:      len(as),
		RowPtr: make([]int, m+1),
		Col:    make([]int, 0, total),
		Con:    make([]int, 0, total),
		Val:    make([]float64, 0, total),
	}
	for r := 0; r < m; r++ {
		for i, a := range as {
			for k := a.ColPtr[r]; k < a.ColPtr[r+1]; k++ {
				st.Col = append(st.Col, a.Row[k])
				st.Con = append(st.Con, i)
				st.Val = append(st.Val, a.Val[k])
			}
		}
		st.RowPtr[r+1] = len(st.Val)
	}
	return st, nil
}

// NNZ returns the total number of stacked entries q.
func (st *Stack) NNZ() int { return len(st.Val) }

// AccumulateScaled computes out = Σᵢ x[i]·Aᵢ·v in one pass over the
// stacked entries: out[r] = Σ_p Val[p]·x[Con[p]]·v[Col[p]] with p
// ranging over row r. Rows are partitioned over a fixed block tree and
// accumulated sequentially within each row, so the result is bitwise
// identical at any GOMAXPROCS. Work O(q), depth O(log).
func (st *Stack) AccumulateScaled(out, x, v []float64) {
	if len(out) != st.M || len(v) != st.M || len(x) != st.N {
		panic("sparse: Stack.AccumulateScaled dimension mismatch")
	}
	avg := 1
	if st.M > 0 {
		avg = len(st.Val)/st.M + 1
	}
	grain := 4096/avg + 1
	if parallel.SerialBlock(st.M, grain) {
		st.accumRows(out, x, v, 0, st.M)
		return
	}
	parallel.ForBlock(st.M, grain, func(lo, hi int) {
		st.accumRows(out, x, v, lo, hi)
	})
}

func (st *Stack) accumRows(out, x, v []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		var s float64
		for p := st.RowPtr[r]; p < st.RowPtr[r+1]; p++ {
			s += st.Val[p] * x[st.Con[p]] * v[st.Col[p]]
		}
		out[r] = s
	}
}

package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randTriplets(r, c, nnz int, rng *rand.Rand) []Triplet {
	trips := make([]Triplet, nnz)
	for i := range trips {
		trips[i] = Triplet{rng.IntN(r), rng.IntN(c), rng.Float64()*2 - 1}
	}
	return trips
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	trips := randTriplets(7, 5, 20, rng)
	m, err := NewCSR(7, 5, trips)
	if err != nil {
		t.Fatal(err)
	}
	dense := m.ToDense()
	back := FromDense(dense, 0)
	if !matrix.ApproxEqual(back.ToDense(), dense, 0) {
		t.Fatal("CSR round trip failed")
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	m, err := NewCSR(2, 2, []Triplet{{0, 0, 1}, {0, 0, 2}, {1, 1, -1}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.ToDense().At(0, 0) != 3 {
		t.Fatal("duplicates not summed")
	}
	if m.NNZ() != 1 {
		t.Fatalf("cancelled entry kept: nnz = %d", m.NNZ())
	}
}

func TestCSROutOfRange(t *testing.T) {
	if _, err := NewCSR(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := NewCSR(0, 2, nil); err == nil {
		t.Fatal("zero dims accepted")
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m, err := NewCSR(40, 30, randTriplets(40, 30, 200, rng))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 30)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got := m.MulVec(v)
	want := m.ToDense().MulVec(v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatal("CSR MulVec disagrees with dense")
		}
	}
}

func TestCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	trips := randTriplets(6, 9, 25, rng)
	m, err := NewCSC(6, 9, trips)
	if err != nil {
		t.Fatal(err)
	}
	dense := m.ToDense()
	back := CSCFromDense(dense, 0)
	if !matrix.ApproxEqual(back.ToDense(), dense, 0) {
		t.Fatal("CSC round trip failed")
	}
}

func TestCSCFromColumns(t *testing.T) {
	cols := [][]float64{{1, 0, 2}, {0, 3, 0}}
	m, err := CSCFromColumns(3, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.R != 3 || m.C != 2 || m.NNZ() != 3 {
		t.Fatalf("shape/nnz wrong: %d x %d, %d", m.R, m.C, m.NNZ())
	}
	if m.ToDense().At(2, 0) != 2 || m.ToDense().At(1, 1) != 3 {
		t.Fatal("entries wrong")
	}
	if _, err := CSCFromColumns(2, cols, 0); err == nil {
		t.Fatal("bad column length accepted")
	}
}

func TestCSCTMulVec(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	m, err := NewCSC(12, 7, randTriplets(12, 7, 40, rng))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 12)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got := m.TMulVec(v)
	want := m.ToDense().T().MulVec(v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatal("TMulVec disagrees with dense")
		}
	}
}

func TestCSCMulVecAdd(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	m, err := NewCSC(8, 5, randTriplets(8, 5, 20, rng))
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 5)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	dst := make([]float64, 8)
	m.MulVecAdd(dst, 2.5, u)
	want := m.ToDense().MulVec(u)
	for i := range dst {
		if math.Abs(dst[i]-2.5*want[i]) > 1e-12 {
			t.Fatal("MulVecAdd disagrees with dense")
		}
	}
}

func TestCSCGramDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	m, err := NewCSC(6, 4, randTriplets(6, 4, 15, rng))
	if err != nil {
		t.Fatal(err)
	}
	got := m.GramDense()
	d := m.ToDense()
	want := matrix.MulABT(d, d, nil)
	if !matrix.ApproxEqual(got, want, 1e-12) {
		t.Fatal("GramDense != QQᵀ")
	}
	if math.Abs(m.GramTrace()-want.Trace()) > 1e-12 {
		t.Fatalf("GramTrace = %v want %v", m.GramTrace(), want.Trace())
	}
}

func TestCSCGramQuad(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	m, err := NewCSC(10, 3, randTriplets(10, 3, 12, rng))
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, 10)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	want := m.GramDense().QuadForm(v)
	if got := m.GramQuad(v); math.Abs(got-want) > 1e-10 {
		t.Fatalf("GramQuad = %v want %v", got, want)
	}
}

func TestCSCSketchDot(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	q, err := NewCSC(9, 4, randTriplets(9, 4, 18, rng))
	if err != nil {
		t.Fatal(err)
	}
	s := matrix.New(5, 9)
	for i := range s.Data {
		s.Data[i] = rng.NormFloat64()
	}
	want := matrix.MulAB(s, q.ToDense(), nil).FrobNorm()
	want *= want
	if got := q.SketchDot(s); math.Abs(got-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("SketchDot = %v want %v", got, want)
	}
}

func TestCSCScale(t *testing.T) {
	m, err := NewCSC(2, 2, []Triplet{{0, 0, 2}, {1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scale(0.5)
	if s.ToDense().At(0, 0) != 1 || s.ToDense().At(1, 1) != 1.5 {
		t.Fatal("Scale wrong")
	}
	if m.ToDense().At(0, 0) != 2 {
		t.Fatal("Scale mutated original")
	}
}

func TestQuickCSRMulVecAgainstDense(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		r, c := 1+int(seed%9), 1+int((seed/9)%9)
		nnz := int(seed % 40)
		m, err := NewCSR(r, c, randTriplets(r, c, nnz, rng))
		if err != nil {
			return false
		}
		v := make([]float64, c)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		got := m.MulVec(v)
		want := m.ToDense().MulVec(v)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package sparse

import (
	"math"
	"testing"
)

func cscBitwiseEqual(a, b *CSC) bool {
	if a.R != b.R || a.C != b.C || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.ColPtr {
		if a.ColPtr[i] != b.ColPtr[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.Row[i] != b.Row[i] || math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) {
			return false
		}
	}
	return true
}

// Explicit zeros — standalone zero triplets and duplicate groups that
// cancel to exactly zero — are presentation, not content: they must not
// survive canonicalization, or mathematically identical instances get
// different content digests downstream (cache/revision-store misses).
func TestNewCSCDropsExplicitZeros(t *testing.T) {
	with, err := NewCSC(3, 3, []Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 1, Col: 1, Val: 0},  // standalone explicit zero
		{Row: 2, Col: 2, Val: 5},  // cancelling pair:
		{Row: 2, Col: 2, Val: -5}, //   sums to exact zero
		{Row: 0, Col: 2, Val: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewCSC(3, 3, []Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 0, Col: 2, Val: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cscBitwiseEqual(with, without) {
		t.Fatalf("explicit zeros survived canonicalization: nnz %d vs %d", with.NNZ(), without.NNZ())
	}
}

// Duplicate triplets must be summed in a canonical value order, not
// document order: float addition is not associative, so {1e17, 1,
// -1e17} summed left-to-right yields 0 in one listing order and 1 in
// another — the first is dropped as an exact zero, the second kept.
// Before the value-bits tiebreak in NewCSC's sort, the two listings of
// the same multiset below produced structurally different matrices
// (and therefore different serve digests).
func TestNewCSCDuplicateSummationOrderCanonical(t *testing.T) {
	const big = 1e17
	orderA := []Triplet{
		{Row: 0, Col: 1, Val: big},
		{Row: 0, Col: 1, Val: 1},
		{Row: 0, Col: 1, Val: -big}, // A: big+1 = big (1 absorbed), -big → 0, dropped
		{Row: 1, Col: 1, Val: 3},
	}
	orderB := []Triplet{
		{Row: 0, Col: 1, Val: big},
		{Row: 0, Col: 1, Val: -big}, // B: big-big = 0, +1 → 1, kept
		{Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 1, Val: 3},
	}
	a, err := NewCSC(2, 2, orderA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCSC(2, 2, orderB)
	if err != nil {
		t.Fatal(err)
	}
	if !cscBitwiseEqual(a, b) {
		t.Fatalf("duplicate summation depends on document order: nnz %d (Val %v) vs %d (Val %v)",
			a.NNZ(), a.Val, b.NNZ(), b.Val)
	}
	// And the canonical sum itself must be permutation-independent for
	// an ordinary mixed-sign group too.
	g1, _ := NewCSC(1, 1, []Triplet{{0, 0, 0.1}, {0, 0, 0.7}, {0, 0, -0.3}})
	g2, _ := NewCSC(1, 1, []Triplet{{0, 0, -0.3}, {0, 0, 0.1}, {0, 0, 0.7}})
	if !cscBitwiseEqual(g1, g2) {
		t.Fatalf("mixed-sign duplicate group not canonical: %v vs %v", g1.Val, g2.Val)
	}
}

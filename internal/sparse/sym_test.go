package sparse

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"repro/internal/matrix"
)

// randSymCSC builds a random symmetric m×m CSC with roughly density·m²
// stored entries (mirrored pairs plus a positive diagonal).
func randSymCSC(m int, density float64, rng *rand.Rand) *CSC {
	var trips []Triplet
	for i := 0; i < m; i++ {
		trips = append(trips, Triplet{Row: i, Col: i, Val: 1 + rng.Float64()})
		for j := i + 1; j < m; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				trips = append(trips, Triplet{Row: i, Col: j, Val: v}, Triplet{Row: j, Col: i, Val: v})
			}
		}
	}
	a, err := NewCSC(m, m, trips)
	if err != nil {
		panic(err)
	}
	return a
}

func randVecT(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := randSymCSC(12, 0.3, rng)
	if !a.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	b, err := NewCSC(3, 3, []Triplet{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if b.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix (gap 1) passed tol 0.5")
	}
	if !b.IsSymmetric(1.5) {
		t.Fatal("asymmetric matrix (gap 1) failed tol 1.5")
	}
	// One-sided entry: the mirror is an implicit zero.
	c, err := NewCSC(3, 3, []Triplet{{Row: 2, Col: 0, Val: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if c.IsSymmetric(0.1) {
		t.Fatal("one-sided entry passed symmetry check")
	}
	rect, err := NewCSC(2, 3, []Triplet{{Row: 0, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rect.IsSymmetric(1) {
		t.Fatal("rectangular matrix cannot be symmetric")
	}
}

func TestDiagSumAndMaxAbs(t *testing.T) {
	a, err := NewCSC(3, 3, []Triplet{
		{Row: 0, Col: 0, Val: 2}, {Row: 1, Col: 1, Val: -0.5},
		{Row: 2, Col: 0, Val: -7}, {Row: 0, Col: 2, Val: -7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.DiagSum(); got != 1.5 {
		t.Fatalf("DiagSum = %v, want 1.5", got)
	}
	if got := a.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
	if a.HasNonFinite() {
		t.Fatal("finite matrix reported non-finite")
	}
	b, _ := NewCSC(1, 1, []Triplet{{Row: 0, Col: 0, Val: math.Inf(1)}})
	if !b.HasNonFinite() {
		t.Fatal("Inf entry not reported")
	}
}

func TestSymMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, m := range []int{1, 5, 17, 40} {
		a := randSymCSC(m, 0.35, rng)
		v := randVecT(m, rng)
		got := make([]float64, m)
		a.SymMulVecInto(got, v)
		want := a.ToDense().MulVec(v)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("m=%d: SymMulVec[%d] = %v, dense %v", m, i, got[i], want[i])
			}
		}
	}
}

func TestQuadMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, m := range []int{1, 4, 23} {
		a := randSymCSC(m, 0.4, rng)
		v := randVecT(m, rng)
		av := a.ToDense().MulVec(v)
		want := matrix.VecDot(v, av)
		if got := a.Quad(v); math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
			t.Fatalf("m=%d: Quad = %v, dense %v", m, got, want)
		}
	}
}

func TestQuadRowsMatchesRowSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	m, k := 15, 6
	a := randSymCSC(m, 0.3, rng)
	s := matrix.New(k, m)
	for i := range s.Data {
		s.Data[i] = rng.NormFloat64()
	}
	var want float64
	for r := 0; r < k; r++ {
		want += a.Quad(s.Row(r))
	}
	if got := a.QuadRows(s); math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
		t.Fatalf("QuadRows = %v, row-sum %v", got, want)
	}
}

func TestQuadFormsBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	m := 12
	as := make([]*CSC, 7)
	for i := range as {
		as[i] = randSymCSC(m, 0.3, rng)
	}
	v := randVecT(m, rng)
	out := make([]float64, len(as))
	QuadForms(out, as, 1.5, v)
	for i, a := range as {
		want := 1.5 * a.Quad(v)
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("QuadForms[%d] = %v, want %v (bitwise)", i, out[i], want)
		}
	}
}

func TestStackAccumulateScaledMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	m, n := 18, 5
	as := make([]*CSC, n)
	for i := range as {
		as[i] = randSymCSC(m, 0.25, rng)
	}
	st, err := NewStack(as)
	if err != nil {
		t.Fatal(err)
	}
	wantNNZ := 0
	for _, a := range as {
		wantNNZ += a.NNZ()
	}
	if st.NNZ() != wantNNZ {
		t.Fatalf("Stack.NNZ = %d, want %d", st.NNZ(), wantNNZ)
	}
	x := randVecT(n, rng)
	v := randVecT(m, rng)
	got := make([]float64, m)
	st.AccumulateScaled(got, x, v)
	want := make([]float64, m)
	tmp := make([]float64, m)
	for i, a := range as {
		a.SymMulVecInto(tmp, v)
		for j := range want {
			want[j] += x[i] * tmp[j]
		}
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-10*math.Max(1, math.Abs(want[j])) {
			t.Fatalf("AccumulateScaled[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestStackRejectsShapeMismatch(t *testing.T) {
	a, _ := NewCSC(2, 2, []Triplet{{Row: 0, Col: 0, Val: 1}})
	b, _ := NewCSC(3, 3, []Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewStack([]*CSC{a, b}); err == nil {
		t.Fatal("mismatched dimensions accepted")
	}
	if _, err := NewStack(nil); err == nil {
		t.Fatal("empty stack accepted")
	}
	rect, _ := NewCSC(2, 3, []Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewStack([]*CSC{rect}); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

// The sparse kernels must be bitwise deterministic across GOMAXPROCS:
// fixed block trees, sequential accumulation within blocks.
func TestSymKernelsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	m, n := 64, 9
	as := make([]*CSC, n)
	for i := range as {
		as[i] = randSymCSC(m, 0.2, rng)
	}
	st, err := NewStack(as)
	if err != nil {
		t.Fatal(err)
	}
	x := randVecT(n, rng)
	v := randVecT(m, rng)
	s := matrix.New(7, m)
	for i := range s.Data {
		s.Data[i] = rng.NormFloat64()
	}

	type snapshot struct {
		mv, acc, qf []float64
		quad, qrows float64
	}
	run := func() snapshot {
		var out snapshot
		out.mv = make([]float64, m)
		as[0].SymMulVecInto(out.mv, v)
		out.acc = make([]float64, m)
		st.AccumulateScaled(out.acc, x, v)
		out.qf = make([]float64, n)
		QuadForms(out.qf, as, 0.75, v)
		out.quad = as[1].Quad(v)
		out.qrows = as[2].QuadRows(s)
		return out
	}
	orig := runtime.GOMAXPROCS(1)
	s1 := run()
	runtime.GOMAXPROCS(8)
	s8 := run()
	runtime.GOMAXPROCS(orig)

	bits := math.Float64bits
	for i := range s1.mv {
		if bits(s1.mv[i]) != bits(s8.mv[i]) {
			t.Fatalf("SymMulVec[%d] differs across GOMAXPROCS", i)
		}
	}
	for i := range s1.acc {
		if bits(s1.acc[i]) != bits(s8.acc[i]) {
			t.Fatalf("AccumulateScaled[%d] differs across GOMAXPROCS", i)
		}
	}
	for i := range s1.qf {
		if bits(s1.qf[i]) != bits(s8.qf[i]) {
			t.Fatalf("QuadForms[%d] differs across GOMAXPROCS", i)
		}
	}
	if bits(s1.quad) != bits(s8.quad) || bits(s1.qrows) != bits(s8.qrows) {
		t.Fatal("Quad/QuadRows differ across GOMAXPROCS")
	}
}

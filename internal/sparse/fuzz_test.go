package sparse

import (
	"testing"
)

// FuzzNewCSC drives triplet assembly with arbitrary (r, c, payload)
// inputs. The payload encodes triplets as 3-byte records with small
// signed coordinates (so out-of-range entries occur often) and small
// INTEGER values (so duplicate summation is exact in floating point and
// the dense cross-check below compares bitwise). Properties: NewCSC
// rejects exactly the inputs containing an out-of-range entry, and
// every accepted matrix satisfies the CSC structural invariants and
// agrees entry-for-entry with a naive dense accumulation.
func FuzzNewCSC(f *testing.F) {
	f.Add(3, 3, []byte{0, 0, 1, 1, 1, 2, 2, 2, 3})
	f.Add(2, 2, []byte{0, 0, 5, 0, 0, 251}) // duplicate entry, negative value
	f.Add(1, 1, []byte{0, 0, 0})            // explicit zero is dropped
	f.Add(4, 2, []byte{255, 0, 1})          // negative row: must be rejected
	f.Add(2, 4, []byte{0, 9, 1})            // column out of range: rejected
	f.Add(0, 3, []byte{})                   // non-positive dimension: rejected
	f.Add(5, 5, []byte{})                   // empty matrix is fine
	f.Fuzz(func(t *testing.T, r, c int, data []byte) {
		if r > 64 || c > 64 || len(data) > 3*256 {
			return // bound the work, not the behavior space
		}
		trips := make([]Triplet, 0, len(data)/3)
		outOfRange := false
		for i := 0; i+2 < len(data); i += 3 {
			tr := Triplet{
				Row: int(int8(data[i])),
				Col: int(int8(data[i+1])),
				Val: float64(int8(data[i+2])),
			}
			if tr.Row < 0 || tr.Row >= r || tr.Col < 0 || tr.Col >= c {
				outOfRange = true
			}
			trips = append(trips, tr)
		}
		m, err := NewCSC(r, c, trips)
		if r <= 0 || c <= 0 || outOfRange {
			if err == nil {
				t.Fatalf("NewCSC(%d, %d) accepted invalid input (outOfRange=%v)", r, c, outOfRange)
			}
			return
		}
		if err != nil {
			t.Fatalf("NewCSC(%d, %d) rejected valid triplets: %v", r, c, err)
		}

		// Structural invariants.
		if len(m.ColPtr) != c+1 || m.ColPtr[0] != 0 {
			t.Fatalf("ColPtr malformed: len %d, first %d", len(m.ColPtr), m.ColPtr[0])
		}
		if m.ColPtr[c] != len(m.Val) || len(m.Row) != len(m.Val) {
			t.Fatalf("nnz mismatch: ColPtr[c]=%d, %d rows, %d vals", m.ColPtr[c], len(m.Row), len(m.Val))
		}
		if m.NNZ() != len(m.Val) {
			t.Fatalf("NNZ() = %d, want %d", m.NNZ(), len(m.Val))
		}
		for j := 0; j < c; j++ {
			if m.ColPtr[j] > m.ColPtr[j+1] {
				t.Fatalf("ColPtr not monotone at column %d", j)
			}
			for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
				if m.Row[k] < 0 || m.Row[k] >= r {
					t.Fatalf("stored row %d out of range", m.Row[k])
				}
				if k > m.ColPtr[j] && m.Row[k] <= m.Row[k-1] {
					t.Fatalf("rows not strictly increasing in column %d", j)
				}
				if m.Val[k] == 0 {
					t.Fatalf("explicit zero stored at column %d", j)
				}
			}
		}

		// Dense cross-check: integer values sum exactly in any order.
		want := make([]float64, r*c)
		for _, tr := range trips {
			want[tr.Row*c+tr.Col] += tr.Val
		}
		got := m.ToDense()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if got.At(i, j) != want[i*c+j] {
					t.Fatalf("entry (%d, %d) = %v, want %v", i, j, got.At(i, j), want[i*c+j])
				}
			}
		}
	})
}

// Package sparse implements the compressed sparse row/column matrices
// used by the factored fast path of the solver. Theorem 4.1 of the
// paper charges work proportional to q, the total number of nonzeros in
// the factors Qᵢ of Aᵢ = QᵢQᵢᵀ; these types make that cost model real:
// every product below costs O(nnz) work and O(log) depth.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Triplet is one explicit (row, col, value) entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	R, C   int
	RowPtr []int // length R+1
	Col    []int
	Val    []float64
}

// NewCSR builds a CSR matrix from triplets. Duplicate entries are
// summed. Out-of-range indices cause an error.
func NewCSR(r, c int, trips []Triplet) (*CSR, error) {
	if r <= 0 || c <= 0 {
		return nil, fmt.Errorf("sparse: NewCSR(%d, %d): dimensions must be positive", r, c)
	}
	sorted := make([]Triplet, len(trips))
	copy(sorted, trips)
	for _, t := range sorted {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			return nil, fmt.Errorf("sparse: entry (%d, %d) out of range for %dx%d", t.Row, t.Col, r, c)
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{R: r, C: c, RowPtr: make([]int, r+1)}
	for k := 0; k < len(sorted); {
		t := sorted[k]
		v := t.Val
		k++
		for k < len(sorted) && sorted[k].Row == t.Row && sorted[k].Col == t.Col {
			v += sorted[k].Val
			k++
		}
		if v == 0 {
			continue
		}
		m.Col = append(m.Col, t.Col)
		m.Val = append(m.Val, v)
		m.RowPtr[t.Row+1]++
	}
	for i := 0; i < r; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m, nil
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVecTo computes dst = m·v in parallel over rows.
func (m *CSR) MulVecTo(dst, v []float64) {
	if len(v) != m.C || len(dst) != m.R {
		panic("sparse: CSR.MulVecTo dimension mismatch")
	}
	avg := 1
	if m.R > 0 {
		avg = len(m.Val)/m.R + 1
	}
	parallel.ForBlock(m.R, 4096/avg+1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				s += m.Val[k] * v[m.Col[k]]
			}
			dst[i] = s
		}
	})
}

// MulVec returns m·v.
func (m *CSR) MulVec(v []float64) []float64 {
	dst := make([]float64, m.R)
	m.MulVecTo(dst, v)
	return dst
}

// ToDense converts to a dense matrix.
func (m *CSR) ToDense() *matrix.Dense {
	d := matrix.New(m.R, m.C)
	for i := 0; i < m.R; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Data[i*m.C+m.Col[k]] += m.Val[k]
		}
	}
	return d
}

// FromDense converts a dense matrix to CSR, dropping entries with
// |v| <= dropTol.
func FromDense(d *matrix.Dense, dropTol float64) *CSR {
	m := &CSR{R: d.R, C: d.C, RowPtr: make([]int, d.R+1)}
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			v := d.At(i, j)
			if v > dropTol || v < -dropTol {
				m.Col = append(m.Col, j)
				m.Val = append(m.Val, v)
				m.RowPtr[i+1]++
			}
		}
	}
	for i := 0; i < d.R; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

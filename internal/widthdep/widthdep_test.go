package widthdep

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
)

func TestFeasibleIdentityInstance(t *testing.T) {
	// Aᵢ = I/2, OPT = 2. v = 1 is comfortably feasible, v = 4 is not.
	as := make([]*matrix.Dense, 3)
	for i := range as {
		id := matrix.Identity(3)
		matrix.Scale(id, 0.5, id)
		as[i] = id
	}
	fr, err := Feasible(as, 1, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Feasible {
		t.Fatalf("v=1 should be feasible (OPT=2): %+v", fr)
	}
	fr, err = Feasible(as, 4, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Feasible {
		t.Fatal("v=4 should be infeasible (OPT=2)")
	}
}

func TestFeasibleValidation(t *testing.T) {
	if _, err := Feasible(nil, 1, 0.1, 0); err == nil {
		t.Fatal("empty accepted")
	}
	as := []*matrix.Dense{matrix.Identity(2)}
	if _, err := Feasible(as, -1, 0.1, 0); err == nil {
		t.Fatal("negative v accepted")
	}
	if _, err := Feasible(as, 1, 0, 0); err == nil {
		t.Fatal("delta=0 accepted")
	}
}

func TestFeasibleWitnessVerifies(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	inst, err := gen.OrthogonalRankOne(3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Feasible(inst.A, inst.OPT*0.6, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Feasible {
		t.Fatalf("0.6·OPT should be feasible: λmax = %v", fr.LambdaMax)
	}
	if fr.LambdaMax > 1.2 {
		t.Fatalf("witness exceeds (1+δ): %v", fr.LambdaMax)
	}
	if math.Abs(matrix.VecSum(fr.X)-inst.OPT*0.6) > 1e-9 {
		t.Fatal("witness value wrong")
	}
}

func TestIterationsGrowWithWidth(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	itersAt := func(w float64) int {
		inst, err := gen.WidthFamily(4, 5, w, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Test a fixed mid-range value; iterations scale with ρ = v·maxλ.
		fr, err := Feasible(inst.A, 1, 0.3, 0)
		if err != nil {
			t.Fatal(err)
		}
		return fr.Iterations
	}
	i1, i16 := itersAt(1), itersAt(16)
	if i16 < 4*i1 {
		t.Fatalf("width dependence not visible: iters(w=1)=%d iters(w=16)=%d", i1, i16)
	}
}

func TestMaximizeMatchesKnownOPT(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	inst, err := gen.OrthogonalRankOne(3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Maximize(inst.A, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value > inst.OPT*(1+1e-9) {
		t.Fatalf("value %v exceeds OPT %v", sol.Value, inst.OPT)
	}
	if sol.Value < inst.OPT*0.6 {
		t.Fatalf("value %v too far below OPT %v", sol.Value, inst.OPT)
	}
}

func TestMaximizeValidation(t *testing.T) {
	if _, err := Maximize([]*matrix.Dense{matrix.Identity(2)}, 0, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := Maximize([]*matrix.Dense{matrix.New(2, 2)}, 0.2, 0); err == nil {
		t.Fatal("zero constraint accepted")
	}
}

// Package widthdep implements a width-DEPENDENT matrix multiplicative
// weights packing SDP solver in the style of Arora–Hazan–Kale
// [AHK05, AK07] — the family of algorithms the paper's introduction
// contrasts against. Its iteration count scales linearly with the
// width ρ = v·maxᵢ λ_max(Aᵢ) of the tested value v, whereas
// Algorithm 3.1's count is width-free; experiment E3 plots exactly this
// difference.
//
// The feasibility test solved per value v:
//
//	∃? x ≥ 0, 1ᵀx = v,  Σᵢ xᵢAᵢ ≼ (1+δ)·I .
//
// Each MMW round asks the trivial oracle for the best single
// coordinate i* = argminᵢ Aᵢ • P and plays the gain M = (v/ρ)·A_{i*}
// (so 0 ≼ M ≼ I). After T = ⌈9·ρ·ln(m)/δ²⌉ rounds the averaged play
// either certifies near-feasibility or some round found every
// coordinate violating, certifying infeasibility.
package widthdep

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/expm"
	"repro/internal/matrix"
)

// FeasibilityResult reports one run of the width-dependent MMW test.
type FeasibilityResult struct {
	// Feasible: an x with 1ᵀx = v and λ_max(Σ xᵢAᵢ) ≤ 1+δ was built
	// (verified); Infeasible: a density matrix P witnessed
	// minᵢ v·Aᵢ•P > 1, proving no x with 1ᵀx = v is feasible.
	Feasible bool
	// CertifiedInfeasible is true when a density-matrix witness proved
	// infeasibility; when both flags are false, the run merely failed to
	// certify feasibility within its budget (a borderline v).
	CertifiedInfeasible bool
	// X is the feasible witness (when Feasible).
	X []float64
	// LambdaMax is λ_max(Σ XᵢAᵢ) of the witness.
	LambdaMax float64
	// Iterations is the number of MMW rounds executed.
	Iterations int
	// Width is ρ = v·maxᵢ λ_max(Aᵢ), the quantity the paper's algorithm
	// avoids depending on.
	Width float64
}

// Feasible tests whether packing value v is achievable within (1+δ).
// as must be symmetric PSD matrices of equal dimension.
func Feasible(as []*matrix.Dense, v, delta float64, maxIter int) (*FeasibilityResult, error) {
	if len(as) == 0 {
		return nil, errors.New("widthdep: no constraints")
	}
	if v <= 0 || delta <= 0 || delta > 1 {
		return nil, fmt.Errorf("widthdep: invalid v=%v or delta=%v", v, delta)
	}
	m := as[0].R
	// Width: ρ = v·max λmax(Aᵢ).
	rho := 0.0
	for i, a := range as {
		lam, err := eigen.LambdaMax(a)
		if err != nil {
			return nil, fmt.Errorf("widthdep: constraint %d: %w", i, err)
		}
		if v*lam > rho {
			rho = v * lam
		}
	}
	if rho == 0 {
		return &FeasibilityResult{Feasible: true, X: uniformX(len(as), v)}, nil
	}

	eps0 := delta / 3
	if eps0 > 0.5 {
		eps0 = 0.5
	}
	iters := int(math.Ceil(6 * rho * math.Log(math.Max(float64(m), 2)) / (eps0 * delta)))
	if iters < 1 {
		iters = 1
	}
	if maxIter > 0 && iters > maxIter {
		iters = maxIter
	}

	sumM := matrix.New(m, m) // ε₀·Σₜ (v/ρ)·A_{iₜ}
	counts := make([]int, len(as))
	for t := 0; t < iters; t++ {
		// P = exp(ε₀ Σ M')/Tr — the MMW density concentrating on the
		// currently most loaded directions; the oracle then plays the
		// least loaded coordinate, and Theorem 2.1 bounds λ_max of the
		// average play.
		p, _, _, err := expm.NormalizedExpSym(sumM)
		if err != nil {
			return nil, err
		}
		// Oracle: coordinate with the smallest penalized load.
		best, arg := math.Inf(1), -1
		for i, a := range as {
			d := matrix.Dot(a, p)
			if d < best {
				best = d
				arg = i
			}
		}
		if v*best > 1 {
			// Every direction overloads P: for any x with 1ᵀx = v,
			// (Σ xᵢAᵢ)•P ≥ v·minᵢ Aᵢ•P > 1 = I•P, so Σ xᵢAᵢ ⋠ I.
			return &FeasibilityResult{CertifiedInfeasible: true, Iterations: t + 1, Width: rho}, nil
		}
		counts[arg]++
		matrix.AXPY(sumM, eps0*v/rho, as[arg])
	}

	// Averaged play.
	x := make([]float64, len(as))
	for i, c := range counts {
		x[i] = v * float64(c) / float64(iters)
	}
	psi := matrix.New(m, m)
	for i, a := range as {
		if x[i] != 0 {
			matrix.AXPY(psi, x[i], a)
		}
	}
	lam, err := eigen.LambdaMax(psi)
	if err != nil {
		return nil, err
	}
	return &FeasibilityResult{
		Feasible:   lam <= 1+delta,
		X:          x,
		LambdaMax:  lam,
		Iterations: iters,
		Width:      rho,
	}, nil
}

// Maximize binary-searches the largest v for which Feasible succeeds,
// returning the certified value and total iteration count — the
// width-dependent comparator for experiment E3/E11.
type Solution struct {
	Value           float64
	X               []float64
	TotalIterations int
	FeasCalls       int
	MaxWidth        float64
}

// Maximize approximates the packing optimum with the width-dependent
// solver. maxIterPerCall caps each feasibility run (0 = theory bound).
func Maximize(as []*matrix.Dense, eps float64, maxIterPerCall int) (*Solution, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("widthdep: eps = %v out of (0, 1)", eps)
	}
	// Trace-based initial bracket, as in the main solver.
	lo, hi := math.Inf(1), 0.0
	for _, a := range as {
		tr := a.Trace()
		if tr <= 0 {
			return nil, errors.New("widthdep: zero constraint; unbounded")
		}
		if 1/tr < lo {
			lo = 1 / tr
		}
		hi += float64(a.R) / tr
	}
	sol := &Solution{Value: lo}
	for call := 0; call < 60 && hi > (1+eps)*lo; call++ {
		v := math.Sqrt(lo * hi)
		fr, err := Feasible(as, v, eps/2, maxIterPerCall)
		if err != nil {
			return nil, err
		}
		sol.FeasCalls++
		sol.TotalIterations += fr.Iterations
		if fr.Width > sol.MaxWidth {
			sol.MaxWidth = fr.Width
		}
		// Borderline run (no certificate either way): retry once with a
		// larger budget before giving up on this v.
		if !fr.Feasible && !fr.CertifiedInfeasible {
			retryBudget := 4 * fr.Iterations
			if maxIterPerCall > 0 && retryBudget > maxIterPerCall {
				retryBudget = maxIterPerCall
			}
			fr2, err := Feasible(as, v, eps/2, retryBudget)
			if err != nil {
				return nil, err
			}
			sol.FeasCalls++
			sol.TotalIterations += fr2.Iterations
			fr = fr2
		}
		switch {
		case fr.Feasible:
			// Certified witness: x/λ_max is exactly feasible.
			scale := math.Max(fr.LambdaMax, 1)
			if val := v / scale; val > lo {
				lo = val
				sol.X = make([]float64, len(fr.X))
				matrix.VecScale(sol.X, 1/scale, fr.X)
				sol.Value = val
			} else {
				// No certified progress at this v; shave the top to
				// keep the search moving.
				hi = math.Min(hi, v*(1+eps))
			}
		case fr.CertifiedInfeasible:
			hi = v
		default:
			// Still borderline after retry: use the near-feasible
			// witness as a certified lower bound and treat v as an
			// effective upper bound for search purposes (the final
			// Value remains witness-certified either way).
			if fr.X != nil && fr.LambdaMax > 0 {
				if val := v / math.Max(fr.LambdaMax, 1); val > lo {
					lo = val
					sol.X = make([]float64, len(fr.X))
					matrix.VecScale(sol.X, 1/math.Max(fr.LambdaMax, 1), fr.X)
					sol.Value = val
				}
			}
			hi = v * (1 + eps/2)
		}
	}
	sol.Value = lo
	return sol, nil
}

func uniformX(n int, v float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = v / float64(n)
	}
	return x
}

package matrix

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func randDense(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func randSym(n int, rng *rand.Rand) *Dense {
	m := randDense(n, n, rng)
	m.Symmetrize()
	return m
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
	d := Diag([]float64{2, 3, 5})
	if d.Trace() != 10 {
		t.Fatalf("Diag trace = %v want 10", d.Trace())
	}
	if d.At(0, 1) != 0 || d.At(2, 2) != 5 {
		t.Fatal("Diag entries wrong")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows entries wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged FromRows did not panic")
			}
		}()
		FromRows([][]float64{{1, 2}, {3}})
	}()
}

func TestOuterProduct(t *testing.T) {
	v := []float64{1, 2, 3}
	m := OuterProduct(2, v)
	for i := range v {
		for j := range v {
			if got, want := m.At(i, j), 2*v[i]*v[j]; got != want {
				t.Fatalf("outer[%d][%d] = %v want %v", i, j, got, want)
			}
		}
	}
	if !m.IsSymmetric(0) {
		t.Fatal("outer product not symmetric")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m := randDense(4, 7, rng)
	mt := m.T()
	if mt.R != 7 || mt.C != 4 {
		t.Fatal("transpose shape wrong")
	}
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatal("transpose entry wrong")
			}
		}
	}
	if !ApproxEqual(mt.T(), m, 0) {
		t.Fatal("double transpose != original")
	}
}

func TestSymmetrize(t *testing.T) {
	m := FromRows([][]float64{{1, 4}, {0, 2}})
	m.Symmetrize()
	if m.At(0, 1) != 2 || m.At(1, 0) != 2 {
		t.Fatal("Symmetrize wrong")
	}
	if !m.IsSymmetric(0) {
		t.Fatal("not symmetric after Symmetrize")
	}
}

func TestIsSymmetric(t *testing.T) {
	if Identity(4).IsSymmetric(0) != true {
		t.Fatal("identity should be symmetric")
	}
	m := FromRows([][]float64{{1, 2}, {2.001, 1}})
	if m.IsSymmetric(1e-6) {
		t.Fatal("asymmetric matrix declared symmetric")
	}
	if !m.IsSymmetric(0.01) {
		t.Fatal("near-symmetric matrix rejected at loose tol")
	}
	rect := New(2, 3)
	if rect.IsSymmetric(1) {
		t.Fatal("rectangular matrix cannot be symmetric")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(2)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestTracePanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Trace of rectangular matrix did not panic")
		}
	}()
	New(2, 3).Trace()
}

func TestFrobNormAndMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, -4}})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-14 {
		t.Fatalf("FrobNorm = %v want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v want 4", got)
	}
}

func TestHasNaN(t *testing.T) {
	m := Identity(2)
	if m.HasNaN() {
		t.Fatal("identity has no NaN")
	}
	m.Set(0, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Set(0, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestString(t *testing.T) {
	s := Identity(2).String()
	if !strings.HasPrefix(s, "2x2[") {
		t.Fatalf("String() = %q", s)
	}
	big := New(20, 20)
	if !strings.Contains(big.String(), "...") {
		t.Fatal("large matrix String() should elide")
	}
}

func TestRowColAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatal("Row wrong")
	}
	c := m.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatal("Col wrong")
	}
	// Row aliases storage.
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row should alias")
	}
	// Col copies.
	c[0] = -1
	if m.At(0, 2) != 3 {
		t.Fatal("Col should copy")
	}
}

func TestCopyFrom(t *testing.T) {
	a := Identity(3)
	b := New(3, 3)
	b.CopyFrom(a)
	if !ApproxEqual(a, b, 0) {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched dims did not panic")
		}
	}()
	New(2, 2).CopyFrom(a)
}

func TestZero(t *testing.T) {
	m := Identity(3)
	m.Zero()
	if m.FrobNorm() != 0 {
		t.Fatal("Zero failed")
	}
}

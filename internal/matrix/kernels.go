package matrix

import (
	"repro/internal/parallel"
)

// Blocked symmetric and batched kernels. These are the dense hot paths
// of the solver: every Algorithm 3.1 iteration on the dense oracle is
// one spectral reconstruction (CongruenceDiag) plus n pointwise
// products (DotMany), and the Taylor path of Lemma 4.2 is a chain of
// symmetric multiplies (SymMulAB). All kernels fork via
// parallel.ForBlock with deterministic block decompositions, so results
// are bit-for-bit identical at any GOMAXPROCS.
//
// Every kernel has an *Into variant writing into caller-provided
// storage; the allocating form is a thin wrapper. Into variants first
// zero any rows they accumulate into, so a recycled workspace matrix
// behaves exactly like a fresh one. The hot loops live in plain
// top-level functions (closures optimize measurably worse), and each
// kernel branches to the sequential path before constructing its fork
// closure so steady-state small-size calls allocate nothing (see
// parallel.SerialBlock).

// SymMulAB returns a·b for square a, b whose product is known to be
// symmetric (e.g. commuting symmetric matrices, such as polynomials in
// a common matrix). Only the upper triangle is computed — roughly half
// the work of MulAB — and mirrored, so the result is exactly symmetric.
// Analytic cost: work R·K·C, depth O(log K).
func SymMulAB(a, b *Dense, st *parallel.Stats) *Dense {
	out := New(a.R, b.C)
	SymMulABInto(out, a, b, st)
	return out
}

// SymMulABInto computes out = a·b as SymMulAB, into out (zeroed first).
// out must not alias a or b.
func SymMulABInto(out, a, b *Dense, st *parallel.Stats) {
	if a.C != b.R || a.R != b.C || a.R != a.C {
		panic(dimErr("SymMulAB", a, b))
	}
	if out.R != a.R || out.C != b.C {
		panic(dimErr("SymMulABInto", out, a))
	}
	n := a.R
	grain := rowGrain(n*n/2 + 1)
	if parallel.SerialBlock(n, grain) {
		symMulRows(a.Data, b.Data, out.Data, n, 0, n)
	} else {
		parallel.ForBlock(n, grain, func(lo, hi int) {
			symMulRows(a.Data, b.Data, out.Data, n, lo, hi)
		})
	}
	mirrorUpper(out)
	st.Add(int64(n)*int64(n)*int64(n), parallel.Log2(n))
}

// symMulRows computes rows [lo, hi) of the upper triangle of a·b in
// 3-row register tiles (see tile.go). Each full tile accumulates the
// rectangle j ∈ [tile base, n) — up to two sub-diagonal entries per
// tile, which mirrorUpper overwrites — so the tile body stays
// rectangular. Remainder rows accumulate j ∈ [i, n) exactly as before.
func symMulRows(ad, bd, od []float64, n, lo, hi int) {
	i := lo
	for ; i+2 < hi; i += 3 {
		for r := i; r < i+3; r++ {
			seg := od[r*n+i : (r+1)*n]
			for j := range seg {
				seg[j] = 0
			}
		}
		axpyTiles(ad, bd, od, n, n, i, i+3, i, n)
	}
	for ; i < hi; i++ {
		seg := od[i*n+i : (i+1)*n]
		for j := range seg {
			seg[j] = 0
		}
		axpyTiles(ad, bd, od, n, n, i, i+1, i, n)
	}
}

// Gram returns q·qᵀ, the Gram matrix of the rows of q — the dense form
// of the paper's factored constraints Aᵢ = QᵢQᵢᵀ. Only the upper
// triangle is computed and mirrored. Analytic cost: work R²·C, depth
// O(log C).
func Gram(q *Dense, st *parallel.Stats) *Dense {
	out := New(q.R, q.R)
	GramInto(out, q, st)
	return out
}

// GramInto computes out = q·qᵀ into out. out must not alias q.
func GramInto(out, q *Dense, st *parallel.Stats) {
	n, k := q.R, q.C
	if out.R != n || out.C != n {
		panic(dimErr("GramInto", out, q))
	}
	grain := rowGrain(n*k/2 + 1)
	if parallel.SerialBlock(n, grain) {
		gramRows(q.Data, out.Data, n, k, 0, n)
	} else {
		parallel.ForBlock(n, grain, func(lo, hi int) {
			gramRows(q.Data, out.Data, n, k, lo, hi)
		})
	}
	mirrorUpper(out)
	st.Add(int64(n)*int64(n)*int64(k), parallel.Log2(k))
}

// gramRows computes rows [lo, hi) of the upper triangle of q·qᵀ in 2×4
// register tiles under an L2 row-panel sweep (see tile.go). Every entry
// is assigned (not accumulated), so dirty output storage is fine; full
// tiles assign the rectangle j ∈ [tile base, n), whose sub-diagonal
// entry mirrorUpper overwrites.
func gramRows(qd, od []float64, n, k, lo, hi int) {
	p := panelDim(k)
	for jb := 0; jb < n; jb += p {
		je := jb + p
		if je > n {
			je = n
		}
		i := lo
		for ; i+1 < hi; i += 2 {
			js := jb
			if i > js {
				js = i
			}
			if js < je {
				dotTiles(qd, qd, od, k, n, i, i+2, js, je)
			}
		}
		for ; i < hi; i++ {
			js := jb
			if i > js {
				js = i
			}
			if js < je {
				dotTiles(qd, qd, od, k, n, i, i+1, js, je)
			}
		}
	}
}

// CongruenceDiag returns v·diag(d)·vᵀ treating the rows of v as the
// congruence frame: out[i][j] = Σ_l v[i][l]·d[l]·v[j][l]. This is the
// spectral reconstruction V f(Λ) Vᵀ at the heart of the dense
// exponential oracle. Only the upper triangle is computed and mirrored.
// Analytic cost: work R²·C, depth O(log C).
func CongruenceDiag(v *Dense, d []float64, st *parallel.Stats) *Dense {
	out := New(v.R, v.R)
	CongruenceDiagInto(out, v, d, st)
	return out
}

// CongruenceDiagInto computes out = v·diag(d)·vᵀ into out. out must not
// alias v.
func CongruenceDiagInto(out, v *Dense, d []float64, st *parallel.Stats) {
	if v.C != len(d) {
		panic("matrix: CongruenceDiag dimension mismatch")
	}
	n, k := v.R, v.C
	if out.R != n || out.C != n {
		panic(dimErr("CongruenceDiagInto", out, v))
	}
	grain := rowGrain(n*k/2 + 1)
	if parallel.SerialBlock(n, grain) {
		congruenceRows(v.Data, d, out.Data, n, k, 0, n)
	} else {
		parallel.ForBlock(n, grain, func(lo, hi int) {
			congruenceRows(v.Data, d, out.Data, n, k, lo, hi)
		})
	}
	mirrorUpper(out)
	st.Add(int64(2)*int64(n)*int64(n)*int64(k), parallel.Log2(k))
}

// congruenceRows computes rows [lo, hi) of the upper triangle of
// v·diag(d)·vᵀ in 2×4 register tiles (see congruenceTiles); every term
// keeps the scalar loop's (v[i][l]·d[l])·v[j][l] association. Every
// entry is assigned, so dirty output is fine; full tiles assign the
// rectangle j ∈ [tile base, n), whose sub-diagonal entry mirrorUpper
// overwrites.
func congruenceRows(vd, d, od []float64, n, k, lo, hi int) {
	p := panelDim(k)
	for jb := 0; jb < n; jb += p {
		je := jb + p
		if je > n {
			je = n
		}
		i := lo
		for ; i+1 < hi; i += 2 {
			js := jb
			if i > js {
				js = i
			}
			if js < je {
				congruenceTiles(vd, d, od, k, n, i, i+2, js, je)
			}
		}
		for ; i < hi; i++ {
			js := jb
			if i > js {
				js = i
			}
			if js < je {
				congruenceTiles(vd, d, od, k, n, i, i+1, js, je)
			}
		}
	}
}

// DotMany computes out[i] = scale·(as[i] • p) for every i: the batched
// A•X inner products that turn one density matrix into all n constraint
// ratios. Each inner product is summed sequentially (so per-entry
// results are independent of the blocking), and the batch is blocked
// over constraints. Analytic cost: work 2·n·len(p), depth O(log n).
func DotMany(out []float64, as []*Dense, scale float64, p *Dense) {
	if len(out) != len(as) {
		panic("matrix: DotMany length mismatch")
	}
	sz := len(p.Data)
	// Validate before forking so a mismatch panics in the caller's
	// goroutine, not inside a spawned worker.
	for _, a := range as {
		if len(a.Data) != sz {
			panic(dimErr("DotMany", a, p))
		}
	}
	grain := rowGrain(sz)
	if parallel.SerialBlock(len(as), grain) {
		dotManyRows(out, as, scale, p, 0, len(as))
		return
	}
	parallel.ForBlock(len(as), grain, func(lo, hi int) {
		dotManyRows(out, as, scale, p, lo, hi)
	})
}

func dotManyRows(out []float64, as []*Dense, scale float64, p *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		a := as[i]
		var s float64
		for k, v := range a.Data {
			s += v * p.Data[k]
		}
		out[i] = scale * s
	}
}

// LinComb overwrites dst with Σᵢ coeffs[i]·mats[i], blocked over matrix
// entries. Every entry is accumulated over i in index order, so the
// result is deterministic at any GOMAXPROCS. Matrices with a zero
// coefficient are skipped. Analytic cost: work n·len(dst), depth
// O(log n).
func LinComb(dst *Dense, coeffs []float64, mats []*Dense) {
	if len(coeffs) != len(mats) {
		panic("matrix: LinComb length mismatch")
	}
	sz := len(dst.Data)
	for _, m := range mats {
		if len(m.Data) != sz || m.R != dst.R {
			panic(dimErr("LinComb", dst, m))
		}
	}
	if parallel.SerialBlock(sz, 2048) {
		linCombSeg(dst, coeffs, mats, 0, sz)
		return
	}
	parallel.ForBlock(sz, 2048, func(lo, hi int) {
		linCombSeg(dst, coeffs, mats, lo, hi)
	})
}

func linCombSeg(dst *Dense, coeffs []float64, mats []*Dense, lo, hi int) {
	seg := dst.Data[lo:hi]
	for k := range seg {
		seg[k] = 0
	}
	for i, m := range mats {
		c := coeffs[i]
		if c == 0 {
			continue
		}
		src := m.Data[lo:hi]
		for k, v := range src {
			seg[k] += c * v
		}
	}
}

// mirrorUpper copies the strictly upper triangle of the square matrix m
// onto the strictly lower triangle, in parallel over rows.
func mirrorUpper(m *Dense) {
	n := m.R
	grain := rowGrain(n/2 + 1)
	if parallel.SerialBlock(n, grain) {
		mirrorRows(m.Data, n, 0, n)
		return
	}
	parallel.ForBlock(n, grain, func(lo, hi int) {
		mirrorRows(m.Data, n, lo, hi)
	})
}

func mirrorRows(md []float64, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := i + 1; j < n; j++ {
			md[j*n+i] = md[i*n+j]
		}
	}
}

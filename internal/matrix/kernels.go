package matrix

import (
	"repro/internal/parallel"
)

// Blocked symmetric and batched kernels. These are the dense hot paths
// of the solver: every Algorithm 3.1 iteration on the dense oracle is
// one spectral reconstruction (CongruenceDiag) plus n pointwise
// products (DotMany), and the Taylor path of Lemma 4.2 is a chain of
// symmetric multiplies (SymMulAB). All kernels fork via
// parallel.ForBlock with deterministic block decompositions, so results
// are bit-for-bit identical at any GOMAXPROCS.

// SymMulAB returns a·b for square a, b whose product is known to be
// symmetric (e.g. commuting symmetric matrices, such as polynomials in
// a common matrix). Only the upper triangle is computed — roughly half
// the work of MulAB — and mirrored, so the result is exactly symmetric.
// Analytic cost: work R·K·C, depth O(log K).
func SymMulAB(a, b *Dense, st *parallel.Stats) *Dense {
	if a.C != b.R || a.R != b.C || a.R != a.C {
		panic(dimErr("SymMulAB", a, b))
	}
	n := a.R
	out := New(n, n)
	parallel.ForBlock(n, rowGrain(n*n/2+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*n : (i+1)*n]
			orow := out.Data[i*n : (i+1)*n]
			for l, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[l*n+i : (l+1)*n]
				for jo, bv := range brow {
					orow[i+jo] += av * bv
				}
			}
		}
	})
	mirrorUpper(out)
	st.Add(int64(n)*int64(n)*int64(n), parallel.Log2(n))
	return out
}

// Gram returns q·qᵀ, the Gram matrix of the rows of q — the dense form
// of the paper's factored constraints Aᵢ = QᵢQᵢᵀ. Only the upper
// triangle is computed and mirrored. Analytic cost: work R²·C, depth
// O(log C).
func Gram(q *Dense, st *parallel.Stats) *Dense {
	n, k := q.R, q.C
	out := New(n, n)
	parallel.ForBlock(n, rowGrain(n*k/2+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			qi := q.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				qj := q.Data[j*k : (j+1)*k]
				var s float64
				for l, v := range qi {
					s += v * qj[l]
				}
				orow[j] = s
			}
		}
	})
	mirrorUpper(out)
	st.Add(int64(n)*int64(n)*int64(k), parallel.Log2(k))
	return out
}

// CongruenceDiag returns v·diag(d)·vᵀ treating the rows of v as the
// congruence frame: out[i][j] = Σ_l v[i][l]·d[l]·v[j][l]. This is the
// spectral reconstruction V f(Λ) Vᵀ at the heart of the dense
// exponential oracle. Only the upper triangle is computed and mirrored.
// Analytic cost: work R²·C, depth O(log C).
func CongruenceDiag(v *Dense, d []float64, st *parallel.Stats) *Dense {
	if v.C != len(d) {
		panic("matrix: CongruenceDiag dimension mismatch")
	}
	n, k := v.R, v.C
	out := New(n, n)
	parallel.ForBlock(n, rowGrain(n*k/2+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vi := v.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := i; j < n; j++ {
				vj := v.Data[j*k : (j+1)*k]
				var s float64
				for l, vv := range vi {
					s += vv * d[l] * vj[l]
				}
				orow[j] = s
			}
		}
	})
	mirrorUpper(out)
	st.Add(int64(2)*int64(n)*int64(n)*int64(k), parallel.Log2(k))
	return out
}

// DotMany computes out[i] = scale·(as[i] • p) for every i: the batched
// A•X inner products that turn one density matrix into all n constraint
// ratios. Each inner product is summed sequentially (so per-entry
// results are independent of the blocking), and the batch is blocked
// over constraints. Analytic cost: work 2·n·len(p), depth O(log n).
func DotMany(out []float64, as []*Dense, scale float64, p *Dense) {
	if len(out) != len(as) {
		panic("matrix: DotMany length mismatch")
	}
	sz := len(p.Data)
	// Validate before forking so a mismatch panics in the caller's
	// goroutine, not inside a spawned worker.
	for _, a := range as {
		if len(a.Data) != sz {
			panic(dimErr("DotMany", a, p))
		}
	}
	parallel.ForBlock(len(as), rowGrain(sz), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := as[i]
			var s float64
			for k, v := range a.Data {
				s += v * p.Data[k]
			}
			out[i] = scale * s
		}
	})
}

// LinComb overwrites dst with Σᵢ coeffs[i]·mats[i], blocked over matrix
// entries. Every entry is accumulated over i in index order, so the
// result is deterministic at any GOMAXPROCS. Matrices with a zero
// coefficient are skipped. Analytic cost: work n·len(dst), depth
// O(log n).
func LinComb(dst *Dense, coeffs []float64, mats []*Dense) {
	if len(coeffs) != len(mats) {
		panic("matrix: LinComb length mismatch")
	}
	sz := len(dst.Data)
	for _, m := range mats {
		if len(m.Data) != sz || m.R != dst.R {
			panic(dimErr("LinComb", dst, m))
		}
	}
	parallel.ForBlock(sz, 2048, func(lo, hi int) {
		seg := dst.Data[lo:hi]
		for k := range seg {
			seg[k] = 0
		}
		for i, m := range mats {
			c := coeffs[i]
			if c == 0 {
				continue
			}
			src := m.Data[lo:hi]
			for k, v := range src {
				seg[k] += c * v
			}
		}
	})
}

// mirrorUpper copies the strictly upper triangle of the square matrix m
// onto the strictly lower triangle, in parallel over rows.
func mirrorUpper(m *Dense) {
	n := m.R
	parallel.ForBlock(n, rowGrain(n/2+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				m.Data[j*n+i] = m.Data[i*n+j]
			}
		}
	})
}

package matrix

import (
	"math"

	"repro/internal/parallel"
)

// Vector helpers. Vectors are plain []float64; these functions implement
// the handful of BLAS-1 style operations the solver needs, with the same
// deterministic parallel reductions as the matrix kernels.

// VecClone returns a copy of v.
func VecClone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Ones returns the all-ones vector of length n.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Basis returns the i-th standard basis vector of length n.
func Basis(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// VecAdd computes dst = a + b elementwise.
func VecAdd(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// VecScale computes dst = s·a.
func VecScale(dst []float64, s float64, a []float64) {
	for i := range dst {
		dst[i] = s * a[i]
	}
}

// VecAXPY computes dst += s·x.
func VecAXPY(dst []float64, s float64, x []float64) {
	for i := range dst {
		dst[i] += s * x[i]
	}
}

// VecDot returns Σ aᵢbᵢ with a deterministic block reduction.
func VecDot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: VecDot length mismatch")
	}
	return parallel.SumBlocks(len(a), 4096, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}

// VecSum returns Σ aᵢ.
func VecSum(a []float64) float64 {
	return parallel.SumBlocks(len(a), 4096, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		return s
	})
}

// VecNorm2 returns the Euclidean norm.
func VecNorm2(a []float64) float64 {
	return math.Sqrt(VecDot(a, a))
}

// VecNorm1 returns Σ |aᵢ|.
func VecNorm1(a []float64) float64 {
	return parallel.SumBlocks(len(a), 4096, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += math.Abs(a[i])
		}
		return s
	})
}

// VecMax returns the maximum entry; it panics on empty input.
func VecMax(a []float64) float64 {
	if len(a) == 0 {
		panic("matrix: VecMax of empty vector")
	}
	return parallel.MaxFloat(len(a), func(i int) float64 { return a[i] })
}

// VecMin returns the minimum entry; it panics on empty input.
func VecMin(a []float64) float64 {
	if len(a) == 0 {
		panic("matrix: VecMin of empty vector")
	}
	return -parallel.MaxFloat(len(a), func(i int) float64 { return -a[i] })
}

// Normalize scales v to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := VecNorm2(v)
	if n == 0 {
		return 0
	}
	VecScale(v, 1/n, v)
	return n
}

package matrix

import (
	"math"

	"repro/internal/parallel"
)

// Vector helpers. Vectors are plain []float64; these functions implement
// the handful of BLAS-1 style operations the solver needs, with the same
// deterministic parallel reductions as the matrix kernels. Like the
// matrix kernels, each branches to a plain loop before building a fork
// closure: reductions only take the shortcut when the deterministic
// block tree has a single block, so results stay bit-for-bit identical.

// VecClone returns a copy of v.
func VecClone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Ones returns the all-ones vector of length n.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Basis returns the i-th standard basis vector of length n.
func Basis(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// BasisInto overwrites v with the i-th standard basis vector.
func BasisInto(v []float64, i int) {
	for j := range v {
		v[j] = 0
	}
	v[i] = 1
}

// VecAdd computes dst = a + b elementwise.
func VecAdd(dst, a, b []float64) {
	if parallel.SerialBlock(len(dst), 4096) {
		for i := range dst {
			dst[i] = a[i] + b[i]
		}
		return
	}
	parallel.ForBlock(len(dst), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a[i] + b[i]
		}
	})
}

// VecScale computes dst = s·a.
func VecScale(dst []float64, s float64, a []float64) {
	if parallel.SerialBlock(len(dst), 4096) {
		for i := range dst {
			dst[i] = s * a[i]
		}
		return
	}
	parallel.ForBlock(len(dst), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = s * a[i]
		}
	})
}

// VecAXPY computes dst += s·x.
func VecAXPY(dst []float64, s float64, x []float64) {
	if parallel.SerialBlock(len(dst), 4096) {
		for i := range dst {
			dst[i] += s * x[i]
		}
		return
	}
	parallel.ForBlock(len(dst), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += s * x[i]
		}
	})
}

// VecLinComb computes dst += Σ_u coeffs[u]·vs[u] in one blocked pass:
// each dst entry is accumulated over u in index order, so the result is
// deterministic at any GOMAXPROCS. This is the batched update of
// classical Gram–Schmidt reorthogonalization (Lanczos), replacing
// len(vs) sequential AXPY sweeps with a single parallel one.
func VecLinComb(dst []float64, coeffs []float64, vs [][]float64) {
	if len(coeffs) != len(vs) {
		panic("matrix: VecLinComb length mismatch")
	}
	n := len(dst)
	for _, v := range vs {
		if len(v) != n {
			panic("matrix: VecLinComb vector length mismatch")
		}
	}
	grain := 2048/(len(vs)+1) + 1
	if parallel.SerialBlock(n, grain) {
		vecLinCombSeg(dst, coeffs, vs, 0, n)
		return
	}
	parallel.ForBlock(n, grain, func(lo, hi int) {
		vecLinCombSeg(dst, coeffs, vs, lo, hi)
	})
}

func vecLinCombSeg(dst, coeffs []float64, vs [][]float64, lo, hi int) {
	for u, v := range vs {
		c := coeffs[u]
		if c == 0 {
			continue
		}
		for i := lo; i < hi; i++ {
			dst[i] += c * v[i]
		}
	}
}

// VecDot returns Σ aᵢbᵢ with a deterministic block reduction.
func VecDot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: VecDot length mismatch")
	}
	if parallel.OneBlock(len(a), 4096) {
		return dotSeg(a, b, 0, len(a))
	}
	return parallel.SumBlocks(len(a), 4096, func(lo, hi int) float64 {
		return dotSeg(a, b, lo, hi)
	})
}

func dotSeg(a, b []float64, lo, hi int) float64 {
	// Reslicing lets the compiler elide per-element bounds checks.
	as, bs := a[lo:hi], b[lo:hi]
	var s float64
	for i, v := range as {
		s += v * bs[i]
	}
	return s
}

// VecMultiDot computes out[u] = VecDot(a, vs[u]) for every u in one
// fused pass: a is streamed once per block across four vs rows at a
// time, instead of once per dot. This is the projection half of the
// Lanczos CGS2 sweep (the update half is VecLinComb), where the same w
// is dotted against the whole Krylov basis. Every out[u] follows the
// exact block decomposition and combine order of a separate VecDot
// call, so results are bit-for-bit identical to the unfused loop.
func VecMultiDot(out, a []float64, vs [][]float64) {
	if len(out) != len(vs) {
		panic("matrix: VecMultiDot length mismatch")
	}
	n := len(a)
	for _, v := range vs {
		if len(v) != n {
			panic("matrix: VecMultiDot vector length mismatch")
		}
	}
	for u := range out {
		out[u] = 0
	}
	blocks := parallel.BlockCount(n, 4096)
	if blocks == 1 {
		// Block partials are never −0 (the accumulator starts at +0 and
		// x + (−x) rounds to +0), so accumulating one partial onto the
		// zeroed slot assigns it bitwise.
		multiDotSeg(out, a, vs, 0, n)
		return
	}
	if parallel.Workers() == 1 {
		// Replay VecDot's sequential block combine for every u at once:
		// same blocks, same ascending-order partial sums.
		for b := 0; b < blocks; b++ {
			multiDotSeg(out, a, vs, b*n/blocks, (b+1)*n/blocks)
		}
		return
	}
	// Forked path: each dot is its own deterministic reduction. The
	// fused replay would need a blocks×len(vs) partial buffer; the
	// per-dot form already forks and stays bit-identical.
	for u, v := range vs {
		out[u] = VecDot(a, v)
	}
}

// multiDotSeg adds the partial dots of a[lo:hi] against every vs row
// onto out, four rows per pass over a. Each row's partial is a single
// accumulator over l ascending, exactly as dotSeg computes it, and is
// added onto out[u] exactly as SumBlocks adds block partials.
func multiDotSeg(out, a []float64, vs [][]float64, lo, hi int) {
	as := a[lo:hi]
	u := 0
	for ; u+3 < len(vs); u += 4 {
		b0 := vs[u][lo:hi][:len(as)]
		b1 := vs[u+1][lo:hi][:len(as)]
		b2 := vs[u+2][lo:hi][:len(as)]
		b3 := vs[u+3][lo:hi][:len(as)]
		var s0, s1, s2, s3 float64
		for l, av := range as {
			s0 += av * b0[l]
			s1 += av * b1[l]
			s2 += av * b2[l]
			s3 += av * b3[l]
		}
		out[u] += s0
		out[u+1] += s1
		out[u+2] += s2
		out[u+3] += s3
	}
	for ; u < len(vs); u++ {
		bs := vs[u][lo:hi][:len(as)]
		var s float64
		for l, av := range as {
			s += av * bs[l]
		}
		out[u] += s
	}
}

// VecSum returns Σ aᵢ.
func VecSum(a []float64) float64 {
	if parallel.OneBlock(len(a), 4096) {
		return sumSeg(a, 0, len(a))
	}
	return parallel.SumBlocks(len(a), 4096, func(lo, hi int) float64 {
		return sumSeg(a, lo, hi)
	})
}

func sumSeg(a []float64, lo, hi int) float64 {
	var s float64
	for _, v := range a[lo:hi] {
		s += v
	}
	return s
}

// VecNorm2 returns the Euclidean norm.
func VecNorm2(a []float64) float64 {
	return math.Sqrt(VecDot(a, a))
}

// VecNorm1 returns Σ |aᵢ|.
func VecNorm1(a []float64) float64 {
	if parallel.OneBlock(len(a), 4096) {
		return norm1Seg(a, 0, len(a))
	}
	return parallel.SumBlocks(len(a), 4096, func(lo, hi int) float64 {
		return norm1Seg(a, lo, hi)
	})
}

func norm1Seg(a []float64, lo, hi int) float64 {
	var s float64
	for _, v := range a[lo:hi] {
		s += math.Abs(v)
	}
	return s
}

// VecMax returns the maximum entry; it panics on empty input.
func VecMax(a []float64) float64 {
	if len(a) == 0 {
		panic("matrix: VecMax of empty vector")
	}
	if parallel.OneBlock(len(a), 0) {
		m := a[0]
		for _, v := range a[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	return parallel.MaxFloat(len(a), func(i int) float64 { return a[i] })
}

// VecMin returns the minimum entry; it panics on empty input.
func VecMin(a []float64) float64 {
	if len(a) == 0 {
		panic("matrix: VecMin of empty vector")
	}
	if parallel.OneBlock(len(a), 0) {
		m := a[0]
		for _, v := range a[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	return -parallel.MaxFloat(len(a), func(i int) float64 { return -a[i] })
}

// Normalize scales v to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := VecNorm2(v)
	if n == 0 {
		return 0
	}
	VecScale(v, 1/n, v)
	return n
}

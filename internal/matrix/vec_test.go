package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	dst := make([]float64, 3)
	VecAdd(dst, a, b)
	if dst[0] != 5 || dst[2] != 9 {
		t.Fatal("VecAdd wrong")
	}
	VecScale(dst, 2, a)
	if dst[1] != 4 {
		t.Fatal("VecScale wrong")
	}
	VecAXPY(dst, 1, a) // 3a
	if dst[2] != 9 {
		t.Fatal("VecAXPY wrong")
	}
	if got := VecDot(a, b); got != 32 {
		t.Fatalf("VecDot = %v want 32", got)
	}
	if got := VecSum(a); got != 6 {
		t.Fatalf("VecSum = %v want 6", got)
	}
	if got := VecNorm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("VecNorm2 = %v want 5", got)
	}
	if got := VecNorm1([]float64{-3, 4}); got != 7 {
		t.Fatalf("VecNorm1 = %v want 7", got)
	}
	if VecMax(a) != 3 || VecMin(a) != 1 {
		t.Fatal("VecMax/VecMin wrong")
	}
}

func TestVecMinNegatives(t *testing.T) {
	if got := VecMin([]float64{-2, -7, -1}); got != -7 {
		t.Fatalf("VecMin = %v want -7", got)
	}
}

func TestOnesBasisClone(t *testing.T) {
	o := Ones(4)
	if VecSum(o) != 4 {
		t.Fatal("Ones wrong")
	}
	e := Basis(4, 2)
	if e[2] != 1 || VecSum(e) != 1 {
		t.Fatal("Basis wrong")
	}
	c := VecClone(o)
	c[0] = 9
	if o[0] != 1 {
		t.Fatal("VecClone shares storage")
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if math.Abs(n-5) > 1e-15 || math.Abs(VecNorm2(v)-1) > 1e-15 {
		t.Fatal("Normalize wrong")
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VecDot length mismatch did not panic")
		}
	}()
	VecDot([]float64{1}, []float64{1, 2})
}

// Property: Cauchy–Schwarz |a·b| <= |a||b|.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, v := range append(VecClone(a), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological float inputs
			}
		}
		lhs := math.Abs(VecDot(a, b))
		rhs := VecNorm2(a) * VecNorm2(b)
		return lhs <= rhs*(1+1e-10)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

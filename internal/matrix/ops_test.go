package matrix

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAddSubScaleAXPY(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	sum := New(2, 2)
	Add(sum, a, b)
	if !ApproxEqual(sum, FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatal("Add wrong")
	}
	diff := New(2, 2)
	Sub(diff, b, a)
	if !ApproxEqual(diff, FromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Fatal("Sub wrong")
	}
	sc := New(2, 2)
	Scale(sc, 2, a)
	if !ApproxEqual(sc, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatal("Scale wrong")
	}
	AXPY(sc, -1, a) // sc = 2a - a = a
	if !ApproxEqual(sc, a, 0) {
		t.Fatal("AXPY wrong")
	}
}

func TestAddAliasing(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	Add(a, a, a)
	if !ApproxEqual(a, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatal("aliased Add wrong")
	}
}

func TestAddScaledIdentity(t *testing.T) {
	m := New(3, 3)
	AddScaledIdentity(m, 2.5)
	if !ApproxEqual(m, Diag([]float64{2.5, 2.5, 2.5}), 0) {
		t.Fatal("AddScaledIdentity wrong")
	}
}

func TestDotMatchesTraceForSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randSym(6, rng)
	b := randSym(6, rng)
	ab := MulAB(a, b, nil)
	if d, tr := Dot(a, b), ab.Trace(); math.Abs(d-tr) > 1e-10 {
		t.Fatalf("Dot=%v Tr[AB]=%v should agree for symmetric matrices", d, tr)
	}
}

func TestTraceProdGeneral(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randDense(5, 5, rng)
	b := randDense(5, 5, rng)
	want := MulAB(a, b, nil).Trace()
	if got := TraceProd(a, b); math.Abs(got-want) > 1e-10 {
		t.Fatalf("TraceProd=%v want %v", got, want)
	}
}

func TestMulABKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := MulAB(a, b, nil)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MulAB = %v want %v", got, want)
	}
}

func TestMulABRectangular(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}}) // 1x3
	b := FromRows([][]float64{{1}, {1}, {1}})
	got := MulAB(a, b, nil)
	if got.R != 1 || got.C != 1 || got.At(0, 0) != 3 {
		t.Fatalf("MulAB rectangular wrong: %v", got)
	}
}

func TestMulABTAndMulATBAgreeWithMulAB(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := randDense(4, 6, rng)
	b := randDense(5, 6, rng)
	got := MulABT(a, b, nil)
	want := MulAB(a, b.T(), nil)
	if !ApproxEqual(got, want, 1e-12) {
		t.Fatal("MulABT disagrees with MulAB(a, bᵀ)")
	}
	c := randDense(6, 3, rng)
	d := randDense(6, 5, rng)
	got2 := MulATB(c, d, nil)
	want2 := MulAB(c.T(), d, nil)
	if !ApproxEqual(got2, want2, 1e-12) {
		t.Fatal("MulATB disagrees with MulAB(cᵀ, d)")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v want %v", got, want)
		}
	}
}

func TestQuadForm(t *testing.T) {
	m := FromRows([][]float64{{2, 1}, {1, 3}})
	v := []float64{1, 2}
	// vᵀMv = 2 + 2 + 2 + 12 = 18
	if got := m.QuadForm(v); math.Abs(got-18) > 1e-14 {
		t.Fatalf("QuadForm = %v want 18", got)
	}
}

// Property: (AB)C == A(BC) for random small matrices.
func TestQuickMulAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		n := 1 + int(seed%6)
		a, b, c := randDense(n, n, rng), randDense(n, n, rng), randDense(n, n, rng)
		l := MulAB(MulAB(a, b, nil), c, nil)
		r := MulAB(a, MulAB(b, c, nil), nil)
		return ApproxEqual(l, r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(A, B) == Dot(B, A) and Dot is bilinear.
func TestQuickDotSymmetryBilinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 1 + int(seed%5)
		a, b, c := randDense(n, n, rng), randDense(n, n, rng), randDense(n, n, rng)
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-10 {
			return false
		}
		s := New(n, n)
		Add(s, b, c)
		return math.Abs(Dot(a, s)-(Dot(a, b)+Dot(a, c))) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulAB with bad dims did not panic")
		}
	}()
	MulAB(New(2, 3), New(2, 3), nil)
}

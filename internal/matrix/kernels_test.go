package matrix

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"
	"testing/quick"
)

// Property tests asserting the blocked-parallel kernels return results
// identical to straightforward sequential references. For elementwise
// and row-partitioned kernels the match is bitwise: every output entry
// is accumulated in exactly the same order as the naive loop, only the
// row/entry ranges are distributed. Reduction kernels (VecDot, Dot, …)
// use a fixed block tree, so they are instead asserted bitwise-stable
// across GOMAXPROCS and approximately equal to the naive sum.

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 40} }

func randDenseN(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMulAB is the textbook triple loop in ikj order, matching the
// accumulation order of the blocked kernel.
func naiveMulAB(a, b *Dense) *Dense {
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for l := 0; l < a.C; l++ {
			av := a.At(i, l)
			if av == 0 {
				continue
			}
			for j := 0; j < b.C; j++ {
				out.Data[i*b.C+j] += av * b.At(l, j)
			}
		}
	}
	return out
}

func bitwiseEqual(t *testing.T, got, want *Dense, name string) bool {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Errorf("%s: shape %dx%d, want %dx%d", name, got.R, got.C, want.R, want.C)
		return false
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Errorf("%s: entry %d = %v, want %v (bitwise)", name, i, got.Data[i], want.Data[i])
			return false
		}
	}
	return true
}

func TestQuickMulABMatchesNaiveBitwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xabc))
		r := 1 + int(seed%9)
		k := 1 + int((seed>>8)%9)
		c := 1 + int((seed>>16)%9)
		a := randDenseN(r, k, rng)
		b := randDenseN(k, c, rng)
		return bitwiseEqual(t, MulAB(a, b, nil), naiveMulAB(a, b), "MulAB")
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymMulABMatchesNaiveUpperBitwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xdef))
		n := 1 + int(seed%10)
		b := randDenseN(n, n, rng)
		b.Symmetrize()
		// b·b is symmetric, the kernel's contract.
		got := SymMulAB(b, b, nil)
		want := naiveMulAB(b, b)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					return false
				}
				// Lower triangle is mirrored, exactly.
				if math.Float64bits(got.At(j, i)) != math.Float64bits(got.At(i, j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGramMatchesNaiveBitwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x123))
		n := 1 + int(seed%10)
		k := 1 + int((seed>>8)%7)
		q := randDenseN(n, k, rng)
		got := Gram(q, nil)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var s float64
				for l := 0; l < k; l++ {
					s += q.At(i, l) * q.At(j, l)
				}
				if math.Float64bits(got.At(i, j)) != math.Float64bits(s) {
					return false
				}
				if math.Float64bits(got.At(j, i)) != math.Float64bits(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCongruenceDiagMatchesNaiveBitwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x456))
		n := 1 + int(seed%8)
		k := 1 + int((seed>>8)%8)
		v := randDenseN(n, k, rng)
		d := make([]float64, k)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		got := CongruenceDiag(v, d, nil)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var s float64
				for l := 0; l < k; l++ {
					s += v.At(i, l) * d[l] * v.At(j, l)
				}
				if math.Float64bits(got.At(i, j)) != math.Float64bits(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDotManyMatchesNaiveBitwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x789))
		n := 1 + int(seed%12)
		m := 1 + int((seed>>8)%6)
		as := make([]*Dense, n)
		for i := range as {
			as[i] = randDenseN(m, m, rng)
		}
		p := randDenseN(m, m, rng)
		scale := 1 + rng.Float64()
		got := make([]float64, n)
		DotMany(got, as, scale, p)
		for i := range as {
			var s float64
			for k := range as[i].Data {
				s += as[i].Data[k] * p.Data[k]
			}
			if math.Float64bits(got[i]) != math.Float64bits(scale*s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLinCombMatchesNaiveBitwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xaaa))
		n := 1 + int(seed%8)
		m := 1 + int((seed>>8)%6)
		mats := make([]*Dense, n)
		coeffs := make([]float64, n)
		for i := range mats {
			mats[i] = randDenseN(m, m, rng)
			coeffs[i] = rng.NormFloat64()
		}
		if n > 2 {
			coeffs[1] = 0 // exercise the zero-coefficient skip
		}
		got := New(m, m)
		LinComb(got, coeffs, mats)
		want := New(m, m)
		for i, mat := range mats {
			if coeffs[i] == 0 {
				continue
			}
			for k, v := range mat.Data {
				want.Data[k] += coeffs[i] * v
			}
		}
		return bitwiseEqual(t, got, want, "LinComb")
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVecKernelsMatchNaiveBitwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xbbb))
		n := 1 + int(seed%2000)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		s := rng.NormFloat64()

		sum := make([]float64, n)
		VecAdd(sum, a, b)
		sc := make([]float64, n)
		VecScale(sc, s, a)
		ax := append([]float64(nil), b...)
		VecAXPY(ax, s, a)
		lc := append([]float64(nil), b...)
		VecLinComb(lc, []float64{s, 2 * s}, [][]float64{a, b})
		for i := range a {
			if math.Float64bits(sum[i]) != math.Float64bits(a[i]+b[i]) {
				return false
			}
			if math.Float64bits(sc[i]) != math.Float64bits(s*a[i]) {
				return false
			}
			if math.Float64bits(ax[i]) != math.Float64bits(b[i]+s*a[i]) {
				return false
			}
			if math.Float64bits(lc[i]) != math.Float64bits(b[i]+s*a[i]+2*s*b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Reductions use a fixed block tree: the result is asserted bitwise
// identical across GOMAXPROCS settings and approximately equal to the
// plain left-to-right sum.
func TestQuickReductionsStableAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xccc))
		n := 1 + int(seed%50000)
		a := make([]float64, n)
		b := make([]float64, n)
		var naive float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			naive += a[i] * b[i]
		}
		runtime.GOMAXPROCS(1)
		d1 := VecDot(a, b)
		s1 := VecSum(a)
		m1 := VecMax(a)
		runtime.GOMAXPROCS(8)
		d8 := VecDot(a, b)
		s8 := VecSum(a)
		m8 := VecMax(a)
		runtime.GOMAXPROCS(orig)
		if math.Float64bits(d1) != math.Float64bits(d8) ||
			math.Float64bits(s1) != math.Float64bits(s8) ||
			math.Float64bits(m1) != math.Float64bits(m8) {
			return false
		}
		return math.Abs(d1-naive) <= 1e-9*(1+math.Abs(naive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// adversarialSizes exercises every edge of the register-tiled kernels:
// sizes below one tile (1, 2), exactly the 3-row axpy tile and the 2×4
// dot tile (2, 3, 4), one past each (5), and two primes (127, 257) that
// are non-multiples of every tile, row-panel, and k-chunk dimension, so
// every remainder path runs with nontrivial extents.
var adversarialSizes = []int{1, 2, 3, 4, 5, 127, 257}

// sprinkleZeros plants exact zeros so the scalar references' zero-skip
// paths diverge structurally from the tiles' unconditional accumulation
// — the ±0 equivalence documented in tile.go is what keeps the results
// bitwise identical anyway.
func sprinkleZeros(m *Dense, rng *rand.Rand) {
	for i := range m.Data {
		if rng.IntN(5) == 0 {
			m.Data[i] = 0
		}
	}
}

// Every tiled kernel, at every adversarial size, must match its scalar
// reference bitwise — and produce identical bits at GOMAXPROCS 1 and 8.
func TestTiledKernelsAdversarialSizesBitwise(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, n := range adversarialSizes {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(n), 0x711e))
			a := randDenseN(n, n, rng)
			b := randDenseN(n, n, rng)
			sprinkleZeros(a, rng)
			sprinkleZeros(b, rng)
			sym := randDenseN(n, n, rng)
			sym.Symmetrize()
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.NormFloat64()
			}

			wantAB := naiveMulAB(a, b)
			wantABT := New(n, n)
			wantGram := New(n, n)
			wantCong := New(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var sT, sG float64
					for l := 0; l < n; l++ {
						sT += a.Data[i*n+l] * b.Data[j*n+l]
						sG += a.Data[i*n+l] * a.Data[j*n+l]
					}
					wantABT.Data[i*n+j] = sT
					wantGram.Data[i*n+j] = sG
				}
				// CongruenceDiag computes the upper triangle and mirrors it;
				// the (v[i][l]·d[l])·v[j][l] association is not symmetric in
				// (i, j), so the reference must mirror too.
				for j := i; j < n; j++ {
					var sC float64
					for l := 0; l < n; l++ {
						sC += a.Data[i*n+l] * d[l] * a.Data[j*n+l]
					}
					wantCong.Data[i*n+j] = sC
				}
			}
			mirrorUpper(wantCong)
			wantSym := naiveMulAB(sym, sym)
			mirrorUpper(wantSym)

			check := func(procs int) {
				runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(orig)
				tag := fmt.Sprintf("@GOMAXPROCS=%d n=%d", procs, n)
				bitwiseEqual(t, MulAB(a, b, nil), wantAB, "MulAB"+tag)
				bitwiseEqual(t, MulABT(a, b, nil), wantABT, "MulABT"+tag)
				bitwiseEqual(t, Gram(a, nil), wantGram, "Gram"+tag)
				bitwiseEqual(t, CongruenceDiag(a, d, nil), wantCong, "CongruenceDiag"+tag)
				bitwiseEqual(t, SymMulAB(sym, sym, nil), wantSym, "SymMulAB"+tag)
			}
			check(1)
			check(8)
		})
	}
}

// VecMultiDot must return exactly the bits of per-row VecDot calls, in
// every regime: single block, the sequential multi-block replay at
// GOMAXPROCS=1, and the forked path — with row counts covering the
// 4-row fused groups and their remainders.
func TestVecMultiDotMatchesVecDotBitwise(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	rng := rand.New(rand.NewPCG(77, 0xd07))
	for _, n := range []int{1, 3, 4095, 4096, 4097, 50000} {
		for _, rows := range []int{1, 3, 4, 7} {
			a := make([]float64, n)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			vs := make([][]float64, rows)
			for u := range vs {
				vs[u] = make([]float64, n)
				for i := range vs[u] {
					vs[u][i] = rng.NormFloat64()
				}
			}
			got1 := make([]float64, rows)
			got8 := make([]float64, rows)
			runtime.GOMAXPROCS(1)
			VecMultiDot(got1, a, vs)
			runtime.GOMAXPROCS(8)
			VecMultiDot(got8, a, vs)
			runtime.GOMAXPROCS(orig)
			for u := range vs {
				want := VecDot(a, vs[u])
				if math.Float64bits(got1[u]) != math.Float64bits(want) ||
					math.Float64bits(got8[u]) != math.Float64bits(want) {
					t.Errorf("VecMultiDot n=%d rows=%d u=%d: got %v/%v, want %v (bitwise)",
						n, rows, u, got1[u], got8[u], want)
				}
			}
		}
	}
}

// Matrix kernels are bitwise stable across GOMAXPROCS (the blocked
// partitions change with worker count, but per-entry accumulation
// order does not).
func TestKernelsStableAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	rng := rand.New(rand.NewPCG(42, 43))
	n := 96
	a := randDenseN(n, n, rng)
	b := randDenseN(n, n, rng)
	a.Symmetrize()

	runtime.GOMAXPROCS(1)
	p1 := MulAB(a, b, nil)
	g1 := Gram(a, nil)
	s1 := SymMulAB(a, a, nil)
	runtime.GOMAXPROCS(8)
	p8 := MulAB(a, b, nil)
	g8 := Gram(a, nil)
	s8 := SymMulAB(a, a, nil)
	runtime.GOMAXPROCS(orig)

	bitwiseEqual(t, p8, p1, "MulAB across GOMAXPROCS")
	bitwiseEqual(t, g8, g1, "Gram across GOMAXPROCS")
	bitwiseEqual(t, s8, s1, "SymMulAB across GOMAXPROCS")
}

package matrix

// Register-tiled inner kernels. The dense matmul-family kernels
// (MulAB, SymMulAB, Gram, CongruenceDiag, MulABT) all bottom out in the
// tile primitives below:
//
//   - axpyTiles: 3-row output tiles for axpy-style products (out rows
//     accumulate scaled b rows). Each streamed b row feeds three output
//     rows, cutting b traffic 3× versus the scalar loop and giving
//     three independent accumulation chains per column. Three rows, not
//     four: the inner loop keeps 3 coefficients + 3 output cursors +
//     the b row live, which still register-allocates cleanly; the
//     4-row variant measured 15–25% slower at n ∈ {256, 512, 1024}.
//   - dotTiles: 2×4 output tiles for dot-style products (both operands
//     traversed row-major along k). Eight independent accumulators plus
//     six streamed values fit the 16 float registers of amd64/arm64 and
//     break the single-accumulator add-latency chain that bounds a
//     scalar dot; a 4×4 variant (16 accumulators + 8 streamed values)
//     spilled accumulators to the stack every iteration and measured
//     slower than the scalar loop at small k.
//
// Above the tiles sits a cache-blocking layer:
//
//   - axpy callers run through axpyTiles' k-chunk loop: b is processed
//     in row chunks of ~2 MiB so a chunk stays L2-resident across the
//     output row tiles of the caller's block. Chunking k keeps every b
//     row streamed fully and sequentially — an earlier column-panel
//     variant defeated hardware prefetch (8 KiB strides between
//     consecutive reads) and measured 20% slower at n = 1024.
//   - dot callers sweep the second operand in row panels of ~1 MiB
//     (panelDim): a panel loaded once stays resident while every row
//     tile of the caller's block crosses it, and each panel row is
//     still read fully and sequentially.
//
// Determinism contract: tiles and chunks partition the i×j output space
// and, for the k-chunk layer, the position of the *single* running
// accumulator along k — never the reduction tree. The k-sum for every
// output element runs over l = 0..k−1 in ascending order with one
// accumulator (the output slot itself for axpy, one register for dot),
// exactly as in the scalar loops, so results are bit-for-bit identical
// to the untiled kernels at any GOMAXPROCS. The tiles do accumulate the
// a[i][l] == 0 terms the scalar loops skip, which is also exact: a
// skipped term contributes ±0, the accumulator starts at +0 and can
// never become −0 under round-to-nearest (x + (−x) rounds to +0), and
// adding ±0 to any finite float64 leaves it bitwise unchanged.

// panelDim returns the row-panel height of the streamed operand for
// dot-style kernels with inner dimension k: the panel·k slab is sized
// to ~1 MiB so it stays L2-resident while a block of output row tiles
// crosses it, clamped so the tile loops stay long enough to amortize
// their setup. Depends only on k, never on GOMAXPROCS.
func panelDim(k int) int {
	if k <= 0 {
		return 512
	}
	p := (1 << 17) / k // 1 MiB of float64
	if p < 64 {
		p = 64
	}
	if p > 512 {
		p = 512
	}
	return p
}

// axpyKChunk returns the b-row chunk length for axpyTiles at row width
// c: ~2 MiB of b rows, never fewer than 256 so short chunks don't
// defeat the tile loop. Depends only on c.
func axpyKChunk(c int) int {
	if c <= 0 {
		return 256
	}
	kc := (1 << 18) / c // 2 MiB of float64
	if kc < 256 {
		kc = 256
	}
	return kc
}

// axpyTiles accumulates od[i][j] += Σ_l ad[i][l]·bd[l][j] for rows
// [lo, hi) and columns [jb, je), in 3-row register tiles with a 1-row
// edge fallback, chunking l so ~2 MiB of b rows stay L2-resident across
// the row tiles. ad has row stride k; bd and od have row stride c.
// Output rows must already hold their running value (callers zero them
// first); every element accumulates over l in ascending order.
func axpyTiles(ad, bd, od []float64, k, c, lo, hi, jb, je int) {
	if h := hookAxpyTiles; h != nil && h(ad, bd, od, k, c, lo, hi, jb, je) {
		return
	}
	kc := axpyKChunk(c)
	for lb := 0; lb < k; lb += kc {
		le := lb + kc
		if le > k {
			le = k
		}
		i := lo
		for ; i+2 < hi; i += 3 {
			a0 := ad[i*k : (i+1)*k]
			a1 := ad[(i+1)*k : (i+2)*k]
			a2 := ad[(i+2)*k : (i+3)*k]
			o0 := od[i*c+jb : i*c+je]
			o1 := od[(i+1)*c+jb : (i+1)*c+je][:len(o0)]
			o2 := od[(i+2)*c+jb : (i+2)*c+je][:len(o0)]
			for l := lb; l < le; l++ {
				av0, av1, av2 := a0[l], a1[l], a2[l]
				if av0 == 0 && av1 == 0 && av2 == 0 {
					continue
				}
				brow := bd[l*c+jb : l*c+je][:len(o0)]
				for j, bv := range brow {
					o0[j] += av0 * bv
					o1[j] += av1 * bv
					o2[j] += av2 * bv
				}
			}
		}
		for ; i < hi; i++ {
			arow := ad[i*k+lb : i*k+le]
			orow := od[i*c+jb : i*c+je]
			for lOff, av := range arow {
				if av == 0 {
					continue
				}
				l := lb + lOff
				brow := bd[l*c+jb : l*c+je][:len(orow)]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// dotTiles assigns od[ostride·i+j] = ad_row(i)·bd_row(j) for rows
// [lo, hi) and columns [jb, je), in 2×4 register tiles with 2×1 and
// 1-row edge fallbacks. Both operands have row stride k; od has row
// stride ostride. Every element is assigned (dirty output storage is
// fine) and its dot runs over l in ascending order.
func dotTiles(ad, bd, od []float64, k, ostride, lo, hi, jb, je int) {
	if h := hookDotTiles; h != nil && h(ad, bd, od, k, ostride, lo, hi, jb, je) {
		return
	}
	i := lo
	for ; i+1 < hi; i += 2 {
		a0 := ad[i*k : i*k+k]
		a1 := ad[(i+1)*k : (i+1)*k+k][:len(a0)]
		j := jb
		for ; j+3 < je; j += 4 {
			b0 := bd[j*k : j*k+k][:len(a0)]
			b1 := bd[(j+1)*k : (j+1)*k+k][:len(a0)]
			b2 := bd[(j+2)*k : (j+2)*k+k][:len(a0)]
			b3 := bd[(j+3)*k : (j+3)*k+k][:len(a0)]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for l, av0 := range a0 {
				av1 := a1[l]
				bv0, bv1, bv2, bv3 := b0[l], b1[l], b2[l], b3[l]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			od[i*ostride+j], od[i*ostride+j+1], od[i*ostride+j+2], od[i*ostride+j+3] = s00, s01, s02, s03
			od[(i+1)*ostride+j], od[(i+1)*ostride+j+1], od[(i+1)*ostride+j+2], od[(i+1)*ostride+j+3] = s10, s11, s12, s13
		}
		for ; j < je; j++ {
			brow := bd[j*k : j*k+k][:len(a0)]
			var s0, s1 float64
			for l, av0 := range a0 {
				bv := brow[l]
				s0 += av0 * bv
				s1 += a1[l] * bv
			}
			od[i*ostride+j] = s0
			od[(i+1)*ostride+j] = s1
		}
	}
	for ; i < hi; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*ostride+jb : i*ostride+je]
		for jo := range orow {
			brow := bd[(jb+jo)*k : (jb+jo)*k+k][:len(arow)]
			var s float64
			for l, av := range arow {
				s += av * brow[l]
			}
			orow[jo] = s
		}
	}
}

// congruenceTiles assigns od[ostride·i+j] = Σ_l vd_row(i)[l]·d[l]·
// vd_row(j)[l] for rows [lo, hi) and columns [jb, je), in 2×4 register
// tiles like dotTiles. The per-term association matches the scalar
// loop exactly: (v[i][l]·d[l])·v[j][l], with the row factor scaled
// first.
func congruenceTiles(vd, d, od []float64, k, ostride, lo, hi, jb, je int) {
	i := lo
	for ; i+1 < hi; i += 2 {
		a0 := vd[i*k : i*k+k]
		a1 := vd[(i+1)*k : (i+1)*k+k][:len(a0)]
		dl := d[:len(a0)]
		j := jb
		for ; j+3 < je; j += 4 {
			b0 := vd[j*k : j*k+k][:len(a0)]
			b1 := vd[(j+1)*k : (j+1)*k+k][:len(a0)]
			b2 := vd[(j+2)*k : (j+2)*k+k][:len(a0)]
			b3 := vd[(j+3)*k : (j+3)*k+k][:len(a0)]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			for l, av0 := range a0 {
				dv := dl[l]
				p0, p1 := av0*dv, a1[l]*dv
				bv0, bv1, bv2, bv3 := b0[l], b1[l], b2[l], b3[l]
				s00 += p0 * bv0
				s01 += p0 * bv1
				s02 += p0 * bv2
				s03 += p0 * bv3
				s10 += p1 * bv0
				s11 += p1 * bv1
				s12 += p1 * bv2
				s13 += p1 * bv3
			}
			od[i*ostride+j], od[i*ostride+j+1], od[i*ostride+j+2], od[i*ostride+j+3] = s00, s01, s02, s03
			od[(i+1)*ostride+j], od[(i+1)*ostride+j+1], od[(i+1)*ostride+j+2], od[(i+1)*ostride+j+3] = s10, s11, s12, s13
		}
		for ; j < je; j++ {
			brow := vd[j*k : j*k+k][:len(a0)]
			var s0, s1 float64
			for l, av0 := range a0 {
				dv := dl[l]
				bv := brow[l]
				s0 += (av0 * dv) * bv
				s1 += (a1[l] * dv) * bv
			}
			od[i*ostride+j] = s0
			od[(i+1)*ostride+j] = s1
		}
	}
	for ; i < hi; i++ {
		arow := vd[i*k : i*k+k]
		orow := od[i*ostride+jb : i*ostride+je]
		for jo := range orow {
			brow := vd[(jb+jo)*k : (jb+jo)*k+k][:len(arow)]
			var s float64
			for l, av := range arow {
				s += av * d[l] * brow[l]
			}
			orow[jo] = s
		}
	}
}

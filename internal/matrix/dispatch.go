package matrix

// CPU-dispatch seam for the register-tiled inner kernels.
//
// The pure-Go tiles in tile.go are the default implementation on every
// platform. A hand-vectorized backend (AVX2, NEON, …) lands behind this
// seam without touching any call site:
//
//  1. add the assembly plus a thin Go wrapper in a build-tagged file
//     (e.g. tile_avx2.go + tile_avx2.s, //go:build amd64 && psdpsimd);
//  2. in that file's init(), probe the CPU feature, then set
//     hookAxpyTiles / hookDotTiles and implName;
//  3. the hook returns true when it handled the range, false to fall
//     back (e.g. sizes below the vector width), and MUST preserve the
//     reduction contract documented in tile.go — per output element the
//     k-sum runs over l ascending with a single accumulator. A SIMD
//     backend therefore vectorizes across output elements (the i×j
//     tile), never across k, keeping results bit-for-bit identical.
//
// The golden-corpus guard test and the kernels_test.go equivalence suite
// run against whatever backend is active, so a reassociating backend
// cannot land silently.
var (
	implName = "go-tiled"

	hookAxpyTiles func(ad, bd, od []float64, k, c, lo, hi, jb, je int) bool
	hookDotTiles  func(ad, bd, od []float64, k, ostride, lo, hi, jb, je int) bool
)

// DispatchPath names the active inner-kernel implementation
// ("go-tiled" unless a build-tagged SIMD backend installed itself).
// Bench reports record it so cross-machine numbers are interpretable.
func DispatchPath() string { return implName }

// Package matrix implements the dense linear algebra substrate for the
// positive-SDP solver: row-major dense matrices, vectors, and the
// parallel kernels (multiply, add, pointwise dot, trace) that
// Algorithm 3.1 of Peng–Tangwongsan–Zhang builds on.
//
// All matrices are real float64. Symmetric positive semidefinite
// matrices are represented as ordinary Dense values; symmetry is a
// caller-maintained invariant checked by IsSymmetric where it matters.
package matrix

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/parallel"
)

// Dense is a row-major dense matrix.
type Dense struct {
	R, C int
	// Data holds the entries in row-major order: entry (i, j) is
	// Data[i*C+j]. len(Data) == R*C.
	Data []float64
}

// New returns a zero r-by-c matrix. It panics if r or c is not positive.
func New(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: New(%d, %d): dimensions must be positive", r, c))
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns the square diagonal matrix with the given diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		panic("matrix: FromRows: no rows")
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: FromRows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// OuterProduct returns v vᵀ scaled by s: the rank-one matrix s·vvᵀ.
func OuterProduct(s float64, v []float64) *Dense {
	n := len(v)
	m := New(n, n)
	parallel.ForBlock(n, rowGrain(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			si := s * v[i]
			row := m.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				row[j] = si * v[j]
			}
		}
	})
	return m
}

// At returns entry (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns entry (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.Data[i*m.C+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := &Dense{R: m.R, C: m.C, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// CopyFrom overwrites m with src. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.R != src.R || m.C != src.C {
		panic(dimErr("CopyFrom", m, src))
	}
	copy(m.Data, src.Data)
}

// Zero sets every entry to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.C, m.R)
	parallel.ForBlock(m.R, rowGrain(m.C), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.C : (i+1)*m.C]
			for j, v := range row {
				out.Data[j*m.R+i] = v
			}
		}
	})
	return out
}

// IsSquare reports whether the matrix is square.
func (m *Dense) IsSquare() bool { return m.R == m.C }

// IsSymmetric reports whether |m[i][j] − m[j][i]| <= tol for all i, j.
func (m *Dense) IsSymmetric(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.C; j++ {
			if math.Abs(m.Data[i*m.C+j]-m.Data[j*m.C+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize replaces m with (m + mᵀ)/2 in place. m must be square.
func (m *Dense) Symmetrize() {
	if !m.IsSquare() {
		panic("matrix: Symmetrize of non-square matrix")
	}
	n := m.R
	parallel.ForBlock(n, rowGrain(n/2+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
				m.Data[i*n+j] = v
				m.Data[j*n+i] = v
			}
		}
	})
}

// Trace returns the sum of diagonal entries. m must be square.
func (m *Dense) Trace() float64 {
	if !m.IsSquare() {
		panic("matrix: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.R; i++ {
		t += m.Data[i*m.C+i]
	}
	return t
}

// FrobNorm returns the Frobenius norm sqrt(Σ m[i][j]²).
func (m *Dense) FrobNorm() float64 {
	if parallel.OneBlock(len(m.Data), 0) {
		var s float64
		for _, v := range m.Data {
			s += v * v
		}
		return math.Sqrt(s)
	}
	s := parallel.SumFloat(len(m.Data), func(i int) float64 { return m.Data[i] * m.Data[i] })
	return math.Sqrt(s)
}

// MaxAbs returns max |m[i][j]|.
func (m *Dense) MaxAbs() float64 {
	if parallel.OneBlock(len(m.Data), 0) {
		mx := math.Abs(m.Data[0])
		for _, v := range m.Data[1:] {
			if av := math.Abs(v); av > mx {
				mx = av
			}
		}
		return mx
	}
	return parallel.MaxFloat(len(m.Data), func(i int) float64 { return math.Abs(m.Data[i]) })
}

// HasNaN reports whether any entry is NaN or infinite.
func (m *Dense) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// ApproxEqual reports whether a and b have the same shape and all
// entries differ by at most tol.
func ApproxEqual(a, b *Dense, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d[", m.R, m.C)
	maxR, maxC := m.R, m.C
	const lim = 8
	if maxR > lim {
		maxR = lim
	}
	if maxC > lim {
		maxC = lim
	}
	for i := 0; i < maxR; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < maxC; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.4g", m.At(i, j))
		}
		if maxC < m.C {
			sb.WriteString(" ...")
		}
	}
	if maxR < m.R {
		sb.WriteString("; ...")
	}
	sb.WriteString("]")
	return sb.String()
}

func dimErr(op string, a, b *Dense) string {
	return fmt.Sprintf("matrix: %s dimension mismatch: %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C)
}

package matrix

import (
	"repro/internal/parallel"
)

// Elementwise helpers branch to a plain loop before building their fork
// closure (see parallel.SerialBlock): small inputs and GOMAXPROCS=1
// then allocate nothing, and the computed values are identical because
// elementwise loops do not depend on the block decomposition.

// Add computes dst = a + b. dst may alias a or b.
func Add(dst, a, b *Dense) {
	if a.R != b.R || a.C != b.C || dst.R != a.R || dst.C != a.C {
		panic(dimErr("Add", a, b))
	}
	if parallel.SerialBlock(len(a.Data), 4096) {
		addSeg(dst.Data, a.Data, b.Data, 0, len(a.Data))
		return
	}
	parallel.ForBlock(len(a.Data), 4096, func(lo, hi int) {
		addSeg(dst.Data, a.Data, b.Data, lo, hi)
	})
}

func addSeg(dst, a, b []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a − b. dst may alias a or b.
func Sub(dst, a, b *Dense) {
	if a.R != b.R || a.C != b.C || dst.R != a.R || dst.C != a.C {
		panic(dimErr("Sub", a, b))
	}
	if parallel.SerialBlock(len(a.Data), 4096) {
		subSeg(dst.Data, a.Data, b.Data, 0, len(a.Data))
		return
	}
	parallel.ForBlock(len(a.Data), 4096, func(lo, hi int) {
		subSeg(dst.Data, a.Data, b.Data, lo, hi)
	})
}

func subSeg(dst, a, b []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = a[i] - b[i]
	}
}

// Scale computes dst = s·a. dst may alias a.
func Scale(dst *Dense, s float64, a *Dense) {
	if dst.R != a.R || dst.C != a.C {
		panic(dimErr("Scale", dst, a))
	}
	VecScale(dst.Data, s, a.Data)
}

// AXPY computes dst += s·x.
func AXPY(dst *Dense, s float64, x *Dense) {
	if dst.R != x.R || dst.C != x.C {
		panic(dimErr("AXPY", dst, x))
	}
	VecAXPY(dst.Data, s, x.Data)
}

// AddScaledIdentity computes m += s·I in place. m must be square.
func AddScaledIdentity(m *Dense, s float64) {
	if !m.IsSquare() {
		panic("matrix: AddScaledIdentity of non-square matrix")
	}
	for i := 0; i < m.R; i++ {
		m.Data[i*m.C+i] += s
	}
}

// Dot returns the pointwise (Frobenius) inner product
// A • B = Σᵢⱼ AᵢⱼBᵢⱼ. For symmetric A, B this equals Tr[AB], the
// operation written A • B throughout the paper.
func Dot(a, b *Dense) float64 {
	if a.R != b.R || a.C != b.C {
		panic(dimErr("Dot", a, b))
	}
	return VecDot(a.Data, b.Data)
}

// TraceProd returns Tr[AB] = Σᵢⱼ Aᵢⱼ Bⱼᵢ for general (not necessarily
// symmetric) square matrices of equal dimension.
func TraceProd(a, b *Dense) float64 {
	if a.R != b.C || a.C != b.R {
		panic(dimErr("TraceProd", a, b))
	}
	n := a.R
	if parallel.OneBlock(n, 8) {
		return traceProdSeg(a, b, 0, n)
	}
	return parallel.SumBlocks(n, 8, func(lo, hi int) float64 {
		return traceProdSeg(a, b, lo, hi)
	})
}

func traceProdSeg(a, b *Dense, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		arow := a.Data[i*a.C : (i+1)*a.C]
		for j, v := range arow {
			s += v * b.Data[j*b.C+i]
		}
	}
	return s
}

// MulAB returns the product a·b as a new matrix, computed with a
// parallel row-blocked kernel. Analytic cost: work 2·R·K·C, depth
// O(log K) in the fork-join model.
func MulAB(a, b *Dense, st *parallel.Stats) *Dense {
	out := New(a.R, b.C)
	MulABInto(out, a, b, st)
	return out
}

// MulABInto computes out = a·b into out (zeroed first). out must not
// alias a or b.
func MulABInto(out, a, b *Dense, st *parallel.Stats) {
	if a.C != b.R {
		panic(dimErr("MulAB", a, b))
	}
	if out.R != a.R || out.C != b.C {
		panic(dimErr("MulABInto", out, b))
	}
	k, c := a.C, b.C
	ad, bd, od := a.Data, b.Data, out.Data
	// The hot loop lives in a plain top-level function: loop bodies
	// inside closures optimize measurably worse (bounds-check and
	// register allocation quality), and this kernel is the hottest in
	// the dense path.
	grain := rowGrain(k * c)
	if parallel.SerialBlock(a.R, grain) {
		mulRowsAB(ad, bd, od, k, c, 0, a.R)
	} else {
		parallel.ForBlock(a.R, grain, func(lo, hi int) {
			mulRowsAB(ad, bd, od, k, c, lo, hi)
		})
	}
	st.Add(int64(2*a.R)*int64(k)*int64(c), parallel.Log2(k))
}

// mulRowsAB computes rows [lo, hi) of the product: od rows accumulate
// ad-row-scaled bd rows, after a zeroing sweep so recycled output
// storage behaves like a fresh matrix. The work runs in 3-row register
// tiles under an L2 k-chunk sweep (see tile.go); each output entry
// still accumulates over l in increasing order, so results are
// bit-for-bit identical to the single-row loop.
func mulRowsAB(ad, bd, od []float64, k, c, lo, hi int) {
	zero := od[lo*c : hi*c]
	for j := range zero {
		zero[j] = 0
	}
	axpyTiles(ad, bd, od, k, c, lo, hi, 0, c)
}

// MulABT returns a·bᵀ. Both operands are traversed row-major, which is
// the cache-friendly orientation, so MulABT is preferred where either
// formulation works.
func MulABT(a, b *Dense, st *parallel.Stats) *Dense {
	if a.C != b.C {
		panic(dimErr("MulABT", a, b))
	}
	out := New(a.R, b.R)
	k := a.C
	grain := rowGrain(k * b.R)
	if parallel.SerialBlock(a.R, grain) {
		mulRowsABT(a.Data, b.Data, out.Data, k, b.R, 0, a.R)
	} else {
		parallel.ForBlock(a.R, grain, func(lo, hi int) {
			mulRowsABT(a.Data, b.Data, out.Data, k, b.R, lo, hi)
		})
	}
	st.Add(int64(2*a.R)*int64(k)*int64(b.R), parallel.Log2(k))
	return out
}

// mulRowsABT computes rows [lo, hi) of a·bᵀ in 4×4 register tiles under
// an L2 row-panel sweep (see tile.go); each dot runs over l ascending,
// bitwise identical to the scalar loop.
func mulRowsABT(ad, bd, od []float64, k, bn, lo, hi int) {
	p := panelDim(k)
	for jb := 0; jb < bn; jb += p {
		je := jb + p
		if je > bn {
			je = bn
		}
		dotTiles(ad, bd, od, k, bn, lo, hi, jb, je)
	}
}

// MulATB returns aᵀ·b.
func MulATB(a, b *Dense, st *parallel.Stats) *Dense {
	if a.R != b.R {
		panic(dimErr("MulATB", a, b))
	}
	out := New(a.C, b.C)
	// Accumulate rank-1 updates row by row of a and b; parallelize over
	// output rows by transposing the loop structure: out[i][j] = Σ_l a[l][i] b[l][j].
	grain := rowGrain(a.R * b.C)
	if parallel.SerialBlock(a.C, grain) {
		mulRowsATB(a, b, out, 0, a.C)
	} else {
		parallel.ForBlock(a.C, grain, func(lo, hi int) {
			mulRowsATB(a, b, out, lo, hi)
		})
	}
	st.Add(int64(2*a.C)*int64(a.R)*int64(b.C), parallel.Log2(a.R))
	return out
}

func mulRowsATB(a, b, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := out.Data[i*b.C : (i+1)*b.C]
		for l := 0; l < a.R; l++ {
			av := a.Data[l*a.C+i]
			if av == 0 {
				continue
			}
			brow := b.Data[l*b.C : (l+1)*b.C]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulVec returns m·v.
func (m *Dense) MulVec(v []float64) []float64 {
	if m.C != len(v) {
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]float64, m.R)
	m.MulVecTo(out, v)
	return out
}

// MulVecTo computes dst = m·v. dst must not alias v.
func (m *Dense) MulVecTo(dst, v []float64) {
	if m.C != len(v) || m.R != len(dst) {
		panic("matrix: MulVecTo dimension mismatch")
	}
	grain := rowGrain(m.C)
	if parallel.SerialBlock(m.R, grain) {
		mulVecRows(m.Data, dst, v, m.C, 0, m.R)
		return
	}
	parallel.ForBlock(m.R, grain, func(lo, hi int) {
		mulVecRows(m.Data, dst, v, m.C, lo, hi)
	})
}

func mulVecRows(md, dst, v []float64, c, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := md[i*c : (i+1)*c]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
}

// QuadForm returns vᵀ·m·v for square m.
func (m *Dense) QuadForm(v []float64) float64 {
	if !m.IsSquare() || m.C != len(v) {
		panic("matrix: QuadForm dimension mismatch")
	}
	if parallel.OneBlock(m.R, 8) {
		return quadFormSeg(m, v, 0, m.R)
	}
	return parallel.SumBlocks(m.R, 8, func(lo, hi int) float64 {
		return quadFormSeg(m, v, lo, hi)
	})
}

func quadFormSeg(m *Dense, v []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		var ri float64
		for j, rv := range row {
			ri += rv * v[j]
		}
		s += v[i] * ri
	}
	return s
}

// rowGrain picks a per-row parallel grain so that each forked block does
// at least ~minGrain scalar operations; flopsPerRow is the approximate
// scalar work per row.
func rowGrain(flopsPerRow int) int {
	if flopsPerRow <= 0 {
		flopsPerRow = 1
	}
	g := 4096 / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

package core

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/work"
)

// Solution is the result of the optimization pipeline: a certified
// bracket [Lower, Upper] around the packing optimum and the best
// feasible witness found.
type Solution struct {
	// Value = Lower is the certified value of the witness X.
	Value float64
	// X is a feasible packing vector (Σ XᵢAᵢ ≼ I, verified) achieving
	// Value.
	X []float64
	// Lower and Upper bracket the true optimum.
	Lower, Upper float64
	// DecisionCalls counts invocations of Algorithm 3.1 (Lemma 2.2
	// bounds this by O(log n)).
	DecisionCalls int
	// TotalIterations sums Algorithm 3.1 iterations across calls.
	TotalIterations int
	// Y is the covering witness (trace-normalized, for the scaled
	// instance of the last primal-certifying call) when the dense
	// oracle tracked it; see DecisionResult.Y.
	Y *matrix.Dense
	// YScale is the instance scale θ at which Y was produced.
	YScale float64
}

// Gap returns Upper/Lower − 1, the certified relative optimality gap.
func (s *Solution) Gap() float64 {
	if s.Lower <= 0 {
		return math.Inf(1)
	}
	return s.Upper/s.Lower - 1
}

// MaximizePacking approximates the packing SDP
//
//	max 1ᵀx  s.t.  Σᵢ xᵢAᵢ ≼ I,  x ≥ 0
//
// to relative accuracy eps using the binary-search reduction of
// Lemma 2.2: initial bounds from constraint traces (a factor ≤ n·m
// bracket), then repeated ε-decision calls on geometrically rescaled
// instances. Every returned bound is certified by an explicit witness,
// so the result does not depend on trusting the proof constants.
func MaximizePacking(set ConstraintSet, eps float64, opts Options) (*Solution, error) {
	if err := guardEps(eps); err != nil {
		return nil, err
	}
	n, m := set.N(), set.Dim()
	if n == 0 {
		return nil, ErrEmptySet
	}

	// Initial bracket from traces: eᵢ/Tr[Aᵢ] is feasible
	// (λ_max(Aᵢ) ≤ Tr[Aᵢ]), so OPT ≥ 1/min Tr; and xᵢ ≤ 1/λ_max(Aᵢ) ≤
	// m/Tr[Aᵢ] for any feasible x, so OPT ≤ Σᵢ m/Tr[Aᵢ].
	lo, hi := 0.0, 0.0
	minTr := math.Inf(1)
	for i := 0; i < n; i++ {
		tr := set.Trace(i)
		if tr <= 0 {
			// A zero constraint contributes unbounded xᵢ: the packing
			// optimum is infinite.
			return nil, fmt.Errorf("core: constraint %d is zero; packing value unbounded", i)
		}
		if tr < minTr {
			minTr = tr
		}
		hi += float64(m) / tr
	}
	lo = 1 / minTr

	sol := &Solution{Lower: lo, Upper: hi}
	// The trace-based lower bound comes with an explicit witness too.
	bestX := make([]float64, n)
	for i := 0; i < n; i++ {
		if set.Trace(i) == minTr {
			bestX[i] = 1 / minTr
			break
		}
	}
	sol.X = bestX
	sol.Value = lo

	// One workspace serves every decision call: the instances share
	// shapes (only the scale changes), so the pools warmed by call 0
	// make every later call allocation-free in steady state.
	ws := opts.Workspace
	if ws == nil {
		ws = work.New()
	}

	// Decision calls needed: each call shrinks the bracket ratio from ρ
	// to about √ρ·(1+O(ε)), so ~log₂ log(n·m) + log(1/ε) calls suffice;
	// the cap below is generous and only guards against pathological
	// stalls.
	maxCalls := 4*int(math.Ceil(math.Log2(math.Log2(math.Max(4, hi/lo))+2))) + 3*int(math.Ceil(math.Log2(1/eps))) + 16

	stalls := 0
	for call := 0; call < maxCalls && hi > (1+eps)*lo; call++ {
		// Cancellation checkpoint between decision calls: the bracket
		// narrowed so far stays certified, but a cancelled caller wants
		// its worker (and workspace) back, not a tighter bound.
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: decision call %d: %w", call, err)
			}
		}
		theta := math.Sqrt(lo * hi)
		scaled := set.WithScale(theta)
		// Derive a fresh seed per call so randomized oracles (JL
		// sketches, Lanczos starts) are independent across calls while
		// the whole run stays deterministic in opts.Seed.
		callOpts := opts
		callOpts.Seed = opts.Seed*1315423911 + uint64(call) + 1
		callOpts.Workspace = ws
		dr, err := DecisionPSDP(scaled, eps/4, callOpts)
		if err != nil {
			return nil, fmt.Errorf("core: decision call %d (θ=%g): %w", call, theta, err)
		}
		sol.DecisionCalls++
		sol.TotalIterations += dr.Iterations

		// Map certified bounds on the scaled instance back:
		// OPT = θ·OPT_scaled.
		newLo := theta * dr.Lower
		newHi := theta * dr.Upper
		improved := false
		if newLo > lo {
			lo = newLo
			improved = true
			// Witness transfers: y = θ·DualX is feasible for the
			// original set (Σ yᵢAᵢ = Σ DualXᵢ·(θAᵢ) ≼ I).
			for i := range bestX {
				bestX[i] = theta * dr.DualX[i]
			}
			sol.X = matrix.VecClone(bestX)
			sol.Value = lo
		}
		if newHi < hi {
			hi = newHi
			improved = true
			if dr.Y != nil {
				sol.Y = dr.Y
				sol.YScale = theta
			}
		}
		sol.Lower, sol.Upper = lo, hi
		if improved {
			stalls = 0
		} else {
			// Theory guarantees progress; randomized oracles may stall
			// once on sketch noise (the next call reseeds), but repeated
			// stalls mean the certificates have reached their numerical
			// resolution — stop with the still-valid bracket.
			stalls++
			if stalls >= 2 {
				break
			}
		}
	}
	sol.Lower, sol.Upper = lo, hi
	return sol, nil
}

package core

import "repro/internal/work"

// RatioOracle exposes the per-iteration primitive of Algorithm 3.1 —
// the ratios rᵢ = exp(Ψ)•Aᵢ/Tr[exp(Ψ)] — to sibling packages that build
// extensions on top of it (internal/mixed couples it with covering
// constraints). It is a thin adapter over the solver's internal oracle
// selection, honoring the same Options.
type RatioOracle struct {
	o expOracle
}

// NewRatioOracle builds the oracle selected by opts for the set. The
// oracle draws its scratch from opts.Workspace (a private workspace is
// created when nil).
func NewRatioOracle(set ConstraintSet, opts Options) (*RatioOracle, error) {
	ws := opts.Workspace
	if ws == nil {
		ws = work.New()
	}
	o, err := buildOracle(set, opts, ws)
	if err != nil {
		return nil, err
	}
	return &RatioOracle{o: o}, nil
}

// Init installs the starting dual vector.
func (r *RatioOracle) Init(x []float64) error { return r.o.init(x) }

// Update informs the oracle that x[i] was multiplied by (1+alpha) for
// each i in b; x is the post-update vector.
func (r *RatioOracle) Update(b []int, alpha float64, x []float64) error {
	mults := make([]float64, len(b))
	for j := range mults {
		mults[j] = 1 + alpha
	}
	return r.o.update(b, mults, x)
}

// UpdateMults informs the oracle that x[i] was multiplied by mults[j]
// for each i = b[j]; x is the post-update vector. Every multiplier must
// be positive and finite. Extensions use this for non-uniform steps —
// coordinate caps that clamp a step short of (1+alpha), and
// ALO-style exp(η·g) multipliers — over the same oracle machinery (the
// underlying oracles already accept arbitrary positive multipliers).
func (r *RatioOracle) UpdateMults(b []int, mults []float64, x []float64) error {
	return r.o.update(b, mults, x)
}

// Ratios returns rᵢ for all constraints at the current x.
func (r *RatioOracle) Ratios() ([]float64, error) {
	v, _, err := r.o.ratios()
	return v, err
}

// LambdaMax returns the oracle's certificate-grade λ_max(Ψ) estimate at
// the current x.
func (r *RatioOracle) LambdaMax() (float64, error) { return r.o.lambdaMaxPsi() }

// LambdaMaxPsi computes a certificate-grade λ_max(Σ xᵢAᵢ) for any set
// and vector, independent of any oracle state.
func LambdaMaxPsi(set ConstraintSet, x []float64) (float64, error) {
	return lambdaMaxPsiOf(set, x)
}

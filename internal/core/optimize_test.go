package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestMaximizeIdenticalKnownOPT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	as, opt := identicalInstance(5, 4, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, set, sol, opt, 0.1)
}

func TestMaximizeOrthogonalKnownOPT(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	as, opt := orthogonalRankOne(6, 9, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, set, sol, opt, 0.1)
}

func TestMaximizeFactoredJL(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	as, opt := orthogonalRankOne(5, 8, rng)
	fact := toFactored(t, as)
	sol, err := MaximizePacking(fact, 0.15, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, fact, sol, opt, 0.3)
}

func TestMaximizeSingleConstraint(t *testing.T) {
	// One constraint A = diag(2, 1): OPT = 1/2.
	set, err := NewDenseSet([]*matrix.Dense{matrix.Diag([]float64{2, 1})})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.05, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, set, sol, 0.5, 0.05)
}

func TestMaximizeRejectsZeroConstraintOnly(t *testing.T) {
	set, err := NewDenseSet([]*matrix.Dense{matrix.New(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MaximizePacking(set, 0.1, Options{}); err == nil {
		t.Fatal("unbounded instance accepted")
	}
}

func TestMaximizeDecisionCallBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	as, _ := orthogonalRankOne(8, 12, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 2.2: O(log n) decision calls. Generous constant check.
	if sol.DecisionCalls > 40 {
		t.Fatalf("decision calls = %d, want O(log n)", sol.DecisionCalls)
	}
}

// Property: on random orthogonal instances the certified bracket always
// contains the known OPT and the witness is always verifiably feasible.
func TestQuickMaximizeCertified(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 101))
		n := 2 + int(seed%4)
		m := n + 2 + int(seed%3)
		as, opt := orthogonalRankOne(n, m, rng)
		set, err := NewDenseSet(as)
		if err != nil {
			return false
		}
		sol, err := MaximizePacking(set, 0.15, Options{})
		if err != nil {
			return false
		}
		if sol.Lower > opt*(1+1e-6) || sol.Upper < opt*(1-1e-6) {
			return false
		}
		cert, err := VerifyDual(set, sol.X, 1e-7)
		return err == nil && cert.Feasible && math.Abs(cert.Value-sol.Value) < 1e-9*(1+sol.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func checkSolution(t *testing.T, set ConstraintSet, sol *Solution, opt, wantGap float64) {
	t.Helper()
	if sol.Lower > opt*(1+1e-6) {
		t.Fatalf("lower %v exceeds OPT %v", sol.Lower, opt)
	}
	if sol.Upper < opt*(1-1e-6) {
		t.Fatalf("upper %v below OPT %v", sol.Upper, opt)
	}
	if g := sol.Gap(); g > 3*wantGap {
		t.Fatalf("certified gap %v too large (target %v): [%v, %v], OPT %v", g, wantGap, sol.Lower, sol.Upper, opt)
	}
	cert, err := VerifyDual(set, sol.X, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("witness infeasible: λmax = %v", cert.LambdaMax)
	}
	if math.Abs(cert.Value-sol.Value) > 1e-6*(1+sol.Value) {
		t.Fatalf("witness value %v != reported %v", cert.Value, sol.Value)
	}
}

func TestGapInfiniteOnZeroLower(t *testing.T) {
	s := &Solution{Lower: 0, Upper: 1}
	if !math.IsInf(s.Gap(), 1) {
		t.Fatal("Gap should be +Inf for zero lower bound")
	}
}

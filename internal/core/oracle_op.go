package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/eigen"
	"repro/internal/expm"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sketch"
	"repro/internal/work"
)

// This file implements the representation-agnostic operator oracles:
// every constraint representation exposing the PsiOperator primitives
// (an O(nnz) Ψ·v and batched quadratic forms against a row block) gets
// both the sketched bigDotExp oracle of Theorem 4.1 and the
// deterministic column-exact oracle. FactoredSet and SparseSet share
// this code path verbatim; the dense eigendecomposition oracle in
// oracle.go remains the reference path for DenseSet.

// opScratch is the per-run reusable state both operator oracles share:
// reseedable randomness (one PCG reseeded per use instead of a fresh
// generator per iteration — the streams are bitwise identical), the
// ratio vector, the Lanczos workspace, and the Ψ-apply closures — one
// sequential closure for Lanczos plus one per exponential row for the
// concurrent ExpMV loop, each owning its column scratch.
//
// The whole bundle round-trips through the workspace stash between
// decision calls: building it costs O(rows) heap allocations (the
// closures, their column scratch, and the three ExpMV vectors per row),
// which used to recur on every Decision call and dominated the factored
// path's allocation profile. The closures read the operator and the
// current dual vector through a shared holder at call time, so a
// restored bundle rebinds to the new oracle by overwriting two holder
// fields — no closure is ever rebuilt.
type opScratch struct {
	hold    *opHolder
	pcg     *rand.PCG
	rng     *rand.Rand
	r       []float64   // ratio buffer returned by ratios
	psiTmp  []float64   // Ψ·v column scratch of the Lanczos closure
	rowTmps [][]float64 // Ψ·v column scratch per exponential row
	lws     eigen.LanczosWS
	applyFn func(in, out []float64)   // Ψ·v (sequential, Lanczos)
	halfFns []func(in, out []float64) // per-row (Ψ/2)·v closures
	mv      []expm.MVScratch          // per-row ExpMV scratch
}

// opHolder is the indirection the stashed closures read through: the
// operator and a pointer to the owning oracle's dual vector. Stashing
// nils both fields (so the instance is not retained across runs);
// restoring points them at the new owner.
type opHolder struct {
	set PsiOperator
	xp  *[]float64
}

// opStashKey identifies the shape of a stashed opScratch bundle. Two
// bundles are interchangeable exactly when every buffer length matches:
// n (ratio vector), dim (ExpMV vectors), scratch (Ψ-apply column
// scratch), rows (closure count).
type opStashKey struct{ n, dim, scratch, rows int }

func (sc *opScratch) ready() bool { return sc.pcg != nil }

// init builds the scratch for rows concurrent exponential rows over
// set, restoring a stashed bundle of the same shape when one is
// available — the steady state for repeated decision calls on one
// workspace — and building from scratch otherwise. The Lanczos basis is
// prewarmed to the oracle's per-iteration refresh depth lanczosIter,
// with rows pooled in ws, so steady-state λ_max refreshes never
// allocate, however slowly they converge.
func (sc *opScratch) init(set PsiOperator, ws *work.Workspace, rows, lanczosIter int, xp *[]float64) {
	key := opStashKey{set.N(), set.Dim(), set.PsiScratchLen(), rows}
	if v, ok := ws.TakeStash(key); ok {
		*sc = *v.(*opScratch)
		sc.hold.set = set
		sc.hold.xp = xp
		sc.lws.Prewarm(ws, set.Dim(), lanczosIter)
		return
	}
	hold := &opHolder{set: set, xp: xp}
	sc.hold = hold
	sc.pcg = &rand.PCG{}
	sc.rng = rand.New(sc.pcg)
	sc.r = make([]float64, set.N())
	sc.psiTmp = make([]float64, set.PsiScratchLen())
	sc.lws.Prewarm(ws, set.Dim(), lanczosIter)
	tmp := sc.psiTmp
	sc.applyFn = func(in, out []float64) { hold.set.ApplyPsiScratch(*hold.xp, in, out, tmp) }
	sc.halfFns = make([]func(in, out []float64), rows)
	sc.mv = make([]expm.MVScratch, rows)
	sc.rowTmps = make([][]float64, rows)
	for r := range sc.halfFns {
		rowTmp := make([]float64, set.PsiScratchLen())
		sc.rowTmps[r] = rowTmp
		sc.halfFns[r] = func(in, out []float64) {
			hold.set.ApplyPsiScratch(*hold.xp, in, out, rowTmp)
			for i := range out {
				out[i] *= 0.5
			}
		}
	}
}

// jlLanczosIter and exactLanczosIter cap the Krylov depth of the
// oracles' per-iteration λ_max refreshes (certificate-grade calls at
// finish use a deeper budget and may grow the basis lazily).
const (
	jlLanczosIter    = 48
	exactLanczosIter = 64
)

// release returns the Lanczos basis rows to ws and stashes the whole
// bundle for the next same-shaped init; the scratch reverts to its
// unbuilt state. The closures' column scratch stays inside the bundle —
// it is captured by the closures, so handing it to the vector pool
// would let an unrelated borrower alias it. Stashing nils the holder so
// the operator instance is not retained across runs.
func (sc *opScratch) release(ws *work.Workspace) {
	if sc.pcg == nil {
		return
	}
	sc.lws.ReleaseBasis(ws)
	key := opStashKey{len(sc.r), sc.hold.set.Dim(), len(sc.psiTmp), len(sc.halfFns)}
	sc.hold.set, sc.hold.xp = nil, nil
	st := new(opScratch)
	*st = *sc
	ws.Stash(key, st)
	*sc = opScratch{}
}

// opJLOracle is the bigDotExp primitive of Theorem 4.1 over any
// PsiOperator:
//
//	exp(Ψ) • Aᵢ = Σ_r s_rᵀ·Aᵢ·s_r over rows of S = Π exp(Ψ/2),
//
// estimated by sketching with a fresh Gaussian Π each iteration:
// S is assembled from k = O(ε_s⁻² log m) ExpMV applications of exp(Ψ/2)
// to the rows of Π (each O(q·κ) work), after which every constraint
// costs O(k·nnz) through ExpDots (a sketch dot for factored sets, a
// batched quadratic form for sparse sets), and Tr[exp(Ψ)] =
// ‖exp(Ψ/2)‖_F² is estimated by ‖S‖_F². All quantities are carried in a
// common log-scale so ‖Ψ‖₂ ~ K/ε never overflows.
//
// All iteration state is retained across calls: the sketch matrix is
// refilled (not reallocated), the PCG is reseeded (not reconstructed),
// and all scratch lives in opScratch. A steady-state ratios call
// performs only a small constant number of allocations (the fork
// closures of the row loops — none at GOMAXPROCS=1, where the serial
// guards fire).
type opJLOracle struct {
	set       PsiOperator
	ws        *work.Workspace
	x         []float64
	sketchEps float64
	rows      int
	seed      uint64
	iter      uint64
	// lambdaEst is a running Lanczos estimate of λ_max(Ψ), refreshed
	// every iteration (cheap: O(q) per Lanczos step) and used to bound
	// the ExpMV segmentation.
	lambdaEst float64
	st        *parallel.Stats
	tol       float64
	// ph, when non-nil, accumulates the Lanczos/ExpMV share of the
	// oracle's time (SolveStats.ExpmNS).
	ph *SolveStats

	sc   opScratch
	jl   *sketch.JL
	s    *matrix.Dense // sketch rows through exp(Ψ/2)
	logs []float64
}

func newOpJLOracle(set PsiOperator, sketchEps float64, seed uint64, st *parallel.Stats, ws *work.Workspace) *opJLOracle {
	if sketchEps <= 0 {
		sketchEps = 0.2
	}
	return &opJLOracle{
		set:       set,
		ws:        ws,
		sketchEps: sketchEps,
		rows:      sketch.Rows(set.Dim(), sketchEps),
		seed:      seed,
		st:        st,
		tol:       1e-10,
	}
}

func (o *opJLOracle) init(x []float64) error {
	if len(x) != o.set.N() {
		return fmt.Errorf("core: operator oracle: x has %d entries, want %d", len(x), o.set.N())
	}
	o.x = x
	o.lambdaEst = 0
	if !o.sc.ready() {
		o.sc.init(o.set, o.ws, o.rows, jlLanczosIter, &o.x)
		o.s = o.ws.Mat(o.rows, o.set.Dim())
		o.logs = o.ws.Vec(o.rows)
	}
	return nil
}

func (o *opJLOracle) update(_ []int, _ []float64, x []float64) error {
	o.x = x
	return nil
}

// refreshLambda updates the Lanczos estimate of λ_max(Ψ). Lanczos
// returns a lower bound; a 5% headroom makes it a safe ExpMV
// segmentation bound (undershooting only lengthens the Taylor series a
// little, it does not break correctness).
func (o *opJLOracle) refreshLambda() error {
	o.sc.pcg.Seed(o.seed^0xabcdef, o.iter)
	lam, err := eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: jlLanczosIter,
		Tol:     1e-6,
		Rng:     o.sc.rng,
		WS:      &o.sc.lws,
	})
	if err != nil {
		return err
	}
	if lam < 0 {
		lam = 0
	}
	o.lambdaEst = lam
	return nil
}

func (o *opJLOracle) ratios() ([]float64, oracleInfo, error) {
	var mark time.Time
	if o.ph != nil {
		mark = time.Now()
	}
	if err := o.refreshLambda(); err != nil {
		return nil, oracleInfo{}, err
	}
	if o.ph != nil {
		o.ph.ExpmNS += time.Since(mark).Nanoseconds()
	}
	m := o.set.Dim()
	n := o.set.N()
	normHalf := 0.55*o.lambdaEst + 0.5 // bound for ‖Ψ/2‖ with headroom

	// Fresh Gaussian Π each iteration: refill the held sketch from the
	// reseeded stream (bitwise the same values a fresh sketch would get).
	o.sc.pcg.Seed(o.seed, o.iter)
	if o.jl == nil {
		jl, err := sketch.NewWS(o.ws, o.rows, m, o.sc.rng)
		if err != nil {
			return nil, oracleInfo{}, err
		}
		o.jl = jl
	} else {
		o.jl.Refill(o.sc.rng)
	}
	o.iter++

	// Rows of S: sᵣ = exp(Ψ/2)·Πᵣ, each with its own log-scale. Grain 1:
	// each row is a full ExpMV chain, expensive enough to fork per row;
	// below the fork grain the plain loop computes the identical values
	// without building a closure.
	s := o.s
	logs := o.logs
	if o.ph != nil {
		mark = time.Now()
	}
	if parallel.SerialBlock(o.rows, 1) {
		for r := 0; r < o.rows; r++ {
			logs[r] = expm.ExpMVInto(s.Data[r*m:(r+1)*m], o.sc.halfFns[r], o.jl.RowVec(r), normHalf, o.tol, &o.sc.mv[r])
		}
	} else {
		parallel.ForBlock(o.rows, 1, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				logs[r] = expm.ExpMVInto(s.Data[r*m:(r+1)*m], o.sc.halfFns[r], o.jl.RowVec(r), normHalf, o.tol, &o.sc.mv[r])
			}
		})
	}
	if o.ph != nil {
		o.ph.ExpmNS += time.Since(mark).Nanoseconds()
	}
	// Rescale all rows to the common maximum log-scale L.
	maxLog := rescaleRows(s, logs)

	// trEst·e^{2L} ≈ Tr[exp(Ψ)] = ‖exp(Ψ/2)‖_F².
	trEst := sumSquares(s.Data)
	if trEst <= 0 || math.IsNaN(trEst) {
		return nil, oracleInfo{}, fmt.Errorf("core: operator oracle: degenerate trace estimate %v", trEst)
	}

	// rᵢ = scale·(Aᵢ • SᵀS) / trEst (the e^{2L} factors cancel).
	r := o.sc.r
	o.set.ExpDots(r, s)
	for i := 0; i < n; i++ {
		r[i] /= trEst
	}

	// Analytic cost per Theorem 4.1: k ExpMV passes + k·q constraint dots.
	expm.ExpMVStats(o.st, o.set.NNZ(), normHalf, o.tol, m)
	o.st.Add(int64(o.rows)*int64(2*o.set.NNZ()), parallel.Log2(m))

	return r, oracleInfo{
		LambdaMax: o.lambdaEst,
		LogTrW:    2*maxLog + math.Log(trEst),
	}, nil
}

// sumSquares returns Σ aᵢ² with the same deterministic block reduction
// parallel.SumFloat would use. When forking is impossible the block
// tree is replayed with a plain loop — identical decomposition, same
// combine order, bit-identical result — so the zero-allocation steady
// state holds at every problem size, not just below one block.
func sumSquares(a []float64) float64 {
	n := len(a)
	blocks := parallel.BlockCount(n, 0)
	if blocks == 1 {
		return sumSquaresSeg(a, 0, n)
	}
	if parallel.Workers() == 1 {
		var s float64
		for b := 0; b < blocks; b++ {
			s += sumSquaresSeg(a, b*n/blocks, (b+1)*n/blocks)
		}
		return s
	}
	return parallel.SumBlocks(n, 0, func(lo, hi int) float64 {
		return sumSquaresSeg(a, lo, hi)
	})
}

func sumSquaresSeg(a []float64, lo, hi int) float64 {
	var s float64
	for _, v := range a[lo:hi] {
		s += v * v
	}
	return s
}

// rescaleRows brings every row of s from its own log-scale logs[r] to
// the common maximum log-scale, which it returns. Rows are rescaled in
// parallel with the blocked vector kernel; below the fork grain a plain
// loop computes the identical values without building a closure.
func rescaleRows(s *matrix.Dense, logs []float64) float64 {
	maxLog := logs[0]
	for _, l := range logs[1:] {
		if l > maxLog {
			maxLog = l
		}
	}
	if parallel.SerialBlock(s.R, 1) {
		m := s.C
		for r := 0; r < s.R; r++ {
			row := s.Data[r*m : (r+1)*m]
			matrix.VecScale(row, math.Exp(logs[r]-maxLog), row)
		}
		return maxLog
	}
	// The fork closure lives in a helper so its capture boxes are only
	// allocated when the parallel branch actually runs.
	rescaleRowsParallel(s, logs, maxLog)
	return maxLog
}

func rescaleRowsParallel(s *matrix.Dense, logs []float64, maxLog float64) {
	m := s.C
	parallel.For(s.R, func(r int) {
		row := s.Data[r*m : (r+1)*m]
		matrix.VecScale(row, math.Exp(logs[r]-maxLog), row)
	})
}

// lambdaMaxPsi runs a certificate-grade Lanczos (tight tolerance, many
// iterations, full reorthogonalization).
func (o *opJLOracle) lambdaMaxPsi() (float64, error) {
	o.sc.pcg.Seed(o.seed^0x5eed, 0x7ea1)
	lam, err := eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 256,
		Tol:     1e-12,
		Rng:     o.sc.rng,
		WS:      &o.sc.lws,
	})
	if err != nil {
		return 0, err
	}
	return lam, nil
}

func (o *opJLOracle) probability() *matrix.Dense { return nil }

func (o *opJLOracle) release() {
	if !o.sc.ready() {
		return
	}
	o.sc.release(o.ws)
	o.ws.PutMat(o.s)
	o.ws.PutVec(o.logs)
	o.s, o.logs = nil, nil
	if o.jl != nil {
		o.ws.PutMat(o.jl.M)
		o.jl = nil
	}
}

// opExactOracle evaluates exp(Ψ)•Aᵢ exactly (to ExpMV tolerance) by
// applying exp(Ψ/2) to every basis vector and taking per-constraint
// quadratic forms against the resulting rows, and Tr[exp(Ψ)] as
// ‖exp(Ψ/2)‖_F². Deterministic but O((q + m²)·κ) per iteration — the
// cross-validation oracle for the JL path on small instances, and the
// fully deterministic production path for sparse sets. It shares the JL
// oracle's buffer discipline through the same opScratch; at
// GOMAXPROCS=1 a steady-state iteration performs zero heap allocations
// (the serial guards skip every fork closure).
type opExactOracle struct {
	set       PsiOperator
	ws        *work.Workspace
	x         []float64
	lambdaEst float64
	seed      uint64
	st        *parallel.Stats
	// ph, when non-nil, accumulates the Lanczos/ExpMV share of the
	// oracle's time (SolveStats.ExpmNS).
	ph *SolveStats

	sc     opScratch
	cols   *matrix.Dense
	logs   []float64
	basisV []float64
}

func newOpExactOracle(set PsiOperator, seed uint64, st *parallel.Stats, ws *work.Workspace) *opExactOracle {
	return &opExactOracle{set: set, seed: seed, st: st, ws: ws}
}

func (o *opExactOracle) init(x []float64) error {
	if len(x) != o.set.N() {
		return fmt.Errorf("core: exact operator oracle: x has %d entries, want %d", len(x), o.set.N())
	}
	o.x = x
	if !o.sc.ready() {
		m := o.set.Dim()
		o.sc.init(o.set, o.ws, m, exactLanczosIter, &o.x)
		o.cols = o.ws.Mat(m, m)
		o.logs = o.ws.Vec(m)
		o.basisV = o.ws.Vec(m * m)
	}
	return nil
}

func (o *opExactOracle) update(_ []int, _ []float64, x []float64) error {
	o.x = x
	return nil
}

func (o *opExactOracle) ratios() ([]float64, oracleInfo, error) {
	var mark time.Time
	if o.ph != nil {
		mark = time.Now()
	}
	o.sc.pcg.Seed(o.seed, 0xfeed)
	lam, err := eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: exactLanczosIter, Tol: 1e-8,
		Rng: o.sc.rng,
		WS:  &o.sc.lws,
	})
	if err != nil {
		return nil, oracleInfo{}, err
	}
	if o.ph != nil {
		o.ph.ExpmNS += time.Since(mark).Nanoseconds()
	}
	o.lambdaEst = math.Max(lam, 0)
	m := o.set.Dim()
	normHalf := 0.55*o.lambdaEst + 0.5

	// Exponentiate the identity column by column: column j of exp(Ψ/2).
	// Shared log-scale normalization as in the JL oracle. Row r of cols
	// is exp(Ψ/2)·e_r (symmetric, so rows = cols); the basis vectors are
	// one held m×m buffer written once per call.
	cols := o.cols
	logs := o.logs
	if o.ph != nil {
		mark = time.Now()
	}
	if parallel.SerialBlock(m, 1) {
		for r := 0; r < m; r++ {
			e := o.basisV[r*m : (r+1)*m]
			matrix.BasisInto(e, r)
			logs[r] = expm.ExpMVInto(cols.Data[r*m:(r+1)*m], o.sc.halfFns[r], e, normHalf, 1e-12, &o.sc.mv[r])
		}
	} else {
		parallel.ForBlock(m, 1, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				e := o.basisV[r*m : (r+1)*m]
				matrix.BasisInto(e, r)
				logs[r] = expm.ExpMVInto(cols.Data[r*m:(r+1)*m], o.sc.halfFns[r], e, normHalf, 1e-12, &o.sc.mv[r])
			}
		})
	}
	if o.ph != nil {
		o.ph.ExpmNS += time.Since(mark).Nanoseconds()
	}
	maxLog := rescaleRows(cols, logs)
	trEst := sumSquares(cols.Data)
	if trEst <= 0 || math.IsNaN(trEst) {
		return nil, oracleInfo{}, fmt.Errorf("core: exact operator oracle: degenerate trace %v", trEst)
	}
	n := o.set.N()
	r := o.sc.r
	o.set.ExpDots(r, cols)
	for i := 0; i < n; i++ {
		r[i] /= trEst
	}
	o.st.Add(int64(m)*int64(2*o.set.NNZ()), parallel.Log2(m))
	return r, oracleInfo{LambdaMax: o.lambdaEst, LogTrW: 2*maxLog + math.Log(trEst)}, nil
}

func (o *opExactOracle) lambdaMaxPsi() (float64, error) {
	o.sc.pcg.Seed(o.seed^0x5eed, 0x7ea1)
	return eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 256, Tol: 1e-12,
		Rng: o.sc.rng,
		WS:  &o.sc.lws,
	})
}

func (o *opExactOracle) probability() *matrix.Dense { return nil }

func (o *opExactOracle) release() {
	if !o.sc.ready() {
		return
	}
	o.sc.release(o.ws)
	o.ws.PutMat(o.cols)
	o.ws.PutVec(o.logs)
	o.ws.PutVec(o.basisV)
	o.cols, o.logs, o.basisV = nil, nil, nil
}

package core

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// sparseFromDenseMats converts dense symmetric matrices to the sparse
// representation entry for entry.
func sparseFromDenseMats(t *testing.T, as []*matrix.Dense) *SparseSet {
	t.Helper()
	cs := make([]*sparse.CSC, len(as))
	for i, a := range as {
		cs[i] = sparse.CSCFromDense(a, 0)
	}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// randSparseSymPSD builds a random sparse symmetric diagonally-dominant
// (hence PSD) m×m matrix with ~deg off-diagonal pairs per row.
func randSparseSymPSD(m, deg int, rng *rand.Rand) *sparse.CSC {
	var trips []sparse.Triplet
	diag := make([]float64, m)
	for i := 0; i < m; i++ {
		for d := 0; d < deg; d++ {
			j := rng.IntN(m)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			trips = append(trips,
				sparse.Triplet{Row: i, Col: j, Val: v},
				sparse.Triplet{Row: j, Col: i, Val: v})
			diag[i] += math.Abs(v)
			diag[j] += math.Abs(v)
		}
	}
	for i := 0; i < m; i++ {
		trips = append(trips, sparse.Triplet{Row: i, Col: i, Val: diag[i] + 0.5 + rng.Float64()})
	}
	a, err := sparse.NewCSC(m, m, trips)
	if err != nil {
		panic(err)
	}
	return a
}

func TestNewSparseSetValidation(t *testing.T) {
	if _, err := NewSparseSet(nil); err != ErrEmptySet {
		t.Fatalf("empty set: got %v, want ErrEmptySet", err)
	}
	asym, _ := sparse.NewCSC(2, 2, []sparse.Triplet{{Row: 0, Col: 1, Val: 1}})
	if _, err := NewSparseSet([]*sparse.CSC{asym}); err == nil || !strings.Contains(err.Error(), "not symmetric") {
		t.Fatalf("asymmetric constraint: got %v", err)
	}
	rect, _ := sparse.NewCSC(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewSparseSet([]*sparse.CSC{rect}); err == nil {
		t.Fatal("rectangular constraint accepted")
	}
	a, _ := sparse.NewCSC(2, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	b, _ := sparse.NewCSC(3, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewSparseSet([]*sparse.CSC{a, b}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	neg, _ := sparse.NewCSC(2, 2, []sparse.Triplet{{Row: 0, Col: 0, Val: -1}})
	if _, err := NewSparseSet([]*sparse.CSC{neg}); err == nil || !strings.Contains(err.Error(), "negative trace") {
		t.Fatalf("negative trace: got %v", err)
	}
}

func TestSparseSetAccessors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m := 9
	cs := []*sparse.CSC{randSparseSymPSD(m, 2, rng), randSparseSymPSD(m, 3, rng)}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	if set.N() != 2 || set.Dim() != m {
		t.Fatalf("shape %dx%d", set.N(), set.Dim())
	}
	if set.NNZ() != cs[0].NNZ()+cs[1].NNZ() {
		t.Fatalf("NNZ = %d", set.NNZ())
	}
	for i, c := range cs {
		if got, want := set.Trace(i), c.DiagSum(); got != want {
			t.Fatalf("Trace(%d) = %v, want %v", i, got, want)
		}
	}
	scaled := set.WithScale(2.5)
	if got := scaled.Trace(0); math.Float64bits(got) != math.Float64bits(2.5*cs[0].DiagSum()) {
		t.Fatalf("scaled trace %v", got)
	}
	// ApplyPsi matches the densified reference.
	x := []float64{0.3, 1.7}
	v := make([]float64, m)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	out := make([]float64, m)
	scaled.ApplyPsi(x, v, out)
	dset, err := set.Densify()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, m)
	dset.WithScale(2.5).ApplyPsi(x, v, want)
	for j := range want {
		if math.Abs(out[j]-want[j]) > 1e-10*math.Max(1, math.Abs(want[j])) {
			t.Fatalf("ApplyPsi[%d] = %v, dense %v", j, out[j], want[j])
		}
	}
}

// The same instance encoded densely and sparsely must yield the same
// Decision outcome, and the certified brackets must agree to oracle
// accuracy (the oracles differ — eigendecomposition vs ExpMV — so the
// comparison is tolerance-based, not bitwise).
func TestSparseDenseDecisionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	m, n := 14, 8
	cs := make([]*sparse.CSC, n)
	for i := range cs {
		cs[i] = randSparseSymPSD(m, 2, rng)
	}
	sset, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	dset, err := sset.Densify()
	if err != nil {
		t.Fatal(err)
	}

	const scale, eps = 0.08, 0.25
	sr, err := DecisionPSDP(sset.WithScale(scale), eps, Options{Seed: 5, Oracle: OracleFactoredExact})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(dset.WithScale(scale), eps, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Outcome != dr.Outcome {
		t.Fatalf("outcomes differ: sparse %v, dense %v", sr.Outcome, dr.Outcome)
	}
	// Both brackets certify the same optimum: they must overlap, and the
	// endpoints agree to a modest relative tolerance.
	if sr.Lower > dr.Upper*(1+1e-6) || dr.Lower > sr.Upper*(1+1e-6) {
		t.Fatalf("brackets disjoint: sparse [%v, %v], dense [%v, %v]", sr.Lower, sr.Upper, dr.Lower, dr.Upper)
	}
	if rel := math.Abs(sr.Lower-dr.Lower) / math.Max(1e-300, dr.Lower); rel > 0.02 {
		t.Fatalf("lower bounds diverge: sparse %v, dense %v (rel %v)", sr.Lower, dr.Lower, rel)
	}
	// The sparse witness must verify against the DENSE set too.
	cert, err := VerifyDual(dset.WithScale(scale), sr.DualX, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("sparse witness infeasible on dense set: λ_max = %v", cert.LambdaMax)
	}
}

// Factored vs sparse: expanding each QᵢQᵢᵀ into an explicit sparse
// symmetric matrix must solve to the same outcome and near-identical
// exact-oracle bounds (both run the deterministic operator oracle; the
// operands differ only by the Gram expansion rounding).
func TestSparseFactoredDecisionEquivalence(t *testing.T) {
	inst := graph.Cycle(10)
	qs, err := inst.EdgeFactors()
	if err != nil {
		t.Fatal(err)
	}
	fset, err := NewFactoredSet(qs)
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]*sparse.CSC, len(qs))
	for i, q := range qs {
		cs[i] = sparse.CSCFromDense(q.GramDense(), 0)
	}
	sset, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fset.N(); i++ {
		if math.Float64bits(fset.Trace(i)) != math.Float64bits(sset.Trace(i)) {
			t.Fatalf("trace %d differs: %v vs %v", i, fset.Trace(i), sset.Trace(i))
		}
	}

	const scale, eps = 0.2, 0.25
	opts := Options{Seed: 9, Oracle: OracleFactoredExact, MaxIter: 150}
	fr, err := DecisionPSDP(fset.WithScale(scale), eps, opts)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := DecisionPSDP(sset.WithScale(scale), eps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Outcome != sr.Outcome {
		t.Fatalf("outcomes differ: factored %v, sparse %v", fr.Outcome, sr.Outcome)
	}
	if rel := math.Abs(fr.Lower-sr.Lower) / math.Max(1e-300, fr.Lower); rel > 1e-6 {
		t.Fatalf("lower bounds diverge: %v vs %v", fr.Lower, sr.Lower)
	}
	if rel := relOrInf(fr.Upper, sr.Upper); rel > 1e-6 {
		t.Fatalf("upper bounds diverge: %v vs %v", fr.Upper, sr.Upper)
	}
}

func relOrInf(a, b float64) float64 {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 0
	}
	return math.Abs(a-b) / math.Max(1e-300, math.Abs(a))
}

// The JL oracle must run on sparse sets (OracleAuto path) and produce a
// valid certified bracket.
func TestSparseJLDecision(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 23))
	m, n := 20, 10
	cs := make([]*sparse.CSC, n)
	for i := range cs {
		cs[i] = randSparseSymPSD(m, 2, rng)
	}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(set.WithScale(0.05), 0.3, Options{Seed: 3, SketchEps: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !(dr.Lower > 0) || !(dr.Upper >= dr.Lower) {
		t.Fatalf("invalid bracket [%v, %v]", dr.Lower, dr.Upper)
	}
	// Witness verifies independently.
	cert, err := VerifyDual(set.WithScale(0.05), dr.DualX, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("JL sparse witness infeasible: λ_max = %v", cert.LambdaMax)
	}
}

// Maximize must accept the sparse representation end to end.
func TestSparseMaximize(t *testing.T) {
	g := graph.Cycle(8)
	cs := make([]*sparse.CSC, g.M())
	for k := range g.Edges {
		q, err := g.EdgeFactor(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		cs[k] = sparse.CSCFromDense(q.GramDense(), 0)
	}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.25, Options{Seed: 7, SketchEps: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !(sol.Lower > 0) || sol.Upper < sol.Lower {
		t.Fatalf("invalid bracket [%v, %v]", sol.Lower, sol.Upper)
	}
	cert, err := VerifyDual(set, sol.X, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("Maximize witness infeasible: λ_max = %v", cert.LambdaMax)
	}
}

// An explicitly dense set must still be rejected by the operator-oracle
// kinds (the dense auto path is the exact eigendecomposition oracle).
func TestOperatorOracleRejectsDense(t *testing.T) {
	set, err := NewDenseSet([]*matrix.Dense{matrix.Identity(3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecisionPSDP(set, 0.3, Options{Oracle: OracleFactoredJL}); err == nil {
		t.Fatal("OracleFactoredJL accepted a dense set")
	}
	if _, err := DecisionPSDP(set, 0.3, Options{Oracle: OracleFactoredExact}); err == nil {
		t.Fatal("OracleFactoredExact accepted a dense set")
	}
}

package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// DecisionState is the resumable state of one Algorithm 3.1 run: the
// dual iterate, the step index, and the per-run certificate bookkeeping
// the stepper accumulates (ratio averages, best dual snapshot, spectral
// high-water mark). The MMW dynamics keep everything else implicit in
// the constraint set and the options, so this snapshot is all a solver
// needs to either continue an interrupted run on the same instance
// (ResumeDecisionPSDP) or warm-start a run on a perturbed instance
// (Options.WarmStart). The struct is plain data and JSON-serializable,
// so serving layers can store and ship it.
type DecisionState struct {
	// N and M echo the instance shape the state was captured from; a
	// mismatching shape makes the state unusable for a target set.
	N int `json:"n"`
	M int `json:"m"`
	// Eps is the accuracy of the generating run.
	Eps float64 `json:"eps"`
	// T is the number of iterations the generating run executed.
	T int `json:"t"`
	// X is the final dual iterate x⁽ᵀ⁾.
	X []float64 `json:"x"`
	// AvgSum[i] = Σₜ rᵢ⁽ᵗ⁾ is the unnormalized primal ratio
	// accumulator (AvgRatios·T).
	AvgSum []float64 `json:"avgSum,omitempty"`
	// BestMinR is the best min_i rᵢ⁽ᵗ⁾ seen anywhere in the run.
	BestMinR float64 `json:"bestMinR,omitempty"`
	// BestDualRatio / BestDualX / HaveDualSnap are the best dual
	// snapshot seen anywhere in the run (re-certified at finish).
	BestDualRatio float64   `json:"bestDualRatio,omitempty"`
	BestDualX     []float64 `json:"bestDualX,omitempty"`
	HaveDualSnap  bool      `json:"haveDualSnap,omitempty"`
	// MaxPsiNorm is the largest λ_max(Ψ) observed.
	MaxPsiNorm float64 `json:"maxPsiNorm,omitempty"`
	// Engine names the engine that captured the state ("mmw" or "alo";
	// "" from states captured before the engine split means "mmw"). The
	// bookkeeping semantics are engine-specific, so Resume rejects a
	// cross-engine state and WarmStart falls back to a cold start on
	// one — never a silent cross-engine restore.
	Engine string `json:"engine,omitempty"`
}

// Clone returns a deep copy of the state.
func (st *DecisionState) Clone() *DecisionState {
	if st == nil {
		return nil
	}
	c := *st
	c.X = matrix.VecClone(st.X)
	c.AvgSum = matrix.VecClone(st.AvgSum)
	c.BestDualX = matrix.VecClone(st.BestDualX)
	return &c
}

// snapshot captures the run's resumable state (deep copies: the run's
// buffers go back to the workspace after finish).
func (d *decisionRun) snapshot() *DecisionState {
	return &DecisionState{
		N:             d.n,
		M:             d.m,
		Eps:           d.eps,
		T:             d.t,
		X:             matrix.VecClone(d.x),
		AvgSum:        matrix.VecClone(d.avg),
		BestMinR:      d.bestMinR,
		BestDualRatio: d.bestDualRatio,
		BestDualX:     matrix.VecClone(d.bestDualX),
		HaveDualSnap:  d.haveDualSnap,
		MaxPsiNorm:    d.res.MaxPsiNorm,
		Engine:        d.engineName,
	}
}

// restore is the ResumeDecisionPSDP path: it reinstates the full run
// state — iterate, step index, and certificate bookkeeping — so the
// continued run behaves as if it had never stopped. The bookkeeping is
// only meaningful for the instance that generated it, so restore is
// strict: any shape or accuracy mismatch is an error, never a silent
// cold start.
func (d *decisionRun) restore(st *DecisionState) error {
	if st == nil {
		return errors.New("core: resume: nil state")
	}
	if got := legacyEngineName(st.Engine); got != d.engineName {
		return fmt.Errorf("core: resume: state was captured by engine %q, run uses engine %q (iterate dynamics and bookkeeping are engine-specific)", got, d.engineName)
	}
	if len(st.X) != d.n || st.N != d.n || st.M != d.m {
		return fmt.Errorf("core: resume: state shape (n=%d, m=%d, len(x)=%d) does not match instance (n=%d, m=%d)",
			st.N, st.M, len(st.X), d.n, d.m)
	}
	if st.Eps != d.eps {
		return fmt.Errorf("core: resume: state eps %v does not match run eps %v (bookkeeping thresholds differ)", st.Eps, d.eps)
	}
	if st.T < 0 {
		return fmt.Errorf("core: resume: negative step index %d", st.T)
	}
	for i, v := range st.X {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("core: resume: x[%d] = %v is not a valid dual value", i, v)
		}
	}
	// The average bookkeeping divides by the step index at finish, so a
	// state carrying T steps MUST carry the matching accumulator — a
	// zeroed avg with a restored t would silently deflate the primal
	// certificate's denominator-to-numerator pairing.
	if st.T > 0 && len(st.AvgSum) != d.n {
		return fmt.Errorf("core: resume: state has %d avgSum entries for %d constraints at t=%d", len(st.AvgSum), d.n, st.T)
	}
	copy(d.x, st.X)
	d.t = st.T
	if len(st.AvgSum) == d.n {
		copy(d.avg, st.AvgSum)
	}
	d.bestMinR = st.BestMinR
	d.bestDualRatio = st.BestDualRatio
	d.bestDualX = append(d.bestDualX[:0], st.BestDualX...)
	d.haveDualSnap = st.HaveDualSnap && len(st.BestDualX) == d.n
	d.res.MaxPsiNorm = st.MaxPsiNorm
	return nil
}

// applyWarmStart is the feasibility-guarded restart rule for
// Options.WarmStart: seed the iterate of a fresh run from a previous
// run's final x, on an instance that may have drifted since. The guard
// re-establishes exactly the preconditions the paper's analysis places
// on the starting point, so the warm run is a valid Algorithm 3.1 run
// with a different (better-informed) start:
//
//  1. monotone floor — every coordinate is clamped up to the cold-start
//     value x⁰ᵢ = 1/(n·Tr[Aᵢ]) (frozen coordinates keep their cold
//     values), preserving the growth-count bound behind Theorem 3.1's
//     iteration cap;
//  2. dual headroom — ‖x‖₁ is rescaled below K, so the ‖x‖₁ > K exit
//     must be re-earned on the current instance rather than inherited
//     from the state's instance;
//  3. potential envelope — λ_max(Ψ(x)) is rescaled to ≤ 1 + ε (the
//     cold start's Ψ⁰ ≼ I of Claim 3.3, up to the ε-slack the analysis
//     already carries), re-verified at certificate grade after the
//     clamp; the preserved information is the direction of x, which is
//     where the MMW iterate encodes the instance geometry.
//
// When the state cannot be made to satisfy the invariants (shape
// mismatch, poisoned values, or a perturbation so large that two
// rescale attempts fail), the run silently falls back to the cold
// start — warm starting is an accelerator, never a correctness trade.
// Returns whether the warm seed was installed.
func (d *decisionRun) applyWarmStart(st *DecisionState) bool {
	if st == nil || len(st.X) != d.n || (st.M != 0 && st.M != d.m) {
		return false
	}
	// A state captured by the other engine seeds nothing: its iterate
	// encodes that engine's dynamics, and silently transplanting it
	// would blur which engine's certificates a run's trajectory belongs
	// to. Cold fallback, reported via DecisionResult.WarmStarted=false.
	if legacyEngineName(st.Engine) != d.engineName {
		return false
	}
	xw := make([]float64, d.n)
	for i := range xw {
		if d.frozen[i] {
			xw[i] = d.x[i]
			continue
		}
		v := st.X[i]
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false // poisoned state: cold start
		}
		xw[i] = math.Max(v, d.x[i])
	}
	// Invariant 2: keep ‖x‖₁ clear of the dual exit.
	if s := matrix.VecSum(xw); !(s < warmNormFrac*d.prm.K) {
		d.rescaleClamped(xw, warmNormFrac*d.prm.K/s)
	}
	// Invariant 3: restore the starting potential envelope, verified at
	// certificate grade (exact eigendecomposition or converged Lanczos).
	envelope := 1 + d.eps
	for attempt := 0; ; attempt++ {
		lam, err := lambdaMaxPsiOf(d.set, xw)
		if err != nil || math.IsNaN(lam) || math.IsInf(lam, 0) {
			return false
		}
		if lam <= envelope {
			break
		}
		if attempt >= 2 {
			return false // perturbation too large: cold start
		}
		// Aim slightly under the cap; the x⁰ clamp can push λ back up by
		// at most λ_max(Ψ(x⁰)) ≤ 1 over the clamped subset, which the
		// re-verification above catches.
		d.rescaleClamped(xw, (1-d.eps/4)/lam)
	}
	copy(d.x, xw)
	d.res.WarmStarted = true
	return true
}

// warmNormFrac is the fraction of K the warm-start ‖x‖₁ is rescaled
// under, leaving the dual exit to be re-earned on the new instance.
const warmNormFrac = 0.75

// rescaleClamped multiplies the unfrozen coordinates of xw by s and
// clamps them back up to the cold-start floor held in d.x.
func (d *decisionRun) rescaleClamped(xw []float64, s float64) {
	for i := range xw {
		if !d.frozen[i] {
			xw[i] = math.Max(xw[i]*s, d.x[i])
		}
	}
}

// ResumeDecisionPSDP continues an Algorithm 3.1 run from a snapshot
// taken on the same instance (Options.CaptureState fills
// DecisionResult.Final). The restored run behaves as if it had never
// stopped: iterate, step index, ratio averages, and certificate
// bookkeeping all carry over, and the iteration budget (MaxIter or the
// paper's R) counts the already-executed steps. The state's
// bookkeeping certifies only the instance that generated it, so set
// must be that instance; shape or eps mismatches are errors. For a
// perturbed instance use Options.WarmStart instead, which transfers
// only the iterate under a feasibility guard.
func ResumeDecisionPSDP(set ConstraintSet, eps float64, st *DecisionState, opts Options) (*DecisionResult, error) {
	if st == nil {
		return nil, errors.New("core: ResumeDecisionPSDP: nil state")
	}
	if opts.WarmStart != nil {
		return nil, errors.New("core: ResumeDecisionPSDP: cannot combine WarmStart with resume")
	}
	opts.continueFrom = st
	return DecisionPSDP(set, eps, opts)
}

package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/matrix"
)

func TestOnIterationObservesEveryStep(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	as, opt := orthogonalRankOne(4, 6, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	var seen []IterationInfo
	dr, err := DecisionPSDP(set.WithScale(opt), 0.25, Options{
		OnIteration: func(info IterationInfo) bool {
			seen = append(seen, info)
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != dr.Iterations {
		t.Fatalf("observed %d iterations, solver reports %d", len(seen), dr.Iterations)
	}
	// Telemetry invariants: T increments, ‖x‖₁ nondecreasing, λmax
	// nondecreasing (x only grows and the Aᵢ are PSD), ratios sane.
	for i, info := range seen {
		if info.T != i+1 {
			t.Fatalf("iteration numbering broken at %d: T=%d", i, info.T)
		}
		if info.MinRatio > info.MaxRatio {
			t.Fatalf("iteration %d: min ratio %v > max %v", i, info.MinRatio, info.MaxRatio)
		}
		if i > 0 {
			if info.XNorm1 < seen[i-1].XNorm1-1e-12 {
				t.Fatalf("iteration %d: ‖x‖₁ decreased", i)
			}
			if info.LambdaMax < seen[i-1].LambdaMax-1e-9 {
				t.Fatalf("iteration %d: λmax(Ψ) decreased", i)
			}
		}
	}
}

func TestOnIterationEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	as, opt := orthogonalRankOne(4, 6, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(set.WithScale(opt), 0.25, Options{
		OnIteration: func(info IterationInfo) bool { return info.T < 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Iterations != 5 {
		t.Fatalf("stopped after %d iterations, want 5", dr.Iterations)
	}
	if dr.Outcome != OutcomeInconclusive {
		t.Fatalf("outcome %v, want inconclusive on callback stop", dr.Outcome)
	}
	// Bounds remain valid certificates.
	if dr.Lower > 1+1e-6 {
		t.Fatalf("lower bound %v exceeds OPT after early stop", dr.Lower)
	}
	cert, err := VerifyDual(set.WithScale(opt), dr.DualX, 1e-8)
	if err != nil || !cert.Feasible {
		t.Fatalf("early-stop dual certificate invalid: %+v, %v", cert, err)
	}
}

func TestContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	as, opt := orthogonalRankOne(4, 6, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err = DecisionPSDP(set.WithScale(opt), 0.25, Options{
		Ctx: ctx,
		OnIteration: func(info IterationInfo) bool {
			calls++
			if calls == 3 {
				cancel()
			}
			return true
		},
	})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if calls > 4 {
		t.Fatalf("run continued %d iterations past cancellation", calls)
	}
}

func TestContextPreCancelled(t *testing.T) {
	set, err := NewDenseSet([]*matrix.Dense{matrix.Identity(2)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecisionPSDP(set, 0.2, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context not honored: %v", err)
	}
}

func TestInconclusiveOnTinyBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(57, 58))
	as, opt := orthogonalRankOne(4, 6, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(set.WithScale(opt), 0.25, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Iterations != 1 {
		t.Fatalf("iterations %d want 1", dr.Iterations)
	}
	// Even one iteration yields valid certificates.
	if dr.Lower > 1+1e-6 || dr.Upper < 1-1e-6 {
		t.Fatalf("one-iteration bracket [%v, %v] misses OPT 1", dr.Lower, dr.Upper)
	}
}

func TestTraceCapFreezesHeavyConstraints(t *testing.T) {
	// One heavy constraint (trace 100) and one light; with TraceCap 10
	// the heavy one must keep its initial value.
	as := []*matrix.Dense{
		matrix.Diag([]float64{100, 0}),
		matrix.Diag([]float64{0, 0.5}),
	}
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(set, 0.25, Options{TraceCap: 10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	x0 := 1.0 / (2 * 100)
	if dr.X[0] != x0 {
		t.Fatalf("capped constraint moved: x[0] = %v want %v", dr.X[0], x0)
	}
	if dr.X[1] <= 1.0/(2*0.5) {
		t.Fatalf("uncapped constraint did not move: x[1] = %v", dr.X[1])
	}
}

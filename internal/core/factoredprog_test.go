package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/chol"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

func TestFactoredProgramNormalizeIdentityC(t *testing.T) {
	// With C = I and b = 1 the factors pass through unchanged.
	q, err := sparse.NewCSC(3, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	fp := &FactoredProgram{CInvSqrt: matrix.Identity(3), Q: []*sparse.CSC{q}, B: []float64{1}}
	set, kept, err := fp.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || kept[0] != 0 {
		t.Fatalf("kept = %v", kept)
	}
	if !matrix.ApproxEqual(set.Q[0].ToDense(), q.ToDense(), 1e-12) {
		t.Fatal("identity normalization altered the factor")
	}
}

func TestFactoredProgramNormalizeScalesByB(t *testing.T) {
	q, err := sparse.NewCSC(2, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	fp := &FactoredProgram{CInvSqrt: matrix.Identity(2), Q: []*sparse.CSC{q}, B: []float64{4}}
	set, _, err := fp.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	// A' = QQᵀ/4: entry (0,0) = 4/4 = 1 → factor entry 1.
	if got := set.Q[0].ToDense().At(0, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("b-scaling wrong: %v", got)
	}
}

// The factored normalization must agree with the dense Appendix A
// normalization on the same program.
func TestFactoredProgramMatchesDenseNormalize(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	m := 5
	// Random PD C and its inverse square root.
	g := matrix.New(m, m)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	c := matrix.MulABT(g, g, nil)
	matrix.AddScaledIdentity(c, 0.5)
	cInv, _, err := chol.InvSqrtPSD(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Random factored constraints.
	var qs []*sparse.CSC
	var as []*matrix.Dense
	bs := []float64{2, 0.5, 1.5}
	for range bs {
		col := make([]float64, m)
		for j := range col {
			col[j] = rng.NormFloat64()
		}
		q, err := sparse.CSCFromColumns(m, [][]float64{col}, 0)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
		as = append(as, q.GramDense())
	}

	fp := &FactoredProgram{CInvSqrt: cInv, Q: qs, B: bs}
	fset, _, err := fp.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	dp := &Program{C: c, A: as, B: bs}
	dset, _, err := dp.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	dback, err := fset.Densify()
	if err != nil {
		t.Fatal(err)
	}
	for i := range bs {
		if !matrix.ApproxEqual(dback.A[i], dset.A[i], 1e-7) {
			t.Fatalf("constraint %d: factored and dense normalizations disagree", i)
		}
	}
}

func TestFactoredProgramValidation(t *testing.T) {
	q, _ := sparse.NewCSC(2, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	cases := []*FactoredProgram{
		{CInvSqrt: nil, Q: []*sparse.CSC{q}, B: []float64{1}},
		{CInvSqrt: matrix.New(2, 3), Q: []*sparse.CSC{q}, B: []float64{1}},
		{CInvSqrt: matrix.Identity(2), Q: nil, B: nil},
		{CInvSqrt: matrix.Identity(2), Q: []*sparse.CSC{q}, B: []float64{1, 2}},
		{CInvSqrt: matrix.Identity(2), Q: []*sparse.CSC{q}, B: []float64{-1}},
		{CInvSqrt: matrix.Identity(3), Q: []*sparse.CSC{q}, B: []float64{1}},
		{CInvSqrt: matrix.Identity(2), Q: []*sparse.CSC{q}, B: []float64{0}},
	}
	for i, fp := range cases {
		if _, _, err := fp.Normalize(0); err == nil {
			t.Fatalf("case %d: invalid factored program accepted", i)
		}
	}
}

func TestFactoredProgramEndToEnd(t *testing.T) {
	// Diagonal C = diag(4, 1), single rank-1 constraint A = e₀e₀ᵀ, b = 1:
	// normalized B = C^{-1/2}AC^{-1/2} = e₀e₀ᵀ/4; packing OPT = 1/λmax = 4.
	cInv := matrix.Diag([]float64{0.5, 1}) // C^{-1/2}
	q, err := sparse.NewCSC(2, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fp := &FactoredProgram{CInvSqrt: cInv, Q: []*sparse.CSC{q}, B: []float64{1}}
	set, _, err := fp.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.05, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Lower > 4*(1+1e-6) || sol.Upper < 4*(1-1e-6) {
		t.Fatalf("bracket [%v, %v] misses OPT 4", sol.Lower, sol.Upper)
	}
}

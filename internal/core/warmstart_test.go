package core

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func randomDenseSet(t *testing.T, n, m int, seed uint64) *DenseSet {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0x9e37))
	as, _ := identicalInstance(n, m, rng)
	// Re-randomize each constraint so the instance is not degenerate.
	for i := range as {
		g := randPSDDense(m, max(2, m/3), rng)
		as[i] = g
	}
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func sameBitsVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// A warm state the guard cannot repair must produce exactly the cold
// run — bitwise, not just in outcome: the fallback installs the
// untouched cold-start point.
func TestWarmStartGuardFallsBackCold(t *testing.T) {
	set := randomDenseSet(t, 6, 8, 101)
	scaled := set.WithScale(0.4)
	opts := Options{Seed: 3}
	cold, err := DecisionPSDP(scaled, 0.25, opts)
	if err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		st   *DecisionState
	}{
		{"nil-x", &DecisionState{N: 6, M: 8}},
		{"wrong-n", &DecisionState{N: 5, M: 8, X: make([]float64, 5)}},
		{"wrong-m", &DecisionState{N: 6, M: 9, X: make([]float64, 6)}},
		{"nan", &DecisionState{N: 6, M: 8, X: []float64{1, math.NaN(), 1, 1, 1, 1}}},
		{"negative", &DecisionState{N: 6, M: 8, X: []float64{1, -2, 1, 1, 1, 1}}},
		{"inf", &DecisionState{N: 6, M: 8, X: []float64{1, math.Inf(1), 1, 1, 1, 1}}},
	}
	for _, tc := range bad {
		o := opts
		o.WarmStart = tc.st
		dr, err := DecisionPSDP(scaled, 0.25, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if dr.WarmStarted {
			t.Errorf("%s: guard accepted an unusable state", tc.name)
		}
		if dr.Outcome != cold.Outcome || dr.Iterations != cold.Iterations || !sameBitsVec(dr.X, cold.X) {
			t.Errorf("%s: cold fallback is not bitwise the cold run", tc.name)
		}
	}
}

// An accepted warm start must satisfy the guard's invariants at entry:
// ‖x‖₁ under the dual-exit headroom and λ_max(Ψ) within the starting
// envelope, with every coordinate at or above the cold-start floor.
func TestWarmStartGuardInvariants(t *testing.T) {
	set := randomDenseSet(t, 6, 8, 77)
	scaled := set.WithScale(0.4)
	eps := 0.25
	opts := Options{Seed: 5, CaptureState: true}
	base, err := DecisionPSDP(scaled, eps, opts)
	if err != nil {
		t.Fatal(err)
	}

	d, err := newDecisionRun(scaled, eps, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer d.orc.release()
	floor := append([]float64(nil), d.x...)
	if !d.applyWarmStart(base.Final) {
		t.Fatal("guard rejected the state of an identical instance")
	}
	sum := 0.0
	for i, v := range d.x {
		if v < floor[i] {
			t.Fatalf("x[%d] = %v below cold-start floor %v", i, v, floor[i])
		}
		sum += v
	}
	if sum >= d.prm.K {
		t.Fatalf("warm ‖x‖₁ = %v not under K = %v", sum, d.prm.K)
	}
	lam, err := lambdaMaxPsiOf(scaled, d.x)
	if err != nil {
		t.Fatal(err)
	}
	if lam > 1+eps+1e-9 {
		t.Fatalf("warm λ_max(Ψ) = %v exceeds the starting envelope %v", lam, 1+eps)
	}
}

// Resume continues the same run: an iteration-capped inconclusive run,
// resumed with the cap lifted, must reach the same decision as an
// uninterrupted run, with the step index carried across the boundary.
func TestResumeContinuesInconclusiveRun(t *testing.T) {
	set := randomDenseSet(t, 6, 8, 55)
	scaled := set.WithScale(0.4)
	eps := 0.25
	full, err := DecisionPSDP(scaled, eps, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations < 10 {
		t.Skipf("instance solved in %d iterations; too short to interrupt", full.Iterations)
	}

	capped, err := DecisionPSDP(scaled, eps, Options{Seed: 3, MaxIter: 5, CaptureState: true})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Outcome != OutcomeInconclusive {
		t.Fatalf("capped run decided %v in 5 iterations", capped.Outcome)
	}
	if capped.Final == nil || capped.Final.T != 5 {
		t.Fatalf("capped state T = %v, want 5", capped.Final)
	}

	resumed, err := ResumeDecisionPSDP(scaled, eps, capped.Final, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Outcome != full.Outcome {
		t.Fatalf("resumed run decided %v, uninterrupted %v", resumed.Outcome, full.Outcome)
	}
	if resumed.Iterations <= 5 {
		t.Fatalf("resumed run reports %d iterations, want the continued total", resumed.Iterations)
	}
	if !(resumed.Lower <= resumed.Upper) {
		t.Fatalf("resumed bracket inverted: [%v, %v]", resumed.Lower, resumed.Upper)
	}
}

// A resume whose state does not match the instance must error loudly:
// the carried bookkeeping certifies only the generating instance, so a
// silent cold start here would be a correctness bug factory.
func TestResumeValidation(t *testing.T) {
	set := randomDenseSet(t, 6, 8, 42)
	scaled := set.WithScale(0.4)
	base, err := DecisionPSDP(scaled, 0.25, Options{Seed: 3, CaptureState: true})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ResumeDecisionPSDP(scaled, 0.25, nil, Options{}); err == nil {
		t.Error("nil state accepted")
	}
	if _, err := ResumeDecisionPSDP(scaled, 0.3, base.Final, Options{}); err == nil ||
		!strings.Contains(err.Error(), "eps") {
		t.Errorf("eps mismatch accepted: %v", err)
	}
	other := randomDenseSet(t, 7, 8, 43).WithScale(0.4)
	if _, err := ResumeDecisionPSDP(other, 0.25, base.Final, Options{}); err == nil {
		t.Error("shape mismatch accepted")
	}
	bad := base.Final.Clone()
	bad.X[0] = math.NaN()
	if _, err := ResumeDecisionPSDP(scaled, 0.25, bad, Options{}); err == nil {
		t.Error("NaN state accepted")
	}
	trunc := base.Final.Clone()
	trunc.AvgSum = trunc.AvgSum[:len(trunc.AvgSum)-1]
	if _, err := ResumeDecisionPSDP(scaled, 0.25, trunc, Options{}); err == nil ||
		!strings.Contains(err.Error(), "avgSum") {
		t.Errorf("truncated AvgSum accepted: %v", err)
	}
	o := Options{WarmStart: base.Final}
	if _, err := ResumeDecisionPSDP(scaled, 0.25, base.Final, o); err == nil {
		t.Error("combined WarmStart+resume accepted")
	}
}

// CaptureState snapshots must be deep copies that round out the run:
// the final iterate bit-for-bit, the step index, and the instance
// shape, detached from the run's workspace buffers.
func TestCaptureStateContents(t *testing.T) {
	set := randomDenseSet(t, 6, 8, 33)
	scaled := set.WithScale(0.4)
	dr, err := DecisionPSDP(scaled, 0.25, Options{Seed: 3, CaptureState: true})
	if err != nil {
		t.Fatal(err)
	}
	st := dr.Final
	if st == nil {
		t.Fatal("CaptureState left Final nil")
	}
	if st.N != 6 || st.M != 8 || st.Eps != 0.25 || st.T != dr.Iterations {
		t.Fatalf("state header wrong: %+v", st)
	}
	if !sameBitsVec(st.X, dr.X) {
		t.Fatal("state X differs from result X")
	}
	if len(st.AvgSum) != 6 {
		t.Fatalf("AvgSum length %d", len(st.AvgSum))
	}
	cl := st.Clone()
	cl.X[0] = -1
	if st.X[0] == -1 {
		t.Fatal("Clone aliases X")
	}
	// Without CaptureState the snapshot must not be taken.
	plain, err := DecisionPSDP(scaled, 0.25, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Final != nil {
		t.Fatal("Final set without CaptureState")
	}
}

// randPSDDense is a local PSD generator (G·Gᵀ) for warm-start tests.
func randPSDDense(m, rank int, rng *rand.Rand) *matrix.Dense {
	g := matrix.New(m, rank)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return matrix.MulABT(g, g, nil)
}

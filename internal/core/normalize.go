package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chol"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// Program is the general positive SDP of the paper's equation (1.1):
//
//	minimize    C • Y
//	subject to  Aᵢ • Y ≥ bᵢ,  i = 1..n,   Y ≽ 0,
//
// with C and every Aᵢ symmetric PSD and bᵢ ≥ 0.
type Program struct {
	C *matrix.Dense
	A []*matrix.Dense
	B []float64
}

// NormalizeMap records how a Program was mapped to normalized form so
// solutions can be mapped back.
type NormalizeMap struct {
	// CInvSqrt is the (pseudo-)inverse square root of C.
	CInvSqrt *matrix.Dense
	// Rank is the numerical rank of C.
	Rank int
	// Kept lists the original constraint indices that survived (bᵢ > 0).
	Kept []int
	// B holds the surviving right-hand sides.
	B []float64
}

// Normalize applies the Appendix A transformation
//
//	Bᵢ = (1/bᵢ)·C^{-1/2} Aᵢ C^{-1/2},
//
// producing the normalized covering/packing pair of Figure 2, whose
// packing optimum equals the original SDP optimum. Constraints with
// bᵢ = 0 are dropped (they are implied by Y ≽ 0, as the paper notes).
// tol controls the pseudo-inverse eigenvalue cutoff (0 means 1e-12).
func (p *Program) Normalize(tol float64) (*DenseSet, *NormalizeMap, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	cInv, rank, err := chol.InvSqrtPSD(p.C, tol)
	if err != nil {
		return nil, nil, fmt.Errorf("core: normalizing C: %w", err)
	}
	if rank == 0 {
		return nil, nil, errors.New("core: C is the zero matrix; objective degenerate")
	}
	nm := &NormalizeMap{CInvSqrt: cInv, Rank: rank}
	var bs []*matrix.Dense
	for i, ai := range p.A {
		if p.B[i] == 0 {
			continue
		}
		bi := matrix.MulAB(matrix.MulAB(cInv, ai, nil), cInv, nil)
		bi.Symmetrize() // kill round-off asymmetry from the two products
		matrix.Scale(bi, 1/p.B[i], bi)
		bs = append(bs, bi)
		nm.Kept = append(nm.Kept, i)
		nm.B = append(nm.B, p.B[i])
	}
	if len(bs) == 0 {
		return nil, nil, errors.New("core: all right-hand sides are zero; optimum is 0")
	}
	set, err := NewDenseSet(bs)
	if err != nil {
		return nil, nil, err
	}
	return set, nm, nil
}

// RecoverCovering maps a trace-normalized covering witness for the
// normalized instance at scale theta back to an (approximately)
// feasible Y for the original program:
//
//	Y = s · C^{-1/2} · Z · C^{-1/2},  s = 1/min_i (θ·Bᵢ • Z),
//
// which satisfies Aᵢ • Y ≥ bᵢ for every kept constraint (up to the
// accuracy of Z's covering values). Returns Y and the achieved
// objective C • Y.
func (nm *NormalizeMap) RecoverCovering(set *DenseSet, z *matrix.Dense, theta float64, c *matrix.Dense) (*matrix.Dense, float64, error) {
	if z == nil {
		return nil, 0, errors.New("core: RecoverCovering: nil covering matrix")
	}
	minDot := math.Inf(1)
	for i := 0; i < set.N(); i++ {
		d := theta * matrix.Dot(set.A[i], z)
		if d < minDot {
			minDot = d
		}
	}
	if minDot <= 0 {
		return nil, 0, errors.New("core: covering witness has a nonpositive constraint value")
	}
	y := matrix.MulAB(matrix.MulAB(nm.CInvSqrt, z, nil), nm.CInvSqrt, nil)
	y.Symmetrize()
	matrix.Scale(y, theta/minDot, y)
	obj := matrix.Dot(c, y)
	return y, obj, nil
}

func (p *Program) validate() error {
	if p.C == nil || len(p.A) == 0 {
		return errors.New("core: program needs C and at least one constraint")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("core: %d constraint matrices but %d right-hand sides", len(p.A), len(p.B))
	}
	if !p.C.IsSquare() {
		return errors.New("core: C must be square")
	}
	m := p.C.R
	tol := 1e-8 * math.Max(1, p.C.MaxAbs())
	if !p.C.IsSymmetric(tol) {
		return errors.New("core: C must be symmetric")
	}
	for i, ai := range p.A {
		if ai.R != m || ai.C != m {
			return fmt.Errorf("core: constraint %d is %dx%d, want %dx%d", i, ai.R, ai.C, m, m)
		}
		if p.B[i] < 0 || math.IsNaN(p.B[i]) {
			return fmt.Errorf("core: b[%d] = %v must be nonnegative", i, p.B[i])
		}
	}
	return nil
}

// FactoredProgram is the prefactored general positive SDP the paper's
// Corollary 1.2 assumes as input: constraint factors Aᵢ = QᵢQᵢᵀ plus
// C^{-1/2} supplied directly ("the matrices Aᵢ are given as QᵢQᵢᵀ and
// the matrix C^{-1/2} is given").
type FactoredProgram struct {
	// CInvSqrt is C^{-1/2} (symmetric PSD). Use Identity for C = I.
	CInvSqrt *matrix.Dense
	// Q holds the constraint factors.
	Q []*sparse.CSC
	// B holds the right-hand sides bᵢ ≥ 0.
	B []float64
}

// Normalize produces the normalized packing set with factors
// Q'ᵢ = C^{-1/2}·Qᵢ/√bᵢ (paper Appendix A: Bᵢ = (C^{-1/2}Qᵢ)(C^{-1/2}Qᵢ)ᵀ/bᵢ).
// Constraints with bᵢ = 0 are dropped. The products C^{-1/2}·Qᵢ are in
// general dense columns; entries below dropTol (0 keeps everything) are
// pruned to preserve sparsity when C^{-1/2} is structured.
func (p *FactoredProgram) Normalize(dropTol float64) (*FactoredSet, []int, error) {
	if p.CInvSqrt == nil || !p.CInvSqrt.IsSquare() {
		return nil, nil, errors.New("core: FactoredProgram needs square C^{-1/2}")
	}
	if len(p.Q) == 0 || len(p.Q) != len(p.B) {
		return nil, nil, fmt.Errorf("core: FactoredProgram has %d factors and %d rhs", len(p.Q), len(p.B))
	}
	m := p.CInvSqrt.R
	var out []*sparse.CSC
	var kept []int
	for i, qi := range p.Q {
		if p.B[i] < 0 || math.IsNaN(p.B[i]) {
			return nil, nil, fmt.Errorf("core: b[%d] = %v must be nonnegative", i, p.B[i])
		}
		if p.B[i] == 0 {
			continue
		}
		if qi.R != m {
			return nil, nil, fmt.Errorf("core: factor %d has %d rows, want %d", i, qi.R, m)
		}
		inv := 1 / math.Sqrt(p.B[i])
		cols := make([][]float64, qi.C)
		for j := 0; j < qi.C; j++ {
			col := make([]float64, m)
			for k := qi.ColPtr[j]; k < qi.ColPtr[j+1]; k++ {
				// col += val · (C^{-1/2})[:, row]; C^{-1/2} symmetric so
				// column = row slice.
				row := p.CInvSqrt.Row(qi.Row[k])
				matrix.VecAXPY(col, qi.Val[k]*inv, row)
			}
			cols[j] = col
		}
		q, err := sparse.CSCFromColumns(m, cols, dropTol)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, q)
		kept = append(kept, i)
	}
	if len(out) == 0 {
		return nil, nil, errors.New("core: all right-hand sides are zero; optimum is 0")
	}
	set, err := NewFactoredSet(out)
	if err != nil {
		return nil, nil, err
	}
	return set, kept, nil
}

// SolveCovering runs the full paper pipeline on a general positive SDP:
// Appendix A normalization, then the Lemma 2.2 binary search over
// Algorithm 3.1. The returned value brackets the optimum of the
// original program (which equals the normalized packing optimum).
// When opts.TrackPrimalMatrix is set (dense oracle), a feasible
// covering witness Y for the original program is also recovered.
type CoveringSolution struct {
	// Lower and Upper bracket the optimum C • Y*.
	Lower, Upper float64
	// DualX is the packing witness for the normalized instance.
	DualX []float64
	// Y is a feasible covering matrix for the original program (nil if
	// no primal witness was tracked).
	Y *matrix.Dense
	// Objective is C • Y when Y is present.
	Objective float64
	// DecisionCalls and TotalIterations mirror Solution.
	DecisionCalls, TotalIterations int
}

// SolveCovering approximates the positive SDP p to relative accuracy eps.
func SolveCovering(p *Program, eps float64, opts Options) (*CoveringSolution, error) {
	set, nm, err := p.Normalize(0)
	if err != nil {
		return nil, err
	}
	sol, err := MaximizePacking(set, eps, opts)
	if err != nil {
		return nil, err
	}
	cs := &CoveringSolution{
		Lower:           sol.Lower,
		Upper:           sol.Upper,
		DualX:           sol.X,
		DecisionCalls:   sol.DecisionCalls,
		TotalIterations: sol.TotalIterations,
	}
	if sol.Y != nil {
		y, obj, err := nm.RecoverCovering(set, sol.Y, sol.YScale, p.C)
		if err == nil {
			cs.Y = y
			cs.Objective = obj
		}
	}
	return cs, nil
}

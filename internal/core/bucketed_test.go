package core

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBucketSteps(t *testing.T) {
	// At the threshold: exactly one step.
	if got := bucketSteps(1.2, 1.2, 0.2, 0.01); got != 1 {
		t.Fatalf("at threshold: %d want 1", got)
	}
	// Far below: many steps, capped.
	deep := bucketSteps(1e-12, 1.2, 0.2, 0.01)
	limit := int(math.Ceil(0.25 / 0.01))
	if deep != limit {
		t.Fatalf("deep bucket: %d want cap %d", deep, limit)
	}
	// Monotone: smaller ratio never takes fewer steps.
	prev := 0
	for _, r := range []float64{1.2, 0.6, 0.3, 0.1, 0.01} {
		k := bucketSteps(r, 1.2, 0.2, 0.001)
		if k < prev {
			t.Fatalf("bucket steps not monotone at r=%v", r)
		}
		prev = k
	}
	// Zero/negative ratio handled.
	if bucketSteps(0, 1.2, 0.2, 0.01) < 1 {
		t.Fatal("zero ratio broke bucketing")
	}
}

// The bucketed variant must (a) still produce certified-correct
// brackets and (b) need at most as many iterations as the plain variant
// up to a small factor — on typical instances it needs far fewer.
func TestBucketedDecisionCorrectAndFaster(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	as, opt := orthogonalRankOne(6, 9, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	scaled := set.WithScale(opt)

	plain, err := DecisionPSDP(scaled, 0.2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DecisionPSDP(scaled, 0.2, Options{Bucketed: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, dr := range map[string]*DecisionResult{"plain": plain, "bucketed": fast} {
		if dr.Lower > 1+1e-6 || dr.Upper < 1-1e-6 {
			t.Fatalf("%s: bracket [%v, %v] misses OPT 1", name, dr.Lower, dr.Upper)
		}
		cert, err := VerifyDual(scaled, dr.DualX, 1e-7)
		if err != nil || !cert.Feasible {
			t.Fatalf("%s: certificate failed: %+v %v", name, cert, err)
		}
	}
	if fast.Iterations > plain.Iterations {
		t.Fatalf("bucketing slowed the solver: %d vs %d iterations", fast.Iterations, plain.Iterations)
	}
	if fast.Iterations*3 > plain.Iterations*2 {
		t.Logf("bucketing saved little on this instance: %d vs %d", fast.Iterations, plain.Iterations)
	}
}

func TestBucketedMaximizeMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	as, opt := orthogonalRankOne(5, 8, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	solPlain, err := MaximizePacking(set, 0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solFast, err := MaximizePacking(set, 0.1, Options{Bucketed: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, sol := range map[string]*Solution{"plain": solPlain, "bucketed": solFast} {
		if sol.Lower > opt*(1+1e-6) || sol.Upper < opt*(1-1e-6) {
			t.Fatalf("%s: bracket [%v, %v] misses OPT %v", name, sol.Lower, sol.Upper, opt)
		}
	}
	if solFast.TotalIterations > 2*solPlain.TotalIterations {
		t.Fatalf("bucketed optimizer much slower: %d vs %d", solFast.TotalIterations, solPlain.TotalIterations)
	}
}

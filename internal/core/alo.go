package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/matrix"
)

// aloRun is the EngineALO stepper: the optimization view of
// Allen-Zhu–Lee–Orecchia (arXiv:1507.02259) realized over the same
// oracles, workspaces, and fixed-reduction-tree kernels as the MMW
// engine. Instead of Algorithm 3.1's thresholded (1+α) bumps on the
// below-threshold set, every coordinate follows the truncated gradient
// of the smoothed packing objective
//
//	f_μ(x) = μ·Tr exp((Ψ(x) − I)/μ) − 1ᵀx,   μ = ε/(4(1+log N)),
//
// whose gradient is ∇ᵢ f_μ = Aᵢ • exp((Ψ−I)/μ) − 1. The multiplicative
// step xᵢ ← xᵢ·e^{−α·T(∇ᵢ)} with the truncation T(v) = clamp(v, ±1)
// and α = μ/2 needs only O(ε⁻² log² N) iterations — one 1/ε factor
// better than MMW's R — because the per-iteration growth rate e^α is
// Θ(ε/log N) instead of MMW's 1+Θ(ε²/log N).
//
// The engine reuses the existing exp(Ψ)-oracles unchanged by feeding
// them the scaled iterate xs = x/μ: Ψ(x/μ) = Ψ(x)/μ, so the oracle's
// normalized ratios rᵢ = Aᵢ•exp(Ψ/μ)/Tr and its LogTrW reconstruct the
// absolute gradient in log space,
//
//	∇ᵢ = rᵢ·exp(LogTrW − 1/μ) − 1 = exp(LogTrW − 1/μ + ln rᵢ) − 1,
//
// without ever materializing the e^{1/μ}-scale factor (which would
// overflow at tight ε). All certificate bookkeeping (running ratio
// average, best dual snapshot, weak-duality upper bound) is inherited
// from decisionRun — every density matrix exp(Ψ(xs))/Tr is a trace-1
// covering witness and every iterate x/λ_max(Ψ(x)) a feasible packing
// vector, for any dynamics — so the certified Lower/Upper contract of
// DecisionPSDP holds bit-for-bit the same way.
type aloRun struct {
	*decisionRun
	// mu is the smoothing parameter, alpha the step size, invMu = 1/mu.
	mu, alpha, invMu float64
	// xs = x/mu is the vector the oracle holds; updated in place (the
	// operator oracles read it through a retained pointer, the dense
	// oracle through update's incremental deltas).
	xs []float64
}

// aloIterCap is the ALO engine's iteration budget,
//
//	T = ⌈64·(1+log N)²/ε²⌉ = O(ε⁻² log² N),
//
// covering both the multiplicative growth phase (≈ log(dynamic
// range)/α iterations) and the 1/(αε) mirror-descent convergence term,
// with the same overflow clamp as Params.R.
func aloIterCap(logN, eps float64) int {
	tf := math.Ceil(64 * (1 + logN) * (1 + logN) / (eps * eps))
	if tf >= float64(math.MaxInt) {
		return math.MaxInt
	}
	return int(tf)
}

// ALOIterCap exposes the ALO iteration budget to sibling packages that
// run ALO-style dynamics over the RatioOracle (internal/mixed).
func ALOIterCap(logN, eps float64) int { return aloIterCap(logN, eps) }

// aloDualExitRatio is the certified dual ratio at which the ALO engine
// answers "accept": some iterate x/λ_max(Ψ(x)) has packing value
// ≥ 1 − ε, i.e. OPT ≥ 1 − ε — inside the same O(ε) accept band MMW's
// ‖x‖₁ > K exit certifies (its exit ratio is ≥ 1/(1+10ε)).
func aloDualExitRatio(eps float64) float64 { return 1 - eps }

// aloTruncLog is ln 2: a log-space gradient t = LogTrW − 1/μ + ln rᵢ at
// or above it means exp(t) − 1 ≥ 1, so the truncated feedback is +1
// without evaluating the (possibly overflowing) exponential.
const aloTruncLog = 0.6931471805599453

func newALORun(set ConstraintSet, eps float64, opts Options) (*aloRun, error) {
	d, err := newRunBase(set, eps, opts)
	if err != nil {
		return nil, err
	}
	d.engineName = EngineNameALO
	mu := eps / (4 * (1 + d.prm.LogN))
	a := &aloRun{decisionRun: d, mu: mu, alpha: mu / 2, invMu: 1 / mu}
	d.lamScale = mu
	d.setIterCap(aloIterCap(d.prm.LogN, eps))
	if err := d.installStart(); err != nil {
		d.orc.release()
		return nil, err
	}
	a.xs = make([]float64, d.n)
	matrix.VecScale(a.xs, a.invMu, d.x)
	if err := d.orc.init(a.xs); err != nil {
		return nil, err
	}
	d.orcX = a.xs
	return a, nil
}

// Step runs one ALO iteration: oracle ratios at xs = x/μ, the shared
// certificate bookkeeping, the truncated-gradient multiplicative
// update on every unfrozen coordinate, and the exit checks. Like the
// MMW step it is allocation-free in steady state (the regression tests
// pin it) and bitwise deterministic across GOMAXPROCS — the only
// reductions are the fixed block trees of the shared kernels, and the
// per-coordinate gradient loop is sequential.
func (a *aloRun) Step() error {
	if a.opts.Ctx != nil {
		if err := a.opts.Ctx.Err(); err != nil {
			return fmt.Errorf("core: iteration %d: %w", a.t+1, err)
		}
	}
	a.t++
	ph := a.opts.Phases
	var mark time.Time
	if ph != nil {
		mark = time.Now()
	}
	r, info, err := a.orc.ratios()
	if err != nil {
		return fmt.Errorf("core: iteration %d: %w", a.t, err)
	}
	if ph != nil {
		now := time.Now()
		ph.OracleNS += now.Sub(mark).Nanoseconds()
		mark = now
	}
	// The oracle sees Ψ(x)/μ; scale its spectral estimate back.
	lam := a.mu * info.LambdaMax
	if lam > a.res.MaxPsiNorm {
		a.res.MaxPsiNorm = lam
	}
	matrix.VecAXPY(a.avg, 1, r)
	minR := matrix.VecMin(r)
	if minR > a.bestMinR {
		a.bestMinR = minR
	}
	if l := math.Max(lam, 1); l > 0 {
		if ratio := matrix.VecSum(a.x) / l; ratio > a.bestDualRatio {
			a.bestDualRatio = ratio
			a.bestDualX = append(a.bestDualX[:0], a.x...)
			a.haveDualSnap = true
		}
	}
	if a.opts.TrackPrimalMatrix {
		if p := a.orc.probability(); p != nil {
			if a.ySum == nil {
				a.ySum = matrix.New(a.m, a.m)
			}
			matrix.AXPY(a.ySum, 1, p)
		}
	}

	// Truncated gradient in log space, then the multiplicative step on
	// every unfrozen coordinate. A zero ratio means the gradient is
	// exactly −1 (the constraint is invisible in the current density
	// matrix, so its coordinate grows at full rate).
	logShift := info.LogTrW - a.invMu
	a.b = a.b[:0]
	a.mults = a.mults[:0]
	grew := 0
	for i := 0; i < a.n; i++ {
		if a.frozen[i] {
			continue
		}
		v := -1.0
		if r[i] > 0 {
			if t := logShift + math.Log(r[i]); t >= aloTruncLog {
				v = 1
			} else if g := math.Expm1(t); g > -1 {
				v = g
			}
		}
		if v == 0 {
			continue
		}
		if v < 0 {
			grew++
		}
		mult := math.Exp(-a.alpha * v)
		a.x[i] *= mult
		a.b = append(a.b, i)
		a.mults = append(a.mults, mult)
	}
	if ph != nil {
		now := time.Now()
		ph.BookkeepNS += now.Sub(mark).Nanoseconds()
		mark = now
	}
	if len(a.b) > 0 {
		matrix.VecScale(a.xs, a.invMu, a.x)
		// Scaling by 1/μ commutes with the per-coordinate multipliers,
		// so the oracle's incremental update sees consistent (mults, xs).
		if err := a.orc.update(a.b, a.mults, a.xs); err != nil {
			return err
		}
	}
	if ph != nil {
		ph.UpdateNS += time.Since(mark).Nanoseconds()
		ph.Iterations++
	}

	if a.opts.OnIteration != nil {
		cont := a.opts.OnIteration(IterationInfo{
			T:         a.t,
			XNorm1:    matrix.VecSum(a.x),
			LambdaMax: lam,
			MinRatio:  minR,
			MaxRatio:  matrix.VecMax(r),
			Updated:   len(a.b),
		})
		if !cont {
			a.done = true
			return nil
		}
	}

	if !a.opts.TheoryExact {
		// Dual exit: a certified iterate reached packing value 1−ε.
		if a.bestDualRatio >= aloDualExitRatio(a.eps) {
			a.res.Outcome = OutcomeDual
			a.done = true
			return nil
		}
		// Primal exits, shared with MMW: the running-average density
		// matrix covers, or the dynamics stalled (no coordinate grew)
		// with a single density matrix already certifying Upper ≤ ~1.
		minAvg := matrix.VecMin(a.avg) / float64(a.t)
		if minAvg >= 1-a.slack {
			a.res.Outcome = OutcomePrimal
			a.done = true
			return nil
		}
		if grew == 0 && minR >= 1 {
			a.res.Outcome = OutcomePrimal
			a.done = true
			return nil
		}
	}
	return nil
}

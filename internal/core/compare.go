package core

import (
	"errors"

	"repro/internal/parallel"
)

// CompareOracles evaluates the per-iteration ratios rᵢ = exp(Ψ)•Aᵢ/Tr[exp(Ψ)]
// on the same dual vector through both the JL-sketched factored oracle
// (Theorem 4.1's bigDotExp) and the exact dense oracle, returning both
// vectors. It is the validation harness for experiment E6: the two sets
// must represent the same constraints. The probe point is
// xᵢ = 4/(n·Tr[Aᵢ]), a few multiplicative steps into a typical run, so
// Ψ has nontrivial spectrum. The Stats recorder (may be nil) sees only
// the factored oracle's work.
func CompareOracles(dense *DenseSet, fact *FactoredSet, sketchEps float64, seed uint64, st *parallel.Stats) (jl, exact []float64, err error) {
	if dense.N() != fact.N() || dense.Dim() != fact.Dim() {
		return nil, nil, errors.New("core: CompareOracles: sets differ in shape")
	}
	n := dense.N()
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		tr := dense.Trace(i)
		if tr <= 0 {
			return nil, nil, errors.New("core: CompareOracles: zero-trace constraint")
		}
		x[i] = 4 / (float64(n) * tr)
	}

	fo := newOpJLOracle(fact, sketchEps, seed, st, nil)
	if err := fo.init(x); err != nil {
		return nil, nil, err
	}
	jl, _, err = fo.ratios()
	if err != nil {
		return nil, nil, err
	}

	do := newDenseOracle(dense, nil, nil)
	if err := do.init(x); err != nil {
		return nil, nil, err
	}
	exact, _, err = do.ratios()
	if err != nil {
		return nil, nil, err
	}
	return jl, exact, nil
}

package core

import (
	"fmt"
)

// EngineKind selects the iteration dynamics behind DecisionPSDP and
// MaximizePacking. The zero value is EngineMMW — the paper's Algorithm
// 3.1 — so existing callers (and every committed golden bit pattern)
// are untouched by the engine split. EngineAuto is an explicit opt-in
// that picks per instance; see ResolveEngine for the rule.
type EngineKind int

const (
	// EngineMMW is the matrix-multiplicative-weights decision loop of
	// Peng–Tangwongsan Algorithm 3.1: R = O(ε⁻³ log² N) iterations,
	// coordinate steps of (1+α) on the below-threshold set B. The
	// reference engine and the default.
	EngineMMW EngineKind = iota
	// EngineALO realizes the optimization view of Allen-Zhu–Lee–
	// Orecchia (arXiv:1507.02259) over the same oracles and workspaces:
	// truncated gradient descent on the smoothed objective
	// f_μ(x) = μ·Tr exp((Ψ(x)−I)/μ) − 1ᵀx with μ = Θ(ε/log N), cutting
	// the iteration budget to O(ε⁻² log² N). At tight ε its growth rate
	// per iteration is ~(1/ε)× MMW's, which is where it wins.
	EngineALO
	// EngineAuto resolves to MMW or ALO per instance (ε, n,
	// representation); see ResolveEngine.
	EngineAuto
)

// Engine state tags stored in DecisionState.Engine. The empty string is
// accepted as EngineNameMMW for states captured before the engine split.
const (
	EngineNameMMW = "mmw"
	EngineNameALO = "alo"
)

// String implements fmt.Stringer ("mmw", "alo", "auto").
func (k EngineKind) String() string {
	switch k {
	case EngineMMW:
		return EngineNameMMW
	case EngineALO:
		return EngineNameALO
	case EngineAuto:
		return "auto"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// ParseEngine maps the spelled-out engine names CLIs and config files
// use to EngineKind: "mmw" (or "", the default), "alo", "auto".
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "", EngineNameMMW:
		return EngineMMW, nil
	case EngineNameALO:
		return EngineALO, nil
	case "auto":
		return EngineAuto, nil
	}
	return EngineMMW, fmt.Errorf("core: unknown engine %q (want mmw, alo, or auto)", s)
}

// autoEngineEps is the ε at and below which EngineAuto switches to ALO:
// the point where MMW's ε⁻³ iteration budget starts to dominate ALO's
// larger per-iteration cost (every coordinate moves every step, and the
// operator oracles exponentiate at the larger norm ‖Ψ‖/μ).
const autoEngineEps = 0.1

// autoEngineDenseMinN keeps tiny dense instances on MMW under
// EngineAuto: both engines pay the same m³ eigendecomposition per
// iteration there, and MMW's sparse |B|-coordinate updates make its
// iterations strictly cheaper, so the crossover needs enough
// constraints for the iteration-count saving to pay.
const autoEngineDenseMinN = 8

// ResolveEngine resolves EngineAuto to a concrete engine for an
// instance: ALO when ε is tight enough that MMW's O(ε⁻³) budget
// dominates (ε ≤ 0.1), except on dense instances too small for ALO's
// denser per-iteration updates to be worth it; MMW otherwise. Concrete
// kinds pass through unchanged. The rule is deterministic in
// (ε, n, representation), which lets serving layers fold the resolved
// engine into content digests.
func ResolveEngine(kind EngineKind, set ConstraintSet, eps float64) EngineKind {
	if kind != EngineAuto {
		return kind
	}
	if eps > autoEngineEps {
		return EngineMMW
	}
	if _, dense := set.(*DenseSet); dense && set.N() < autoEngineDenseMinN {
		return EngineMMW
	}
	return EngineALO
}

// Engine is one live decision run behind DecisionPSDP: a stepper over a
// constraint set's oracle (PsiOperator or dense) drawing all scratch
// from a work.Workspace. Implementations are the mmw decisionRun and
// the alo aloRun; the interface is sealed (abort is unexported) so the
// certificate bookkeeping contract stays inside this package.
type Engine interface {
	// Step advances one iteration; the engine flags itself done when a
	// certificate fires or an observer stops the run.
	Step() error
	// Done reports whether the run has terminated (certificate, observer
	// stop, or iteration cap).
	Done() bool
	// Snapshot deep-copies the resumable run state, tagged with the
	// engine's name.
	Snapshot() *DecisionState
	// Restore reinstates a snapshot taken by the SAME engine on the same
	// instance; a cross-engine state is an error, never a silent
	// restore.
	Restore(st *DecisionState) error
	// Certify assembles the DecisionResult with certified bounds and
	// releases every oracle buffer back to the workspace.
	Certify() (*DecisionResult, error)
	// abort releases oracle buffers after a Step error (no result).
	abort()
}

// newEngine builds the engine selected by opts.Engine (EngineAuto
// resolved per instance) over set at accuracy eps.
func newEngine(set ConstraintSet, eps float64, opts Options) (Engine, error) {
	switch ResolveEngine(opts.Engine, set, eps) {
	case EngineMMW:
		return newDecisionRun(set, eps, opts)
	case EngineALO:
		return newALORun(set, eps, opts)
	default:
		return nil, fmt.Errorf("core: unknown engine kind %d", opts.Engine)
	}
}

// legacyEngineName maps a DecisionState.Engine tag to its canonical
// form: states captured before the engine split carry "" and belong to
// the only engine that existed, MMW.
func legacyEngineName(tag string) string {
	if tag == "" {
		return EngineNameMMW
	}
	return tag
}

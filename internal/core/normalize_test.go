package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/matrix"
)

func TestNormalizeIdentityC(t *testing.T) {
	// With C = I and bᵢ = 1 the normalized set is just the Aᵢ.
	rng := rand.New(rand.NewPCG(1, 2))
	as, _ := orthogonalRankOne(3, 4, rng)
	prog := &Program{C: matrix.Identity(4), A: as, B: []float64{1, 1, 1}}
	set, nm, err := prog.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Rank != 4 || len(nm.Kept) != 3 {
		t.Fatalf("rank=%d kept=%v", nm.Rank, nm.Kept)
	}
	for i := range as {
		if !matrix.ApproxEqual(set.A[i], as[i], 1e-9) {
			t.Fatalf("constraint %d altered by identity normalization", i)
		}
	}
}

func TestNormalizeScalesByB(t *testing.T) {
	a := matrix.Diag([]float64{1, 1})
	prog := &Program{C: matrix.Identity(2), A: []*matrix.Dense{a}, B: []float64{4}}
	set, _, err := prog.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Diag([]float64{0.25, 0.25})
	if !matrix.ApproxEqual(set.A[0], want, 1e-12) {
		t.Fatalf("B scaling wrong: %v", set.A[0])
	}
}

func TestNormalizeDropsZeroB(t *testing.T) {
	prog := &Program{
		C: matrix.Identity(2),
		A: []*matrix.Dense{matrix.Identity(2), matrix.Diag([]float64{1, 0})},
		B: []float64{0, 1},
	}
	set, nm, err := prog.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	if set.N() != 1 || len(nm.Kept) != 1 || nm.Kept[0] != 1 {
		t.Fatalf("zero-b constraint not dropped: n=%d kept=%v", set.N(), nm.Kept)
	}
}

func TestNormalizeGeneralCMatchesKnownOptimum(t *testing.T) {
	// min C•Y s.t. A•Y ≥ b with C = diag(c), A = diag(a):
	// optimum = b·min_j c_j/a_j (put mass on the best diagonal entry).
	c := matrix.Diag([]float64{2, 3})
	a := matrix.Diag([]float64{1, 4})
	b := 5.0
	// OPT = 5·min(2/1, 3/4) = 5·0.75 = 3.75.
	prog := &Program{C: c, A: []*matrix.Dense{a}, B: []float64{b}}
	set, _, err := prog.Normalize(0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := MaximizePacking(set, 0.05, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := 3.75
	if sol.Lower > opt*(1+1e-6) || sol.Upper < opt*(1-1e-6) {
		t.Fatalf("normalized bracket [%v, %v] misses OPT %v", sol.Lower, sol.Upper, opt)
	}
}

func TestNormalizeValidation(t *testing.T) {
	id := matrix.Identity(2)
	cases := []*Program{
		{C: nil, A: []*matrix.Dense{id}, B: []float64{1}},
		{C: id, A: nil, B: nil},
		{C: id, A: []*matrix.Dense{id}, B: []float64{1, 2}},
		{C: matrix.New(2, 3), A: []*matrix.Dense{id}, B: []float64{1}},
		{C: id, A: []*matrix.Dense{matrix.Identity(3)}, B: []float64{1}},
		{C: id, A: []*matrix.Dense{id}, B: []float64{-1}},
	}
	for i, p := range cases {
		if _, _, err := p.Normalize(0); err == nil {
			t.Fatalf("case %d: invalid program accepted", i)
		}
	}
	zero := &Program{C: matrix.New(2, 2), A: []*matrix.Dense{id}, B: []float64{1}}
	if _, _, err := zero.Normalize(0); err == nil {
		t.Fatal("zero C accepted")
	}
	allZeroB := &Program{C: id, A: []*matrix.Dense{id}, B: []float64{0}}
	if _, _, err := allZeroB.Normalize(0); err == nil {
		t.Fatal("all-zero b accepted")
	}
}

func TestSolveCoveringEndToEnd(t *testing.T) {
	// Diagonal covering problem with known optimum (see above): 3.75.
	prog := &Program{
		C: matrix.Diag([]float64{2, 3}),
		A: []*matrix.Dense{matrix.Diag([]float64{1, 4})},
		B: []float64{5},
	}
	cs, err := SolveCovering(prog, 0.05, Options{TrackPrimalMatrix: true})
	if err != nil {
		t.Fatal(err)
	}
	opt := 3.75
	if cs.Lower > opt*(1+1e-6) || cs.Upper < opt*(1-1e-6) {
		t.Fatalf("covering bracket [%v, %v] misses OPT %v", cs.Lower, cs.Upper, opt)
	}
	if cs.Y != nil {
		// The recovered Y must be feasible for the original program.
		dot := matrix.Dot(prog.A[0], cs.Y)
		if dot < 5*(1-1e-6) {
			t.Fatalf("recovered Y violates constraint: A•Y = %v < 5", dot)
		}
		// Objective within a modest factor of OPT (the recovered witness
		// is feasible but only near-optimal).
		if cs.Objective < opt*(1-1e-6) || cs.Objective > opt*1.5 {
			t.Fatalf("recovered objective %v implausible for OPT %v", cs.Objective, opt)
		}
	}
}

func TestRecoverCoveringRejectsNil(t *testing.T) {
	nm := &NormalizeMap{CInvSqrt: matrix.Identity(2)}
	if _, _, err := nm.RecoverCovering(nil, nil, 1, matrix.Identity(2)); err == nil {
		t.Fatal("nil Z accepted")
	}
}

func TestNormalizeRankDeficientC(t *testing.T) {
	// C with a null direction: constraints supported on C's range still
	// normalize; the pseudo-inverse square root handles the rest.
	c := matrix.Diag([]float64{1, 0})
	a := matrix.Diag([]float64{2, 0})
	prog := &Program{C: c, A: []*matrix.Dense{a}, B: []float64{1}}
	set, nm, err := prog.Normalize(1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Rank != 1 {
		t.Fatalf("rank = %d want 1", nm.Rank)
	}
	if math.Abs(set.A[0].At(0, 0)-2) > 1e-12 {
		t.Fatalf("normalized entry = %v want 2", set.A[0].At(0, 0))
	}
}

package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/eigen"
	"repro/internal/expm"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sketch"
)

// factoredJLOracle is the bigDotExp primitive of Theorem 4.1: with
// Aᵢ = QᵢQᵢᵀ,
//
//	exp(Ψ) • Aᵢ = ‖exp(Ψ/2) Qᵢ‖_F²,
//
// estimated by sketching with a fresh Gaussian Π each iteration:
// S = Π exp(Ψ/2) is assembled from k = O(ε_s⁻² log m) ExpMV applications
// of exp(Ψ/2) to the rows of Π (each O(q·κ) work), after which every
// constraint costs O(k·nnz(Qᵢ)), and Tr[exp(Ψ)] = ‖exp(Ψ/2)‖_F² is
// estimated by ‖S‖_F². All quantities are carried in a common log-scale
// so ‖Ψ‖₂ ~ K/ε never overflows.
type factoredJLOracle struct {
	set       *FactoredSet
	x         []float64
	sketchEps float64
	rows      int
	seed      uint64
	iter      uint64
	// lambdaEst is a running Lanczos estimate of λ_max(Ψ), refreshed
	// every iteration (cheap: O(q) per Lanczos step) and used to bound
	// the ExpMV segmentation.
	lambdaEst float64
	st        *parallel.Stats
	tol       float64
}

func newFactoredJLOracle(set *FactoredSet, sketchEps float64, seed uint64, st *parallel.Stats) *factoredJLOracle {
	if sketchEps <= 0 {
		sketchEps = 0.2
	}
	return &factoredJLOracle{
		set:       set,
		sketchEps: sketchEps,
		rows:      sketch.Rows(set.Dim(), sketchEps),
		seed:      seed,
		st:        st,
		tol:       1e-10,
	}
}

func (o *factoredJLOracle) init(x []float64) error {
	if len(x) != o.set.N() {
		return fmt.Errorf("core: factored oracle: x has %d entries, want %d", len(x), o.set.N())
	}
	o.x = x
	o.lambdaEst = 0
	return nil
}

func (o *factoredJLOracle) update(_ []int, _ []float64, x []float64) error {
	o.x = x
	return nil
}

func (o *factoredJLOracle) applyPsi(in, out []float64) {
	o.set.ApplyPsi(o.x, in, out)
}

func (o *factoredJLOracle) applyHalfPsi(in, out []float64) {
	o.set.ApplyPsi(o.x, in, out)
	for i := range out {
		out[i] *= 0.5
	}
}

// refreshLambda updates the Lanczos estimate of λ_max(Ψ). Lanczos
// returns a lower bound; a 5% headroom makes it a safe ExpMV
// segmentation bound (undershooting only lengthens the Taylor series a
// little, it does not break correctness).
func (o *factoredJLOracle) refreshLambda() error {
	lam, err := eigen.LanczosMax(o.applyPsi, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 48,
		Tol:     1e-6,
		Rng:     rand.New(rand.NewPCG(o.seed^0xabcdef, o.iter)),
	})
	if err != nil {
		return err
	}
	if lam < 0 {
		lam = 0
	}
	o.lambdaEst = lam
	return nil
}

func (o *factoredJLOracle) ratios() ([]float64, oracleInfo, error) {
	if err := o.refreshLambda(); err != nil {
		return nil, oracleInfo{}, err
	}
	m := o.set.Dim()
	n := o.set.N()
	normHalf := 0.55*o.lambdaEst + 0.5 // bound for ‖Ψ/2‖ with headroom

	jl, err := sketch.New(o.rows, m, rand.New(rand.NewPCG(o.seed, o.iter)))
	if err != nil {
		return nil, oracleInfo{}, err
	}
	o.iter++

	// Rows of S: sᵣ = exp(Ψ/2)·Πᵣ, each with its own log-scale.
	s := matrix.New(o.rows, m)
	logs := make([]float64, o.rows)
	parallel.For(o.rows, func(r int) {
		w, ls := expm.ExpMV(o.applyHalfPsi, jl.RowVec(r), normHalf, o.tol)
		copy(s.Data[r*m:(r+1)*m], w)
		logs[r] = ls
	})
	// Rescale all rows to the common maximum log-scale L.
	maxLog := rescaleRows(s, logs)

	// trEst·e^{2L} ≈ Tr[exp(Ψ)] = ‖exp(Ψ/2)‖_F².
	trEst := parallel.SumFloat(len(s.Data), func(i int) float64 { return s.Data[i] * s.Data[i] })
	if trEst <= 0 || math.IsNaN(trEst) {
		return nil, oracleInfo{}, fmt.Errorf("core: factored oracle: degenerate trace estimate %v", trEst)
	}

	// rᵢ = scale·‖S·Qᵢ‖² / trEst (the e^{2L} factors cancel).
	r := make([]float64, n)
	parallel.For(n, func(i int) {
		r[i] = o.set.scale * o.set.Q[i].SketchDot(s) / trEst
	})

	// Analytic cost per Theorem 4.1: k ExpMV passes + k·q sketch dots.
	expm.ExpMVStats(o.st, o.set.NNZ(), normHalf, o.tol, m)
	o.st.Add(int64(o.rows)*int64(2*o.set.NNZ()), parallel.Log2(m))

	return r, oracleInfo{
		LambdaMax: o.lambdaEst,
		LogTrW:    2*maxLog + math.Log(trEst),
	}, nil
}

// rescaleRows brings every row of s from its own log-scale logs[r] to
// the common maximum log-scale, which it returns. Rows are rescaled in
// parallel with the blocked vector kernel.
func rescaleRows(s *matrix.Dense, logs []float64) (maxLog float64) {
	maxLog = logs[0]
	for _, l := range logs[1:] {
		if l > maxLog {
			maxLog = l
		}
	}
	m := s.C
	parallel.For(s.R, func(r int) {
		row := s.Data[r*m : (r+1)*m]
		matrix.VecScale(row, math.Exp(logs[r]-maxLog), row)
	})
	return maxLog
}

// lambdaMaxPsi runs a certificate-grade Lanczos (tight tolerance, many
// iterations, full reorthogonalization).
func (o *factoredJLOracle) lambdaMaxPsi() (float64, error) {
	lam, err := eigen.LanczosMax(o.applyPsi, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 256,
		Tol:     1e-12,
		Rng:     rand.New(rand.NewPCG(o.seed^0x5eed, 0x7ea1)),
	})
	if err != nil {
		return 0, err
	}
	return lam, nil
}

func (o *factoredJLOracle) probability() *matrix.Dense { return nil }

// factoredExactOracle evaluates exp(Ψ)•Aᵢ = Σ_cols ‖exp(Ψ/2)q‖² exactly
// (to ExpMV tolerance) by applying exp(Ψ/2) to every factor column, and
// Tr[exp(Ψ)] by applying it to every basis vector. Deterministic but
// O((q + m²)·κ) per iteration — the cross-validation oracle for the JL
// path on small instances.
type factoredExactOracle struct {
	set       *FactoredSet
	x         []float64
	lambdaEst float64
	seed      uint64
	st        *parallel.Stats
}

func newFactoredExactOracle(set *FactoredSet, seed uint64, st *parallel.Stats) *factoredExactOracle {
	return &factoredExactOracle{set: set, seed: seed, st: st}
}

func (o *factoredExactOracle) init(x []float64) error {
	if len(x) != o.set.N() {
		return fmt.Errorf("core: factored-exact oracle: x has %d entries, want %d", len(x), o.set.N())
	}
	o.x = x
	return nil
}

func (o *factoredExactOracle) update(_ []int, _ []float64, x []float64) error {
	o.x = x
	return nil
}

func (o *factoredExactOracle) applyPsi(in, out []float64) { o.set.ApplyPsi(o.x, in, out) }

func (o *factoredExactOracle) applyHalfPsi(in, out []float64) {
	o.set.ApplyPsi(o.x, in, out)
	for i := range out {
		out[i] *= 0.5
	}
}

func (o *factoredExactOracle) ratios() ([]float64, oracleInfo, error) {
	lam, err := eigen.LanczosMax(o.applyPsi, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 64, Tol: 1e-8,
		Rng: rand.New(rand.NewPCG(o.seed, 0xfeed)),
	})
	if err != nil {
		return nil, oracleInfo{}, err
	}
	o.lambdaEst = math.Max(lam, 0)
	m := o.set.Dim()
	normHalf := 0.55*o.lambdaEst + 0.5

	// Exponentiate the identity column by column: column j of exp(Ψ/2).
	// Shared log-scale normalization as in the JL oracle.
	cols := matrix.New(m, m) // row r = exp(Ψ/2)·e_r (symmetric, so rows = cols)
	logs := make([]float64, m)
	parallel.For(m, func(r int) {
		w, ls := expm.ExpMV(o.applyHalfPsi, matrix.Basis(m, r), normHalf, 1e-12)
		copy(cols.Data[r*m:(r+1)*m], w)
		logs[r] = ls
	})
	maxLog := rescaleRows(cols, logs)
	trEst := parallel.SumFloat(len(cols.Data), func(i int) float64 { return cols.Data[i] * cols.Data[i] })
	if trEst <= 0 || math.IsNaN(trEst) {
		return nil, oracleInfo{}, fmt.Errorf("core: factored-exact oracle: degenerate trace %v", trEst)
	}
	n := o.set.N()
	r := make([]float64, n)
	parallel.For(n, func(i int) {
		r[i] = o.set.scale * o.set.Q[i].SketchDot(cols) / trEst
	})
	o.st.Add(int64(m)*int64(2*o.set.NNZ()), parallel.Log2(m))
	return r, oracleInfo{LambdaMax: o.lambdaEst, LogTrW: 2*maxLog + math.Log(trEst)}, nil
}

func (o *factoredExactOracle) lambdaMaxPsi() (float64, error) {
	return eigen.LanczosMax(o.applyPsi, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 256, Tol: 1e-12,
		Rng: rand.New(rand.NewPCG(o.seed^0x5eed, 0x7ea1)),
	})
}

func (o *factoredExactOracle) probability() *matrix.Dense { return nil }

package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/eigen"
	"repro/internal/expm"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sketch"
	"repro/internal/work"
)

// factoredScratch is the per-run reusable state both factored oracles
// share: reseedable randomness (one PCG reseeded per use instead of a
// fresh generator per iteration — the streams are bitwise identical),
// the ratio vector, the Lanczos workspace, and the Ψ-apply closures —
// one sequential closure for Lanczos plus one per exponential row for
// the concurrent ExpMV loop, each owning its column scratch. Closures
// read the current dual vector through xp at call time, so update()
// needs no rebuild.
type factoredScratch struct {
	pcg     *rand.PCG
	rng     *rand.Rand
	r       []float64   // ratio buffer returned by ratios
	psiTmp  []float64   // Ψ·v column scratch of the Lanczos closure
	rowTmps [][]float64 // Ψ·v column scratch per exponential row
	lws     eigen.LanczosWS
	applyFn func(in, out []float64)   // Ψ·v (sequential, Lanczos)
	halfFns []func(in, out []float64) // per-row (Ψ/2)·v closures
	mv      []expm.MVScratch          // per-row ExpMV scratch
}

func (sc *factoredScratch) ready() bool { return sc.pcg != nil }

// init builds the scratch for rows concurrent exponential rows over
// set, drawing every buffer from ws.
func (sc *factoredScratch) init(set *FactoredSet, ws *work.Workspace, rows int, xp *[]float64) {
	sc.pcg = &rand.PCG{}
	sc.rng = rand.New(sc.pcg)
	sc.r = ws.Vec(set.N())
	sc.psiTmp = ws.Vec(set.psiScratchLen())
	tmp := sc.psiTmp
	sc.applyFn = func(in, out []float64) { set.applyPsiTmp(*xp, in, out, tmp) }
	sc.halfFns = make([]func(in, out []float64), rows)
	sc.mv = make([]expm.MVScratch, rows)
	sc.rowTmps = make([][]float64, rows)
	for r := range sc.halfFns {
		rowTmp := ws.Vec(set.psiScratchLen())
		sc.rowTmps[r] = rowTmp
		sc.halfFns[r] = func(in, out []float64) {
			set.applyPsiTmp(*xp, in, out, rowTmp)
			for i := range out {
				out[i] *= 0.5
			}
		}
	}
}

// release hands every pooled buffer back to ws; the scratch reverts to
// its unbuilt state.
func (sc *factoredScratch) release(ws *work.Workspace) {
	if sc.pcg == nil {
		return
	}
	ws.PutVec(sc.r)
	ws.PutVec(sc.psiTmp)
	for _, tmp := range sc.rowTmps {
		ws.PutVec(tmp)
	}
	sc.pcg, sc.rng = nil, nil
	sc.r, sc.psiTmp, sc.rowTmps = nil, nil, nil
	sc.applyFn, sc.halfFns, sc.mv = nil, nil, nil
}

// factoredJLOracle is the bigDotExp primitive of Theorem 4.1: with
// Aᵢ = QᵢQᵢᵀ,
//
//	exp(Ψ) • Aᵢ = ‖exp(Ψ/2) Qᵢ‖_F²,
//
// estimated by sketching with a fresh Gaussian Π each iteration:
// S = Π exp(Ψ/2) is assembled from k = O(ε_s⁻² log m) ExpMV applications
// of exp(Ψ/2) to the rows of Π (each O(q·κ) work), after which every
// constraint costs O(k·nnz(Qᵢ)), and Tr[exp(Ψ)] = ‖exp(Ψ/2)‖_F² is
// estimated by ‖S‖_F². All quantities are carried in a common log-scale
// so ‖Ψ‖₂ ~ K/ε never overflows.
//
// All iteration state is retained across calls: the sketch matrix is
// refilled (not reallocated), the PCG is reseeded (not reconstructed),
// and all scratch lives in factoredScratch. A steady-state ratios call
// performs only a small constant number of allocations (the fork
// closures of the row loops).
type factoredJLOracle struct {
	set       *FactoredSet
	ws        *work.Workspace
	x         []float64
	sketchEps float64
	rows      int
	seed      uint64
	iter      uint64
	// lambdaEst is a running Lanczos estimate of λ_max(Ψ), refreshed
	// every iteration (cheap: O(q) per Lanczos step) and used to bound
	// the ExpMV segmentation.
	lambdaEst float64
	st        *parallel.Stats
	tol       float64

	sc   factoredScratch
	jl   *sketch.JL
	s    *matrix.Dense // sketch rows through exp(Ψ/2)
	logs []float64
}

func newFactoredJLOracle(set *FactoredSet, sketchEps float64, seed uint64, st *parallel.Stats, ws *work.Workspace) *factoredJLOracle {
	if sketchEps <= 0 {
		sketchEps = 0.2
	}
	return &factoredJLOracle{
		set:       set,
		ws:        ws,
		sketchEps: sketchEps,
		rows:      sketch.Rows(set.Dim(), sketchEps),
		seed:      seed,
		st:        st,
		tol:       1e-10,
	}
}

func (o *factoredJLOracle) init(x []float64) error {
	if len(x) != o.set.N() {
		return fmt.Errorf("core: factored oracle: x has %d entries, want %d", len(x), o.set.N())
	}
	o.x = x
	o.lambdaEst = 0
	if !o.sc.ready() {
		o.sc.init(o.set, o.ws, o.rows, &o.x)
		o.s = o.ws.Mat(o.rows, o.set.Dim())
		o.logs = o.ws.Vec(o.rows)
	}
	return nil
}

func (o *factoredJLOracle) update(_ []int, _ []float64, x []float64) error {
	o.x = x
	return nil
}

// refreshLambda updates the Lanczos estimate of λ_max(Ψ). Lanczos
// returns a lower bound; a 5% headroom makes it a safe ExpMV
// segmentation bound (undershooting only lengthens the Taylor series a
// little, it does not break correctness).
func (o *factoredJLOracle) refreshLambda() error {
	o.sc.pcg.Seed(o.seed^0xabcdef, o.iter)
	lam, err := eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 48,
		Tol:     1e-6,
		Rng:     o.sc.rng,
		WS:      &o.sc.lws,
	})
	if err != nil {
		return err
	}
	if lam < 0 {
		lam = 0
	}
	o.lambdaEst = lam
	return nil
}

func (o *factoredJLOracle) ratios() ([]float64, oracleInfo, error) {
	if err := o.refreshLambda(); err != nil {
		return nil, oracleInfo{}, err
	}
	m := o.set.Dim()
	n := o.set.N()
	normHalf := 0.55*o.lambdaEst + 0.5 // bound for ‖Ψ/2‖ with headroom

	// Fresh Gaussian Π each iteration: refill the held sketch from the
	// reseeded stream (bitwise the same values a fresh sketch would get).
	o.sc.pcg.Seed(o.seed, o.iter)
	if o.jl == nil {
		jl, err := sketch.NewWS(o.ws, o.rows, m, o.sc.rng)
		if err != nil {
			return nil, oracleInfo{}, err
		}
		o.jl = jl
	} else {
		o.jl.Refill(o.sc.rng)
	}
	o.iter++

	// Rows of S: sᵣ = exp(Ψ/2)·Πᵣ, each with its own log-scale. Grain 1:
	// each row is a full ExpMV chain, expensive enough to fork per row.
	s := o.s
	logs := o.logs
	parallel.ForBlock(o.rows, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			logs[r] = expm.ExpMVInto(s.Data[r*m:(r+1)*m], o.sc.halfFns[r], o.jl.RowVec(r), normHalf, o.tol, &o.sc.mv[r])
		}
	})
	// Rescale all rows to the common maximum log-scale L.
	maxLog := rescaleRows(s, logs)

	// trEst·e^{2L} ≈ Tr[exp(Ψ)] = ‖exp(Ψ/2)‖_F².
	trEst := parallel.SumFloat(len(s.Data), func(i int) float64 { return s.Data[i] * s.Data[i] })
	if trEst <= 0 || math.IsNaN(trEst) {
		return nil, oracleInfo{}, fmt.Errorf("core: factored oracle: degenerate trace estimate %v", trEst)
	}

	// rᵢ = scale·‖S·Qᵢ‖² / trEst (the e^{2L} factors cancel).
	r := o.sc.r
	parallel.ForBlock(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = o.set.scale * o.set.Q[i].SketchDot(s) / trEst
		}
	})

	// Analytic cost per Theorem 4.1: k ExpMV passes + k·q sketch dots.
	expm.ExpMVStats(o.st, o.set.NNZ(), normHalf, o.tol, m)
	o.st.Add(int64(o.rows)*int64(2*o.set.NNZ()), parallel.Log2(m))

	return r, oracleInfo{
		LambdaMax: o.lambdaEst,
		LogTrW:    2*maxLog + math.Log(trEst),
	}, nil
}

// rescaleRows brings every row of s from its own log-scale logs[r] to
// the common maximum log-scale, which it returns. Rows are rescaled in
// parallel with the blocked vector kernel.
func rescaleRows(s *matrix.Dense, logs []float64) (maxLog float64) {
	maxLog = logs[0]
	for _, l := range logs[1:] {
		if l > maxLog {
			maxLog = l
		}
	}
	m := s.C
	parallel.For(s.R, func(r int) {
		row := s.Data[r*m : (r+1)*m]
		matrix.VecScale(row, math.Exp(logs[r]-maxLog), row)
	})
	return maxLog
}

// lambdaMaxPsi runs a certificate-grade Lanczos (tight tolerance, many
// iterations, full reorthogonalization).
func (o *factoredJLOracle) lambdaMaxPsi() (float64, error) {
	o.sc.pcg.Seed(o.seed^0x5eed, 0x7ea1)
	lam, err := eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 256,
		Tol:     1e-12,
		Rng:     o.sc.rng,
		WS:      &o.sc.lws,
	})
	if err != nil {
		return 0, err
	}
	return lam, nil
}

func (o *factoredJLOracle) probability() *matrix.Dense { return nil }

func (o *factoredJLOracle) release() {
	if !o.sc.ready() {
		return
	}
	o.sc.release(o.ws)
	o.ws.PutMat(o.s)
	o.ws.PutVec(o.logs)
	o.s, o.logs = nil, nil
	if o.jl != nil {
		o.ws.PutMat(o.jl.M)
		o.jl = nil
	}
}

// factoredExactOracle evaluates exp(Ψ)•Aᵢ = Σ_cols ‖exp(Ψ/2)q‖² exactly
// (to ExpMV tolerance) by applying exp(Ψ/2) to every factor column, and
// Tr[exp(Ψ)] by applying it to every basis vector. Deterministic but
// O((q + m²)·κ) per iteration — the cross-validation oracle for the JL
// path on small instances. It shares the JL oracle's buffer discipline
// through the same factoredScratch.
type factoredExactOracle struct {
	set       *FactoredSet
	ws        *work.Workspace
	x         []float64
	lambdaEst float64
	seed      uint64
	st        *parallel.Stats

	sc     factoredScratch
	cols   *matrix.Dense
	logs   []float64
	basisV []float64
}

func newFactoredExactOracle(set *FactoredSet, seed uint64, st *parallel.Stats, ws *work.Workspace) *factoredExactOracle {
	return &factoredExactOracle{set: set, seed: seed, st: st, ws: ws}
}

func (o *factoredExactOracle) init(x []float64) error {
	if len(x) != o.set.N() {
		return fmt.Errorf("core: factored-exact oracle: x has %d entries, want %d", len(x), o.set.N())
	}
	o.x = x
	if !o.sc.ready() {
		m := o.set.Dim()
		o.sc.init(o.set, o.ws, m, &o.x)
		o.cols = o.ws.Mat(m, m)
		o.logs = o.ws.Vec(m)
		o.basisV = o.ws.Vec(m * m)
	}
	return nil
}

func (o *factoredExactOracle) update(_ []int, _ []float64, x []float64) error {
	o.x = x
	return nil
}

func (o *factoredExactOracle) ratios() ([]float64, oracleInfo, error) {
	o.sc.pcg.Seed(o.seed, 0xfeed)
	lam, err := eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 64, Tol: 1e-8,
		Rng: o.sc.rng,
		WS:  &o.sc.lws,
	})
	if err != nil {
		return nil, oracleInfo{}, err
	}
	o.lambdaEst = math.Max(lam, 0)
	m := o.set.Dim()
	normHalf := 0.55*o.lambdaEst + 0.5

	// Exponentiate the identity column by column: column j of exp(Ψ/2).
	// Shared log-scale normalization as in the JL oracle. Row r of cols
	// is exp(Ψ/2)·e_r (symmetric, so rows = cols); the basis vectors are
	// one held m×m buffer written once per call.
	cols := o.cols
	logs := o.logs
	parallel.ForBlock(m, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			e := o.basisV[r*m : (r+1)*m]
			matrix.BasisInto(e, r)
			logs[r] = expm.ExpMVInto(cols.Data[r*m:(r+1)*m], o.sc.halfFns[r], e, normHalf, 1e-12, &o.sc.mv[r])
		}
	})
	maxLog := rescaleRows(cols, logs)
	trEst := parallel.SumFloat(len(cols.Data), func(i int) float64 { return cols.Data[i] * cols.Data[i] })
	if trEst <= 0 || math.IsNaN(trEst) {
		return nil, oracleInfo{}, fmt.Errorf("core: factored-exact oracle: degenerate trace %v", trEst)
	}
	n := o.set.N()
	r := o.sc.r
	parallel.ForBlock(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = o.set.scale * o.set.Q[i].SketchDot(cols) / trEst
		}
	})
	o.st.Add(int64(m)*int64(2*o.set.NNZ()), parallel.Log2(m))
	return r, oracleInfo{LambdaMax: o.lambdaEst, LogTrW: 2*maxLog + math.Log(trEst)}, nil
}

func (o *factoredExactOracle) lambdaMaxPsi() (float64, error) {
	o.sc.pcg.Seed(o.seed^0x5eed, 0x7ea1)
	return eigen.LanczosMax(o.sc.applyFn, o.set.Dim(), eigen.LanczosOpts{
		MaxIter: 256, Tol: 1e-12,
		Rng: o.sc.rng,
		WS:  &o.sc.lws,
	})
}

func (o *factoredExactOracle) probability() *matrix.Dense { return nil }

func (o *factoredExactOracle) release() {
	if !o.sc.ready() {
		return
	}
	o.sc.release(o.ws)
	o.ws.PutMat(o.cols)
	o.ws.PutVec(o.logs)
	o.ws.PutVec(o.basisV)
	o.cols, o.logs, o.basisV = nil, nil, nil
}

package core

// SolveStats is the per-phase wall-clock breakdown of a solver run,
// accumulated when Options.Phases points at one. The paper's analysis
// is iteration-count-centric (Theorem 3.1's R = O(ε⁻³log²N) for MMW,
// O(ε⁻²log²N) for the ALO engine), so the phase split follows the
// per-iteration anatomy of Algorithm 3.1:
//
//   - OracleNS:   the exp(Ψ)•Aᵢ ratio oracle (paper line 4) — the whole
//     ratios() call, eigendecomposition or sketch included.
//   - ExpmNS:     the spectral primitives inside the oracle (the dense
//     eigendecomposition-based exp, or Lanczos λ_max refresh plus the
//     ExpMV Taylor chains). A subset of OracleNS, split out because it
//     is the paper's dominant-cost term.
//   - UpdateNS:   the multiplicative coordinate update and the oracle's
//     incremental Ψ maintenance (paper lines 6–7).
//   - BookkeepNS: certificate tracking, freeze/cap handling, and B-set
//     selection between oracle and update.
//
// All timings use the monotonic clock and are accumulated with plain
// stores: a SolveStats must not be shared across concurrent runs.
// MaximizePacking's sequence of decision calls accumulates into one
// struct naturally, since every call reads the same Options.Phases
// pointer. Enabling phase capture keeps the steady-state iteration
// allocation-free (the regression tests pin this).
type SolveStats struct {
	Iterations int   `json:"iterations"`
	OracleNS   int64 `json:"oracle_ns"`
	ExpmNS     int64 `json:"expm_ns"`
	UpdateNS   int64 `json:"update_ns"`
	BookkeepNS int64 `json:"bookkeep_ns"`
}

// Merge adds o's counts into s (for aggregating per-run stats into
// service-lifetime totals).
func (s *SolveStats) Merge(o SolveStats) {
	s.Iterations += o.Iterations
	s.OracleNS += o.OracleNS
	s.ExpmNS += o.ExpmNS
	s.UpdateNS += o.UpdateNS
	s.BookkeepNS += o.BookkeepNS
}

package core

import (
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// SparseSet holds constraints as general symmetric sparse matrices —
// the natural representation for graph and Laplacian SDPs, where a
// constraint has O(degree) nonzeros and densifying would pay O(n·m²)
// memory and matvec cost. The paper's nearly-linear work bound
// (Theorem 4.1) is stated in terms of constraint sparsity; SparseSet
// makes that cost model available without a QᵢQᵢᵀ factorization: the
// Ψ(x)·v matvec runs in O(q) over a precomputed stacked form, and the
// exp(Ψ)•Aᵢ numerators are batched quadratic forms in O(k·nnz(Aᵢ)).
type SparseSet struct {
	// A are the constraints, each a symmetric m-by-m sparse matrix.
	A      []*sparse.CSC
	m      int
	scale  float64
	traces []float64
	nnz    int
	// stack is the flattened multi-matrix form driving the O(q)
	// Σᵢ xᵢAᵢ·v accumulation.
	stack *sparse.Stack
}

// NewSparseSet validates and wraps symmetric m-by-m sparse constraint
// matrices. Symmetry is always checked (entry-wise, with the same
// relative tolerance as NewDenseSet); positive semidefiniteness is the
// caller's responsibility, exactly as on the dense path.
func NewSparseSet(a []*sparse.CSC) (*SparseSet, error) {
	if len(a) == 0 {
		return nil, ErrEmptySet
	}
	m := a[0].R
	traces := make([]float64, len(a))
	nnz := 0
	for i, ai := range a {
		if ai.R != m || ai.C != m {
			return nil, fmt.Errorf("core: sparse constraint %d is %dx%d, want %dx%d", i, ai.R, ai.C, m, m)
		}
		if ai.HasNonFinite() {
			return nil, fmt.Errorf("core: sparse constraint %d contains NaN/Inf", i)
		}
		tol := 1e-8 * math.Max(1, ai.MaxAbs())
		if !ai.IsSymmetric(tol) {
			return nil, fmt.Errorf("core: sparse constraint %d is not symmetric", i)
		}
		traces[i] = ai.DiagSum()
		if traces[i] < 0 {
			return nil, fmt.Errorf("core: sparse constraint %d has negative trace %v (not PSD)", i, traces[i])
		}
		nnz += ai.NNZ()
	}
	stack, err := sparse.NewStack(a)
	if err != nil {
		return nil, err
	}
	return &SparseSet{A: a, m: m, scale: 1, traces: traces, nnz: nnz, stack: stack}, nil
}

// N returns the number of constraints.
func (s *SparseSet) N() int { return len(s.A) }

// Dim returns the matrix dimension m.
func (s *SparseSet) Dim() int { return s.m }

// Trace returns the scaled trace of constraint i.
func (s *SparseSet) Trace(i int) float64 { return s.scale * s.traces[i] }

// Scale returns the global multiplier.
func (s *SparseSet) Scale() float64 { return s.scale }

// WithScale returns a view with the scale multiplied by f.
func (s *SparseSet) WithScale(f float64) ConstraintSet {
	c := *s
	c.scale *= f
	return &c
}

// NNZ returns q, the total stored nonzeros across constraints.
func (s *SparseSet) NNZ() int { return s.nnz }

// ApplyPsi computes out = (Σᵢ xᵢAᵢ)·in (scaled) in O(q) work.
func (s *SparseSet) ApplyPsi(x, in, out []float64) {
	s.ApplyPsiScratch(x, in, out, make([]float64, len(x)))
}

// PsiScratchLen is the scratch length ApplyPsiScratch requires (n, for
// the scaled coefficient vector).
func (s *SparseSet) PsiScratchLen() int { return len(s.A) }

// ApplyPsiScratch is ApplyPsi with caller scratch: the scaled
// coefficients land in tmp and one stacked O(q) pass accumulates the
// matvec, so the Ψ·v at the heart of every ExpMV term allocates
// nothing.
func (s *SparseSet) ApplyPsiScratch(x, in, out, tmp []float64) {
	matrix.VecScale(tmp, s.scale, x)
	s.stack.AccumulateScaled(out, tmp, in)
}

// ExpDots implements PsiOperator: r[i] = scale·Σ_rows s_rᵀ·Aᵢ·s_r, the
// batched per-constraint quadratic forms — O(k·nnz(Aᵢ)) each, exactly
// the sparsity-proportional cost the width-independent analysis
// charges.
func (s *SparseSet) ExpDots(r []float64, sk *matrix.Dense) {
	if parallel.SerialBlock(len(s.A), 1) {
		for i := range s.A {
			r[i] = s.scale * s.A[i].QuadRows(sk)
		}
		return
	}
	parallel.ForBlock(len(s.A), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r[i] = s.scale * s.A[i].QuadRows(sk)
		}
	})
}

// Densify materializes each constraint as a dense matrix with the
// current scale folded in: the bridge to the exact reference path for
// cross-representation checks.
func (s *SparseSet) Densify() (*DenseSet, error) {
	as := make([]*matrix.Dense, len(s.A))
	for i, ai := range s.A {
		d := ai.ToDense()
		if s.scale != 1 {
			matrix.Scale(d, s.scale, d)
		}
		as[i] = d
	}
	return NewDenseSet(as)
}

// SparsifyDense converts a dense set to the sparse representation,
// dropping entries with |v| <= dropTol. The scale is preserved as a
// view multiplier, not folded into the entries.
func SparsifyDense(d *DenseSet, dropTol float64) (*SparseSet, error) {
	as := make([]*sparse.CSC, len(d.A))
	for i, ai := range d.A {
		as[i] = sparse.CSCFromDense(ai, dropTol)
	}
	s, err := NewSparseSet(as)
	if err != nil {
		return nil, err
	}
	s.scale = d.scale
	return s, nil
}

package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sparse"
)

// --- instance builders with known optima ---

// identicalInstance: Aᵢ = A for all i. OPT = 1/λ_max(A) (only the sum
// Σxᵢ matters).
func identicalInstance(n, m int, rng *rand.Rand) ([]*matrix.Dense, float64) {
	g := matrix.New(m, m)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	a := matrix.MulABT(g, g, nil)
	// λmax via the characteristic fact Tr ≥ λmax; compute exactly:
	lmax := lambdaMaxOf(a)
	as := make([]*matrix.Dense, n)
	for i := range as {
		as[i] = a
	}
	return as, 1 / lmax
}

func lambdaMaxOf(a *matrix.Dense) float64 {
	set, err := NewDenseSet([]*matrix.Dense{a})
	if err != nil {
		panic(err)
	}
	cert, err := VerifyDual(set, []float64{0}, 0)
	_ = cert
	if err != nil {
		panic(err)
	}
	// VerifyDual with x=0 gives λmax(0)=0; do it properly via oracle:
	o := newDenseOracle(set, nil, nil)
	if err := o.init([]float64{1}); err != nil {
		panic(err)
	}
	lam, err := o.lambdaMaxPsi()
	if err != nil {
		panic(err)
	}
	return lam
}

// orthogonalRankOne: Aᵢ = vᵢvᵢᵀ with orthogonal vᵢ. Constraint becomes
// xᵢ‖vᵢ‖² ≤ 1 independently, so OPT = Σᵢ 1/‖vᵢ‖².
func orthogonalRankOne(n, m int, rng *rand.Rand) ([]*matrix.Dense, float64) {
	if n > m {
		panic("need n <= m for orthogonal directions")
	}
	// Gram–Schmidt on random Gaussian vectors.
	vs := make([][]float64, n)
	for i := range vs {
		v := make([]float64, m)
		for {
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			for k := 0; k < i; k++ {
				matrix.VecAXPY(v, -matrix.VecDot(v, vs[k])/matrix.VecDot(vs[k], vs[k]), vs[k])
			}
			if matrix.VecNorm2(v) > 1e-6 {
				break
			}
		}
		// Random scale so traces differ.
		matrix.VecScale(v, 0.5+rng.Float64()*2, v)
		vs[i] = v
	}
	opt := 0.0
	as := make([]*matrix.Dense, n)
	for i, v := range vs {
		as[i] = matrix.OuterProduct(1, v)
		opt += 1 / matrix.VecDot(v, v)
	}
	return as, opt
}

// diagonalInstance: Aᵢ = diag(pᵢ) with pᵢ ≥ 0 — a positive LP.
func diagonalInstance(n, m int, rng *rand.Rand) ([]*matrix.Dense, [][]float64) {
	as := make([]*matrix.Dense, n)
	cols := make([][]float64, n)
	for i := range as {
		d := make([]float64, m)
		for j := range d {
			if rng.Float64() < 0.7 {
				d[j] = rng.Float64()
			}
		}
		// Ensure nonzero.
		d[rng.IntN(m)] += 0.5
		as[i] = matrix.Diag(d)
		cols[i] = d
	}
	return as, cols
}

func toFactored(t *testing.T, as []*matrix.Dense) *FactoredSet {
	t.Helper()
	ds, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ds.Factorize(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// --- parameter tests ---

func TestParamsFormulas(t *testing.T) {
	p, err := ParamsFor(16, 8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log(16)
	wantK := (1 + logN) / 0.2
	if math.Abs(p.K-wantK) > 1e-12 {
		t.Fatalf("K = %v want %v", p.K, wantK)
	}
	wantAlpha := 0.2 / (wantK * 3)
	if math.Abs(p.Alpha-wantAlpha) > 1e-12 {
		t.Fatalf("α = %v want %v", p.Alpha, wantAlpha)
	}
	if p.R < int(32*logN/(0.2*wantAlpha)) {
		t.Fatalf("R = %d too small", p.R)
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := ParamsFor(0, 4, 0.1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ParamsFor(4, 4, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := ParamsFor(4, 4, 1); err == nil {
		t.Fatal("eps=1 accepted")
	}
	if _, err := ParamsFor(4, 4, math.NaN()); err == nil {
		t.Fatal("eps=NaN accepted")
	}
}

// --- decision tests ---

func TestDecisionDualBranchIdentity(t *testing.T) {
	// Aᵢ = I/2 for 4 constraints: OPT = 2 (Σxᵢ ≤ 2). Decision at scale 1
	// must find a dual solution (OPT > 1).
	as := make([]*matrix.Dense, 4)
	for i := range as {
		id := matrix.Identity(3)
		matrix.Scale(id, 0.5, id)
		as[i] = id
	}
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(set, 0.2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Outcome != OutcomeDual {
		t.Fatalf("outcome = %v want dual (OPT=2)", dr.Outcome)
	}
	if dr.Lower < 0.7 {
		t.Fatalf("certified lower bound %v too weak for OPT=2 decision", dr.Lower)
	}
	// Certificate must verify independently.
	cert, err := VerifyDual(set, dr.DualX, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("dual certificate infeasible: λmax = %v", cert.LambdaMax)
	}
}

func TestDecisionPrimalBranchScaledUp(t *testing.T) {
	// Same instance scaled so OPT = 0.5 < 1: must exit primal with a
	// certified upper bound near 0.5·(1+ε).
	as := make([]*matrix.Dense, 4)
	for i := range as {
		id := matrix.Identity(3)
		matrix.Scale(id, 0.5, id)
		as[i] = id
	}
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	scaled := set.WithScale(4) // OPT = 2/4 = 0.5
	dr, err := DecisionPSDP(scaled, 0.2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Outcome != OutcomePrimal {
		t.Fatalf("outcome = %v want primal (OPT=0.5)", dr.Outcome)
	}
	if dr.Upper > 0.7 {
		t.Fatalf("certified upper bound %v too weak for OPT=0.5", dr.Upper)
	}
	if dr.Upper < 0.5-1e-9 {
		t.Fatalf("upper bound %v below true OPT 0.5: invalid certificate", dr.Upper)
	}
}

func TestDecisionBoundsAlwaysBracketKnownOPT(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	as, opt := orthogonalRankOne(5, 8, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{opt * 0.5, opt, opt * 2} {
		scaled := set.WithScale(theta)
		dr, err := DecisionPSDP(scaled, 0.2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		optScaled := opt / theta
		if dr.Lower > optScaled*(1+1e-9) {
			t.Fatalf("θ=%v: lower %v exceeds OPT %v", theta, dr.Lower, optScaled)
		}
		if dr.Upper < optScaled*(1-1e-9) {
			t.Fatalf("θ=%v: upper %v below OPT %v", theta, dr.Upper, optScaled)
		}
	}
}

// Lemma 3.2: the spectrum stays below (1+10ε)K throughout.
func TestDecisionSpectrumBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	as, opt := identicalInstance(6, 4, rng)
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.25
	dr, err := DecisionPSDP(set.WithScale(opt), eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := (1 + 10*eps) * dr.Params.K
	if dr.MaxPsiNorm > bound {
		t.Fatalf("Lemma 3.2 violated: max λmax(Ψ) = %v > (1+10ε)K = %v", dr.MaxPsiNorm, bound)
	}
	if dr.Iterations > dr.Params.R {
		t.Fatalf("iterations %d exceeded R = %d", dr.Iterations, dr.Params.R)
	}
}

func TestDecisionTheoryExactMode(t *testing.T) {
	// Tiny instance with OPT=2 (well above 1): theory mode must hit the
	// ‖x‖>K dual exit within R iterations.
	as := []*matrix.Dense{matrix.Diag([]float64{0.5, 0.25})}
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(set, 0.3, Options{TheoryExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Outcome != OutcomeDual {
		t.Fatalf("outcome = %v want dual", dr.Outcome)
	}
	if matrix.VecSum(dr.X) <= dr.Params.K {
		t.Fatal("theory mode exited dual without ‖x‖ > K")
	}
	// Paper's dual scaling: x̂ = x/((1+10ε)K) has value ≥ 1−10ε.
	xhat := matrix.VecClone(dr.X)
	matrix.VecScale(xhat, 1/((1+10*0.3)*dr.Params.K), xhat)
	if matrix.VecSum(xhat) < 1-10*0.3-1e-9 {
		t.Fatalf("paper dual value %v below 1−10ε", matrix.VecSum(xhat))
	}
	cert, err := VerifyDual(set, xhat, 1e-8)
	if err != nil || !cert.Feasible {
		t.Fatalf("paper-scaled dual solution infeasible: %+v err=%v", cert, err)
	}
}

func TestDecisionZeroConstraintUnusable(t *testing.T) {
	// One zero constraint among normal ones: frozen, never updated, and
	// the solver still works on the others.
	as := []*matrix.Dense{matrix.New(3, 3), matrix.Identity(3)}
	set, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DecisionPSDP(set, 0.2, Options{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if dr.X[0] != 0 {
		t.Fatalf("zero constraint got weight %v", dr.X[0])
	}
}

func TestDecisionFactoredMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	as, opt := orthogonalRankOne(4, 6, rng)
	dense, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	fact := toFactored(t, as)

	dd, err := DecisionPSDP(dense.WithScale(opt), 0.25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fd, err := DecisionPSDP(fact.WithScale(opt), 0.25, Options{Seed: 1, SketchEps: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	// Both must bracket OPT_scaled = 1.
	for name, dr := range map[string]*DecisionResult{"dense": dd, "factored": fd} {
		if dr.Lower > 1+1e-6 || dr.Upper < 1-1e-6 {
			t.Fatalf("%s: bracket [%v, %v] misses OPT 1", name, dr.Lower, dr.Upper)
		}
	}
	// And agree roughly on iteration count (same algorithm, noisy oracle).
	ratio := float64(fd.Iterations) / float64(dd.Iterations)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("iteration counts diverge: dense %d vs factored %d", dd.Iterations, fd.Iterations)
	}
}

func TestDecisionFactoredExactOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	as, opt := orthogonalRankOne(3, 5, rng)
	fact := toFactored(t, as)
	dr, err := DecisionPSDP(fact.WithScale(opt), 0.25, Options{Oracle: OracleFactoredExact})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Lower > 1+1e-6 || dr.Upper < 1-1e-6 {
		t.Fatalf("factored-exact bracket [%v, %v] misses OPT 1", dr.Lower, dr.Upper)
	}
}

func TestDecisionOptionValidation(t *testing.T) {
	as := []*matrix.Dense{matrix.Identity(2)}
	set, _ := NewDenseSet(as)
	if _, err := DecisionPSDP(set, -0.1, Options{}); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := DecisionPSDP(set, 0.2, Options{Oracle: OracleFactoredJL}); err == nil {
		t.Fatal("factored oracle on dense set accepted")
	}
	if _, err := DecisionPSDP(set, 0.2, Options{Oracle: OracleKind(99)}); err == nil {
		t.Fatal("bogus oracle kind accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeDual.String() != "dual" || OutcomePrimal.String() != "primal" || OutcomeInconclusive.String() != "inconclusive" {
		t.Fatal("Outcome.String wrong")
	}
}

// --- set tests ---

func TestNewDenseSetValidation(t *testing.T) {
	if _, err := NewDenseSet(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewDenseSet([]*matrix.Dense{matrix.Identity(2), matrix.Identity(3)}); err == nil {
		t.Fatal("mismatched dims accepted")
	}
	asym := matrix.FromRows([][]float64{{1, 2}, {0, 1}})
	if _, err := NewDenseSet([]*matrix.Dense{asym}); err == nil {
		t.Fatal("asymmetric constraint accepted")
	}
	nan := matrix.Identity(2)
	nan.Set(0, 0, math.NaN())
	if _, err := NewDenseSet([]*matrix.Dense{nan}); err == nil {
		t.Fatal("NaN constraint accepted")
	}
}

func TestDenseSetScaleView(t *testing.T) {
	set, err := NewDenseSet([]*matrix.Dense{matrix.Diag([]float64{2, 3})})
	if err != nil {
		t.Fatal(err)
	}
	s2 := set.WithScale(2)
	if s2.Trace(0) != 10 || set.Trace(0) != 5 {
		t.Fatalf("scale view wrong: %v / %v", s2.Trace(0), set.Trace(0))
	}
	s4 := s2.WithScale(2)
	if s4.Trace(0) != 20 {
		t.Fatal("scale composition wrong")
	}
}

func TestApplyPsiDenseVsFactored(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	as, _ := orthogonalRankOne(4, 7, rng)
	dense, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	fact := toFactored(t, as)
	x := []float64{0.3, 1.2, 0, 0.7}
	in := make([]float64, 7)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	od, of := make([]float64, 7), make([]float64, 7)
	dense.WithScale(1.7).ApplyPsi(x, in, od)
	fact.WithScale(1.7).ApplyPsi(x, in, of)
	for i := range od {
		if math.Abs(od[i]-of[i]) > 1e-9 {
			t.Fatalf("ApplyPsi mismatch at %d: %v vs %v", i, od[i], of[i])
		}
	}
}

func TestFactoredSetDensifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	as, _ := orthogonalRankOne(3, 5, rng)
	dense, err := NewDenseSet(as)
	if err != nil {
		t.Fatal(err)
	}
	fact := toFactored(t, as)
	back, err := fact.Densify()
	if err != nil {
		t.Fatal(err)
	}
	for i := range as {
		if !matrix.ApproxEqual(back.A[i], dense.A[i], 1e-8) {
			t.Fatalf("constraint %d: densify round trip failed", i)
		}
	}
}

func TestNewFactoredSetValidation(t *testing.T) {
	if _, err := NewFactoredSet(nil); err == nil {
		t.Fatal("empty factored set accepted")
	}
	q1, _ := sparse.NewCSC(3, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	q2, _ := sparse.NewCSC(4, 1, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewFactoredSet([]*sparse.CSC{q1, q2}); err == nil {
		t.Fatal("mismatched row dims accepted")
	}
}

func TestValidatePSDCatchesIndefinite(t *testing.T) {
	bad := matrix.FromRows([][]float64{{1, 2}, {2, 1}})
	set, err := NewDenseSet([]*matrix.Dense{matrix.Identity(2), bad})
	if err != nil {
		t.Fatal(err) // trace is positive, so construction succeeds
	}
	if err := set.ValidatePSD(0); err == nil {
		t.Fatal("indefinite constraint passed ValidatePSD")
	}
}

package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
	"repro/internal/work"
)

// The workspace contract of this package: after the pools warm up in
// iteration 1, a steady-state dense Decision iteration performs ZERO
// heap allocations, and a factored-JL iteration performs at most a
// small constant number (the fork closures of its row loops plus the
// occasional Lanczos basis growth). These tests pin that down with
// testing.AllocsPerRun, which runs at GOMAXPROCS=1 — exactly the
// regime where every kernel takes its closure-free sequential path.

func denseAllocRun(t *testing.T) *decisionRun {
	t.Helper()
	rng := rand.New(rand.NewPCG(101, 102))
	inst := gen.RandomDense(24, 16, 6, rng)
	set, err := NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	// TheoryExact disables the early certificate exits, so the run lasts
	// the full R = O(ε⁻³log²n) budget and the measured steps are honest
	// mid-run iterations.
	d, err := newDecisionRun(set.WithScale(0.5), 0.25, Options{Seed: 1, TheoryExact: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDenseDecisionStepZeroAlloc(t *testing.T) {
	d := denseAllocRun(t)
	// Warm-up: iteration 1 populates every pool (and the first dual
	// snapshot and bucket slices take their capacity).
	for i := 0; i < 4; i++ {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	})
	if d.done {
		t.Fatalf("run terminated during measurement after %d iterations; measured steps are not steady-state", d.t)
	}
	if allocs != 0 {
		t.Errorf("steady-state dense Decision iteration allocates %.2f per run, want 0", allocs)
	}
}

// Dense steady state must stay allocation-free through the periodic Ψ
// rebuild (every denseRebuildPeriod updates), which reuses the oracle's
// Ψ matrix and coefficient scratch.
func TestDenseDecisionRebuildZeroAlloc(t *testing.T) {
	d := denseAllocRun(t)
	for i := 0; i < 4; i++ {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(2*denseRebuildPeriod, func() {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	})
	if d.done {
		t.Fatalf("run terminated during measurement after %d iterations", d.t)
	}
	if allocs != 0 {
		t.Errorf("dense Decision iterations across a Ψ rebuild allocate %.2f per run, want 0", allocs)
	}
}

// factoredJLAllocBudget bounds the steady-state allocations of one
// factored-JL iteration. At GOMAXPROCS=1 (the AllocsPerRun regime) the
// serial guards skip every fork closure and the oracle scratch bundle
// is fully warm, so the measured value is zero; the budget leaves slack
// only for occasional Lanczos basis growth when a refresh converges
// slower than any before it.
const factoredJLAllocBudget = 2

func TestFactoredJLDecisionStepConstAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 202))
	inst, err := gen.RandomFactored(16, 32, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewFactoredSet(inst.Q)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDecisionRun(set.WithScale(0.05), 0.25, Options{Seed: 2, SketchEps: 0.4, TheoryExact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	})
	if d.done {
		t.Fatalf("run terminated during measurement after %d iterations", d.t)
	}
	if allocs > factoredJLAllocBudget {
		t.Errorf("steady-state factored-JL Decision iteration allocates %.2f per run, want <= %d", allocs, factoredJLAllocBudget)
	}
}

// factoredJLCallPerIterBudget bounds the amortized per-iteration
// allocations of a FULL factored-JL Decision call on a warm workspace —
// per-call setup included. The oracle scratch bundle (per-row Ψ-apply
// closures, their column scratch, ExpMV vectors, RNG) round-trips
// through the workspace stash, so a warm call pays only a handful of
// fixed allocations (the oracle structs, the stash key boxing, the
// sketch wrapper, the result), and those amortize far below one per
// iteration. Before the stash each call rebuilt the whole bundle —
// around 20 allocations per iteration at this size.
const factoredJLCallPerIterBudget = 4.0

// A full Decision call on the factored-JL path — the JL run plus the
// exact final-bound sweep, which holds BOTH oracle bundles live at once
// before releasing them — must stay under the per-iteration budget on a
// warm workspace.
func TestFactoredJLDecisionCallAllocsPerIter(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 202))
	inst, err := gen.RandomFactored(48, 96, 2, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewFactoredSet(inst.Q)
	if err != nil {
		t.Fatal(err)
	}
	ws := work.New()
	opts := Options{Seed: 2, SketchEps: 0.4, MaxIter: 40, Workspace: ws, TheoryExact: true}
	var iters int
	call := func() {
		res, err := DecisionPSDP(set.WithScale(0.05), 0.25, opts)
		if err != nil {
			t.Fatal(err)
		}
		iters = res.Iterations
	}
	call() // warm the workspace (pools and the oracle scratch stash)
	allocs := testing.AllocsPerRun(5, call)
	if iters == 0 {
		t.Fatal("decision call ran zero iterations; measurement is vacuous")
	}
	perIter := allocs / float64(iters)
	if perIter > factoredJLCallPerIterBudget {
		t.Errorf("warm factored-JL Decision call allocates %.1f over %d iterations = %.2f per iteration, want <= %.1f",
			allocs, iters, perIter, factoredJLCallPerIterBudget)
	}
}

// The sparse exact-oracle path matches the dense budget: after warm-up,
// a steady-state Decision iteration on a SparseSet through the
// deterministic operator oracle performs ZERO heap allocations — the
// serial guards skip every fork closure at GOMAXPROCS=1, the stacked
// Ψ·v and batched quadratic forms run in caller scratch, and the
// Lanczos basis is prewarmed to its full refresh depth.
func TestSparseExactDecisionStepZeroAlloc(t *testing.T) {
	// Two sizes on purpose: m=24 keeps every reduction in one block,
	// m=48 (m² = 2304 > the 1024 block grain) forces the multi-block
	// trees — the regime where an unguarded SumBlocks closure would
	// allocate every iteration even at GOMAXPROCS=1.
	for _, m := range []int{24, 48} {
		t.Run(fmt.Sprintf("m%d", m), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(501, 502))
			n := 16
			cs := make([]*sparse.CSC, n)
			for i := range cs {
				cs[i] = randSparseSymPSD(m, 2, rng)
			}
			set, err := NewSparseSet(cs)
			if err != nil {
				t.Fatal(err)
			}
			d, err := newDecisionRun(set.WithScale(0.02), 0.25, Options{Seed: 6, Oracle: OracleFactoredExact, TheoryExact: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				if err := d.step(); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := d.step(); err != nil {
					t.Fatal(err)
				}
			})
			if d.done {
				t.Fatalf("run terminated during measurement after %d iterations; measured steps are not steady-state", d.t)
			}
			if allocs != 0 {
				t.Errorf("steady-state sparse exact-oracle Decision iteration allocates %.2f per run, want 0", allocs)
			}
		})
	}
}

// The ALO engine holds the same discipline as MMW: after warm-up, a
// steady-state dense iteration — which moves EVERY unfrozen coordinate,
// not just the below-threshold set — performs ZERO heap allocations.
func TestALODenseStepZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	inst := gen.RandomDense(24, 16, 6, rng)
	set, err := NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newALORun(set.WithScale(0.5), 0.25, Options{Seed: 1, TheoryExact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if a.done {
		t.Fatalf("run terminated during measurement after %d iterations; measured steps are not steady-state", a.t)
	}
	if allocs != 0 {
		t.Errorf("steady-state dense ALO iteration allocates %.2f per run, want 0", allocs)
	}
}

// The sparse exact-oracle ALO path is likewise allocation-free in
// steady state, including across the multi-block reduction regime
// (m² above the kernel block grain).
func TestALOSparseExactStepZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 502))
	m, n := 48, 16
	cs := make([]*sparse.CSC, n)
	for i := range cs {
		cs[i] = randSparseSymPSD(m, 2, rng)
	}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := newALORun(set.WithScale(0.02), 0.25, Options{Seed: 6, Oracle: OracleFactoredExact, TheoryExact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if a.done {
		t.Fatalf("run terminated during measurement after %d iterations", a.t)
	}
	if allocs != 0 {
		t.Errorf("steady-state sparse exact-oracle ALO iteration allocates %.2f per run, want 0", allocs)
	}
}

// A workspace shared across sequential Decision calls must serve every
// call after the first without a single pool miss: the oracles release
// their buffers at finish, and the next call draws the same shapes.
func TestWorkspaceReuseAcrossDecisionCalls(t *testing.T) {
	rng := rand.New(rand.NewPCG(301, 302))
	inst := gen.RandomDense(12, 10, 4, rng)
	set, err := NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	ws := work.New()
	opts := Options{Seed: 3, MaxIter: 30, Workspace: ws}
	if _, err := DecisionPSDP(set.WithScale(0.5), 0.25, opts); err != nil {
		t.Fatal(err)
	}
	warm := ws.Misses()
	if warm == 0 {
		t.Fatal("first call should populate the workspace")
	}
	for call := 0; call < 3; call++ {
		if _, err := DecisionPSDP(set.WithScale(0.5), 0.25, opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := ws.Misses(); got != warm {
		t.Errorf("workspace missed %d more times across repeat calls, want 0 (all buffers released and reused)", got-warm)
	}
}

// The sparse path shares the same workspace discipline: repeat
// Decision calls on a shared workspace (JL oracle plus the exact
// final-bound sweep) must never miss the pools after warm-up.
func TestWorkspaceReuseAcrossSparseCalls(t *testing.T) {
	rng := rand.New(rand.NewPCG(601, 602))
	m, n := 18, 10
	cs := make([]*sparse.CSC, n)
	for i := range cs {
		cs[i] = randSparseSymPSD(m, 2, rng)
	}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	ws := work.New()
	opts := Options{Seed: 8, MaxIter: 10, SketchEps: 0.4, Workspace: ws}
	if _, err := DecisionPSDP(set.WithScale(0.05), 0.3, opts); err != nil {
		t.Fatal(err)
	}
	warm := ws.Misses()
	for call := 0; call < 3; call++ {
		if _, err := DecisionPSDP(set.WithScale(0.05), 0.3, opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := ws.Misses(); got != warm {
		t.Errorf("sparse workspace missed %d more times across repeat calls, want 0", got-warm)
	}
}

// The factored path shares one workspace across the JL run and the
// exact final-bound sweep; repeat calls must also be miss-free.
func TestWorkspaceReuseAcrossFactoredCalls(t *testing.T) {
	rng := rand.New(rand.NewPCG(401, 402))
	inst, err := gen.RandomFactored(10, 16, 2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewFactoredSet(inst.Q)
	if err != nil {
		t.Fatal(err)
	}
	ws := work.New()
	opts := Options{Seed: 4, MaxIter: 10, SketchEps: 0.4, Workspace: ws}
	if _, err := DecisionPSDP(set.WithScale(0.1), 0.3, opts); err != nil {
		t.Fatal(err)
	}
	warm := ws.Misses()
	for call := 0; call < 3; call++ {
		if _, err := DecisionPSDP(set.WithScale(0.1), 0.3, opts); err != nil {
			t.Fatal(err)
		}
	}
	if got := ws.Misses(); got != warm {
		t.Errorf("factored workspace missed %d more times across repeat calls, want 0", got-warm)
	}
}

package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Phase capture must be coherent: iteration counts match the result,
// the expm/Lanczos share nests inside the oracle phase, and every
// phase is nonnegative.
func checkPhases(t *testing.T, ph *SolveStats, iters int) {
	t.Helper()
	if ph.Iterations != iters {
		t.Errorf("phases counted %d iterations, result says %d", ph.Iterations, iters)
	}
	if ph.OracleNS <= 0 {
		t.Errorf("OracleNS = %d, want > 0", ph.OracleNS)
	}
	if ph.ExpmNS <= 0 || ph.ExpmNS > ph.OracleNS {
		t.Errorf("ExpmNS = %d out of (0, OracleNS=%d]", ph.ExpmNS, ph.OracleNS)
	}
	if ph.UpdateNS < 0 || ph.BookkeepNS < 0 {
		t.Errorf("negative phase: update=%d bookkeep=%d", ph.UpdateNS, ph.BookkeepNS)
	}
}

func TestPhasesDenseDecision(t *testing.T) {
	rng := rand.New(rand.NewPCG(901, 902))
	inst := gen.RandomDense(16, 12, 4, rng)
	set, err := NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	var ph SolveStats
	res, err := DecisionPSDP(set.WithScale(0.5), 0.25, Options{Seed: 1, MaxIter: 25, Phases: &ph})
	if err != nil {
		t.Fatal(err)
	}
	checkPhases(t, &ph, res.Iterations)
}

func TestPhasesSparseALO(t *testing.T) {
	rng := rand.New(rand.NewPCG(903, 904))
	m, n := 20, 10
	cs := make([]*sparse.CSC, n)
	for i := range cs {
		cs[i] = randSparseSymPSD(m, 2, rng)
	}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	var ph SolveStats
	res, err := DecisionPSDP(set.WithScale(0.05), 0.3, Options{
		Seed: 2, MaxIter: 25, Engine: EngineALO, Oracle: OracleFactoredExact, Phases: &ph,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPhases(t, &ph, res.Iterations)
}

// MaximizePacking threads one Options through all of its decision
// calls, so a shared Phases pointer accumulates across the whole
// bisection run.
func TestPhasesAccumulateAcrossMaximize(t *testing.T) {
	rng := rand.New(rand.NewPCG(905, 906))
	inst := gen.RandomDense(10, 8, 4, rng)
	set, err := NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	var ph SolveStats
	res, err := MaximizePacking(set, 0.3, Options{Seed: 3, Phases: &ph})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIterations <= 0 {
		t.Fatal("maximize reported no iterations")
	}
	if ph.Iterations < res.TotalIterations {
		t.Errorf("phases counted %d iterations across the maximize run, result total is %d", ph.Iterations, res.TotalIterations)
	}
	checkPhases(t, &ph, ph.Iterations)
}

// The ISSUE's headline alloc gate: dense and sparse-exact steady-state
// Decision iterations stay ZERO-alloc with the full telemetry stack
// enabled — phase capture AND an OnIteration observer that feeds obs
// metrics (histogram + counter + gauge), exactly what the daemon wires
// up per solve.
func telemetryObserver(reg *obs.Registry) func(IterationInfo) bool {
	iterations := reg.Counter("core_iterations_total", "Solver iterations.")
	lambda := reg.Gauge("core_lambda_max", "Last lambda_max estimate.")
	updated := reg.Histogram("core_updated", "Coordinates updated per iteration.", obs.ExpBuckets(1, 4, 8))
	return func(info IterationInfo) bool {
		iterations.Inc()
		lambda.Set(info.LambdaMax)
		updated.Observe(float64(info.Updated))
		return true
	}
}

func TestDenseDecisionStepZeroAllocWithTelemetry(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	inst := gen.RandomDense(24, 16, 6, rng)
	set, err := NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	var ph SolveStats
	d, err := newDecisionRun(set.WithScale(0.5), 0.25, Options{
		Seed: 1, TheoryExact: true, Phases: &ph,
		OnIteration: telemetryObserver(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	})
	if d.done {
		t.Fatalf("run terminated during measurement after %d iterations", d.t)
	}
	if allocs != 0 {
		t.Errorf("dense Decision iteration with phases+metrics allocates %.2f per run, want 0", allocs)
	}
	if ph.Iterations == 0 || ph.ExpmNS == 0 {
		t.Errorf("phase capture inactive during measurement: %+v", ph)
	}
}

func TestSparseExactStepZeroAllocWithTelemetry(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 502))
	m, n := 48, 16
	cs := make([]*sparse.CSC, n)
	for i := range cs {
		cs[i] = randSparseSymPSD(m, 2, rng)
	}
	set, err := NewSparseSet(cs)
	if err != nil {
		t.Fatal(err)
	}
	var ph SolveStats
	d, err := newDecisionRun(set.WithScale(0.02), 0.25, Options{
		Seed: 6, Oracle: OracleFactoredExact, TheoryExact: true, Phases: &ph,
		OnIteration: telemetryObserver(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.step(); err != nil {
			t.Fatal(err)
		}
	})
	if d.done {
		t.Fatalf("run terminated during measurement after %d iterations", d.t)
	}
	if allocs != 0 {
		t.Errorf("sparse exact-oracle iteration with phases+metrics allocates %.2f per run, want 0", allocs)
	}
}

func TestALODenseStepZeroAllocWithTelemetry(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	inst := gen.RandomDense(24, 16, 6, rng)
	set, err := NewDenseSet(inst.A)
	if err != nil {
		t.Fatal(err)
	}
	var ph SolveStats
	a, err := newALORun(set.WithScale(0.5), 0.25, Options{
		Seed: 1, TheoryExact: true, Phases: &ph,
		OnIteration: telemetryObserver(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if a.done {
		t.Fatalf("run terminated during measurement after %d iterations", a.t)
	}
	if allocs != 0 {
		t.Errorf("dense ALO iteration with phases+metrics allocates %.2f per run, want 0", allocs)
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

// Table-driven edge cases for the Algorithm 3.1 constants and the
// option/accuracy guards: the solver must reject every degenerate
// accuracy or shape loudly instead of running R = NaN iterations.

func TestParamsForEdgeCases(t *testing.T) {
	huge := 1 << 40
	cases := []struct {
		name    string
		n, m    int
		eps     float64
		wantErr bool
	}{
		{"typical", 10, 10, 0.1, false},
		{"eps tiny but valid", 10, 10, 1e-6, false},
		{"eps just under one", 10, 10, 0.999, false},
		{"eps zero", 10, 10, 0, true},
		{"eps one", 10, 10, 1, true},
		{"eps above one", 10, 10, 1.5, true},
		{"eps negative", 10, 10, -0.1, true},
		{"eps NaN", 10, 10, math.NaN(), true},
		{"eps +Inf", 10, 10, math.Inf(1), true},
		{"eps -Inf", 10, 10, math.Inf(-1), true},
		{"n zero", 0, 10, 0.1, true},
		{"m zero", 10, 0, 0.1, true},
		{"n negative", -1, 10, 0.1, true},
		{"m negative", 10, -1, 0.1, true},
		{"n one m one", 1, 1, 0.1, false},
		{"n huge", huge, 2, 0.1, false},
		{"m huge", 2, huge, 0.1, false},
		{"both huge", huge, huge, 0.5, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prm, err := ParamsFor(tc.n, tc.m, tc.eps)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParamsFor(%d, %d, %v) = %+v, want error", tc.n, tc.m, tc.eps, prm)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParamsFor(%d, %d, %v): %v", tc.n, tc.m, tc.eps, err)
			}
			// Structural sanity on every accepted input: the paper's
			// constants are finite, positive, and ordered.
			if !(prm.K > 0) || math.IsInf(prm.K, 0) || math.IsNaN(prm.K) {
				t.Errorf("K = %v not positive finite", prm.K)
			}
			if !(prm.Alpha > 0) || prm.Alpha >= tc.eps {
				t.Errorf("Alpha = %v out of (0, eps)", prm.Alpha)
			}
			if prm.R < 1 {
				t.Errorf("R = %d < 1", prm.R)
			}
			if prm.LogN < math.Log(2)*(1-1e-12) {
				t.Errorf("LogN = %v below ln 2 (N is clamped to >= 2)", prm.LogN)
			}
		})
	}
}

func TestGuardEpsTable(t *testing.T) {
	cases := []struct {
		eps     float64
		wantErr bool
	}{
		{0.5, false},
		{1e-12, false},
		{math.Nextafter(1, 0), false},
		{0, true},
		{1, true},
		{-1, true},
		{math.NaN(), true},
		{math.Inf(1), true},
		{math.Inf(-1), true},
	}
	for _, tc := range cases {
		if err := guardEps(tc.eps); (err != nil) != tc.wantErr {
			t.Errorf("guardEps(%v) error = %v, wantErr = %v", tc.eps, err, tc.wantErr)
		}
	}
}

func TestOptionsValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr bool
	}{
		{"zero value", Options{}, false},
		{"all defaults explicit", Options{Oracle: OracleAuto, SketchEps: 0.2, EarlySlack: 0.1}, false},
		{"negative MaxIter", Options{MaxIter: -1}, true},
		{"negative SketchEps", Options{SketchEps: -0.1}, true},
		{"SketchEps one", Options{SketchEps: 1}, true},
		{"SketchEps NaN", Options{SketchEps: math.NaN()}, true},
		{"negative EarlySlack", Options{EarlySlack: -0.5}, true},
		{"EarlySlack one", Options{EarlySlack: 1}, true},
		{"EarlySlack NaN", Options{EarlySlack: math.NaN()}, true},
		{"negative TraceCap", Options{TraceCap: -2}, true},
		{"TraceCap NaN", Options{TraceCap: math.NaN()}, true},
		{"oracle out of range", Options{Oracle: OracleKind(99)}, true},
		{"oracle negative", Options{Oracle: OracleKind(-1)}, true},
		{"valid factored exact", Options{Oracle: OracleFactoredExact, SketchEps: 0.3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.opts.Validate(); (err != nil) != tc.wantErr {
				t.Errorf("Validate() error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

// DecisionPSDP must reject invalid options at the door, before any
// oracle work happens.
func TestDecisionRejectsInvalidOptions(t *testing.T) {
	set := smallDiagSet(t)
	if _, err := DecisionPSDP(set, 0.2, Options{MaxIter: -5}); err == nil {
		t.Error("DecisionPSDP accepted MaxIter = -5")
	}
	if _, err := DecisionPSDP(set, 0.2, Options{SketchEps: 2}); err == nil {
		t.Error("DecisionPSDP accepted SketchEps = 2")
	}
	if _, err := DecisionPSDP(set, math.NaN(), Options{}); err == nil {
		t.Error("DecisionPSDP accepted eps = NaN")
	}
}

func smallDiagSet(t *testing.T) *DenseSet {
	t.Helper()
	set, err := NewDenseSet([]*matrix.Dense{
		matrix.Diag([]float64{0.5, 0.2, 0.1}),
		matrix.Diag([]float64{0.1, 0.4, 0.3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/eigen"
	"repro/internal/matrix"
)

// DualCertificate is the verification report for a packing vector.
type DualCertificate struct {
	// LambdaMax is λ_max(Σ xᵢAᵢ), computed independently of the solver.
	LambdaMax float64
	// Value is 1ᵀx.
	Value float64
	// Feasible is LambdaMax ≤ 1 + Tol.
	Feasible bool
	// Tol is the slack used for the feasibility call.
	Tol float64
}

// VerifyDual independently checks a packing vector x against the set:
// exact dense eigendecomposition when the set is dense, converged
// Lanczos when factored.
func VerifyDual(set ConstraintSet, x []float64, tol float64) (*DualCertificate, error) {
	if len(x) != set.N() {
		return nil, fmt.Errorf("core: VerifyDual: x has %d entries, want %d", len(x), set.N())
	}
	for i, v := range x {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("core: VerifyDual: x[%d] = %v is not a valid dual value", i, v)
		}
	}
	if tol <= 0 {
		tol = 1e-8
	}
	lam, err := lambdaMaxPsiOf(set, x)
	if err != nil {
		return nil, err
	}
	return &DualCertificate{
		LambdaMax: lam,
		Value:     matrix.VecSum(x),
		Feasible:  lam <= 1+tol,
		Tol:       tol,
	}, nil
}

// lambdaMaxPsiOf computes a certificate-grade λ_max(Σ xᵢAᵢ): exact
// eigendecomposition for dense sets, converged fully-reorthogonalized
// Lanczos otherwise.
func lambdaMaxPsiOf(set ConstraintSet, x []float64) (float64, error) {
	switch s := set.(type) {
	case *DenseSet:
		return eigen.LambdaMax(s.PsiDense(x))
	default:
		return eigen.LanczosMax(func(in, out []float64) {
			set.ApplyPsi(x, in, out)
		}, set.Dim(), eigen.LanczosOpts{
			MaxIter: 256,
			Tol:     1e-12,
			Rng:     rand.New(rand.NewPCG(0xcafe, 0xf00d)),
		})
	}
}

// PrimalCertificate is the verification report for a covering matrix.
type PrimalCertificate struct {
	// Trace is Tr[Y].
	Trace float64
	// MinDot is min_i Aᵢ • Y.
	MinDot float64
	// UpperBound = Trace/MinDot is the implied weak-duality bound on
	// the packing optimum (∞ when MinDot ≤ 0).
	UpperBound float64
	// PSD reports whether Y passed a PSD check.
	PSD bool
}

// VerifyPrimalDense checks a dense covering matrix Y against a dense
// set: Y ≽ 0 and the per-constraint dot products. The weak-duality
// chain 1ᵀx ≤ (Σ xᵢAᵢ)•Y/MinDot ≤ Tr[Y]/MinDot holds for every
// feasible packing x, so UpperBound certifies the optimum.
func VerifyPrimalDense(set *DenseSet, y *matrix.Dense) (*PrimalCertificate, error) {
	if y.R != set.Dim() || y.C != set.Dim() {
		return nil, fmt.Errorf("core: VerifyPrimalDense: Y is %dx%d, want %dx%d", y.R, y.C, set.Dim(), set.Dim())
	}
	psd, err := eigen.IsPSD(y, 1e-9)
	if err != nil {
		return nil, err
	}
	minDot := math.Inf(1)
	for i := 0; i < set.N(); i++ {
		d := set.Scale() * matrix.Dot(set.A[i], y)
		if d < minDot {
			minDot = d
		}
	}
	cert := &PrimalCertificate{Trace: y.Trace(), MinDot: minDot, PSD: psd}
	if minDot > 0 {
		cert.UpperBound = cert.Trace / minDot
	} else {
		cert.UpperBound = math.Inf(1)
	}
	return cert, nil
}
